// Quickstart: the smallest end-to-end use of the tofmcl public API.
//
// 1. Describe the environment as wall segments and rasterize it to an
//    occupancy grid (in a real deployment you would load a measured map).
// 2. Create a Localizer with the desired precision variant.
// 3. Feed it odometry poses and multizone-ToF frames.
// 4. Read back the pose estimate.
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "core/localizer.hpp"
#include "map/rasterize.hpp"
#include "sensor/tof_sensor.hpp"
#include "sim/drone.hpp"

using namespace tofmcl;

int main() {
  // --- 1. Environment: a 4 m × 3 m room with an interior wall and a box.
  // The box breaks the room's rotational symmetry; without such a feature
  // global localization has two equally valid answers (a real effect, not
  // a bug — see the maze design notes in sim/maze.cpp).
  map::World room;
  room.add_rectangle({{0.0, 0.0}, {4.0, 3.0}});
  room.add_segment({2.0, 0.0}, {2.0, 1.4});
  room.add_rectangle({{3.3, 2.45}, {3.6, 2.75}});

  map::RasterizeOptions raster;
  raster.resolution = 0.05;  // the paper's map resolution
  const map::OccupancyGrid grid = map::rasterize(room, raster);
  std::printf("map: %d x %d cells (%.1f m^2)\n", grid.width(), grid.height(),
              grid.area());

  // --- 2. Localizer: fp32qm = quantized map + float particles. ---
  core::LocalizerConfig config;
  config.precision = core::Precision::kFp32Qm;
  config.mcl.num_particles = 2048;
  config.mcl.seed = 42;

  core::SerialExecutor executor;
  core::Localizer localizer(grid, config, executor);
  std::printf("localizer: %zu particles, %s, map %zu kB + particles %zu kB\n",
              localizer.num_particles(), to_string(localizer.precision()),
              localizer.map_bytes() / 1024, localizer.particle_bytes() / 1024);

  // --- 3. Fly a short straight line and feed data. ---
  // The "drone" here is simulated; on the real platform the odometry
  // would come from the flight controller's EKF and the frames from the
  // two VL53L5CX sensors.
  const sensor::TofSensorConfig front;  // id 0, facing forward
  sensor::TofSensorConfig rear;
  rear.sensor_id = 1;
  rear.mount = Pose2{-0.02, 0.0, kPi};
  const sensor::MultizoneToF front_tof(front);
  const sensor::MultizoneToF rear_tof(rear);

  Rng rng(7);
  Pose2 truth{0.6, 2.2, 0.0};   // true pose in the map frame
  Pose2 odom{0.0, 0.0, 0.0};    // odometry frame starts at its own origin

  localizer.on_odometry(odom);
  localizer.start_global();  // no prior: uniform over free space

  for (int step = 0; step < 120; ++step) {
    // Move 2 cm forward per step (≈ 0.3 m/s at 15 Hz).
    truth = truth.compose(Pose2{0.02, 0.0, 0.0});
    odom = odom.compose(Pose2{0.02 + rng.gaussian(0.0, 0.001), 0.0,
                              rng.gaussian(0.0, 0.002)});
    localizer.on_odometry(odom);

    const double t = 0.067 * step;
    const sensor::TofFrame frames[2] = {
        front_tof.measure(room, truth, t, rng),
        rear_tof.measure(room, truth, t, rng),
    };
    if (localizer.on_frames(frames)) {
      const core::PoseEstimate& est = localizer.estimate();
      const double err = (est.pose.position - truth.position).norm();
      std::printf(
          "t=%5.2fs  estimate=(%.2f, %.2f, %5.1f deg)  error=%.3f m  "
          "spread=%.2f m\n",
          t, est.pose.x(), est.pose.y(), rad_to_deg(est.pose.yaw), err,
          est.position_stddev);
    }
  }

  // --- 4. Final verdict. ---
  const core::PoseEstimate& est = localizer.estimate();
  const double err = (est.pose.position - truth.position).norm();
  std::printf("\nfinal: true=(%.2f, %.2f) estimated=(%.2f, %.2f) err=%.3f m\n",
              truth.x(), truth.y(), est.pose.x(), est.pose.y(), err);
  std::printf("%s\n", err < 0.2 ? "localized (within the paper's 0.2 m "
                                  "convergence gate)"
                                : "not converged — try more particles");
  return err < 0.2 ? 0 : 1;
}
