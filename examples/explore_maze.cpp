// Frontier exploration (paper future work, Section V) in a fog-of-war
// simulation: the drone starts knowing only its immediate surroundings,
// repeatedly picks the best frontier (free space bordering unknown),
// plans an A* route to it, and "senses" the map along the way. The loop
// ends when no frontiers remain — the maze is fully explored.
//
// Usage: explore_maze [sense_radius_m]

#include <cstdio>
#include <cstdlib>

#include "map/map_io.hpp"
#include "map/rasterize.hpp"
#include "plan/astar.hpp"
#include "plan/frontier.hpp"
#include "sim/maze.hpp"

using namespace tofmcl;

namespace {

/// Reveal the true map into the belief map around a position (the stand-in
/// for integrating multizone-ToF returns into an occupancy map).
void sense(const map::OccupancyGrid& truth, map::OccupancyGrid& belief,
           Vec2 position, double radius) {
  const map::CellIndex center = truth.world_to_cell(position);
  const int r = static_cast<int>(radius / truth.resolution());
  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      if (dx * dx + dy * dy > r * r) continue;
      const map::CellIndex c{center.x + dx, center.y + dy};
      if (truth.in_bounds(c)) belief.set(c, truth.at(c));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double sense_radius = argc > 1 ? std::atof(argv[1]) : 0.8;

  map::RasterizeOptions opt;
  opt.resolution = 0.05;
  const map::OccupancyGrid truth = map::rasterize(sim::drone_maze(), opt);
  map::OccupancyGrid belief(truth.width(), truth.height(),
                            truth.resolution(), truth.origin(),
                            map::CellState::kUnknown);

  Vec2 position{0.5, 0.6};
  sense(truth, belief, position, sense_radius);

  plan::PlannerConfig planner;
  planner.min_clearance_m = 0.12;
  planner.unknown_is_obstacle = true;  // never fly blind

  std::printf("exploring the drone maze (sense radius %.1f m)...\n\n",
              sense_radius);
  std::size_t steps = 0;
  double traveled = 0.0;
  int stuck_rounds = 0;
  for (; steps < 200; ++steps) {
    const auto frontiers = plan::find_frontiers(belief, 3);
    if (frontiers.empty()) break;

    // Plan on the CURRENT belief: unknown space is untraversable, so the
    // route always stays inside explored territory. The goal is a cell of
    // the chosen frontier (not the centroid — the centroid of a ring
    // frontier is the drone itself), preferring cells with clearance.
    const map::DistanceMap distance(belief, 1.5);
    bool moved = false;
    for (std::size_t attempt = 0;
         attempt < frontiers.size() && !moved; ++attempt) {
      const int pick = plan::select_frontier(frontiers, position);
      const plan::Frontier& frontier =
          frontiers[static_cast<std::size_t>(
              (pick + static_cast<int>(attempt)) %
              static_cast<int>(frontiers.size()))];
      // Best goal cell: generous clearance first, near the centroid.
      Vec2 target = belief.cell_center(frontier.cells.front());
      double best_score = -1.0;
      for (const map::CellIndex& c : frontier.cells) {
        const Vec2 p = belief.cell_center(c);
        const double score =
            distance.distance_at(p) -
            0.05 * (p - frontier.centroid).norm();
        if (score > best_score) {
          best_score = score;
          target = p;
        }
      }
      const auto path =
          plan::plan_path(belief, distance, position, target, planner);
      if (!path || path->cells.size() < 2) continue;
      for (const Vec2& p : path->cells) {
        traveled += (p - position).norm();
        position = p;
        sense(truth, belief, position, sense_radius);
      }
      moved = true;
    }
    if (!moved) {
      // All frontiers unreachable with current knowledge: widen the
      // sensing once, then accept the residual unknown as unreachable.
      if (++stuck_rounds > 2) break;
      sense(truth, belief, position, sense_radius * 1.5);
      continue;
    }
    stuck_rounds = 0;
    if (steps % 5 == 0) {
      const double known =
          static_cast<double>(belief.cell_count() -
                              belief.count(map::CellState::kUnknown)) /
          static_cast<double>(belief.cell_count());
      std::printf("  step %3zu: %4.0f%% mapped, %zu frontiers, %.1f m "
                  "flown\n",
                  steps, 100.0 * known, frontiers.size(), traveled);
    }
  }

  const double coverage =
      static_cast<double>(belief.cell_count() -
                          belief.count(map::CellState::kUnknown)) /
      static_cast<double>(belief.cell_count());
  std::printf("\nexploration finished after %zu frontier goals, %.1f m "
              "flown, %.0f%% of the map known\n",
              steps, traveled, 100.0 * coverage);
  std::printf("\nfinal belief map:\n%s", map::to_ascii(belief).c_str());

  // Everything reachable should be known; the margin outside the outer
  // wall legitimately stays unknown.
  return coverage > 0.65 ? 0 : 1;
}
