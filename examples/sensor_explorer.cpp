// Sensor explorer: visualizes what the VL53L5CX multizone sensor "sees"
// from a chosen pose in the drone maze — the 8×8 zone matrix with slant
// distances and error flags, and the 2D beams the localizer extracts.
// Makes the sparse-sensing premise of the paper tangible.
//
// Usage: sensor_explorer [x] [y] [yaw_deg]

#include <cstdio>
#include <cstdlib>

#include "map/map_io.hpp"
#include "map/rasterize.hpp"
#include "sensor/beam_model.hpp"
#include "sim/maze.hpp"

using namespace tofmcl;

namespace {

void print_frame(const sensor::TofFrame& frame, const char* name) {
  std::printf("%s (8x8 zones, slant range in m, '----' = no return):\n",
              name);
  // Print top row (highest elevation) first.
  for (int row = frame.side() - 1; row >= 0; --row) {
    std::printf("  ");
    for (int col = 0; col < frame.side(); ++col) {
      const sensor::ZoneMeasurement& z = frame.zone(row, col);
      if (z.valid()) {
        std::printf("%4.2f ", z.distance_m);
      } else if (z.status == sensor::ZoneStatus::kInterference) {
        std::printf("xxxx ");
      } else {
        std::printf("---- ");
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double x = argc > 1 ? std::atof(argv[1]) : 0.5;
  const double y = argc > 2 ? std::atof(argv[2]) : 0.6;
  const double yaw = deg_to_rad(argc > 3 ? std::atof(argv[3]) : 90.0);
  const Pose2 pose{x, y, yaw};

  const map::World maze = sim::drone_maze();
  if (maze.clearance(pose.position) < 0.05) {
    std::printf("pose (%.2f, %.2f) is inside a wall — pick another spot\n",
                x, y);
    return 1;
  }

  // The maze as ASCII art with the drone marked.
  map::RasterizeOptions opt;
  opt.resolution = 0.1;  // coarse for terminal width
  map::OccupancyGrid coarse = map::rasterize(maze, opt);
  const map::CellIndex drone_cell = coarse.world_to_cell(pose.position);
  std::string art = map::to_ascii(coarse);
  // Mark the drone: row r from the top corresponds to y index
  // (height-1-r); columns map 1:1 plus the newline per row.
  const int rows = coarse.height();
  const int row_from_top = rows - 1 - drone_cell.y;
  const std::size_t pos =
      static_cast<std::size_t>(row_from_top) *
          (static_cast<std::size_t>(coarse.width()) + 1) +
      static_cast<std::size_t>(drone_cell.x);
  if (pos < art.size()) art[pos] = 'D';
  std::printf("drone maze (0.1 m cells, D = drone at %.2f, %.2f, %.0f "
              "deg):\n%s\n",
              x, y, rad_to_deg(yaw), art.c_str());

  // Both sensors of the paper's deck.
  sensor::TofSensorConfig front;
  sensor::TofSensorConfig rear;
  rear.sensor_id = 1;
  rear.mount = Pose2{-0.02, 0.0, kPi};
  const sensor::MultizoneToF front_tof(front);
  const sensor::MultizoneToF rear_tof(rear);

  const sensor::TofFrame f_front = front_tof.measure_ideal(maze, pose, 0.0);
  const sensor::TofFrame f_rear = rear_tof.measure_ideal(maze, pose, 0.0);
  print_frame(f_front, "front sensor");
  std::printf("\n");
  print_frame(f_rear, "rear sensor");

  // The 2D beams MCL actually consumes.
  std::printf("\nextracted beams (central rows, body frame):\n");
  for (const sensor::TofSensorConfig* cfg : {&front, &rear}) {
    const auto& frame = cfg->sensor_id == 0 ? f_front : f_rear;
    const auto beams = sensor::extract_beams(frame, *cfg);
    std::printf("  sensor %d: %zu beams\n", cfg->sensor_id, beams.size());
    for (const sensor::Beam& b : beams) {
      std::printf("    az=%6.1f deg  range=%5.2f m  endpoint=(%+.2f, %+.2f)\n",
                  rad_to_deg(b.azimuth_body), b.range_m, b.endpoint_body.x,
                  b.endpoint_body.y);
    }
  }
  std::printf(
      "\nnote how few beams carry the localization: this is the paper's\n"
      "low element-count premise — 16–32 numbers per update instead of a\n"
      "LiDAR scan.\n");
  return 0;
}
