// tofmcl_cli — the file-based workflow a downstream user runs:
//
//   tofmcl_cli map      --out map.txt [--ascii]
//       export the evaluation environment's occupancy grid
//   tofmcl_cli generate --plan 0..5 --seed S --out seq.txt
//       simulate a flight and record the dataset (odometry, truth, frames)
//   tofmcl_cli localize --map map.txt --seq seq.txt
//                       [--particles N] [--precision fp32|fp32qm|fp16qm]
//                       [--one-sensor] [--csv trace.csv]
//       replay a recorded dataset through the localizer and print the
//       paper's metrics (convergence time, ATE, success)
//
// The three commands chain: map → generate → localize.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "common/table.hpp"
#include "eval/experiment.hpp"
#include "map/map_io.hpp"
#include "sim/maze.hpp"
#include "sim/sequence_generator.hpp"

using namespace tofmcl;

namespace {

using Options = std::map<std::string, std::string>;

// GCC 12's -Wrestrict fires a false positive inside the inlined
// libstdc++ std::string assignment in the flag branch below (upstream
// PR 105651); scope the silence to exactly this function.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
Options parse_options(int argc, char** argv, int first) {
  Options opts;
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      std::exit(2);
    }
    const std::string key = argv[i] + 2;
    if (key == "ascii" || key == "one-sensor") {
      opts[key] = "1";
    } else if (i + 1 < argc) {
      opts[key] = argv[++i];
    } else {
      std::fprintf(stderr, "missing value for --%s\n", key.c_str());
      std::exit(2);
    }
  }
  return opts;
}
#pragma GCC diagnostic pop

std::string get(const Options& opts, const std::string& key,
                const std::string& fallback) {
  const auto it = opts.find(key);
  return it == opts.end() ? fallback : it->second;
}

int cmd_map(const Options& opts) {
  const sim::EvaluationEnvironment env = sim::evaluation_environment();
  const map::OccupancyGrid grid = sim::rasterize_environment(env);
  const std::string out = get(opts, "out", "map.txt");
  map::save_grid(grid, std::filesystem::path(out));
  std::printf("wrote %s: %dx%d cells, %.1f m^2 structured area\n",
              out.c_str(), grid.width(), grid.height(),
              env.structured_area_m2);
  if (opts.count("ascii") != 0) {
    std::printf("%s", map::to_ascii(grid).c_str());
  }
  return 0;
}

int cmd_generate(const Options& opts) {
  const auto plan_idx =
      static_cast<std::size_t>(std::atoi(get(opts, "plan", "0").c_str()));
  const std::uint64_t seed =
      std::strtoull(get(opts, "seed", "1").c_str(), nullptr, 10);
  const std::string out = get(opts, "out", "sequence.txt");
  if (plan_idx >= 6) {
    std::fprintf(stderr, "--plan must be 0..5\n");
    return 2;
  }
  const sim::EvaluationEnvironment env = sim::evaluation_environment();
  const auto plans = sim::standard_flight_plans();
  Rng rng(seed);
  const sim::Sequence seq = sim::generate_sequence(
      env.world, plans[plan_idx], sim::default_generator_config(), rng);
  save_sequence(seq, std::filesystem::path(out));
  std::printf("wrote %s: %s, %.1f s, %zu odometry samples, %zu frames\n",
              out.c_str(), seq.name.c_str(), seq.duration_s,
              seq.odometry.size(), seq.frames.size());
  return 0;
}

int cmd_localize(const Options& opts) {
  const std::string map_path = get(opts, "map", "map.txt");
  const std::string seq_path = get(opts, "seq", "sequence.txt");
  const map::OccupancyGrid grid =
      map::load_grid(std::filesystem::path(map_path));
  const sim::Sequence seq =
      sim::load_sequence(std::filesystem::path(seq_path));

  core::LocalizerConfig config;
  config.mcl.num_particles = static_cast<std::size_t>(
      std::atoi(get(opts, "particles", "4096").c_str()));
  config.mcl.seed =
      std::strtoull(get(opts, "filter-seed", "1").c_str(), nullptr, 10);
  const std::string precision = get(opts, "precision", "fp32qm");
  if (precision == "fp32") {
    config.precision = core::Precision::kFp32;
  } else if (precision == "fp32qm") {
    config.precision = core::Precision::kFp32Qm;
  } else if (precision == "fp16qm") {
    config.precision = core::Precision::kFp16Qm;
  } else {
    std::fprintf(stderr, "unknown precision: %s\n", precision.c_str());
    return 2;
  }
  const bool use_rear = opts.count("one-sensor") == 0;

  core::SerialExecutor executor;
  const auto errors =
      eval::replay_sequence(seq, grid, config, use_rear, executor);
  const eval::RunMetrics metrics = eval::evaluate_run(errors);

  std::printf("sequence   : %s (%.1f s)\n", seq.name.c_str(),
              seq.duration_s);
  std::printf("config     : %s, %zu particles, %s\n", precision.c_str(),
              config.mcl.num_particles,
              use_rear ? "two sensors" : "front sensor only");
  std::printf("corrections: %zu\n", errors.size());
  if (metrics.converged) {
    std::printf("converged  : %.1f s\n", metrics.convergence_time_s);
    std::printf("ATE        : %.3f m (max %.3f m)\n", metrics.ate_m,
                metrics.max_error_after_convergence_m);
    std::printf("success    : %s\n", metrics.success ? "yes" : "no");
  } else {
    std::printf("converged  : no\n");
  }

  const std::string csv = get(opts, "csv", "");
  if (!csv.empty()) {
    Table table({"t", "pos_error_m", "yaw_error_rad"});
    for (const eval::ErrorSample& e : errors) {
      table.row().cell(e.t, 3).cell(e.pos_error, 4).cell(e.yaw_error, 4)
          .commit();
    }
    table.write_csv(std::filesystem::path(csv));
    std::printf("error trace: %s\n", csv.c_str());
  }
  return metrics.success ? 0 : 1;
}

void usage() {
  std::printf(
      "usage: tofmcl_cli <command> [options]\n"
      "  map       --out FILE [--ascii]\n"
      "  generate  --plan 0..5 --seed S --out FILE\n"
      "  localize  --map FILE --seq FILE [--particles N]\n"
      "            [--precision fp32|fp32qm|fp16qm] [--one-sensor]\n"
      "            [--filter-seed S] [--csv FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    const Options opts = parse_options(argc, argv, 2);
    if (command == "map") return cmd_map(opts);
    if (command == "generate") return cmd_generate(opts);
    if (command == "localize") return cmd_localize(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
