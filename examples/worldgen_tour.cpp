// worldgen_tour — generate a procedural world, fly its tour, localize.
//
//   worldgen_tour [--world office|warehouse|loop] [--seed N]
//                 [--plan 0|1|2] [--obstacles N] [--speed V]
//                 [--particles N] [--tracking] [--ascii]
//                 [--save-map FILE]
//
// Prints the generated layout (optional), runs the full pipeline —
// generate world → plan tour → simulate flight (optionally with crossing
// pedestrians composited into the ToF frames) → localize against the
// static map — and reports the paper's metrics. --save-map writes the
// occupancy grid in the compact v2 format.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/executor.hpp"
#include "core/localizer.hpp"
#include "eval/campaign.hpp"
#include "eval/metrics.hpp"
#include "map/map_io.hpp"
#include "sim/dynamic_obstacles.hpp"
#include "sim/worldgen.hpp"

using namespace tofmcl;

int main(int argc, char** argv) {
  sim::GeneratedWorldKind kind = sim::GeneratedWorldKind::kOffice;
  std::uint64_t seed = 1;
  std::size_t plan_index = 0;
  std::size_t obstacles = 0;
  double obstacle_speed = 1.2;
  std::size_t particles = 8192;
  bool tracking = false;
  bool ascii = false;
  const char* save_map = nullptr;

  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* f) { return std::strcmp(argv[i], f) == 0; };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (is("--help") || is("-h")) {
      std::printf(
          "worldgen_tour — generate a world, fly it, localize\n"
          "  --world K      office | warehouse | loop (default office)\n"
          "  --seed N       procedural seed (default 1)\n"
          "  --plan I       0 tour, 1 reverse, 2 shuttle (default 0)\n"
          "  --obstacles N  crossing pedestrians (default 0)\n"
          "  --speed V      obstacle walking speed m/s (default 1.2)\n"
          "  --particles N  filter size (default 8192)\n"
          "  --tracking     start from the known pose instead of global\n"
          "  --ascii        print the generated map\n"
          "  --save-map F   write the occupancy grid (v2 format)\n");
      return 0;
    } else if (is("--world")) {
      const std::string w = value();
      if (w == "office") kind = sim::GeneratedWorldKind::kOffice;
      else if (w == "warehouse") kind = sim::GeneratedWorldKind::kWarehouse;
      else if (w == "loop") kind = sim::GeneratedWorldKind::kLoopCorridor;
      else {
        std::fprintf(stderr, "unknown world: %s\n", w.c_str());
        return 2;
      }
    } else if (is("--seed")) {
      seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (is("--plan")) {
      plan_index = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--obstacles")) {
      obstacles = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--speed")) {
      obstacle_speed = std::atof(value());
    } else if (is("--particles")) {
      particles = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--tracking")) {
      tracking = true;
    } else if (is("--ascii")) {
      ascii = true;
    } else if (is("--save-map")) {
      save_map = value();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return 2;
    }
  }

  sim::WorldGenConfig config;
  config.seed = seed;
  const sim::GeneratedWorld world = sim::generate_world(kind, config);
  std::printf("%s seed %llu: %zu wall segments, %zu landmarks, %zu plans\n",
              sim::to_string(kind), static_cast<unsigned long long>(seed),
              world.env.world.segments().size(),
              world.points_of_interest.size(), world.plans.size());
  if (plan_index >= world.plans.size()) {
    std::fprintf(stderr, "plan index out of range (have %zu)\n",
                 world.plans.size());
    return 2;
  }

  const map::OccupancyGrid grid =
      sim::rasterize_environment(world.env, 0.05, 0.01);
  if (ascii) std::printf("%s", map::to_ascii(grid).c_str());
  if (save_map != nullptr) {
    map::save_grid(grid, std::filesystem::path(save_map));
    std::printf("map written to %s (v2, %d x %d cells)\n", save_map,
                grid.width(), grid.height());
  }

  sim::SequenceGeneratorConfig gen = sim::default_generator_config();
  if (obstacles > 0) {
    gen.obstacles = sim::scatter_obstacles_seeded(world.plans, obstacles,
                                                  obstacle_speed, 21);
    std::printf("%zu crossing obstacles at %.1f m/s\n", obstacles,
                obstacle_speed);
  }
  Rng data_rng(21);
  const sim::Sequence seq = sim::generate_sequence(
      world.env.world, world.plans[plan_index], gen, data_rng);
  std::printf("flew '%s': %.1f s, %zu frames, min wall clearance %.2f m\n",
              seq.name.c_str(), seq.duration_s, seq.frames.size(),
              seq.min_clearance_m);

  core::LocalizerConfig lc;
  lc.mcl.num_particles = particles;
  lc.mcl.seed = 7;
  lc.sensors = {gen.front_tof, gen.rear_tof};
  core::SerialExecutor exec;
  core::Localizer loc(grid, lc, exec);
  loc.on_odometry(seq.odometry.front().pose);
  if (tracking) {
    loc.start_at(seq.ground_truth.front().pose, 0.2, 0.2);
  } else {
    loc.start_global();
  }

  eval::CampaignRunResult replay;
  eval::replay_leg(loc, seq, 0.0, true, replay);
  const eval::RunMetrics metrics = eval::evaluate_run(replay.errors);
  std::printf(
      "localization (%s, %zu particles): converged=%s t=%.1f s  "
      "ATE=%.3f m  final error=%.3f m  success=%s\n",
      tracking ? "tracking" : "global", particles,
      metrics.converged ? "yes" : "no", metrics.convergence_time_s,
      metrics.ate_m,
      replay.errors.empty() ? -1.0 : replay.errors.back().pos_error,
      metrics.success ? "yes" : "no");
  return metrics.converged ? 0 : 1;
}
