// Path planning + on-board localization — the closed loop the paper
// names as future work (Section V). An A* path with clearance costs is
// planned on the same occupancy grid the localizer uses; the drone flies
// the simplified waypoints while MCL tracks it against the map.
//
// Usage: plan_and_fly [start_x start_y goal_x goal_y]

#include <cstdio>
#include <cstdlib>

#include "core/localizer.hpp"
#include "plan/astar.hpp"
#include "sim/maze.hpp"
#include "sim/sequence_generator.hpp"

using namespace tofmcl;

int main(int argc, char** argv) {
  const Vec2 start{argc > 2 ? std::atof(argv[1]) : 0.5,
                   argc > 2 ? std::atof(argv[2]) : 0.6};
  const Vec2 goal{argc > 4 ? std::atof(argv[3]) : 3.5,
                  argc > 4 ? std::atof(argv[4]) : 0.6};

  // Map + distance field (shared by planner and localizer).
  const map::World maze = sim::drone_maze();
  sim::EvaluationEnvironment env;
  env.world = maze;
  env.maze_regions.push_back({{0.0, 0.0}, {4.0, 4.0}});
  const map::OccupancyGrid grid = sim::rasterize_environment(env, 0.05, 0.0);
  const map::DistanceMap distance(grid, 1.5);

  // --- Plan ---
  plan::PlannerConfig planner;
  planner.min_clearance_m = 0.13;
  const auto path = plan::plan_path(grid, distance, start, goal, planner);
  if (!path) {
    std::printf("no path from (%.2f, %.2f) to (%.2f, %.2f)\n", start.x,
                start.y, goal.x, goal.y);
    return 1;
  }
  std::printf("planned %.1f m path with %zu waypoints:\n", path->length_m,
              path->waypoints.size());
  for (const Vec2& w : path->waypoints) {
    std::printf("  (%.2f, %.2f)\n", w.x, w.y);
  }

  // --- Fly it (simulated) while localizing on board ---
  sim::FlightPlan plan;
  plan.name = "planned_route";
  plan.start = Pose2{start, 0.0};
  for (std::size_t i = 1; i < path->waypoints.size(); ++i) {
    plan.path.push_back({path->waypoints[i], 0.35});
  }
  Rng rng(17);
  const sim::Sequence seq = sim::generate_sequence(
      maze, plan, sim::default_generator_config(), rng);
  std::printf("\nflight: %.1f s, min clearance %.2f m\n", seq.duration_s,
              seq.min_clearance_m);

  core::LocalizerConfig loc_cfg;
  loc_cfg.precision = core::Precision::kFp32Qm;
  loc_cfg.mcl.num_particles = 2048;
  loc_cfg.mcl.seed = 3;
  core::SerialExecutor executor;
  core::Localizer localizer(grid, loc_cfg, executor);
  localizer.on_odometry(seq.odometry.front().pose);
  // The drone knows where it takes off (tracking mode).
  localizer.start_at(seq.ground_truth.front().pose, 0.15, 0.15);

  std::size_t frame_idx = 0;
  double worst = 0.0;
  double sum = 0.0;
  std::size_t count = 0;
  for (const sim::StateSample& odom : seq.odometry) {
    localizer.on_odometry(odom.pose);
    while (frame_idx + 1 < seq.frames.size() &&
           seq.frames[frame_idx].timestamp_s <= odom.t) {
      const sensor::TofFrame pair[2] = {seq.frames[frame_idx],
                                        seq.frames[frame_idx + 1]};
      frame_idx += 2;
      if (!localizer.on_frames(pair)) continue;
      const Pose2 truth = sim::interpolate_pose(seq.ground_truth, odom.t);
      const double err =
          (localizer.estimate().pose.position - truth.position).norm();
      worst = std::max(worst, err);
      sum += err;
      ++count;
    }
  }

  const Pose2 final_truth = seq.ground_truth.back().pose;
  const double goal_err = (final_truth.position - goal).norm();
  std::printf("\nflight result:\n");
  std::printf("  reached      : (%.2f, %.2f), %.2f m from goal\n",
              final_truth.x(), final_truth.y(), goal_err);
  std::printf("  localization : mean %.3f m, worst %.3f m over %zu "
              "corrections\n",
              count > 0 ? sum / static_cast<double>(count) : 0.0, worst,
              count);
  const bool ok = goal_err < 0.3 && count > 0 &&
                  sum / static_cast<double>(count) < 0.3;
  std::printf("%s\n", ok ? "plan + fly + localize: SUCCESS"
                         : "plan + fly + localize: degraded");
  return ok ? 0 : 1;
}
