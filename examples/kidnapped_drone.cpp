// Kidnapped-drone recovery: the classic stress test for global
// localization. The filter tracks the drone through the maze, then the
// drone is "teleported" (we splice in a flight from a different start
// without telling the odometry). The Augmented-MCL recovery injection
// (core/mcl_config.hpp) re-seeds hypotheses and the filter re-localizes.
//
// Usage: kidnapped_drone [particles]

#include <cstdio>
#include <cstdlib>

#include "core/localizer.hpp"
#include "sim/maze.hpp"
#include "sim/sequence_generator.hpp"

using namespace tofmcl;

namespace {

void replay(core::Localizer& localizer, const sim::Sequence& seq,
            double t_offset, const char* tag) {
  std::size_t frame_idx = 0;
  for (const sim::StateSample& odom : seq.odometry) {
    localizer.on_odometry(odom.pose);
    while (frame_idx + 1 < seq.frames.size() &&
           seq.frames[frame_idx].timestamp_s <= odom.t) {
      const sensor::TofFrame pair[2] = {seq.frames[frame_idx],
                                        seq.frames[frame_idx + 1]};
      frame_idx += 2;
      if (!localizer.on_frames(pair)) continue;
      const core::PoseEstimate& est = localizer.estimate();
      const Pose2 truth = sim::interpolate_pose(seq.ground_truth, odom.t);
      const double err = (est.pose.position - truth.position).norm();
      static int counter = 0;
      if (++counter % 20 == 0) {
        std::printf("  [%s] t=%5.1f s  error=%.2f m  spread=%.2f m\n", tag,
                    t_offset + odom.t, err, est.position_stddev);
      }
    }
  }
}

double final_error(const core::Localizer& localizer,
                   const sim::Sequence& seq) {
  const Pose2 truth = seq.ground_truth.back().pose;
  return (localizer.estimate().pose.position - truth.position).norm();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t particles =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8192;

  const sim::EvaluationEnvironment env = sim::evaluation_environment();
  const map::OccupancyGrid grid = sim::rasterize_environment(env);
  const auto plans = sim::standard_flight_plans();

  // Leg 1: the left-loop flight. Leg 2: a flight starting at the OTHER
  // side of the maze — the "kidnapping". The odometry stream of leg 2 is
  // self-consistent but unrelated to leg 1's end pose, exactly what a
  // powered-off carry or a tracking blackout produces.
  Rng rng(99);
  const sim::Sequence leg1 = sim::generate_sequence(
      env.world, plans[0], sim::default_generator_config(), rng);
  const sim::Sequence leg2 = sim::generate_sequence(
      env.world, plans[2], sim::default_generator_config(), rng);

  core::LocalizerConfig config;
  config.precision = core::Precision::kFp32Qm;
  config.mcl.num_particles = particles;
  config.mcl.seed = 5;
  core::SerialExecutor executor;
  core::Localizer localizer(grid, config, executor);

  std::printf("=== leg 1: global localization on %s ===\n",
              leg1.name.c_str());
  localizer.on_odometry(leg1.odometry.front().pose);
  localizer.start_global();
  replay(localizer, leg1, 0.0, "leg1");
  const double err1 = final_error(localizer, leg1);
  std::printf("end of leg 1: error %.2f m — %s\n\n", err1,
              err1 < 0.3 ? "locked" : "NOT locked");

  std::printf(
      "=== kidnapping: drone teleports from (%.1f, %.1f) to (%.1f, %.1f) "
      "===\n",
      leg1.ground_truth.back().pose.x(), leg1.ground_truth.back().pose.y(),
      leg2.ground_truth.front().pose.x(),
      leg2.ground_truth.front().pose.y());
  std::printf("(the filter is NOT re-initialized — recovery must come from\n"
              " the Augmented-MCL injection watching its likelihood drop)\n\n");

  std::printf("=== leg 2: %s after the kidnap ===\n", leg2.name.c_str());
  // Feed leg 2 without restarting: its odometry frame is new, but the
  // localizer only consumes deltas, so this is exactly a teleport.
  replay(localizer, leg2, leg1.duration_s, "leg2");
  const double err2 = final_error(localizer, leg2);
  std::printf("\nend of leg 2: error %.2f m — %s\n", err2,
              err2 < 0.3 ? "RECOVERED" : "lost");
  return err2 < 0.3 ? 0 : 1;
}
