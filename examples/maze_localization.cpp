// The paper's headline scenario (Fig 1): global localization of the
// nano-UAV flying through the drone maze, with the map extended by three
// artificial mazes to 31.2 m² of structured area. The estimate may start
// in a wrong maze and converges to the true pose as observations
// accumulate.
//
// Usage: maze_localization [plan 0..5] [particles] [seed] [--csv FILE]
// The optional CSV dumps t, truth pose, estimate pose, error — the data
// behind a Fig 1-style trajectory plot.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "core/localizer.hpp"
#include "eval/experiment.hpp"
#include "map/map_io.hpp"
#include "sim/maze.hpp"
#include "sim/sequence_generator.hpp"

using namespace tofmcl;

int main(int argc, char** argv) {
  std::size_t plan_index = 1;  // seq02_grand_tour by default
  std::size_t particles = 4096;
  std::uint64_t seed = 2023;
  const char* csv_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (i == 1) {
      plan_index = static_cast<std::size_t>(std::atoi(argv[i])) % 6;
    } else if (i == 2) {
      particles = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (i == 3) {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  // The composite evaluation environment: real maze + 3 artificial ones.
  const sim::EvaluationEnvironment env = sim::evaluation_environment();
  const map::OccupancyGrid grid = sim::rasterize_environment(env);
  std::printf("environment: %.1f m^2 structured area in %d x %d cells\n",
              env.structured_area_m2, grid.width(), grid.height());

  // Record a flight through the REAL maze (region 0).
  const auto plans = sim::standard_flight_plans();
  const sim::FlightPlan& plan = plans[plan_index];
  Rng rng(seed);
  const sim::Sequence seq = sim::generate_sequence(
      env.world, plan, sim::default_generator_config(), rng);
  std::printf("flight: %s, %.1f s, %zu ToF frames, min clearance %.2f m\n",
              seq.name.c_str(), seq.duration_s, seq.frames.size(),
              seq.min_clearance_m);

  // Localize globally while replaying.
  core::LocalizerConfig config;
  config.precision = core::Precision::kFp16Qm;  // the leanest variant
  config.mcl.num_particles = particles;
  config.mcl.seed = seed;
  core::SerialExecutor executor;
  core::Localizer localizer(grid, config, executor);
  localizer.on_odometry(seq.odometry.front().pose);
  localizer.start_global();

  std::ofstream csv;
  if (csv_path != nullptr) {
    csv.open(csv_path);
    csv << "t,true_x,true_y,true_yaw,est_x,est_y,est_yaw,error_m\n";
  }

  std::size_t frame_idx = 0;
  double convergence_time = -1.0;
  std::size_t corrections = 0;
  for (const sim::StateSample& odom : seq.odometry) {
    localizer.on_odometry(odom.pose);
    while (frame_idx + 1 < seq.frames.size() &&
           seq.frames[frame_idx].timestamp_s <= odom.t) {
      const sensor::TofFrame pair[2] = {seq.frames[frame_idx],
                                        seq.frames[frame_idx + 1]};
      frame_idx += 2;
      if (!localizer.on_frames(pair)) continue;
      ++corrections;
      const core::PoseEstimate& est = localizer.estimate();
      const Pose2 truth = sim::interpolate_pose(seq.ground_truth, odom.t);
      const double err = (est.pose.position - truth.position).norm();
      if (convergence_time < 0.0 && err < 0.2 &&
          angle_dist(est.pose.yaw, truth.yaw) < deg_to_rad(36.0)) {
        convergence_time = odom.t;
        std::printf("  converged at t=%.1f s (error %.2f m)\n", odom.t, err);
      }
      if (csv.is_open()) {
        csv << odom.t << ',' << truth.x() << ',' << truth.y() << ','
            << truth.yaw << ',' << est.pose.x() << ',' << est.pose.y() << ','
            << est.pose.yaw << ',' << err << '\n';
      }
      if (corrections % 25 == 0) {
        std::printf("  t=%5.1f s: error %.2f m, cloud spread %.2f m\n",
                    odom.t, err, est.position_stddev);
      }
    }
  }

  const core::PoseEstimate& est = localizer.estimate();
  const Pose2 truth = seq.ground_truth.back().pose;
  const double err = (est.pose.position - truth.position).norm();
  std::printf("\nresult after %zu corrections:\n", corrections);
  std::printf("  true pose     : (%.2f, %.2f, %5.1f deg)\n", truth.x(),
              truth.y(), rad_to_deg(truth.yaw));
  std::printf("  estimate      : (%.2f, %.2f, %5.1f deg)\n", est.pose.x(),
              est.pose.y(), rad_to_deg(est.pose.yaw));
  std::printf("  position error: %.3f m\n", err);
  if (convergence_time >= 0.0) {
    std::printf("  converged at  : %.1f s\n", convergence_time);
  } else {
    std::printf("  did not converge within the sequence\n");
  }
  if (csv_path != nullptr) {
    std::printf("  trajectory CSV: %s\n", csv_path);
  }
  return 0;
}
