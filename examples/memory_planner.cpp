// Memory planner: answers the deployment question behind paper Fig 9 —
// "given my map, which precision variant and particle count fit on the
// GAP9, and at what frequency do I stay real-time?"
//
// Usage: memory_planner [map_area_m2] [target_particles]

#include <cstdio>
#include <cstdlib>

#include "platform/gap9_power.hpp"
#include "platform/memory_model.hpp"

using namespace tofmcl;
using namespace tofmcl::platform;

int main(int argc, char** argv) {
  const double area = argc > 1 ? std::atof(argv[1]) : 31.2;
  const std::size_t target =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4096;

  const Gap9Spec spec;
  const Gap9TimingModel timing = calibrated_timing_model();
  const Gap9PowerModel power;
  constexpr double kRes = 0.05;

  std::printf("=== GAP9 deployment plan for a %.1f m^2 map, %zu particles "
              "===\n\n",
              area, target);

  const core::Precision variants[] = {core::Precision::kFp32,
                                      core::Precision::kFp32Qm,
                                      core::Precision::kFp16Qm};
  for (const core::Precision p : variants) {
    const std::size_t map_b = map_bytes(area, kRes, p);
    const std::size_t part_b = particle_bytes(target, p);
    const std::size_t cap_l1 = max_particles(area, kRes, p, spec.l1_bytes);
    const std::size_t cap_l2 = max_particles(area, kRes, p, spec.l2_bytes);

    std::printf("%s:\n", core::to_string(p));
    std::printf("  map %zu kB, particles %zu kB (double-buffered)\n",
                map_b / 1024, part_b / 1024);
    std::printf("  capacity: %zu particles beside the map in L1, %zu in L2\n",
                cap_l1, cap_l2);
    if (target <= cap_l1) {
      std::printf("  -> everything fits in L1\n");
    } else if (target <= cap_l2) {
      std::printf("  -> needs L2 for the particle set\n");
    } else {
      std::printf("  -> DOES NOT FIT (reduce particles or quantize)\n\n");
      continue;
    }

    const Placement placement = placement_for(part_b, spec);
    const double t400 = timing.update_ns(target, 8, placement, 400.0) * 1e-6;
    const double fmin =
        timing.min_realtime_frequency_mhz(target, 8, placement);
    std::printf("  update: %.2f ms at 400 MHz; real-time (15 Hz) down to "
                "%.0f MHz\n",
                t400, fmin);
    std::printf("  power: %.0f mW at 400 MHz, %.0f mW at the minimum "
                "frequency\n\n",
                power.active_power_mw(400.0),
                power.active_power_mw(std::max(fmin, 1.0)));
  }

  const SystemPowerBudget budget;
  std::printf("system: sensors %0.f mW + electronics %.0f mW; with GAP9 at "
              "400 MHz the\nsensing+processing share of drone power is "
              "%.1f%% (paper: ~7%%).\n",
              budget.tof_sensor_mw * 2, budget.electronics_mw,
              100.0 * budget.overhead_fraction(power.active_power_mw(400.0)));
  return 0;
}
