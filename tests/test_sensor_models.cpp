// Tests for the proprioceptive sensor models (estimation/sensor_models.hpp):
// gyro bias and noise behaviour, optical-flow scale error and dropout —
// the drift sources the EKF integrates and MCL must correct. Includes the
// degenerate edge cases: noise-free configs reproduce truth exactly, and
// zero-motion inputs stay zero-mean.

#include "estimation/sensor_models.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace tofmcl::estimation {
namespace {

GyroConfig noise_free_gyro() {
  GyroConfig cfg;
  cfg.noise_stddev_rad_s = 0.0;
  cfg.initial_bias_rad_s = 0.0;
  cfg.bias_walk_rad_s2 = 0.0;
  return cfg;
}

FlowConfig noise_free_flow() {
  FlowConfig cfg;
  cfg.noise_stddev_m_s = 0.0;
  cfg.scale_error_stddev = 0.0;
  cfg.p_dropout = 0.0;
  return cfg;
}

TEST(Gyro, NoiseFreeConfigReproducesTruthExactly) {
  Rng rng(1);
  Gyro gyro(noise_free_gyro(), rng);
  EXPECT_DOUBLE_EQ(gyro.bias(), 0.0);
  EXPECT_DOUBLE_EQ(gyro.measure(0.7, 0.01, rng), 0.7);
  EXPECT_DOUBLE_EQ(gyro.measure(-1.3, 0.01, rng), -1.3);
  // Zero-rate edge case: a stationary drone reads exactly zero.
  EXPECT_DOUBLE_EQ(gyro.measure(0.0, 0.01, rng), 0.0);
}

TEST(Gyro, InitialBiasIsDrawnFromConfiguredSigma) {
  // Over many constructions the bias draw must match N(0, σ): zero-mean,
  // σ within a loose statistical gate.
  GyroConfig cfg = noise_free_gyro();
  cfg.initial_bias_rad_s = 0.01;
  Rng rng(2);
  RunningStats biases;
  for (int i = 0; i < 2000; ++i) {
    Gyro gyro(cfg, rng);
    biases.add(gyro.bias());
  }
  EXPECT_NEAR(biases.mean(), 0.0, 0.001);
  EXPECT_NEAR(biases.stddev(), cfg.initial_bias_rad_s,
              0.2 * cfg.initial_bias_rad_s);
}

TEST(Gyro, MeasurementIsTruthPlusBiasOnAverage) {
  GyroConfig cfg;
  cfg.noise_stddev_rad_s = 0.005;
  cfg.initial_bias_rad_s = 0.05;
  cfg.bias_walk_rad_s2 = 0.0;  // Freeze the bias to isolate the offset.
  Rng rng(3);
  Gyro gyro(cfg, rng);
  const double bias = gyro.bias();
  RunningStats samples;
  for (int i = 0; i < 4000; ++i) {
    samples.add(gyro.measure(0.5, 0.01, rng));
  }
  EXPECT_NEAR(samples.mean(), 0.5 + bias, 3.0 * 0.005 / std::sqrt(4000.0));
  EXPECT_NEAR(samples.stddev(), cfg.noise_stddev_rad_s,
              0.1 * cfg.noise_stddev_rad_s);
}

TEST(Gyro, BiasRandomWalkAccumulates) {
  GyroConfig cfg = noise_free_gyro();
  cfg.bias_walk_rad_s2 = 0.01;
  Rng rng(4);
  Gyro gyro(cfg, rng);
  const double initial = gyro.bias();
  for (int i = 0; i < 1000; ++i) {
    gyro.measure(0.0, 0.01, rng);
  }
  // After 1000 walk steps the bias has moved with probability ≈ 1.
  EXPECT_NE(gyro.bias(), initial);
  EXPECT_TRUE(std::isfinite(gyro.bias()));
}

TEST(Gyro, DeterministicForFixedSeed) {
  GyroConfig cfg;  // Defaults: all noise mechanisms active.
  Rng rng_a(42), rng_b(42);
  Gyro a(cfg, rng_a), b(cfg, rng_b);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.measure(0.3, 0.01, rng_a), b.measure(0.3, 0.01, rng_b));
  }
}

TEST(FlowSensor, NoiseFreeConfigReproducesTruthExactly) {
  Rng rng(5);
  const FlowSensor flow(noise_free_flow(), rng);
  EXPECT_DOUBLE_EQ(flow.scale(), 1.0);
  const FlowMeasurement m = flow.measure({0.4, -0.2}, rng);
  ASSERT_TRUE(m.valid);
  EXPECT_DOUBLE_EQ(m.velocity_body.x, 0.4);
  EXPECT_DOUBLE_EQ(m.velocity_body.y, -0.2);
}

TEST(FlowSensor, ZeroVelocityStaysZeroMean) {
  // Hover edge case: no systematic velocity may appear from the scale
  // error (0 · scale = 0); only white noise remains.
  FlowConfig cfg = noise_free_flow();
  cfg.noise_stddev_m_s = 0.02;
  cfg.scale_error_stddev = 0.5;  // Huge scale error, irrelevant at v = 0.
  Rng rng(6);
  const FlowSensor flow(cfg, rng);
  RunningStats vx;
  for (int i = 0; i < 4000; ++i) {
    const FlowMeasurement m = flow.measure({0.0, 0.0}, rng);
    ASSERT_TRUE(m.valid);
    vx.add(m.velocity_body.x);
  }
  EXPECT_NEAR(vx.mean(), 0.0, 3.0 * 0.02 / std::sqrt(4000.0));
}

TEST(FlowSensor, ScaleErrorIsMultiplicative) {
  FlowConfig cfg = noise_free_flow();
  cfg.scale_error_stddev = 0.1;
  Rng rng(7);
  const FlowSensor flow(cfg, rng);
  const double scale = flow.scale();
  EXPECT_NE(scale, 1.0);
  const FlowMeasurement m = flow.measure({1.0, 2.0}, rng);
  ASSERT_TRUE(m.valid);
  EXPECT_DOUBLE_EQ(m.velocity_body.x, scale * 1.0);
  EXPECT_DOUBLE_EQ(m.velocity_body.y, scale * 2.0);
}

TEST(FlowSensor, DropoutRateMatchesConfig) {
  FlowConfig cfg = noise_free_flow();
  cfg.p_dropout = 0.25;
  Rng rng(8);
  const FlowSensor flow(cfg, rng);
  int dropped = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    if (!flow.measure({0.1, 0.0}, rng).valid) ++dropped;
  }
  const double rate = static_cast<double>(dropped) / trials;
  EXPECT_NEAR(rate, cfg.p_dropout, 0.03);
}

TEST(FlowSensor, DroppedMeasurementIsInvalidAndZero) {
  FlowConfig cfg = noise_free_flow();
  cfg.p_dropout = 1.0;  // Degenerate edge: every update dropped.
  Rng rng(9);
  const FlowSensor flow(cfg, rng);
  const FlowMeasurement m = flow.measure({3.0, -3.0}, rng);
  EXPECT_FALSE(m.valid);
  EXPECT_DOUBLE_EQ(m.velocity_body.x, 0.0);
  EXPECT_DOUBLE_EQ(m.velocity_body.y, 0.0);
}

TEST(FlowSensor, DeterministicForFixedSeed) {
  FlowConfig cfg;  // Defaults: all noise mechanisms active.
  Rng rng_a(10), rng_b(10);
  const FlowSensor a(cfg, rng_a), b(cfg, rng_b);
  for (int i = 0; i < 100; ++i) {
    const FlowMeasurement ma = a.measure({0.2, 0.1}, rng_a);
    const FlowMeasurement mb = b.measure({0.2, 0.1}, rng_b);
    EXPECT_EQ(ma.valid, mb.valid);
    EXPECT_DOUBLE_EQ(ma.velocity_body.x, mb.velocity_body.x);
    EXPECT_DOUBLE_EQ(ma.velocity_body.y, mb.velocity_body.y);
  }
}

}  // namespace
}  // namespace tofmcl::estimation
