// Tests for the evaluation metrics: convergence detection, ATE, the
// success criterion and the convergence-probability curve.

#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tofmcl::eval {
namespace {

ErrorSample at(double t, double pos, double yaw = 0.0) {
  return {t, pos, yaw};
}

/// Single-sample convergence criteria for unit-testing the gate logic in
/// isolation from the stability window.
ConvergenceCriteria instant() {
  ConvergenceCriteria c;
  c.stable_steps = 1;
  return c;
}

TEST(EvaluateRun, EmptyTraceNeverConverges) {
  const RunMetrics m = evaluate_run({});
  EXPECT_FALSE(m.converged);
  EXPECT_FALSE(m.success);
}

TEST(EvaluateRun, NeverWithinGates) {
  const RunMetrics m =
      evaluate_run({at(0, 1.5), at(1, 0.8), at(2, 0.5), at(3, 0.3)});
  EXPECT_FALSE(m.converged);
  EXPECT_FALSE(m.success);
}

TEST(EvaluateRun, ConvergenceRequiresBothGates) {
  // Position inside 0.2 m but yaw beyond 36° does not converge.
  const RunMetrics m1 = evaluate_run({at(0, 0.1, deg_to_rad(90.0))}, instant());
  EXPECT_FALSE(m1.converged);
  // Both inside.
  const RunMetrics m2 = evaluate_run({at(0, 0.1, deg_to_rad(10.0))}, instant());
  EXPECT_TRUE(m2.converged);
}

TEST(EvaluateRun, ConvergenceTimeIsFirstCrossing) {
  const RunMetrics m = evaluate_run(
      {at(0, 2.0), at(1, 0.6), at(2, 0.15), at(3, 0.1)}, instant());
  ASSERT_TRUE(m.converged);
  EXPECT_DOUBLE_EQ(m.convergence_time_s, 2.0);
}

TEST(EvaluateRun, AteAveragedAfterConvergence) {
  const RunMetrics m = evaluate_run(
      {at(0, 3.0), at(1, 0.1), at(2, 0.2), at(3, 0.3)}, instant());
  ASSERT_TRUE(m.converged);
  EXPECT_NEAR(m.ate_m, 0.2, 1e-12);  // pre-convergence sample excluded
  EXPECT_DOUBLE_EQ(m.max_error_after_convergence_m, 0.3);
  EXPECT_TRUE(m.success);
}

TEST(EvaluateRun, DivergenceAfterConvergenceFails) {
  // Converges then blows past 1 m: tracking is not reliable.
  const RunMetrics m = evaluate_run(
      {at(0, 0.1), at(1, 0.1), at(2, 2.5), at(3, 2.5), at(4, 2.5)},
      instant());
  ASSERT_TRUE(m.converged);
  EXPECT_GT(m.ate_m, 1.0);
  EXPECT_FALSE(m.success);
}

TEST(EvaluateRun, BriefSpikeToleratedByAte) {
  // A short spike above 1 m keeps the mean below the bound — tracking is
  // judged on the aggregate ATE, as in the paper.
  std::vector<ErrorSample> trace{at(0, 0.1)};
  for (int i = 1; i <= 20; ++i) trace.push_back(at(i, 0.1));
  trace.push_back(at(21, 1.4));
  trace.push_back(at(22, 0.1));
  const RunMetrics m = evaluate_run(trace);
  EXPECT_TRUE(m.success);
  EXPECT_DOUBLE_EQ(m.max_error_after_convergence_m, 1.4);
}

TEST(EvaluateRun, StableWindowFiltersFlukes) {
  // Default criteria require 3 consecutive in-gate samples: a single dip
  // does not count as convergence.
  const RunMetrics fluke = evaluate_run(
      {at(0, 2.0), at(1, 0.1), at(2, 2.0), at(3, 2.0), at(4, 2.0)});
  EXPECT_FALSE(fluke.converged);
  // Three consecutive do, and convergence dates from the window start.
  const RunMetrics real = evaluate_run(
      {at(0, 2.0), at(1, 0.1), at(2, 0.1), at(3, 0.1), at(4, 0.1)});
  ASSERT_TRUE(real.converged);
  EXPECT_DOUBLE_EQ(real.convergence_time_s, 1.0);
}

TEST(EvaluateRun, CustomCriteria) {
  ConvergenceCriteria strict;
  strict.pos_m = 0.05;
  const RunMetrics m = evaluate_run({at(0, 0.1)}, strict);
  EXPECT_FALSE(m.converged);
}

TEST(ConvergenceCurve, MonotoneAndBounded) {
  std::vector<RunMetrics> runs(4);
  runs[0].converged = true;
  runs[0].convergence_time_s = 5.0;
  runs[1].converged = true;
  runs[1].convergence_time_s = 20.0;
  runs[2].converged = true;
  runs[2].convergence_time_s = 45.0;
  runs[3].converged = false;  // never
  const ConvergenceCurve curve = convergence_curve(runs, 60.0, 61);
  ASSERT_EQ(curve.time_s.size(), 61u);
  EXPECT_DOUBLE_EQ(curve.probability.front(), 0.0);
  EXPECT_DOUBLE_EQ(curve.probability.back(), 0.75);  // 3 of 4
  double prev = 0.0;
  for (const double p : curve.probability) {
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  // P(t=20) counts the first two runs.
  EXPECT_DOUBLE_EQ(curve.probability[20], 0.5);
}

TEST(ConvergenceCurve, RejectsBadArgs) {
  EXPECT_THROW(convergence_curve({}, 0.0, 10), PreconditionError);
  EXPECT_THROW(convergence_curve({}, 10.0, 1), PreconditionError);
}

TEST(ConvergenceCurve, EmptyRunsGiveZeroCurve) {
  const ConvergenceCurve curve = convergence_curve({}, 10.0, 5);
  for (const double p : curve.probability) EXPECT_DOUBLE_EQ(p, 0.0);
}

}  // namespace
}  // namespace tofmcl::eval
