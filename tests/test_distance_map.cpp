// Tests for the full-precision and 8-bit quantized distance maps — the
// paper's fp32 vs *qm map representations (Section III-C2, Fig 9).

#include "map/distance_map.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace tofmcl::map {
namespace {

OccupancyGrid wall_grid() {
  // 2 m × 1 m map at 0.05 m with a wall along x = 0 (cells x==0 occupied).
  OccupancyGrid g(40, 20, 0.05, {0.0, 0.0}, CellState::kFree);
  for (int y = 0; y < 20; ++y) g.set({0, y}, CellState::kOccupied);
  return g;
}

TEST(DistanceMap, GeometryMirrorsGrid) {
  const auto g = wall_grid();
  const DistanceMap dm(g, 1.5);
  EXPECT_EQ(dm.width(), g.width());
  EXPECT_EQ(dm.height(), g.height());
  EXPECT_DOUBLE_EQ(dm.resolution(), g.resolution());
  EXPECT_FLOAT_EQ(dm.rmax(), 1.5f);
  EXPECT_EQ(dm.values().size(), g.cell_count());
}

TEST(DistanceMap, DistanceGrowsWithX) {
  const DistanceMap dm(wall_grid(), 1.5);
  // Cell centers on row y=10: distance to wall cell centers = x cells.
  EXPECT_FLOAT_EQ(dm.distance_at({0.025, 0.525}), 0.0f);
  EXPECT_FLOAT_EQ(dm.distance_at({0.525, 0.525}), 0.5f);
  EXPECT_FLOAT_EQ(dm.distance_at({1.025, 0.525}), 1.0f);
  // 39 cells away = 1.95 m → truncated at 1.5.
  EXPECT_FLOAT_EQ(dm.distance_at({1.975, 0.525}), 1.5f);
}

TEST(DistanceMap, OutOfMapReturnsRmax) {
  const DistanceMap dm(wall_grid(), 1.5);
  EXPECT_FLOAT_EQ(dm.distance_at({-0.5, 0.5}), 1.5f);
  EXPECT_FLOAT_EQ(dm.distance_at({0.5, 100.0}), 1.5f);
}

TEST(DistanceMap, BytesPerCellMatchesPaper) {
  EXPECT_EQ(DistanceMap::bytes_per_cell(), 5u);
  EXPECT_EQ(QuantizedDistanceMap::bytes_per_cell(), 2u);
}

TEST(QuantizedDistanceMap, CodesSpanFullRange) {
  const QuantizedDistanceMap qm(wall_grid(), 1.5);
  EXPECT_EQ(qm.code_at({0.025, 0.525}), 0);
  // Truncated region maps to code 255.
  EXPECT_EQ(qm.code_at({1.975, 0.525}), 255);
  EXPECT_FLOAT_EQ(qm.step(), 1.5f / 255.0f);
}

TEST(QuantizedDistanceMap, OutOfMapReturnsMaxCode) {
  const QuantizedDistanceMap qm(wall_grid(), 1.5);
  EXPECT_EQ(qm.code_at({-1.0, 0.0}), 255);
  EXPECT_FLOAT_EQ(qm.distance_at({-1.0, 0.0}), 1.5f);
}

TEST(QuantizedDistanceMap, QuantizationErrorBounded) {
  // |dequantized - float field| ≤ step/2 everywhere — the property behind
  // the paper's "no significant accuracy loss" claim.
  Rng rng(77);
  OccupancyGrid g(30, 30, 0.05, {0.0, 0.0}, CellState::kFree);
  for (int i = 0; i < 25; ++i) {
    g.set({static_cast<int>(rng.uniform_index(30)),
           static_cast<int>(rng.uniform_index(30))},
          CellState::kOccupied);
  }
  const double rmax = 1.5;
  const DistanceMap dm(g, rmax);
  const QuantizedDistanceMap qm(g, rmax);
  const double half_step = rmax / 255.0 / 2.0 + 1e-6;
  for (int y = 0; y < 30; ++y) {
    for (int x = 0; x < 30; ++x) {
      const Vec2 p = g.cell_center({x, y});
      EXPECT_NEAR(qm.distance_at(p), dm.distance_at(p), half_step)
          << "at cell (" << x << "," << y << ")";
    }
  }
}

TEST(QuantizedDistanceMap, MonotoneInDistance) {
  // Quantization must preserve ordering: farther cells never get a
  // smaller code.
  const QuantizedDistanceMap qm(wall_grid(), 1.5);
  std::uint8_t prev = 0;
  for (int x = 0; x < 40; ++x) {
    const std::uint8_t code = qm.code_at({0.025 + 0.05 * x, 0.525});
    EXPECT_GE(code, prev);
    prev = code;
  }
}

}  // namespace
}  // namespace tofmcl::map
