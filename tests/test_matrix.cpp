// Tests for the fixed-size matrix algebra backing the EKF.

#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tofmcl {
namespace {

TEST(Mat, ZeroAndIdentity) {
  const auto z = Mat<3, 3>::zero();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(z(r, c), 0.0);
  }
  const auto i = Mat<3, 3>::identity();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Mat, Diagonal) {
  const auto d = Mat<3, 3>::diagonal({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(d(2, 2), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Mat, AddSubScale) {
  Mat<2, 2> a;
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  const auto b = a * 2.0;
  EXPECT_DOUBLE_EQ(b(1, 1), 8.0);
  const auto c = b - a;
  EXPECT_DOUBLE_EQ(c(0, 1), 2.0);
  const auto d = a + a;
  EXPECT_DOUBLE_EQ(d(1, 0), 6.0);
  const auto e = 3.0 * a;
  EXPECT_DOUBLE_EQ(e(0, 0), 3.0);
}

TEST(Mat, MultiplyKnown) {
  Mat<2, 3> a;
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Mat<3, 2> b;
  b(0, 0) = 7;
  b(0, 1) = 8;
  b(1, 0) = 9;
  b(1, 1) = 10;
  b(2, 0) = 11;
  b(2, 1) = 12;
  const Mat<2, 2> c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Mat, IdentityIsMultiplicativeNeutral) {
  using Mat3 = Mat<3, 3>;
  Mat3 a;
  for (std::size_t i = 0; i < 9; ++i) a.m[i] = static_cast<double>(i) - 4.0;
  EXPECT_EQ(a * Mat3::identity(), a);
  EXPECT_EQ(Mat3::identity() * a, a);
}

TEST(Mat, Transpose) {
  Mat<2, 3> a;
  a(0, 2) = 5.0;
  a(1, 0) = -2.0;
  const Mat<3, 2> t = a.transposed();
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -2.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(Mat, Symmetrize) {
  Mat<2, 2> a;
  a(0, 1) = 1.0;
  a(1, 0) = 3.0;
  a.symmetrize();
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 2.0);
}

TEST(Mat, Inverse2x2) {
  Mat<2, 2> a;
  a(0, 0) = 4.0;
  a(0, 1) = 7.0;
  a(1, 0) = 2.0;
  a(1, 1) = 6.0;
  const Mat<2, 2> inv = inverse(a);
  const Mat<2, 2> prod = a * inv;
  EXPECT_NEAR(prod(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(prod(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(prod(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(prod(1, 1), 1.0, 1e-12);
}

TEST(Mat, InverseSingularThrows) {
  Mat<2, 2> a;  // all zeros
  EXPECT_THROW(inverse(a), PreconditionError);
  Mat<1, 1> b;
  EXPECT_THROW(inverse(b), PreconditionError);
}

TEST(Mat, Inverse1x1) {
  Mat<1, 1> a;
  a(0, 0) = 4.0;
  EXPECT_DOUBLE_EQ(inverse(a)(0, 0), 0.25);
}

TEST(Mat, VectorProduct) {
  Mat<2, 2> a;
  a(0, 0) = 0.0;
  a(0, 1) = -1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;  // 90° rotation
  Vec<2> v;
  v(0, 0) = 1.0;
  v(1, 0) = 0.0;
  const Vec<2> r = a * v;
  EXPECT_DOUBLE_EQ(r(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r(1, 0), 1.0);
}

}  // namespace
}  // namespace tofmcl
