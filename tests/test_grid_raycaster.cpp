// Tests for the Amanatides–Woo grid raycaster, including cross-validation
// against the analytic segment-world raycaster on rasterized maps.

#include "sensor/grid_raycaster.hpp"

#include <gtest/gtest.h>

#include "common/angles.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "map/rasterize.hpp"

namespace tofmcl::sensor {
namespace {

using map::CellState;
using map::OccupancyGrid;

OccupancyGrid wall_grid() {
  // 20×20 cells at 0.1 m; wall column at x index 15 (world x ∈ [1.5, 1.6)).
  OccupancyGrid g(20, 20, 0.1, {0.0, 0.0}, CellState::kFree);
  for (int y = 0; y < 20; ++y) g.set({15, y}, CellState::kOccupied);
  return g;
}

TEST(GridRaycast, StraightHit) {
  const auto g = wall_grid();
  const auto hit = raycast_grid(g, {0.55, 1.05}, 0.0, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->distance, 1.5 - 0.55, 1e-9);
  EXPECT_EQ(hit->cell, (map::CellIndex{15, 10}));
}

TEST(GridRaycast, NegativeDirection) {
  OccupancyGrid g(20, 20, 0.1, {0.0, 0.0}, CellState::kFree);
  for (int y = 0; y < 20; ++y) g.set({2, y}, CellState::kOccupied);
  const auto hit = raycast_grid(g, {1.05, 1.05}, kPi, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->distance, 1.05 - 0.3, 1e-9);
}

TEST(GridRaycast, VerticalRay) {
  OccupancyGrid g(20, 20, 0.1, {0.0, 0.0}, CellState::kFree);
  for (int x = 0; x < 20; ++x) g.set({x, 17}, CellState::kOccupied);
  const auto up = raycast_grid(g, {1.0, 0.25}, kPi / 2.0, 10.0);
  ASSERT_TRUE(up.has_value());
  EXPECT_NEAR(up->distance, 1.7 - 0.25, 1e-9);
  const auto down = raycast_grid(g, {1.0, 0.25}, -kPi / 2.0, 10.0);
  EXPECT_FALSE(down.has_value());
}

TEST(GridRaycast, MaxRangeCutoff) {
  const auto g = wall_grid();
  EXPECT_FALSE(raycast_grid(g, {0.05, 1.0}, 0.0, 1.0).has_value());
  EXPECT_TRUE(raycast_grid(g, {0.05, 1.0}, 0.0, 2.0).has_value());
}

TEST(GridRaycast, OriginInsideOccupiedCell) {
  const auto g = wall_grid();
  const auto hit = raycast_grid(g, {1.55, 0.5}, 0.7, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->distance, 0.0);
}

TEST(GridRaycast, OriginOutsideGridMisses) {
  const auto g = wall_grid();
  EXPECT_FALSE(raycast_grid(g, {-1.0, 1.0}, 0.0, 10.0).has_value());
}

TEST(GridRaycast, ExitsGridWithoutHit) {
  OccupancyGrid g(10, 10, 0.1, {0.0, 0.0}, CellState::kFree);
  EXPECT_FALSE(raycast_grid(g, {0.5, 0.5}, 0.3, 10.0).has_value());
}

TEST(GridRaycast, UnknownCellsAreTransparent) {
  OccupancyGrid g(20, 1, 0.1, {0.0, 0.0}, CellState::kFree);
  g.set({5, 0}, CellState::kUnknown);
  g.set({10, 0}, CellState::kOccupied);
  const auto hit = raycast_grid(g, {0.05, 0.05}, 0.0, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->distance, 0.95, 1e-9);
}

TEST(GridRaycast, RejectsNegativeRange) {
  const auto g = wall_grid();
  EXPECT_THROW(raycast_grid(g, {0.5, 0.5}, 0.0, -1.0), PreconditionError);
}

TEST(GridRaycast, AgreesWithAnalyticWorldOnRasterizedMap) {
  // Property: distances through the rasterized map match the analytic
  // world up to the rasterized wall inflation. A painted wall is up to
  // h ≈ (thickness + cell diagonal)/2 thicker than the ideal segment, so a
  // ray meeting the wall at grazing angle θ can stop h/sin(θ) early — but
  // it can never hit significantly *after* the true wall. A closed box is
  // used so no ray can near-miss a free wall end (where rasterization
  // genuinely changes topology).
  map::World w;
  w.add_rectangle({{0.0, 0.0}, {4.0, 3.0}});
  map::RasterizeOptions opt;
  opt.resolution = 0.05;
  const OccupancyGrid g = map::rasterize(w, opt);
  const double inflation =
      opt.wall_thickness / 2.0 + opt.resolution * std::numbers::sqrt2 / 2.0;

  Rng rng(42);
  int compared = 0;
  RunningStats abs_err;
  for (int i = 0; i < 2000; ++i) {
    const Vec2 origin{rng.uniform(0.3, 3.7), rng.uniform(0.3, 2.7)};
    const double angle = rng.uniform(-kPi, kPi);
    const auto analytic = w.raycast(origin, angle, 6.0);
    const auto gridded = raycast_grid(g, origin, angle, 6.0);
    ASSERT_TRUE(analytic.has_value());  // box is closed
    ASSERT_TRUE(gridded.has_value())
        << "origin=(" << origin.x << "," << origin.y << ") angle=" << angle;

    const map::Segment& s = w.segments()[analytic->segment];
    const Vec2 wall_dir = (s.b - s.a).normalized();
    const Vec2 ray_dir{std::cos(angle), std::sin(angle)};
    const double sin_grazing = std::sqrt(std::max(
        0.0, 1.0 - ray_dir.dot(wall_dir) * ray_dir.dot(wall_dir)));
    if (sin_grazing < 0.1) continue;  // near-parallel rides are unbounded

    // Skip rays that brush another wall's inflation band before their
    // analytic hit (e.g. corner-grazing paths): there the grid legitimately
    // stops at the brushed wall.
    bool brushes_other_wall = false;
    const double path_len = analytic->distance - 3.0 * opt.resolution;
    for (double t = 0.0; t < path_len && !brushes_other_wall; t += 0.02) {
      if (w.clearance(origin + ray_dir * t) < inflation + 0.5 * opt.resolution) {
        brushes_other_wall = true;
      }
    }
    if (brushes_other_wall) continue;

    const double early_budget = inflation / sin_grazing + opt.resolution;
    EXPECT_LE(gridded->distance, analytic->distance + 2.0 * opt.resolution)
        << "origin=(" << origin.x << "," << origin.y << ") angle=" << angle;
    EXPECT_GE(gridded->distance, analytic->distance - early_budget)
        << "origin=(" << origin.x << "," << origin.y << ") angle=" << angle;
    abs_err.add(std::abs(gridded->distance - analytic->distance));
    ++compared;
  }
  EXPECT_GT(compared, 1500);
  // Typical agreement stays within ~one cell.
  EXPECT_LT(abs_err.mean(), 1.5 * opt.resolution);
}

}  // namespace
}  // namespace tofmcl::sensor
