// Tests for the Amanatides–Woo grid raycaster, including cross-validation
// against the analytic segment-world raycaster on rasterized maps.

#include "sensor/grid_raycaster.hpp"

#include <gtest/gtest.h>

#include "common/angles.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "map/rasterize.hpp"

namespace tofmcl::sensor {
namespace {

using map::CellState;
using map::OccupancyGrid;

OccupancyGrid wall_grid() {
  // 20×20 cells at 0.1 m; wall column at x index 15 (world x ∈ [1.5, 1.6)).
  OccupancyGrid g(20, 20, 0.1, {0.0, 0.0}, CellState::kFree);
  for (int y = 0; y < 20; ++y) g.set({15, y}, CellState::kOccupied);
  return g;
}

TEST(GridRaycast, StraightHit) {
  const auto g = wall_grid();
  const auto hit = raycast_grid(g, {0.55, 1.05}, 0.0, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->distance, 1.5 - 0.55, 1e-9);
  EXPECT_EQ(hit->cell, (map::CellIndex{15, 10}));
}

TEST(GridRaycast, NegativeDirection) {
  OccupancyGrid g(20, 20, 0.1, {0.0, 0.0}, CellState::kFree);
  for (int y = 0; y < 20; ++y) g.set({2, y}, CellState::kOccupied);
  const auto hit = raycast_grid(g, {1.05, 1.05}, kPi, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->distance, 1.05 - 0.3, 1e-9);
}

TEST(GridRaycast, VerticalRay) {
  OccupancyGrid g(20, 20, 0.1, {0.0, 0.0}, CellState::kFree);
  for (int x = 0; x < 20; ++x) g.set({x, 17}, CellState::kOccupied);
  const auto up = raycast_grid(g, {1.0, 0.25}, kPi / 2.0, 10.0);
  ASSERT_TRUE(up.has_value());
  EXPECT_NEAR(up->distance, 1.7 - 0.25, 1e-9);
  const auto down = raycast_grid(g, {1.0, 0.25}, -kPi / 2.0, 10.0);
  EXPECT_FALSE(down.has_value());
}

TEST(GridRaycast, MaxRangeCutoff) {
  const auto g = wall_grid();
  EXPECT_FALSE(raycast_grid(g, {0.05, 1.0}, 0.0, 1.0).has_value());
  EXPECT_TRUE(raycast_grid(g, {0.05, 1.0}, 0.0, 2.0).has_value());
}

TEST(GridRaycast, OriginInsideOccupiedCell) {
  const auto g = wall_grid();
  const auto hit = raycast_grid(g, {1.55, 0.5}, 0.7, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->distance, 0.0);
}

TEST(GridRaycast, OriginOutsideGridMisses) {
  const auto g = wall_grid();
  EXPECT_FALSE(raycast_grid(g, {-1.0, 1.0}, 0.0, 10.0).has_value());
}

TEST(GridRaycast, ExitsGridWithoutHit) {
  OccupancyGrid g(10, 10, 0.1, {0.0, 0.0}, CellState::kFree);
  EXPECT_FALSE(raycast_grid(g, {0.5, 0.5}, 0.3, 10.0).has_value());
}

TEST(GridRaycast, UnknownCellsAreTransparent) {
  OccupancyGrid g(20, 1, 0.1, {0.0, 0.0}, CellState::kFree);
  g.set({5, 0}, CellState::kUnknown);
  g.set({10, 0}, CellState::kOccupied);
  const auto hit = raycast_grid(g, {0.05, 0.05}, 0.0, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->distance, 0.95, 1e-9);
}

TEST(GridRaycast, RejectsNegativeRange) {
  const auto g = wall_grid();
  EXPECT_THROW(raycast_grid(g, {0.5, 0.5}, 0.0, -1.0), PreconditionError);
}

// Corner tunneling regression: a diagonal ray whose boundary crossings
// tie exactly (t_max_x == t_max_y) passes through a cell corner. The DDA
// used to take only the y-step there, so the x-side flanking cell was
// never checked and the ray could slip past obstacles touching that
// corner.
//
// Constructing an exact floating-point tie takes care: sin(π/4) and
// cos(π/4) differ in their last bit on common libms, so the origin is
// placed at (corner − K·dir) for exact binary fractions K — K·cos and
// K·sin are exact products, the subtractions are exact by Sterbenz, and
// for some K both divisions round to the same double. The helper searches
// a small K set and asserts one ties, reproducing the raycaster's own
// arithmetic.
double find_exact_tie(double corner, const Vec2& dir, Vec2& origin_out) {
  for (const double k : {0.75, 0.6875, 0.5, 0.625, 0.8125, 0.5625, 0.4375,
                         0.375, 0.25}) {
    const Vec2 origin{corner - k * dir.x, corner - k * dir.y};
    const double t_max_x = (corner - origin.x) / dir.x;
    const double t_max_y = (corner - origin.y) / dir.y;
    if (t_max_x == t_max_y) {
      origin_out = origin;
      return t_max_x;
    }
  }
  return -1.0;
}

TEST(GridRaycast, CornerTieChecksBothFlankingCells) {
  const double angle = kPi / 4.0;
  const Vec2 dir{std::cos(angle), std::sin(angle)};
  // Grid: 1 m cells, corner of interest at (1, 1).
  Vec2 origin_pt;
  const double tie_t = find_exact_tie(1.0, dir, origin_pt);
  ASSERT_GT(tie_t, 0.0) << "no exact tie constructible on this platform";
  ASSERT_LT(tie_t, 1.0);  // origin stays inside cell (0, 0)

  // Only the x-side cell (1, 0) occupied: the old code tunneled past it.
  {
    OccupancyGrid g(4, 4, 1.0, {0.0, 0.0}, CellState::kFree);
    g.set({1, 0}, CellState::kOccupied);
    const auto hit = raycast_grid(g, origin_pt, angle, 10.0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->distance, tie_t);
    EXPECT_EQ(hit->cell, (map::CellIndex{1, 0}));
  }
  // Only the y-side cell (0, 1) occupied.
  {
    OccupancyGrid g(4, 4, 1.0, {0.0, 0.0}, CellState::kFree);
    g.set({0, 1}, CellState::kOccupied);
    const auto hit = raycast_grid(g, origin_pt, angle, 10.0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->distance, tie_t);
    EXPECT_EQ(hit->cell, (map::CellIndex{0, 1}));
  }
  // Both flanking cells occupied — the classic corner barrier. The
  // diagonal cell behind it must be unreachable.
  {
    OccupancyGrid g(4, 4, 1.0, {0.0, 0.0}, CellState::kFree);
    g.set({1, 0}, CellState::kOccupied);
    g.set({0, 1}, CellState::kOccupied);
    const auto hit = raycast_grid(g, origin_pt, angle, 10.0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->distance, tie_t);
  }
  // Nothing at the corner: the ray continues into the diagonal cell and
  // beyond.
  {
    OccupancyGrid g(4, 4, 1.0, {0.0, 0.0}, CellState::kFree);
    g.set({2, 2}, CellState::kOccupied);
    const auto hit = raycast_grid(g, origin_pt, angle, 10.0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->cell, (map::CellIndex{2, 2}));
  }
  // A tie landing exactly on the far grid boundary exits cleanly: shift
  // the grid so the same corner (1, 1) — same tie arithmetic — is the
  // grid's top-right extremity and the origin sits in the last cell.
  {
    OccupancyGrid g(2, 2, 1.0, {-1.0, -1.0}, CellState::kFree);
    EXPECT_FALSE(raycast_grid(g, origin_pt, angle, 10.0).has_value());
  }
}

// Property check against dense sampling: on random grids and random rays,
// the DDA must never report a hit later than the first sampled entry into
// occupied space (tunneling), must never pass through occupied space the
// sampler sees, and every reported hit must lie on the reported cell.
TEST(GridRaycast, BruteForceSamplingCrossCheck) {
  Rng rng(7);
  const double res = 0.1;
  const double max_range = 4.0;
  int hits = 0;
  int misses = 0;
  for (int trial = 0; trial < 120; ++trial) {
    OccupancyGrid g(24, 24, res, {0.0, 0.0}, CellState::kFree);
    for (int y = 0; y < g.height(); ++y) {
      for (int x = 0; x < g.width(); ++x) {
        if (rng.uniform() < 0.15) g.set({x, y}, CellState::kOccupied);
      }
    }
    for (int ray = 0; ray < 40; ++ray) {
      const Vec2 origin{rng.uniform(0.05, 2.35), rng.uniform(0.05, 2.35)};
      if (g.is_occupied(g.world_to_cell(origin))) continue;
      const double angle = rng.uniform(-kPi, kPi);
      const Vec2 dir{std::cos(angle), std::sin(angle)};
      const auto hit = raycast_grid(g, origin, angle, max_range);

      // Dense sampling: first sample inside an occupied in-bounds cell.
      const double ds = res / 64.0;
      double brute = -1.0;
      for (double t = ds; t <= max_range; t += ds) {
        const map::CellIndex c = g.world_to_cell(origin + dir * t);
        if (!g.in_bounds(c)) break;
        if (g.is_occupied(c)) {
          brute = t;
          break;
        }
      }

      if (brute >= 0.0) {
        // The sampler found occupied space: the DDA must hit, and no
        // later than the sampled entry (no tunneling).
        ASSERT_TRUE(hit.has_value())
            << "tunneled: origin=(" << origin.x << "," << origin.y
            << ") angle=" << angle << " brute=" << brute;
        EXPECT_LE(hit->distance, brute + 1e-9);
        ++hits;
      }
      if (hit) {
        // Every reported hit is consistent: the hit cell is occupied and
        // the hit point lies on its boundary (within float slop), and no
        // sample strictly before the hit is inside occupied space.
        EXPECT_TRUE(g.is_occupied(hit->cell));
        const Vec2 p = origin + dir * hit->distance;
        const Vec2 lo = g.cell_center(hit->cell) - Vec2{res / 2, res / 2};
        EXPECT_GE(p.x, lo.x - 1e-9);
        EXPECT_LE(p.x, lo.x + res + 1e-9);
        EXPECT_GE(p.y, lo.y - 1e-9);
        EXPECT_LE(p.y, lo.y + res + 1e-9);
        for (double t = ds; t < hit->distance - 1e-9; t += ds) {
          const map::CellIndex c = g.world_to_cell(origin + dir * t);
          if (!g.in_bounds(c)) break;
          ASSERT_FALSE(g.is_occupied(c))
              << "late hit: origin=(" << origin.x << "," << origin.y
              << ") angle=" << angle << " t=" << t << " hit="
              << hit->distance;
        }
      } else {
        ++misses;
      }
    }
  }
  // The random grids are dense enough that both outcomes occur often.
  EXPECT_GT(hits, 1000);
  EXPECT_GT(misses, 100);
}

TEST(GridRaycast, AgreesWithAnalyticWorldOnRasterizedMap) {
  // Property: distances through the rasterized map match the analytic
  // world up to the rasterized wall inflation. A painted wall is up to
  // h ≈ (thickness + cell diagonal)/2 thicker than the ideal segment, so a
  // ray meeting the wall at grazing angle θ can stop h/sin(θ) early — but
  // it can never hit significantly *after* the true wall. A closed box is
  // used so no ray can near-miss a free wall end (where rasterization
  // genuinely changes topology).
  map::World w;
  w.add_rectangle({{0.0, 0.0}, {4.0, 3.0}});
  map::RasterizeOptions opt;
  opt.resolution = 0.05;
  const OccupancyGrid g = map::rasterize(w, opt);
  const double inflation =
      opt.wall_thickness / 2.0 + opt.resolution * std::numbers::sqrt2 / 2.0;

  Rng rng(42);
  int compared = 0;
  RunningStats abs_err;
  for (int i = 0; i < 2000; ++i) {
    const Vec2 origin{rng.uniform(0.3, 3.7), rng.uniform(0.3, 2.7)};
    const double angle = rng.uniform(-kPi, kPi);
    const auto analytic = w.raycast(origin, angle, 6.0);
    const auto gridded = raycast_grid(g, origin, angle, 6.0);
    ASSERT_TRUE(analytic.has_value());  // box is closed
    ASSERT_TRUE(gridded.has_value())
        << "origin=(" << origin.x << "," << origin.y << ") angle=" << angle;

    const map::Segment& s = w.segments()[analytic->segment];
    const Vec2 wall_dir = (s.b - s.a).normalized();
    const Vec2 ray_dir{std::cos(angle), std::sin(angle)};
    const double sin_grazing = std::sqrt(std::max(
        0.0, 1.0 - ray_dir.dot(wall_dir) * ray_dir.dot(wall_dir)));
    if (sin_grazing < 0.1) continue;  // near-parallel rides are unbounded

    // Skip rays that brush another wall's inflation band before their
    // analytic hit (e.g. corner-grazing paths): there the grid legitimately
    // stops at the brushed wall.
    bool brushes_other_wall = false;
    const double path_len = analytic->distance - 3.0 * opt.resolution;
    for (double t = 0.0; t < path_len && !brushes_other_wall; t += 0.02) {
      if (w.clearance(origin + ray_dir * t) < inflation + 0.5 * opt.resolution) {
        brushes_other_wall = true;
      }
    }
    if (brushes_other_wall) continue;

    const double early_budget = inflation / sin_grazing + opt.resolution;
    EXPECT_LE(gridded->distance, analytic->distance + 2.0 * opt.resolution)
        << "origin=(" << origin.x << "," << origin.y << ") angle=" << angle;
    EXPECT_GE(gridded->distance, analytic->distance - early_budget)
        << "origin=(" << origin.x << "," << origin.y << ") angle=" << angle;
    abs_err.add(std::abs(gridded->distance - analytic->distance));
    ++compared;
  }
  EXPECT_GT(compared, 1500);
  // Typical agreement stays within ~one cell.
  EXPECT_LT(abs_err.mean(), 1.5 * opt.resolution);
}

}  // namespace
}  // namespace tofmcl::sensor
