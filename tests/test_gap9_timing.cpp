// Tests for the GAP9 timing model, including the headline check: the
// calibrated model must reproduce the paper's Table I (per-particle times
// for 1 and 8 cores) within tolerance, and the Fig 10 speedup shape.

#include "platform/gap9_timing.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tofmcl::platform {
namespace {

constexpr double kF = 400.0;  // MHz, the paper's measurement frequency

Placement paper_placement(std::size_t particles) {
  // Tables I/II footnote: 4096 and 16384 particles live in L2.
  return particles >= 4096 ? Placement::kL2 : Placement::kL1;
}

struct TableOneRow {
  std::size_t particles;
  double observation[2];  // ns/particle {1 core, 8 cores}
  double motion[2];
  double resampling[2];
  double pose[2];
};

// The published Table I.
constexpr TableOneRow kTableOne[] = {
    {64, {8531, 1412}, {2828, 500}, {313, 250}, {750, 234}},
    {256, {8484, 1313}, {2715, 391}, {191, 121}, {633, 117}},
    {1024, {8518, 1283}, {2689, 357}, {161, 84}, {604, 86}},
    {4096, {8649, 1294}, {3002, 390}, {558, 108}, {777, 101}},
    {16384, {8704, 1295}, {2985, 386}, {556, 104}, {775, 99}},
};

class TableOneReproduction
    : public ::testing::TestWithParam<TableOneRow> {};

TEST_P(TableOneReproduction, WithinTolerance) {
  const TableOneRow row = GetParam();
  const Gap9TimingModel model = calibrated_timing_model();
  const Placement placement = paper_placement(row.particles);

  const auto check = [&](Phase phase, const double expected[2]) {
    const double t1 = model.phase_ns_per_particle(phase, row.particles, 1,
                                                  placement, kF);
    const double t8 = model.phase_ns_per_particle(phase, row.particles, 8,
                                                  placement, kF);
    // Reproduction target: within 15 % of the published measurement.
    EXPECT_NEAR(t1, expected[0], 0.15 * expected[0])
        << to_string(phase) << " 1-core N=" << row.particles;
    EXPECT_NEAR(t8, expected[1], 0.15 * expected[1])
        << to_string(phase) << " 8-core N=" << row.particles;
  };
  check(Phase::kObservation, row.observation);
  check(Phase::kMotion, row.motion);
  check(Phase::kResampling, row.resampling);
  check(Phase::kPoseComputation, row.pose);
}

// GCC 12's -Wrestrict fires a false positive inside the inlined
// libstdc++ std::string operator+ below (upstream PR 105651); scope the
// silence to exactly this statement.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
INSTANTIATE_TEST_SUITE_P(PaperRows, TableOneReproduction,
                         ::testing::ValuesIn(kTableOne),
                         [](const auto& suite_info) {
                           return "N" + std::to_string(suite_info.param.particles);
                         });
#pragma GCC diagnostic pop

TEST(Gap9Timing, FortyMicrosecondUpdateOverhead) {
  const Gap9TimingModel model = calibrated_timing_model();
  // Overhead = update minus the four phases, independent of N and cores.
  for (const std::size_t n : {64u, 1024u, 16384u}) {
    for (const std::size_t cores : {1u, 8u}) {
      const Placement placement = paper_placement(n);
      double phases = 0.0;
      for (const Phase p : kAllPhases) {
        phases += model.phase_ns(p, n, cores, placement, kF);
      }
      const double overhead =
          model.update_ns(n, cores, placement, kF) - phases;
      EXPECT_NEAR(overhead, 40000.0, 1000.0);
    }
  }
}

TEST(Gap9Timing, UpdateLatencyRangeMatchesPaper) {
  // Abstract claim: 0.2–30 ms latency depending on particle count
  // (8 cores, 400 MHz); Table II: 1.901 ms at 1024, 30.880 ms at 16384.
  const Gap9TimingModel model = calibrated_timing_model();
  const double t64 =
      model.update_ns(64, 8, Placement::kL1, kF) * 1e-6;
  const double t1024 =
      model.update_ns(1024, 8, Placement::kL1, kF) * 1e-6;
  const double t16384 =
      model.update_ns(16384, 8, Placement::kL2, kF) * 1e-6;
  EXPECT_NEAR(t64, 0.2, 0.08);
  EXPECT_NEAR(t1024, 1.901, 0.25);
  EXPECT_NEAR(t16384, 30.880, 3.0);
}

TEST(Gap9Timing, SpeedupImprovesWithParticleCount) {
  // Fig 10: total speedup grows with N, approaching ~7× at 16384.
  const Gap9TimingModel model = calibrated_timing_model();
  double prev = 0.0;
  for (const std::size_t n : {64u, 256u, 1024u, 4096u, 16384u}) {
    const double s = model.total_speedup(n, 8, paper_placement(n));
    EXPECT_GT(s, prev) << "N=" << n;
    prev = s;
  }
  EXPECT_NEAR(prev, 7.0, 0.5);
  // And the small-N end is clearly below the asymptote.
  EXPECT_LT(model.total_speedup(64, 8, Placement::kL1), 5.0);
}

TEST(Gap9Timing, ResamplingScalesWorst) {
  // Fig 10: resampling has the lowest speedup of the four phases in L1,
  // yet exceeds 5× for large particle counts in L2.
  const Gap9TimingModel model = calibrated_timing_model();
  const double res_1024 =
      model.phase_speedup(Phase::kResampling, 1024, 8, Placement::kL1);
  for (const Phase p :
       {Phase::kObservation, Phase::kMotion, Phase::kPoseComputation}) {
    EXPECT_LT(res_1024, model.phase_speedup(p, 1024, 8, Placement::kL1));
  }
  EXPECT_GT(model.phase_speedup(Phase::kResampling, 16384, 8,
                                Placement::kL2),
            5.0);
}

TEST(Gap9Timing, MonotoneInCores) {
  const Gap9TimingModel model = calibrated_timing_model();
  for (const Phase p : kAllPhases) {
    double prev = 1e300;
    for (std::size_t cores = 1; cores <= 8; ++cores) {
      const double t = model.phase_cycles(p, 4096, cores, Placement::kL2);
      EXPECT_LE(t, prev + 1e-9) << to_string(p) << " cores=" << cores;
      prev = t;
    }
  }
}

TEST(Gap9Timing, RealtimeFrequencies) {
  // Table II: 1024 particles still meet 67 ms at 12 MHz; 16384 need
  // ~200 MHz.
  const Gap9TimingModel model = calibrated_timing_model();
  const double f1024 =
      model.min_realtime_frequency_mhz(1024, 8, Placement::kL1);
  const double f16384 =
      model.min_realtime_frequency_mhz(16384, 8, Placement::kL2);
  EXPECT_LT(f1024, 12.5);
  EXPECT_GT(f16384, 150.0);
  EXPECT_LT(f16384, 200.0);
}

TEST(Gap9Timing, FrequencyScalesLinearly) {
  const Gap9TimingModel model = calibrated_timing_model();
  const double t400 = model.update_ns(1024, 8, Placement::kL1, 400.0);
  const double t200 = model.update_ns(1024, 8, Placement::kL1, 200.0);
  const double t12 = model.update_ns(1024, 8, Placement::kL1, 12.0);
  EXPECT_NEAR(t200, 2.0 * t400, 1e-6);
  EXPECT_NEAR(t12, 400.0 / 12.0 * t400, 1e-3);
}

TEST(Gap9Timing, InvalidArgsThrow) {
  const Gap9TimingModel model = calibrated_timing_model();
  EXPECT_THROW(model.phase_cycles(Phase::kMotion, 0, 1, Placement::kL1),
               PreconditionError);
  EXPECT_THROW(model.phase_cycles(Phase::kMotion, 64, 0, Placement::kL1),
               PreconditionError);
  EXPECT_THROW(model.phase_cycles(Phase::kMotion, 64, 9, Placement::kL1),
               PreconditionError);
  EXPECT_THROW(model.phase_ns(Phase::kMotion, 64, 1, Placement::kL1, 0.0),
               PreconditionError);
}

TEST(Gap9Spec, PlacementThreshold) {
  // 1024 fp32 particles (32 kB double-buffered) fit the L1 budget; 4096
  // (128 kB) do not — matching the paper's Table I/II footnotes.
  EXPECT_EQ(placement_for(1024 * 32), Placement::kL1);
  EXPECT_EQ(placement_for(4096 * 32), Placement::kL2);
  EXPECT_EQ(placement_for(16384 * 16), Placement::kL2);
}

}  // namespace
}  // namespace tofmcl::platform
