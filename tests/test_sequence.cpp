// Tests for the flight-sequence generator and dataset I/O: sample rates,
// collision-free trajectories, odometry drift realism and round-trip
// serialization.

#include "sim/sequence_generator.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/angles.hpp"
#include "sim/maze.hpp"

namespace tofmcl::sim {
namespace {

Sequence make_short_sequence(std::uint64_t seed = 42) {
  const map::World maze = drone_maze();
  FlightPlan plan;
  plan.name = "test_hop";
  plan.start = {0.5, 0.6, kPi / 2.0};
  plan.path = {{{0.5, 2.0}, 0.4}};
  Rng rng(seed);
  return generate_sequence(maze, plan, default_generator_config(), rng);
}

TEST(SequenceGenerator, ProducesConsistentSampling) {
  const Sequence seq = make_short_sequence();
  EXPECT_GT(seq.duration_s, 2.0);
  EXPECT_LT(seq.duration_s, 20.0);
  ASSERT_FALSE(seq.odometry.empty());
  ASSERT_EQ(seq.odometry.size(), seq.ground_truth.size());
  // Odometry at ~50 Hz.
  const double expected = seq.duration_s * 50.0;
  EXPECT_NEAR(static_cast<double>(seq.odometry.size()), expected,
              expected * 0.05 + 2.0);
  // Timestamps aligned and increasing.
  for (std::size_t i = 0; i < seq.odometry.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq.odometry[i].t, seq.ground_truth[i].t);
    if (i > 0) {
      EXPECT_GT(seq.odometry[i].t, seq.odometry[i - 1].t);
    }
  }
}

TEST(SequenceGenerator, TwoSensorsAtFifteenHz) {
  const Sequence seq = make_short_sequence();
  // Frames come in front+rear pairs at 15 Hz.
  const double expected_pairs = seq.duration_s * 15.0;
  EXPECT_NEAR(static_cast<double>(seq.frames.size()), 2.0 * expected_pairs,
              2.0 * expected_pairs * 0.1 + 4.0);
  int front = 0;
  int rear = 0;
  for (const auto& f : seq.frames) {
    if (f.sensor_id == 0) ++front;
    if (f.sensor_id == 1) ++rear;
  }
  EXPECT_EQ(front, rear);
  // Time-ordered.
  for (std::size_t i = 1; i < seq.frames.size(); ++i) {
    EXPECT_GE(seq.frames[i].timestamp_s, seq.frames[i - 1].timestamp_s);
  }
}

TEST(SequenceGenerator, TrajectoryIsCollisionFree) {
  const Sequence seq = make_short_sequence();
  EXPECT_GT(seq.min_clearance_m, 0.1);
}

TEST(SequenceGenerator, TruthReachesGoal) {
  const Sequence seq = make_short_sequence();
  const Pose2 final_pose = seq.ground_truth.back().pose;
  EXPECT_NEAR(final_pose.x(), 0.5, 0.3);
  EXPECT_NEAR(final_pose.y(), 2.0, 0.3);
}

TEST(SequenceGenerator, OdometryStartsAtOriginAndDrifts) {
  const Sequence seq = make_short_sequence();
  // Odometry frame starts at its own origin regardless of the map start.
  EXPECT_NEAR(seq.odometry.front().pose.x(), 0.0, 0.05);
  EXPECT_NEAR(seq.odometry.front().pose.y(), 0.0, 0.05);
  // Relative motion magnitude matches the truth, imperfectly.
  const double odom_dist = (seq.odometry.back().pose.position -
                            seq.odometry.front().pose.position)
                               .norm();
  const double true_dist = (seq.ground_truth.back().pose.position -
                            seq.ground_truth.front().pose.position)
                               .norm();
  EXPECT_NEAR(odom_dist, true_dist, 0.35 * true_dist + 0.05);
  EXPECT_GT(odom_dist, 0.5);
}

TEST(SequenceGenerator, DeterministicForSeed) {
  const Sequence a = make_short_sequence(7);
  const Sequence b = make_short_sequence(7);
  ASSERT_EQ(a.odometry.size(), b.odometry.size());
  ASSERT_EQ(a.frames.size(), b.frames.size());
  EXPECT_DOUBLE_EQ(a.odometry.back().pose.x(), b.odometry.back().pose.x());
  EXPECT_EQ(a.frames.back().zones[30].distance_m,
            b.frames.back().zones[30].distance_m);
}

TEST(SequenceGenerator, SeedsChangeNoise) {
  const Sequence a = make_short_sequence(1);
  const Sequence b = make_short_sequence(2);
  // Ground truth controller path is noise-free... but the EKF estimate
  // depends on sensor noise, so odometry must differ.
  EXPECT_NE(a.odometry.back().pose.x(), b.odometry.back().pose.x());
}

TEST(StandardFlightPlans, AllSixAreFlyable) {
  const auto plans = standard_flight_plans();
  ASSERT_EQ(plans.size(), 6u);
  const map::World maze = drone_maze();
  const auto cfg = default_generator_config();
  for (const FlightPlan& plan : plans) {
    Rng rng(99);
    const Sequence seq = generate_sequence(maze, plan, cfg, rng);
    EXPECT_GT(seq.duration_s, 5.0) << plan.name;
    EXPECT_LT(seq.duration_s, 120.0) << plan.name;
    EXPECT_GT(seq.min_clearance_m, 0.08) << plan.name;
    // Reached the last waypoint.
    const Vec2 goal = plan.path.back().position;
    EXPECT_LT((seq.ground_truth.back().pose.position - goal).norm(), 0.35)
        << plan.name;
  }
}

TEST(Dataset, InterpolatePose) {
  std::vector<StateSample> track{{0.0, {0.0, 0.0, 0.0}},
                                 {1.0, {1.0, 2.0, kPi / 2.0}}};
  const Pose2 mid = interpolate_pose(track, 0.5);
  EXPECT_NEAR(mid.x(), 0.5, 1e-12);
  EXPECT_NEAR(mid.y(), 1.0, 1e-12);
  EXPECT_NEAR(mid.yaw, kPi / 4.0, 1e-12);
  // Clamping outside the span.
  EXPECT_DOUBLE_EQ(interpolate_pose(track, -1.0).x(), 0.0);
  EXPECT_DOUBLE_EQ(interpolate_pose(track, 5.0).x(), 1.0);
}

TEST(Dataset, InterpolateAcrossYawSeam) {
  std::vector<StateSample> track{{0.0, {0.0, 0.0, deg_to_rad(170.0)}},
                                 {1.0, {0.0, 0.0, deg_to_rad(-170.0)}}};
  const Pose2 mid = interpolate_pose(track, 0.5);
  // Shorter arc crosses ±180°.
  EXPECT_NEAR(angle_dist(mid.yaw, kPi), 0.0, 1e-9);
}

TEST(Dataset, RoundTripStream) {
  const Sequence seq = make_short_sequence();
  std::stringstream ss;
  save_sequence(seq, ss);
  const Sequence loaded = load_sequence(ss);
  EXPECT_EQ(loaded.name, seq.name);
  ASSERT_EQ(loaded.odometry.size(), seq.odometry.size());
  ASSERT_EQ(loaded.frames.size(), seq.frames.size());
  EXPECT_DOUBLE_EQ(loaded.duration_s, seq.duration_s);
  // Spot-check numeric fidelity (text format carries default precision;
  // compare loosely).
  EXPECT_NEAR(loaded.odometry.back().pose.yaw, seq.odometry.back().pose.yaw,
              1e-4);
  EXPECT_NEAR(loaded.frames[3].zones[28].distance_m,
              seq.frames[3].zones[28].distance_m, 1e-4);
  EXPECT_EQ(loaded.frames[3].zones[28].status, seq.frames[3].zones[28].status);
}

TEST(Dataset, RoundTripFile) {
  const auto path = std::filesystem::temp_directory_path() /
                    "tofmcl_test_seq" / "seq.txt";
  const Sequence seq = make_short_sequence();
  save_sequence(seq, path);
  const Sequence loaded = load_sequence(path);
  EXPECT_EQ(loaded.name, seq.name);
  EXPECT_EQ(loaded.frames.size(), seq.frames.size());
  std::filesystem::remove_all(path.parent_path());
}

TEST(Dataset, LoadRejectsGarbage) {
  std::stringstream ss("garbage");
  EXPECT_THROW(load_sequence(ss), IoError);
  std::stringstream ss2("tofmcl-seq 2\n");
  EXPECT_THROW(load_sequence(ss2), IoError);
}

}  // namespace
}  // namespace tofmcl::sim
