// Tests for the stale-map mutation operators (sim::mutate_world):
// determinism (same (env, config, seed) → byte-identical mutated world,
// also across processes via the TOFMCL_MUTATION_TRACE hexfloat gate),
// the solid-interior invariant (mutated boxes stay Unknown inside, like
// every generated solid region), tour flyability through the mutated
// world, and the level-kNone bit-identity guarantee the campaign's
// staleness axis builds on.

#include "sim/worldgen.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "common/error.hpp"
#include "map/distance_map.hpp"
#include "map/map_io.hpp"
#include "plan/astar.hpp"
#include "sim/maze.hpp"
#include "sim/sequence_generator.hpp"

namespace tofmcl::sim {
namespace {

const GeneratedWorldKind kKinds[] = {GeneratedWorldKind::kOffice,
                                     GeneratedWorldKind::kWarehouse,
                                     GeneratedWorldKind::kLoopCorridor};
const MutationLevel kLevels[] = {MutationLevel::kLight,
                                 MutationLevel::kHeavy};

GeneratedWorld base_world(GeneratedWorldKind kind, std::uint64_t seed) {
  WorldGenConfig config;
  config.seed = seed;
  return generate_world(kind, config);
}

void expect_identical_envs(const EvaluationEnvironment& a,
                           const EvaluationEnvironment& b) {
  ASSERT_EQ(a.world.segments().size(), b.world.segments().size());
  for (std::size_t i = 0; i < a.world.segments().size(); ++i) {
    EXPECT_EQ(a.world.segments()[i].a, b.world.segments()[i].a);
    EXPECT_EQ(a.world.segments()[i].b, b.world.segments()[i].b);
  }
  ASSERT_EQ(a.solid_regions.size(), b.solid_regions.size());
  for (std::size_t i = 0; i < a.solid_regions.size(); ++i) {
    EXPECT_EQ(a.solid_regions[i].min, b.solid_regions[i].min);
    EXPECT_EQ(a.solid_regions[i].max, b.solid_regions[i].max);
  }
  ASSERT_EQ(a.maze_regions.size(), b.maze_regions.size());
  EXPECT_EQ(a.structured_area_m2, b.structured_area_m2);
}

std::size_t total_ops(const MutationSummary& s) {
  return s.clutter_added + s.boxes_moved + s.boxes_removed + s.doors_closed +
         s.doors_narrowed;
}

TEST(MapMutation, DeterministicAcrossCalls) {
  for (const GeneratedWorldKind kind : kKinds) {
    const GeneratedWorld world = base_world(kind, 5);
    for (const MutationLevel level : kLevels) {
      MutationConfig config;
      config.level = level;
      MutationSummary sa;
      MutationSummary sb;
      const EvaluationEnvironment a =
          mutate_world(world.env, world.plans, config, 42, &sa);
      const EvaluationEnvironment b =
          mutate_world(world.env, world.plans, config, 42, &sb);
      expect_identical_envs(a, b);
      EXPECT_EQ(sa.clutter_added, sb.clutter_added);
      EXPECT_EQ(sa.boxes_moved, sb.boxes_moved);
      EXPECT_EQ(sa.boxes_removed, sb.boxes_removed);
      EXPECT_EQ(sa.doors_closed, sb.doors_closed);
      EXPECT_EQ(sa.doors_narrowed, sb.doors_narrowed);
    }
  }
}

TEST(MapMutation, DifferentSeedsDiffer) {
  const GeneratedWorld world =
      base_world(GeneratedWorldKind::kWarehouse, 2);
  MutationConfig config;
  config.level = MutationLevel::kHeavy;
  const EvaluationEnvironment a =
      mutate_world(world.env, world.plans, config, 1);
  const EvaluationEnvironment b =
      mutate_world(world.env, world.plans, config, 2);
  const map::OccupancyGrid ga = rasterize_environment(a, 0.05, 0.0, 0);
  const map::OccupancyGrid gb = rasterize_environment(b, 0.05, 0.0, 0);
  EXPECT_NE(map::to_ascii(ga), map::to_ascii(gb));
}

// The campaign's mutation_level=0 bitwise guarantee rests on this:
// kNone applies nothing, draws nothing, and returns the input exactly.
TEST(MapMutation, LevelNoneIsBitIdenticalToTheInput) {
  for (const GeneratedWorldKind kind : kKinds) {
    const GeneratedWorld world = base_world(kind, 7);
    MutationConfig config;
    config.level = MutationLevel::kNone;
    MutationSummary summary;
    const EvaluationEnvironment same =
        mutate_world(world.env, world.plans, config, 42, &summary);
    expect_identical_envs(world.env, same);
    EXPECT_EQ(total_ops(summary), 0u);
    const map::OccupancyGrid ga =
        rasterize_environment(world.env, 0.05, 0.01);
    const map::OccupancyGrid gb = rasterize_environment(same, 0.05, 0.01);
    EXPECT_EQ(ga, gb) << to_string(kind);
  }
}

TEST(MapMutation, MutationsActuallyChangeTheWorld) {
  for (const GeneratedWorldKind kind : kKinds) {
    const GeneratedWorld world = base_world(kind, 2);
    MutationConfig config;
    config.level = MutationLevel::kHeavy;
    MutationSummary summary;
    const EvaluationEnvironment mutated =
        mutate_world(world.env, world.plans, config, 9, &summary);
    EXPECT_GE(total_ops(summary), 3u) << to_string(kind);
    const map::OccupancyGrid pristine =
        rasterize_environment(world.env, 0.05, 0.0, 0);
    const map::OccupancyGrid stale = rasterize_environment(mutated, 0.05,
                                                           0.0, 0);
    EXPECT_NE(map::to_ascii(pristine), map::to_ascii(stale))
        << to_string(kind);
  }
}

// The loop-corridor lesson holds through mutations: every solid box —
// surviving, moved, or freshly scattered — rasterizes to an Occupied
// outline around an Unknown interior, never an all-zero-EDT blob.
TEST(MapMutation, SolidInteriorsStayUnknown) {
  for (const GeneratedWorldKind kind : kKinds) {
    const GeneratedWorld world = base_world(kind, 3);
    MutationConfig config;
    config.level = MutationLevel::kHeavy;
    MutationSummary summary;
    const EvaluationEnvironment mutated =
        mutate_world(world.env, world.plans, config, 11, &summary);
    EXPECT_GE(total_ops(summary), 1u) << to_string(kind);
    if (kind != GeneratedWorldKind::kLoopCorridor) {
      // Open halls take scattered clutter; the 1.2 m loop ring correctly
      // refuses boxes that would block the only flyable corridor.
      EXPECT_GT(mutated.solid_regions.size(),
                world.env.solid_regions.size())
          << to_string(kind) << " (heavy mutation should scatter clutter)";
    }
    const map::OccupancyGrid grid =
        rasterize_environment(mutated, 0.05, 0.0, 0);
    for (const Aabb& box : mutated.solid_regions) {
      const Vec2 center = (box.min + box.max) / 2.0;
      ASSERT_TRUE(grid.in_bounds(center)) << to_string(kind);
      EXPECT_EQ(grid.at(grid.world_to_cell(center)),
                map::CellState::kUnknown)
          << to_string(kind) << " box interior at " << center;
      const Vec2 edge_mid{(box.min.x + box.max.x) / 2.0, box.min.y};
      ASSERT_TRUE(grid.in_bounds(edge_mid)) << to_string(kind);
      EXPECT_EQ(grid.at(grid.world_to_cell(edge_mid)),
                map::CellState::kOccupied)
          << to_string(kind) << " box outline at " << edge_mid;
    }
  }
}

// Tour reachability, the invariant mutate_world re-validates internally:
// every waypoint chain stays A*-traversable in the mutated world, and the
// primary tour actually FLIES through it collision-free (the property the
// campaign's stale datasets depend on).
TEST(MapMutation, ToursStayFlyableThroughMutatedWorlds) {
  for (const GeneratedWorldKind kind : kKinds) {
    for (const std::uint64_t mutation_seed : {1ull, 2ull, 3ull}) {
      const GeneratedWorld world = base_world(kind, 2);
      MutationConfig config;
      config.level = MutationLevel::kHeavy;
      const EvaluationEnvironment mutated =
          mutate_world(world.env, world.plans, config, mutation_seed);
      const map::OccupancyGrid grid =
          rasterize_environment(mutated, 0.05, 0.0, 0);
      const map::DistanceMap distance(grid, 1.0);
      plan::PlannerConfig pc;
      pc.min_clearance_m = 0.08;
      for (const FlightPlan& plan : world.plans) {
        Vec2 prev = plan.start.position;
        for (const Waypoint& wp : plan.path) {
          EXPECT_TRUE(
              plan::plan_path(grid, distance, prev, wp.position, pc)
                  .has_value())
              << to_string(kind) << " mseed " << mutation_seed << " plan "
              << plan.name;
          prev = wp.position;
        }
      }
      if (mutation_seed == 2) {
        Rng rng(5);
        const Sequence seq = generate_sequence(
            mutated.world, world.plans[0], default_generator_config(), rng);
        EXPECT_GT(seq.duration_s, 10.0) << to_string(kind);
        EXPECT_GT(seq.min_clearance_m, 0.03) << to_string(kind);
        EXPECT_GT(seq.frames.size(), 200u) << to_string(kind);
      }
    }
  }
}

// Staleness composes with the maze worlds too: the operators are generic
// over any EvaluationEnvironment + plan table, not a worldgen privilege.
// The flights all happen in the drone maze whose ≤ 0.8 m corridors leave
// no room for clutter, so mutations land in the artificial mazes (stale
// regions the filter may still hypothesize into) — and the recorded
// flight stays collision-free regardless.
TEST(MapMutation, ComposesWithTheMazeWorlds) {
  const EvaluationEnvironment env = evaluation_environment(2023);
  const std::vector<FlightPlan> plans = standard_flight_plans();
  MutationConfig config;
  config.level = MutationLevel::kHeavy;
  MutationSummary summary;
  const EvaluationEnvironment mutated =
      mutate_world(env, plans, config, 4, &summary);
  EXPECT_GE(total_ops(summary), 1u);
  Rng rng(6);
  const Sequence seq = generate_sequence(mutated.world, plans[0],
                                         default_generator_config(), rng);
  EXPECT_GT(seq.duration_s, 10.0);
  EXPECT_GT(seq.min_clearance_m, 0.03);
}

TEST(MapMutation, RejectsUnsafeConfigs) {
  const GeneratedWorld world = base_world(GeneratedWorldKind::kOffice, 1);
  MutationConfig config;
  config.route_clearance_m = 0.05;  // below the flyable floor
  EXPECT_THROW(mutate_world(world.env, world.plans, config, 1),
               PreconditionError);
  config = {};
  config.clutter_min_m = 0.5;
  config.clutter_max_m = 0.2;  // inverted
  EXPECT_THROW(mutate_world(world.env, world.plans, config, 1),
               PreconditionError);
  EvaluationEnvironment bare;  // no structured region to mutate in
  bare.world = world.env.world;
  EXPECT_THROW(mutate_world(bare, world.plans, {}, 1), PreconditionError);
}

// Cross-process determinism: dump every mutated coordinate as hexfloats
// when TOFMCL_MUTATION_TRACE is set; CI runs this twice and byte-compares
// the files (the TOFMCL_WORLDGEN_TRACE pattern).
TEST(MapMutationDeterminism, HexfloatTrace) {
  const char* path = std::getenv("TOFMCL_MUTATION_TRACE");
  if (path == nullptr) GTEST_SKIP() << "TOFMCL_MUTATION_TRACE not set";
  std::ofstream out(path);
  ASSERT_TRUE(out.is_open()) << path;
  out << std::hexfloat;
  for (const GeneratedWorldKind kind : kKinds) {
    const GeneratedWorld world = base_world(kind, 12);
    for (const MutationLevel level : kLevels) {
      MutationConfig config;
      config.level = level;
      MutationSummary summary;
      const EvaluationEnvironment mutated =
          mutate_world(world.env, world.plans, config, 77, &summary);
      out << to_string(kind) << ' ' << to_string(level) << ' '
          << summary.clutter_added << ' ' << summary.boxes_moved << ' '
          << summary.boxes_removed << ' ' << summary.doors_closed << ' '
          << summary.doors_narrowed << '\n';
      for (const map::Segment& s : mutated.world.segments()) {
        out << s.a.x << ' ' << s.a.y << ' ' << s.b.x << ' ' << s.b.y << '\n';
      }
      for (const Aabb& box : mutated.solid_regions) {
        out << box.min.x << ' ' << box.min.y << ' ' << box.max.x << ' '
            << box.max.y << '\n';
      }
      map::save_grid(rasterize_environment(mutated, 0.05, 0.01), out,
                     map::GridFormat::kV2);
    }
  }
}

}  // namespace
}  // namespace tofmcl::sim
