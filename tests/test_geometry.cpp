// Unit tests for common/geometry.hpp: vector algebra, pose composition and
// the compose/between inverse relationship used throughout odometry
// handling.

#include "common/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/rng.hpp"

namespace tofmcl {
namespace {

TEST(Vec2, ArithmeticBasics) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{-3.0, 4.5};
  EXPECT_EQ(a + b, Vec2(-2.0, 6.5));
  EXPECT_EQ(a - b, Vec2(4.0, -2.5));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 0.0};
  const Vec2 b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0);
  EXPECT_DOUBLE_EQ(b.cross(a), -1.0);
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).dot(Vec2(3.0, 4.0)), 25.0);
}

TEST(Vec2, NormAndNormalized) {
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).squared_norm(), 25.0);
  const Vec2 n = Vec2(3.0, 4.0).normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, RotationQuarterTurn) {
  const Vec2 x{1.0, 0.0};
  const Vec2 r = x.rotated(kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Vec2, RotationPreservesNorm) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Vec2 v{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const double angle = rng.uniform(-10, 10);
    EXPECT_NEAR(v.rotated(angle).norm(), v.norm(), 1e-9);
  }
}

TEST(Pose2, TransformRoundTrip) {
  const Pose2 pose{1.0, -2.0, 0.7};
  const Vec2 body{0.5, 0.25};
  const Vec2 world = pose.transform(body);
  const Vec2 back = pose.inverse_transform(world);
  EXPECT_NEAR(back.x, body.x, 1e-12);
  EXPECT_NEAR(back.y, body.y, 1e-12);
}

TEST(Pose2, IdentityCompose) {
  const Pose2 pose{1.0, 2.0, 0.3};
  const Pose2 composed = pose.compose(Pose2{});
  EXPECT_NEAR(composed.x(), pose.x(), 1e-12);
  EXPECT_NEAR(composed.y(), pose.y(), 1e-12);
  EXPECT_NEAR(composed.yaw, pose.yaw, 1e-12);
}

TEST(Pose2, ComposeBetweenInverse) {
  // between() must recover exactly the delta that compose() applied —
  // this pair implements odometry accumulation and differencing.
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const Pose2 a{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-3, 3)};
    const Pose2 delta{rng.uniform(-1, 1), rng.uniform(-1, 1),
                      rng.uniform(-0.5, 0.5)};
    const Pose2 b = a.compose(delta);
    const Pose2 recovered = a.between(b);
    EXPECT_NEAR(recovered.x(), delta.x(), 1e-9);
    EXPECT_NEAR(recovered.y(), delta.y(), 1e-9);
    EXPECT_NEAR(recovered.yaw, delta.yaw, 1e-9);
  }
}

TEST(Pose2, BetweenOfSelfIsIdentity) {
  const Pose2 p{3.0, -1.0, 2.2};
  const Pose2 d = p.between(p);
  EXPECT_NEAR(d.x(), 0.0, 1e-12);
  EXPECT_NEAR(d.y(), 0.0, 1e-12);
  EXPECT_NEAR(d.yaw, 0.0, 1e-12);
}

TEST(Pose2, TransformMatchesComposeOnPosition) {
  const Pose2 p{1.0, 2.0, 0.5};
  const Vec2 q{0.3, 0.4};
  const Pose2 composed = p.compose(Pose2{q, 0.0});
  const Vec2 transformed = p.transform(q);
  EXPECT_NEAR(composed.x(), transformed.x, 1e-12);
  EXPECT_NEAR(composed.y(), transformed.y, 1e-12);
}

TEST(Aabb, ContainsAndArea) {
  const Aabb box{{0.0, 0.0}, {2.0, 3.0}};
  EXPECT_TRUE(box.contains({1.0, 1.0}));
  EXPECT_TRUE(box.contains({0.0, 0.0}));
  EXPECT_TRUE(box.contains({2.0, 3.0}));
  EXPECT_FALSE(box.contains({2.1, 1.0}));
  EXPECT_FALSE(box.contains({1.0, -0.1}));
  EXPECT_DOUBLE_EQ(box.area(), 6.0);
  EXPECT_DOUBLE_EQ(box.width(), 2.0);
  EXPECT_DOUBLE_EQ(box.height(), 3.0);
}

TEST(Aabb, Expanded) {
  const Aabb box{{0.0, 0.0}, {1.0, 1.0}};
  const Aabb grown = box.expanded({-1.0, 2.0});
  EXPECT_DOUBLE_EQ(grown.min.x, -1.0);
  EXPECT_DOUBLE_EQ(grown.min.y, 0.0);
  EXPECT_DOUBLE_EQ(grown.max.x, 1.0);
  EXPECT_DOUBLE_EQ(grown.max.y, 2.0);
}

}  // namespace
}  // namespace tofmcl
