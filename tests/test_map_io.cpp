// Round-trip and error-path tests for the grid text format.

#include "map/map_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/rng.hpp"
#include "sim/maze.hpp"
#include "sim/worldgen.hpp"

namespace tofmcl::map {
namespace {

OccupancyGrid random_grid(std::uint64_t seed) {
  Rng rng(seed);
  OccupancyGrid g(17, 9, 0.05, {-1.25, 2.5}, CellState::kFree);
  for (int y = 0; y < g.height(); ++y) {
    for (int x = 0; x < g.width(); ++x) {
      const double u = rng.uniform();
      if (u < 0.2) g.set({x, y}, CellState::kOccupied);
      else if (u < 0.35) g.set({x, y}, CellState::kUnknown);
    }
  }
  return g;
}

TEST(MapIo, StreamRoundTrip) {
  const OccupancyGrid g = random_grid(1);
  std::stringstream ss;
  save_grid(g, ss);
  const OccupancyGrid loaded = load_grid(ss);
  EXPECT_EQ(loaded, g);
}

TEST(MapIo, V1StreamRoundTrip) {
  const OccupancyGrid g = random_grid(3);
  std::stringstream ss;
  save_grid(g, ss, GridFormat::kV1);
  EXPECT_NE(ss.str().find("tofmcl-grid 1"), std::string::npos);
  const OccupancyGrid loaded = load_grid(ss);
  EXPECT_EQ(loaded, g);
}

// The v1 header used to be written with default ostream precision (6 sig
// figs), so resolutions/origins with more digits did not round-trip.
// max_digits10 makes save→load exact for arbitrary doubles, in both
// formats.
TEST(MapIo, HeaderDoublesRoundTripBitExactly) {
  const double resolution = 0.1 + 1e-13;
  const Vec2 origin{-3.141592653589793, 1.0 / 3.0};
  for (const GridFormat format : {GridFormat::kV1, GridFormat::kV2}) {
    OccupancyGrid g(4, 3, resolution, origin, CellState::kFree);
    g.set({1, 2}, CellState::kOccupied);
    std::stringstream ss;
    save_grid(g, ss, format);
    const OccupancyGrid loaded = load_grid(ss);
    EXPECT_EQ(loaded.resolution(), resolution);
    EXPECT_EQ(loaded.origin().x, origin.x);
    EXPECT_EQ(loaded.origin().y, origin.y);
    EXPECT_EQ(loaded, g);
  }
}

// Windows line endings must parse identically: getline leaves the '\r',
// which used to fail the row-width check.
TEST(MapIo, AcceptsCrlfLineEndings) {
  for (const GridFormat format : {GridFormat::kV1, GridFormat::kV2}) {
    const OccupancyGrid g = random_grid(4);
    std::stringstream ss;
    save_grid(g, ss, format);
    std::string text = ss.str();
    std::string crlf;
    for (const char c : text) {
      if (c == '\n') crlf += '\r';
      crlf += c;
    }
    std::stringstream in(crlf);
    const OccupancyGrid loaded = load_grid(in);
    EXPECT_EQ(loaded, g);
  }
}

TEST(MapIo, V2IsRunLengthEncoded) {
  OccupancyGrid g(100, 2, 0.05, {}, CellState::kFree);
  g.set({50, 0}, CellState::kOccupied);
  std::stringstream v2;
  save_grid(g, v2, GridFormat::kV2);
  std::stringstream v1;
  save_grid(g, v1, GridFormat::kV1);
  EXPECT_LT(v2.str().size(), v1.str().size() / 4);
  EXPECT_NE(v2.str().find("50.#49.\n100.\n"), std::string::npos);
  const OccupancyGrid loaded = load_grid(v2);
  EXPECT_EQ(loaded, g);
}

TEST(MapIo, V2RejectsMalformedRuns) {
  // Run overflows the row.
  std::stringstream a("tofmcl-grid 2\n3 1 0.05 0 0\n4.\n");
  EXPECT_THROW(load_grid(a), IoError);
  // Row too short.
  std::stringstream b("tofmcl-grid 2\n3 1 0.05 0 0\n2.\n");
  EXPECT_THROW(load_grid(b), IoError);
  // Count without glyph.
  std::stringstream c("tofmcl-grid 2\n3 1 0.05 0 0\n3\n");
  EXPECT_THROW(load_grid(c), IoError);
  // Zero-length run.
  std::stringstream d("tofmcl-grid 2\n3 1 0.05 0 0\n0.3.\n");
  EXPECT_THROW(load_grid(d), IoError);
  // Bad glyph inside a run.
  std::stringstream e("tofmcl-grid 2\n3 1 0.05 0 0\n3x\n");
  EXPECT_THROW(load_grid(e), IoError);
}

// Mutated worlds are the v2 stress case the format has not seen before:
// scattered people-sized clutter breaks the long free-space runs of a
// pristine generated world into many short RLE tokens. The round trip
// must stay bit-exact and the encoding worthwhile.
TEST(MapIo, MutatedWorldRoundTripsThroughV2) {
  sim::WorldGenConfig config;
  config.seed = 6;
  const sim::GeneratedWorld world =
      sim::generate_world(sim::GeneratedWorldKind::kWarehouse, config);
  sim::MutationConfig mutation;
  mutation.level = sim::MutationLevel::kHeavy;
  const sim::EvaluationEnvironment stale =
      sim::mutate_world(world.env, world.plans, mutation, 3);
  const OccupancyGrid grid = sim::rasterize_environment(stale, 0.05, 0.01);

  std::stringstream v2;
  save_grid(grid, v2, GridFormat::kV2);
  std::stringstream v1;
  save_grid(grid, v1, GridFormat::kV1);
  EXPECT_LT(v2.str().size(), v1.str().size() / 4);
  const OccupancyGrid loaded = load_grid(v2);
  EXPECT_EQ(loaded, grid);
}

TEST(MapIo, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    "tofmcl_test_maps" / "grid.txt";
  const OccupancyGrid g = random_grid(2);
  save_grid(g, path);
  const OccupancyGrid loaded = load_grid(path);
  EXPECT_EQ(loaded, g);
  std::filesystem::remove_all(path.parent_path());
}

TEST(MapIo, RejectsWrongMagic) {
  std::stringstream ss("not-a-grid 1\n3 3 0.05 0 0\n...\n...\n...\n");
  EXPECT_THROW(load_grid(ss), IoError);
}

TEST(MapIo, RejectsWrongVersion) {
  std::stringstream ss("tofmcl-grid 9\n3 3 0.05 0 0\n...\n...\n...\n");
  EXPECT_THROW(load_grid(ss), IoError);
}

TEST(MapIo, RejectsBadHeader) {
  std::stringstream ss("tofmcl-grid 1\n0 3 0.05 0 0\n");
  EXPECT_THROW(load_grid(ss), IoError);
  std::stringstream ss2("tofmcl-grid 1\n3 3 -1 0 0\n...\n...\n...\n");
  EXPECT_THROW(load_grid(ss2), IoError);
}

TEST(MapIo, RejectsTruncatedBody) {
  std::stringstream ss("tofmcl-grid 1\n3 3 0.05 0 0\n...\n...\n");
  EXPECT_THROW(load_grid(ss), IoError);
}

TEST(MapIo, RejectsWrongRowWidth) {
  std::stringstream ss("tofmcl-grid 1\n3 2 0.05 0 0\n....\n...\n");
  EXPECT_THROW(load_grid(ss), IoError);
}

TEST(MapIo, RejectsInvalidGlyph) {
  std::stringstream ss("tofmcl-grid 1\n3 1 0.05 0 0\n.x.\n");
  EXPECT_THROW(load_grid(ss), IoError);
}

TEST(MapIo, MissingFileThrows) {
  EXPECT_THROW(load_grid(std::filesystem::path("/nonexistent/nope.txt")),
               IoError);
}

TEST(MapIo, AsciiRendering) {
  OccupancyGrid g(3, 2, 0.05, {}, CellState::kFree);
  g.set({0, 0}, CellState::kOccupied);
  g.set({2, 1}, CellState::kUnknown);
  // Top row (y=1) first in the rendering.
  EXPECT_EQ(to_ascii(g), "..?\n#..\n");
}

}  // namespace
}  // namespace tofmcl::map
