// Round-trip and error-path tests for the grid text format.

#include "map/map_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/rng.hpp"

namespace tofmcl::map {
namespace {

OccupancyGrid random_grid(std::uint64_t seed) {
  Rng rng(seed);
  OccupancyGrid g(17, 9, 0.05, {-1.25, 2.5}, CellState::kFree);
  for (int y = 0; y < g.height(); ++y) {
    for (int x = 0; x < g.width(); ++x) {
      const double u = rng.uniform();
      if (u < 0.2) g.set({x, y}, CellState::kOccupied);
      else if (u < 0.35) g.set({x, y}, CellState::kUnknown);
    }
  }
  return g;
}

TEST(MapIo, StreamRoundTrip) {
  const OccupancyGrid g = random_grid(1);
  std::stringstream ss;
  save_grid(g, ss);
  const OccupancyGrid loaded = load_grid(ss);
  EXPECT_EQ(loaded, g);
}

TEST(MapIo, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    "tofmcl_test_maps" / "grid.txt";
  const OccupancyGrid g = random_grid(2);
  save_grid(g, path);
  const OccupancyGrid loaded = load_grid(path);
  EXPECT_EQ(loaded, g);
  std::filesystem::remove_all(path.parent_path());
}

TEST(MapIo, RejectsWrongMagic) {
  std::stringstream ss("not-a-grid 1\n3 3 0.05 0 0\n...\n...\n...\n");
  EXPECT_THROW(load_grid(ss), IoError);
}

TEST(MapIo, RejectsWrongVersion) {
  std::stringstream ss("tofmcl-grid 9\n3 3 0.05 0 0\n...\n...\n...\n");
  EXPECT_THROW(load_grid(ss), IoError);
}

TEST(MapIo, RejectsBadHeader) {
  std::stringstream ss("tofmcl-grid 1\n0 3 0.05 0 0\n");
  EXPECT_THROW(load_grid(ss), IoError);
  std::stringstream ss2("tofmcl-grid 1\n3 3 -1 0 0\n...\n...\n...\n");
  EXPECT_THROW(load_grid(ss2), IoError);
}

TEST(MapIo, RejectsTruncatedBody) {
  std::stringstream ss("tofmcl-grid 1\n3 3 0.05 0 0\n...\n...\n");
  EXPECT_THROW(load_grid(ss), IoError);
}

TEST(MapIo, RejectsWrongRowWidth) {
  std::stringstream ss("tofmcl-grid 1\n3 2 0.05 0 0\n....\n...\n");
  EXPECT_THROW(load_grid(ss), IoError);
}

TEST(MapIo, RejectsInvalidGlyph) {
  std::stringstream ss("tofmcl-grid 1\n3 1 0.05 0 0\n.x.\n");
  EXPECT_THROW(load_grid(ss), IoError);
}

TEST(MapIo, MissingFileThrows) {
  EXPECT_THROW(load_grid(std::filesystem::path("/nonexistent/nope.txt")),
               IoError);
}

TEST(MapIo, AsciiRendering) {
  OccupancyGrid g(3, 2, 0.05, {}, CellState::kFree);
  g.set({0, 0}, CellState::kOccupied);
  g.set({2, 1}, CellState::kUnknown);
  // Top row (y=1) first in the rendering.
  EXPECT_EQ(to_ascii(g), "..?\n#..\n");
}

}  // namespace
}  // namespace tofmcl::map
