// Tests for the VL53L5CX multizone sensor model: zone geometry, slant
// ranges, error flags, the noise model and determinism.

#include "sensor/tof_sensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/stats.hpp"

namespace tofmcl::sensor {
namespace {

map::World box_world() {
  map::World w;
  w.add_rectangle({{-2.0, -2.0}, {2.0, 2.0}});
  return w;
}

TofSensorConfig front_sensor() {
  TofSensorConfig cfg;
  cfg.sensor_id = 0;
  cfg.mount = Pose2{0.0, 0.0, 0.0};  // at body center for geometric tests
  return cfg;
}

TEST(ZoneGeometry, AzimuthSymmetricAndOrdered) {
  const TofSensorConfig cfg = front_sensor();
  // 8 columns over 45°: zone width 5.625°, outermost centers ±19.6875°.
  EXPECT_NEAR(zone_azimuth(cfg, 0), deg_to_rad(19.6875), 1e-12);
  EXPECT_NEAR(zone_azimuth(cfg, 7), deg_to_rad(-19.6875), 1e-12);
  // Symmetric pairs.
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(zone_azimuth(cfg, c), -zone_azimuth(cfg, 7 - c), 1e-12);
  }
  // Strictly decreasing from left to right.
  for (int c = 1; c < 8; ++c) {
    EXPECT_LT(zone_azimuth(cfg, c), zone_azimuth(cfg, c - 1));
  }
}

TEST(ZoneGeometry, ElevationSymmetric) {
  const TofSensorConfig cfg = front_sensor();
  EXPECT_NEAR(zone_elevation(cfg, 0), deg_to_rad(-19.6875), 1e-12);
  EXPECT_NEAR(zone_elevation(cfg, 7), deg_to_rad(19.6875), 1e-12);
  EXPECT_NEAR(zone_elevation(cfg, 3), deg_to_rad(-2.8125), 1e-12);
  EXPECT_NEAR(zone_elevation(cfg, 4), deg_to_rad(2.8125), 1e-12);
}

TEST(ZoneGeometry, FourByFourMode) {
  TofSensorConfig cfg = front_sensor();
  cfg.mode = ZoneMode::k4x4;
  EXPECT_NEAR(zone_azimuth(cfg, 0), deg_to_rad(16.875), 1e-12);
  EXPECT_NEAR(zone_azimuth(cfg, 3), deg_to_rad(-16.875), 1e-12);
  EXPECT_THROW(zone_azimuth(cfg, 4), PreconditionError);
}

TEST(ZoneGeometry, ModeProperties) {
  EXPECT_EQ(zones_per_side(ZoneMode::k8x8), 8);
  EXPECT_EQ(zones_per_side(ZoneMode::k4x4), 4);
  EXPECT_DOUBLE_EQ(max_rate_hz(ZoneMode::k8x8), 15.0);
  EXPECT_DOUBLE_EQ(max_rate_hz(ZoneMode::k4x4), 60.0);
}

TEST(MultizoneToF, RejectsBadConfig) {
  TofSensorConfig cfg = front_sensor();
  cfg.fov_rad = 0.0;
  EXPECT_THROW(MultizoneToF{cfg}, PreconditionError);
  cfg = front_sensor();
  cfg.max_range_m = 0.01;
  EXPECT_THROW(MultizoneToF{cfg}, PreconditionError);
  cfg = front_sensor();
  cfg.flight_height_m = 2.0;  // above the walls
  cfg.wall_height_m = 1.0;
  EXPECT_THROW(MultizoneToF{cfg}, PreconditionError);
}

TEST(MultizoneToF, IdealFrameCenterZonesMeasureWallDistance) {
  const MultizoneToF sensor(front_sensor());
  // Facing +x from the center of a 4×4 box: wall at 2 m.
  const TofFrame frame = sensor.measure_ideal(box_world(), {0, 0, 0}, 0.0);
  ASSERT_EQ(frame.zones.size(), 64u);
  // Central rows/columns: nearly straight ahead.
  for (const int row : {3, 4}) {
    for (const int col : {3, 4}) {
      const ZoneMeasurement& z = frame.zone(row, col);
      ASSERT_TRUE(z.valid()) << "row=" << row << " col=" << col;
      const double az = zone_azimuth(sensor.config(), col);
      const double el = zone_elevation(sensor.config(), row);
      const double expected = 2.0 / std::cos(az) / std::cos(el);
      EXPECT_NEAR(z.distance_m, expected, 1e-4);
    }
  }
}

TEST(MultizoneToF, SlantRangeGrowsWithElevation) {
  const MultizoneToF sensor(front_sensor());
  const TofFrame frame = sensor.measure_ideal(box_world(), {0, 0, 0}, 0.0);
  // For the same column, higher |elevation| → longer slant range (until the
  // beam leaves the wall panel).
  const double d_center = static_cast<double>(frame.zone(4, 3).distance_m);
  const double d_up =
      frame.zone(5, 3).valid()
          ? static_cast<double>(frame.zone(5, 3).distance_m)
          : std::numeric_limits<double>::infinity();
  EXPECT_GT(d_up, d_center);
}

TEST(MultizoneToF, HighElevationZonesOvershootWalls) {
  // At 0.5 m flight height with 1 m walls and a wall 2 m away, a beam at
  // +19.7° elevation reaches height 0.5 + 2·tan(19.7°) ≈ 1.22 m > 1 m:
  // out of range.
  const MultizoneToF sensor(front_sensor());
  const TofFrame frame = sensor.measure_ideal(box_world(), {0, 0, 0}, 0.0);
  EXPECT_EQ(frame.zone(7, 3).status, ZoneStatus::kOutOfRange);
  // Downward beams hit the wall below: 0.5 - 2·tan(19.7°) < 0 → the floor,
  // also out of range in our wall-only world.
  EXPECT_EQ(frame.zone(0, 3).status, ZoneStatus::kOutOfRange);
}

TEST(MultizoneToF, OutOfRangeWhenNoWall) {
  map::World w;
  w.add_segment({10.0, -5.0}, {10.0, 5.0});  // beyond the 4 m limit
  const MultizoneToF sensor(front_sensor());
  const TofFrame frame = sensor.measure_ideal(w, {0, 0, 0}, 0.0);
  for (const auto& z : frame.zones) {
    EXPECT_EQ(z.status, ZoneStatus::kOutOfRange);
  }
}

TEST(MultizoneToF, RearMountLooksBackwards) {
  TofSensorConfig cfg = front_sensor();
  cfg.sensor_id = 1;
  cfg.mount = Pose2{-0.02, 0.0, kPi};
  const MultizoneToF rear(cfg);
  map::World w;
  w.add_segment({-1.0, -5.0}, {-1.0, 5.0});  // wall behind the drone
  const TofFrame frame = rear.measure_ideal(w, {0, 0, 0}, 0.0);
  const ZoneMeasurement& z = frame.zone(4, 3);
  ASSERT_TRUE(z.valid());
  EXPECT_NEAR(z.distance_m, 0.98 / std::cos(deg_to_rad(2.8125)) /
                                std::cos(deg_to_rad(2.8125)),
              0.01);
  EXPECT_EQ(frame.sensor_id, 1);
}

TEST(MultizoneToF, NoiseIsUnbiasedAndScaled) {
  TofSensorConfig cfg = front_sensor();
  cfg.p_interference = 0.0;
  cfg.p_grazing_dropout = 0.0;
  const MultizoneToF sensor(cfg);
  Rng rng(99);
  RunningStats stats;
  const double ideal =
      sensor.measure_ideal(box_world(), {0, 0, 0}, 0.0).zone(4, 4).distance_m;
  for (int i = 0; i < 2000; ++i) {
    const TofFrame f = sensor.measure(box_world(), {0, 0, 0}, 0.0, rng);
    if (f.zone(4, 4).valid()) stats.add(f.zone(4, 4).distance_m);
  }
  EXPECT_NEAR(stats.mean(), ideal, 0.01);
  const double expected_sigma = cfg.sigma_base_m +
                                cfg.sigma_proportional * ideal;
  EXPECT_NEAR(stats.stddev(), expected_sigma, 0.01);
}

TEST(MultizoneToF, InterferenceRateMatchesConfig) {
  TofSensorConfig cfg = front_sensor();
  cfg.p_interference = 0.2;
  cfg.p_grazing_dropout = 0.0;
  const MultizoneToF sensor(cfg);
  Rng rng(7);
  int flagged = 0;
  int total = 0;
  for (int i = 0; i < 500; ++i) {
    const TofFrame f = sensor.measure(box_world(), {0, 0, 0}, 0.0, rng);
    const ZoneMeasurement& z = f.zone(4, 4);
    ++total;
    if (z.status == ZoneStatus::kInterference) ++flagged;
  }
  EXPECT_NEAR(static_cast<double>(flagged) / total, 0.2, 0.05);
}

TEST(MultizoneToF, DeterministicGivenSeed) {
  const MultizoneToF sensor(front_sensor());
  Rng rng1(123);
  Rng rng2(123);
  const TofFrame a = sensor.measure(box_world(), {0.3, 0.1, 0.5}, 1.0, rng1);
  const TofFrame b = sensor.measure(box_world(), {0.3, 0.1, 0.5}, 1.0, rng2);
  ASSERT_EQ(a.zones.size(), b.zones.size());
  for (std::size_t i = 0; i < a.zones.size(); ++i) {
    EXPECT_EQ(a.zones[i].status, b.zones[i].status);
    EXPECT_EQ(a.zones[i].distance_m, b.zones[i].distance_m);
  }
}

TEST(MultizoneToF, FrameMetadata) {
  const MultizoneToF sensor(front_sensor());
  const TofFrame f = sensor.measure_ideal(box_world(), {0, 0, 0}, 3.25);
  EXPECT_DOUBLE_EQ(f.timestamp_s, 3.25);
  EXPECT_EQ(f.mode, ZoneMode::k8x8);
  EXPECT_EQ(f.side(), 8);
  EXPECT_THROW(f.zone(8, 0), PreconditionError);
  EXPECT_THROW(f.zone(0, -1), PreconditionError);
}

}  // namespace
}  // namespace tofmcl::sensor
