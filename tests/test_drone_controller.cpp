// Tests for the kinematic drone model and the waypoint controller.

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "sim/controller.hpp"
#include "sim/drone.hpp"

namespace tofmcl::sim {
namespace {

TEST(Drone, StartsAtRest) {
  const Drone d(DroneConfig{}, Pose2{1.0, 2.0, 0.3});
  EXPECT_DOUBLE_EQ(d.pose().x(), 1.0);
  EXPECT_DOUBLE_EQ(d.velocity_body().norm(), 0.0);
  EXPECT_DOUBLE_EQ(d.yaw_rate(), 0.0);
}

TEST(Drone, ConvergesToCommandedVelocity) {
  Drone d;
  const VelocityCommand cmd{{0.4, 0.1}, 0.0};
  for (int i = 0; i < 300; ++i) d.step(cmd, 0.01);  // 3 s ≫ τ
  EXPECT_NEAR(d.velocity_body().x, 0.4, 0.01);
  EXPECT_NEAR(d.velocity_body().y, 0.1, 0.01);
}

TEST(Drone, FirstOrderResponseTimeConstant) {
  DroneConfig cfg;
  cfg.velocity_tau_s = 0.25;
  Drone d(cfg);
  const VelocityCommand cmd{{1.0, 0.0}, 0.0};
  for (int i = 0; i < 25; ++i) d.step(cmd, 0.01);  // exactly τ
  EXPECT_NEAR(d.velocity_body().x, 1.0 - std::exp(-1.0), 0.01);
}

TEST(Drone, SaturatesSpeedAndYawRate) {
  DroneConfig cfg;
  cfg.max_speed_m_s = 0.5;
  cfg.max_yaw_rate = 1.0;
  Drone d(cfg);
  const VelocityCommand cmd{{10.0, 0.0}, 10.0};
  for (int i = 0; i < 500; ++i) d.step(cmd, 0.01);
  EXPECT_LE(d.velocity_body().norm(), 0.5 + 1e-6);
  EXPECT_LE(d.yaw_rate(), 1.0 + 1e-6);
}

TEST(Drone, IntegratesStraightPath) {
  Drone d;
  const VelocityCommand cmd{{0.5, 0.0}, 0.0};
  for (int i = 0; i < 1000; ++i) d.step(cmd, 0.01);  // 10 s
  // Position ≈ v·(t − τ) for a first-order start.
  EXPECT_NEAR(d.pose().x(), 0.5 * (10.0 - 0.25), 0.05);
  EXPECT_NEAR(d.pose().y(), 0.0, 1e-9);
}

TEST(Drone, YawWrapsProperly) {
  Drone d;
  const VelocityCommand cmd{{0.0, 0.0}, 2.0};
  for (int i = 0; i < 1000; ++i) d.step(cmd, 0.01);  // ~20 rad of rotation
  EXPECT_LE(std::abs(d.pose().yaw), kPi + 1e-9);
}

TEST(Drone, RejectsBadDt) {
  Drone d;
  EXPECT_THROW(d.step({}, 0.0), PreconditionError);
}

TEST(Controller, RejectsEmptyPathAndBadSpeed) {
  EXPECT_THROW(WaypointController({}, ControllerConfig{}), PreconditionError);
  EXPECT_THROW(WaypointController({{{1.0, 0.0}, 0.0}}, ControllerConfig{}),
               PreconditionError);
}

TEST(Controller, CommandsTowardWaypoint) {
  WaypointController ctl({{{2.0, 0.0}, 0.4}}, ControllerConfig{});
  const VelocityCommand cmd = ctl.command(Pose2{0.0, 0.0, 0.0});
  EXPECT_NEAR(cmd.velocity_body.x, 0.4, 1e-9);
  EXPECT_NEAR(cmd.velocity_body.y, 0.0, 1e-9);
}

TEST(Controller, BodyFrameConversion) {
  // Target due +x in the world, drone facing +y: command must point right
  // (−y in body frame... target is at body-frame angle −90°).
  WaypointController ctl({{{2.0, 0.0}, 0.4}}, ControllerConfig{});
  const VelocityCommand cmd = ctl.command(Pose2{0.0, 0.0, kPi / 2.0});
  EXPECT_NEAR(cmd.velocity_body.x, 0.0, 1e-9);
  EXPECT_NEAR(cmd.velocity_body.y, -0.4, 1e-9);
}

TEST(Controller, DeceleratesOnApproach) {
  ControllerConfig cfg;
  cfg.approach_distance_m = 0.5;
  WaypointController ctl({{{0.3, 0.0}, 0.4}}, cfg);
  const VelocityCommand cmd = ctl.command(Pose2{0.0, 0.0, 0.0});
  EXPECT_LT(cmd.velocity_body.norm(), 0.4);
  EXPECT_GE(cmd.velocity_body.norm(), 0.1 - 1e-9);
}

TEST(Controller, AdvancesThroughWaypoints) {
  WaypointController ctl({{{1.0, 0.0}, 0.4}, {{1.0, 1.0}, 0.4}},
                         ControllerConfig{});
  EXPECT_EQ(ctl.active_waypoint(), 0u);
  ctl.command(Pose2{0.95, 0.0, 0.0});  // within tolerance of wp 0
  EXPECT_EQ(ctl.active_waypoint(), 1u);
  EXPECT_FALSE(ctl.done());
  ctl.command(Pose2{1.0, 0.95, 0.0});
  EXPECT_TRUE(ctl.done());
  EXPECT_DOUBLE_EQ(ctl.command(Pose2{}).velocity_body.norm(), 0.0);
}

TEST(Controller, FaceTravelYawCommand) {
  ControllerConfig cfg;
  cfg.yaw_gain = 2.0;
  WaypointController ctl({{{0.0, 2.0}, 0.4}}, cfg);
  // Target straight +y, drone facing +x: desired yaw π/2, error π/2.
  const VelocityCommand cmd = ctl.command(Pose2{0.0, 0.0, 0.0});
  EXPECT_NEAR(cmd.yaw_rate, 2.0 * kPi / 2.0, 1e-9);
}

TEST(Controller, SweepMode) {
  ControllerConfig cfg;
  cfg.yaw_mode = YawMode::kSweep;
  cfg.sweep_rate_rad_s = 0.7;
  WaypointController ctl({{{5.0, 0.0}, 0.4}}, cfg);
  EXPECT_DOUBLE_EQ(ctl.command(Pose2{}).yaw_rate, 0.7);
}

TEST(ClosedLoop, DroneReachesWaypoints) {
  Drone drone(DroneConfig{}, Pose2{0.0, 0.0, 0.0});
  WaypointController ctl(
      {{{1.5, 0.0}, 0.4}, {{1.5, 1.5}, 0.4}, {{0.0, 1.5}, 0.4}},
      ControllerConfig{});
  double t = 0.0;
  while (!ctl.done() && t < 60.0) {
    drone.step(ctl.command(drone.pose()), 0.01);
    t += 0.01;
  }
  EXPECT_TRUE(ctl.done());
  EXPECT_LT(t, 30.0);
  EXPECT_NEAR(drone.pose().x(), 0.0, 0.3);
  EXPECT_NEAR(drone.pose().y(), 1.5, 0.3);
}

}  // namespace
}  // namespace tofmcl::sim
