// Tests for the Localizer facade: gating, frame handling, precision
// variants and the full simulated pipeline (global localization on a
// generated flight — the system-level behaviour of paper Fig 1).

#include "core/localizer.hpp"

#include <gtest/gtest.h>

#include "common/angles.hpp"
#include "common/stats.hpp"
#include "sim/maze.hpp"
#include "sim/sequence_generator.hpp"

namespace tofmcl::core {
namespace {

map::OccupancyGrid maze_grid() {
  sim::EvaluationEnvironment env;
  env.world = sim::drone_maze();
  env.maze_regions.push_back({{0.0, 0.0}, {4.0, 4.0}});
  return sim::rasterize_environment(env, 0.05, 0.0);
}

LocalizerConfig base_config(Precision precision = Precision::kFp32,
                            std::size_t particles = 2048) {
  LocalizerConfig cfg;
  cfg.precision = precision;
  cfg.mcl.num_particles = particles;
  cfg.mcl.seed = 5;
  return cfg;
}

TEST(Localizer, ThrowsOnMapWithoutFreeSpace) {
  map::OccupancyGrid grid(10, 10, 0.05, {}, map::CellState::kOccupied);
  SerialExecutor exec;
  EXPECT_THROW(Localizer(grid, base_config(), exec), PreconditionError);
}

TEST(Localizer, MemoryAccountingMatchesPaper) {
  const auto grid = maze_grid();
  SerialExecutor exec;
  const std::size_t cells = grid.cell_count();

  Localizer fp32(grid, base_config(Precision::kFp32, 1024), exec);
  EXPECT_EQ(fp32.map_bytes(), cells * 5u);
  EXPECT_EQ(fp32.particle_bytes(), 1024u * 32u);

  Localizer fp32qm(grid, base_config(Precision::kFp32Qm, 1024), exec);
  EXPECT_EQ(fp32qm.map_bytes(), cells * 2u);
  EXPECT_EQ(fp32qm.particle_bytes(), 1024u * 32u);

  Localizer fp16qm(grid, base_config(Precision::kFp16Qm, 1024), exec);
  EXPECT_EQ(fp16qm.map_bytes(), cells * 2u);
  EXPECT_EQ(fp16qm.particle_bytes(), 1024u * 16u);
}

TEST(Localizer, GateBlocksUpdatesUntilMotion) {
  const auto grid = maze_grid();
  SerialExecutor exec;
  Localizer loc(grid, base_config(), exec);
  loc.start_global();

  const sensor::TofSensorConfig front;  // default id 0
  sensor::TofFrame frame;
  frame.mode = sensor::ZoneMode::k8x8;
  frame.sensor_id = 0;
  frame.zones.assign(64, {1.0f, sensor::ZoneStatus::kValid});

  // No odometry yet: nothing can run.
  EXPECT_FALSE(loc.on_frames({&frame, 1}));

  loc.on_odometry(Pose2{0.0, 0.0, 0.0});
  // Still below the 0.1 m / 0.1 rad gate.
  loc.on_odometry(Pose2{0.05, 0.0, 0.0});
  EXPECT_FALSE(loc.on_frames({&frame, 1}));
  EXPECT_EQ(loc.updates_run(), 0u);

  // Enough translation.
  loc.on_odometry(Pose2{0.12, 0.0, 0.0});
  EXPECT_TRUE(loc.on_frames({&frame, 1}));
  EXPECT_EQ(loc.updates_run(), 1u);

  // Gate resets after the update.
  EXPECT_FALSE(loc.on_frames({&frame, 1}));

  // Pure rotation passes the dθ gate.
  loc.on_odometry(Pose2{0.12, 0.0, 0.15});
  EXPECT_TRUE(loc.on_frames({&frame, 1}));
}

// Malformed frames must not abort the flight loop (one corrupt packet
// must not ground the drone): they are skipped and counted, while valid
// frames in the same batch still drive the correction.
TEST(Localizer, DropsMalformedFramesAndCountsThem) {
  const auto grid = maze_grid();
  SerialExecutor exec;
  Localizer loc(grid, base_config(), exec);
  loc.start_global();
  loc.on_odometry(Pose2{0.0, 0.0, 0.0});
  loc.on_odometry(Pose2{0.2, 0.0, 0.0});
  EXPECT_EQ(loc.dropped_frames(), 0u);

  sensor::TofFrame unknown_sensor;
  unknown_sensor.sensor_id = 9;  // not configured
  unknown_sensor.mode = sensor::ZoneMode::k8x8;
  unknown_sensor.zones.assign(64, {1.0f, sensor::ZoneStatus::kValid});

  sensor::TofFrame wrong_mode = unknown_sensor;
  wrong_mode.sensor_id = 0;  // configured, but as 8×8
  wrong_mode.mode = sensor::ZoneMode::k4x4;
  wrong_mode.zones.assign(16, {1.0f, sensor::ZoneStatus::kValid});

  sensor::TofFrame short_payload = unknown_sensor;
  short_payload.sensor_id = 0;
  short_payload.zones.resize(40);  // truncated packet: 40 of 64 zones

  sensor::TofFrame good;
  good.sensor_id = 0;
  good.mode = sensor::ZoneMode::k8x8;
  good.zones.assign(64, {1.0f, sensor::ZoneStatus::kValid});

  // A batch mixing malformed and valid frames: no throw, the bad ones are
  // counted, the good one still produces a correction.
  const std::array<sensor::TofFrame, 4> batch{unknown_sensor, wrong_mode,
                                              short_payload, good};
  EXPECT_TRUE(loc.on_frames(batch));
  EXPECT_EQ(loc.dropped_frames(), 3u);
  EXPECT_EQ(loc.updates_run(), 1u);

  // A batch of ONLY malformed frames must not consume the correction
  // gate: it returns false (motion still sampled), keeps counting, and
  // the next valid frame still gets its correction even though the drone
  // has not moved since the corrupt packet.
  loc.on_odometry(Pose2{0.4, 0.0, 0.0});
  const std::array<sensor::TofFrame, 1> bad_only{unknown_sensor};
  EXPECT_FALSE(loc.on_frames(bad_only));
  EXPECT_EQ(loc.dropped_frames(), 4u);
  EXPECT_EQ(loc.updates_run(), 1u);
  const std::array<sensor::TofFrame, 1> good_only{good};
  EXPECT_TRUE(loc.on_frames(good_only));
  EXPECT_EQ(loc.updates_run(), 2u);
}

// System-level test: run the full simulated pipeline and verify global
// localization converges to the true pose — the paper's headline behaviour
// — for every precision variant.
class LocalizerPipeline : public ::testing::TestWithParam<Precision> {};

TEST_P(LocalizerPipeline, ConvergesOnSimulatedFlight) {
  const map::World maze = sim::drone_maze();
  sim::EvaluationEnvironment env;
  env.world = maze;
  env.maze_regions.push_back({{0.0, 0.0}, {4.0, 4.0}});
  const map::OccupancyGrid grid = sim::rasterize_environment(env, 0.05, 0.01);

  // Generate a flight through the maze.
  const auto plans = sim::standard_flight_plans();
  Rng rng(11);
  const sim::Sequence seq = sim::generate_sequence(
      maze, plans[1], sim::default_generator_config(), rng);

  SerialExecutor exec;
  LocalizerConfig cfg = base_config(GetParam(), 4096);
  Localizer loc(grid, cfg, exec);
  loc.start_global();

  // Replay: interleave odometry and ToF frames by timestamp, recording
  // the estimate error at every correction.
  std::size_t frame_idx = 0;
  std::vector<double> errors;
  for (std::size_t i = 0; i < seq.odometry.size(); ++i) {
    const double t = seq.odometry[i].t;
    loc.on_odometry(seq.odometry[i].pose);
    // Feed all frame pairs due by now.
    while (frame_idx + 1 < seq.frames.size() &&
           seq.frames[frame_idx].timestamp_s <= t) {
      const std::array<sensor::TofFrame, 2> pair{seq.frames[frame_idx],
                                                 seq.frames[frame_idx + 1]};
      if (loc.on_frames(pair) && loc.estimate().valid) {
        const Pose2 truth = sim::interpolate_pose(seq.ground_truth, t);
        errors.push_back(
            (loc.estimate().pose.position - truth.position).norm());
      }
      frame_idx += 2;
    }
  }
  EXPECT_GT(loc.updates_run(), 20u);
  ASSERT_GT(errors.size(), 40u);
  // Paper criteria: the filter converges (close to truth) and pose
  // tracking stays reliable (ATE ≤ 1 m) until the end. The very last
  // updates see gate-starved diffusion while the drone decelerates, so
  // accuracy is judged on the converged segment's median.
  const std::vector<double> tail(errors.end() - 30, errors.end());
  EXPECT_LT(median(tail), 0.3) << "precision=" << to_string(GetParam());
  EXPECT_LT(errors.back(), 1.0) << "precision=" << to_string(GetParam());
  const Pose2 truth_end = seq.ground_truth.back().pose;
  EXPECT_LT(angle_dist(loc.estimate().pose.yaw, truth_end.yaw),
            deg_to_rad(36.0));
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, LocalizerPipeline,
                         ::testing::Values(Precision::kFp32,
                                           Precision::kFp32Qm,
                                           Precision::kFp16Qm),
                         [](const auto& suite_info) {
                           return std::string(to_string(suite_info.param));
                         });

TEST(Localizer, TrackingInitStaysLocked) {
  const map::World maze = sim::drone_maze();
  sim::EvaluationEnvironment env;
  env.world = maze;
  env.maze_regions.push_back({{0.0, 0.0}, {4.0, 4.0}});
  const map::OccupancyGrid grid = sim::rasterize_environment(env, 0.05, 0.01);

  const auto plans = sim::standard_flight_plans();
  Rng rng(12);
  const sim::Sequence seq = sim::generate_sequence(
      maze, plans[0], sim::default_generator_config(), rng);

  SerialExecutor exec;
  Localizer loc(grid, base_config(Precision::kFp32, 1024), exec);
  loc.on_odometry(seq.odometry.front().pose);
  loc.start_at(seq.ground_truth.front().pose, 0.2, 0.2);

  std::size_t frame_idx = 0;
  RunningStats errors;
  double final_err = 0.0;
  for (std::size_t i = 0; i < seq.odometry.size(); ++i) {
    loc.on_odometry(seq.odometry[i].pose);
    while (frame_idx + 1 < seq.frames.size() &&
           seq.frames[frame_idx].timestamp_s <= seq.odometry[i].t) {
      const std::array<sensor::TofFrame, 2> pair{seq.frames[frame_idx],
                                                 seq.frames[frame_idx + 1]};
      if (loc.on_frames(pair) && loc.estimate().valid) {
        const Pose2 truth =
            sim::interpolate_pose(seq.ground_truth, seq.odometry[i].t);
        final_err = (loc.estimate().pose.position - truth.position).norm();
        errors.add(final_err);
      }
      frame_idx += 2;
    }
  }
  // Paper's reliability criterion: the aggregate ATE stays within 1 m
  // (brief excursions are tolerated and recovered from).
  EXPECT_GT(loc.updates_run(), 10u);
  EXPECT_GT(errors.count(), 20u);
  EXPECT_LT(errors.mean(), 0.5);
  EXPECT_LT(final_err, 0.8);
}

}  // namespace
}  // namespace tofmcl::core
