// Tests for the dynamic-obstacle layer: ping-pong kinematics as a pure
// function of time, cylinder raycasting, compositing into rendered ToF
// frames (with bit-exact equivalence to the static path when no obstacles
// are present), and deterministic scattering.

#include "sim/dynamic_obstacles.hpp"

#include <gtest/gtest.h>

#include "common/angles.hpp"
#include "sim/maze.hpp"
#include "sim/sequence_generator.hpp"

namespace tofmcl::sim {
namespace {

DynamicObstacle shuttle() {
  DynamicObstacle o;
  o.track = {{0.0, 0.0}, {2.0, 0.0}};  // length 2
  o.speed_m_s = 1.0;
  return o;
}

TEST(DynamicObstacles, PingPongTraversal) {
  const DynamicObstacle o = shuttle();
  EXPECT_EQ(obstacle_position(o, 0.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(obstacle_position(o, 1.0), (Vec2{1.0, 0.0}));
  EXPECT_EQ(obstacle_position(o, 2.0), (Vec2{2.0, 0.0}));
  // Reflection: at t = 3 the obstacle is on its way back.
  EXPECT_EQ(obstacle_position(o, 3.0), (Vec2{1.0, 0.0}));
  EXPECT_EQ(obstacle_position(o, 4.0), (Vec2{0.0, 0.0}));
  // Full period.
  EXPECT_EQ(obstacle_position(o, 5.5), obstacle_position(o, 1.5));
}

TEST(DynamicObstacles, PhaseOffsetsAndPureFunction) {
  DynamicObstacle o = shuttle();
  o.phase_s = 0.5;
  EXPECT_EQ(obstacle_position(o, 0.0), (Vec2{0.5, 0.0}));
  // Pure function of t: evaluation order cannot matter.
  const Vec2 late = obstacle_position(o, 17.25);
  const Vec2 early = obstacle_position(o, 3.25);
  EXPECT_EQ(obstacle_position(o, 3.25), early);
  EXPECT_EQ(obstacle_position(o, 17.25), late);
}

TEST(DynamicObstacles, DegenerateTracksPin) {
  DynamicObstacle o;
  o.track = {{1.0, 2.0}};
  EXPECT_EQ(obstacle_position(o, 3.0), (Vec2{1.0, 2.0}));
  o.track = {{1.0, 2.0}, {1.0, 2.0}};  // zero length
  EXPECT_EQ(obstacle_position(o, 3.0), (Vec2{1.0, 2.0}));
  o.track.clear();
  EXPECT_EQ(obstacle_position(o, 3.0), (Vec2{0.0, 0.0}));
}

TEST(DynamicObstacles, MultiSegmentTrack) {
  DynamicObstacle o;
  o.track = {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}};  // length 2
  o.speed_m_s = 1.0;
  EXPECT_EQ(obstacle_position(o, 0.5), (Vec2{0.5, 0.0}));
  EXPECT_EQ(obstacle_position(o, 1.5), (Vec2{1.0, 0.5}));
  EXPECT_EQ(obstacle_position(o, 2.0), (Vec2{1.0, 1.0}));
  EXPECT_EQ(obstacle_position(o, 2.5), (Vec2{1.0, 0.5}));
}

TEST(CylinderRaycast, HitMissAndNearest) {
  const std::vector<sensor::CylinderObstacle> obstacles{
      {{2.0, 0.0}, 0.5, 1.8},
      {{4.0, 0.0}, 0.5, 1.8},
  };
  const auto hit = sensor::raycast_cylinders(obstacles, {0.0, 0.0}, 0.0, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->distance, 1.5, 1e-12);
  EXPECT_EQ(hit->index, 0u);
  EXPECT_NEAR(hit->sin_incidence, 1.0, 1e-12);  // head-on

  // Perpendicular ray misses.
  EXPECT_FALSE(sensor::raycast_cylinders(obstacles, {0.0, 2.0}, 0.0, 10.0)
                   .has_value());
  // Cylinder behind the ray origin is not hit.
  EXPECT_FALSE(
      sensor::raycast_cylinders(obstacles, {6.0, 0.0}, 0.0, 10.0).has_value());
  // Beyond max range.
  EXPECT_FALSE(
      sensor::raycast_cylinders(obstacles, {0.0, 0.0}, 0.0, 1.0).has_value());
  // Origin inside a cylinder ranges 0.
  const auto inside =
      sensor::raycast_cylinders(obstacles, {2.1, 0.0}, 0.7, 10.0);
  ASSERT_TRUE(inside.has_value());
  EXPECT_EQ(inside->distance, 0.0);
}

TEST(CylinderRaycast, GrazingIncidence) {
  const std::vector<sensor::CylinderObstacle> obstacles{{{2.0, 0.0}, 0.5, 1.8}};
  // Ray offset to brush the top of the circle: shallow incidence.
  const auto graze =
      sensor::raycast_cylinders(obstacles, {0.0, 0.49}, 0.0, 10.0);
  ASSERT_TRUE(graze.has_value());
  EXPECT_LT(graze->sin_incidence, 0.35);
}

// Compositing: an obstacle between the sensor and the wall shortens the
// affected beams; an obstacle behind the wall is invisible; and an EMPTY
// obstacle list consumes exactly the same rng stream as the static
// overload, so static datasets stay bit-identical.
TEST(DynamicObstacles, CompositedIntoFrames) {
  map::World world;
  world.add_segment({3.0, -5.0}, {3.0, 5.0});  // wall ahead
  sensor::TofSensorConfig config;
  const sensor::MultizoneToF tof(config);
  const Pose2 pose{0.0, 0.0, 0.0};

  const sensor::TofFrame wall_only = tof.measure_ideal(world, pose, 0.0);
  const int side = wall_only.side();
  const int mid = side / 2;

  {
    const std::vector<sensor::CylinderObstacle> blocking{{{1.5, 0.0}, 0.3, 1.8}};
    Rng rng(3);
    sensor::TofFrame frame = tof.measure(world, blocking, pose, 0.0, rng);
    // Recompute noise-free by comparing against an ideal no-noise
    // composite: use another measure with a zeroed noise model instead.
    sensor::TofSensorConfig quiet = config;
    quiet.sigma_base_m = 0.0;
    quiet.sigma_proportional = 0.0;
    quiet.p_interference = 0.0;
    const sensor::MultizoneToF quiet_tof(quiet);
    Rng rng2(3);
    frame = quiet_tof.measure(world, blocking, pose, 0.0, rng2);
    const auto& zone = frame.zone(mid, mid);
    ASSERT_TRUE(zone.valid());
    EXPECT_LT(zone.distance_m, 1.5f);  // shorter than the wall at 3 m
    EXPECT_GT(zone.distance_m, 1.0f);  // roughly the cylinder surface
  }
  {
    // Fully occluded behind the wall: invisible, frame matches the
    // wall-only render. The obstacle must be SHORTER than the wall —
    // rows that overshoot the 1 m wall panel climb ever higher, so a
    // taller obstacle behind it would legitimately poke above the wall.
    const std::vector<sensor::CylinderObstacle> hidden{{{4.0, 0.0}, 0.3, 0.8}};
    const sensor::TofFrame frame_hidden =
        tof.measure_ideal(world, pose, 0.0);
    Rng a(9);
    Rng b(9);
    const sensor::TofFrame with = tof.measure(world, hidden, pose, 0.0, a);
    const sensor::TofFrame without = tof.measure(world, pose, 0.0, b);
    ASSERT_EQ(with.zones.size(), without.zones.size());
    for (std::size_t i = 0; i < with.zones.size(); ++i) {
      EXPECT_EQ(with.zones[i].distance_m, without.zones[i].distance_m);
      EXPECT_EQ(with.zones[i].status, without.zones[i].status);
    }
    (void)frame_hidden;
  }
  {
    // Empty obstacle span ≡ static overload, bit for bit.
    Rng a(77);
    Rng b(77);
    const sensor::TofFrame with = tof.measure(world, {}, pose, 0.0, a);
    const sensor::TofFrame without = tof.measure(world, pose, 0.0, b);
    ASSERT_EQ(with.zones.size(), without.zones.size());
    for (std::size_t i = 0; i < with.zones.size(); ++i) {
      EXPECT_EQ(with.zones[i].distance_m, without.zones[i].distance_m);
      EXPECT_EQ(with.zones[i].status, without.zones[i].status);
    }
  }
}

// A short obstacle (a cart, not a person) occludes only the rows whose
// elevated beams actually meet its panel; higher rows must fall through
// to the wall behind instead of ranging out.
TEST(DynamicObstacles, ShortObstacleDoesNotDeleteWallReturnsAbove) {
  map::World world;
  world.add_segment({3.0, -5.0}, {3.0, 5.0});
  sensor::TofSensorConfig config;  // flight height 0.5, wall height 1.0
  const sensor::MultizoneToF tof(config);
  const Pose2 pose{0.0, 0.0, 0.0};
  // 0.55 m cart one meter ahead: rows at positive elevation overshoot it.
  const std::vector<sensor::CylinderObstacle> cart{{{1.0, 0.0}, 0.3, 0.55}};
  Rng rng(4);
  sensor::TofSensorConfig quiet = config;
  quiet.sigma_base_m = 0.0;
  quiet.sigma_proportional = 0.0;
  quiet.p_interference = 0.0;
  const sensor::MultizoneToF quiet_tof(quiet);
  const sensor::TofFrame frame = quiet_tof.measure(world, cart, pose, 0.0,
                                                   rng);
  const int side = frame.side();
  const int mid = side / 2;
  // Row just below the horizon (−2.8°) sees the cart...
  const auto& low = frame.zone(mid - 1, mid);
  ASSERT_TRUE(low.valid());
  EXPECT_LT(low.distance_m, 1.0f);
  // ...while row 5 (+8.4°) passes over the 0.55 m cart (beam height 0.65
  // there) yet still meets the 1 m wall panel at 3 m (height 0.94): it
  // must return the wall, not out-of-range.
  const auto& high = frame.zone(mid + 1, mid);
  ASSERT_TRUE(high.valid());
  EXPECT_GT(high.distance_m, 2.5f);
  (void)side;
}

TEST(DynamicObstacles, SeededScatterMatchesManualRecipe) {
  const auto plans = standard_flight_plans();
  const auto a = scatter_obstacles_seeded(plans, 2, 1.1, 77);
  const auto b = scatter_obstacles_seeded(plans, 2, 1.1, 77);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].track[0], b[i].track[0]);
    EXPECT_EQ(a[i].track[1], b[i].track[1]);
    EXPECT_EQ(a[i].phase_s, b[i].phase_s);
  }
  // Different dataset seeds give different tracks.
  const auto c = scatter_obstacles_seeded(plans, 2, 1.1, 78);
  EXPECT_NE(a[0].track[0], c[0].track[0]);
}

TEST(DynamicObstacles, SequenceGenerationIsDeterministicAndAffected) {
  const auto plans = standard_flight_plans();
  SequenceGeneratorConfig gen = default_generator_config();
  const map::World world = drone_maze();

  Rng scatter_rng(42);
  gen.obstacles = scatter_obstacles(plans, 3, 1.0, scatter_rng);
  ASSERT_EQ(gen.obstacles.size(), 3u);
  for (const DynamicObstacle& o : gen.obstacles) {
    ASSERT_EQ(o.track.size(), 2u);
    EXPECT_GT((o.track[1] - o.track[0]).norm(), 0.5);
  }

  Rng a(5);
  const Sequence with_a = generate_sequence(world, plans[0], gen, a);
  Rng b(5);
  const Sequence with_b = generate_sequence(world, plans[0], gen, b);
  ASSERT_EQ(with_a.frames.size(), with_b.frames.size());
  for (std::size_t i = 0; i < with_a.frames.size(); ++i) {
    ASSERT_EQ(with_a.frames[i].zones.size(), with_b.frames[i].zones.size());
    for (std::size_t z = 0; z < with_a.frames[i].zones.size(); ++z) {
      EXPECT_EQ(with_a.frames[i].zones[z].distance_m,
                with_b.frames[i].zones[z].distance_m);
      EXPECT_EQ(with_a.frames[i].zones[z].status,
                with_b.frames[i].zones[z].status);
    }
  }

  // Obstacles change the rendered data relative to the static world.
  SequenceGeneratorConfig static_gen = default_generator_config();
  Rng c(5);
  const Sequence without = generate_sequence(world, plans[0], static_gen, c);
  ASSERT_EQ(with_a.frames.size(), without.frames.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < with_a.frames.size() && !any_difference; ++i) {
    for (std::size_t z = 0; z < with_a.frames[i].zones.size(); ++z) {
      if (with_a.frames[i].zones[z].distance_m !=
              without.frames[i].zones[z].distance_m ||
          with_a.frames[i].zones[z].status !=
              without.frames[i].zones[z].status) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
  // The truth trajectory is identical — obstacles affect sensing only.
  ASSERT_EQ(with_a.ground_truth.size(), without.ground_truth.size());
  for (std::size_t i = 0; i < with_a.ground_truth.size(); ++i) {
    EXPECT_EQ(with_a.ground_truth[i].pose, without.ground_truth[i].pose);
  }
}

TEST(DynamicObstacles, ScatterIsDeterministic) {
  const auto plans = standard_flight_plans();
  Rng a(123);
  Rng b(123);
  const auto oa = scatter_obstacles(plans, 5, 0.9, a);
  const auto ob = scatter_obstacles(plans, 5, 0.9, b);
  ASSERT_EQ(oa.size(), ob.size());
  for (std::size_t i = 0; i < oa.size(); ++i) {
    ASSERT_EQ(oa[i].track.size(), ob[i].track.size());
    for (std::size_t j = 0; j < oa[i].track.size(); ++j) {
      EXPECT_EQ(oa[i].track[j], ob[i].track[j]);
    }
    EXPECT_EQ(oa[i].phase_s, ob[i].phase_s);
    EXPECT_EQ(oa[i].speed_m_s, 0.9);
  }
}

}  // namespace
}  // namespace tofmcl::sim
