// Unit tests for the ParticleFilter phases: initialization, motion
// sampling statistics, observation weighting, systematic resampling
// (including serial/parallel bit-exactness) and pose computation.

#include "core/particle_filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/stats.hpp"
#include "map/rasterize.hpp"

namespace tofmcl::core {
namespace {

using sensor::Beam;

// 4×4 m closed box with a wall at x=2: a simple, unambiguous-enough world.
map::OccupancyGrid test_grid() {
  map::World w;
  w.add_rectangle({{0.0, 0.0}, {4.0, 4.0}});
  w.add_segment({2.0, 0.0}, {2.0, 2.5});
  map::RasterizeOptions opt;
  opt.resolution = 0.05;
  return map::rasterize(w, opt);
}

MclConfig small_config(std::size_t n = 512) {
  MclConfig cfg;
  cfg.num_particles = n;
  cfg.seed = 77;
  return cfg;
}

Beam beam_at(double azimuth, double range) {
  Beam b;
  b.azimuth_body = azimuth;
  b.range_m = static_cast<float>(range);
  b.endpoint_body = Vec2f{static_cast<float>(range * std::cos(azimuth)),
                          static_cast<float>(range * std::sin(azimuth))};
  return b;
}

TEST(ParticleFilter, RejectsBadConfig) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  MclConfig cfg = small_config();
  cfg.num_particles = 0;
  EXPECT_THROW((ParticleFilter<Fp32Traits>(dm, cfg, exec)),
               PreconditionError);
  cfg = small_config();
  cfg.chunks = 0;
  EXPECT_THROW((ParticleFilter<Fp32Traits>(dm, cfg, exec)),
               PreconditionError);
  cfg = small_config();
  cfg.sigma_obs = 0.0;
  EXPECT_THROW((ParticleFilter<Fp32Traits>(dm, cfg, exec)),
               PreconditionError);
}

TEST(ParticleFilter, UniformInitCoversSupport) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  ParticleFilter<Fp32Traits> pf(dm, small_config(4096), exec);
  const auto support = grid.free_cell_centers();
  pf.init_uniform(support, 0.025);

  RunningStats xs;
  RunningStats yaws;
  for (const auto& p : pf.particles()) {
    xs.add(static_cast<double>(p.x));
    yaws.add(static_cast<double>(p.yaw));
    EXPECT_FLOAT_EQ(static_cast<float>(p.weight), 1.0f);
  }
  // Spread over the whole box.
  EXPECT_LT(xs.min(), 0.5);
  EXPECT_GT(xs.max(), 3.5);
  // Yaw roughly uniform: mean ~0, spread large.
  EXPECT_NEAR(yaws.mean(), 0.0, 0.15);
  EXPECT_GT(yaws.stddev(), 1.5);
}

TEST(ParticleFilter, GaussianInitClusters) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  ParticleFilter<Fp32Traits> pf(dm, small_config(4096), exec);
  pf.init_gaussian({1.0, 2.0, 0.5}, 0.1, 0.05);
  RunningStats xs;
  RunningStats ys;
  for (const auto& p : pf.particles()) {
    xs.add(static_cast<double>(p.x));
    ys.add(static_cast<double>(p.y));
  }
  EXPECT_NEAR(xs.mean(), 1.0, 0.02);
  EXPECT_NEAR(ys.mean(), 2.0, 0.02);
  EXPECT_NEAR(xs.stddev(), 0.1, 0.02);
}

TEST(ParticleFilter, MotionUpdateStatistics) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  MclConfig cfg = small_config(8192);
  cfg.sigma_odom_xy = 0.05;
  cfg.sigma_odom_yaw = 0.02;
  cfg.scale_noise_with_motion = false;  // test the raw σ_odom mechanics
  ParticleFilter<Fp32Traits> pf(dm, cfg, exec);
  pf.init_gaussian({2.0, 2.0, 0.0}, 0.0, 0.0);  // all identical, facing +x
  pf.motion_update(Pose2{0.3, 0.0, 0.1});

  RunningStats xs;
  RunningStats ys;
  RunningStats yaws;
  for (const auto& p : pf.particles()) {
    xs.add(static_cast<double>(p.x));
    ys.add(static_cast<double>(p.y));
    yaws.add(static_cast<double>(p.yaw));
  }
  // Mean moves by the commanded delta; spread matches σ_odom.
  EXPECT_NEAR(xs.mean(), 2.3, 0.005);
  EXPECT_NEAR(ys.mean(), 2.0, 0.005);
  EXPECT_NEAR(yaws.mean(), 0.1, 0.002);
  EXPECT_NEAR(xs.stddev(), 0.05, 0.005);
  EXPECT_NEAR(ys.stddev(), 0.05, 0.005);
  EXPECT_NEAR(yaws.stddev(), 0.02, 0.002);
}

TEST(ParticleFilter, MotionDeltaIsBodyFrame) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  MclConfig cfg = small_config(1024);
  cfg.sigma_odom_xy = 0.0;
  cfg.sigma_odom_yaw = 0.0;
  ParticleFilter<Fp32Traits> pf(dm, cfg, exec);
  pf.init_gaussian({2.0, 2.0, kPi / 2.0}, 0.0, 0.0);  // facing +y
  pf.motion_update(Pose2{0.5, 0.0, 0.0});             // forward in body frame
  const auto& p = pf.particles()[0];
  EXPECT_NEAR(static_cast<float>(p.x), 2.0f, 1e-5);
  EXPECT_NEAR(static_cast<float>(p.y), 2.5f, 1e-5);
}

TEST(ParticleFilter, ObservationWeightsFavorTruePose) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  MclConfig cfg = small_config(2);
  cfg.sigma_odom_xy = 0.0;
  ParticleFilter<Fp32Traits> pf(dm, cfg, exec);
  // Particle 0 at the "true" pose: 1 m from the wall at x=2, facing it.
  // Particle 1 displaced 0.5 m backwards.
  pf.init_gaussian({1.0, 1.0, 0.0}, 0.0, 0.0);
  // Construct beams as if measured from (1.0, 1.0) facing +x: wall at 1 m.
  const std::array<Beam, 1> beams{beam_at(0.0, 1.0)};
  pf.observation_update(beams);
  const float w_true = static_cast<float>(pf.particles()[0].weight);

  ParticleFilter<Fp32Traits> pf2(dm, cfg, exec);
  pf2.init_gaussian({0.5, 1.0, 0.0}, 0.0, 0.0);
  pf2.observation_update(beams);
  const float w_wrong = static_cast<float>(pf2.particles()[0].weight);

  EXPECT_GT(w_true, w_wrong);
  EXPECT_GT(w_true, 0.9f);  // endpoint lands on the wall → EDT ≈ 0
}

TEST(ParticleFilter, EmptyBeamSetLeavesWeights) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  ParticleFilter<Fp32Traits> pf(dm, small_config(64), exec);
  pf.init_gaussian({1.0, 1.0, 0.0}, 0.1, 0.1);
  pf.observation_update({});
  for (const auto& p : pf.particles()) {
    EXPECT_FLOAT_EQ(static_cast<float>(p.weight), 1.0f);
  }
}

TEST(ParticleFilter, ResampleConcentratesOnHighWeight) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  MclConfig cfg = small_config(1024);
  ParticleFilter<Fp32Traits> pf(dm, cfg, exec);
  const auto support = grid.free_cell_centers();
  pf.init_uniform(support, 0.025);
  // Weight particles by proximity to (1, 1): observation from that pose.
  const std::array<Beam, 2> beams{beam_at(0.0, 1.0), beam_at(kPi, 1.0)};
  pf.observation_update(beams);
  pf.resample();
  // All weights reset to 1 after resampling.
  for (const auto& p : pf.particles()) {
    EXPECT_FLOAT_EQ(static_cast<float>(p.weight), 1.0f);
  }
}

TEST(ParticleFilter, ResampleIsUnbiased) {
  // Property of systematic resampling: a group holding fraction W of the
  // total weight receives N·W copies up to a small discretization error.
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  MclConfig cfg = small_config(1000);
  ParticleFilter<Fp32Traits> pf(dm, cfg, exec);
  pf.init_gaussian({1.0, 1.0, 0.0}, 0.0, 0.0);
  // Contiguous groups (interleaved patterns alias with the regular arrow
  // spacing — an inherent property of systematic resampling, not a bug):
  // group A (first 500, x=0.5) weight 1; group B (last 500, x=2.5) weight 3.
  auto particles = pf.mutable_particles();
  for (std::size_t i = 0; i < particles.size(); ++i) {
    particles[i].x = (i < 500) ? 0.5f : 2.5f;
    particles[i].weight = (i < 500) ? 1.0f : 3.0f;
  }
  pf.resample();
  int group_b = 0;
  for (const auto& p : pf.particles()) {
    if (static_cast<float>(p.x) > 1.5f) ++group_b;
  }
  // Expected 750 of 1000; for a contiguous weight block systematic
  // resampling assigns N·W copies within ±1.
  EXPECT_NEAR(group_b, 750, 1);
}

TEST(ParticleFilter, ResampleMatchesWeightsAcrossChunkCounts) {
  // The wheel outcome distribution must not depend on the chunk count:
  // compare group shares for 1, 3 and 8 chunks.
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  for (const std::size_t chunks : {1u, 3u, 8u}) {
    MclConfig cfg = small_config(1200);
    cfg.chunks = chunks;
    ParticleFilter<Fp32Traits> pf(dm, cfg, exec);
    pf.init_gaussian({1.0, 1.0, 0.0}, 0.0, 0.0);
    auto particles = pf.mutable_particles();
    // Contiguous block: first 400 particles have weight 2 (group A).
    for (std::size_t i = 0; i < particles.size(); ++i) {
      particles[i].x = (i < 400) ? 0.5f : 2.5f;
      particles[i].weight = (i < 400) ? 2.0f : 1.0f;
    }
    pf.resample();
    int group_a = 0;
    for (const auto& p : pf.particles()) {
      if (static_cast<float>(p.x) < 1.5f) ++group_a;
    }
    // Group A mass: 400·2 / (400·2 + 800·1) = 0.5 → 600 copies.
    EXPECT_NEAR(group_a, 600, 1) << "chunks=" << chunks;
  }
}

TEST(ParticleFilter, ResampleBitExactAcrossExecutors) {
  // With the same chunk count, the serial executor and the thread pool
  // must produce identical particle sets — the partial-sum wheel is
  // deterministic.
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  const auto support = grid.free_cell_centers();
  const std::array<Beam, 4> beams{beam_at(0.0, 0.8), beam_at(kPi / 8, 1.2),
                                  beam_at(-kPi / 8, 0.6), beam_at(kPi, 1.0)};

  MclConfig cfg = small_config(777);  // non-divisible by 8 on purpose
  cfg.chunks = 8;

  SerialExecutor serial;
  ParticleFilter<Fp32Traits> pf_serial(dm, cfg, serial);
  pf_serial.init_uniform(support, 0.025);

  ThreadPool pool(3);
  ThreadPoolExecutor threaded(pool);
  ParticleFilter<Fp32Traits> pf_threaded(dm, cfg, threaded);
  pf_threaded.init_uniform(support, 0.025);

  for (int round = 0; round < 5; ++round) {
    pf_serial.update(Pose2{0.1, 0.02, 0.05}, beams);
    pf_threaded.update(Pose2{0.1, 0.02, 0.05}, beams);
  }
  const auto a = pf_serial.particles();
  const auto b = pf_threaded.particles();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(static_cast<float>(a[i].x), static_cast<float>(b[i].x)) << i;
    EXPECT_EQ(static_cast<float>(a[i].y), static_cast<float>(b[i].y)) << i;
    EXPECT_EQ(static_cast<float>(a[i].yaw), static_cast<float>(b[i].yaw))
        << i;
  }
  const auto ea = pf_serial.compute_pose();
  const auto eb = pf_threaded.compute_pose();
  EXPECT_EQ(ea.pose.x(), eb.pose.x());
  EXPECT_EQ(ea.pose.yaw, eb.pose.yaw);
}

TEST(ParticleFilter, ResampleHandlesDegenerateWeights) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  ParticleFilter<Fp32Traits> pf(dm, small_config(64), exec);
  pf.init_gaussian({1.0, 1.0, 0.0}, 0.1, 0.1);
  // Zero every weight through an impossible product is not reachable via
  // the observation model (factors > 0); emulate by many updates with far
  // beams — weights shrink but stay positive, resample must not crash and
  // must keep the particle count.
  const std::array<Beam, 8> beams{beam_at(0, 3.9f), beam_at(0.3, 3.9f),
                                  beam_at(0.6, 3.9f), beam_at(0.9, 3.9f),
                                  beam_at(1.2, 3.9f), beam_at(1.5, 3.9f),
                                  beam_at(1.8, 3.9f), beam_at(2.1, 3.9f)};
  for (int i = 0; i < 50; ++i) {
    pf.observation_update(beams);
    pf.resample();
  }
  EXPECT_EQ(pf.particles().size(), 64u);
  for (const auto& p : pf.particles()) {
    EXPECT_TRUE(std::isfinite(static_cast<float>(p.x)));
  }
}

TEST(ParticleFilter, PoseComputationWeightedMean) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  MclConfig cfg = small_config(4096);
  ParticleFilter<Fp32Traits> pf(dm, cfg, exec);
  pf.init_gaussian({1.5, 2.5, 0.7}, 0.05, 0.02);
  const PoseEstimate est = pf.compute_pose();
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.pose.x(), 1.5, 0.01);
  EXPECT_NEAR(est.pose.y(), 2.5, 0.01);
  EXPECT_NEAR(est.pose.yaw, 0.7, 0.01);
  EXPECT_NEAR(est.position_stddev, 0.05 * std::numbers::sqrt2, 0.02);
  EXPECT_GT(est.yaw_concentration, 0.99);
}

TEST(ParticleFilter, PoseYawAcrossSeam) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  ParticleFilter<Fp32Traits> pf(dm, small_config(4096), exec);
  pf.init_gaussian({2.0, 2.0, kPi}, 0.01, 0.05);  // around ±π
  const PoseEstimate est = pf.compute_pose();
  EXPECT_NEAR(angle_dist(est.pose.yaw, kPi), 0.0, 0.01);
}

TEST(ParticleFilter, DeterministicForSeed) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  const auto support = grid.free_cell_centers();
  SerialExecutor exec;
  const std::array<Beam, 2> beams{beam_at(0.0, 1.0), beam_at(kPi, 2.0)};

  auto run = [&]() {
    ParticleFilter<Fp32Traits> pf(dm, small_config(256), exec);
    pf.init_uniform(support, 0.025);
    for (int i = 0; i < 3; ++i) pf.update(Pose2{0.1, 0.0, 0.0}, beams);
    return pf.compute_pose();
  };
  const PoseEstimate a = run();
  const PoseEstimate b = run();
  EXPECT_EQ(a.pose.x(), b.pose.x());
  EXPECT_EQ(a.pose.y(), b.pose.y());
  EXPECT_EQ(a.pose.yaw, b.pose.yaw);
}

TEST(ParticleFilter, QuantizedMapVariantMatchesFloatClosely) {
  // fp32 vs fp32qm on identical input: estimates should agree to within
  // the quantization-induced tolerance (paper: no significant loss).
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  const map::QuantizedDistanceMap qm(grid, 1.5);
  const auto support = grid.free_cell_centers();
  SerialExecutor exec;
  const std::array<Beam, 4> beams{beam_at(0.0, 1.0), beam_at(0.4, 1.3),
                                  beam_at(-0.4, 0.9), beam_at(kPi, 1.8)};

  ParticleFilter<Fp32Traits> pf32(dm, small_config(2048), exec);
  ParticleFilter<Fp32QmTraits> pfqm(qm, small_config(2048), exec);
  pf32.init_uniform(support, 0.025);
  pfqm.init_uniform(support, 0.025);
  for (int i = 0; i < 10; ++i) {
    pf32.update(Pose2{0.12, 0.0, 0.03}, beams);
    pfqm.update(Pose2{0.12, 0.0, 0.03}, beams);
  }
  const PoseEstimate e32 = pf32.compute_pose();
  const PoseEstimate eqm = pfqm.compute_pose();
  ASSERT_TRUE(e32.valid);
  ASSERT_TRUE(eqm.valid);
  // Identical RNG streams and near-identical likelihoods: the clouds
  // should track each other closely (small divergence accumulates from
  // the ±½-step quantization of the EDT).
  EXPECT_NEAR(e32.pose.x(), eqm.pose.x(), 0.25);
  EXPECT_NEAR(e32.pose.y(), eqm.pose.y(), 0.25);
}

TEST(ParticleFilter, Fp16VariantStaysFiniteAndClose) {
  const auto grid = test_grid();
  const map::QuantizedDistanceMap qm(grid, 1.5);
  const auto support = grid.free_cell_centers();
  SerialExecutor exec;
  const std::array<Beam, 16> beams = [] {
    std::array<Beam, 16> out;
    for (int i = 0; i < 16; ++i) {
      out[static_cast<std::size_t>(i)] =
          beam_at(-0.3 + 0.04 * i, 0.8 + 0.05 * i);
    }
    return out;
  }();

  ParticleFilter<Fp16QmTraits> pf(qm, small_config(1024), exec);
  pf.init_uniform(support, 0.025);
  for (int i = 0; i < 20; ++i) pf.update(Pose2{0.1, 0.01, 0.02}, beams);
  const PoseEstimate est = pf.compute_pose();
  ASSERT_TRUE(est.valid);
  EXPECT_TRUE(std::isfinite(est.pose.x()));
  for (const auto& p : pf.particles()) {
    EXPECT_FALSE(p.weight.is_nan());
    EXPECT_FALSE(Half(static_cast<float>(p.x)).is_inf());
  }
}

// The fused motion+observation kernel must be bit-identical to the
// phase-by-phase path: the observation consumes no randomness, so fusing
// only reorders the traversal over (particle, phase), never the
// arithmetic or the per-chunk RNG streams.
TEST(ParticleFilter, FusedKernelMatchesSeparatePhases) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  const auto support = grid.free_cell_centers();
  SerialExecutor exec;
  const std::array<Beam, 3> beams{beam_at(0.0, 1.0), beam_at(0.5, 1.2),
                                  beam_at(kPi, 1.7)};

  ParticleFilter<Fp32Traits> separate(dm, small_config(777), exec);
  ParticleFilter<Fp32Traits> fused(dm, small_config(777), exec);
  separate.init_uniform(support, 0.025);
  fused.init_uniform(support, 0.025);

  for (int round = 0; round < 4; ++round) {
    separate.motion_update(Pose2{0.1, 0.02, 0.05});
    separate.observation_update(beams);
    separate.resample();
    fused.motion_observation_update(Pose2{0.1, 0.02, 0.05}, beams);
    fused.resample();
  }
  const auto a = separate.particles();
  const auto b = fused.particles();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(static_cast<float>(a[i].x), static_cast<float>(b[i].x)) << i;
    EXPECT_EQ(static_cast<float>(a[i].y), static_cast<float>(b[i].y)) << i;
    EXPECT_EQ(static_cast<float>(a[i].yaw), static_cast<float>(b[i].yaw))
        << i;
    EXPECT_EQ(static_cast<float>(a[i].weight),
              static_cast<float>(b[i].weight))
        << i;
  }
  const PoseEstimate ea = separate.compute_pose();
  const PoseEstimate eb = fused.compute_pose();
  EXPECT_EQ(ea.pose.x(), eb.pose.x());
  EXPECT_EQ(ea.pose.y(), eb.pose.y());
  EXPECT_EQ(ea.pose.yaw, eb.pose.yaw);
}

TEST(ParticleFilter, FusedKernelWithEmptyBeamsIsMotionOnly) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  ParticleFilter<Fp32Traits> motion_only(dm, small_config(128), exec);
  ParticleFilter<Fp32Traits> fused(dm, small_config(128), exec);
  motion_only.init_gaussian({1.0, 1.0, 0.0}, 0.1, 0.1);
  fused.init_gaussian({1.0, 1.0, 0.0}, 0.1, 0.1);
  motion_only.motion_update(Pose2{0.2, 0.0, 0.1});
  fused.motion_observation_update(Pose2{0.2, 0.0, 0.1}, {});
  const auto a = motion_only.particles();
  const auto b = fused.particles();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(static_cast<float>(a[i].x), static_cast<float>(b[i].x)) << i;
    EXPECT_EQ(static_cast<float>(a[i].weight),
              static_cast<float>(b[i].weight))
        << i;
  }
  EXPECT_EQ(fused.workload().beams, 0u);
}

// Regression for the Augmented-MCL monitor with large beam counts (8×8
// zones × 2 sensors = 128 beams). The observation kernel normalizes each
// factor by its per-beam maximum z_hit + z_rand, so a well-matched
// particle keeps weight ≈ 1 for any beam count; the unnormalized product
// used to underflow fp32 (max weight (z_hit+z_rand)^128 ≈ 1e-90 here),
// zeroing every weight, and the monitor's pow(per_beam_max, beams)
// normalizer could underflow/overflow into inf/NaN — either way recovery
// injection was silently disabled.
TEST(ParticleFilter, InjectionMonitorSurvives128Beams) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  const auto support = grid.free_cell_centers();
  SerialExecutor exec;
  MclConfig cfg = small_config(256);
  cfg.z_hit = 0.18;  // per-beam max 0.2: 0.2^128 underflows fp32 by far
  cfg.z_rand = 0.02;
  cfg.sigma_odom_xy = 0.0;
  cfg.sigma_odom_yaw = 0.0;
  ParticleFilter<Fp32Traits> pf(dm, cfg, exec);
  pf.init_gaussian({1.0, 1.0, 0.0}, 0.0, 0.0);
  pf.set_injection_support(support, 0.025);

  // 128 beams perfectly consistent with the pose (wall at x=2, 1 m ahead).
  std::vector<Beam> matched(128, beam_at(0.0, 1.0));
  pf.observation_update(matched);
  // The normalized product must survive fp32 storage: every factor is
  // ≈ its maximum, so the weight stays near 1 instead of 0.2^128 → 0.
  EXPECT_GT(static_cast<float>(pf.particles()[0].weight), 1e-3f);
  pf.resample();
  const InjectionMonitor& after_match = pf.injection_monitor();
  EXPECT_TRUE(std::isfinite(after_match.w_slow));
  EXPECT_TRUE(std::isfinite(after_match.w_fast));
  EXPECT_GT(after_match.w_slow, 0.0);

  // Now the observations disagree slightly everywhere (endpoints ~0.1 m
  // short of the wall — mild enough that the normalized 128-beam product
  // still fits in fp32): the short-term average must dive below the
  // long-term one and trigger a positive injection fraction.
  std::vector<Beam> mismatched(128, beam_at(0.0, 0.9));
  double max_inject = 0.0;
  for (int i = 0; i < 6; ++i) {
    pf.observation_update(mismatched);
    pf.resample();
    const InjectionMonitor& m = pf.injection_monitor();
    ASSERT_TRUE(std::isfinite(m.w_fast)) << "update " << i;
    ASSERT_TRUE(std::isfinite(m.w_slow)) << "update " << i;
    max_inject = std::max(max_inject, m.last_inject_p);
  }
  EXPECT_GT(max_inject, 0.0);
  EXPECT_LE(max_inject, cfg.injection_max_fraction);
}

// The fused kernel must stay bit-identical to the phased path with the
// short-return mixture AND novelty gating enabled: the per-beam state
// (floor, normalizer, gate verdict) is computed before the particle sweep
// from the same inputs in both paths, so only traversal order differs.
TEST(ParticleFilter, MixtureFusedKernelMatchesSeparatePhases) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  MclConfig cfg = small_config(777);
  cfg.z_short = 0.4;
  cfg.lambda_short = 1.3;
  cfg.enable_novelty_gating = true;

  ParticleFilter<Fp32Traits> separate(dm, cfg, exec);
  ParticleFilter<Fp32Traits> fused(dm, cfg, exec);
  separate.init_gaussian({1.0, 1.0, 0.0}, 0.1, 0.05);
  fused.init_gaussian({1.0, 1.0, 0.0}, 0.1, 0.05);

  // Mixed evidence: a matched wall return, a short occluder return (to be
  // gated once the estimate concentrates) and a mild mismatch.
  const std::array<Beam, 3> beams{beam_at(0.0, 1.0), beam_at(0.0, 0.3),
                                  beam_at(kPi, 0.9)};
  for (int round = 0; round < 4; ++round) {
    separate.motion_update(Pose2{0.05, 0.01, 0.02});
    separate.observation_update(beams);
    separate.resample();
    separate.compute_pose();
    fused.motion_observation_update(Pose2{0.05, 0.01, 0.02}, beams);
    fused.resample();
    fused.compute_pose();
    EXPECT_EQ(separate.workload().gated_beams, fused.workload().gated_beams)
        << "round " << round;
  }
  const auto a = separate.particles();
  const auto b = fused.particles();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(static_cast<float>(a[i].x), static_cast<float>(b[i].x)) << i;
    EXPECT_EQ(static_cast<float>(a[i].y), static_cast<float>(b[i].y)) << i;
    EXPECT_EQ(static_cast<float>(a[i].yaw), static_cast<float>(b[i].yaw))
        << i;
    EXPECT_EQ(static_cast<float>(a[i].weight),
              static_cast<float>(b[i].weight))
        << i;
  }
  EXPECT_EQ(separate.estimate().pose.x(), fused.estimate().pose.x());
  EXPECT_EQ(separate.estimate().pose.y(), fused.estimate().pose.y());
  EXPECT_EQ(separate.estimate().pose.yaw, fused.estimate().pose.yaw);
  // The scenario actually exercised the gate (otherwise this test proves
  // nothing about the mixture path).
  EXPECT_GT(fused.workload().gated_beams, 0u);
}

// Phased vs fused across the gate's ARMING edge: the gate verdict reads
// the PREVIOUS estimate, so both paths must consult it at the same point
// of the update cycle. Start dispersed (gate disarmed), let matched
// evidence concentrate the cloud until the gate arms mid-trajectory, and
// require bit-identity plus identical gate decisions at every round —
// a traversal reordering that sampled the estimate at a different time
// would diverge exactly at the flip.
TEST(ParticleFilter, FusedMatchesPhasedAcrossGatingArming) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  MclConfig cfg = small_config(512);
  cfg.enable_novelty_gating = true;

  ParticleFilter<Fp32Traits> separate(dm, cfg, exec);
  ParticleFilter<Fp32Traits> fused(dm, cfg, exec);
  // Yaw spread far beyond novelty_min_concentration, so the gate starts
  // DISARMED and only arms once the evidence has concentrated the cloud.
  separate.init_gaussian({1.0, 1.0, 0.0}, 0.15, 1.2);
  fused.init_gaussian({1.0, 1.0, 0.0}, 0.15, 1.2);

  // Matched wall returns plus a short occluder return that becomes
  // gateable the moment the gate arms (0.15 m + the 0.5 m margin stays
  // below the expected wall range even as the pose drifts forward).
  const std::array<Beam, 3> beams{beam_at(0.0, 1.0), beam_at(0.0, 0.15),
                                  beam_at(kPi, 1.0)};
  bool disarmed_seen = false;
  bool armed_seen = false;
  for (int round = 0; round < 12; ++round) {
    separate.motion_update(Pose2{0.02, 0.0, 0.01});
    separate.observation_update(beams);
    separate.resample();
    separate.compute_pose();
    fused.motion_observation_update(Pose2{0.02, 0.0, 0.01}, beams);
    fused.resample();
    fused.compute_pose();

    ASSERT_EQ(separate.workload().novelty_armed,
              fused.workload().novelty_armed)
        << "round " << round;
    ASSERT_EQ(separate.workload().gated_beams, fused.workload().gated_beams)
        << "round " << round;
    (fused.workload().novelty_armed ? armed_seen : disarmed_seen) = true;

    const auto a = separate.particles();
    const auto b = fused.particles();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(static_cast<float>(a[i].x), static_cast<float>(b[i].x))
          << "round " << round << " particle " << i;
      ASSERT_EQ(static_cast<float>(a[i].y), static_cast<float>(b[i].y))
          << "round " << round << " particle " << i;
      ASSERT_EQ(static_cast<float>(a[i].yaw), static_cast<float>(b[i].yaw))
          << "round " << round << " particle " << i;
      ASSERT_EQ(static_cast<float>(a[i].weight),
                static_cast<float>(b[i].weight))
          << "round " << round << " particle " << i;
    }
  }
  // The run must actually have crossed the arming edge — both states
  // observed, and the armed phase actually gated the occluder beam.
  EXPECT_TRUE(disarmed_seen);
  EXPECT_TRUE(armed_seen);
  EXPECT_GT(fused.workload().gated_beams, 0u);
}

// Novelty gating vs the injection monitor, the storm half: a tracked
// filter under SUSTAINED occlusion (a standing crowd / pacing walker in
// front of the forward sensor) must gate the short returns and keep
// w_fast/w_slow stable — no injection at all — where the ungated seed
// model's monitor dives and triggers recovery injection against a
// perfectly healthy estimate.
TEST(ParticleFilter, GatedOcclusionKeepsInjectionMonitorStable) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  const auto support = grid.free_cell_centers();
  SerialExecutor exec;
  MclConfig cfg = small_config(256);
  cfg.sigma_odom_xy = 0.0;
  cfg.sigma_odom_yaw = 0.0;
  cfg.enable_novelty_gating = true;

  MclConfig seed_cfg = cfg;
  seed_cfg.enable_novelty_gating = false;

  ParticleFilter<Fp32Traits> gated(dm, cfg, exec);
  ParticleFilter<Fp32Traits> ungated(dm, seed_cfg, exec);
  for (auto* pf : {&gated, &ungated}) {
    pf->init_gaussian({1.0, 1.0, 0.0}, 0.0, 0.0);
    pf->set_injection_support(support, 0.025);
  }

  // Warm-up with matched evidence (wall at x=2 one meter ahead, wall at
  // x=0 one meter behind) until the monitor has state and the estimate is
  // concentrated enough to arm the gate.
  const std::vector<Beam> matched{beam_at(0.0, 1.0), beam_at(kPi, 1.0)};
  for (int i = 0; i < 4; ++i) {
    for (auto* pf : {&gated, &ungated}) {
      pf->observation_update(matched);
      pf->resample();
      pf->compute_pose();
    }
  }
  const double w_slow_before = gated.injection_monitor().w_slow;
  ASSERT_GT(w_slow_before, 0.0);

  // Sustained occlusion: the forward return collapses to 0.3 m (person in
  // front of the mapped wall at 1.0 m) while the rear stays matched.
  const std::vector<Beam> occluded{beam_at(0.0, 0.3), beam_at(kPi, 1.0)};
  double ungated_max_inject = 0.0;
  for (int i = 0; i < 8; ++i) {
    gated.observation_update(occluded);
    EXPECT_TRUE(gated.workload().novelty_armed) << "update " << i;
    EXPECT_EQ(gated.workload().gated_beams, 1u) << "update " << i;
    gated.resample();
    EXPECT_EQ(gated.injection_monitor().last_inject_p, 0.0)
        << "update " << i;
    gated.compute_pose();

    ungated.observation_update(occluded);
    EXPECT_EQ(ungated.workload().gated_beams, 0u);
    ungated.resample();
    ungated_max_inject =
        std::max(ungated_max_inject, ungated.injection_monitor().last_inject_p);
    ungated.compute_pose();
  }
  // The gated monitor barely moved (only matched evidence reached it)…
  const InjectionMonitor& m = gated.injection_monitor();
  EXPECT_GT(m.w_fast, 0.9 * m.w_slow);
  EXPECT_NEAR(m.w_slow, w_slow_before, 0.1 * w_slow_before);
  // …while the seed model read the occlusion as "filter lost" and
  // injected (the storm this PR's gating exists to prevent).
  EXPECT_GT(ungated_max_inject, 0.0);
}

// The recovery half: gating must NEVER mask a genuine kidnapping. A
// teleported drone's returns are LONGER than the mapped expectation (or
// mismatched within the margin), which the gate deliberately lets
// through, so the monitor still dives and injection still fires.
TEST(ParticleFilter, GenuineKidnappingStillTriggersInjection) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  const auto support = grid.free_cell_centers();
  SerialExecutor exec;
  MclConfig cfg = small_config(256);
  cfg.sigma_odom_xy = 0.0;
  cfg.sigma_odom_yaw = 0.0;
  cfg.enable_novelty_gating = true;
  ParticleFilter<Fp32Traits> pf(dm, cfg, exec);
  pf.init_gaussian({1.0, 1.0, 0.0}, 0.0, 0.0);
  pf.set_injection_support(support, 0.025);

  const std::vector<Beam> matched{beam_at(0.0, 1.0), beam_at(kPi, 1.0)};
  for (int i = 0; i < 4; ++i) {
    pf.observation_update(matched);
    pf.resample();
    pf.compute_pose();
  }

  // Teleport: the real drone now sees the forward wall 2.5 m away where
  // the (stale) estimate expects it at 1.0 m. A mapped surface lies well
  // inside range + margin, so the beam is NOT gated — and must not be.
  const std::vector<Beam> teleported{beam_at(0.0, 2.5), beam_at(kPi, 2.5)};
  double max_inject = 0.0;
  for (int i = 0; i < 8; ++i) {
    pf.observation_update(teleported);
    EXPECT_EQ(pf.workload().gated_beams, 0u) << "update " << i;
    pf.resample();
    max_inject = std::max(max_inject, pf.injection_monitor().last_inject_p);
    pf.compute_pose();
  }
  EXPECT_GT(max_inject, 0.0);
  EXPECT_LE(max_inject, cfg.injection_max_fraction);
}

// The deadlock case of the previous test: a kidnapping toward NEARER
// surfaces makes every beam read shorter than the stale expectation, so
// the gate would exclude ALL of them — no evidence reaches the monitor,
// the estimate stays concentrated, and the gate would stay armed forever.
// The blind-streak fail-safe (novelty_max_blind_updates) must stand the
// gate down after a bounded number of fully-gated corrections so the raw
// mismatch reaches the weights and injection still fires.
TEST(ParticleFilter, FullyGatedKidnappingStillTriggersInjection) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  const auto support = grid.free_cell_centers();
  SerialExecutor exec;
  MclConfig cfg = small_config(256);
  cfg.sigma_odom_xy = 0.0;
  cfg.sigma_odom_yaw = 0.0;
  cfg.enable_novelty_gating = true;
  ParticleFilter<Fp32Traits> pf(dm, cfg, exec);
  pf.init_gaussian({1.0, 1.0, 0.0}, 0.0, 0.0);
  pf.set_injection_support(support, 0.025);

  const std::vector<Beam> matched{beam_at(0.0, 1.0), beam_at(kPi, 1.0)};
  for (int i = 0; i < 4; ++i) {
    pf.observation_update(matched);
    pf.resample();
    pf.compute_pose();
  }

  // Teleport into a tight corner: BOTH returns collapse to 0.3 m where
  // the stale estimate expects walls at 1.0 m — every beam gates.
  const std::vector<Beam> near_walls{beam_at(0.0, 0.3), beam_at(kPi, 0.3)};
  std::size_t fully_gated = 0;
  double max_inject = 0.0;
  for (int i = 0; i < 20; ++i) {
    pf.observation_update(near_walls);
    if (pf.workload().gated_beams == near_walls.size()) ++fully_gated;
    pf.resample();
    max_inject = std::max(max_inject, pf.injection_monitor().last_inject_p);
    pf.compute_pose();
  }
  // The gate blinded the filter only for the configured streak, then
  // stood down and let the evidence through — injection fired.
  EXPECT_GT(fully_gated, 0u);
  EXPECT_LT(fully_gated, 20u);
  EXPECT_GT(max_inject, 0.0);
}

TEST(ParticleFilter, WorkloadReported) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  ParticleFilter<Fp32Traits> pf(dm, small_config(128), exec);
  pf.init_gaussian({1.0, 1.0, 0.0}, 0.1, 0.1);
  const std::array<Beam, 3> beams{beam_at(0, 1), beam_at(1, 1),
                                  beam_at(2, 1)};
  pf.observation_update(beams);
  EXPECT_EQ(pf.workload().particles, 128u);
  EXPECT_EQ(pf.workload().beams, 3u);
}

}  // namespace
}  // namespace tofmcl::core
