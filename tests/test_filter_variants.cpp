// Typed tests: invariants that must hold for EVERY precision variant of
// the particle filter (fp32, fp32qm, fp16qm). Each test runs three times,
// once per instantiation — the cheap way to keep the variants honest as
// the filter evolves.

#include <gtest/gtest.h>

#include <cmath>

#include "core/particle_filter.hpp"
#include "map/rasterize.hpp"

namespace tofmcl::core {
namespace {

using sensor::Beam;

map::OccupancyGrid shared_grid() {
  map::World w;
  w.add_rectangle({{0.0, 0.0}, {4.0, 4.0}});
  w.add_segment({2.0, 0.0}, {2.0, 2.5});
  w.add_rectangle({{3.2, 3.2}, {3.5, 3.5}});
  map::RasterizeOptions opt;
  opt.resolution = 0.05;
  return map::rasterize(w, opt);
}

Beam beam_at(double azimuth, double range) {
  Beam b;
  b.azimuth_body = azimuth;
  b.range_m = static_cast<float>(range);
  b.endpoint_body = Vec2f{static_cast<float>(range * std::cos(azimuth)),
                          static_cast<float>(range * std::sin(azimuth))};
  return b;
}

template <typename Traits>
class FilterVariant : public ::testing::Test {
 protected:
  FilterVariant()
      : grid_(shared_grid()), map_(grid_, 1.5) {}

  MclConfig config(std::size_t n) const {
    MclConfig cfg;
    cfg.num_particles = n;
    cfg.seed = 99;
    return cfg;
  }

  map::OccupancyGrid grid_;
  typename Traits::Map map_;
  SerialExecutor exec_;
};

using AllTraits = ::testing::Types<Fp32Traits, Fp32QmTraits, Fp16QmTraits>;
TYPED_TEST_SUITE(FilterVariants, AllTraits);

template <typename Traits>
using FilterVariants = FilterVariant<Traits>;

TYPED_TEST(FilterVariants, ParticleCountInvariant) {
  ParticleFilter<TypeParam> pf(this->map_, this->config(333), this->exec_);
  pf.init_uniform(this->grid_.free_cell_centers(), 0.025);
  const std::array<Beam, 4> beams{beam_at(0, 1), beam_at(1, 1),
                                  beam_at(-1, 1), beam_at(3, 1)};
  for (int i = 0; i < 10; ++i) {
    pf.update(Pose2{0.11, 0.0, 0.02}, beams);
    EXPECT_EQ(pf.particles().size(), 333u);
  }
}

TYPED_TEST(FilterVariants, WeightsFiniteAndNonNegative) {
  ParticleFilter<TypeParam> pf(this->map_, this->config(256), this->exec_);
  pf.init_uniform(this->grid_.free_cell_centers(), 0.025);
  const std::array<Beam, 16> beams = [] {
    std::array<Beam, 16> out;
    for (int i = 0; i < 16; ++i) {
      out[static_cast<std::size_t>(i)] = beam_at(-0.3 + 0.04 * i, 1.0);
    }
    return out;
  }();
  for (int round = 0; round < 30; ++round) {
    pf.motion_update(Pose2{0.12, 0.0, 0.03});
    pf.observation_update(beams);
    for (const auto& p : pf.particles()) {
      const float w = static_cast<float>(p.weight);
      EXPECT_TRUE(std::isfinite(w));
      EXPECT_GE(w, 0.0f);
    }
    pf.resample();
  }
}

TYPED_TEST(FilterVariants, PosesStayInsideReasonableBounds) {
  // Diffusion + resampling must not fling particles to infinity; with
  // observations anchoring them they stay near the map.
  ParticleFilter<TypeParam> pf(this->map_, this->config(512), this->exec_);
  pf.init_uniform(this->grid_.free_cell_centers(), 0.025);
  const std::array<Beam, 8> beams = [] {
    std::array<Beam, 8> out;
    for (int i = 0; i < 8; ++i) {
      out[static_cast<std::size_t>(i)] = beam_at(-0.3 + 0.09 * i, 0.9);
    }
    return out;
  }();
  for (int round = 0; round < 40; ++round) {
    pf.update(Pose2{0.1, 0.0, 0.05}, beams);
  }
  for (const auto& p : pf.particles()) {
    EXPECT_GT(static_cast<float>(p.x), -3.0f);
    EXPECT_LT(static_cast<float>(p.x), 7.0f);
    EXPECT_GT(static_cast<float>(p.y), -3.0f);
    EXPECT_LT(static_cast<float>(p.y), 7.0f);
    EXPECT_LE(std::abs(static_cast<float>(p.yaw)),
              static_cast<float>(kPi) + 0.01f);
  }
}

TYPED_TEST(FilterVariants, DeterministicForSeed) {
  const auto run = [&]() {
    ParticleFilter<TypeParam> pf(this->map_, this->config(128), this->exec_);
    pf.init_uniform(this->grid_.free_cell_centers(), 0.025);
    const std::array<Beam, 2> beams{beam_at(0, 1.2), beam_at(kPi, 0.7)};
    for (int i = 0; i < 5; ++i) pf.update(Pose2{0.1, 0.01, 0.02}, beams);
    return pf.compute_pose();
  };
  const PoseEstimate a = run();
  const PoseEstimate b = run();
  EXPECT_EQ(a.pose.x(), b.pose.x());
  EXPECT_EQ(a.pose.y(), b.pose.y());
  EXPECT_EQ(a.pose.yaw, b.pose.yaw);
  EXPECT_EQ(a.position_stddev, b.position_stddev);
}

TYPED_TEST(FilterVariants, EstimateValidAfterFirstPose) {
  ParticleFilter<TypeParam> pf(this->map_, this->config(64), this->exec_);
  EXPECT_FALSE(pf.estimate().valid);
  pf.init_gaussian({1.0, 1.0, 0.0}, 0.05, 0.05);
  EXPECT_FALSE(pf.estimate().valid);  // init invalidates
  const PoseEstimate est = pf.compute_pose();
  EXPECT_TRUE(est.valid);
  EXPECT_TRUE(pf.estimate().valid);
  EXPECT_TRUE(std::isfinite(est.pose.x()));
}

TYPED_TEST(FilterVariants, TrackingImprovesWithObservations) {
  // From a coarse prior around the true pose, observations should shrink
  // the cloud and keep the mean near truth — for every variant.
  const Pose2 truth{1.0, 1.0, 0.0};
  ParticleFilter<TypeParam> pf(this->map_, this->config(2048), this->exec_);
  pf.init_gaussian(truth, 0.3, 0.3);
  // Beams consistent with the truth pose: wall x=2 is 1 m ahead; the
  // outer walls are 1 m below and 1 m to the left.
  const std::array<Beam, 3> beams{beam_at(0.0, 1.0),
                                  beam_at(-kPi / 2.0, 1.0),
                                  beam_at(kPi, 1.0)};
  const double before = pf.compute_pose().position_stddev;
  for (int i = 0; i < 6; ++i) pf.update(Pose2{}, beams);
  const PoseEstimate est = pf.compute_pose();
  EXPECT_LT(est.position_stddev, before);
  EXPECT_NEAR(est.pose.x(), truth.x(), 0.25);
  EXPECT_NEAR(est.pose.y(), truth.y(), 0.25);
}

}  // namespace
}  // namespace tofmcl::core
