// Serving-layer tests: the keyed once-map (single construction + pointer
// identity under concurrent requests), bounded admission control with
// drop-oldest semantics and backpressure signals, the Localizer's
// asserted single-threaded contract and correction-timing hooks, and the
// serial-vs-pooled determinism gate (bit-identical per-session correction
// traces whatever the pump schedule — set TOFMCL_SERVE_TRACE to dump a
// hexfloat trace for cross-process CI diffs).
//
// The CI ThreadSanitizer job runs this binary: the pooled pumps below are
// the cross-thread session-hopping pattern the SerialGuard's
// acquire/release pair must keep data-race-free.

#include "serve/session_manager.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "common/serial_guard.hpp"
#include "sim/maze.hpp"

namespace tofmcl::serve {
namespace {

map::OccupancyGrid maze_grid() {
  sim::EvaluationEnvironment env;
  env.world = sim::drone_maze();
  env.maze_regions.push_back({{0.0, 0.0}, {4.0, 4.0}});
  return sim::rasterize_environment(env, 0.05, 0.0);
}

core::LocalizerConfig base_config(std::size_t particles = 128,
                                  std::uint64_t seed = 7) {
  core::LocalizerConfig cfg;
  cfg.precision = core::Precision::kFp32Qm;
  cfg.mcl.num_particles = particles;
  cfg.mcl.seed = seed;
  return cfg;
}

sensor::TofFrame valid_frame(double t, float distance = 1.0f) {
  sensor::TofFrame frame;
  frame.timestamp_s = t;
  frame.sensor_id = 0;
  frame.mode = sensor::ZoneMode::k8x8;
  frame.zones.assign(64, {distance, sensor::ZoneStatus::kValid});
  return frame;
}

/// A deterministic synthetic input stream: the drone advances 5 cm per
/// tick (crossing the 10 cm correction gate every other frame batch) and
/// senses a wall-distance frame on every tick.
std::vector<SessionInput> synthetic_stream(std::size_t ticks) {
  std::vector<SessionInput> stream;
  for (std::size_t i = 0; i < ticks; ++i) {
    SessionInput input;
    input.t = 0.1 * static_cast<double>(i);
    input.odometry = Pose2{0.05 * static_cast<double>(i), 0.0, 0.0};
    input.frames.push_back(valid_frame(input.t));
    stream.push_back(std::move(input));
  }
  return stream;
}

// ---------------------------------------------------------------------------
// MapCatalog: the keyed once-map (duplicate-construction bugfix).
// ---------------------------------------------------------------------------

TEST(MapCatalog, ConcurrentRequestsBuildOnceAndShareThePointer) {
  const auto grid = maze_grid();
  const auto cfg = base_config();
  MapCatalog catalog;
  std::atomic<int> builds{0};
  const auto builder = [&]() -> MapCatalog::Resources {
    ++builds;
    const core::Precision p = core::Precision::kFp32Qm;
    return core::build_map_resources(grid, cfg.mcl, {&p, 1});
  };

  constexpr int kThreads = 8;
  std::vector<MapCatalog::Resources> got(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [&, i] { got[i] = catalog.get_or_build("maze", builder); });
    }
    for (auto& t : threads) t.join();
  }

  EXPECT_EQ(builds.load(), 1);
  ASSERT_NE(got[0], nullptr);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(got[i].get(), got[0].get()) << "session " << i;
  }
  EXPECT_EQ(catalog.size(), 1u);
  // A later request reuses the entry (no rebuild).
  EXPECT_EQ(catalog.get_or_build("maze", builder).get(), got[0].get());
  EXPECT_EQ(builds.load(), 1);
}

TEST(MapCatalog, FailedBuildPropagatesAndRetries) {
  MapCatalog catalog;
  int attempts = 0;
  const auto flaky = [&]() -> MapCatalog::Resources {
    if (++attempts == 1) throw IoError("map file unreadable");
    return std::make_shared<const core::MapResources>();
  };
  EXPECT_THROW(catalog.get_or_build("flaky", flaky), IoError);
  // The failed entry was forgotten: the next request retries and wins.
  EXPECT_NE(catalog.get_or_build("flaky", flaky), nullptr);
  EXPECT_EQ(attempts, 2);
}

// ---------------------------------------------------------------------------
// Session admission control.
// ---------------------------------------------------------------------------

TEST(Session, DropOldestAdmissionControlIsExact) {
  const auto grid = maze_grid();
  const core::Precision p = core::Precision::kFp32Qm;
  const auto cfg = base_config();
  auto maps = core::build_map_resources(grid, cfg.mcl, {&p, 1});
  SessionOptions opts;
  opts.config = cfg;
  opts.queue_capacity = 4;
  opts.start = StartPose{Pose2{0.5, 0.5, 0.0}, 0.1, 0.05};
  Session session(0, "maze", maps, opts);

  const auto stream = synthetic_stream(10);
  // Capacity 4, half-full threshold 2: the first push is accepted with
  // room, pushes 2..4 report saturation, pushes 5..10 evict the oldest.
  EXPECT_EQ(session.push(stream[0]), Admission::kAccepted);
  EXPECT_EQ(session.push(stream[1]), Admission::kSaturated);
  EXPECT_EQ(session.push(stream[2]), Admission::kSaturated);
  EXPECT_EQ(session.push(stream[3]), Admission::kSaturated);
  for (std::size_t i = 4; i < 10; ++i) {
    EXPECT_EQ(session.push(stream[i]), Admission::kDroppedOldest) << i;
  }
  EXPECT_EQ(session.dropped_inputs(), 6u);

  // Exactly the newest `capacity` inputs survive, in arrival order.
  session.process_pending();
  EXPECT_EQ(session.processed_inputs(), 4u);
  EXPECT_FALSE(session.has_pending());
}

TEST(Session, ProcessingDrainsAndCorrects) {
  const auto grid = maze_grid();
  const core::Precision p = core::Precision::kFp32Qm;
  const auto cfg = base_config();
  auto maps = core::build_map_resources(grid, cfg.mcl, {&p, 1});
  SessionOptions opts;
  opts.config = cfg;
  opts.queue_capacity = 64;
  opts.start = StartPose{Pose2{0.5, 0.5, 0.0}, 0.1, 0.05};
  Session session(0, "maze", maps, opts);

  for (const auto& input : synthetic_stream(12)) {
    ASSERT_NE(session.push(input), Admission::kDroppedOldest);
  }
  const std::size_t corrected = session.process_pending();
  EXPECT_GT(corrected, 0u);
  EXPECT_EQ(session.corrections(), corrected);
  EXPECT_EQ(session.trace().size(), corrected);
  EXPECT_EQ(session.latency().count(), corrected);
  EXPECT_EQ(session.processed_inputs(), 12u);
  // Timing hooks: every correction recorded a positive wall time, and the
  // localizer's running total covers them.
  for (const double s : session.latency().samples()) EXPECT_GT(s, 0.0);
  EXPECT_GT(session.localizer().last_correction_seconds(), 0.0);
  EXPECT_GE(session.localizer().total_correction_seconds(),
            session.localizer().last_correction_seconds());
}

// ---------------------------------------------------------------------------
// SerialGuard: the asserted single-threaded contract (on_frames
// accounting race bugfix).
// ---------------------------------------------------------------------------

TEST(SerialGuard, ConcurrentEntryThrowsLoudly) {
  SerialGuard guard;
  SerialGuard::Scope outer(guard);
  EXPECT_THROW(SerialGuard::Scope inner(guard), PreconditionError);
  // The outer scope still releases cleanly after the inner throw...
}

TEST(SerialGuard, ReleasesAfterScopeExit) {
  SerialGuard guard;
  { SerialGuard::Scope scope(guard); }
  // ...so a fresh entry succeeds.
  SerialGuard::Scope again(guard);
}

TEST(SerialGuard, SerializedCrossThreadCallsAreClean) {
  // The serving pattern: consecutive (externally serialized) calls land
  // on different threads. Must neither throw nor race — the TSan CI job
  // checks the latter via the guard's acquire/release pair.
  const auto grid = maze_grid();
  core::SerialExecutor exec;
  core::Localizer loc(grid, base_config(), exec);
  loc.start_at(Pose2{0.5, 0.5, 0.0}, 0.1, 0.05);
  for (int hop = 0; hop < 8; ++hop) {
    std::thread worker([&loc, hop] {
      loc.on_odometry(Pose2{0.05 * hop, 0.0, 0.0});
      const auto frame = valid_frame(0.1 * hop);
      loc.on_frames({&frame, 1});
    });
    worker.join();  // The join is the owner's serialization hand-off.
  }
  EXPECT_GT(loc.updates_run(), 0u);
}

// ---------------------------------------------------------------------------
// SessionManager: multiplexing, aggregation, determinism.
// ---------------------------------------------------------------------------

/// Builds a manager with `sessions` sessions on one maze map and replays
/// `ticks` synthetic inputs, pumping every `pump_every` ticks.
std::unique_ptr<SessionManager> run_maze_service(std::size_t threads,
                                                 std::size_t sessions,
                                                 std::size_t ticks,
                                                 std::size_t pump_every) {
  auto mgr = std::make_unique<SessionManager>(ServeOptions{threads});
  mgr->define_map("maze", maze_grid(), base_config().mcl,
                  {core::Precision::kFp32Qm});
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionOptions opts;
    opts.config = base_config(128, 100 + i);  // per-session filter seed
    opts.queue_capacity = 2 * pump_every;     // paced: nothing dropped
    opts.start = StartPose{Pose2{0.5, 0.5, 0.0}, 0.1, 0.05};
    mgr->open_session("maze", opts);
  }
  const auto stream = synthetic_stream(ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    for (std::size_t i = 0; i < sessions; ++i) {
      EXPECT_NE(mgr->push(i, stream[t]), Admission::kDroppedOldest);
    }
    if ((t + 1) % pump_every == 0 || t + 1 == ticks) mgr->pump();
  }
  return mgr;
}

TEST(SessionManager, SerialAndPooledPumpsYieldBitIdenticalTraces) {
  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kTicks = 16;
  // Different pump cadences on purpose: batching must not matter either.
  const auto serial = run_maze_service(0, kSessions, kTicks, 4);
  const auto pooled = run_maze_service(4, kSessions, kTicks, 3);

  std::size_t corrections = 0;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto& ts = serial->session(i).trace();
    const auto& tp = pooled->session(i).trace();
    ASSERT_EQ(ts.size(), tp.size()) << "session " << i;
    corrections += ts.size();
    for (std::size_t j = 0; j < ts.size(); ++j) {
      // Bitwise equality: EXPECT_EQ on doubles is exact.
      EXPECT_EQ(ts[j].t, tp[j].t);
      EXPECT_EQ(ts[j].pose.position.x, tp[j].pose.position.x);
      EXPECT_EQ(ts[j].pose.position.y, tp[j].pose.position.y);
      EXPECT_EQ(ts[j].pose.yaw, tp[j].pose.yaw);
    }
  }
  EXPECT_GT(corrections, 0u) << "gate is vacuous without corrections";

  // Distinct seeds must give distinct traces (the per-session RNG is
  // real, not copy-pasted state).
  ASSERT_GT(serial->session(0).trace().size(), 0u);
  ASSERT_GT(serial->session(1).trace().size(), 0u);
  EXPECT_NE(serial->session(0).trace().front().pose.position.x,
            serial->session(1).trace().front().pose.position.x);

  // Cross-process determinism hook: dump the pooled traces in hexfloat
  // for CI to diff between two independent test processes.
  if (const char* path = std::getenv("TOFMCL_SERVE_TRACE")) {
    std::ofstream trace(path);
    ASSERT_TRUE(trace) << "cannot open " << path;
    trace << std::hexfloat;
    for (std::size_t i = 0; i < kSessions; ++i) {
      for (const CorrectionRecord& r : pooled->session(i).trace()) {
        trace << i << ' ' << r.t << ' ' << r.pose.position.x << ' '
              << r.pose.position.y << ' ' << r.pose.yaw << '\n';
      }
    }
  }
}

TEST(SessionManager, ReportAggregatesPerMapAndGlobally) {
  SessionManager mgr(ServeOptions{2});
  mgr.define_map("maze_a", maze_grid(), base_config().mcl,
                 {core::Precision::kFp32Qm});
  mgr.define_map("maze_b", maze_grid(), base_config().mcl,
                 {core::Precision::kFp32Qm});
  SessionOptions opts;
  opts.config = base_config();
  opts.queue_capacity = 32;
  opts.start = StartPose{Pose2{0.5, 0.5, 0.0}, 0.1, 0.05};
  const std::size_t a0 = mgr.open_session("maze_a", opts);
  const std::size_t a1 = mgr.open_session("maze_a", opts);
  const std::size_t b0 = mgr.open_session("maze_b", opts);

  const auto stream = synthetic_stream(12);
  for (const auto& input : stream) {
    mgr.push(a0, input);
    mgr.push(a1, input);
    mgr.push(b0, input);
  }
  const std::size_t corrected = mgr.pump();
  EXPECT_GT(corrected, 0u);

  const ServeReport rep = mgr.report();
  EXPECT_EQ(rep.sessions, 3u);
  EXPECT_EQ(rep.processed_inputs, 36u);
  EXPECT_EQ(rep.corrections, corrected);
  EXPECT_EQ(rep.latency.count, corrected);
  EXPECT_GT(rep.pump_seconds, 0.0);
  EXPECT_GT(rep.corrections_per_second, 0.0);

  ASSERT_EQ(rep.per_map.size(), 2u);
  EXPECT_EQ(rep.per_map[0].map, "maze_a");
  EXPECT_EQ(rep.per_map[0].sessions, 2u);
  EXPECT_EQ(rep.per_map[1].map, "maze_b");
  EXPECT_EQ(rep.per_map[1].sessions, 1u);
  EXPECT_EQ(rep.per_map[0].corrections + rep.per_map[1].corrections,
            rep.corrections);
  EXPECT_EQ(rep.per_map[0].latency.count + rep.per_map[1].latency.count,
            rep.latency.count);
  EXPECT_EQ(rep.dropped_inputs, 0u);
}

TEST(SessionManager, ConcurrentOpensOnOneMapShareOneBuild) {
  // Manager-level once-map: sessions opened from many threads at once on
  // a grid-defined map must all come up (the catalog serializes the
  // single build) and then serve.
  SessionManager mgr(ServeOptions{2});
  mgr.define_map("maze", maze_grid(), base_config().mcl,
                 {core::Precision::kFp32Qm});
  constexpr std::size_t kOpeners = 6;
  {
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kOpeners; ++i) {
      threads.emplace_back([&mgr, i] {
        SessionOptions opts;
        opts.config = base_config(128, 200 + i);
        opts.start = StartPose{Pose2{0.5, 0.5, 0.0}, 0.1, 0.05};
        mgr.open_session("maze", opts);
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(mgr.num_sessions(), kOpeners);
  const auto stream = synthetic_stream(6);
  for (const auto& input : stream) {
    for (std::size_t i = 0; i < kOpeners; ++i) mgr.push(i, input);
  }
  EXPECT_GT(mgr.pump(), 0u);
}

TEST(SessionManager, RejectsUnknownKeys) {
  SessionManager mgr(ServeOptions{0});
  SessionOptions opts;
  opts.config = base_config();
  EXPECT_THROW(mgr.open_session("nope", opts), PreconditionError);
  EXPECT_THROW(mgr.push(0, SessionInput{}), PreconditionError);
  mgr.define_map("maze", maze_grid(), base_config().mcl,
                 {core::Precision::kFp32Qm});
  EXPECT_THROW(mgr.define_map("maze", maze_grid(), base_config().mcl,
                              {core::Precision::kFp32Qm}),
               PreconditionError);
}

TEST(SessionManager, HasMapTracksDefinitions) {
  SessionManager mgr(ServeOptions{0});
  EXPECT_FALSE(mgr.has_map("maze"));
  mgr.define_map("maze", maze_grid(), base_config().mcl,
                 {core::Precision::kFp32Qm});
  EXPECT_TRUE(mgr.has_map("maze"));
  EXPECT_FALSE(mgr.has_map("maze2"));
  // The check-before-define idiom replay loaders use (several sources
  // sharing one world key): second define is skipped, not thrown.
  if (!mgr.has_map("maze")) {
    mgr.define_map("maze", maze_grid(), base_config().mcl,
                   {core::Precision::kFp32Qm});
  }
  SessionOptions opts;
  opts.config = base_config();
  EXPECT_EQ(mgr.open_session("maze", opts), 0u);
}

}  // namespace
}  // namespace tofmcl::serve
