// Serving-layer tests: the keyed once-map (single construction + pointer
// identity under concurrent requests), bounded admission control with
// drop-oldest semantics and backpressure signals, the Localizer's
// asserted single-threaded contract and correction-timing hooks, and the
// serial-vs-pooled determinism gate (bit-identical per-session correction
// traces whatever the pump schedule — set TOFMCL_SERVE_TRACE to dump a
// hexfloat trace for cross-process CI diffs).
//
// The CI ThreadSanitizer job runs this binary: the pooled pumps below are
// the cross-thread session-hopping pattern the SerialGuard's
// acquire/release pair must keep data-race-free.

#include "serve/session_manager.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/serial_guard.hpp"
#include "serve/snapshot_store.hpp"
#include "sim/maze.hpp"

namespace tofmcl::serve {
namespace {

ServeOptions serve_options(std::size_t threads, std::size_t shards = 1,
                           std::size_t pump_batch = 16,
                           std::shared_ptr<SnapshotStore> store = nullptr) {
  ServeOptions opts;
  opts.threads = threads;
  opts.shards = shards;
  opts.pump_batch = pump_batch;
  opts.store = std::move(store);
  return opts;
}

/// A fresh, empty directory under the test temp root (stale files from a
/// previous run would pollute the FileSnapshotStore's adoption scan).
std::filesystem::path fresh_store_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

map::OccupancyGrid maze_grid() {
  sim::EvaluationEnvironment env;
  env.world = sim::drone_maze();
  env.maze_regions.push_back({{0.0, 0.0}, {4.0, 4.0}});
  return sim::rasterize_environment(env, 0.05, 0.0);
}

core::LocalizerConfig base_config(std::size_t particles = 128,
                                  std::uint64_t seed = 7) {
  core::LocalizerConfig cfg;
  cfg.precision = core::Precision::kFp32Qm;
  cfg.mcl.num_particles = particles;
  cfg.mcl.seed = seed;
  return cfg;
}

sensor::TofFrame valid_frame(double t, float distance = 1.0f) {
  sensor::TofFrame frame;
  frame.timestamp_s = t;
  frame.sensor_id = 0;
  frame.mode = sensor::ZoneMode::k8x8;
  frame.zones.assign(64, {distance, sensor::ZoneStatus::kValid});
  return frame;
}

/// A deterministic synthetic input stream: the drone advances 5 cm per
/// tick (crossing the 10 cm correction gate every other frame batch) and
/// senses a wall-distance frame on every tick.
std::vector<SessionInput> synthetic_stream(std::size_t ticks) {
  std::vector<SessionInput> stream;
  for (std::size_t i = 0; i < ticks; ++i) {
    SessionInput input;
    input.t = 0.1 * static_cast<double>(i);
    input.odometry = Pose2{0.05 * static_cast<double>(i), 0.0, 0.0};
    input.frames.push_back(valid_frame(input.t));
    stream.push_back(std::move(input));
  }
  return stream;
}

// ---------------------------------------------------------------------------
// MapCatalog: the keyed once-map (duplicate-construction bugfix).
// ---------------------------------------------------------------------------

TEST(MapCatalog, ConcurrentRequestsBuildOnceAndShareThePointer) {
  const auto grid = maze_grid();
  const auto cfg = base_config();
  MapCatalog catalog;
  std::atomic<int> builds{0};
  const auto builder = [&]() -> MapCatalog::Resources {
    ++builds;
    const core::Precision p = core::Precision::kFp32Qm;
    return core::build_map_resources(grid, cfg.mcl, {&p, 1});
  };

  constexpr int kThreads = 8;
  std::vector<MapCatalog::Resources> got(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [&, i] { got[i] = catalog.get_or_build("maze", builder); });
    }
    for (auto& t : threads) t.join();
  }

  EXPECT_EQ(builds.load(), 1);
  ASSERT_NE(got[0], nullptr);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(got[i].get(), got[0].get()) << "session " << i;
  }
  EXPECT_EQ(catalog.size(), 1u);
  // A later request reuses the entry (no rebuild).
  EXPECT_EQ(catalog.get_or_build("maze", builder).get(), got[0].get());
  EXPECT_EQ(builds.load(), 1);
}

TEST(MapCatalog, FailedBuildPropagatesAndRetries) {
  MapCatalog catalog;
  int attempts = 0;
  const auto flaky = [&]() -> MapCatalog::Resources {
    if (++attempts == 1) throw IoError("map file unreadable");
    return std::make_shared<const core::MapResources>();
  };
  EXPECT_THROW(catalog.get_or_build("flaky", flaky), IoError);
  // The failed entry was forgotten: the next request retries and wins.
  EXPECT_NE(catalog.get_or_build("flaky", flaky), nullptr);
  EXPECT_EQ(attempts, 2);
}

// ---------------------------------------------------------------------------
// Session admission control.
// ---------------------------------------------------------------------------

TEST(Session, DropOldestAdmissionControlIsExact) {
  const auto grid = maze_grid();
  const core::Precision p = core::Precision::kFp32Qm;
  const auto cfg = base_config();
  auto maps = core::build_map_resources(grid, cfg.mcl, {&p, 1});
  auto ctx = core::build_scoring_context(maps, cfg);
  SessionOptions opts;
  opts.config = cfg;
  opts.queue_capacity = 4;
  opts.start = StartPose{Pose2{0.5, 0.5, 0.0}, 0.1, 0.05};
  Session session(0, "maze", ctx, opts);

  const auto stream = synthetic_stream(10);
  // Capacity 4, half-full threshold 2: the first push is accepted with
  // room, pushes 2..4 report saturation, pushes 5..10 evict the oldest.
  EXPECT_EQ(session.push(stream[0]), Admission::kAccepted);
  EXPECT_EQ(session.push(stream[1]), Admission::kSaturated);
  EXPECT_EQ(session.push(stream[2]), Admission::kSaturated);
  EXPECT_EQ(session.push(stream[3]), Admission::kSaturated);
  for (std::size_t i = 4; i < 10; ++i) {
    EXPECT_EQ(session.push(stream[i]), Admission::kDroppedOldest) << i;
  }
  EXPECT_EQ(session.dropped_inputs(), 6u);

  // Exactly the newest `capacity` inputs survive, in arrival order.
  session.process_pending();
  EXPECT_EQ(session.processed_inputs(), 4u);
  EXPECT_FALSE(session.has_pending());
}

TEST(Session, ProcessingDrainsAndCorrects) {
  const auto grid = maze_grid();
  const core::Precision p = core::Precision::kFp32Qm;
  const auto cfg = base_config();
  auto maps = core::build_map_resources(grid, cfg.mcl, {&p, 1});
  auto ctx = core::build_scoring_context(maps, cfg);
  SessionOptions opts;
  opts.config = cfg;
  opts.queue_capacity = 64;
  opts.start = StartPose{Pose2{0.5, 0.5, 0.0}, 0.1, 0.05};
  Session session(0, "maze", ctx, opts);

  for (const auto& input : synthetic_stream(12)) {
    ASSERT_NE(session.push(input), Admission::kDroppedOldest);
  }
  const std::size_t corrected = session.process_pending();
  EXPECT_GT(corrected, 0u);
  EXPECT_EQ(session.corrections(), corrected);
  EXPECT_EQ(session.trace().size(), corrected);
  EXPECT_EQ(session.latency().count(), corrected);
  EXPECT_EQ(session.processed_inputs(), 12u);
  // Timing hooks: every correction recorded a positive wall time, and the
  // localizer's running total covers them.
  for (const double s : session.latency().samples()) EXPECT_GT(s, 0.0);
  EXPECT_GT(session.localizer().last_correction_seconds(), 0.0);
  EXPECT_GE(session.localizer().total_correction_seconds(),
            session.localizer().last_correction_seconds());
}

// ---------------------------------------------------------------------------
// SerialGuard: the asserted single-threaded contract (on_frames
// accounting race bugfix).
// ---------------------------------------------------------------------------

TEST(SerialGuard, ConcurrentEntryThrowsLoudly) {
  SerialGuard guard;
  SerialGuard::Scope outer(guard);
  EXPECT_THROW(SerialGuard::Scope inner(guard), PreconditionError);
  // The outer scope still releases cleanly after the inner throw...
}

TEST(SerialGuard, ReleasesAfterScopeExit) {
  SerialGuard guard;
  { SerialGuard::Scope scope(guard); }
  // ...so a fresh entry succeeds.
  SerialGuard::Scope again(guard);
}

TEST(SerialGuard, SerializedCrossThreadCallsAreClean) {
  // The serving pattern: consecutive (externally serialized) calls land
  // on different threads. Must neither throw nor race — the TSan CI job
  // checks the latter via the guard's acquire/release pair.
  const auto grid = maze_grid();
  core::SerialExecutor exec;
  core::Localizer loc(grid, base_config(), exec);
  loc.start_at(Pose2{0.5, 0.5, 0.0}, 0.1, 0.05);
  for (int hop = 0; hop < 8; ++hop) {
    std::thread worker([&loc, hop] {
      loc.on_odometry(Pose2{0.05 * hop, 0.0, 0.0});
      const auto frame = valid_frame(0.1 * hop);
      loc.on_frames({&frame, 1});
    });
    worker.join();  // The join is the owner's serialization hand-off.
  }
  EXPECT_GT(loc.updates_run(), 0u);
}

// ---------------------------------------------------------------------------
// SessionManager: multiplexing, aggregation, determinism.
// ---------------------------------------------------------------------------

/// Builds a manager with `sessions` sessions on one maze map and replays
/// `ticks` synthetic inputs, pumping every `pump_every` ticks.
std::unique_ptr<SessionManager> run_maze_service(std::size_t threads,
                                                 std::size_t sessions,
                                                 std::size_t ticks,
                                                 std::size_t pump_every,
                                                 std::size_t shards = 1,
                                                 std::size_t pump_batch = 16) {
  auto mgr = std::make_unique<SessionManager>(
      serve_options(threads, shards, pump_batch));
  mgr->define_map("maze", maze_grid(), base_config().mcl,
                  {core::Precision::kFp32Qm});
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionOptions opts;
    opts.config = base_config(128, 100 + i);  // per-session filter seed
    opts.queue_capacity = 2 * pump_every;     // paced: nothing dropped
    opts.start = StartPose{Pose2{0.5, 0.5, 0.0}, 0.1, 0.05};
    mgr->open_session("maze", opts);
  }
  const auto stream = synthetic_stream(ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    for (std::size_t i = 0; i < sessions; ++i) {
      EXPECT_NE(mgr->push(i, stream[t]), Admission::kDroppedOldest);
    }
    if ((t + 1) % pump_every == 0 || t + 1 == ticks) mgr->pump();
  }
  return mgr;
}

TEST(SessionManager, SerialAndPooledPumpsYieldBitIdenticalTraces) {
  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kTicks = 16;
  // Different pump cadences on purpose: batching must not matter either.
  const auto serial = run_maze_service(0, kSessions, kTicks, 4);
  const auto pooled = run_maze_service(4, kSessions, kTicks, 3);

  std::size_t corrections = 0;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto& ts = serial->session(i).trace();
    const auto& tp = pooled->session(i).trace();
    ASSERT_EQ(ts.size(), tp.size()) << "session " << i;
    corrections += ts.size();
    for (std::size_t j = 0; j < ts.size(); ++j) {
      // Bitwise equality: EXPECT_EQ on doubles is exact.
      EXPECT_EQ(ts[j].t, tp[j].t);
      EXPECT_EQ(ts[j].pose.position.x, tp[j].pose.position.x);
      EXPECT_EQ(ts[j].pose.position.y, tp[j].pose.position.y);
      EXPECT_EQ(ts[j].pose.yaw, tp[j].pose.yaw);
    }
  }
  EXPECT_GT(corrections, 0u) << "gate is vacuous without corrections";

  // Distinct seeds must give distinct traces (the per-session RNG is
  // real, not copy-pasted state).
  ASSERT_GT(serial->session(0).trace().size(), 0u);
  ASSERT_GT(serial->session(1).trace().size(), 0u);
  EXPECT_NE(serial->session(0).trace().front().pose.position.x,
            serial->session(1).trace().front().pose.position.x);

  // Cross-process determinism hook: dump the pooled traces in hexfloat
  // for CI to diff between two independent test processes.
  if (const char* path = std::getenv("TOFMCL_SERVE_TRACE")) {
    std::ofstream trace(path);
    ASSERT_TRUE(trace) << "cannot open " << path;
    trace << std::hexfloat;
    for (std::size_t i = 0; i < kSessions; ++i) {
      for (const CorrectionRecord& r : pooled->session(i).trace()) {
        trace << i << ' ' << r.t << ' ' << r.pose.position.x << ' '
              << r.pose.position.y << ' ' << r.pose.yaw << '\n';
      }
    }
  }
}

TEST(SessionManager, ReportAggregatesPerMapAndGlobally) {
  SessionManager mgr(serve_options(2));
  mgr.define_map("maze_a", maze_grid(), base_config().mcl,
                 {core::Precision::kFp32Qm});
  mgr.define_map("maze_b", maze_grid(), base_config().mcl,
                 {core::Precision::kFp32Qm});
  SessionOptions opts;
  opts.config = base_config();
  opts.queue_capacity = 32;
  opts.start = StartPose{Pose2{0.5, 0.5, 0.0}, 0.1, 0.05};
  const std::size_t a0 = mgr.open_session("maze_a", opts);
  const std::size_t a1 = mgr.open_session("maze_a", opts);
  const std::size_t b0 = mgr.open_session("maze_b", opts);

  const auto stream = synthetic_stream(12);
  for (const auto& input : stream) {
    mgr.push(a0, input);
    mgr.push(a1, input);
    mgr.push(b0, input);
  }
  const std::size_t corrected = mgr.pump();
  EXPECT_GT(corrected, 0u);

  const ServeReport rep = mgr.report();
  EXPECT_EQ(rep.sessions, 3u);
  EXPECT_EQ(rep.processed_inputs, 36u);
  EXPECT_EQ(rep.corrections, corrected);
  EXPECT_EQ(rep.latency.count, corrected);
  EXPECT_GT(rep.pump_seconds, 0.0);
  EXPECT_GT(rep.corrections_per_second, 0.0);

  ASSERT_EQ(rep.per_map.size(), 2u);
  EXPECT_EQ(rep.per_map[0].map, "maze_a");
  EXPECT_EQ(rep.per_map[0].sessions, 2u);
  EXPECT_EQ(rep.per_map[1].map, "maze_b");
  EXPECT_EQ(rep.per_map[1].sessions, 1u);
  EXPECT_EQ(rep.per_map[0].corrections + rep.per_map[1].corrections,
            rep.corrections);
  EXPECT_EQ(rep.per_map[0].latency.count + rep.per_map[1].latency.count,
            rep.latency.count);
  EXPECT_EQ(rep.dropped_inputs, 0u);
}

TEST(SessionManager, ConcurrentOpensOnOneMapShareOneBuild) {
  // Manager-level once-map: sessions opened from many threads at once on
  // a grid-defined map must all come up (the catalog serializes the
  // single build) and then serve.
  SessionManager mgr(serve_options(2));
  mgr.define_map("maze", maze_grid(), base_config().mcl,
                 {core::Precision::kFp32Qm});
  constexpr std::size_t kOpeners = 6;
  {
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kOpeners; ++i) {
      threads.emplace_back([&mgr, i] {
        SessionOptions opts;
        opts.config = base_config(128, 200 + i);
        opts.start = StartPose{Pose2{0.5, 0.5, 0.0}, 0.1, 0.05};
        mgr.open_session("maze", opts);
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(mgr.num_sessions(), kOpeners);
  const auto stream = synthetic_stream(6);
  for (const auto& input : stream) {
    for (std::size_t i = 0; i < kOpeners; ++i) mgr.push(i, input);
  }
  EXPECT_GT(mgr.pump(), 0u);
}

TEST(SessionManager, RejectsUnknownKeys) {
  SessionManager mgr(serve_options(0));
  SessionOptions opts;
  opts.config = base_config();
  EXPECT_THROW(mgr.open_session("nope", opts), PreconditionError);
  EXPECT_THROW(mgr.push(0, SessionInput{}), PreconditionError);
  mgr.define_map("maze", maze_grid(), base_config().mcl,
                 {core::Precision::kFp32Qm});
  EXPECT_THROW(mgr.define_map("maze", maze_grid(), base_config().mcl,
                              {core::Precision::kFp32Qm}),
               PreconditionError);
}

TEST(SessionManager, HasMapTracksDefinitions) {
  SessionManager mgr(serve_options(0));
  EXPECT_FALSE(mgr.has_map("maze"));
  mgr.define_map("maze", maze_grid(), base_config().mcl,
                 {core::Precision::kFp32Qm});
  EXPECT_TRUE(mgr.has_map("maze"));
  EXPECT_FALSE(mgr.has_map("maze2"));
  // The check-before-define idiom replay loaders use (several sources
  // sharing one world key): second define is skipped, not thrown.
  if (!mgr.has_map("maze")) {
    mgr.define_map("maze", maze_grid(), base_config().mcl,
                   {core::Precision::kFp32Qm});
  }
  SessionOptions opts;
  opts.config = base_config();
  EXPECT_EQ(mgr.open_session("maze", opts), 0u);
}

// ---------------------------------------------------------------------------
// LatencyRecorder: tail quantiles at low sample counts (clamp bugfix).
// ---------------------------------------------------------------------------

TEST(LatencyRecorder, LowSampleTailsClampToMaxAndAreFlagged) {
  LatencyRecorder rec;
  for (int i = 1; i <= 10; ++i) rec.record(1e-3 * i);
  const LatencySummary s = rec.summarize();
  // 10 samples cannot resolve p99/p999: both clamp to max, flagged.
  EXPECT_TRUE(s.low_sample);
  EXPECT_EQ(s.p99, s.max);
  EXPECT_EQ(s.p999, s.max);
  EXPECT_EQ(s.max, 1e-2);

  LatencyRecorder big;
  for (int i = 1; i <= 200; ++i) big.record(1e-4 * i);
  const LatencySummary b = big.summarize();
  // 200 samples resolve p99 (interpolated below max) but not p999.
  EXPECT_TRUE(b.low_sample);
  EXPECT_LT(b.p99, b.max);
  EXPECT_EQ(b.p999, b.max);
}

// ---------------------------------------------------------------------------
// Session snapshot/restore and the manager's eviction policy.
// ---------------------------------------------------------------------------

/// Replays `stream[from, to)` into every session, pumping every
/// `pump_every` ticks (and at the end).
void replay_window(SessionManager& mgr, const std::vector<SessionInput>& stream,
                   std::size_t sessions, std::size_t from, std::size_t to,
                   std::size_t pump_every) {
  for (std::size_t t = from; t < to; ++t) {
    for (std::size_t i = 0; i < sessions; ++i) {
      ASSERT_NE(mgr.push(i, stream[t]), Admission::kDroppedOldest);
    }
    if ((t + 1 - from) % pump_every == 0 || t + 1 == to) mgr.pump();
  }
}

std::unique_ptr<SessionManager> make_maze_manager(
    std::size_t threads, std::size_t sessions, std::size_t shards = 1,
    std::shared_ptr<SnapshotStore> store = nullptr) {
  auto mgr = std::make_unique<SessionManager>(
      serve_options(threads, shards, /*pump_batch=*/16, std::move(store)));
  mgr->define_map("maze", maze_grid(), base_config().mcl,
                  {core::Precision::kFp32Qm});
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionOptions opts;
    opts.config = base_config(128, 100 + i);
    opts.queue_capacity = 16;
    opts.start = StartPose{Pose2{0.5, 0.5, 0.0}, 0.1, 0.05};
    mgr->open_session("maze", opts);
  }
  return mgr;
}

void expect_bitwise_equal_traces(const SessionManager& a,
                                 const SessionManager& b,
                                 std::size_t sessions) {
  std::size_t corrections = 0;
  for (std::size_t i = 0; i < sessions; ++i) {
    const auto& ta = a.session(i).trace();
    const auto& tb = b.session(i).trace();
    ASSERT_EQ(ta.size(), tb.size()) << "session " << i;
    corrections += ta.size();
    for (std::size_t j = 0; j < ta.size(); ++j) {
      EXPECT_EQ(ta[j].t, tb[j].t);
      EXPECT_EQ(ta[j].pose.position.x, tb[j].pose.position.x);
      EXPECT_EQ(ta[j].pose.position.y, tb[j].pose.position.y);
      EXPECT_EQ(ta[j].pose.yaw, tb[j].pose.yaw);
    }
  }
  EXPECT_GT(corrections, 0u) << "gate is vacuous without corrections";
}

/// The tentpole gate: running straight through vs snapshotting every
/// session mid-flight, evicting it (Session destroyed, blocks back in the
/// arena), and restoring transparently on the next push must produce
/// byte-identical correction traces — under the serial AND pooled pumps.
TEST(SessionSnapshot, EvictRestoreMidFlightIsBitIdentical) {
  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kTicks = 16;
  const auto stream = synthetic_stream(kTicks);

  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    const auto straight = make_maze_manager(threads, kSessions);
    replay_window(*straight, stream, kSessions, 0, kTicks, 4);

    const auto interrupted = make_maze_manager(threads, kSessions);
    replay_window(*interrupted, stream, kSessions, 0, kTicks / 2, 4);
    for (std::size_t i = 0; i < kSessions; ++i) {
      interrupted->evict_session(i);
      EXPECT_FALSE(interrupted->session_live(i));
    }
    EXPECT_EQ(interrupted->live_sessions(), 0u);
    EXPECT_EQ(interrupted->evicted_sessions(), kSessions);
    // The first push after eviction restores from the stashed blob.
    replay_window(*interrupted, stream, kSessions, kTicks / 2, kTicks, 4);
    EXPECT_EQ(interrupted->live_sessions(), kSessions);

    expect_bitwise_equal_traces(*straight, *interrupted, kSessions);
  }
}

/// restore_session() rewinds a LIVE session to an earlier snapshot:
/// replaying the same window twice from one snapshot gives the same
/// trace both times.
TEST(SessionSnapshot, ExplicitRestoreRewindsBitIdentically) {
  constexpr std::size_t kSessions = 2;
  constexpr std::size_t kTicks = 12;
  const auto stream = synthetic_stream(kTicks);
  const auto mgr = make_maze_manager(0, kSessions);
  replay_window(*mgr, stream, kSessions, 0, kTicks / 2, 3);

  std::vector<std::vector<std::byte>> blobs;
  for (std::size_t i = 0; i < kSessions; ++i) {
    blobs.push_back(mgr->snapshot_session(i));
    EXPECT_FALSE(blobs.back().empty());
  }
  replay_window(*mgr, stream, kSessions, kTicks / 2, kTicks, 3);
  std::vector<std::vector<CorrectionRecord>> first;
  for (std::size_t i = 0; i < kSessions; ++i) {
    first.push_back(mgr->session(i).trace());
  }

  for (std::size_t i = 0; i < kSessions; ++i) {
    mgr->restore_session(i, blobs[i]);
  }
  replay_window(*mgr, stream, kSessions, kTicks / 2, kTicks, 3);
  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto& again = mgr->session(i).trace();
    ASSERT_EQ(again.size(), first[i].size()) << "session " << i;
    for (std::size_t j = 0; j < again.size(); ++j) {
      EXPECT_EQ(again[j].t, first[i][j].t);
      EXPECT_EQ(again[j].pose.position.x, first[i][j].pose.position.x);
      EXPECT_EQ(again[j].pose.position.y, first[i][j].pose.position.y);
      EXPECT_EQ(again[j].pose.yaw, first[i][j].pose.yaw);
    }
  }
}

TEST(SessionSnapshot, VersionSkewAndTruncationAreRejected) {
  const auto mgr = make_maze_manager(0, 1);
  const auto stream = synthetic_stream(6);
  replay_window(*mgr, stream, 1, 0, 6, 2);

  const std::vector<std::byte> blob = mgr->snapshot_session(0);
  ASSERT_GT(blob.size(), 8u);

  // A snapshot stamped with a future format version must be rejected,
  // not misparsed (the version u16 follows the u32 magic).
  std::vector<std::byte> skewed = blob;
  skewed[4] = static_cast<std::byte>(std::to_integer<unsigned>(skewed[4]) ^ 0x7u);
  EXPECT_THROW(mgr->restore_session(0, skewed), IoError);

  std::vector<std::byte> bad_magic = blob;
  bad_magic[0] = static_cast<std::byte>(0xEE);
  EXPECT_THROW(mgr->restore_session(0, bad_magic), IoError);

  std::vector<std::byte> truncated(blob.begin(),
                                   blob.begin() + blob.size() / 2);
  EXPECT_THROW(mgr->restore_session(0, truncated), IoError);

  // The session survived every rejected restore and still serves.
  EXPECT_TRUE(mgr->session_live(0));
  mgr->push(0, stream[0]);
  mgr->pump();
}

TEST(SessionManager, IdleEvictionReclaimsResidentMemory) {
  constexpr std::size_t kSessions = 3;
  const auto stream = synthetic_stream(8);
  const auto mgr = make_maze_manager(0, kSessions);
  replay_window(*mgr, stream, kSessions, 0, 8, 4);

  const ServeReport before = mgr->report();
  EXPECT_EQ(before.live_sessions, kSessions);
  EXPECT_GT(before.resident_particle_bytes, 0u);

  // Idle deadline: three empty pump generations. The first sweep is too
  // early, the second crosses the threshold for every session.
  mgr->pump();
  mgr->pump();
  EXPECT_EQ(mgr->evict_idle(3), 0u);
  mgr->pump();
  EXPECT_EQ(mgr->evict_idle(3), kSessions);

  const ServeReport evicted = mgr->report();
  EXPECT_EQ(evicted.live_sessions, 0u);
  EXPECT_EQ(evicted.evicted_sessions, kSessions);
  EXPECT_EQ(evicted.resident_particle_bytes, 0u);
  EXPECT_GT(evicted.stashed_snapshot_bytes, 0u);
  // The evicted blocks went back to the arena pool, not the allocator.
  EXPECT_GT(evicted.arena_pooled_bytes, 0u);
  // Stats survive eviction: the report still counts the evicted
  // sessions' corrections and latency samples.
  EXPECT_EQ(evicted.corrections, before.corrections);
  EXPECT_EQ(evicted.latency.count, before.latency.count);

  // Traffic returning to one session restores exactly that session.
  mgr->push(0, stream.front());
  mgr->pump();
  EXPECT_TRUE(mgr->session_live(0));
  EXPECT_FALSE(mgr->session_live(1));
  const ServeReport after = mgr->report();
  EXPECT_EQ(after.live_sessions, 1u);
  EXPECT_EQ(after.evicted_sessions, kSessions - 1);
  // The restored session's pre-eviction history came back with it.
  EXPECT_GE(after.corrections, evicted.corrections);
  EXPECT_GE(after.latency.count, evicted.latency.count);
}

/// Adaptive particle counts through the serving stack: a converged
/// tracking session shrinks its active set (and resident SoA bytes)
/// toward min_particles; fixed-count sessions hold the full budget.
TEST(SessionManager, AdaptiveSessionsShrinkResidentMemory) {
  const auto stream = synthetic_stream(12);
  const auto run = [&](bool adaptive) {
    auto mgr = std::make_unique<SessionManager>(serve_options(0));
    mgr->define_map("maze", maze_grid(), base_config().mcl,
                    {core::Precision::kFp32Qm});
    SessionOptions opts;
    opts.config = base_config(1024, 42);
    opts.config.mcl.adaptive_particles = adaptive;
    opts.config.mcl.min_particles = 128;
    // The synthetic stream's constant wall distance is physically
    // inconsistent with the motion, so the recovery monitor fires and
    // (by design) snaps an adaptive filter back to the full budget.
    // Disable injection and keep odometry noise small to isolate the
    // KLD shrink path — this tests the adaptation machinery, not the
    // observation model's convergence on synthetic frames.
    opts.config.mcl.enable_injection = false;
    opts.config.mcl.sigma_odom_xy = 0.01;
    opts.config.mcl.sigma_odom_yaw = 0.01;
    opts.queue_capacity = 16;
    opts.start = StartPose{Pose2{0.5, 0.5, 0.0}, 0.1, 0.05};
    mgr->open_session("maze", opts);
    for (const auto& input : stream) {
      mgr->push(0, input);
      mgr->pump();
    }
    return mgr;
  };

  const auto fixed = run(false);
  const auto adaptive = run(true);
  const ServeReport rf = fixed->report();
  const ServeReport ra = adaptive->report();
  EXPECT_EQ(rf.active_particles, 1024u);
  // A tight tracking start converges within a few corrections; the KLD
  // bound then sits far below the full budget.
  EXPECT_LT(ra.active_particles, 512u);
  EXPECT_GE(ra.active_particles, 128u);
  EXPECT_LT(ra.resident_particle_bytes, rf.resident_particle_bytes);
  // Both still localize: the last correction landed near ground truth's
  // vicinity (sanity, not an accuracy gate).
  EXPECT_TRUE(adaptive->session(0).localizer().estimate().valid);
}

// ---------------------------------------------------------------------------
// SnapshotStore: pluggable blob parking (in-memory and file-backed).
// ---------------------------------------------------------------------------

TEST(SnapshotStore, FileBackedRoundTripIsBitwiseEqualToInMemory) {
  // One real session blob (the format evictions actually park) plus a
  // synthetic blob covering every byte value.
  const auto mgr = make_maze_manager(0, 1);
  const auto stream = synthetic_stream(6);
  replay_window(*mgr, stream, 1, 0, 6, 2);
  const std::vector<std::byte> session_blob = mgr->snapshot_session(0);
  ASSERT_FALSE(session_blob.empty());
  std::vector<std::byte> pattern(4096);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::byte>(i & 0xFFu);
  }

  InMemorySnapshotStore mem;
  FileSnapshotStore file(fresh_store_dir("snapshot_store_roundtrip"));
  mem.put(7, session_blob);
  mem.put(8, pattern);
  file.put(7, session_blob);
  file.put(8, pattern);
  EXPECT_EQ(mem.count(), 2u);
  EXPECT_EQ(file.count(), 2u);
  EXPECT_EQ(mem.bytes(), session_blob.size() + pattern.size());
  EXPECT_EQ(file.bytes(), mem.bytes());
  EXPECT_TRUE(std::filesystem::exists(file.directory() / "7.snap"));

  const auto mem_back = mem.take(7);
  const auto file_back = file.take(7);
  ASSERT_TRUE(mem_back.has_value());
  ASSERT_TRUE(file_back.has_value());
  EXPECT_EQ(*mem_back, session_blob);  // std::byte vectors compare bitwise
  EXPECT_EQ(*file_back, session_blob);
  EXPECT_EQ(*mem_back, *file_back);
  EXPECT_EQ(*mem.take(8), *file.take(8));

  // take() removes: the second take misses and the counters drain.
  EXPECT_FALSE(mem.take(7).has_value());
  EXPECT_FALSE(file.take(7).has_value());
  EXPECT_EQ(mem.count(), 0u);
  EXPECT_EQ(file.count(), 0u);
  EXPECT_EQ(file.bytes(), 0u);
  EXPECT_FALSE(std::filesystem::exists(file.directory() / "7.snap"));
}

TEST(SnapshotStore, FileBackedBlobsSurviveTheStoreInstance) {
  const std::filesystem::path dir = fresh_store_dir("snapshot_store_persist");
  std::vector<std::byte> blob(512);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::byte>((i * 7) & 0xFFu);
  }
  {
    FileSnapshotStore first(dir);
    first.put(42, blob);
  }  // Store destroyed; only the file remains.
  FileSnapshotStore second(dir);  // Adopts the existing blob on scan.
  EXPECT_EQ(second.count(), 1u);
  EXPECT_EQ(second.bytes(), blob.size());
  const auto back = second.take(42);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, blob);
}

// ---------------------------------------------------------------------------
// Sharding: trace invariance, per-shard accounting, cross-manager
// migration over a shared store.
// ---------------------------------------------------------------------------

TEST(SessionManager, ShardCountAndBatchSizeNeverChangeTraces) {
  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kTicks = 16;
  // Shard counts that do and don't divide the session count, a serial
  // and a pooled pump, different cadences, and a pump_batch of 1 (one
  // task per busy session — maximum interleaving): all must match the
  // single-shard serial baseline bit for bit.
  const auto base = run_maze_service(0, kSessions, kTicks, 4);
  const auto sharded_serial = run_maze_service(0, kSessions, kTicks, 3,
                                               /*shards=*/5, /*pump_batch=*/2);
  const auto sharded_pooled = run_maze_service(4, kSessions, kTicks, 2,
                                               /*shards=*/3, /*pump_batch=*/1);
  EXPECT_EQ(base->shard_count(), 1u);
  EXPECT_EQ(sharded_serial->shard_count(), 5u);
  EXPECT_EQ(sharded_pooled->shard_count(), 3u);
  expect_bitwise_equal_traces(*base, *sharded_serial, kSessions);
  expect_bitwise_equal_traces(*base, *sharded_pooled, kSessions);
}

TEST(SessionManager, ReportBreaksOccupancyAndEvictionsDownPerShard) {
  constexpr std::size_t kSessions = 6;
  const auto stream = synthetic_stream(8);
  const auto mgr = make_maze_manager(0, kSessions, /*shards=*/4);
  replay_window(*mgr, stream, kSessions, 0, 8, 4);
  mgr->evict_session(0);  // shard 0
  mgr->evict_session(3);  // shard 3

  const ServeReport rep = mgr->report();
  ASSERT_EQ(rep.per_shard.size(), 4u);
  std::size_t sessions = 0;
  std::size_t live = 0;
  std::size_t evicted = 0;
  for (std::size_t s = 0; s < rep.per_shard.size(); ++s) {
    EXPECT_EQ(rep.per_shard[s].shard, s);
    sessions += rep.per_shard[s].sessions;
    live += rep.per_shard[s].live_sessions;
    evicted += rep.per_shard[s].evicted_sessions;
  }
  EXPECT_EQ(sessions, rep.sessions);
  EXPECT_EQ(live, rep.live_sessions);
  EXPECT_EQ(evicted, rep.evicted_sessions);
  // Dense ids round-robin: shard 0 owns {0, 4}, shard 3 owns {3}.
  EXPECT_EQ(rep.per_shard[0].sessions, 2u);
  EXPECT_EQ(rep.per_shard[0].live_sessions, 1u);
  EXPECT_EQ(rep.per_shard[0].evicted_sessions, 1u);
  EXPECT_EQ(rep.per_shard[1].sessions, 2u);
  EXPECT_EQ(rep.per_shard[1].evicted_sessions, 0u);
  EXPECT_EQ(rep.per_shard[2].sessions, 1u);
  EXPECT_EQ(rep.per_shard[3].sessions, 1u);
  EXPECT_EQ(rep.per_shard[3].live_sessions, 0u);
  EXPECT_EQ(rep.per_shard[3].evicted_sessions, 1u);
}

/// The rebalancing seam end-to-end: manager A evicts every session into
/// a shared FILE-BACKED store, manager B (different shard count) takes
/// the blobs, restores them, and finishes the stream — the stitched
/// traces must equal an uninterrupted single-manager run bit for bit.
TEST(SessionManager, CrossManagerMigrationOverSharedStoreIsBitIdentical) {
  constexpr std::size_t kSessions = 3;
  constexpr std::size_t kTicks = 12;
  const auto stream = synthetic_stream(kTicks);
  const auto straight = make_maze_manager(0, kSessions);
  replay_window(*straight, stream, kSessions, 0, kTicks, 3);

  const auto store = std::make_shared<FileSnapshotStore>(
      fresh_store_dir("snapshot_store_migrate"));
  const auto source = make_maze_manager(0, kSessions, /*shards=*/2, store);
  replay_window(*source, stream, kSessions, 0, kTicks / 2, 3);
  for (std::size_t i = 0; i < kSessions; ++i) source->evict_session(i);
  EXPECT_EQ(store->count(), kSessions);
  // The parked state is real files by now, not manager memory.
  EXPECT_TRUE(std::filesystem::exists(store->directory() / "0.snap"));

  const auto target = make_maze_manager(0, kSessions, /*shards=*/3, store);
  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto blob = store->take(i);
    ASSERT_TRUE(blob.has_value()) << "session " << i;
    target->restore_session(i, *blob);
  }
  EXPECT_EQ(store->count(), 0u);
  replay_window(*target, stream, kSessions, kTicks / 2, kTicks, 3);
  expect_bitwise_equal_traces(*straight, *target, kSessions);
}

// ---------------------------------------------------------------------------
// Concurrency regressions (the TSan CI job runs these): report() and
// evict_idle() racing a pooled pump.
// ---------------------------------------------------------------------------

/// Regression for two data races: pump() used to write pump_seconds_
/// unlocked while report() read it under a different mutex, and report()
/// read each session's LatencyRecorder (and mutable localizer footprint)
/// while pump tasks were appending samples. A reporter thread hammering
/// report() across a pooled pump must be clean under TSan.
TEST(SessionManager, ReportStaysCleanDuringPooledPump) {
  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kTicks = 12;
  const auto stream = synthetic_stream(kTicks);
  const auto mgr = make_maze_manager(4, kSessions, /*shards=*/2);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reports{0};
  std::thread reporter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const ServeReport rep = mgr->report();
      // Shard-local consistency holds even mid-pump.
      EXPECT_EQ(rep.live_sessions + rep.evicted_sessions, rep.sessions);
      EXPECT_GE(rep.pump_seconds, 0.0);
      reports.fetch_add(1, std::memory_order_relaxed);
    }
  });
  replay_window(*mgr, stream, kSessions, 0, kTicks, 2);
  // On a single-core box the whole replay can finish before the reporter
  // first runs; keep pumping (empty pumps are harmless) until at least
  // one report() provably overlapped pump() calls.
  while (reports.load(std::memory_order_relaxed) == 0) mgr->pump();
  stop.store(true, std::memory_order_release);
  reporter.join();
  EXPECT_GT(reports.load(std::memory_order_relaxed), 0u);

  // Quiescent again: the full cross-counter invariants are restored.
  const ServeReport rep = mgr->report();
  EXPECT_GT(rep.corrections, 0u);
  EXPECT_EQ(rep.latency.count, rep.corrections);
  EXPECT_GT(rep.pump_seconds, 0.0);
}

/// Regression for the evict-during-pump use-after-free: an evictor
/// thread sweeping evict_idle(0) as aggressively as possible while the
/// pump runs must never destroy an in-flight session (pinning makes the
/// sweep skip it) — and because evict/restore is transparent and
/// bit-exact, the hammered run's traces must still equal a straight
/// run's. Checked under the serial AND pooled pumps.
TEST(SessionManager, EvictDuringPumpIsPinnedSafeAndTraceInvariant) {
  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kTicks = 16;
  const auto stream = synthetic_stream(kTicks);

  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    const auto straight = make_maze_manager(threads, kSessions);
    replay_window(*straight, stream, kSessions, 0, kTicks, 2);

    const auto hammered = make_maze_manager(threads, kSessions, /*shards=*/2);
    std::atomic<bool> stop{false};
    std::thread evictor([&] {
      // min_idle_pumps = 0: every live session with a drained queue is
      // fair game the moment its pump finishes (and pushes restore it
      // right back) — maximum evict/restore pressure on the pin flag.
      while (!stop.load(std::memory_order_acquire)) hammered->evict_idle(0);
    });
    replay_window(*hammered, stream, kSessions, 0, kTicks, 2);
    stop.store(true, std::memory_order_release);
    evictor.join();

    // Guarantee at least one evict/restore cycle per session whatever
    // the scheduler did, then bring everything back live for the diff.
    hammered->evict_idle(0);
    for (std::size_t i = 0; i < kSessions; ++i) {
      if (hammered->session_live(i)) continue;
      const auto blob = hammered->store()->take(i);
      ASSERT_TRUE(blob.has_value()) << "session " << i;
      hammered->restore_session(i, *blob);
    }
    expect_bitwise_equal_traces(*straight, *hammered, kSessions);
  }
}

}  // namespace
}  // namespace tofmcl::serve
