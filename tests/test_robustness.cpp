// Failure injection and robustness: degraded sensors, odometry anomalies,
// the ESS-gated resampling extension and the 4×4 zone mode — the
// conditions a deployed system actually meets.

#include <gtest/gtest.h>

#include "core/localizer.hpp"
#include "eval/experiment.hpp"
#include "sim/maze.hpp"
#include "sim/sequence_generator.hpp"

namespace tofmcl {
namespace {

map::OccupancyGrid maze_grid() {
  sim::EvaluationEnvironment env;
  env.world = sim::drone_maze();
  env.maze_regions.push_back({{0.0, 0.0}, {4.0, 4.0}});
  return sim::rasterize_environment(env, 0.05, 0.0);
}

sensor::TofFrame frame_with_status(sensor::ZoneStatus status,
                                   int sensor_id = 0) {
  sensor::TofFrame f;
  f.sensor_id = sensor_id;
  f.mode = sensor::ZoneMode::k8x8;
  f.zones.assign(64, {1.0f, status});
  return f;
}

TEST(Robustness, AllInterferenceFramesDoNotCrash) {
  const auto grid = maze_grid();
  core::SerialExecutor exec;
  core::LocalizerConfig cfg;
  cfg.mcl.num_particles = 256;
  core::Localizer loc(grid, cfg, exec);
  loc.on_odometry(Pose2{});
  loc.start_global();

  // Every zone flagged: extraction yields zero beams; the update must
  // still run (motion-only) and the estimate stay finite.
  Pose2 odom{};
  for (int i = 0; i < 20; ++i) {
    odom = odom.compose(Pose2{0.12, 0.0, 0.0});
    loc.on_odometry(odom);
    const sensor::TofFrame f =
        frame_with_status(sensor::ZoneStatus::kInterference);
    EXPECT_TRUE(loc.on_frames({&f, 1}));
  }
  EXPECT_TRUE(loc.estimate().valid);
  EXPECT_TRUE(std::isfinite(loc.estimate().pose.x()));
}

TEST(Robustness, AllOutOfRangeFramesDoNotCrash) {
  const auto grid = maze_grid();
  core::SerialExecutor exec;
  core::LocalizerConfig cfg;
  cfg.mcl.num_particles = 128;
  core::Localizer loc(grid, cfg, exec);
  loc.on_odometry(Pose2{});
  loc.start_global();
  Pose2 odom{};
  for (int i = 0; i < 10; ++i) {
    odom = odom.compose(Pose2{0.15, 0.0, 0.1});
    loc.on_odometry(odom);
    const sensor::TofFrame f =
        frame_with_status(sensor::ZoneStatus::kOutOfRange);
    loc.on_frames({&f, 1});
  }
  EXPECT_TRUE(std::isfinite(loc.estimate().pose.x()));
}

TEST(Robustness, OdometryJumpSurvives) {
  // A teleporting odometry step (EKF reset/glitch) must not produce NaNs
  // or particle escape — the motion update absorbs it as a huge delta.
  const auto grid = maze_grid();
  core::SerialExecutor exec;
  core::LocalizerConfig cfg;
  cfg.mcl.num_particles = 512;
  core::Localizer loc(grid, cfg, exec);
  loc.on_odometry(Pose2{});
  loc.start_global();
  const sensor::TofFrame f = frame_with_status(sensor::ZoneStatus::kValid);
  loc.on_odometry(Pose2{0.2, 0.0, 0.0});
  loc.on_frames({&f, 1});
  // The glitch: 100 m jump.
  loc.on_odometry(Pose2{100.0, 50.0, 2.0});
  loc.on_frames({&f, 1});
  EXPECT_TRUE(std::isfinite(loc.estimate().pose.x()));
  EXPECT_TRUE(std::isfinite(loc.estimate().pose.yaw));
}

TEST(Robustness, HeavySensorDegradationStillLocalizes) {
  // 30 % interference, doubled noise: localization should still converge
  // on a full flight (the mixture floor and redundancy carry it).
  const map::World maze = sim::drone_maze();
  sim::EvaluationEnvironment env;
  env.world = maze;
  env.maze_regions.push_back({{0.0, 0.0}, {4.0, 4.0}});
  const map::OccupancyGrid grid = sim::rasterize_environment(env, 0.05, 0.01);

  auto gen = sim::default_generator_config();
  gen.front_tof.p_interference = 0.3;
  gen.rear_tof.p_interference = 0.3;
  gen.front_tof.sigma_base_m = 0.02;
  gen.rear_tof.sigma_base_m = 0.02;
  gen.front_tof.sigma_proportional = 0.04;
  gen.rear_tof.sigma_proportional = 0.04;
  const auto plans = sim::standard_flight_plans();
  Rng rng(5);
  const sim::Sequence seq = sim::generate_sequence(maze, plans[3], gen, rng);

  core::LocalizerConfig cfg;
  cfg.mcl.num_particles = 4096;
  cfg.mcl.seed = 9;
  core::SerialExecutor exec;
  const auto errors = eval::replay_sequence(seq, grid, cfg, true, exec);
  const eval::RunMetrics metrics = eval::evaluate_run(errors);
  EXPECT_TRUE(metrics.converged);
  EXPECT_LT(metrics.ate_m, 0.6);
}

TEST(Robustness, EssGatedResamplingWorks) {
  // With the ESS extension the filter should localize comparably while
  // actually skipping resampling rounds (weights visibly non-uniform).
  const auto grid = maze_grid();
  core::SerialExecutor exec;
  const map::QuantizedDistanceMap qmap(grid, 1.5);
  core::MclConfig cfg;
  cfg.num_particles = 1024;
  cfg.seed = 4;
  cfg.resample_ess_fraction = 0.5;
  core::ParticleFilter<core::Fp32QmTraits> pf(qmap, cfg, exec);
  pf.init_gaussian({1.5, 0.6, 0.0}, 0.2, 0.2);

  std::array<sensor::Beam, 8> beams;
  for (int i = 0; i < 8; ++i) {
    const double az = -0.3 + 0.085 * i;
    beams[static_cast<std::size_t>(i)] = {
        az, 0.6f,
        Vec2f{static_cast<float>(0.6 * std::cos(az)),
              static_cast<float>(0.6 * std::sin(az))}};
  }
  bool saw_nonuniform_after_resample_phase = false;
  for (int round = 0; round < 20; ++round) {
    pf.motion_update(Pose2{0.02, 0.0, 0.0});
    pf.observation_update(beams);
    pf.resample();
    // If the ESS gate skipped the draw, weights stay non-uniform.
    float w0 = static_cast<float>(pf.particles()[0].weight);
    for (const auto& p : pf.particles()) {
      if (std::abs(static_cast<float>(p.weight) - w0) > 1e-6f) {
        saw_nonuniform_after_resample_phase = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_nonuniform_after_resample_phase);
  const auto est = pf.compute_pose();
  ASSERT_TRUE(est.valid);
  EXPECT_TRUE(std::isfinite(est.pose.x()));
}

TEST(Robustness, FourByFourZoneModePipeline) {
  // The 4×4 @ 60 Hz sensor mode (the VL53L5CX's other operating point):
  // fewer beams per frame but more frames — the pipeline must converge.
  const map::World maze = sim::drone_maze();
  sim::EvaluationEnvironment env;
  env.world = maze;
  env.maze_regions.push_back({{0.0, 0.0}, {4.0, 4.0}});
  const map::OccupancyGrid grid = sim::rasterize_environment(env, 0.05, 0.01);

  auto gen = sim::default_generator_config();
  gen.front_tof.mode = sensor::ZoneMode::k4x4;
  gen.rear_tof.mode = sensor::ZoneMode::k4x4;
  gen.tof_rate_hz = 60.0;
  const auto plans = sim::standard_flight_plans();
  Rng rng(6);
  const sim::Sequence seq = sim::generate_sequence(maze, plans[1], gen, rng);

  core::LocalizerConfig cfg;
  cfg.mcl.num_particles = 4096;
  cfg.mcl.seed = 8;
  // The localizer's sensor table must match the 4×4 mode.
  cfg.sensors = {gen.front_tof, gen.rear_tof};
  core::SerialExecutor exec;
  const auto errors = eval::replay_sequence(seq, grid, cfg, true, exec);
  const eval::RunMetrics metrics = eval::evaluate_run(errors);
  EXPECT_TRUE(metrics.converged);
  EXPECT_LT(metrics.ate_m, 0.6);
}

TEST(Robustness, TinyParticleCountsDegradeGracefully) {
  // 8 particles cannot localize globally, but nothing may crash and the
  // estimate must stay finite.
  const auto grid = maze_grid();
  core::SerialExecutor exec;
  core::LocalizerConfig cfg;
  cfg.mcl.num_particles = 8;
  core::Localizer loc(grid, cfg, exec);
  loc.on_odometry(Pose2{});
  loc.start_global();
  Pose2 odom{};
  const sensor::TofFrame f = frame_with_status(sensor::ZoneStatus::kValid);
  for (int i = 0; i < 30; ++i) {
    odom = odom.compose(Pose2{0.11, 0.0, 0.05});
    loc.on_odometry(odom);
    loc.on_frames({&f, 1});
  }
  EXPECT_TRUE(std::isfinite(loc.estimate().pose.x()));
}

}  // namespace
}  // namespace tofmcl
