// Unit and property tests for common/angles.hpp. Correct circular
// arithmetic is critical for yaw averaging in the pose computation step and
// for the convergence criterion (36° threshold).

#include "common/angles.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace tofmcl {
namespace {

TEST(Angles, DegRadConversions) {
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad_to_deg(kPi), 180.0);
  EXPECT_NEAR(deg_to_rad(36.0), 0.6283185307, 1e-9);
}

TEST(Angles, WrapPiBasics) {
  EXPECT_NEAR(wrap_pi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_pi(kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(wrap_pi(-kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(wrap_pi(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi - 0.1), kPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(3.0 * kPi), kPi, 1e-12);
}

TEST(Angles, WrapPiRangeProperty) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform(-100.0, 100.0);
    const double w = wrap_pi(a);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    // Wrapped angle must be congruent mod 2π.
    EXPECT_NEAR(std::remainder(a - w, kTwoPi), 0.0, 1e-9);
  }
}

TEST(Angles, WrapTwoPiRangeProperty) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform(-100.0, 100.0);
    const double w = wrap_two_pi(a);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, kTwoPi);
    EXPECT_NEAR(std::remainder(a - w, kTwoPi), 0.0, 1e-9);
  }
}

TEST(Angles, DiffAcrossSeam) {
  // 350° vs 10°: the short way round is 20°, not 340°.
  const double a = deg_to_rad(350.0);
  const double b = deg_to_rad(10.0);
  EXPECT_NEAR(angle_dist(a, b), deg_to_rad(20.0), 1e-12);
  EXPECT_NEAR(angle_diff(a, b), deg_to_rad(-20.0), 1e-12);
  EXPECT_NEAR(angle_diff(b, a), deg_to_rad(20.0), 1e-12);
}

TEST(Angles, DiffAntisymmetry) {
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(-10, 10);
    const double b = rng.uniform(-10, 10);
    const double d1 = angle_diff(a, b);
    const double d2 = angle_diff(b, a);
    // Antisymmetric except at the ±π boundary where both map to +π.
    if (std::abs(std::abs(d1) - kPi) > 1e-9) {
      EXPECT_NEAR(d1, -d2, 1e-9);
    }
  }
}

TEST(Angles, CircularMeanSimple) {
  const std::array<double, 2> angles{deg_to_rad(350.0), deg_to_rad(10.0)};
  const double m = circular_mean(angles);
  EXPECT_NEAR(angle_dist(m, 0.0), 0.0, 1e-9);
}

TEST(Angles, CircularMeanWeighted) {
  const std::array<double, 2> angles{0.0, kPi / 2.0};
  const std::array<double, 2> w_left{1.0, 0.0};
  const std::array<double, 2> w_right{0.0, 1.0};
  EXPECT_NEAR(circular_mean(angles, w_left), 0.0, 1e-12);
  EXPECT_NEAR(circular_mean(angles, w_right), kPi / 2.0, 1e-12);
}

TEST(Angles, CircularMeanDegenerate) {
  // Antipodal mass cancels; convention is 0.
  const std::array<double, 2> angles{0.0, kPi};
  EXPECT_DOUBLE_EQ(circular_mean(angles), 0.0);
  EXPECT_DOUBLE_EQ(circular_mean(std::span<const double>{}), 0.0);
}

TEST(Angles, CircularMeanShiftEquivariance) {
  // mean(angles + c) == mean(angles) + c (mod 2π) — the property that makes
  // the estimator frame-independent.
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> angles(10);
    std::vector<double> weights(10);
    for (std::size_t i = 0; i < angles.size(); ++i) {
      angles[i] = rng.uniform(-0.8, 0.8);  // concentrated: mean well-defined
      weights[i] = rng.uniform(0.1, 1.0);
    }
    const double c = rng.uniform(-3.0, 3.0);
    const double base = circular_mean(angles, weights);
    for (auto& a : angles) a += c;
    const double shifted = circular_mean(angles, weights);
    EXPECT_NEAR(angle_dist(shifted, base + c), 0.0, 1e-9);
  }
}

TEST(Angles, SlerpEndpointsAndMidpoint) {
  const double a = deg_to_rad(350.0);
  const double b = deg_to_rad(10.0);
  EXPECT_NEAR(angle_dist(slerp_angle(a, b, 0.0), a), 0.0, 1e-12);
  EXPECT_NEAR(angle_dist(slerp_angle(a, b, 1.0), b), 0.0, 1e-12);
  EXPECT_NEAR(angle_dist(slerp_angle(a, b, 0.5), 0.0), 0.0, 1e-12);
}

}  // namespace
}  // namespace tofmcl
