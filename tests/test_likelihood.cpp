// Tests for the beam end-point observation likelihood (paper Eq. 1):
// mixture shape, monotonicity in the distance-map error, the quantized
// LUT path's agreement with the direct path, and out-of-map endpoint
// handling (rmax ⇒ least-informative factor, never zero).

#include "core/likelihood.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "map/distance_map.hpp"
#include "map/occupancy_grid.hpp"

namespace tofmcl::core {
namespace {

// A 1 m × 1 m free grid with a single occupied cell in the middle, so the
// EDT grows monotonically away from the center.
map::OccupancyGrid center_obstacle_grid() {
  map::OccupancyGrid grid(20, 20, 0.05, {0.0, 0.0}, map::CellState::kFree);
  grid.set({10, 10}, map::CellState::kOccupied);
  return grid;
}

TEST(BeamLikelihood, PeaksAtZeroDistance) {
  const BeamModelParams params;
  EXPECT_FLOAT_EQ(beam_likelihood(0.0f, params), params.z_hit + params.z_rand);
}

TEST(BeamLikelihood, MonotoneNonIncreasingWithDistance) {
  // Strictly decreasing while the Gaussian term is representable (≤ 5σ);
  // beyond that fp32 underflow saturates the factor at exactly z_rand, so
  // the tail is asserted non-increasing with the floor as its limit.
  const BeamModelParams params;
  float prev = beam_likelihood(0.0f, params);
  for (float d = 0.05f; d <= 0.5f; d += 0.05f) {
    const float cur = beam_likelihood(d, params);
    EXPECT_LT(cur, prev) << "d=" << d;
    prev = cur;
  }
  for (float d = 0.55f; d <= 1.5f; d += 0.05f) {
    const float cur = beam_likelihood(d, params);
    EXPECT_LE(cur, prev) << "d=" << d;
    EXPECT_GE(cur, params.z_rand) << "d=" << d;
    prev = cur;
  }
}

TEST(BeamLikelihood, FloorAbsorbsUnexplainedBeams) {
  // Far from any obstacle the Gaussian term vanishes but the z_rand floor
  // keeps the factor strictly positive — one outlier beam must never
  // annihilate a particle.
  const BeamModelParams params;
  const float far = beam_likelihood(10.0f, params);
  EXPECT_GT(far, 0.0f);
  EXPECT_NEAR(far, params.z_rand, 1e-6f);
}

TEST(BeamLikelihood, SharperSigmaDecaysFaster) {
  BeamModelParams sharp;
  sharp.sigma_obs = 0.05f;
  BeamModelParams flat;
  flat.sigma_obs = 0.5f;
  // Same mixture weights, same distance: the sharp model penalizes a
  // 0.2 m map mismatch much harder.
  EXPECT_LT(beam_likelihood(0.2f, sharp), beam_likelihood(0.2f, flat));
}

TEST(LikelihoodLut, MatchesDirectEvaluationAtCodePoints) {
  const BeamModelParams params;
  const float step = 1.5f / 255.0f;
  const LikelihoodLut lut(step, params);
  for (int code = 0; code <= 255; ++code) {
    const float d = static_cast<float>(code) * step;
    EXPECT_FLOAT_EQ(lut[static_cast<std::uint8_t>(code)],
                    beam_likelihood(d, params))
        << "code=" << code;
  }
}

TEST(LikelihoodLut, EvaluatedExactlyAtMapReconstruction) {
  // Bin-edge regression: the table must be evaluated at the value the
  // quantized map actually decodes a code to (its round-to-nearest bin
  // center, QuantizedDistanceMap::reconstruct) — BIT-exactly, not merely
  // within tolerance. A table built at any other point (e.g. a bin edge
  // of a misassumed floor quantizer) disagrees with distance_at() for
  // every nonzero code.
  const auto grid = center_obstacle_grid();
  const map::QuantizedDistanceMap qmap(grid, 1.5);
  const BeamModelParams params;
  const LikelihoodLut lut(qmap.step(), params);
  for (int code = 0; code <= 255; ++code) {
    const auto c = static_cast<std::uint8_t>(code);
    EXPECT_EQ(lut[c], beam_likelihood(qmap.reconstruct(c), params))
        << "code=" << code;
  }
  // And through the model: the LUT path equals direct evaluation of the
  // map's dequantized distance at arbitrary query points, bit for bit.
  const LutObservationModel model(qmap, params);
  for (float x = -0.2f; x < 1.2f; x += 0.17f) {
    for (float y = -0.2f; y < 1.2f; y += 0.19f) {
      EXPECT_EQ(model.factor(x, y),
                beam_likelihood(qmap.distance_at({x, y}), params))
          << "(" << x << ", " << y << ")";
    }
  }
}

TEST(LikelihoodLut, RejectsInvalidParameters) {
  const BeamModelParams params;
  EXPECT_THROW(LikelihoodLut(0.0f, params), PreconditionError);
  BeamModelParams bad;
  bad.sigma_obs = 0.0f;
  EXPECT_THROW(LikelihoodLut(0.01f, bad), PreconditionError);
}

// ---- Short-return mixture properties -------------------------------------

/// Randomized mixture configurations for the property tests below. The
/// draws cover the regimes the campaigns sweep: sharp-to-flat sigma,
/// arbitrary (z_hit, z_rand, z_short) weights, decay rates around 1/m.
BeamModelParams random_params(Rng& rng) {
  BeamModelParams p;
  p.sigma_obs = static_cast<float>(rng.uniform(0.05, 0.5));
  p.z_hit = static_cast<float>(rng.uniform(0.1, 1.0));
  p.z_rand = static_cast<float>(rng.uniform(0.01, 0.5));
  p.z_short = static_cast<float>(rng.uniform(0.0, 0.8));
  p.lambda_short = static_cast<float>(rng.uniform(0.3, 3.0));
  return p;
}

TEST(BeamMixture, NormalizationBound) {
  // The mixture is bounded by its weights: every factor lies in
  // (0, z_hit + z_rand + z_short], with the supremum attained at
  // (distance = 0, range = 0). This is the bound the per-beam normalizer
  // in the observation kernel divides by.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const auto p = random_params(rng);
    const float bound = p.z_hit + p.z_rand + p.z_short;
    for (int i = 0; i < 16; ++i) {
      const float d = static_cast<float>(rng.uniform(0.0, 2.0));
      const float z = static_cast<float>(rng.uniform(0.0, 4.0));
      const float f = beam_mixture_likelihood(d, z, p);
      EXPECT_GT(f, 0.0f) << "d=" << d << " z=" << z;
      EXPECT_LE(f, bound * (1.0f + 1e-6f)) << "d=" << d << " z=" << z;
    }
    EXPECT_FLOAT_EQ(beam_mixture_likelihood(0.0f, 0.0f, p), bound);
  }
}

TEST(BeamMixture, ShortComponentDecaysMonotonically) {
  // The short-return floor must decay strictly monotonically over the
  // measured range while representable, and never go negative: a closer
  // return is always the more plausible occluder.
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    BeamModelParams p = random_params(rng);
    p.z_short = static_cast<float>(rng.uniform(0.05, 0.8));
    float prev = short_return_floor(0.0f, p);
    EXPECT_FLOAT_EQ(prev, p.z_short);
    for (float z = 0.1f; z <= 4.0f; z += 0.1f) {
      const float cur = short_return_floor(z, p);
      EXPECT_GE(cur, 0.0f) << "z=" << z;
      EXPECT_LE(cur, prev) << "z=" << z;
      if (prev > 1e-30f) {
        EXPECT_LT(cur, prev) << "z=" << z;
      }
      prev = cur;
    }
  }
}

TEST(BeamMixture, ZeroShortWeightIsBitIdenticalToSeedModel) {
  // With z_short = 0 the mixture must reproduce the two-term model of
  // Eq. 1 EXACTLY — bit for bit, not within tolerance — whatever the
  // other parameters and the measured range. This is the property that
  // lets every pre-mixture golden bound stand.
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    BeamModelParams p = random_params(rng);
    p.z_short = 0.0f;
    for (int i = 0; i < 16; ++i) {
      const float d = static_cast<float>(rng.uniform(0.0, 2.0));
      const float z = static_cast<float>(rng.uniform(0.0, 4.0));
      EXPECT_EQ(beam_mixture_likelihood(d, z, p),
                beam_likelihood(d, p))
          << "d=" << d << " z=" << z;
    }
  }
}

TEST(BeamMixture, LutAgreesWithDirectAcrossRandomConfigs) {
  // The LUT tables the map-distance part of the mixture; adding the
  // measured-range floor outside the table must agree with direct
  // evaluation within the likelihood change across one quantization step
  // (slope bound · step/2, as in the fixed-config test above), for
  // RANDOMIZED (z_hit, z_short, z_rand, sigma, lambda) configurations.
  const auto grid = center_obstacle_grid();
  const map::DistanceMap dmap(grid, 1.5);
  const map::QuantizedDistanceMap qmap(grid, 1.5);
  Rng rng(31337);
  for (int trial = 0; trial < 25; ++trial) {
    const auto p = random_params(rng);
    const DirectObservationModel direct(dmap, p);
    const LutObservationModel lut(qmap, p);
    const float step = qmap.step();
    const float tol = p.z_hit / (p.sigma_obs * std::sqrt(std::exp(1.0f))) *
                      step * 0.5f * 1.05f;
    for (int i = 0; i < 32; ++i) {
      const float x = static_cast<float>(rng.uniform(0.0, 1.0));
      const float y = static_cast<float>(rng.uniform(0.0, 1.0));
      const float z = static_cast<float>(rng.uniform(0.0, 4.0));
      const float floor = short_return_floor(z, p);
      EXPECT_NEAR(lut.factor(x, y) + floor, direct.factor(x, y) + floor,
                  tol)
          << "(" << x << ", " << y << ") z=" << z;
      // And the composed mixture evaluated through the quantized map
      // equals the direct formula at the map's reconstructed distance,
      // bit for bit — the floor addition cannot disturb LUT exactness.
      EXPECT_EQ(lut.factor(x, y) + floor,
                beam_mixture_likelihood(qmap.distance_at({x, y}), z, p))
          << "(" << x << ", " << y << ") z=" << z;
    }
  }
}

TEST(BeamMixture, RejectsInvalidShortParameters) {
  BeamModelParams bad;
  bad.z_short = -0.1f;
  EXPECT_THROW(LikelihoodLut(0.01f, bad), PreconditionError);
  BeamModelParams bad_lambda;
  bad_lambda.lambda_short = 0.0f;
  EXPECT_THROW(LikelihoodLut(0.01f, bad_lambda), PreconditionError);
}

TEST(DirectObservationModel, MonotoneInDistanceMapError) {
  // Factor at the obstacle cell must dominate, then fall monotonically as
  // the queried endpoint moves away — the property resampling relies on.
  const auto grid = center_obstacle_grid();
  const map::DistanceMap dmap(grid, 1.5);
  const DirectObservationModel model(dmap, {});

  const float cx = 0.525f, cy = 0.525f;  // Center of the occupied cell.
  float prev = model.factor(cx, cy);
  for (int i = 1; i <= 8; ++i) {
    const float cur = model.factor(cx + 0.05f * static_cast<float>(i), cy);
    EXPECT_LE(cur, prev) << "offset cells=" << i;
    prev = cur;
  }
}

TEST(DirectObservationModel, OutOfMapEndpointIsLeastInformative) {
  // An endpoint outside the map reads EDT = rmax: the factor equals the
  // in-map factor at full truncation distance (≈ z_rand), is positive,
  // and cannot beat any in-map endpoint nearer to an obstacle.
  const auto grid = center_obstacle_grid();
  const map::DistanceMap dmap(grid, 1.5);
  const BeamModelParams params;
  const DirectObservationModel model(dmap, params);

  const float outside = model.factor(50.0f, -50.0f);
  EXPECT_FLOAT_EQ(outside, beam_likelihood(dmap.rmax(), params));
  EXPECT_GT(outside, 0.0f);
  EXPECT_LE(outside, model.factor(0.525f, 0.525f));
}

TEST(LutObservationModel, AgreesWithDirectModelWithinQuantization) {
  // The quantized path may differ from the direct path only by the
  // likelihood change across one quantization step (≈ 2.9 mm of distance)
  // — the paper's "no accuracy loss" claim at unit-test granularity.
  const auto grid = center_obstacle_grid();
  const map::DistanceMap dmap(grid, 1.5);
  const map::QuantizedDistanceMap qmap(grid, 1.5);
  const BeamModelParams params;
  const DirectObservationModel direct(dmap, params);
  const LutObservationModel lut(qmap, params);

  // Worst-case likelihood slope: |dL/dd| ≤ z_hit/(σ√e), and round-to-
  // nearest quantization moves the distance by at most step/2, so the
  // tight bound is slope · step/2 (plus 5 % float-rounding headroom) —
  // half the historical bound, now that the LUT provably evaluates at the
  // map's reconstruction values.
  const float step = qmap.step();
  const float tol = params.z_hit /
                    (params.sigma_obs * std::sqrt(std::exp(1.0f))) * step *
                    0.5f * 1.05f;
  for (float x = 0.0f; x < 1.0f; x += 0.11f) {
    for (float y = 0.0f; y < 1.0f; y += 0.13f) {
      EXPECT_NEAR(lut.factor(x, y), direct.factor(x, y), tol)
          << "(" << x << ", " << y << ")";
    }
  }
}

TEST(LutObservationModel, OutOfMapEndpointUsesTruncationCode) {
  const auto grid = center_obstacle_grid();
  const map::QuantizedDistanceMap qmap(grid, 1.5);
  const BeamModelParams params;
  const LutObservationModel model(qmap, params);
  const LikelihoodLut lut(qmap.step(), params);
  EXPECT_FLOAT_EQ(model.factor(-10.0f, 10.0f), lut[255]);
  EXPECT_GT(model.factor(-10.0f, 10.0f), 0.0f);
}

}  // namespace
}  // namespace tofmcl::core
