// Tests for the streaming statistics, percentile and histogram helpers used
// by the evaluation harness.

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tofmcl {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of that classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(21);
  RunningStats all;
  RunningStats part1;
  RunningStats part2;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(2.0, 3.0);
    all.add(x);
    (i < 400 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), all.count());
  EXPECT_NEAR(part1.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(part1.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(part1.min(), all.min());
  EXPECT_DOUBLE_EQ(part1.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, Basics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(Percentile, UnsortedInputAndEmpty) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, RejectsBadQ) {
  EXPECT_THROW(percentile({1.0}, -0.1), PreconditionError);
  EXPECT_THROW(percentile({1.0}, 1.1), PreconditionError);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-1.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  for (std::size_t i = 1; i < 9; ++i) EXPECT_EQ(h.bin_count(i), 0u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(9), 9.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Histogram, CdfMonotone) {
  Histogram h(0.0, 1.0, 20);
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  double prev = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    const double c = h.cdf_at_bin(b);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(h.bins() - 1), 1.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

}  // namespace
}  // namespace tofmcl
