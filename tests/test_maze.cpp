// Tests for the maze builders and the composite evaluation environment:
// geometry, structured area, connectivity-relevant clearances and the
// Unknown-outside-mazes rasterization.

#include "sim/maze.hpp"

#include <gtest/gtest.h>

#include "map/rasterize.hpp"
#include "sim/sequence_generator.hpp"

namespace tofmcl::sim {
namespace {

TEST(DroneMaze, BoundsAndArea) {
  const map::World maze = drone_maze();
  const Aabb b = maze.bounds();
  EXPECT_DOUBLE_EQ(b.min.x, 0.0);
  EXPECT_DOUBLE_EQ(b.min.y, 0.0);
  EXPECT_DOUBLE_EQ(b.max.x, 4.0);
  EXPECT_DOUBLE_EQ(b.max.y, 4.0);
  EXPECT_DOUBLE_EQ(drone_maze_area(), 16.0);
}

TEST(DroneMaze, CorridorWaypointsHaveClearance) {
  // Every waypoint of every standard flight plan must have enough wall
  // clearance for the drone (including controller overshoot).
  const map::World maze = drone_maze();
  for (const FlightPlan& plan : standard_flight_plans()) {
    EXPECT_GE(maze.clearance(plan.start.position), 0.2) << plan.name;
    for (const Waypoint& w : plan.path) {
      EXPECT_GE(maze.clearance(w.position), 0.2)
          << plan.name << " waypoint (" << w.position.x << ","
          << w.position.y << ")";
    }
  }
}

TEST(DroneMaze, InteriorWallsCreateStructure) {
  const map::World maze = drone_maze();
  // More than just the outer box.
  EXPECT_GT(maze.segments().size(), 4u);
  // A ray across the middle must be interrupted by interior walls.
  const auto hit = maze.raycast({0.5, 0.5}, 0.0, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_LT(hit->distance, 3.0);
}

TEST(ArtificialMaze, DeterministicForSeed) {
  Rng rng1(11);
  Rng rng2(11);
  const map::World a = artificial_maze(rng1, 2.25);
  const map::World b = artificial_maze(rng2, 2.25);
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.segments()[i].a.x, b.segments()[i].a.x);
    EXPECT_DOUBLE_EQ(a.segments()[i].b.y, b.segments()[i].b.y);
  }
}

TEST(ArtificialMaze, StaysInsideBox) {
  Rng rng(12);
  const map::World maze = artificial_maze(rng, 2.25);
  const Aabb b = maze.bounds();
  EXPECT_GE(b.min.x, -1e-9);
  EXPECT_GE(b.min.y, -1e-9);
  EXPECT_LE(b.max.x, 2.25 + 1e-9);
  EXPECT_LE(b.max.y, 2.25 + 1e-9);
}

TEST(ArtificialMaze, DifferentSeedsDiffer) {
  Rng rng1(1);
  Rng rng2(2);
  const map::World a = artificial_maze(rng1, 2.25);
  const map::World b = artificial_maze(rng2, 2.25);
  // Either segment counts differ or at least one coordinate does.
  bool different = a.segments().size() != b.segments().size();
  if (!different) {
    for (std::size_t i = 0; i < a.segments().size(); ++i) {
      if (a.segments()[i].a.x != b.segments()[i].a.x ||
          a.segments()[i].a.y != b.segments()[i].a.y) {
        different = true;
        break;
      }
    }
  }
  EXPECT_TRUE(different);
}

TEST(ArtificialMaze, RejectsTinyBox) {
  Rng rng(13);
  EXPECT_THROW(artificial_maze(rng, 0.5), PreconditionError);
}

TEST(EvaluationEnvironment, StructuredAreaMatchesPaper) {
  const EvaluationEnvironment env = evaluation_environment();
  EXPECT_EQ(env.maze_regions.size(), 4u);
  // 16 + 3 · 5.0625 = 31.1875 ≈ the paper's 31.2 m².
  EXPECT_NEAR(env.structured_area_m2, 31.2, 0.05);
  // Region 0 is the real maze.
  EXPECT_DOUBLE_EQ(env.maze_regions[0].max.x, 4.0);
}

TEST(EvaluationEnvironment, RegionsDoNotOverlap) {
  const EvaluationEnvironment env = evaluation_environment();
  for (std::size_t i = 0; i < env.maze_regions.size(); ++i) {
    for (std::size_t j = i + 1; j < env.maze_regions.size(); ++j) {
      const Aabb& a = env.maze_regions[i];
      const Aabb& b = env.maze_regions[j];
      const bool disjoint = a.max.x <= b.min.x || b.max.x <= a.min.x ||
                            a.max.y <= b.min.y || b.max.y <= a.min.y;
      EXPECT_TRUE(disjoint) << "regions " << i << " and " << j;
    }
  }
}

TEST(RasterizeEnvironment, CellStateLayout) {
  const EvaluationEnvironment env = evaluation_environment();
  const map::OccupancyGrid grid = rasterize_environment(env, 0.05, 0.0);
  // Inside the drone maze: free corridor cell.
  EXPECT_EQ(grid.state_at({0.5, 0.5}), map::CellState::kFree);
  // On the outer wall of the drone maze: occupied.
  EXPECT_EQ(grid.state_at({0.0, 2.0}), map::CellState::kOccupied);
  // Between mazes: unknown.
  EXPECT_EQ(grid.state_at({4.25, 1.0}), map::CellState::kUnknown);
  // Inside an artificial maze: free or occupied but not unknown.
  EXPECT_NE(grid.state_at({5.6, 1.1}), map::CellState::kUnknown);
}

TEST(RasterizeEnvironment, MapErrorPerturbsWalls) {
  const EvaluationEnvironment env = evaluation_environment();
  const map::OccupancyGrid perfect = rasterize_environment(env, 0.05, 0.0);
  const map::OccupancyGrid noisy = rasterize_environment(env, 0.05, 0.02);
  EXPECT_FALSE(perfect == noisy);
  // Same geometry parameters though.
  EXPECT_EQ(perfect.width(), noisy.width());
  EXPECT_EQ(perfect.height(), noisy.height());
}

TEST(RasterizeEnvironment, FreeSpaceIsSubstantial) {
  const EvaluationEnvironment env = evaluation_environment();
  const map::OccupancyGrid grid = rasterize_environment(env);
  const double cell_area = 0.05 * 0.05;
  const double free_area =
      static_cast<double>(grid.count(map::CellState::kFree)) * cell_area;
  // Most of the 31.2 m² structured area is corridor.
  EXPECT_GT(free_area, 20.0);
  EXPECT_LT(free_area, 31.2);
}

}  // namespace
}  // namespace tofmcl::sim
