// Tests for the thread pool and the static chunk partitioning that mirrors
// the GAP9 cluster's per-core particle distribution.

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace tofmcl {
namespace {

TEST(ChunkBegin, PartitionsEvenly) {
  // 10 elements over 4 chunks: sizes 3,3,2,2.
  EXPECT_EQ(chunk_begin(10, 4, 0), 0u);
  EXPECT_EQ(chunk_begin(10, 4, 1), 3u);
  EXPECT_EQ(chunk_begin(10, 4, 2), 6u);
  EXPECT_EQ(chunk_begin(10, 4, 3), 8u);
  EXPECT_EQ(chunk_begin(10, 4, 4), 10u);
}

TEST(ChunkBegin, ExactDivision) {
  for (std::size_t i = 0; i <= 8; ++i) {
    EXPECT_EQ(chunk_begin(64, 8, i), i * 8);
  }
}

TEST(ChunkBegin, CoversWholeRangeProperty) {
  for (std::size_t count : {1u, 7u, 64u, 1000u, 16384u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 8u}) {
      EXPECT_EQ(chunk_begin(count, chunks, 0), 0u);
      EXPECT_EQ(chunk_begin(count, chunks, chunks), count);
      for (std::size_t i = 0; i < chunks; ++i) {
        const std::size_t b = chunk_begin(count, chunks, i);
        const std::size_t e = chunk_begin(count, chunks, i + 1);
        EXPECT_LE(b, e);
        // Chunk sizes differ by at most one.
        const std::size_t size = e - b;
        EXPECT_GE(size + 1, count / chunks);
        EXPECT_LE(size, count / chunks + 1);
      }
    }
  }
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForTouchesEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(touched.size(),
                    [&touched](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelChunksCoverRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(257);
  std::atomic<int> chunks_seen{0};
  pool.parallel_chunks(touched.size(), 8,
                       [&](std::size_t, std::size_t begin, std::size_t end) {
                         chunks_seen.fetch_add(1);
                         for (std::size_t i = begin; i < end; ++i) {
                           touched[i].fetch_add(1);
                         }
                       });
  EXPECT_EQ(chunks_seen.load(), 8);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ChunksClampedToCount) {
  ThreadPool pool(4);
  std::atomic<int> chunks_seen{0};
  pool.parallel_chunks(3, 8,
                       [&](std::size_t, std::size_t, std::size_t) {
                         chunks_seen.fetch_add(1);
                       });
  EXPECT_EQ(chunks_seen.load(), 3);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<double> values(10000);
  std::iota(values.begin(), values.end(), 0.0);
  std::vector<double> partial(8, 0.0);
  pool.parallel_chunks(values.size(), 8,
                       [&](std::size_t c, std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i) {
                           partial[c] += values[i];
                         }
                       });
  const double serial = std::accumulate(values.begin(), values.end(), 0.0);
  const double parallel =
      std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(parallel, serial);
}

TEST(ThreadPool, SizeReflectsConstruction) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

// Regression: a throwing chunk used to escape worker_loop → std::terminate,
// and a surviving pool would have deadlocked wait_idle() because the
// in_flight_ decrement was skipped. The first exception must now surface
// on the calling thread, after all chunks completed.
TEST(ThreadPool, ParallelChunksRethrowsFirstException) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_chunks(100, 8,
                           [&](std::size_t chunk, std::size_t, std::size_t) {
                             if (chunk == 5) {
                               throw std::runtime_error("chunk 5 failed");
                             }
                             completed.fetch_add(1);
                           }),
      std::runtime_error);
  // Every non-throwing chunk still ran; nothing was abandoned mid-flight.
  EXPECT_EQ(completed.load(), 7);
  // The pool is still healthy: bookkeeping balanced, later work runs.
  pool.wait_idle();
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelChunksRethrowsCallerChunkException) {
  // Chunk 0 runs on the calling thread; its exception must surface too,
  // and only after the pool-side chunks finished (no dangling tasks).
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_chunks(40, 4,
                           [&](std::size_t chunk, std::size_t, std::size_t) {
                             if (chunk == 0) {
                               throw std::runtime_error("caller chunk failed");
                             }
                             completed.fetch_add(1);
                           }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 3);
  pool.wait_idle();
}

TEST(ThreadPool, SubmitExceptionSurfacesAtWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.submit([] { throw std::runtime_error("task failed"); });
  pool.submit([&ran] { ran.fetch_add(1); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 2);
  // The error is consumed: the next wait_idle is clean.
  pool.wait_idle();
}

// Regression (serving workload shape): a chunk task stolen by the helping
// wait used to deadlock forever if it blocked on wait_idle(), because the
// single in-flight counter included the caller's own still-running task.
// With task-category separation, wait_idle tracks general tasks only and
// a chunk may wait for the general queue to drain. Pre-fix this test
// hangs (ctest timeout); post-fix it completes.
TEST(ThreadPool, WaitIdleInsideChunkTaskDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> general_ran{0};
  pool.submit([&general_ran] { general_ran.fetch_add(1); });
  std::atomic<int> chunks_ran{0};
  pool.parallel_chunks(8, 4,
                       [&](std::size_t, std::size_t, std::size_t) {
                         pool.wait_idle();  // used to hang on itself
                         chunks_ran.fetch_add(1);
                       });
  EXPECT_EQ(general_ran.load(), 1);
  EXPECT_EQ(chunks_ran.load(), 4);
}

// Regression (serving workload shape): a pool task that fans subtasks out
// and waits for just those. With wait_idle this deadlocked on a 1-thread
// pool (the task's own in-flight slot never cleared and nobody was left
// to run the subtasks); TaskGroup waits help drain the queue and track
// only their own batch.
TEST(ThreadPool, NestedSubmitAndGroupWaitFromPoolTask) {
  ThreadPool pool(1);  // one worker: the nested waiter MUST help
  std::atomic<int> inner{0};
  ThreadPool::TaskGroup outer;
  pool.submit(
      [&] {
        ThreadPool::TaskGroup batch;
        for (int i = 0; i < 4; ++i) {
          pool.submit([&inner] { inner.fetch_add(1); }, batch);
        }
        pool.wait(batch);
        EXPECT_EQ(inner.load(), 4);
      },
      outer);
  pool.wait(outer);
  EXPECT_EQ(inner.load(), 4);
}

TEST(ThreadPool, WaitIdleFromInsidePoolTaskExcludesOwnStack) {
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  ThreadPool::TaskGroup outer;
  pool.submit(
      [&] {
        pool.submit([&inner] { inner.fetch_add(1); });
        // Waits for the subtask (helping to run it), not for itself.
        pool.wait_idle();
        EXPECT_EQ(inner.load(), 1);
      },
      outer);
  pool.wait(outer);
  EXPECT_EQ(inner.load(), 1);
}

TEST(ThreadPool, TaskGroupTracksOnlyItsOwnTasks) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> grouped{0};
  // An unrelated slow task must not delay the group wait.
  pool.submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  ThreadPool::TaskGroup group;
  for (int i = 0; i < 8; ++i) {
    pool.submit([&grouped] { grouped.fetch_add(1); }, group);
  }
  pool.wait(group);
  EXPECT_EQ(grouped.load(), 8);
  release.store(true);
  pool.wait_idle();
}

TEST(ThreadPool, TaskGroupRethrowsFirstErrorAndIsReusable) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group;
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); }, group);
  pool.submit([] { throw std::runtime_error("group task failed"); }, group);
  pool.submit([&ran] { ran.fetch_add(1); }, group);
  EXPECT_THROW(pool.wait(group), std::runtime_error);
  EXPECT_EQ(ran.load(), 2);
  // Group errors must NOT leak into the pool-wide slot...
  pool.wait_idle();
  // ...and the group is reusable once drained.
  pool.submit([&ran] { ran.fetch_add(1); }, group);
  pool.wait(group);
  EXPECT_EQ(ran.load(), 3);
}

// Nested fork-join: a pool task calling parallel_chunks on its own pool
// must not deadlock even when run-level tasks occupy every worker — the
// waiting thread helps drain the queue. This is the execution shape of a
// batched campaign with pooled filter chunks.
TEST(ThreadPool, NestedParallelChunksFromPoolTasks) {
  ThreadPool pool(2);  // fewer workers than outer tasks, on purpose
  constexpr std::size_t kOuter = 6;
  constexpr std::size_t kInner = 64;
  std::array<std::array<std::atomic<int>, kInner>, kOuter> touched{};
  for (std::size_t o = 0; o < kOuter; ++o) {
    pool.submit([&pool, &touched, o] {
      pool.parallel_chunks(kInner, 8,
                           [&touched, o](std::size_t, std::size_t begin,
                                         std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               touched[o][i].fetch_add(1);
                             }
                           });
    });
  }
  pool.wait_idle();
  for (const auto& row : touched) {
    for (const auto& cell : row) EXPECT_EQ(cell.load(), 1);
  }
}

}  // namespace
}  // namespace tofmcl
