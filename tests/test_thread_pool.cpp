// Tests for the thread pool and the static chunk partitioning that mirrors
// the GAP9 cluster's per-core particle distribution.

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace tofmcl {
namespace {

TEST(ChunkBegin, PartitionsEvenly) {
  // 10 elements over 4 chunks: sizes 3,3,2,2.
  EXPECT_EQ(chunk_begin(10, 4, 0), 0u);
  EXPECT_EQ(chunk_begin(10, 4, 1), 3u);
  EXPECT_EQ(chunk_begin(10, 4, 2), 6u);
  EXPECT_EQ(chunk_begin(10, 4, 3), 8u);
  EXPECT_EQ(chunk_begin(10, 4, 4), 10u);
}

TEST(ChunkBegin, ExactDivision) {
  for (std::size_t i = 0; i <= 8; ++i) {
    EXPECT_EQ(chunk_begin(64, 8, i), i * 8);
  }
}

TEST(ChunkBegin, CoversWholeRangeProperty) {
  for (std::size_t count : {1u, 7u, 64u, 1000u, 16384u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 8u}) {
      EXPECT_EQ(chunk_begin(count, chunks, 0), 0u);
      EXPECT_EQ(chunk_begin(count, chunks, chunks), count);
      for (std::size_t i = 0; i < chunks; ++i) {
        const std::size_t b = chunk_begin(count, chunks, i);
        const std::size_t e = chunk_begin(count, chunks, i + 1);
        EXPECT_LE(b, e);
        // Chunk sizes differ by at most one.
        const std::size_t size = e - b;
        EXPECT_GE(size + 1, count / chunks);
        EXPECT_LE(size, count / chunks + 1);
      }
    }
  }
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForTouchesEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(touched.size(),
                    [&touched](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelChunksCoverRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(257);
  std::atomic<int> chunks_seen{0};
  pool.parallel_chunks(touched.size(), 8,
                       [&](std::size_t, std::size_t begin, std::size_t end) {
                         chunks_seen.fetch_add(1);
                         for (std::size_t i = begin; i < end; ++i) {
                           touched[i].fetch_add(1);
                         }
                       });
  EXPECT_EQ(chunks_seen.load(), 8);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ChunksClampedToCount) {
  ThreadPool pool(4);
  std::atomic<int> chunks_seen{0};
  pool.parallel_chunks(3, 8,
                       [&](std::size_t, std::size_t, std::size_t) {
                         chunks_seen.fetch_add(1);
                       });
  EXPECT_EQ(chunks_seen.load(), 3);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<double> values(10000);
  std::iota(values.begin(), values.end(), 0.0);
  std::vector<double> partial(8, 0.0);
  pool.parallel_chunks(values.size(), 8,
                       [&](std::size_t c, std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i) {
                           partial[c] += values[i];
                         }
                       });
  const double serial = std::accumulate(values.begin(), values.end(), 0.0);
  const double parallel =
      std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(parallel, serial);
}

TEST(ThreadPool, SizeReflectsConstruction) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

}  // namespace
}  // namespace tofmcl
