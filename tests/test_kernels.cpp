// Backend-equivalence suite for the SIMD observation kernels
// (src/core/kernels/): every supported SIMD backend must reproduce the
// scalar determinism reference within the tolerance gates of the kernel
// contract — max weight ULP delta bounded (zero in practice on x86,
// where the baseline build has no FMA contraction to diverge from) and
// identical pose estimates within ATE-level bounds across full
// motion/observation/resample trajectories.
//
// Positions and yaws must match BITWISE in every scenario: the motion
// phase and resampling are scalar on all backends and both filters
// consume identical per-chunk RNG streams, so only the weight array can
// ever carry backend-dependent rounding.
//
// Registered under the `kernels` ctest label (tests/CMakeLists.txt); CI
// runs `ctest -L kernels` in the dedicated kernels job.

#include "core/kernels/kernel_backend.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/particle_filter.hpp"
#include "map/rasterize.hpp"

namespace tofmcl::core {
namespace {

using sensor::Beam;

// Same world as test_particle_filter: 4×4 m box with a wall at x=2.
map::OccupancyGrid test_grid() {
  map::World w;
  w.add_rectangle({{0.0, 0.0}, {4.0, 4.0}});
  w.add_segment({2.0, 0.0}, {2.0, 2.5});
  map::RasterizeOptions opt;
  opt.resolution = 0.05;
  return map::rasterize(w, opt);
}

MclConfig small_config(std::size_t n = 512) {
  MclConfig cfg;
  cfg.num_particles = n;
  cfg.seed = 77;
  return cfg;
}

Beam beam_at(double azimuth, double range) {
  Beam b;
  b.azimuth_body = azimuth;
  b.range_m = static_cast<float>(range);
  b.endpoint_body = Vec2f{static_cast<float>(range * std::cos(azimuth)),
                          static_cast<float>(range * std::sin(azimuth))};
  return b;
}

/// Tolerance gate on the weight array. Zero on x86 (no contraction in
/// the baseline build, and F16C matches the software Half bit for bit);
/// a small allowance covers aarch64, where -ffp-contract may fuse the
/// scalar reference's multiply-adds.
constexpr std::int64_t kMaxWeightUlp = 8;

/// Ordered-integer distance between two binary32 values (the usual
/// sign-magnitude → two's-complement-ordered trick).
std::int64_t ulp_delta(float a, float b) {
  const auto ordered = [](float v) -> std::int64_t {
    const auto bits = std::bit_cast<std::uint32_t>(v);
    const auto mag = static_cast<std::int64_t>(bits & 0x7FFFFFFFu);
    return (bits & 0x80000000u) == 0 ? mag : -mag;
  };
  const std::int64_t d = ordered(a) - ordered(b);
  return d < 0 ? -d : d;
}

std::int64_t ulp_delta(Half a, Half b) {
  const auto ordered = [](Half h) -> std::int64_t {
    const auto bits = static_cast<std::int64_t>(h.bits());
    return (bits & 0x8000) == 0 ? bits : -(bits & 0x7FFF);
  };
  const std::int64_t d = ordered(a) - ordered(b);
  return d < 0 ? -d : d;
}

/// Asserts the backend contract between two filters that consumed the
/// same inputs: bitwise-equal poses/positions, ULP-bounded weights.
template <typename Traits>
void expect_state_matches(const ParticleFilter<Traits>& scalar_pf,
                          const ParticleFilter<Traits>& simd_pf,
                          const char* where) {
  const auto a = scalar_pf.particles();
  const auto b = simd_pf.particles();
  ASSERT_EQ(a.size(), b.size()) << where;
  std::int64_t max_ulp = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(static_cast<float>(a[i].x), static_cast<float>(b[i].x))
        << where << " particle " << i;
    ASSERT_EQ(static_cast<float>(a[i].y), static_cast<float>(b[i].y))
        << where << " particle " << i;
    ASSERT_EQ(static_cast<float>(a[i].yaw), static_cast<float>(b[i].yaw))
        << where << " particle " << i;
    max_ulp = std::max(max_ulp, ulp_delta(a[i].weight, b[i].weight));
  }
  EXPECT_LE(max_ulp, kMaxWeightUlp) << where;
}

/// SIMD backends available on this host (empty → suite self-skips).
std::vector<kernels::KernelBackend> simd_backends() {
  std::vector<kernels::KernelBackend> out;
  for (const auto b :
       {kernels::KernelBackend::kAvx2, kernels::KernelBackend::kNeon}) {
    if (kernels::backend_supported(b)) out.push_back(b);
  }
  return out;
}

TEST(Kernels, BackendIntrospectionIsConsistent) {
  // Scalar is always compiled and always supported.
  EXPECT_TRUE(kernels::backend_compiled(kernels::KernelBackend::kScalar));
  EXPECT_TRUE(kernels::backend_supported(kernels::KernelBackend::kScalar));
  // Supported implies compiled, and the default/best backend is usable.
  for (const auto b :
       {kernels::KernelBackend::kAvx2, kernels::KernelBackend::kNeon}) {
    if (kernels::backend_supported(b)) {
      EXPECT_TRUE(kernels::backend_compiled(b));
    }
  }
  EXPECT_TRUE(kernels::backend_supported(kernels::best_supported_backend()));
  EXPECT_TRUE(kernels::backend_supported(kernels::default_backend()));
  EXPECT_STREQ(kernels::to_string(kernels::KernelBackend::kScalar), "scalar");
  EXPECT_STREQ(kernels::to_string(kernels::KernelBackend::kAvx2), "avx2");
  EXPECT_STREQ(kernels::to_string(kernels::KernelBackend::kNeon), "neon");
}

// Randomized configurations: particle counts off the vector-width
// multiple (tail handling), varied beam decks, varied observation-model
// shapes. One motion+observation step from identical state per trial so
// weight deltas cannot amplify through resampling before being measured.
TEST(Kernels, RandomizedConfigsMatchScalar) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const auto grid = test_grid();
  const map::QuantizedDistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  Rng rng(2024);

  for (const auto backend : backends) {
    for (int trial = 0; trial < 8; ++trial) {
      MclConfig cfg = small_config(65 + rng.uniform_index(400));
      cfg.sigma_obs = rng.uniform(0.05, 0.3);
      cfg.z_hit = rng.uniform(0.5, 0.95);
      cfg.z_rand = 1.0 - cfg.z_hit;
      cfg.seed = 100 + static_cast<std::uint64_t>(trial);

      std::vector<Beam> beams(3 + rng.uniform_index(30));
      for (auto& b : beams) {
        b = beam_at(rng.uniform(-kPi, kPi), rng.uniform(0.2, 1.4));
      }
      const Pose2 init{rng.uniform(0.5, 3.5), rng.uniform(0.5, 3.5),
                       rng.uniform(-kPi, kPi)};

      ParticleFilter<Fp32QmTraits> scalar_pf(dm, cfg, exec);
      ParticleFilter<Fp32QmTraits> simd_pf(dm, cfg, exec);
      simd_pf.set_kernel_backend(backend);
      scalar_pf.init_gaussian(init, 0.2, 0.6);
      simd_pf.init_gaussian(init, 0.2, 0.6);

      scalar_pf.motion_update(Pose2{0.05, 0.01, 0.02});
      simd_pf.motion_update(Pose2{0.05, 0.01, 0.02});
      scalar_pf.observation_update(beams);
      simd_pf.observation_update(beams);
      expect_state_matches(scalar_pf, simd_pf, "randomized trial");
    }
  }
}

// Tiny particle counts: everything below one vector block must run
// through the scalar tail and still match, including N < lane count.
TEST(Kernels, TailOnlyCountsMatchScalar) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const auto grid = test_grid();
  const map::QuantizedDistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  const std::vector<Beam> beams{beam_at(0.0, 1.0), beam_at(0.4, 1.2)};

  for (const auto backend : backends) {
    for (const std::size_t n : {1u, 3u, 7u, 8u, 9u, 15u, 17u}) {
      MclConfig cfg = small_config(n);
      cfg.chunks = 1;  // chunks may not exceed the particle count
      ParticleFilter<Fp32QmTraits> scalar_pf(dm, cfg, exec);
      ParticleFilter<Fp32QmTraits> simd_pf(dm, cfg, exec);
      simd_pf.set_kernel_backend(backend);
      scalar_pf.init_gaussian({1.0, 1.0, 0.0}, 0.3, 0.5);
      simd_pf.init_gaussian({1.0, 1.0, 0.0}, 0.3, 0.5);
      scalar_pf.observation_update(beams);
      simd_pf.observation_update(beams);
      expect_state_matches(scalar_pf, simd_pf, "tail count");
    }
  }
}

// The 128-beam near-underflow regime of the injection-monitor tests:
// per-beam factors ≈ 0.2, so the raw 128-beam product underflows fp32 by
// far and survival depends on the per-beam normalizer. The SIMD product
// must track the scalar one through that cliff.
TEST(Kernels, NearUnderflow128BeamsMatchScalar) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const auto grid = test_grid();
  const map::QuantizedDistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  MclConfig cfg = small_config(251);  // off the lane multiple on purpose
  cfg.z_hit = 0.18;
  cfg.z_rand = 0.02;
  cfg.sigma_odom_xy = 0.0;
  cfg.sigma_odom_yaw = 0.0;
  const std::vector<Beam> matched(128, beam_at(0.0, 1.0));

  for (const auto backend : backends) {
    ParticleFilter<Fp32QmTraits> scalar_pf(dm, cfg, exec);
    ParticleFilter<Fp32QmTraits> simd_pf(dm, cfg, exec);
    simd_pf.set_kernel_backend(backend);
    scalar_pf.init_gaussian({1.0, 1.0, 0.0}, 0.0, 0.0);
    simd_pf.init_gaussian({1.0, 1.0, 0.0}, 0.0, 0.0);
    scalar_pf.observation_update(matched);
    simd_pf.observation_update(matched);
    expect_state_matches(scalar_pf, simd_pf, "128 beams");
    // The normalized product actually survived (the scenario is live).
    EXPECT_GT(static_cast<float>(simd_pf.particles()[0].weight), 1e-3f);
  }
}

// Short-return mixture + novelty gating over a multi-round trajectory:
// the per-beam aux state (floor, normalizer, gate verdict) feeds the
// SIMD path through BeamSweepView and must produce the same weights and
// the same gate decisions round after round.
TEST(Kernels, MixtureAndGatingMatchScalar) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const auto grid = test_grid();
  const map::QuantizedDistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  MclConfig cfg = small_config(333);
  cfg.z_short = 0.4;
  cfg.lambda_short = 1.3;
  cfg.enable_novelty_gating = true;
  const std::vector<Beam> beams{beam_at(0.0, 1.0), beam_at(0.0, 0.3),
                                beam_at(kPi, 0.9)};

  for (const auto backend : backends) {
    ParticleFilter<Fp32QmTraits> scalar_pf(dm, cfg, exec);
    ParticleFilter<Fp32QmTraits> simd_pf(dm, cfg, exec);
    simd_pf.set_kernel_backend(backend);
    scalar_pf.init_gaussian({1.0, 1.0, 0.0}, 0.1, 0.05);
    simd_pf.init_gaussian({1.0, 1.0, 0.0}, 0.1, 0.05);

    for (int round = 0; round < 5; ++round) {
      scalar_pf.motion_observation_update(Pose2{0.05, 0.01, 0.02}, beams);
      simd_pf.motion_observation_update(Pose2{0.05, 0.01, 0.02}, beams);
      expect_state_matches(scalar_pf, simd_pf, "mixture round");
      ASSERT_EQ(scalar_pf.workload().gated_beams,
                simd_pf.workload().gated_beams)
          << "round " << round;
      scalar_pf.resample();
      simd_pf.resample();
      scalar_pf.compute_pose();
      simd_pf.compute_pose();
    }
    // The gate must actually have fired for this test to mean anything.
    EXPECT_GT(simd_pf.workload().gated_beams, 0u);
  }
}

// Full trajectory with KLD-adaptive particle counts: the budget shrinks
// as the cloud converges and snaps back to the full budget on a recovery
// injection. The backends must agree on every resize decision (sizes are
// derived from the weights) and end within ATE-level pose bounds.
TEST(Kernels, AdaptiveShrinkAndSnapBackMatchScalar) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const auto grid = test_grid();
  const map::QuantizedDistanceMap dm(grid, 1.5);
  const auto support = grid.free_cell_centers();
  SerialExecutor exec;
  MclConfig cfg = small_config(1024);
  cfg.adaptive_particles = true;
  cfg.min_particles = 128;
  cfg.sigma_odom_xy = 0.0;
  cfg.sigma_odom_yaw = 0.0;
  const std::vector<Beam> matched{beam_at(0.0, 1.0), beam_at(kPi, 1.0)};
  const std::vector<Beam> teleport{beam_at(0.0, 0.4), beam_at(kPi, 1.6)};

  for (const auto backend : backends) {
    ParticleFilter<Fp32QmTraits> scalar_pf(dm, cfg, exec);
    ParticleFilter<Fp32QmTraits> simd_pf(dm, cfg, exec);
    simd_pf.set_kernel_backend(backend);
    for (auto* pf : {&scalar_pf, &simd_pf}) {
      pf->init_gaussian({1.0, 1.0, 0.0}, 0.2, 0.3);
      pf->set_injection_support(support, 0.025);
    }

    std::size_t min_size = cfg.num_particles;
    std::size_t max_size_after_shrink = 0;
    const auto step = [&](const std::vector<Beam>& beams) {
      scalar_pf.observation_update(beams);
      simd_pf.observation_update(beams);
      expect_state_matches(scalar_pf, simd_pf, "adaptive step");
      scalar_pf.resample();
      simd_pf.resample();
      scalar_pf.compute_pose();
      simd_pf.compute_pose();
      // The Localizer's correction order: adapt after resample + pose.
      scalar_pf.adapt_particle_count();
      simd_pf.adapt_particle_count();
      ASSERT_EQ(scalar_pf.size(), simd_pf.size());
      min_size = std::min(min_size, simd_pf.size());
    };
    for (int i = 0; i < 10; ++i) step(matched);   // converge → shrink
    EXPECT_LT(min_size, cfg.num_particles);
    // Kidnap: recovery injection fires and snaps the budget straight back
    // to the full count at some point during the recovery (the filter may
    // legitimately re-converge and shrink again before the loop ends).
    for (int i = 0; i < 8; ++i) {
      step(teleport);
      max_size_after_shrink = std::max(max_size_after_shrink, simd_pf.size());
    }
    EXPECT_EQ(max_size_after_shrink, cfg.num_particles);

    const PoseEstimate ea = scalar_pf.estimate();
    const PoseEstimate eb = simd_pf.estimate();
    EXPECT_NEAR(ea.pose.x(), eb.pose.x(), 0.05);
    EXPECT_NEAR(ea.pose.y(), eb.pose.y(), 0.05);
    EXPECT_NEAR(ea.pose.yaw, eb.pose.yaw, 0.05);
  }
}

// Opt-in fp16 weight storage (MclConfig::weight_precision): the SIMD
// round-trip (F16C on x86) must agree with the scalar software rounding
// for every weight.
TEST(Kernels, Fp16WeightPrecisionMatchesScalar) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const auto grid = test_grid();
  const map::QuantizedDistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  MclConfig cfg = small_config(300);
  cfg.weight_precision = WeightPrecision::kFp16;
  const std::vector<Beam> beams{beam_at(0.0, 1.0), beam_at(0.3, 0.8),
                                beam_at(-0.4, 1.3)};

  for (const auto backend : backends) {
    ParticleFilter<Fp32QmTraits> scalar_pf(dm, cfg, exec);
    ParticleFilter<Fp32QmTraits> simd_pf(dm, cfg, exec);
    simd_pf.set_kernel_backend(backend);
    scalar_pf.init_gaussian({1.2, 1.4, 0.2}, 0.3, 0.5);
    simd_pf.init_gaussian({1.2, 1.4, 0.2}, 0.3, 0.5);
    for (int round = 0; round < 3; ++round) {
      scalar_pf.motion_observation_update(Pose2{0.05, 0.0, 0.01}, beams);
      simd_pf.motion_observation_update(Pose2{0.05, 0.0, 0.01}, beams);
      expect_state_matches(scalar_pf, simd_pf, "fp16-store round");
      // Every weight sits exactly on a binary16 value in BOTH filters.
      for (const auto& p : simd_pf.particles()) {
        const float w = static_cast<float>(p.weight);
        EXPECT_EQ(w, half_bits_to_float(float_to_half_bits(w)));
      }
      scalar_pf.resample();
      simd_pf.resample();
    }
  }
}

// Native fp16 particle storage (Fp16QmTraits): weights are halfs, the
// SIMD path converts through F16C/software per block and must stay
// within the half-ULP gate.
TEST(Kernels, Fp16QmTraitsMatchScalar) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const auto grid = test_grid();
  const map::QuantizedDistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  const MclConfig cfg = small_config(300);
  const std::vector<Beam> beams{beam_at(0.0, 1.0), beam_at(0.5, 1.2),
                                beam_at(kPi, 1.7)};

  for (const auto backend : backends) {
    ParticleFilter<Fp16QmTraits> scalar_pf(dm, cfg, exec);
    ParticleFilter<Fp16QmTraits> simd_pf(dm, cfg, exec);
    simd_pf.set_kernel_backend(backend);
    scalar_pf.init_gaussian({1.0, 1.0, 0.0}, 0.3, 0.5);
    simd_pf.init_gaussian({1.0, 1.0, 0.0}, 0.3, 0.5);
    for (int round = 0; round < 3; ++round) {
      scalar_pf.motion_observation_update(Pose2{0.05, 0.01, 0.02}, beams);
      simd_pf.motion_observation_update(Pose2{0.05, 0.01, 0.02}, beams);
      expect_state_matches(scalar_pf, simd_pf, "fp16qm round");
      scalar_pf.resample();
      simd_pf.resample();
    }
  }
}

// The Direct (float-EDT) observation model has no SIMD path by design —
// requesting a SIMD backend on Fp32Traits must be a harmless no-op that
// stays bit-identical to the scalar backend.
TEST(Kernels, DirectModelIgnoresBackendRequest) {
  const auto grid = test_grid();
  const map::DistanceMap dm(grid, 1.5);
  SerialExecutor exec;
  const MclConfig cfg = small_config(200);
  const std::vector<Beam> beams{beam_at(0.0, 1.0), beam_at(0.4, 1.2)};

  ParticleFilter<Fp32Traits> scalar_pf(dm, cfg, exec);
  ParticleFilter<Fp32Traits> simd_pf(dm, cfg, exec);
  simd_pf.set_kernel_backend(kernels::best_supported_backend());
  scalar_pf.set_kernel_backend(kernels::KernelBackend::kScalar);
  scalar_pf.init_gaussian({1.0, 1.0, 0.0}, 0.3, 0.5);
  simd_pf.init_gaussian({1.0, 1.0, 0.0}, 0.3, 0.5);
  for (int round = 0; round < 3; ++round) {
    scalar_pf.motion_observation_update(Pose2{0.05, 0.01, 0.02}, beams);
    simd_pf.motion_observation_update(Pose2{0.05, 0.01, 0.02}, beams);
    const auto a = scalar_pf.particles();
    const auto b = simd_pf.particles();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(static_cast<float>(a[i].weight),
                static_cast<float>(b[i].weight))
          << i;
    }
    scalar_pf.resample();
    simd_pf.resample();
  }
}

}  // namespace
}  // namespace tofmcl::core
