// Statistical and determinism tests for the xoshiro256++ RNG wrapper.
// Determinism across runs underpins the reproducibility of every
// experiment in the bench suite.

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/stats.hpp"

namespace tofmcl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, GaussianMoments) {
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaledMoments) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.gaussian(3.0, 0.5));
  EXPECT_NEAR(stats.mean(), 3.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 0.5, 0.02);
}

TEST(Rng, GaussianTailFractions) {
  // ~68.3% within 1σ, ~95.4% within 2σ.
  Rng rng(8);
  int within1 = 0;
  int within2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = std::abs(rng.gaussian());
    if (g < 1.0) ++within1;
    if (g < 2.0) ++within2;
  }
  EXPECT_NEAR(static_cast<double>(within1) / n, 0.6827, 0.01);
  EXPECT_NEAR(static_cast<double>(within2) / n, 0.9545, 0.01);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, UniformIndexSingleton) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(12);
  Rng child = parent.fork();
  // The child stream should not simply replay the parent.
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NoShortCycles) {
  // A tiny state-space bug would show up as repeated outputs quickly.
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace tofmcl
