// Tests for the continuous line-segment world: exact raycasting geometry,
// clearance queries and the measurement-error perturbation.

#include "map/world.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/rng.hpp"

namespace tofmcl::map {
namespace {

TEST(World, RaycastHitsPerpendicularWall) {
  World w;
  w.add_segment({2.0, -1.0}, {2.0, 1.0});
  const auto hit = w.raycast({0.0, 0.0}, 0.0, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->distance, 2.0, 1e-12);
  EXPECT_NEAR(hit->point.x, 2.0, 1e-12);
  EXPECT_NEAR(hit->point.y, 0.0, 1e-12);
  EXPECT_EQ(hit->segment, 0u);
}

TEST(World, RaycastMissesBehind) {
  World w;
  w.add_segment({2.0, -1.0}, {2.0, 1.0});
  EXPECT_FALSE(w.raycast({0.0, 0.0}, kPi, 10.0).has_value());
}

TEST(World, RaycastRespectsMaxRange) {
  World w;
  w.add_segment({5.0, -1.0}, {5.0, 1.0});
  EXPECT_FALSE(w.raycast({0.0, 0.0}, 0.0, 4.0).has_value());
  EXPECT_TRUE(w.raycast({0.0, 0.0}, 0.0, 6.0).has_value());
}

TEST(World, RaycastPicksNearestOfManyWalls) {
  World w;
  w.add_segment({3.0, -1.0}, {3.0, 1.0});
  w.add_segment({1.5, -1.0}, {1.5, 1.0});
  w.add_segment({4.0, -1.0}, {4.0, 1.0});
  const auto hit = w.raycast({0.0, 0.0}, 0.0, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->distance, 1.5, 1e-12);
  EXPECT_EQ(hit->segment, 1u);
}

TEST(World, RaycastAtAngle) {
  World w;
  w.add_segment({0.0, 2.0}, {10.0, 2.0});  // horizontal wall at y=2
  const auto hit = w.raycast({1.0, 0.0}, kPi / 4.0, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->distance, 2.0 * std::numbers::sqrt2, 1e-9);
  EXPECT_NEAR(hit->point.x, 3.0, 1e-9);
  EXPECT_NEAR(hit->point.y, 2.0, 1e-9);
}

TEST(World, RaycastParallelToWallMisses) {
  World w;
  w.add_segment({0.0, 1.0}, {10.0, 1.0});
  EXPECT_FALSE(w.raycast({0.0, 0.0}, 0.0, 20.0).has_value());
}

TEST(World, RaycastSegmentEndpointInclusive) {
  World w;
  w.add_segment({2.0, 0.0}, {2.0, 1.0});
  // Ray aimed exactly at the segment's lower endpoint.
  const auto hit = w.raycast({0.0, 0.0}, 0.0, 10.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->distance, 2.0, 1e-12);
}

TEST(World, RectangleRaycastFromInside) {
  World w;
  w.add_rectangle({{0.0, 0.0}, {4.0, 2.0}});
  EXPECT_EQ(w.segments().size(), 4u);
  const Vec2 center{2.0, 1.0};
  const auto right = w.raycast(center, 0.0, 10.0);
  const auto up = w.raycast(center, kPi / 2.0, 10.0);
  const auto left = w.raycast(center, kPi, 10.0);
  const auto down = w.raycast(center, -kPi / 2.0, 10.0);
  ASSERT_TRUE(right && up && left && down);
  EXPECT_NEAR(right->distance, 2.0, 1e-12);
  EXPECT_NEAR(up->distance, 1.0, 1e-12);
  EXPECT_NEAR(left->distance, 2.0, 1e-12);
  EXPECT_NEAR(down->distance, 1.0, 1e-12);
}

TEST(World, PolylineSegmentCount) {
  World w;
  w.add_polyline({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(w.segments().size(), 3u);
}

TEST(World, AddWorldWithOffset) {
  World a;
  a.add_segment({0.0, 0.0}, {1.0, 0.0});
  World b;
  b.add_world(a, {10.0, 5.0});
  ASSERT_EQ(b.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(b.segments()[0].a.x, 10.0);
  EXPECT_DOUBLE_EQ(b.segments()[0].b.x, 11.0);
  EXPECT_DOUBLE_EQ(b.segments()[0].a.y, 5.0);
}

TEST(World, Bounds) {
  World w;
  w.add_segment({-1.0, 2.0}, {3.0, -4.0});
  w.add_segment({0.0, 5.0}, {1.0, 1.0});
  const Aabb b = w.bounds();
  EXPECT_DOUBLE_EQ(b.min.x, -1.0);
  EXPECT_DOUBLE_EQ(b.min.y, -4.0);
  EXPECT_DOUBLE_EQ(b.max.x, 3.0);
  EXPECT_DOUBLE_EQ(b.max.y, 5.0);
}

TEST(World, Clearance) {
  World w;
  w.add_segment({0.0, 0.0}, {4.0, 0.0});
  EXPECT_NEAR(w.clearance({2.0, 1.5}), 1.5, 1e-12);
  EXPECT_NEAR(w.clearance({-3.0, 4.0}), 5.0, 1e-12);  // to endpoint (0,0)
  EXPECT_NEAR(w.clearance({2.0, 0.0}), 0.0, 1e-12);
  EXPECT_TRUE(std::isinf(World{}.clearance({0.0, 0.0})));
}

TEST(World, PerturbedPreservesTopology) {
  World w;
  w.add_rectangle({{0.0, 0.0}, {4.0, 4.0}});
  Rng rng(3);
  const World p = w.perturbed(rng, 0.02);
  ASSERT_EQ(p.segments().size(), w.segments().size());
  double max_shift = 0.0;
  for (std::size_t i = 0; i < p.segments().size(); ++i) {
    max_shift = std::max(max_shift,
                         (p.segments()[i].a - w.segments()[i].a).norm());
    max_shift = std::max(max_shift,
                         (p.segments()[i].b - w.segments()[i].b).norm());
  }
  EXPECT_GT(max_shift, 0.0);
  EXPECT_LT(max_shift, 0.2);  // 10σ: overwhelmingly likely
}

TEST(World, PerturbedZeroSigmaIsIdentity) {
  World w;
  w.add_segment({1.0, 2.0}, {3.0, 4.0});
  Rng rng(4);
  const World p = w.perturbed(rng, 0.0);
  EXPECT_DOUBLE_EQ(p.segments()[0].a.x, 1.0);
  EXPECT_DOUBLE_EQ(p.segments()[0].b.y, 4.0);
}

TEST(World, RaycastConsistencyProperty) {
  // Distance reported must equal the Euclidean distance to the hit point,
  // and the hit point must lie on the segment.
  World w;
  w.add_rectangle({{-2.0, -2.0}, {2.0, 2.0}});
  w.add_segment({0.0, -1.0}, {1.0, 1.0});
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Vec2 origin{rng.uniform(-1.8, 1.8), rng.uniform(-1.8, 1.8)};
    const double angle = rng.uniform(-kPi, kPi);
    const auto hit = w.raycast(origin, angle, 10.0);
    ASSERT_TRUE(hit.has_value());  // inside a closed box something is hit
    EXPECT_NEAR((hit->point - origin).norm(), hit->distance, 1e-9);
    const Segment& s = w.segments()[hit->segment];
    const Vec2 e = s.b - s.a;
    const double cross = (hit->point - s.a).cross(e);
    EXPECT_NEAR(cross, 0.0, 1e-7);  // collinear with the segment
  }
}

}  // namespace
}  // namespace tofmcl::map
