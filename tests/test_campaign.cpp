// Tests for the batched campaign engine: matrix expansion, deterministic
// seeding, shared-resource reuse, execution-policy bit-exactness (the
// engine's core guarantee) and the sweep adapter's equivalence with a
// hand-rolled legacy replay.

#include "eval/campaign.hpp"

#include <gtest/gtest.h>

#include <set>

#include "eval/experiment.hpp"

namespace tofmcl::eval {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.worlds = {{CampaignWorld::kSmallMaze, 1}};
  spec.precisions = {core::Precision::kFp32Qm};
  spec.mcl.num_particles = 512;
  spec.master_seed = 99;
  return spec;
}

void expect_bit_identical(const CampaignResult& a, const CampaignResult& b,
                          const char* label) {
  ASSERT_EQ(a.runs.size(), b.runs.size()) << label;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const CampaignRunResult& ra = a.runs[i];
    const CampaignRunResult& rb = b.runs[i];
    EXPECT_EQ(ra.updates_run, rb.updates_run) << label << " run " << i;
    EXPECT_EQ(ra.particle_beam_ops, rb.particle_beam_ops)
        << label << " run " << i;
    ASSERT_EQ(ra.errors.size(), rb.errors.size()) << label << " run " << i;
    for (std::size_t j = 0; j < ra.errors.size(); ++j) {
      EXPECT_EQ(ra.errors[j].t, rb.errors[j].t) << label;
      EXPECT_EQ(ra.errors[j].pos_error, rb.errors[j].pos_error) << label;
      EXPECT_EQ(ra.errors[j].yaw_error, rb.errors[j].yaw_error) << label;
    }
    EXPECT_EQ(ra.metrics.converged, rb.metrics.converged) << label;
    EXPECT_EQ(ra.metrics.ate_m, rb.metrics.ate_m) << label;
    EXPECT_EQ(ra.final_pos_error_m, rb.final_pos_error_m) << label;
  }
}

TEST(CampaignExpansion, CoversTheFullMatrixDeterministically) {
  CampaignSpec spec;
  spec.worlds = {{CampaignWorld::kSmallMaze, 0},
                 {CampaignWorld::kLargeMaze, 3}};
  spec.inits = {{}, {InitSpec::Mode::kTracking, 0.2, 0.2, 2}};
  spec.precisions = {core::Precision::kFp32, core::Precision::kFp16Qm};
  spec.sensing = {{}, {sensor::ZoneMode::k4x4, 60.0, 0.05, false}};
  spec.seeds_per_cell = 3;
  spec.particle_counts = {256, 1024};

  const std::vector<RunSpec> runs = expand_runs(spec);
  EXPECT_EQ(runs.size(), 2u * 2u * 2u * 2u * 3u * 2u);

  // Seeds are pure functions of the coordinates: expansion is repeatable,
  // distinct cells get distinct filter seeds, and runs sharing
  // (world, seed index) share their data seed — that is what lets them
  // share one generated dataset.
  const std::vector<RunSpec> again = expand_runs(spec);
  std::set<std::uint64_t> mcl_seeds;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].data_seed, again[i].data_seed);
    EXPECT_EQ(runs[i].mcl_seed, again[i].mcl_seed);
    mcl_seeds.insert(runs[i].mcl_seed);
    for (std::size_t j = 0; j < i; ++j) {
      if (runs[j].world_index == runs[i].world_index &&
          runs[j].seed_index == runs[i].seed_index) {
        EXPECT_EQ(runs[j].data_seed, runs[i].data_seed);
      }
    }
  }
  EXPECT_EQ(mcl_seeds.size(), runs.size());  // no filter-seed collisions

  // use_rear_sensor rides the sensing dimension into the run spec.
  for (const RunSpec& run : runs) {
    EXPECT_EQ(run.use_rear_sensor,
              spec.sensing[run.sensing_index].use_rear_sensor);
  }
}

TEST(CampaignExpansion, RejectsEmptyDimensions) {
  CampaignSpec spec = small_spec();
  spec.worlds.clear();
  EXPECT_THROW(expand_runs(spec), PreconditionError);
  spec = small_spec();
  spec.seeds_per_cell = 0;
  EXPECT_THROW(expand_runs(spec), PreconditionError);
  spec = small_spec();
  spec.precisions.clear();
  EXPECT_THROW(expand_runs(spec), PreconditionError);
}

TEST(Campaign, SetRunsValidatesIndices) {
  Campaign campaign(small_spec());
  RunSpec bad;
  bad.world_index = 7;
  EXPECT_THROW(campaign.set_runs({bad}), PreconditionError);
  bad.world_index = 0;
  bad.sensing_index = 3;
  EXPECT_THROW(campaign.set_runs({bad}), PreconditionError);
}

// The engine's core guarantee: serial run-at-a-time, batched, and batched
// with pooled filter chunks all produce the SAME bits.
TEST(Campaign, ExecutionPolicyIsBitExact) {
  CampaignSpec spec = small_spec();
  spec.seeds_per_cell = 2;
  spec.precisions = {core::Precision::kFp32Qm, core::Precision::kFp16Qm};
  Campaign campaign(std::move(spec));
  ASSERT_EQ(campaign.runs().size(), 4u);

  CampaignOptions serial;
  serial.batched = false;
  const CampaignResult a = campaign.run(serial);

  CampaignOptions batched;
  batched.batched = true;
  batched.threads = 3;
  const CampaignResult b = campaign.run(batched);
  expect_bit_identical(a, b, "serial-vs-batched");

  CampaignOptions nested = batched;
  nested.pooled_filter_chunks = true;
  const CampaignResult c = campaign.run(nested);
  expect_bit_identical(a, c, "serial-vs-nested");

  // And the runs actually did something.
  for (const CampaignRunResult& run : a.runs) {
    EXPECT_GT(run.updates_run, 10u);
    EXPECT_GT(run.errors.size(), 10u);
    EXPECT_GT(run.particle_beam_ops, 0u);
    EXPECT_EQ(run.dropped_frames, 0u);
  }
  EXPECT_GT(a.horizon_s, 5.0);
}

TEST(Campaign, TrackingInitConvergesAndKidnappedRecovers) {
  CampaignSpec spec = small_spec();
  spec.worlds = {{CampaignWorld::kSmallMaze, 0}};
  spec.inits = {{InitSpec::Mode::kTracking, 0.2, 0.2, 2},
                {InitSpec::Mode::kKidnapped, 0.2, 0.2, 2}};
  spec.mcl.num_particles = 4096;
  Campaign campaign(std::move(spec));
  const CampaignResult result = campaign.run({});
  ASSERT_EQ(result.runs.size(), 2u);

  const CampaignRunResult& tracking = result.runs[0];
  EXPECT_TRUE(tracking.metrics.converged);
  EXPECT_EQ(tracking.kidnap_time_s, 0.0);

  // The kidnapped run's trace spans both legs; convergence is judged on
  // the post-teleport segment, scenario-matrix style.
  const CampaignRunResult& kidnapped = result.runs[1];
  EXPECT_GT(kidnapped.kidnap_time_s, 1.0);
  std::vector<ErrorSample> post;
  for (const ErrorSample& e : kidnapped.errors) {
    if (e.t > kidnapped.kidnap_time_s) post.push_back(e);
  }
  ASSERT_GT(post.size(), 10u);
  const RunMetrics post_metrics = evaluate_run(post);
  EXPECT_TRUE(post_metrics.converged);
}

// The worldgen acceptance gate: a ≥3-world × {static, dynamic-obstacle}
// matrix of GENERATED environments runs deterministically — same seeds
// produce bit-identical results whatever the execution policy — and every
// cell does real work.
TEST(Campaign, GeneratedWorldsMatrixIsBitExact) {
  CampaignSpec spec;
  spec.worlds = {{CampaignWorld::kOffice, 0, 3},
                 {CampaignWorld::kWarehouse, 0, 2},
                 {CampaignWorld::kLoopCorridor, 2, 1}};
  spec.inits = {{InitSpec::Mode::kTracking, 0.2, 0.2, 2}};
  spec.precisions = {core::Precision::kFp32Qm};
  // Static axis and a dynamic-obstacle degradation axis: two crossing
  // pedestrians composited into the rendered frames of every world.
  spec.sensing = {{},
                  {sensor::ZoneMode::k8x8, 15.0, 0.01, true, 2, 1.2}};
  spec.mcl.num_particles = 512;
  spec.master_seed = 17;
  Campaign campaign(std::move(spec));
  ASSERT_EQ(campaign.runs().size(), 6u);  // 3 worlds × {static, dynamic}

  CampaignOptions serial;
  serial.batched = false;
  const CampaignResult a = campaign.run(serial);

  CampaignOptions batched;
  batched.batched = true;
  batched.threads = 4;
  const CampaignResult b = campaign.run(batched);
  expect_bit_identical(a, b, "generated-worlds serial-vs-batched");

  CampaignOptions nested = batched;
  nested.pooled_filter_chunks = true;
  const CampaignResult c = campaign.run(nested);
  expect_bit_identical(a, c, "generated-worlds serial-vs-nested");

  for (const CampaignRunResult& run : a.runs) {
    EXPECT_GT(run.updates_run, 10u);
    EXPECT_GT(run.errors.size(), 10u);
    EXPECT_EQ(run.dropped_frames, 0u);
  }
  // The dynamic cells replay DIFFERENT data than their static twins
  // (same flight, different beams): compare the first static/dynamic pair.
  EXPECT_NE(a.runs[0].metrics.ate_m, a.runs[1].metrics.ate_m);
}

// The observation-model robustness axis must be a pure ADDITION: a
// campaign whose axis holds the default entry (seed model) plus a mixture
// entry produces — in its baseline rows — exactly the bits of the same
// campaign with no axis at all. Seeds are shared across the axis by
// design (paired comparison), so this also pins the expansion order.
TEST(Campaign, ObservationAxisBaselineRowsMatchNoAxisBitwise) {
  CampaignSpec no_axis = small_spec();
  no_axis.seeds_per_cell = 2;
  Campaign reference(no_axis);
  const CampaignResult ref = reference.run({});

  CampaignSpec with_axis = small_spec();
  with_axis.seeds_per_cell = 2;
  with_axis.observation = {
      {},  // entry 0: the seed model (z_short = 0, gating off)
      {0.5, 1.0, true, 0.5, 0.85}};
  Campaign campaign(with_axis);
  const CampaignResult both = campaign.run({});
  ASSERT_EQ(both.runs.size(), 2 * ref.runs.size());

  // Expansion: observation entries are adjacent blocks inside each
  // (world, init, precision, sensing) cell, seeds innermost.
  std::vector<const CampaignRunResult*> baseline_rows;
  std::vector<const CampaignRunResult*> mixture_rows;
  for (const CampaignRunResult& run : both.runs) {
    (run.spec.observation_index == 0 ? baseline_rows : mixture_rows)
        .push_back(&run);
  }
  ASSERT_EQ(baseline_rows.size(), ref.runs.size());
  ASSERT_EQ(mixture_rows.size(), ref.runs.size());
  for (std::size_t i = 0; i < ref.runs.size(); ++i) {
    const CampaignRunResult& a = ref.runs[i];
    const CampaignRunResult& b = *baseline_rows[i];
    EXPECT_EQ(a.spec.data_seed, b.spec.data_seed) << i;
    EXPECT_EQ(a.spec.mcl_seed, b.spec.mcl_seed) << i;
    EXPECT_EQ(a.updates_run, b.updates_run) << i;
    ASSERT_EQ(a.errors.size(), b.errors.size()) << i;
    for (std::size_t j = 0; j < a.errors.size(); ++j) {
      EXPECT_EQ(a.errors[j].t, b.errors[j].t) << i;
      EXPECT_EQ(a.errors[j].pos_error, b.errors[j].pos_error) << i;
      EXPECT_EQ(a.errors[j].yaw_error, b.errors[j].yaw_error) << i;
    }
    EXPECT_EQ(a.metrics.ate_m, b.metrics.ate_m) << i;
    EXPECT_EQ(a.final_pos_error_m, b.final_pos_error_m) << i;
    // The paired mixture row replays the SAME dataset with the same
    // filter seed — different model, so (generically) different bits.
    EXPECT_EQ(mixture_rows[i]->spec.data_seed, a.spec.data_seed) << i;
    EXPECT_EQ(mixture_rows[i]->spec.mcl_seed, a.spec.mcl_seed) << i;
  }
}

// Heavy-crowd campaign cell (5 crossing pedestrians, mixture + gating
// axis): the engine's bit-exactness guarantee must hold through the new
// observation code path on every execution policy. The same battery backs
// the cross-process determinism diff in CI (bench_campaign_throughput
// --smoke --crowd --trace).
TEST(Campaign, HeavyCrowdCellIsBitExactAcrossPolicies) {
  CampaignSpec spec;
  spec.worlds = {{CampaignWorld::kWarehouse, 0, 2}};
  spec.inits = {{InitSpec::Mode::kTracking, 0.2, 0.2, 2}};
  spec.precisions = {core::Precision::kFp32Qm};
  spec.sensing = {{sensor::ZoneMode::k8x8, 15.0, 0.01, true, 5, 1.0}};
  spec.observation = {{}, {0.5, 1.0, true, 0.5, 0.85}};
  spec.mcl.num_particles = 1024;
  spec.master_seed = 23;
  Campaign campaign(std::move(spec));
  ASSERT_EQ(campaign.runs().size(), 2u);

  CampaignOptions serial;
  serial.batched = false;
  const CampaignResult a = campaign.run(serial);

  CampaignOptions batched;
  batched.batched = true;
  batched.threads = 4;
  const CampaignResult b = campaign.run(batched);
  expect_bit_identical(a, b, "heavy-crowd serial-vs-batched");

  CampaignOptions nested = batched;
  nested.pooled_filter_chunks = true;
  const CampaignResult c = campaign.run(nested);
  expect_bit_identical(a, c, "heavy-crowd serial-vs-nested");

  for (const CampaignRunResult& run : a.runs) {
    EXPECT_GT(run.updates_run, 10u);
    EXPECT_GT(run.errors.size(), 10u);
  }
  // Both rows replay one shared dataset; the models genuinely diverge.
  EXPECT_NE(a.runs[0].metrics.ate_m, a.runs[1].metrics.ate_m);
}

// The staleness axis must be a pure ADDITION. (a) A WorldSpec at
// mutation level kNone — whatever its (unused) mutation seed says — is
// bit-identical to a spec that predates the axis. (b) A mutated world
// actually changes the flown data: same matrix coordinates, same
// data/filter seeds, different bits.
TEST(Campaign, StaleLevelZeroIsBitIdenticalAndMutationChangesData) {
  CampaignSpec pre_axis;
  pre_axis.worlds = {{CampaignWorld::kWarehouse, 0, 2}};
  pre_axis.inits = {{InitSpec::Mode::kTracking, 0.2, 0.2, 2}};
  pre_axis.precisions = {core::Precision::kFp32Qm};
  pre_axis.mcl.num_particles = 512;
  pre_axis.master_seed = 31;
  Campaign reference(pre_axis);
  const CampaignResult ref = reference.run({});
  ASSERT_EQ(ref.runs.size(), 1u);

  CampaignSpec level0 = pre_axis;
  level0.worlds = {{CampaignWorld::kWarehouse, 0, 2, 180.0, 1,
                    sim::MutationLevel::kNone, 99}};
  Campaign pristine(level0);
  const CampaignResult a = pristine.run({});
  expect_bit_identical(ref, a, "level0-vs-pre-axis");

  CampaignSpec stale = pre_axis;
  stale.worlds = {{CampaignWorld::kWarehouse, 0, 2, 180.0, 1,
                   sim::MutationLevel::kHeavy, 500}};
  Campaign mutated(stale);
  const CampaignResult b = mutated.run({});
  ASSERT_EQ(b.runs.size(), 1u);
  // Identical seed derivation (mutation is not a matrix coordinate)…
  EXPECT_EQ(b.runs[0].spec.data_seed, ref.runs[0].spec.data_seed);
  EXPECT_EQ(b.runs[0].spec.mcl_seed, ref.runs[0].spec.mcl_seed);
  // …but the drone flew a different building.
  EXPECT_NE(b.runs[0].metrics.ate_m, ref.runs[0].metrics.ate_m);
}

// Cache-collision safety: two worlds differing ONLY in the staleness
// coordinates (same kind, world seed, laps) must not share a cached
// world. Runs are pinned to identical data/filter seeds via set_runs, so
// any result difference can come only from the mutation — if the world
// cache keyed on (kind, seed, laps) alone, both runs would replay the
// same dataset and produce identical bits.
TEST(Campaign, StaleWorldCacheKeysOnMutationCoordinates) {
  CampaignSpec spec;
  spec.worlds = {{CampaignWorld::kWarehouse, 0, 2, 180.0, 1,
                  sim::MutationLevel::kHeavy, 500},
                 {CampaignWorld::kWarehouse, 0, 2, 180.0, 1,
                  sim::MutationLevel::kHeavy, 501}};
  spec.inits = {{InitSpec::Mode::kTracking, 0.2, 0.2, 2}};
  spec.precisions = {core::Precision::kFp32Qm};
  spec.mcl.num_particles = 512;
  spec.master_seed = 31;
  Campaign campaign(spec);
  std::vector<RunSpec> runs = campaign.runs();
  ASSERT_EQ(runs.size(), 2u);
  runs[1].data_seed = runs[0].data_seed;
  runs[1].mcl_seed = runs[0].mcl_seed;
  campaign.set_runs(std::move(runs));
  const CampaignResult result = campaign.run({});
  ASSERT_EQ(result.runs.size(), 2u);
  ASSERT_FALSE(result.runs[0].errors.empty());
  ASSERT_FALSE(result.runs[1].errors.empty());
  EXPECT_NE(result.runs[0].errors.back().pos_error,
            result.runs[1].errors.back().pos_error);
}

// The engine's bit-exactness guarantee holds through the staleness axis
// on every execution policy (world mutation happens serially in
// prepare_shared; the STALE DATASET generation fans out on the pool when
// batched, which is what this exercises alongside the replays).
TEST(Campaign, StaleCampaignIsBitExactAcrossPolicies) {
  CampaignSpec spec;
  spec.worlds = {{CampaignWorld::kWarehouse, 0, 2},
                 {CampaignWorld::kWarehouse, 0, 2, 180.0, 1,
                  sim::MutationLevel::kLight, 500},
                 {CampaignWorld::kWarehouse, 0, 2, 180.0, 1,
                  sim::MutationLevel::kHeavy, 500}};
  spec.inits = {{InitSpec::Mode::kTracking, 0.2, 0.2, 2}};
  spec.precisions = {core::Precision::kFp32Qm};
  spec.observation = {{}, {0.5, 1.0, true, 0.5, 0.85}};
  spec.mcl.num_particles = 512;
  spec.master_seed = 29;
  Campaign campaign(std::move(spec));
  ASSERT_EQ(campaign.runs().size(), 6u);  // 3 staleness × 2 models

  CampaignOptions serial;
  serial.batched = false;
  const CampaignResult a = campaign.run(serial);

  CampaignOptions batched;
  batched.batched = true;
  batched.threads = 4;
  const CampaignResult b = campaign.run(batched);
  expect_bit_identical(a, b, "stale serial-vs-batched");

  CampaignOptions nested = batched;
  nested.pooled_filter_chunks = true;
  const CampaignResult c = campaign.run(nested);
  expect_bit_identical(a, c, "stale serial-vs-nested");

  for (const CampaignRunResult& run : a.runs) {
    EXPECT_GT(run.updates_run, 10u);
    EXPECT_GT(run.errors.size(), 10u);
    EXPECT_EQ(run.dropped_frames, 0u);
  }
}

// WorldSpec's timeout/tour_laps knobs flow through shared-resource
// preparation: a patrol world generates a dataset past the historical
// 180 s cap.
TEST(Campaign, PatrolWorldOutlivesThe180sCap) {
  CampaignSpec spec;
  spec.worlds = {{CampaignWorld::kOffice, 0, 3, 600.0, 2}};
  spec.inits = {{InitSpec::Mode::kTracking, 0.2, 0.2, 2}};
  spec.precisions = {core::Precision::kFp32Qm};
  spec.mcl.num_particles = 256;
  spec.master_seed = 5;
  Campaign campaign(std::move(spec));
  const CampaignResult result = campaign.run({});
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_GT(result.horizon_s, 180.0);
  EXPECT_GT(result.runs[0].errors.size(), 100u);
  EXPECT_GT(result.runs[0].errors.back().t, 180.0);
}

// The sweep adapter must reproduce the legacy pipeline exactly: same seed
// chain, same datasets, same per-run replay. Rebuild one cell by hand
// through the public replay_sequence API and compare metrics bitwise.
TEST(SweepAdapter, MatchesLegacyReplayBitwise) {
  SweepConfig cfg;
  cfg.variants = {Variant::kFp32Qm};
  cfg.particle_counts = {512};
  cfg.sequences = 1;
  cfg.seeds_per_sequence = 1;
  cfg.threads = 2;
  const SweepResult sweep = run_accuracy_sweep(cfg);
  ASSERT_EQ(sweep.runs.size(), 1u);

  // Legacy path, verbatim.
  const sim::EvaluationEnvironment env = sim::evaluation_environment();
  const map::OccupancyGrid grid =
      sim::rasterize_environment(env, 0.05, cfg.map_error_sigma);
  const auto plans = sim::standard_flight_plans();
  Rng seed_rng(cfg.master_seed);
  const std::uint64_t seed = seed_rng.next();
  Rng data_rng(seed);
  const sim::Sequence seq = sim::generate_sequence(
      env.world, plans[0], sim::default_generator_config(), data_rng);
  core::LocalizerConfig loc;
  loc.precision = core::Precision::kFp32Qm;
  loc.mcl = cfg.mcl;
  loc.mcl.num_particles = 512;
  loc.mcl.seed = seed ^ 0x9E3779B97F4A7C15ULL ^ (512 * 2654435761ULL) ^
                 static_cast<std::uint64_t>(Variant::kFp32Qm);
  core::SerialExecutor exec;
  const auto errors = replay_sequence(seq, grid, loc, true, exec);
  const RunMetrics legacy = evaluate_run(errors);

  EXPECT_EQ(sweep.runs[0].seed, seed);
  EXPECT_EQ(sweep.runs[0].metrics.converged, legacy.converged);
  EXPECT_EQ(sweep.runs[0].metrics.success, legacy.success);
  EXPECT_EQ(sweep.runs[0].metrics.ate_m, legacy.ate_m);
  EXPECT_EQ(sweep.runs[0].metrics.convergence_time_s,
            legacy.convergence_time_s);
}

}  // namespace
}  // namespace tofmcl::eval
