// Tests for the 3-state occupancy grid: coordinate anchoring, bounds
// handling and cell bookkeeping.

#include "map/occupancy_grid.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tofmcl::map {
namespace {

TEST(OccupancyGrid, ConstructionAndFill) {
  const OccupancyGrid g(10, 5, 0.1, {1.0, 2.0});
  EXPECT_EQ(g.width(), 10);
  EXPECT_EQ(g.height(), 5);
  EXPECT_EQ(g.cell_count(), 50u);
  EXPECT_DOUBLE_EQ(g.resolution(), 0.1);
  EXPECT_EQ(g.count(CellState::kUnknown), 50u);
  EXPECT_EQ(g.count(CellState::kFree), 0u);
}

TEST(OccupancyGrid, RejectsInvalidConstruction) {
  EXPECT_THROW(OccupancyGrid(0, 5, 0.1, {}), PreconditionError);
  EXPECT_THROW(OccupancyGrid(5, -1, 0.1, {}), PreconditionError);
  EXPECT_THROW(OccupancyGrid(5, 5, 0.0, {}), PreconditionError);
  EXPECT_THROW(OccupancyGrid(5, 5, -0.5, {}), PreconditionError);
}

TEST(OccupancyGrid, SetAndGet) {
  OccupancyGrid g(4, 4, 0.05, {}, CellState::kFree);
  g.set({2, 3}, CellState::kOccupied);
  EXPECT_EQ(g.at({2, 3}), CellState::kOccupied);
  EXPECT_TRUE(g.is_occupied({2, 3}));
  EXPECT_TRUE(g.is_free({0, 0}));
  EXPECT_EQ(g.count(CellState::kOccupied), 1u);
  EXPECT_EQ(g.count(CellState::kFree), 15u);
}

TEST(OccupancyGrid, OutOfBoundsAccessThrows) {
  OccupancyGrid g(4, 4, 0.05, {});
  EXPECT_THROW(g.at({4, 0}), PreconditionError);
  EXPECT_THROW(g.at({0, -1}), PreconditionError);
  EXPECT_THROW(g.set({-1, 0}, CellState::kFree), PreconditionError);
}

TEST(OccupancyGrid, WorldToCellAnchoring) {
  // Origin at (1, 2), resolution 0.5: cell (0,0) covers [1,1.5)x[2,2.5).
  const OccupancyGrid g(10, 10, 0.5, {1.0, 2.0});
  EXPECT_EQ(g.world_to_cell({1.0, 2.0}), (CellIndex{0, 0}));
  EXPECT_EQ(g.world_to_cell({1.49, 2.49}), (CellIndex{0, 0}));
  EXPECT_EQ(g.world_to_cell({1.5, 2.0}), (CellIndex{1, 0}));
  EXPECT_EQ(g.world_to_cell({0.99, 2.0}), (CellIndex{-1, 0}));
}

TEST(OccupancyGrid, CellCenterRoundTrip) {
  const OccupancyGrid g(20, 20, 0.05, {-0.5, -0.5});
  for (int y = 0; y < 20; y += 3) {
    for (int x = 0; x < 20; x += 3) {
      const Vec2 c = g.cell_center({x, y});
      EXPECT_EQ(g.world_to_cell(c), (CellIndex{x, y}));
    }
  }
}

TEST(OccupancyGrid, StateAtWorldPoint) {
  OccupancyGrid g(4, 4, 1.0, {}, CellState::kFree);
  g.set({1, 1}, CellState::kOccupied);
  EXPECT_EQ(g.state_at({1.5, 1.5}), CellState::kOccupied);
  EXPECT_EQ(g.state_at({0.5, 0.5}), CellState::kFree);
  // Out of map reads as Unknown rather than throwing.
  EXPECT_EQ(g.state_at({-1.0, 0.0}), CellState::kUnknown);
  EXPECT_EQ(g.state_at({100.0, 100.0}), CellState::kUnknown);
}

TEST(OccupancyGrid, BoundsAndArea) {
  const OccupancyGrid g(40, 20, 0.05, {1.0, -1.0});
  const Aabb b = g.bounds();
  EXPECT_DOUBLE_EQ(b.min.x, 1.0);
  EXPECT_DOUBLE_EQ(b.min.y, -1.0);
  EXPECT_DOUBLE_EQ(b.max.x, 3.0);
  EXPECT_DOUBLE_EQ(b.max.y, 0.0);
  EXPECT_DOUBLE_EQ(g.area(), 2.0);
}

TEST(OccupancyGrid, FreeCellCenters) {
  OccupancyGrid g(3, 3, 1.0, {}, CellState::kUnknown);
  g.set({0, 0}, CellState::kFree);
  g.set({2, 1}, CellState::kFree);
  const auto centers = g.free_cell_centers();
  ASSERT_EQ(centers.size(), 2u);
  EXPECT_DOUBLE_EQ(centers[0].x, 0.5);
  EXPECT_DOUBLE_EQ(centers[0].y, 0.5);
  EXPECT_DOUBLE_EQ(centers[1].x, 2.5);
  EXPECT_DOUBLE_EQ(centers[1].y, 1.5);
}

TEST(OccupancyGrid, OneBytePerCellLayout) {
  // The paper stores 1 byte per cell; the memory model depends on it.
  const OccupancyGrid g(7, 3, 0.05, {});
  EXPECT_EQ(g.raw().size(), 21u);
  EXPECT_EQ(sizeof(g.raw()[0]), 1u);
}

}  // namespace
}  // namespace tofmcl::map
