// Tests for the Crazyflie-style odometry EKF and the proprioceptive sensor
// models feeding it: noise statistics, covariance behaviour, and the
// bounded-drift property that makes the generated odometry realistic.

#include "estimation/ekf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/stats.hpp"
#include "estimation/sensor_models.hpp"

namespace tofmcl::estimation {
namespace {

TEST(Gyro, BiasAndNoiseStatistics) {
  GyroConfig cfg;
  cfg.noise_stddev_rad_s = 0.01;
  cfg.initial_bias_rad_s = 0.0;  // no bias for this test
  cfg.bias_walk_rad_s2 = 0.0;
  Rng rng(1);
  Gyro gyro(cfg, rng);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(gyro.measure(0.5, 0.01, rng));
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.001);
  EXPECT_NEAR(stats.stddev(), 0.01, 0.001);
}

TEST(Gyro, ConstantBiasShiftsMean) {
  GyroConfig cfg;
  cfg.noise_stddev_rad_s = 0.001;
  cfg.initial_bias_rad_s = 0.05;
  cfg.bias_walk_rad_s2 = 0.0;
  Rng rng(2);
  Gyro gyro(cfg, rng);
  const double bias = gyro.bias();
  EXPECT_NE(bias, 0.0);
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) stats.add(gyro.measure(0.0, 0.01, rng));
  EXPECT_NEAR(stats.mean(), bias, 0.001);
}

TEST(FlowSensor, NoiseAndScale) {
  FlowConfig cfg;
  cfg.noise_stddev_m_s = 0.01;
  cfg.scale_error_stddev = 0.0;
  cfg.p_dropout = 0.0;
  Rng rng(3);
  FlowSensor flow(cfg, rng);
  EXPECT_DOUBLE_EQ(flow.scale(), 1.0);
  RunningStats sx;
  for (int i = 0; i < 10000; ++i) {
    const FlowMeasurement m = flow.measure({0.3, -0.2}, rng);
    ASSERT_TRUE(m.valid);
    sx.add(m.velocity_body.x);
  }
  EXPECT_NEAR(sx.mean(), 0.3, 0.001);
  EXPECT_NEAR(sx.stddev(), 0.01, 0.001);
}

TEST(FlowSensor, DropoutRate) {
  FlowConfig cfg;
  cfg.p_dropout = 0.3;
  Rng rng(4);
  FlowSensor flow(cfg, rng);
  int dropped = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (!flow.measure({0.1, 0.0}, rng).valid) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.3, 0.02);
}

TEST(Ekf, InitialState) {
  const Ekf ekf(EkfConfig{}, Pose2{1.0, 2.0, 0.5});
  EXPECT_DOUBLE_EQ(ekf.pose().x(), 1.0);
  EXPECT_DOUBLE_EQ(ekf.pose().y(), 2.0);
  EXPECT_DOUBLE_EQ(ekf.pose().yaw, 0.5);
  EXPECT_DOUBLE_EQ(ekf.velocity_body().x, 0.0);
}

TEST(Ekf, PredictIntegratesYaw) {
  Ekf ekf;
  for (int i = 0; i < 100; ++i) ekf.predict(0.2, 0.01);
  EXPECT_NEAR(ekf.pose().yaw, 0.2, 1e-9);
}

TEST(Ekf, PredictRejectsBadDt) {
  Ekf ekf;
  EXPECT_THROW(ekf.predict(0.0, 0.0), PreconditionError);
  EXPECT_THROW(ekf.predict(0.0, -0.1), PreconditionError);
}

TEST(Ekf, FlowUpdatePullsVelocity) {
  Ekf ekf;
  for (int i = 0; i < 50; ++i) {
    ekf.predict(0.0, 0.01);
    ekf.update_flow({0.5, 0.0});
  }
  EXPECT_NEAR(ekf.velocity_body().x, 0.5, 0.01);
  EXPECT_NEAR(ekf.velocity_body().y, 0.0, 0.01);
}

TEST(Ekf, DeadReckonsStraightLine) {
  Ekf ekf;
  const double dt = 0.01;
  for (int i = 0; i < 500; ++i) {
    ekf.predict(0.0, dt);
    ekf.update_flow({0.4, 0.0});
  }
  // ~5 s at converging-to-0.4 m/s heading +x: position ≈ 2 m (slightly
  // less because velocity starts at 0).
  EXPECT_NEAR(ekf.pose().x(), 2.0, 0.1);
  EXPECT_NEAR(ekf.pose().y(), 0.0, 0.05);
}

TEST(Ekf, CovarianceGrowsWithoutUpdates) {
  Ekf ekf;
  const double v0 = ekf.covariance()(0, 0);
  for (int i = 0; i < 100; ++i) ekf.predict(0.0, 0.01);
  // Position variance inflates through the velocity uncertainty.
  EXPECT_GT(ekf.covariance()(3, 3), 0.01 - 1e-9);
  for (int i = 0; i < 400; ++i) ekf.predict(0.0, 0.01);
  EXPECT_GT(ekf.covariance()(0, 0), v0);
}

TEST(Ekf, FlowUpdateShrinksVelocityCovariance) {
  Ekf ekf;
  for (int i = 0; i < 100; ++i) ekf.predict(0.0, 0.01);
  const double before = ekf.covariance()(3, 3);
  ekf.update_flow({0.0, 0.0});
  EXPECT_LT(ekf.covariance()(3, 3), before);
}

TEST(Ekf, CovarianceStaysSymmetric) {
  Ekf ekf;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    ekf.predict(rng.gaussian(0.0, 0.3), 0.01);
    if (i % 2 == 0) {
      ekf.update_flow({rng.gaussian(0.2, 0.05), rng.gaussian(0.0, 0.05)});
    }
  }
  const auto& P = ekf.covariance();
  for (std::size_t r = 0; r < Ekf::kStateDim; ++r) {
    for (std::size_t c = 0; c < Ekf::kStateDim; ++c) {
      EXPECT_DOUBLE_EQ(P(r, c), P(c, r));
    }
    EXPECT_GE(P(r, r), 0.0);
  }
}

TEST(Ekf, ClosedLoopDriftIsRealistic) {
  // Full pipeline: drive a square path, feed noisy gyro/flow, check the
  // dead-reckoned estimate drifts — but by a bounded amount (a few percent
  // of distance travelled), which is the regime MCL is designed to fix.
  Rng rng(6);
  GyroConfig gyro_cfg;  // defaults
  FlowConfig flow_cfg;
  Gyro gyro(gyro_cfg, rng);
  FlowSensor flow(flow_cfg, rng);
  Ekf ekf;

  const double dt = 0.01;
  double true_yaw = 0.0;
  Vec2 true_pos{};
  double distance = 0.0;
  for (int leg = 0; leg < 4; ++leg) {
    // Straight 2 m at 0.4 m/s.
    for (int i = 0; i < 500; ++i) {
      const Vec2 v_body{0.4, 0.0};
      const Vec2 v_world = v_body.rotated(true_yaw);
      true_pos += v_world * dt;
      distance += 0.4 * dt;
      ekf.predict(gyro.measure(0.0, dt, rng), dt);
      const FlowMeasurement m = flow.measure(v_body, rng);
      if (m.valid) ekf.update_flow(m.velocity_body);
    }
    // Turn 90° in 1 s.
    for (int i = 0; i < 100; ++i) {
      const double w = kPi / 2.0;
      true_yaw += w * dt;
      ekf.predict(gyro.measure(w, dt, rng), dt);
      const FlowMeasurement m = flow.measure({0.0, 0.0}, rng);
      if (m.valid) ekf.update_flow(m.velocity_body);
    }
  }
  const double pos_error = (ekf.pose().position - true_pos).norm();
  EXPECT_GT(pos_error, 0.005);        // it must drift (it is odometry)
  EXPECT_LT(pos_error, 0.15 * distance);  // but stay within ~15 % of path
  EXPECT_LT(angle_dist(ekf.pose().yaw, true_yaw), 0.5);
}

}  // namespace
}  // namespace tofmcl::estimation
