// Tests for the table/CSV writer used by the bench harness.

#include "common/table.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace tofmcl {
namespace {

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(Table, RowBuilderTypes) {
  Table t({"name", "value", "count", "signed"});
  t.row().cell("x").cell(1.23456, 2).cell(std::size_t{7}).cell(-5LL).commit();
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name,value,count,signed\nx,1.23,7,-5\n");
}

TEST(Table, PrintAligned) {
  Table t({"col", "x"});
  t.add_row({"longer-cell", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, one row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("longer-cell"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a"});
  t.add_row({"plain"});
  t.add_row({"with,comma"});
  t.add_row({"with\"quote"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a\nplain\n\"with,comma\"\n\"with\"\"quote\"\n");
}

TEST(Table, WriteCsvToFileCreatesDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "tofmcl_test_csv";
  std::filesystem::remove_all(dir);
  Table t({"h"});
  t.add_row({"v"});
  const auto path = dir / "nested" / "out.csv";
  t.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h");
  std::filesystem::remove_all(dir);
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(1.0, 3), "1.000");
  EXPECT_EQ(format_fixed(0.15, 2), "0.15");
  EXPECT_EQ(format_fixed(-2.5, 0), "-2");  // round-half-even at 0 digits
}

}  // namespace
}  // namespace tofmcl
