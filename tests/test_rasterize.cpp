// Tests for world→grid rasterization: wall coverage, interior fill and
// agreement between analytic raycasts and the rasterized map.

#include "map/rasterize.hpp"

#include <gtest/gtest.h>

#include "common/angles.hpp"
#include "common/error.hpp"

namespace tofmcl::map {
namespace {

TEST(Rasterize, RejectsEmptyWorldAndBadResolution) {
  World w;
  EXPECT_THROW(rasterize(w, {}), PreconditionError);
  w.add_segment({0, 0}, {1, 0});
  RasterizeOptions bad;
  bad.resolution = 0.0;
  EXPECT_THROW(rasterize(w, bad), PreconditionError);
}

TEST(Rasterize, GridCoversWorldPlusMargin) {
  World w;
  w.add_rectangle({{0.0, 0.0}, {2.0, 1.0}});
  RasterizeOptions opt;
  opt.resolution = 0.05;
  opt.margin = 0.15;
  const OccupancyGrid g = rasterize(w, opt);
  EXPECT_DOUBLE_EQ(g.origin().x, -0.15);
  EXPECT_DOUBLE_EQ(g.origin().y, -0.15);
  EXPECT_GE(g.bounds().max.x, 2.15 - 1e-9);
  EXPECT_GE(g.bounds().max.y, 1.15 - 1e-9);
}

TEST(Rasterize, WallCellsOccupied) {
  World w;
  w.add_segment({0.0, 0.5}, {2.0, 0.5});  // horizontal wall
  RasterizeOptions opt;
  const OccupancyGrid g = rasterize(w, opt);
  // Sample along the wall: the containing cell must be occupied.
  for (double x = 0.05; x < 2.0; x += 0.1) {
    EXPECT_EQ(g.state_at({x, 0.5}), CellState::kOccupied) << "x=" << x;
  }
}

TEST(Rasterize, InteriorStaysFree) {
  World w;
  w.add_rectangle({{0.0, 0.0}, {2.0, 2.0}});
  RasterizeOptions opt;
  const OccupancyGrid g = rasterize(w, opt);
  EXPECT_EQ(g.state_at({1.0, 1.0}), CellState::kFree);
  EXPECT_EQ(g.state_at({0.3, 1.7}), CellState::kFree);
  EXPECT_GT(g.count(CellState::kFree), g.count(CellState::kOccupied));
}

TEST(Rasterize, UnknownInteriorFillOption) {
  World w;
  w.add_rectangle({{0.0, 0.0}, {1.0, 1.0}});
  RasterizeOptions opt;
  opt.interior_fill = CellState::kUnknown;
  const OccupancyGrid g = rasterize(w, opt);
  EXPECT_EQ(g.state_at({0.5, 0.5}), CellState::kUnknown);
}

TEST(Rasterize, DiagonalWallIsGapFree) {
  // A thin diagonal wall must not have holes a ray can slip through.
  World w;
  w.add_segment({0.0, 0.0}, {2.0, 1.3});
  RasterizeOptions opt;
  opt.wall_thickness = 0.03;  // thinner than a cell
  const OccupancyGrid g = rasterize(w, opt);
  // March along the segment at fine steps; every sample must land in an
  // occupied cell.
  const Vec2 dir = Vec2{2.0, 1.3}.normalized();
  const double len = Vec2{2.0, 1.3}.norm();
  for (double t = 0.0; t <= len; t += 0.01) {
    const Vec2 p = Vec2{0.0, 0.0} + dir * t;
    EXPECT_EQ(g.state_at(p), CellState::kOccupied) << "t=" << t;
  }
}

TEST(Rasterize, ThickWallSpansMultipleCells) {
  World w;
  w.add_segment({1.0, 0.0}, {1.0, 2.0});
  RasterizeOptions opt;
  opt.wall_thickness = 0.15;  // three cells wide
  const OccupancyGrid g = rasterize(w, opt);
  EXPECT_EQ(g.state_at({1.0 - 0.06, 1.0}), CellState::kOccupied);
  EXPECT_EQ(g.state_at({1.0 + 0.06, 1.0}), CellState::kOccupied);
  // First cell inside the margin (center 0.875, 0.125 from the wall axis)
  // stays free.
  EXPECT_EQ(g.state_at({0.87, 1.0}), CellState::kFree);
}

TEST(RasterizeSegment, PaintsIntoExistingGrid) {
  OccupancyGrid g(20, 20, 0.05, {0.0, 0.0}, CellState::kFree);
  rasterize_segment(g, {{0.1, 0.1}, {0.9, 0.1}}, 0.05);
  EXPECT_EQ(g.state_at({0.5, 0.1}), CellState::kOccupied);
  EXPECT_EQ(g.state_at({0.5, 0.5}), CellState::kFree);
}

TEST(Rasterize, RaycastAgreesWithAnalyticWorld) {
  // Distances measured by DDA-style marching in the rasterized grid should
  // agree with the analytic world raycast to within a couple of cells.
  // (Full raycaster comparisons live in the sensor tests; here we check the
  // wall is where the analytic hit says it is.)
  World w;
  w.add_rectangle({{0.0, 0.0}, {3.0, 2.0}});
  RasterizeOptions opt;
  const OccupancyGrid g = rasterize(w, opt);
  for (const double angle : {0.0, kPi / 3.0, kPi / 2.0, -2.0}) {
    const auto hit = w.raycast({1.5, 1.0}, angle, 10.0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(g.state_at(hit->point), CellState::kOccupied)
        << "angle=" << angle;
  }
}

}  // namespace
}  // namespace tofmcl::map
