// Tests for the procedural world generators: determinism (same seed →
// byte-identical world, also across processes via the hexfloat trace),
// structural invariants (landmarks mutually reachable with drone-sized
// clearance, flyable tour plans) and config validation.

#include "sim/worldgen.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "map/distance_map.hpp"
#include "map/map_io.hpp"
#include "plan/astar.hpp"
#include "sim/sequence_generator.hpp"

namespace tofmcl::sim {
namespace {

const GeneratedWorldKind kKinds[] = {GeneratedWorldKind::kOffice,
                                     GeneratedWorldKind::kWarehouse,
                                     GeneratedWorldKind::kLoopCorridor};

void expect_identical_worlds(const GeneratedWorld& a,
                             const GeneratedWorld& b) {
  ASSERT_EQ(a.env.world.segments().size(), b.env.world.segments().size());
  for (std::size_t i = 0; i < a.env.world.segments().size(); ++i) {
    EXPECT_EQ(a.env.world.segments()[i].a, b.env.world.segments()[i].a);
    EXPECT_EQ(a.env.world.segments()[i].b, b.env.world.segments()[i].b);
  }
  ASSERT_EQ(a.points_of_interest.size(), b.points_of_interest.size());
  for (std::size_t i = 0; i < a.points_of_interest.size(); ++i) {
    EXPECT_EQ(a.points_of_interest[i], b.points_of_interest[i]);
  }
  ASSERT_EQ(a.plans.size(), b.plans.size());
  for (std::size_t i = 0; i < a.plans.size(); ++i) {
    EXPECT_EQ(a.plans[i].name, b.plans[i].name);
    EXPECT_EQ(a.plans[i].start, b.plans[i].start);
    ASSERT_EQ(a.plans[i].path.size(), b.plans[i].path.size());
    for (std::size_t j = 0; j < a.plans[i].path.size(); ++j) {
      EXPECT_EQ(a.plans[i].path[j].position, b.plans[i].path[j].position);
    }
  }
}

TEST(WorldGen, SameSeedIsBitIdentical) {
  for (const GeneratedWorldKind kind : kKinds) {
    WorldGenConfig config;
    config.seed = 11;
    const GeneratedWorld a = generate_world(kind, config);
    const GeneratedWorld b = generate_world(kind, config);
    expect_identical_worlds(a, b);
    // The rasterized grid (the artifact campaigns localize against) is
    // byte-identical too.
    const map::OccupancyGrid ga = rasterize_environment(a.env, 0.05, 0.01);
    const map::OccupancyGrid gb = rasterize_environment(b.env, 0.05, 0.01);
    EXPECT_EQ(ga, gb);
  }
}

TEST(WorldGen, DifferentSeedsDiffer) {
  for (const GeneratedWorldKind kind : kKinds) {
    WorldGenConfig a_cfg;
    a_cfg.seed = 1;
    WorldGenConfig b_cfg;
    b_cfg.seed = 2;
    const GeneratedWorld a = generate_world(kind, a_cfg);
    const GeneratedWorld b = generate_world(kind, b_cfg);
    const map::OccupancyGrid ga = rasterize_environment(a.env, 0.05, 0.0, 0);
    const map::OccupancyGrid gb = rasterize_environment(b.env, 0.05, 0.0, 0);
    EXPECT_NE(map::to_ascii(ga), map::to_ascii(gb)) << to_string(kind);
  }
}

TEST(WorldGen, KindsAreDecorrelated) {
  WorldGenConfig config;
  config.seed = 9;
  const GeneratedWorld office =
      generate_world(GeneratedWorldKind::kOffice, config);
  const GeneratedWorld warehouse =
      generate_world(GeneratedWorldKind::kWarehouse, config);
  EXPECT_NE(office.env.world.segments().size(),
            warehouse.env.world.segments().size());
}

// Every landmark must be reachable from every other with clearance well
// above the drone radius — this is what "doorways pass the drone" means
// operationally: a doorway narrower than 2×min_clearance would break the
// route through it.
TEST(WorldGen, LandmarksMutuallyReachableWithDroneClearance) {
  for (const GeneratedWorldKind kind : kKinds) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      WorldGenConfig config;
      config.seed = seed;
      const GeneratedWorld world = generate_world(kind, config);
      ASSERT_GE(world.points_of_interest.size(), 3u) << to_string(kind);
      const map::OccupancyGrid grid =
          rasterize_environment(world.env, 0.05, 0.0, 0);
      const map::DistanceMap distance(grid, 1.0);
      plan::PlannerConfig pc;
      pc.min_clearance_m = 0.2;  // ≥ drone diameter (0.1 m) each side
      const Vec2 hub = world.points_of_interest.front();
      for (std::size_t i = 1; i < world.points_of_interest.size(); ++i) {
        EXPECT_TRUE(plan::plan_path(grid, distance, hub,
                                    world.points_of_interest[i], pc)
                        .has_value())
            << to_string(kind) << " seed " << seed << " landmark " << i;
      }
    }
  }
}

TEST(WorldGen, TourPlansAreFlyable) {
  for (const GeneratedWorldKind kind : kKinds) {
    WorldGenConfig config;
    config.seed = 4;
    const GeneratedWorld world = generate_world(kind, config);
    ASSERT_GE(world.plans.size(), 3u);
    const map::OccupancyGrid grid =
        rasterize_environment(world.env, 0.05, 0.0, 0);
    const map::DistanceMap distance(grid, 1.0);
    for (const FlightPlan& plan : world.plans) {
      ASSERT_GE(plan.path.size(), 2u) << plan.name;
      EXPECT_GE(distance.distance_at(plan.start.position), 0.15f)
          << plan.name;
      for (const Waypoint& wp : plan.path) {
        EXPECT_GE(distance.distance_at(wp.position), 0.15f) << plan.name;
      }
    }
    // The first tour actually flies collision-free within the generator's
    // timeout.
    Rng rng(5);
    const Sequence seq = generate_sequence(
        world.env.world, world.plans[0], default_generator_config(), rng);
    EXPECT_GT(seq.duration_s, 10.0) << to_string(kind);
    EXPECT_LT(seq.duration_s, 175.0) << to_string(kind);
    EXPECT_GT(seq.min_clearance_m, 0.03) << to_string(kind);
    EXPECT_GT(seq.frames.size(), 200u) << to_string(kind);
  }
}

// Generated worlds are exactly what the v2 grid format exists for: large,
// run-heavy maps. Round-trip must be bit-exact, and the v2 file
// meaningfully smaller than v1.
TEST(WorldGen, GeneratedWorldsRoundTripThroughMapIoV2) {
  for (const GeneratedWorldKind kind : kKinds) {
    WorldGenConfig config;
    config.seed = 6;
    const GeneratedWorld world = generate_world(kind, config);
    const map::OccupancyGrid grid =
        rasterize_environment(world.env, 0.05, 0.01);
    std::stringstream v2;
    map::save_grid(grid, v2, map::GridFormat::kV2);
    std::stringstream v1;
    map::save_grid(grid, v1, map::GridFormat::kV1);
    EXPECT_LT(v2.str().size(), v1.str().size() / 4) << to_string(kind);
    const map::OccupancyGrid loaded = map::load_grid(v2);
    EXPECT_EQ(loaded, grid) << to_string(kind);
  }
}

// The 180 s cap regression: worldgen tours used to be limited to whatever
// fit the sequence generator's default abort limit. With tour_laps > 1
// the primary plan becomes an out-and-back patrol, and together with a
// raised timeout a > 180 s mission generates completely — and
// deterministically, including through the dataset save/load round trip.
TEST(WorldGen, PatrolTourOutlivesThe180sCap) {
  WorldGenConfig config;
  config.seed = 3;
  config.tour_laps = 2;
  const GeneratedWorld world =
      generate_world(GeneratedWorldKind::kOffice, config);
  EXPECT_NE(world.plans[0].name.find("_patrol_x2"), std::string::npos);

  // Single-lap plans are untouched by the knob: same world, laps = 1.
  WorldGenConfig single = config;
  single.tour_laps = 1;
  const GeneratedWorld base =
      generate_world(GeneratedWorldKind::kOffice, single);
  EXPECT_GT(world.plans[0].path.size(), base.plans[0].path.size());
  ASSERT_EQ(world.plans.size(), base.plans.size());
  EXPECT_EQ(world.plans[1].name, base.plans[1].name);
  ASSERT_EQ(world.plans[2].path.size(), base.plans[2].path.size());

  SequenceGeneratorConfig gen = default_generator_config();
  gen.timeout_s = 600.0;
  Rng rng(42);
  const Sequence seq =
      generate_sequence(world.env.world, world.plans[0], gen, rng);
  EXPECT_GT(seq.duration_s, 180.0);
  ASSERT_FALSE(seq.odometry.empty());

  // Determinism: regeneration is bit-identical…
  Rng rng2(42);
  const Sequence again =
      generate_sequence(world.env.world, world.plans[0], gen, rng2);
  EXPECT_EQ(seq.duration_s, again.duration_s);
  ASSERT_EQ(seq.odometry.size(), again.odometry.size());
  ASSERT_EQ(seq.frames.size(), again.frames.size());
  EXPECT_EQ(seq.odometry.back().pose, again.odometry.back().pose);

  // …and the > 180 s dataset round-trips through sequence IO exactly
  // (17-significant-digit text format).
  std::stringstream io;
  save_sequence(seq, io);
  const Sequence loaded = load_sequence(io);
  EXPECT_EQ(loaded.duration_s, seq.duration_s);
  ASSERT_EQ(loaded.odometry.size(), seq.odometry.size());
  ASSERT_EQ(loaded.ground_truth.size(), seq.ground_truth.size());
  ASSERT_EQ(loaded.frames.size(), seq.frames.size());
  EXPECT_EQ(loaded.odometry.back().t, seq.odometry.back().t);
  EXPECT_EQ(loaded.odometry.back().pose, seq.odometry.back().pose);
  EXPECT_EQ(loaded.ground_truth.back().pose, seq.ground_truth.back().pose);
}

TEST(WorldGen, RejectsUnbuildableConfigs) {
  WorldGenConfig config;
  config.doorway_m = 0.2;  // cannot pass the drone with margin
  EXPECT_THROW(generate_world(GeneratedWorldKind::kOffice, config),
               PreconditionError);
  config = {};
  config.width_m = 2.0;
  EXPECT_THROW(generate_world(GeneratedWorldKind::kWarehouse, config),
               PreconditionError);
  config = {};
  config.loop_corridor_m = 2.5;  // no solid core left in 6 m height
  EXPECT_THROW(generate_world(GeneratedWorldKind::kLoopCorridor, config),
               PreconditionError);
}

// Cross-process determinism: dump every generated coordinate as hexfloats
// when TOFMCL_WORLDGEN_TRACE is set; CI runs this twice and byte-compares
// the files (same pattern as the scenario-matrix trace).
TEST(WorldGenDeterminism, HexfloatTrace) {
  const char* path = std::getenv("TOFMCL_WORLDGEN_TRACE");
  if (path == nullptr) GTEST_SKIP() << "TOFMCL_WORLDGEN_TRACE not set";
  std::ofstream out(path);
  ASSERT_TRUE(out.is_open()) << path;
  out << std::hexfloat;
  for (const GeneratedWorldKind kind : kKinds) {
    WorldGenConfig config;
    config.seed = 12;
    const GeneratedWorld world = generate_world(kind, config);
    out << to_string(kind) << '\n';
    for (const map::Segment& s : world.env.world.segments()) {
      out << s.a.x << ' ' << s.a.y << ' ' << s.b.x << ' ' << s.b.y << '\n';
    }
    for (const FlightPlan& plan : world.plans) {
      out << plan.name << ' ' << plan.start.position.x << ' '
          << plan.start.position.y << ' ' << plan.start.yaw << '\n';
      for (const Waypoint& wp : plan.path) {
        out << wp.position.x << ' ' << wp.position.y << '\n';
      }
    }
    const map::OccupancyGrid grid =
        rasterize_environment(world.env, 0.05, 0.01);
    map::save_grid(grid, out, map::GridFormat::kV2);
  }
}

}  // namespace
}  // namespace tofmcl::sim
