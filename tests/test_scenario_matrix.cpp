// Scenario-matrix regression harness: the deterministic gate every PR
// runs through. Each scenario drives the FULL localize loop (sequence
// generation → Localizer replay → metrics) with fixed RNG seeds, asserts
// convergence and ATE bounds, and verifies the serial and thread-pool
// executors produce bit-identical traces (the design guarantee of
// core/executor.hpp: logical chunking fixes the result; threads only
// change wall-clock).
//
// Matrix dimensions covered:
//   * environment: small maze (16 m²) vs large ambiguous map (31.2 m²)
//     vs procedurally generated worlds (office / warehouse / loop)
//   * initialization: global, pose tracking, kidnapped re-localization
//   * sensing: full 8×8 zones vs reduced 4×4 zones, degraded noise,
//     dynamic crossing obstacles (unmodeled by the map)
//   * staleness: the drone flies and senses a seeded MUTATION of the
//     world (sim::mutate_world) while the localizer keeps the pristine
//     map — the lifelong-localization regime
//   * execution: SerialExecutor vs ThreadPoolExecutor (bit-exact)

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/localizer.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "sim/dynamic_obstacles.hpp"
#include "sim/maze.hpp"
#include "sim/sequence_generator.hpp"
#include "sim/worldgen.hpp"

namespace tofmcl {
namespace {

enum class Environment {
  kSmallMaze,
  kLargeMaze,
  kOffice,
  kWarehouse,
  kLoopCorridor,
};
enum class Init { kGlobal, kTracking, kKidnapped };

struct Scenario {
  std::string name;
  Environment environment = Environment::kSmallMaze;
  Init init = Init::kGlobal;
  /// Procedural seed: selects the generated world's layout, and the
  /// artificial-maze layout of the large maze (historical default 2023).
  std::uint64_t world_seed = 2023;
  std::size_t plan = 1;          ///< Index into the world's plan table.
  std::size_t kidnap_plan = 2;   ///< Second leg for kidnapped runs.
  sensor::ZoneMode zone_mode = sensor::ZoneMode::k8x8;
  double tof_rate_hz = 15.0;
  double p_interference = 0.01;  ///< Degraded-sensing knob.
  /// Dynamic-obstacle degradation: crossing people-sized cylinders
  /// composited into the rendered frames; the map stays static.
  std::size_t obstacle_count = 0;
  double obstacle_speed = 1.2;
  /// Corridor-pacing walker on the flight route itself (sustained
  /// occlusion of the forward sensor, sim::pace_obstacle).
  bool pacing_obstacle = false;
  double pacing_lead_m = 1.2;
  double pacing_speed = 0.35;
  /// Observation model: short-return mixture weight and novelty gating
  /// (0 / off = the seed two-term model, bit-identical).
  double z_short = 0.0;
  double lambda_short = 1.0;
  bool novelty_gating = false;
  /// Stale-map degradation: the flight is simulated (and sensed) in a
  /// seeded mutation of the world while the localization grid stays
  /// pristine. kNone = the map matches the world, bit-identical to the
  /// pre-staleness harness.
  sim::MutationLevel mutation_level = sim::MutationLevel::kNone;
  std::uint64_t mutation_seed = 0;
  std::size_t particles = 4096;
  std::uint64_t data_seed = 21;  ///< Drives sequence generation noise.
  std::uint64_t mcl_seed = 7;    ///< Drives the filter.
  core::Precision precision = core::Precision::kFp32;
  double ate_bound_m = 0.4;        ///< Post-convergence ATE ceiling.
  double final_error_bound_m = 1.0;///< Error at the last correction.
};

// ---- Heavy-crowd scenario family -----------------------------------------
//
// The regime the seed model cannot hold (ROADMAP: ">~2 pedestrians break
// the filter"): dense crossing crowds and a walker pacing the drone down
// the corridor, producing SUSTAINED un-mapped short returns instead of
// transient occlusion. Both scenarios enable the short-return mixture and
// novelty gating; the multi-seed CrowdStats gates below demonstrate that
// the seed model (z_short = 0, gating off) fails these exact datasets.
// Parameters were tuned with tools/debug_crowd.cpp.

/// 4–6 pedestrians crossing the warehouse aisles during a tracked tour.
Scenario crowd_crossing_warehouse() {
  Scenario s;
  s.name = "warehouse_crowd_crossing";
  s.environment = Environment::kWarehouse;
  s.init = Init::kTracking;
  s.world_seed = 2;
  s.plan = 0;  // aisle tour
  s.obstacle_count = 5;
  s.obstacle_speed = 1.0;
  s.z_short = 0.5;
  s.novelty_gating = true;
  s.data_seed = 100;
  s.mcl_seed = 7;
  s.ate_bound_m = 0.5;
  return s;
}

/// A walker pacing the drone along the office corridor (plus three
/// crossing pedestrians) — the forward sensor is occluded for long
/// stretches, not seconds.
Scenario corridor_pacing_office() {
  Scenario s;
  s.name = "office_corridor_pacing";
  s.environment = Environment::kOffice;
  s.init = Init::kTracking;
  s.world_seed = 3;
  s.plan = 0;  // corridor tour
  s.obstacle_count = 3;
  s.obstacle_speed = 1.0;
  s.pacing_obstacle = true;
  s.z_short = 0.5;
  s.novelty_gating = true;
  s.data_seed = 102;
  s.mcl_seed = 9;
  s.ate_bound_m = 0.5;
  return s;
}

// ---- Stale-map scenario family -------------------------------------------
//
// Lifelong localization: the building changed since the floor plan was
// recorded. sim::mutate_world rearranges shelving, closes/narrows doors
// and scatters static clutter; the drone flies and senses the mutated
// world while the filter localizes against the PRISTINE map. Light
// staleness must be survivable outright; heavy staleness is where the
// legacy two-term model breaks and the mixture + novelty gating holds
// (StaleMapStats gates below). Parameters were tuned with the staleness
// sweep mode of tools/debug_crowd.cpp.

/// Warehouse aisle tour through a mutated hall; `heavy` rearranges the
/// shelving wholesale, light is "someone tidied up over the weekend".
Scenario stale_warehouse(sim::MutationLevel level) {
  Scenario s;
  s.name = level == sim::MutationLevel::kHeavy ? "warehouse_stale_heavy"
                                               : "warehouse_stale_light";
  s.environment = Environment::kWarehouse;
  s.init = Init::kTracking;
  s.world_seed = 2;
  s.plan = 0;  // aisle tour
  s.mutation_level = level;
  s.mutation_seed = 500;
  s.z_short = 0.5;
  s.novelty_gating = true;
  s.data_seed = 100;
  s.mcl_seed = 7;
  s.ate_bound_m = 0.5;
  return s;
}

/// Office room tour through a heavily mutated floor: closed/narrowed
/// doors plus clutter in the rooms the corridor looks into.
Scenario stale_office_heavy() {
  Scenario s;
  s.name = "office_stale_heavy";
  s.environment = Environment::kOffice;
  s.init = Init::kTracking;
  s.world_seed = 3;
  s.plan = 0;  // room tour
  s.mutation_level = sim::MutationLevel::kHeavy;
  s.mutation_seed = 500;
  s.z_short = 0.5;
  s.novelty_gating = true;
  s.data_seed = 100;
  s.mcl_seed = 7;
  s.ate_bound_m = 0.5;
  return s;
}

/// The known-failing regime (ROADMAP open item; reproduced by
/// tools/debug_crowd.cpp 2 1 2 0 1): a walker pacing the loop-corridor
/// shuttle. The ring is longitudinally feature-poor once the forward
/// sensor is blocked, and BOTH observation models lose tracking. NOT in
/// the tier-1 matrix — the CrowdStats battery below pins the failure
/// rate so a future fix (odometry-trust scheduling, bay-depth features)
/// flips an explicit gate.
Scenario loop_pacing_known_failure() {
  Scenario s;
  s.name = "loop_pacer_known_failure";
  s.environment = Environment::kLoopCorridor;
  s.init = Init::kTracking;
  s.world_seed = 1;
  s.plan = 2;  // shuttle
  s.obstacle_count = 0;
  s.pacing_obstacle = true;
  s.z_short = 0.5;
  s.novelty_gating = true;
  s.data_seed = 100;
  s.mcl_seed = 7;
  return s;
}

std::vector<Scenario> scenario_matrix() {
  std::vector<Scenario> m;
  {
    Scenario s;
    s.name = "small_maze_global";
    m.push_back(s);
  }
  {
    Scenario s;
    s.name = "large_maze_global";
    s.environment = Environment::kLargeMaze;
    s.plan = 3;
    s.particles = 8192;
    s.ate_bound_m = 0.5;
    m.push_back(s);
  }
  {
    Scenario s;
    s.name = "kidnapped_relocalization";
    s.init = Init::kKidnapped;
    s.plan = 0;
    s.kidnap_plan = 2;
    s.ate_bound_m = 0.5;
    m.push_back(s);
  }
  {
    Scenario s;
    s.name = "reduced_zone_4x4";
    s.zone_mode = sensor::ZoneMode::k4x4;
    s.tof_rate_hz = 60.0;
    s.ate_bound_m = 0.5;
    m.push_back(s);
  }
  {
    Scenario s;
    s.name = "tracking_degraded_quantized";
    s.init = Init::kTracking;
    s.plan = 4;
    s.p_interference = 0.2;
    s.particles = 1024;
    s.precision = core::Precision::kFp32Qm;
    s.ate_bound_m = 0.5;
    m.push_back(s);
  }
  // Generated-world scenarios (worldgen + dynamic-obstacle subsystem).
  {
    Scenario s;
    s.name = "office_floorplan_global";
    s.environment = Environment::kOffice;
    s.world_seed = 3;
    s.plan = 0;  // full room tour
    s.particles = 8192;
    s.ate_bound_m = 0.5;
    m.push_back(s);
  }
  {
    Scenario s;
    s.name = "loop_corridor_global";
    s.environment = Environment::kLoopCorridor;
    s.world_seed = 1;
    s.plan = 0;  // ring tour
    s.particles = 8192;
    s.ate_bound_m = 0.5;
    m.push_back(s);
  }
  {
    Scenario s;
    s.name = "warehouse_dynamic_crossing";
    s.environment = Environment::kWarehouse;
    s.init = Init::kTracking;
    s.world_seed = 2;
    s.plan = 0;  // aisle tour
    s.obstacle_count = 1;
    s.obstacle_speed = 1.2;
    s.ate_bound_m = 0.5;
    m.push_back(s);
  }
  {
    Scenario s;
    s.name = "loop_dynamic_crossing";
    s.environment = Environment::kLoopCorridor;
    s.init = Init::kTracking;
    s.world_seed = 2;
    s.plan = 2;  // shuttle
    s.obstacle_count = 2;
    s.obstacle_speed = 1.2;
    s.particles = 8192;
    s.ate_bound_m = 0.5;
    m.push_back(s);
  }
  // Heavy-crowd scenarios (beam-mixture + novelty gating): deterministic
  // single-seed members of the two statistical families below, so tier-1
  // covers the mixture code path end to end (including serial-vs-pool
  // bit-exactness) while the full multi-seed gates run under the `stats`
  // ctest label.
  m.push_back(crowd_crossing_warehouse());
  m.push_back(corridor_pacing_office());
  // Stale-map scenarios: deterministic single-seed members of the
  // StaleMapStats families, so tier-1 covers the mutate→fly→localize
  // path end to end (including serial-vs-pool bit-exactness). The heavy
  // row uses the family's seed-102 trial (its seed-100 trial ends mid
  // error spike; the multi-seed gate, not one row, carries the claim).
  m.push_back(stale_warehouse(sim::MutationLevel::kLight));
  {
    Scenario s = stale_warehouse(sim::MutationLevel::kHeavy);
    s.data_seed = 102;
    s.mcl_seed = 9;
    s.mutation_seed = 502;
    m.push_back(s);
  }
  return m;
}

/// Environment plus the flight-plan table flown in it (the standard six
/// maze flights, or a generated world's tours).
struct ScenarioWorld {
  sim::EvaluationEnvironment env;  ///< Pristine: the localization map.
  std::vector<sim::FlightPlan> plans;
  /// Stale-map scenarios: the mutated world the drone flies and senses.
  std::optional<sim::EvaluationEnvironment> stale_env;
  const map::World& flight_world() const {
    return stale_env ? stale_env->world : env.world;
  }
};

ScenarioWorld make_world(const Scenario& s) {
  ScenarioWorld world;
  switch (s.environment) {
    case Environment::kLargeMaze:
      world = {sim::evaluation_environment(s.world_seed),
               sim::standard_flight_plans(), std::nullopt};
      break;
    case Environment::kOffice:
    case Environment::kWarehouse:
    case Environment::kLoopCorridor: {
      sim::WorldGenConfig config;
      config.seed = s.world_seed;
      const sim::GeneratedWorldKind kind =
          s.environment == Environment::kOffice
              ? sim::GeneratedWorldKind::kOffice
              : (s.environment == Environment::kWarehouse
                     ? sim::GeneratedWorldKind::kWarehouse
                     : sim::GeneratedWorldKind::kLoopCorridor);
      sim::GeneratedWorld generated = sim::generate_world(kind, config);
      world = {std::move(generated.env), std::move(generated.plans),
               std::nullopt};
      break;
    }
    case Environment::kSmallMaze:
      world.env.world = sim::drone_maze();
      world.env.maze_regions.push_back({{0.0, 0.0}, {4.0, 4.0}});
      world.env.structured_area_m2 = sim::drone_maze_area();
      world.plans = sim::standard_flight_plans();
      break;
  }
  if (s.mutation_level != sim::MutationLevel::kNone) {
    sim::MutationConfig config;
    config.level = s.mutation_level;
    world.stale_env = sim::mutate_world(world.env, world.plans, config,
                                        s.mutation_seed);
  }
  return world;
}

sim::SequenceGeneratorConfig make_generator(const Scenario& s) {
  sim::SequenceGeneratorConfig gen = sim::default_generator_config();
  gen.front_tof.mode = s.zone_mode;
  gen.rear_tof.mode = s.zone_mode;
  gen.tof_rate_hz = s.tof_rate_hz;
  gen.front_tof.p_interference = s.p_interference;
  gen.rear_tof.p_interference = s.p_interference;
  return gen;
}

core::LocalizerConfig make_localizer_config(const Scenario& s) {
  const sim::SequenceGeneratorConfig gen = make_generator(s);
  core::LocalizerConfig cfg;
  cfg.precision = s.precision;
  cfg.mcl.num_particles = s.particles;
  cfg.mcl.seed = s.mcl_seed;
  cfg.mcl.z_short = s.z_short;
  cfg.mcl.lambda_short = s.lambda_short;
  cfg.mcl.enable_novelty_gating = s.novelty_gating;
  cfg.sensors = {gen.front_tof, gen.rear_tof};
  return cfg;
}

/// Replays a sequence through an already-initialized localizer, appending
/// time-offset error samples (so a kidnapped run yields one contiguous
/// trace across both legs). Frames are grouped by capture timestamp, not
/// assumed to arrive in front/rear pairs.
void replay_into(core::Localizer& loc, const sim::Sequence& seq,
                 double t_offset, std::vector<eval::ErrorSample>& out) {
  std::size_t frame_idx = 0;
  for (const sim::StateSample& odom : seq.odometry) {
    loc.on_odometry(odom.pose);
    while (frame_idx < seq.frames.size() &&
           seq.frames[frame_idx].timestamp_s <= odom.t) {
      const double t_frame = seq.frames[frame_idx].timestamp_s;
      std::vector<sensor::TofFrame> group;
      while (frame_idx < seq.frames.size() &&
             seq.frames[frame_idx].timestamp_s == t_frame) {
        group.push_back(seq.frames[frame_idx]);
        ++frame_idx;
      }
      if (!loc.on_frames(group) || !loc.estimate().valid) continue;
      const Pose2 truth = sim::interpolate_pose(seq.ground_truth, odom.t);
      eval::ErrorSample e;
      e.t = t_offset + odom.t;
      e.pos_error = (loc.estimate().pose.position - truth.position).norm();
      e.yaw_error = angle_dist(loc.estimate().pose.yaw, truth.yaw);
      out.push_back(e);
    }
  }
}

struct ScenarioResult {
  std::vector<eval::ErrorSample> errors;
  std::size_t updates_run = 0;
  Pose2 final_pose{};
  double leg1_duration_s = 0.0;  ///< Kidnap instant for two-leg runs.
};

/// The recorded flight(s) one scenario replays: one leg, or two for
/// kidnapped runs.
struct ScenarioDataset {
  std::vector<sim::Sequence> legs;
};

/// Generates a scenario's dataset. Deterministic in the scenario fields;
/// the data RNG is shared across both legs of a kidnapped run, exactly as
/// the original inline generation did.
ScenarioDataset make_dataset(const Scenario& s, const ScenarioWorld& world) {
  const auto& plans = world.plans;
  sim::SequenceGeneratorConfig gen = make_generator(s);
  if (s.obstacle_count > 0) {
    gen.obstacles = sim::scatter_obstacles_seeded(
        plans, s.obstacle_count, s.obstacle_speed, s.data_seed);
  }
  if (s.pacing_obstacle) {
    gen.obstacles.push_back(
        sim::pace_obstacle(plans[s.plan], s.pacing_lead_m, s.pacing_speed));
  }
  Rng data_rng(s.data_seed);
  ScenarioDataset ds;
  // Stale-map scenarios fly and sense the mutated world; the pristine
  // grid the replay localizes against never changes.
  ds.legs.push_back(sim::generate_sequence(world.flight_world(),
                                           plans[s.plan], gen, data_rng));
  if (s.init == Init::kKidnapped) {
    // The second leg starts elsewhere in the maze; the odometry stream is
    // self-consistent but unrelated to leg 1's end pose — a teleport. The
    // filter is NOT re-initialized: recovery must come from the
    // Augmented-MCL injection.
    ds.legs.push_back(sim::generate_sequence(
        world.flight_world(), plans[s.kidnap_plan], gen, data_rng));
  }
  return ds;
}

/// Replays a prebuilt dataset through a fresh localizer configured from
/// the scenario. Split from run_scenario so the multi-seed statistical
/// batteries can replay SEVERAL observation models against one generated
/// dataset (the expensive part) without regenerating it.
ScenarioResult replay_scenario(const Scenario& s,
                               const map::OccupancyGrid& grid,
                               const ScenarioDataset& ds,
                               core::Executor& executor) {
  const sim::Sequence& leg1 = ds.legs.front();
  core::Localizer loc(grid, make_localizer_config(s), executor);
  loc.on_odometry(leg1.odometry.front().pose);
  if (s.init == Init::kTracking) {
    loc.start_at(leg1.ground_truth.front().pose, 0.2, 0.2);
  } else {
    loc.start_global();
  }

  ScenarioResult result;
  result.leg1_duration_s = leg1.duration_s;
  replay_into(loc, leg1, 0.0, result.errors);
  if (ds.legs.size() > 1) {
    replay_into(loc, ds.legs[1], leg1.duration_s, result.errors);
  }
  result.updates_run = loc.updates_run();
  result.final_pose = loc.estimate().pose;
  return result;
}

/// Runs one scenario end to end on the given executor. Fully deterministic
/// for a fixed scenario: every RNG is seeded from the scenario fields.
ScenarioResult run_scenario(const Scenario& s, core::Executor& executor) {
  const ScenarioWorld world = make_world(s);
  const map::OccupancyGrid grid =
      sim::rasterize_environment(world.env, 0.05, 0.01);
  const ScenarioDataset ds = make_dataset(s, world);
  return replay_scenario(s, grid, ds, executor);
}

/// Bitwise comparison of two scenario results. EXPECT_EQ on doubles is
/// exact equality — any reordering of floating-point reductions between
/// executors would trip it.
void expect_bit_identical(const ScenarioResult& a, const ScenarioResult& b,
                          const std::string& label) {
  EXPECT_EQ(a.updates_run, b.updates_run) << label;
  ASSERT_EQ(a.errors.size(), b.errors.size()) << label;
  for (std::size_t i = 0; i < a.errors.size(); ++i) {
    EXPECT_EQ(a.errors[i].t, b.errors[i].t) << label << " sample " << i;
    EXPECT_EQ(a.errors[i].pos_error, b.errors[i].pos_error)
        << label << " sample " << i;
    EXPECT_EQ(a.errors[i].yaw_error, b.errors[i].yaw_error)
        << label << " sample " << i;
  }
  EXPECT_EQ(a.final_pose.x(), b.final_pose.x()) << label;
  EXPECT_EQ(a.final_pose.y(), b.final_pose.y()) << label;
  EXPECT_EQ(a.final_pose.yaw, b.final_pose.yaw) << label;
}

class ScenarioMatrix : public ::testing::TestWithParam<Scenario> {};

// The core regression gate: every scenario converges, tracks within its
// ATE bound, and ends near the truth — on the serial reference executor.
TEST_P(ScenarioMatrix, ConvergesWithinBounds) {
  const Scenario& s = GetParam();
  core::SerialExecutor exec;
  const ScenarioResult result = run_scenario(s, exec);

  ASSERT_GT(result.errors.size(), 30u) << s.name;
  EXPECT_GT(result.updates_run, 30u) << s.name;

  // For kidnapped runs judge convergence and ATE on the post-kidnap
  // segment: the interesting claim is re-localization, and the teleport
  // instant itself is a guaranteed (intended) error spike.
  std::vector<eval::ErrorSample> judged = result.errors;
  if (s.init == Init::kKidnapped) {
    std::vector<eval::ErrorSample> post;
    for (const eval::ErrorSample& e : judged) {
      if (e.t > result.leg1_duration_s) post.push_back(e);
    }
    ASSERT_GT(post.size(), 20u) << s.name;
    judged = post;
  }

  eval::ConvergenceCriteria criteria;
  const eval::RunMetrics metrics = eval::evaluate_run(judged, criteria);
  EXPECT_TRUE(metrics.converged) << s.name;
  EXPECT_TRUE(metrics.success) << s.name;
  EXPECT_LT(metrics.ate_m, s.ate_bound_m) << s.name;
  EXPECT_LT(judged.back().pos_error, s.final_error_bound_m) << s.name;
  EXPECT_TRUE(std::isfinite(result.final_pose.x()) &&
              std::isfinite(result.final_pose.y()) &&
              std::isfinite(result.final_pose.yaw))
      << s.name;
}

// Executor equivalence: the thread-pool executor must reproduce the serial
// trace bit for bit (same logical chunking ⇒ same reductions ⇒ same
// filter state), for every scenario in the matrix.
TEST_P(ScenarioMatrix, SerialAndThreadPoolAreBitExact) {
  const Scenario& s = GetParam();
  core::SerialExecutor serial;
  const ScenarioResult reference = run_scenario(s, serial);

  ThreadPool pool(4);
  core::ThreadPoolExecutor pooled(pool);
  const ScenarioResult parallel = run_scenario(s, pooled);

  expect_bit_identical(reference, parallel, s.name + " serial-vs-pool");
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScenarioMatrix,
                         ::testing::ValuesIn(scenario_matrix()),
                         [](const auto& info) { return info.param.name; });

// ---- Multi-seed statistical gates (ctest label: stats) -------------------
//
// A single lucky seed proves nothing about a statistical claim, so the
// heavy-crowd acceptance runs N independent (data_seed, mcl_seed) pairs
// per family and gates on the SUCCESS COUNT, binomial-style: if the
// mixture model's true per-seed success probability is ≥ 0.95 (observed:
// 16/16 across both families during tuning), the chance of dipping below
// the pass threshold is < 5 %; if the seed model's true failure
// probability is ≥ 0.6 (observed: 14/16 failures), the chance of
// undershooting the expected-fail threshold is similarly small. Each seed
// generates its dataset ONCE and replays it through both observation
// models — a paired comparison, and half the generation cost.
//
// Registered as a separate ctest entry (test_scenario_matrix_stats, label
// `stats`) so the fast tier-1 suite keeps its wall-clock; see
// tests/CMakeLists.txt and the dedicated CI step.

struct CrowdOutcome {
  std::size_t mixture_pass = 0;
  std::size_t baseline_fail = 0;
  std::size_t seeds = 0;
};

/// Metrics-level success of one replay (the same judgement the
/// deterministic matrix applies: converged + ATE within the paper's 1 m
/// failure bound).
bool replay_succeeds(const Scenario& s, const map::OccupancyGrid& grid,
                     const ScenarioDataset& ds, core::Executor& exec) {
  const ScenarioResult r = replay_scenario(s, grid, ds, exec);
  if (r.errors.size() <= 30) return false;
  const eval::RunMetrics metrics = eval::evaluate_run(r.errors);
  return metrics.converged && metrics.success;
}

CrowdOutcome run_crowd_battery(const Scenario& proto, std::size_t seeds,
                               std::uint64_t first_data_seed,
                               std::uint64_t first_mcl_seed) {
  core::SerialExecutor exec;
  const ScenarioWorld world = make_world(proto);
  const map::OccupancyGrid grid =
      sim::rasterize_environment(world.env, 0.05, 0.01);
  CrowdOutcome out;
  out.seeds = seeds;
  for (std::size_t i = 0; i < seeds; ++i) {
    Scenario s = proto;
    s.data_seed = first_data_seed + i;
    s.mcl_seed = first_mcl_seed + i;
    const ScenarioDataset ds = make_dataset(s, world);

    Scenario baseline = s;  // the seed model: two-term likelihood, no gate
    baseline.z_short = 0.0;
    baseline.novelty_gating = false;
    if (!replay_succeeds(baseline, grid, ds, exec)) ++out.baseline_fail;
    if (replay_succeeds(s, grid, ds, exec)) ++out.mixture_pass;
  }
  return out;
}

TEST(CrowdStats, WarehouseCrossingSuccessRate) {
  const CrowdOutcome o =
      run_crowd_battery(crowd_crossing_warehouse(), 7, 100, 7);
  // Mixture + gating must hold the crowd regime across seeds…
  EXPECT_GE(o.mixture_pass, 6u) << "of " << o.seeds;
  // …and the seed model must demonstrably fail it (expected-fail
  // baseline check: the scenario family is a real discriminator, not a
  // bound every model satisfies).
  EXPECT_GE(o.baseline_fail, 2u) << "of " << o.seeds;
}

TEST(CrowdStats, OfficeCorridorPacingSuccessRate) {
  const CrowdOutcome o =
      run_crowd_battery(corridor_pacing_office(), 5, 100, 7);
  EXPECT_GE(o.mixture_pass, 4u) << "of " << o.seeds;
  EXPECT_GE(o.baseline_fail, 3u) << "of " << o.seeds;
}

// The ROADMAP's open loop-corridor + pacing-walker item, pinned as an
// explicit EXPECTED-FAILURE gate: today NEITHER model tracks this regime
// (observed 0/5 mixture passes, 5/5 baseline failures while tuning), and
// any future fix — odometry-trust scheduling, bay-depth features in the
// rear sensor's longitudinal scoring — will flip these bounds loudly
// instead of improving invisibly. If this test "fails" because
// mixture_pass rose, the fix worked: promote the scenario to a positive
// gate and close the ROADMAP item.
TEST(CrowdStats, LoopCorridorPacingKnownFailureRate) {
  const CrowdOutcome o =
      run_crowd_battery(loop_pacing_known_failure(), 5, 100, 7);
  EXPECT_LE(o.mixture_pass, 1u)
      << "of " << o.seeds
      << " — the known-failing regime now tracks; promote this gate!";
  EXPECT_GE(o.baseline_fail, 4u) << "of " << o.seeds;
}

// ---- Stale-map statistical gates (ctest label: stats) --------------------
//
// The lifelong-localization claim is rate-based, so it gets the same
// binomial treatment as CrowdStats: N independent trials per family, each
// drawing its own (data_seed, mcl_seed, mutation_seed) — the staleness
// draw varies per trial, so the gate marginalizes over what ACTUALLY
// changed in the building, not one lucky rearrangement. Each trial
// mutates the world, generates one dataset in it, and replays that
// dataset through both observation models against the pristine map (a
// paired comparison; tuning observations with tools/debug_crowd.cpp:
// warehouse heavy 6/7 mixture passes vs 5/7 baseline failures, office
// heavy 4/5 vs 4/5, warehouse light 7/7 mixture with 2/7 baseline
// failures).

CrowdOutcome run_stale_battery(const Scenario& proto, std::size_t seeds,
                               std::uint64_t first_data_seed,
                               std::uint64_t first_mcl_seed,
                               std::uint64_t first_mutation_seed) {
  core::SerialExecutor exec;
  // The pristine world and the filter's map are trial-invariant (only
  // the mutation draw varies): build them once. Staleness only ever
  // reaches the filter through the sensed beams.
  Scenario pristine = proto;
  pristine.mutation_level = sim::MutationLevel::kNone;
  const ScenarioWorld base = make_world(pristine);
  const map::OccupancyGrid grid =
      sim::rasterize_environment(base.env, 0.05, 0.01);
  CrowdOutcome out;
  out.seeds = seeds;
  for (std::size_t i = 0; i < seeds; ++i) {
    Scenario s = proto;
    s.data_seed = first_data_seed + i;
    s.mcl_seed = first_mcl_seed + i;
    s.mutation_seed = first_mutation_seed + i;
    ScenarioWorld world{base.env, base.plans, std::nullopt};
    sim::MutationConfig config;
    config.level = s.mutation_level;
    world.stale_env =
        sim::mutate_world(base.env, base.plans, config, s.mutation_seed);
    const ScenarioDataset ds = make_dataset(s, world);

    Scenario baseline = s;  // the seed model: two-term likelihood, no gate
    baseline.z_short = 0.0;
    baseline.novelty_gating = false;
    if (!replay_succeeds(baseline, grid, ds, exec)) ++out.baseline_fail;
    if (replay_succeeds(s, grid, ds, exec)) ++out.mixture_pass;
  }
  return out;
}

TEST(StaleMapStats, WarehouseHeavyStalenessSuccessRate) {
  const CrowdOutcome o = run_stale_battery(
      stale_warehouse(sim::MutationLevel::kHeavy), 7, 100, 7, 500);
  // Mixture + gating must keep tracking through a rearranged hall…
  EXPECT_GE(o.mixture_pass, 5u) << "of " << o.seeds;
  // …where the legacy two-term model demonstrably loses the map.
  EXPECT_GE(o.baseline_fail, 3u) << "of " << o.seeds;
}

TEST(StaleMapStats, OfficeHeavyStalenessSuccessRate) {
  const CrowdOutcome o =
      run_stale_battery(stale_office_heavy(), 5, 100, 7, 500);
  EXPECT_GE(o.mixture_pass, 3u) << "of " << o.seeds;
  EXPECT_GE(o.baseline_fail, 3u) << "of " << o.seeds;
}

TEST(StaleMapStats, WarehouseLightStalenessIsSurvivable) {
  const CrowdOutcome o = run_stale_battery(
      stale_warehouse(sim::MutationLevel::kLight), 7, 100, 7, 500);
  // Light staleness must be (nearly) free for the robust config; the
  // baseline bound only documents that even light staleness already
  // costs the legacy model seeds — it is NOT a reliable discriminator
  // at this level (the heavy families above carry that claim).
  EXPECT_GE(o.mixture_pass, 6u) << "of " << o.seeds;
  EXPECT_GE(o.baseline_fail, 1u) << "of " << o.seeds;
}

// Run-to-run determinism: the same scenario executed twice in the same
// process yields a bitwise-identical trace (fixed seeds, no hidden global
// state). For CROSS-process determinism, set TOFMCL_SCENARIO_TRACE to a
// file path: the trace is written as hexfloats, and two invocations'
// files must be byte-identical (diffed by CI).
TEST(ScenarioMatrixDeterminism, RepeatedRunsAreBitIdentical) {
  const Scenario s = scenario_matrix().front();
  core::SerialExecutor exec;
  const ScenarioResult first = run_scenario(s, exec);
  const ScenarioResult second = run_scenario(s, exec);
  expect_bit_identical(first, second, s.name + " repeat");

  if (const char* path = std::getenv("TOFMCL_SCENARIO_TRACE")) {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open()) << path;
    out << std::hexfloat << s.name << " updates=" << first.updates_run
        << '\n';
    for (const eval::ErrorSample& e : first.errors) {
      out << e.t << ' ' << e.pos_error << ' ' << e.yaw_error << '\n';
    }
    out << first.final_pose.x() << ' ' << first.final_pose.y() << ' '
        << first.final_pose.yaw << '\n';
  }
}

}  // namespace
}  // namespace tofmcl
