// Tests for frontier detection and selection (the exploration extension).

#include "plan/frontier.hpp"

#include <gtest/gtest.h>

namespace tofmcl::plan {
namespace {

using map::CellState;
using map::OccupancyGrid;

TEST(Frontier, NoUnknownMeansNoFrontier) {
  OccupancyGrid grid(20, 20, 0.05, {}, CellState::kFree);
  EXPECT_TRUE(find_frontiers(grid).empty());
}

TEST(Frontier, AllUnknownMeansNoFrontier) {
  OccupancyGrid grid(20, 20, 0.05, {}, CellState::kUnknown);
  EXPECT_TRUE(find_frontiers(grid).empty());
}

TEST(Frontier, BoundaryBetweenFreeAndUnknown) {
  // Left half explored, right half unknown: one vertical frontier line.
  OccupancyGrid grid(20, 10, 0.1, {}, CellState::kUnknown);
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 10; ++x) grid.set({x, y}, CellState::kFree);
  }
  const auto frontiers = find_frontiers(grid);
  ASSERT_EQ(frontiers.size(), 1u);
  EXPECT_EQ(frontiers[0].size(), 10u);  // the x=9 column
  for (const map::CellIndex& c : frontiers[0].cells) {
    EXPECT_EQ(c.x, 9);
  }
  // Centroid on that column.
  EXPECT_NEAR(frontiers[0].centroid.x, 0.95, 1e-9);
}

TEST(Frontier, WallsBlockFrontierStatus) {
  // Free cells separated from unknown space by a wall are not frontiers.
  OccupancyGrid grid(3, 1, 0.1, {}, CellState::kFree);
  grid.set({1, 0}, CellState::kOccupied);
  grid.set({2, 0}, CellState::kUnknown);
  EXPECT_TRUE(find_frontiers(grid, 1).empty());
}

TEST(Frontier, MinSizeFilters) {
  OccupancyGrid grid(10, 10, 0.1, {}, CellState::kFree);
  grid.set({5, 5}, CellState::kUnknown);  // creates a 4-cell frontier ring
  EXPECT_FALSE(find_frontiers(grid, 1).empty());
  EXPECT_TRUE(find_frontiers(grid, 9).empty());
}

TEST(Frontier, TwoSeparateRegions) {
  OccupancyGrid grid(21, 5, 0.1, {}, CellState::kFree);
  // Unknown stripes at both ends, separated by a long free middle.
  for (int y = 0; y < 5; ++y) {
    grid.set({0, y}, CellState::kUnknown);
    grid.set({20, y}, CellState::kUnknown);
  }
  const auto frontiers = find_frontiers(grid);
  ASSERT_EQ(frontiers.size(), 2u);
  EXPECT_EQ(frontiers[0].size(), 5u);
  EXPECT_EQ(frontiers[1].size(), 5u);
}

TEST(Frontier, SelectionBalancesSizeAndDistance) {
  std::vector<Frontier> frontiers(2);
  frontiers[0].centroid = {10.0, 0.0};  // big but far
  frontiers[0].cells.resize(20);
  frontiers[1].centroid = {1.0, 0.0};  // small but near
  frontiers[1].cells.resize(5);
  // From the origin: 20/(10+1) = 1.8 vs 5/(1+1) = 2.5 → pick the near one.
  EXPECT_EQ(select_frontier(frontiers, {0.0, 0.0}), 1);
  // From next to the big one: 20/1 vs 5/10 → pick the big one.
  EXPECT_EQ(select_frontier(frontiers, {10.0, 0.0}), 0);
}

TEST(Frontier, SelectionEmpty) {
  EXPECT_EQ(select_frontier({}, {0.0, 0.0}), -1);
}

}  // namespace
}  // namespace tofmcl::plan
