// Tests for the GAP9 power model (Table II) and the system power budget
// (Section IV-E: sensing + processing below 7 % of total drone power).

#include "platform/gap9_power.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tofmcl::platform {
namespace {

TEST(Gap9Power, ReproducesTableTwoOperatingPoints) {
  const Gap9PowerModel power;
  // Published: 61 mW @ 400 MHz, 38 mW @ 200 MHz, 13 mW @ 12 MHz.
  EXPECT_NEAR(power.active_power_mw(400.0), 61.0, 61.0 * 0.10);
  EXPECT_NEAR(power.active_power_mw(200.0), 38.0, 38.0 * 0.10);
  EXPECT_NEAR(power.active_power_mw(12.0), 13.0, 13.0 * 0.10);
}

TEST(Gap9Power, TableTwoExecutionTimes) {
  const Gap9PowerModel power;
  const Gap9TimingModel timing = calibrated_timing_model();
  // 1024 particles: 1.901 ms @ 400 MHz, 59.898 ms @ 12 MHz.
  EXPECT_NEAR(timing.update_ns(1024, 8, Placement::kL1, 400.0) * 1e-6,
              1.901, 0.25);
  EXPECT_NEAR(timing.update_ns(1024, 8, Placement::kL1, 12.0) * 1e-6,
              59.898, 8.0);
  // 16384 particles: 30.880 ms @ 400 MHz, 61.524 ms @ 200 MHz.
  EXPECT_NEAR(timing.update_ns(16384, 8, Placement::kL2, 400.0) * 1e-6,
              30.880, 3.0);
  EXPECT_NEAR(timing.update_ns(16384, 8, Placement::kL2, 200.0) * 1e-6,
              61.524, 6.0);
}

TEST(Gap9Power, PowerMonotoneInFrequency) {
  const Gap9PowerModel power;
  double prev = 0.0;
  for (double f = 10.0; f <= 400.0; f += 10.0) {
    const double p = power.active_power_mw(f);
    EXPECT_GT(p, prev) << "f=" << f;
    prev = p;
  }
}

TEST(Gap9Power, VoltageInterpolatesAndClamps) {
  const Gap9PowerModel power;
  EXPECT_DOUBLE_EQ(power.voltage_at(12.0), 0.46);
  EXPECT_DOUBLE_EQ(power.voltage_at(400.0), 0.80);
  EXPECT_DOUBLE_EQ(power.voltage_at(1000.0), 0.80);  // clamped
  EXPECT_DOUBLE_EQ(power.voltage_at(1.0), 0.46);     // clamped
  const double mid = power.voltage_at(300.0);
  EXPECT_GT(mid, 0.70);
  EXPECT_LT(mid, 0.80);
  EXPECT_THROW(power.voltage_at(0.0), PreconditionError);
}

TEST(Gap9Power, EnergyPerUpdate) {
  const Gap9PowerModel power;
  const Gap9TimingModel timing = calibrated_timing_model();
  // 1024 particles @ 400 MHz: ~1.9 ms × 61 mW ≈ 116 µJ.
  const double e400 =
      power.update_energy_uj(timing, 1024, 8, Placement::kL1, 400.0);
  EXPECT_NEAR(e400, 116.0, 25.0);
  // Racing to idle vs slow execution: at 12 MHz the same update takes
  // ~60 ms × 13 mW ≈ 780 µJ — lower power but more energy per update.
  const double e12 =
      power.update_energy_uj(timing, 1024, 8, Placement::kL1, 12.0);
  EXPECT_GT(e12, 4.0 * e400);
}

TEST(SystemBudget, PaperPowerBreakdown) {
  const SystemPowerBudget budget;
  // Section IV-E: 2×320 mW sensors + 280 mW electronics + 61 mW GAP9 =
  // 981 mW ≈ 7 % of total drone power.
  EXPECT_DOUBLE_EQ(budget.sensing_processing_mw(61.0), 981.0);
  EXPECT_NEAR(budget.overhead_fraction(61.0), 0.07, 0.005);
  // Claim (iv): 3–7 % across operating points — the lowest point uses one
  // sensor... even with both sensors at 13 mW the fraction stays within
  // the advertised band.
  EXPECT_GT(budget.overhead_fraction(13.0), 0.03);
  EXPECT_LT(budget.overhead_fraction(13.0), 0.07);
}

TEST(SystemBudget, FractionIncreasesWithGap9Power) {
  const SystemPowerBudget budget;
  EXPECT_LT(budget.overhead_fraction(13.0), budget.overhead_fraction(61.0));
}

}  // namespace
}  // namespace tofmcl::platform
