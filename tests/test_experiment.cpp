// Tests for the sweep/replay harness: variant properties, replay
// correctness on a known-good case and a miniature end-to-end sweep.

#include "eval/experiment.hpp"

#include <gtest/gtest.h>

namespace tofmcl::eval {
namespace {

TEST(Variant, Names) {
  EXPECT_STREQ(to_string(Variant::kFp32), "fp32");
  EXPECT_STREQ(to_string(Variant::kFp32_1Tof), "fp32_1tof");
  EXPECT_STREQ(to_string(Variant::kFp32Qm), "fp32qm");
  EXPECT_STREQ(to_string(Variant::kFp16Qm), "fp16qm");
}

TEST(Variant, PrecisionMapping) {
  EXPECT_EQ(precision_of(Variant::kFp32), core::Precision::kFp32);
  EXPECT_EQ(precision_of(Variant::kFp32_1Tof), core::Precision::kFp32);
  EXPECT_EQ(precision_of(Variant::kFp32Qm), core::Precision::kFp32Qm);
  EXPECT_EQ(precision_of(Variant::kFp16Qm), core::Precision::kFp16Qm);
}

TEST(Variant, RearSensorUsage) {
  EXPECT_TRUE(uses_rear_sensor(Variant::kFp32));
  EXPECT_FALSE(uses_rear_sensor(Variant::kFp32_1Tof));
  EXPECT_TRUE(uses_rear_sensor(Variant::kFp16Qm));
}

TEST(Replay, ProducesErrorTrace) {
  const sim::EvaluationEnvironment env = sim::evaluation_environment();
  const map::OccupancyGrid grid = sim::rasterize_environment(env, 0.05, 0.01);
  const auto plans = sim::standard_flight_plans();
  Rng rng(77);
  const sim::Sequence seq = sim::generate_sequence(
      env.world, plans[3], sim::default_generator_config(), rng);

  core::LocalizerConfig loc;
  loc.mcl.num_particles = 2048;
  loc.mcl.seed = 3;
  core::SerialExecutor exec;
  const auto errors = replay_sequence(seq, grid, loc, true, exec);
  ASSERT_GT(errors.size(), 30u);
  // Timestamps strictly increasing and inside the sequence span.
  for (std::size_t i = 1; i < errors.size(); ++i) {
    EXPECT_GT(errors[i].t, errors[i - 1].t);
  }
  EXPECT_LE(errors.back().t, seq.duration_s + 1e-9);
  // Errors are physical quantities.
  for (const ErrorSample& e : errors) {
    EXPECT_GE(e.pos_error, 0.0);
    EXPECT_GE(e.yaw_error, 0.0);
    EXPECT_LE(e.yaw_error, kPi + 1e-9);
  }
}

TEST(Replay, SingleSensorSeesFewerBeamsButRuns) {
  const sim::EvaluationEnvironment env = sim::evaluation_environment();
  const map::OccupancyGrid grid = sim::rasterize_environment(env, 0.05, 0.01);
  const auto plans = sim::standard_flight_plans();
  Rng rng(78);
  const sim::Sequence seq = sim::generate_sequence(
      env.world, plans[3], sim::default_generator_config(), rng);
  core::LocalizerConfig loc;
  loc.mcl.num_particles = 512;
  core::SerialExecutor exec;
  const auto errors = replay_sequence(seq, grid, loc, false, exec);
  EXPECT_GT(errors.size(), 30u);
}

TEST(Sweep, MiniatureEndToEnd) {
  SweepConfig cfg;
  cfg.variants = {Variant::kFp32Qm};
  cfg.particle_counts = {512};
  cfg.sequences = 1;
  cfg.seeds_per_sequence = 2;
  cfg.threads = 2;
  const SweepResult result = run_accuracy_sweep(cfg);
  ASSERT_EQ(result.runs.size(), 2u);
  EXPECT_GT(result.horizon_s, 10.0);
  for (const RunResult& run : result.runs) {
    EXPECT_EQ(run.variant, Variant::kFp32Qm);
    EXPECT_EQ(run.particles, 512u);
    EXPECT_EQ(run.sequence, 0u);
  }
  // Two seeds must actually differ.
  EXPECT_NE(result.runs[0].seed, result.runs[1].seed);

  const auto cells = summarize(cfg, result);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].runs, 2u);
  EXPECT_GE(cells[0].success_rate, 0.0);
  EXPECT_LE(cells[0].success_rate, 1.0);

  const auto curve =
      cell_convergence_curve(result, Variant::kFp32Qm, 512, 20);
  EXPECT_EQ(curve.time_s.size(), 20u);
}

TEST(Sweep, DeterministicAcrossCalls) {
  SweepConfig cfg;
  cfg.variants = {Variant::kFp32Qm};
  cfg.particle_counts = {256};
  cfg.sequences = 1;
  cfg.seeds_per_sequence = 1;
  cfg.threads = 2;
  const SweepResult a = run_accuracy_sweep(cfg);
  const SweepResult b = run_accuracy_sweep(cfg);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  EXPECT_EQ(a.runs[0].metrics.converged, b.runs[0].metrics.converged);
  EXPECT_DOUBLE_EQ(a.runs[0].metrics.ate_m, b.runs[0].metrics.ate_m);
}

TEST(Sweep, RejectsBadConfig) {
  SweepConfig cfg;
  cfg.sequences = 0;
  EXPECT_THROW(run_accuracy_sweep(cfg), PreconditionError);
  cfg.sequences = 7;
  EXPECT_THROW(run_accuracy_sweep(cfg), PreconditionError);
  cfg.sequences = 1;
  cfg.seeds_per_sequence = 0;
  EXPECT_THROW(run_accuracy_sweep(cfg), PreconditionError);
}

}  // namespace
}  // namespace tofmcl::eval
