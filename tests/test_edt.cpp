// Tests for the Felzenszwalb–Huttenlocher Euclidean distance transform,
// including exactness against the O(n²) reference on randomized grids
// (parameterized property sweep) and the truncation semantics the
// observation model relies on.

#include "map/edt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace tofmcl::map {
namespace {

OccupancyGrid empty_grid(int w, int h) {
  return OccupancyGrid(w, h, 0.05, {0.0, 0.0}, CellState::kFree);
}

TEST(Dt1d, SingleSource) {
  // f = [INF, INF, 0, INF]: d[i] = (i-2)².
  std::vector<double> f{1e18, 1e18, 0.0, 1e18};
  std::vector<double> d;
  detail::dt_1d(f, d);
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
  EXPECT_DOUBLE_EQ(d[3], 1.0);
}

TEST(Dt1d, TwoSources) {
  std::vector<double> f{0.0, 1e18, 1e18, 1e18, 0.0};
  std::vector<double> d;
  detail::dt_1d(f, d);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 4.0);
  EXPECT_DOUBLE_EQ(d[3], 1.0);
  EXPECT_DOUBLE_EQ(d[4], 0.0);
}

TEST(Dt1d, NonZeroBaseValues) {
  // Seeded costs act as parabola heights: d[i] = min_j (i-j)² + f[j].
  std::vector<double> f{2.0, 1e18, 0.5};
  std::vector<double> d;
  detail::dt_1d(f, d);
  EXPECT_DOUBLE_EQ(d[0], 2.0);  // min(0+2.0, 1+1e18, 4+0.5)
  EXPECT_DOUBLE_EQ(d[1], 1.5);  // min(1+2.0, 0+1e18, 1+0.5)
  EXPECT_DOUBLE_EQ(d[2], 0.5);
}

TEST(Dt1d, EmptyAndSingleton) {
  std::vector<double> d;
  detail::dt_1d({}, d);
  EXPECT_TRUE(d.empty());
  detail::dt_1d({7.0}, d);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d[0], 7.0);
}

TEST(Edt, SingleObstacleDistances) {
  auto g = empty_grid(5, 5);
  g.set({2, 2}, CellState::kOccupied);
  const auto sq = edt_squared_cells(g);
  const auto at = [&](int x, int y) {
    return sq[static_cast<std::size_t>(y) * 5 + static_cast<std::size_t>(x)];
  };
  EXPECT_DOUBLE_EQ(at(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(at(3, 2), 1.0);
  EXPECT_DOUBLE_EQ(at(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(at(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(at(4, 4), 8.0);
}

TEST(Edt, UnknownCellsAreNotSources) {
  auto g = empty_grid(5, 1);
  g.set({0, 0}, CellState::kUnknown);
  g.set({4, 0}, CellState::kOccupied);
  const auto sq = edt_squared_cells(g);
  EXPECT_DOUBLE_EQ(sq[0], 16.0);  // unknown cell measures to the occupied one
  EXPECT_DOUBLE_EQ(sq[3], 1.0);
}

TEST(Edt, NoObstaclesGivesFarSentinel) {
  const auto g = empty_grid(8, 8);
  const auto sq = edt_squared_cells(g);
  for (const double v : sq) EXPECT_GE(v, 1e17);
}

TEST(Edt, MetersScalingAndTruncation) {
  auto g = empty_grid(41, 1);  // 41 cells × 0.05 m
  g.set({0, 0}, CellState::kOccupied);
  const double rmax = 1.5;
  const auto m = edt_meters(g, rmax);
  EXPECT_FLOAT_EQ(m[0], 0.0f);
  EXPECT_FLOAT_EQ(m[10], 0.5f);
  EXPECT_FLOAT_EQ(m[30], 1.5f);
  // Beyond 30 cells (1.5 m) everything is truncated at rmax.
  EXPECT_FLOAT_EQ(m[31], 1.5f);
  EXPECT_FLOAT_EQ(m[40], 1.5f);
}

TEST(Edt, MetersOnEmptyMapIsRmaxEverywhere) {
  const auto g = empty_grid(6, 6);
  const auto m = edt_meters(g, 1.5);
  for (const float v : m) EXPECT_FLOAT_EQ(v, 1.5f);
}

// ---------------------------------------------------------------------------
// Property sweep: exactness vs brute force on randomized grids of varying
// size and occupancy density.

struct EdtCase {
  int width;
  int height;
  double density;
  std::uint64_t seed;
};

class EdtProperty : public ::testing::TestWithParam<EdtCase> {};

TEST_P(EdtProperty, MatchesBruteForce) {
  const EdtCase c = GetParam();
  Rng rng(c.seed);
  OccupancyGrid g(c.width, c.height, 0.05, {0.0, 0.0}, CellState::kFree);
  for (int y = 0; y < c.height; ++y) {
    for (int x = 0; x < c.width; ++x) {
      if (rng.bernoulli(c.density)) g.set({x, y}, CellState::kOccupied);
    }
  }
  const auto fast = edt_squared_cells(g);
  const auto slow = edt_squared_cells_brute_force(g);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    if (slow[i] >= 1e17) {
      EXPECT_GE(fast[i], 1e17) << "cell " << i;
    } else {
      EXPECT_DOUBLE_EQ(fast[i], slow[i]) << "cell " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGrids, EdtProperty,
    ::testing::Values(EdtCase{1, 1, 0.5, 1}, EdtCase{16, 1, 0.2, 2},
                      EdtCase{1, 16, 0.2, 3}, EdtCase{8, 8, 0.1, 4},
                      EdtCase{8, 8, 0.9, 5}, EdtCase{31, 17, 0.05, 6},
                      EdtCase{17, 31, 0.3, 7}, EdtCase{40, 40, 0.02, 8},
                      EdtCase{40, 40, 0.5, 9}, EdtCase{64, 64, 0.01, 10},
                      EdtCase{25, 25, 0.0, 11}, EdtCase{25, 25, 1.0, 12}),
    [](const ::testing::TestParamInfo<EdtCase>& param_info) {
      const auto& c = param_info.param;
      return std::to_string(c.width) + "x" + std::to_string(c.height) +
             "_d" + std::to_string(static_cast<int>(c.density * 100)) +
             "_s" + std::to_string(c.seed);
    });

}  // namespace
}  // namespace tofmcl::map
