// Tests for the A* planner: optimality on simple grids, clearance
// handling, corner-cutting prevention, line-of-sight simplification and
// planning through the drone maze.

#include "plan/astar.hpp"

#include <gtest/gtest.h>

#include "map/rasterize.hpp"
#include "sim/maze.hpp"

namespace tofmcl::plan {
namespace {

struct Env {
  map::OccupancyGrid grid;
  map::DistanceMap distance;
};

Env make_env(const map::World& world, double resolution = 0.05) {
  map::RasterizeOptions opt;
  opt.resolution = resolution;
  map::OccupancyGrid grid = map::rasterize(world, opt);
  map::DistanceMap distance(grid, 1.5);
  return {std::move(grid), std::move(distance)};
}

Env open_room() {
  map::World w;
  w.add_rectangle({{0.0, 0.0}, {4.0, 3.0}});
  return make_env(w);
}

TEST(AStar, StraightLineInOpenSpace) {
  const Env env = open_room();
  const auto path =
      plan_path(env.grid, env.distance, {0.5, 1.5}, {3.5, 1.5});
  ASSERT_TRUE(path.has_value());
  // Length close to the Euclidean distance.
  EXPECT_NEAR(path->length_m, 3.0, 0.15);
  // Simplified to (nearly) a single segment.
  EXPECT_LE(path->waypoints.size(), 3u);
  EXPECT_NEAR(path->waypoints.front().x, 0.5, 0.05);
  EXPECT_NEAR(path->waypoints.back().x, 3.5, 0.05);
}

TEST(AStar, GoesAroundWall) {
  map::World w;
  w.add_rectangle({{0.0, 0.0}, {4.0, 3.0}});
  w.add_segment({2.0, 0.0}, {2.0, 2.2});  // wall with gap at the top
  const Env env = make_env(w);
  const auto path =
      plan_path(env.grid, env.distance, {0.5, 0.5}, {3.5, 0.5});
  ASSERT_TRUE(path.has_value());
  // Must detour over the wall top: length well above the straight 3 m.
  EXPECT_GT(path->length_m, 5.0);
  // Every path cell keeps the minimum clearance.
  for (const Vec2& p : path->cells) {
    EXPECT_GE(env.distance.distance_at(p), 0.15f);
  }
}

TEST(AStar, UnreachableGoal) {
  map::World w;
  w.add_rectangle({{0.0, 0.0}, {4.0, 3.0}});
  w.add_segment({2.0, 0.0}, {2.0, 3.0});  // full divider
  const Env env = make_env(w);
  EXPECT_FALSE(
      plan_path(env.grid, env.distance, {0.5, 1.5}, {3.5, 1.5}).has_value());
}

TEST(AStar, EndpointInWallFails) {
  const Env env = open_room();
  EXPECT_FALSE(
      plan_path(env.grid, env.distance, {0.0, 0.0}, {3.5, 1.5}).has_value());
  EXPECT_FALSE(
      plan_path(env.grid, env.distance, {0.5, 1.5}, {4.0, 3.0}).has_value());
  // Entirely off-map.
  EXPECT_FALSE(
      plan_path(env.grid, env.distance, {-5.0, 0.0}, {3.5, 1.5}).has_value());
}

TEST(AStar, EndpointTooCloseToWallFails) {
  const Env env = open_room();
  PlannerConfig cfg;
  cfg.min_clearance_m = 0.3;
  EXPECT_FALSE(plan_path(env.grid, env.distance, {0.15, 1.5}, {3.5, 1.5},
                         cfg)
                   .has_value());
}

TEST(AStar, ClearancePenaltyPrefersCorridorCenter) {
  // A wide corridor: the cheapest path should run near the middle even
  // though hugging a wall is geometrically identical in length.
  map::World w;
  w.add_rectangle({{0.0, 0.0}, {6.0, 1.2}});
  const Env env = make_env(w);
  const auto path =
      plan_path(env.grid, env.distance, {0.4, 0.6}, {5.6, 0.6});
  ASSERT_TRUE(path.has_value());
  for (const Vec2& p : path->cells) {
    EXPECT_NEAR(p.y, 0.6, 0.25);  // stays around the centerline
  }
}

TEST(AStar, NoCornerCutting) {
  // An L-shaped pinch: the diagonal across the inside corner must not be
  // taken through the wall's corner cell.
  map::World w;
  w.add_rectangle({{0.0, 0.0}, {3.0, 3.0}});
  w.add_rectangle({{1.4, 0.0}, {1.6, 1.6}});  // thick wall stub
  const Env env = make_env(w);
  PlannerConfig cfg;
  cfg.min_clearance_m = 0.1;
  const auto path =
      plan_path(env.grid, env.distance, {0.5, 0.5}, {2.5, 0.5}, cfg);
  ASSERT_TRUE(path.has_value());
  for (std::size_t i = 1; i < path->cells.size(); ++i) {
    // Consecutive cells must stay traversable along the connecting
    // segment (coarse line-of-sight per step).
    EXPECT_TRUE(line_of_sight(env.grid, env.distance, path->cells[i - 1],
                              path->cells[i], cfg))
        << "step " << i;
  }
}

TEST(AStar, WaypointsAreLineOfSightConnected) {
  const map::World maze = sim::drone_maze();
  const Env env = make_env(maze);
  PlannerConfig cfg;
  cfg.min_clearance_m = 0.12;
  const auto path =
      plan_path(env.grid, env.distance, {0.5, 0.6}, {3.5, 0.6}, cfg);
  ASSERT_TRUE(path.has_value());
  ASSERT_GE(path->waypoints.size(), 2u);
  for (std::size_t i = 1; i < path->waypoints.size(); ++i) {
    EXPECT_TRUE(line_of_sight(env.grid, env.distance,
                              path->waypoints[i - 1], path->waypoints[i],
                              cfg));
  }
  // Far fewer waypoints than raw cells.
  EXPECT_LT(path->waypoints.size(), path->cells.size() / 4);
}

TEST(AStar, MazePathRespectsTopology) {
  // From the left corridor to the right corridor the only route passes
  // the D-gap, the bottom-middle corridor and the E-gap (or the top) —
  // at minimum the path must be much longer than the bird's-eye line.
  const map::World maze = sim::drone_maze();
  const Env env = make_env(maze);
  PlannerConfig cfg;
  cfg.min_clearance_m = 0.12;
  const auto path =
      plan_path(env.grid, env.distance, {0.5, 0.6}, {3.5, 0.6}, cfg);
  ASSERT_TRUE(path.has_value());
  EXPECT_GT(path->length_m, 7.0);  // direct line would be 3 m
  // The route must pass through the top-left transition (the only exit
  // from the left corridor), i.e. some cell with y > 2.8 and x < 2.
  bool crossed_top = false;
  for (const Vec2& p : path->cells) {
    if (p.y > 2.8 && p.x < 2.0) crossed_top = true;
  }
  EXPECT_TRUE(crossed_top);
}

TEST(LineOfSight, BlockedAndClear) {
  map::World w;
  w.add_rectangle({{0.0, 0.0}, {4.0, 3.0}});
  w.add_segment({2.0, 0.5}, {2.0, 2.5});
  const Env env = make_env(w);
  PlannerConfig cfg;
  cfg.min_clearance_m = 0.1;
  EXPECT_FALSE(
      line_of_sight(env.grid, env.distance, {1.0, 1.5}, {3.0, 1.5}, cfg));
  EXPECT_TRUE(
      line_of_sight(env.grid, env.distance, {1.0, 1.5}, {1.8, 1.5}, cfg));
}

}  // namespace
}  // namespace tofmcl::plan
