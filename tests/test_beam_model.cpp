// Tests for zone→beam extraction: central-row selection, slant correction,
// error-flag filtering and body-frame end points.

#include "sensor/beam_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"

namespace tofmcl::sensor {
namespace {

TofSensorConfig front_config() {
  TofSensorConfig cfg;
  cfg.mount = Pose2{0.02, 0.0, 0.0};
  return cfg;
}

TofFrame uniform_frame(const TofSensorConfig& cfg, float distance) {
  TofFrame f;
  f.mode = cfg.mode;
  const int side = zones_per_side(cfg.mode);
  f.zones.assign(static_cast<std::size_t>(side * side),
                 {distance, ZoneStatus::kValid});
  return f;
}

TEST(CentralRows, ForBothModes) {
  EXPECT_EQ(central_rows(ZoneMode::k8x8), (std::vector<int>{3, 4}));
  EXPECT_EQ(central_rows(ZoneMode::k4x4), (std::vector<int>{1, 2}));
}

TEST(ExtractBeams, DefaultUsesTwoCentralRows) {
  const TofSensorConfig cfg = front_config();
  const TofFrame f = uniform_frame(cfg, 1.0f);
  const auto beams = extract_beams(f, cfg);
  EXPECT_EQ(beams.size(), 16u);  // 2 rows × 8 columns
}

TEST(ExtractBeams, SingleRowSelection) {
  const TofSensorConfig cfg = front_config();
  const TofFrame f = uniform_frame(cfg, 1.0f);
  BeamExtractionConfig ext;
  ext.rows = {4};
  const auto beams = extract_beams(f, cfg, ext);
  EXPECT_EQ(beams.size(), 8u);
}

TEST(ExtractBeams, SlantCorrection) {
  const TofSensorConfig cfg = front_config();
  const TofFrame f = uniform_frame(cfg, 2.0f);
  BeamExtractionConfig ext;
  ext.rows = {4};  // elevation +2.8125°
  const auto beams = extract_beams(f, cfg, ext);
  const double expected = 2.0 * std::cos(deg_to_rad(2.8125));
  for (const Beam& b : beams) {
    EXPECT_NEAR(b.range_m, expected, 1e-5);
  }
}

TEST(ExtractBeams, AzimuthIncludesMountYaw) {
  TofSensorConfig cfg = front_config();
  cfg.mount = Pose2{-0.02, 0.0, kPi};  // rear sensor
  const TofFrame f = uniform_frame(cfg, 1.0f);
  BeamExtractionConfig ext;
  ext.rows = {3};
  const auto beams = extract_beams(f, cfg, ext);
  ASSERT_EQ(beams.size(), 8u);
  for (std::size_t c = 0; c < beams.size(); ++c) {
    const double expected = kPi + zone_azimuth(cfg, static_cast<int>(c));
    EXPECT_NEAR(beams[c].azimuth_body, expected, 1e-12);
  }
  // Rear beams point backwards: endpoints have negative x.
  for (const Beam& b : beams) {
    EXPECT_LT(b.endpoint_body.x, 0.0f);
  }
}

TEST(ExtractBeams, EndpointIncludesMountOffset) {
  const TofSensorConfig cfg = front_config();  // mount 2 cm forward
  const TofFrame f = uniform_frame(cfg, 1.0f);
  BeamExtractionConfig ext;
  ext.rows = {4};
  const auto beams = extract_beams(f, cfg, ext);
  // Central column beams: azimuth ±2.8°, endpoint ≈ (0.02 + r·cos(az), …).
  const Beam& b = beams[3];
  const double r = 1.0 * std::cos(deg_to_rad(2.8125));
  EXPECT_NEAR(b.endpoint_body.x,
              0.02 + r * std::cos(b.azimuth_body), 1e-5);
  EXPECT_NEAR(b.endpoint_body.y, r * std::sin(b.azimuth_body), 1e-5);
}

TEST(ExtractBeams, SkipsFlaggedZones) {
  const TofSensorConfig cfg = front_config();
  TofFrame f = uniform_frame(cfg, 1.0f);
  // Flag three zones in row 4.
  f.zones[static_cast<std::size_t>(4 * 8 + 0)].status =
      ZoneStatus::kOutOfRange;
  f.zones[static_cast<std::size_t>(4 * 8 + 3)].status =
      ZoneStatus::kInterference;
  f.zones[static_cast<std::size_t>(4 * 8 + 7)].status =
      ZoneStatus::kOutOfRange;
  BeamExtractionConfig ext;
  ext.rows = {4};
  const auto beams = extract_beams(f, cfg, ext);
  EXPECT_EQ(beams.size(), 5u);
}

TEST(ExtractBeams, RangeBandFilter) {
  const TofSensorConfig cfg = front_config();
  TofFrame f = uniform_frame(cfg, 1.0f);
  f.zones[static_cast<std::size_t>(4 * 8 + 1)].distance_m = 0.01f;  // too near
  f.zones[static_cast<std::size_t>(4 * 8 + 2)].distance_m = 5.0f;   // too far
  BeamExtractionConfig ext;
  ext.rows = {4};
  const auto beams = extract_beams(f, cfg, ext);
  EXPECT_EQ(beams.size(), 6u);
}

TEST(ExtractBeams, MismatchedModeThrows) {
  TofSensorConfig cfg = front_config();
  TofFrame f = uniform_frame(cfg, 1.0f);
  cfg.mode = ZoneMode::k4x4;
  EXPECT_THROW(extract_beams(f, cfg), PreconditionError);
}

TEST(ExtractBeams, BadRowThrows) {
  const TofSensorConfig cfg = front_config();
  const TofFrame f = uniform_frame(cfg, 1.0f);
  BeamExtractionConfig ext;
  ext.rows = {8};
  EXPECT_THROW(extract_beams(f, cfg, ext), PreconditionError);
}

TEST(ExtractBeams, EndpointConsistentWithRangeAndAzimuth) {
  // endpoint - mount position must have norm == range.
  const TofSensorConfig cfg = front_config();
  const TofFrame f = uniform_frame(cfg, 1.7f);
  const auto beams = extract_beams(f, cfg);
  for (const Beam& b : beams) {
    const Vec2 rel{b.endpoint_body.x - cfg.mount.position.x,
                   b.endpoint_body.y - cfg.mount.position.y};
    EXPECT_NEAR(rel.norm(), b.range_m, 1e-5);
    EXPECT_NEAR(std::atan2(rel.y, rel.x), b.azimuth_body, 1e-5);
  }
}

}  // namespace
}  // namespace tofmcl::sensor
