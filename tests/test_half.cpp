// Tests for the software IEEE-754 binary16 implementation, including
// round-trip properties, rounding behaviour at representable boundaries and
// special values. The fp16qm configuration's accuracy claim rests on this
// type behaving exactly like hardware FP16 storage.

#include "fp16/half.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/rng.hpp"

namespace tofmcl {
namespace {

using half_literals::operator""_h;

TEST(Half, ZeroAndSignedZero) {
  EXPECT_EQ(Half(0.0f).bits(), 0x0000);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000);
  EXPECT_TRUE(Half(-0.0f).is_zero());
  EXPECT_EQ(static_cast<float>(Half(-0.0f)), 0.0f);
  EXPECT_TRUE(std::signbit(static_cast<float>(Half(-0.0f))));
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(Half(1.0f).bits(), 0x3C00);
  EXPECT_EQ(Half(-1.0f).bits(), 0xBC00);
  EXPECT_EQ(Half(2.0f).bits(), 0x4000);
  EXPECT_EQ(Half(0.5f).bits(), 0x3800);
  EXPECT_EQ(Half(65504.0f).bits(), 0x7BFF);  // max finite
  EXPECT_EQ(Half(0.0000610352f).bits(), 0x0400);  // min normal 2^-14
}

TEST(Half, RoundTripExactForRepresentableValues) {
  // Every half value must survive half→float→half exactly.
  for (std::uint32_t b = 0; b <= 0xFFFF; ++b) {
    const auto h = Half::from_bits(static_cast<std::uint16_t>(b));
    if (h.is_nan()) continue;  // NaN payloads compare by is_nan below
    const float f = static_cast<float>(h);
    EXPECT_EQ(Half(f).bits(), h.bits()) << "bits=" << b;
  }
}

TEST(Half, NanRoundTripStaysNan) {
  for (std::uint32_t b = 0x7C01; b <= 0x7FFF; ++b) {
    const auto h = Half::from_bits(static_cast<std::uint16_t>(b));
    ASSERT_TRUE(h.is_nan());
    EXPECT_TRUE(Half(static_cast<float>(h)).is_nan());
  }
}

TEST(Half, InfinityHandling) {
  EXPECT_EQ(Half(std::numeric_limits<float>::infinity()).bits(), 0x7C00);
  EXPECT_EQ(Half(-std::numeric_limits<float>::infinity()).bits(), 0xFC00);
  EXPECT_TRUE(Half::from_bits(0x7C00).is_inf());
  EXPECT_TRUE(std::isinf(static_cast<float>(Half::from_bits(0xFC00))));
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(Half(65536.0f).is_inf());
  EXPECT_TRUE(Half(1e10f).is_inf());
  EXPECT_TRUE(Half(-1e10f).is_inf());
  EXPECT_TRUE(Half(-1e10f).sign_bit());
  // 65520 is the exact midpoint between 65504 (max finite) and the next
  // step 65536; ties round to even, which is the infinity side here.
  EXPECT_TRUE(Half(65520.0f).is_inf());
  EXPECT_EQ(Half(65519.0f).bits(), 0x7BFF);
}

TEST(Half, UnderflowToZeroAndSubnormals) {
  // 2^-24 is the smallest subnormal.
  EXPECT_EQ(Half(5.960464478e-8f).bits(), 0x0001);
  EXPECT_TRUE(Half::from_bits(0x0001).is_subnormal());
  // Half of that (2^-25) ties to even → zero.
  EXPECT_EQ(Half(2.98023224e-8f).bits(), 0x0000);
  // Just above the tie rounds up to the smallest subnormal.
  EXPECT_EQ(Half(3.1e-8f).bits(), 0x0001);
  // Anything below half the smallest subnormal flushes to zero.
  EXPECT_EQ(Half(1e-9f).bits(), 0x0000);
  EXPECT_EQ(Half(-1e-9f).bits(), 0x8000);
}

TEST(Half, RoundToNearestEvenAtMantissaBoundary) {
  // 1 + 2^-11 is exactly between 1.0 and 1+2^-10: ties to even → 1.0.
  EXPECT_EQ(Half(1.0f + 0x1.0p-11f).bits(), 0x3C00);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: ties to even → 1+2^-9.
  EXPECT_EQ(Half(1.0f + 3.0f * 0x1.0p-11f).bits(), 0x3C02);
  // Slightly above a tie rounds up.
  EXPECT_EQ(Half(1.0f + 0x1.0p-11f + 0x1.0p-20f).bits(), 0x3C01);
}

TEST(Half, ConversionErrorBounded) {
  // Relative error of a single conversion is at most 2^-11 for normals.
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.uniform(-1000.0, 1000.0));
    if (std::abs(x) < 6.2e-5f) continue;  // skip subnormal range
    const float back = static_cast<float>(Half(x));
    EXPECT_LE(std::abs(back - x), std::abs(x) * 0x1.0p-11f + 1e-30f)
        << "x=" << x;
  }
}

TEST(Half, SubnormalAbsoluteErrorBounded) {
  // In the subnormal range the absolute error is at most 2^-25.
  Rng rng(32);
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.uniform(-6e-5, 6e-5));
    const float back = static_cast<float>(Half(x));
    EXPECT_LE(std::abs(back - x), 0x1.0p-25f) << "x=" << x;
  }
}

TEST(Half, ArithmeticPromotesToFloat) {
  const Half a(1.5f);
  const Half b(2.25f);
  EXPECT_EQ(static_cast<float>(a + b), 3.75f);
  EXPECT_EQ(static_cast<float>(b - a), 0.75f);
  EXPECT_EQ(static_cast<float>(a * b), 3.375f);
  EXPECT_EQ(static_cast<float>(b / Half(0.5f)), 4.5f);
}

TEST(Half, ArithmeticRoundsResult) {
  // 1024 + 1 = 1025 is not representable (spacing is 1 at 1024... actually
  // spacing is 1 for [1024, 2048); 1025 IS representable. Use 2048+1:
  // spacing is 2 in [2048, 4096), so 2049 ties to even → 2048.
  EXPECT_EQ(static_cast<float>(Half(2048.0f) + Half(1.0f)), 2048.0f);
  // 2048+3 → 2051 rounds to nearest even multiple of 2 → 2052.
  EXPECT_EQ(static_cast<float>(Half(2048.0f) + Half(3.0f)), 2052.0f);
}

TEST(Half, CompoundAssignment) {
  Half h(1.0f);
  h += Half(2.0f);
  EXPECT_EQ(static_cast<float>(h), 3.0f);
  h -= Half(1.0f);
  EXPECT_EQ(static_cast<float>(h), 2.0f);
  h *= Half(3.0f);
  EXPECT_EQ(static_cast<float>(h), 6.0f);
  h /= Half(2.0f);
  EXPECT_EQ(static_cast<float>(h), 3.0f);
}

TEST(Half, Negation) {
  EXPECT_EQ((-Half(1.5f)).bits(), Half(-1.5f).bits());
  EXPECT_EQ((-Half(0.0f)).bits(), 0x8000);
}

TEST(Half, Comparisons) {
  EXPECT_TRUE(Half(1.0f) < Half(2.0f));
  EXPECT_TRUE(Half(2.0f) > Half(1.0f));
  EXPECT_TRUE(Half(1.0f) <= Half(1.0f));
  EXPECT_TRUE(Half(1.0f) >= Half(1.0f));
  EXPECT_TRUE(Half(1.0f) == Half(1.0f));
  EXPECT_TRUE(Half(1.0f) != Half(2.0f));
  // +0 == -0 per IEEE.
  EXPECT_TRUE(Half(0.0f) == Half(-0.0f));
  // NaN compares false with everything.
  const Half nan = std::numeric_limits<Half>::quiet_NaN();
  EXPECT_FALSE(nan == nan);
  EXPECT_TRUE(nan != nan);
  EXPECT_FALSE(nan < Half(1.0f));
}

TEST(Half, NumericLimits) {
  using L = std::numeric_limits<Half>;
  EXPECT_EQ(static_cast<float>(L::max()), 65504.0f);
  EXPECT_EQ(static_cast<float>(L::lowest()), -65504.0f);
  EXPECT_EQ(static_cast<float>(L::min()), 0x1.0p-14f);
  EXPECT_EQ(static_cast<float>(L::denorm_min()), 0x1.0p-24f);
  EXPECT_EQ(static_cast<float>(L::epsilon()), 0x1.0p-10f);
  EXPECT_TRUE(L::infinity().is_inf());
  EXPECT_TRUE(L::quiet_NaN().is_nan());
}

TEST(Half, Literals) {
  EXPECT_EQ((1.5_h).bits(), Half(1.5f).bits());
  EXPECT_EQ((0.25_h).bits(), 0x3400);
}

TEST(Half, RoundingExactAtEveryRepresentableBoundary) {
  // Exhaustive over every adjacent pair of finite half values (both
  // signs): the exact midpoint must tie to the even-mantissa neighbour,
  // and the closest floats on either side of the midpoint must round to
  // their respective neighbours. This sweeps every subnormal boundary
  // (including the 2^-25 flush-to-zero tie and the 2^-24/2^-14 edges)
  // and every normal mantissa/exponent boundary in one pass.
  for (std::uint32_t sign : {0u, 0x8000u}) {
    for (std::uint32_t b = 0; b < 0x7BFF; ++b) {
      const auto lo = static_cast<std::uint16_t>(sign | b);
      const auto hi = static_cast<std::uint16_t>(sign | (b + 1));
      const float f0 = static_cast<float>(Half::from_bits(lo));
      const float f1 = static_cast<float>(Half::from_bits(hi));
      // Midpoints of adjacent halfs have ≤ 12 significant bits: exact.
      const float mid = (f0 + f1) * 0.5f;
      const std::uint16_t even = (b % 2 == 0) ? lo : hi;
      ASSERT_EQ(Half(mid).bits(), even) << "tie at bits=" << b;
      ASSERT_EQ(Half(std::nextafter(mid, f0)).bits(), lo) << "bits=" << b;
      ASSERT_EQ(Half(std::nextafter(mid, f1)).bits(), hi) << "bits=" << b;
    }
  }
  // Overflow boundary: the midpoint between 65504 (max finite, odd
  // mantissa) and the next step 65536 ties to the even side — infinity.
  EXPECT_TRUE(Half(65520.0f).is_inf());
  EXPECT_EQ(Half(std::nextafter(65520.0f, 0.0f)).bits(), 0x7BFF);
  EXPECT_EQ(Half(std::nextafter(-65520.0f, 0.0f)).bits(), 0xFBFF);
  EXPECT_TRUE(Half(-65520.0f).is_inf());
}

TEST(Half, NanConversionSemantics) {
  // Narrowing keeps the top 10 payload bits and sets the quiet bit —
  // the same semantics as hardware F16C (vcvtps2ph), so the software
  // reference and the SIMD kernels convert bit-identically. In
  // particular a signaling NaN whose payload truncates to zero becomes
  // the canonical quiet NaN 0x7E00, NOT 0x7E01 (the pre-fix behaviour).
  EXPECT_EQ(float_to_half_bits(std::bit_cast<float>(0x7FC00000u)), 0x7E00);
  EXPECT_EQ(float_to_half_bits(std::bit_cast<float>(0x7F800001u)), 0x7E00);
  EXPECT_EQ(float_to_half_bits(std::bit_cast<float>(0x7F802000u)), 0x7E01);
  EXPECT_EQ(float_to_half_bits(std::bit_cast<float>(0xFFC00000u)), 0xFE00);
  // Widening quiets too (vcvtph2ps): half sNaN 0x7C01 gains the quiet
  // bit before the payload shift.
  EXPECT_EQ(std::bit_cast<std::uint32_t>(half_bits_to_float(0x7C01)),
            0x7FC02000u);
  EXPECT_EQ(std::bit_cast<std::uint32_t>(half_bits_to_float(0x7E00)),
            0x7FC00000u);
}

#ifdef __FLT16_MANT_DIG__
TEST(Half, ConversionMatchesCompilerFloat16Oracle) {
  // Random-bit sweep against the compiler's _Float16 (IEEE binary16,
  // correctly rounded — soft-float or F16C depending on build flags):
  // every non-NaN float must narrow to the identical bit pattern, and
  // every half must widen to the identical float. NaN payload semantics
  // are pinned separately above (oracle payload handling is
  // implementation-defined in principle, identical in practice).
  Rng rng(33);
  for (int i = 0; i < 1000000; ++i) {
    const auto bits =
        static_cast<std::uint32_t>(rng.uniform_index(0x10000) << 16 |
                                   rng.uniform_index(0x10000));
    const float f = std::bit_cast<float>(bits);
    if (std::isnan(f)) continue;
    const auto oracle =
        std::bit_cast<std::uint16_t>(static_cast<_Float16>(f));
    ASSERT_EQ(float_to_half_bits(f), oracle) << "bits=0x" << std::hex << bits;
  }
  for (std::uint32_t b = 0; b <= 0xFFFF; ++b) {
    const auto h = static_cast<std::uint16_t>(b);
    if (Half::from_bits(h).is_nan()) continue;
    const auto oracle = static_cast<float>(std::bit_cast<_Float16>(h));
    ASSERT_EQ(std::bit_cast<std::uint32_t>(half_bits_to_float(h)),
              std::bit_cast<std::uint32_t>(oracle))
        << "bits=0x" << std::hex << b;
  }
}
#endif

TEST(Half, WeightRangeForMcl) {
  // Particle weights live in (0, 1]; verify representable resolution there
  // is adequate: relative spacing ≤ 2^-10 ≈ 0.001.
  for (float w : {1.0f, 0.5f, 0.1f, 0.01f, 0.001f, 1e-4f}) {
    const float back = static_cast<float>(Half(w));
    EXPECT_NEAR(back, w, w * 0x1.0p-10f) << "w=" << w;
  }
}

TEST(Half, YawRangeResolution) {
  // Yaw in (-π, π]: spacing at |θ|≈π is 2^-9 ≈ 0.002 rad ≈ 0.11°, far finer
  // than the 36° convergence threshold. Verify worst-case quantization.
  const float pi = 3.14159265f;
  const float back = static_cast<float>(Half(pi));
  EXPECT_NEAR(back, pi, 0x1.0p-9f);
}

}  // namespace
}  // namespace tofmcl
