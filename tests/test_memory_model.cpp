// Tests for the Fig 9 memory capacity model: bytes-per-cell/particle
// accounting and the particles-vs-map-size trade-off on L1 and L2.

#include "platform/memory_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tofmcl::platform {
namespace {

using core::Precision;

constexpr double kRes = 0.05;

TEST(MemoryModel, FootprintsMatchPaper) {
  // Section III-C2: full precision 5 B/cell & 32 B/particle (double
  // buffered); quantized 2 B/cell; fp16 16 B/particle.
  EXPECT_EQ(footprint_of(Precision::kFp32).bytes_per_cell, 5u);
  EXPECT_EQ(footprint_of(Precision::kFp32).bytes_per_particle, 32u);
  EXPECT_EQ(footprint_of(Precision::kFp32Qm).bytes_per_cell, 2u);
  EXPECT_EQ(footprint_of(Precision::kFp32Qm).bytes_per_particle, 32u);
  EXPECT_EQ(footprint_of(Precision::kFp16Qm).bytes_per_cell, 2u);
  EXPECT_EQ(footprint_of(Precision::kFp16Qm).bytes_per_particle, 16u);
}

TEST(MemoryModel, MapBytes) {
  // 1 m² at 0.05 m = 400 cells.
  EXPECT_EQ(map_bytes(1.0, kRes, Precision::kFp32), 2000u);
  EXPECT_EQ(map_bytes(1.0, kRes, Precision::kFp16Qm), 800u);
  // The paper's 31.2 m² evaluation map: 12480 cells.
  EXPECT_EQ(map_bytes(31.2, kRes, Precision::kFp32), 62400u);
  EXPECT_EQ(map_bytes(31.2, kRes, Precision::kFp16Qm), 24960u);
  EXPECT_EQ(map_bytes(0.0, kRes, Precision::kFp32), 0u);
}

TEST(MemoryModel, MapBytesRejectsBadArgs) {
  EXPECT_THROW(map_bytes(-1.0, kRes, Precision::kFp32), PreconditionError);
  EXPECT_THROW(map_bytes(1.0, 0.0, Precision::kFp32), PreconditionError);
}

TEST(MemoryModel, MaxParticlesOnL1) {
  const Gap9Spec spec;
  // Fig 9 anchor: fp32 with the paper's 31.2 m² map in L1:
  // (131072 − 62400) / 32 = 2146 particles.
  EXPECT_EQ(max_particles(31.2, kRes, Precision::kFp32, spec.l1_bytes),
            2146u);
  // fp16qm: (131072 − 24960) / 16 = 6632 particles.
  EXPECT_EQ(max_particles(31.2, kRes, Precision::kFp16Qm, spec.l1_bytes),
            6632u);
}

TEST(MemoryModel, MaxParticlesOnL2) {
  const Gap9Spec spec;
  // L2 holds the paper's largest configuration: 16384 fp32 particles need
  // 512 kB, leaving ≈ 1 MB for maps.
  EXPECT_GE(max_particles(31.2, kRes, Precision::kFp32, spec.l2_bytes),
            16384u);
  // (1.5 MB − 512 kB) / 5 B per cell × 0.0025 m²/cell ≈ 524 m².
  const double area =
      max_map_area_m2(16384, kRes, Precision::kFp32, spec.l2_bytes);
  EXPECT_NEAR(area, 524.0, 5.0);
}

TEST(MemoryModel, QuantizationExtendsCapacity) {
  const Gap9Spec spec;
  // At every map size, the quantized/fp16 representation fits at least
  // 2× the particles of full precision (2 B vs 5 B cells, 16 vs 32 B
  // particles).
  for (const double area : {2.0, 8.0, 31.2, 64.0}) {
    const std::size_t full =
        max_particles(area, kRes, Precision::kFp32, spec.l1_bytes);
    const std::size_t slim =
        max_particles(area, kRes, Precision::kFp16Qm, spec.l1_bytes);
    EXPECT_GE(slim, 2 * full) << "area=" << area;
  }
}

TEST(MemoryModel, CapacityMonotoneDecreasingInArea) {
  const Gap9Spec spec;
  std::size_t prev = SIZE_MAX;
  for (double area = 2.0; area <= 2048.0; area *= 2.0) {
    const std::size_t n =
        max_particles(area, kRes, Precision::kFp16Qm, spec.l2_bytes);
    EXPECT_LE(n, prev);
    prev = n;
  }
}

TEST(MemoryModel, OversizedMapGivesZero) {
  const Gap9Spec spec;
  // 2048 m² at 5 B/cell = 4 MB ≫ L2.
  EXPECT_EQ(max_particles(2048.0, kRes, Precision::kFp32, spec.l2_bytes),
            0u);
  EXPECT_EQ(max_map_area_m2(1 << 20, kRes, Precision::kFp32, spec.l1_bytes),
            0.0);
}

TEST(MemoryModel, RoundTripConsistency) {
  // max_map_area and max_particles must be mutually consistent: the area
  // reported for N particles admits at least N particles.
  const Gap9Spec spec;
  for (const std::size_t n : {64u, 1024u, 16384u}) {
    const double area =
        max_map_area_m2(n, kRes, Precision::kFp32Qm, spec.l2_bytes);
    ASSERT_GT(area, 0.0);
    EXPECT_GE(max_particles(area * 0.99, kRes, Precision::kFp32Qm,
                            spec.l2_bytes),
              n);
  }
}

}  // namespace
}  // namespace tofmcl::platform
