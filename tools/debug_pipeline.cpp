// Diagnostic harness (not installed): replays a generated sequence through
// the Localizer and prints error-over-time plus particle statistics, used
// to tune the observation model parameters.

#include <cstdio>
#include <cstdlib>

#include "common/angles.hpp"
#include "core/localizer.hpp"
#include "sim/maze.hpp"
#include "sim/sequence_generator.hpp"

using namespace tofmcl;

int main(int argc, char** argv) {
  const double sigma_obs = argc > 1 ? std::atof(argv[1]) : 0.1;
  const std::size_t particles =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4096;
  const int plan_idx = argc > 3 ? std::atoi(argv[3]) : 1;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 11;
  const bool scaled = argc > 5 && std::atoi(argv[5]) != 0;

  const map::World maze = sim::drone_maze();
  sim::EvaluationEnvironment env;
  env.world = maze;
  env.maze_regions.push_back({{0.0, 0.0}, {4.0, 4.0}});
  const map::OccupancyGrid grid = sim::rasterize_environment(env, 0.05, 0.01);

  const auto plans = sim::standard_flight_plans();
  Rng rng(seed);
  const sim::Sequence seq = sim::generate_sequence(
      maze, plans[static_cast<std::size_t>(plan_idx)],
      sim::default_generator_config(), rng);
  std::printf("sequence %s: duration=%.1fs odom=%zu frames=%zu\n",
              seq.name.c_str(), seq.duration_s, seq.odometry.size(),
              seq.frames.size());

  core::SerialExecutor exec;
  core::LocalizerConfig cfg;
  cfg.precision = core::Precision::kFp32;
  cfg.mcl.num_particles = particles;
  cfg.mcl.sigma_obs = sigma_obs;
  cfg.mcl.seed = 5;
  if (scaled) {
    cfg.mcl.scale_noise_with_motion = true;
    cfg.mcl.sigma_odom_xy = 0.2;
    cfg.mcl.sigma_odom_yaw = 0.2;
  }
  core::Localizer loc(grid, cfg, exec);
  loc.start_global();

  std::size_t frame_idx = 0;
  for (std::size_t i = 0; i < seq.odometry.size(); ++i) {
    const double t = seq.odometry[i].t;
    loc.on_odometry(seq.odometry[i].pose);
    while (frame_idx + 1 < seq.frames.size() &&
           seq.frames[frame_idx].timestamp_s <= t) {
      const std::array<sensor::TofFrame, 2> pair{seq.frames[frame_idx],
                                                 seq.frames[frame_idx + 1]};
      if (loc.on_frames(pair)) {
        const auto est = loc.estimate();
        const Pose2 truth = sim::interpolate_pose(seq.ground_truth, t);
        const double err = (est.pose.position - truth.position).norm();
        const double yaw_err = angle_dist(est.pose.yaw, truth.yaw);
        std::printf(
            "t=%6.2f upd=%3zu err=%.3f yaw_err=%.3f stddev=%.3f conc=%.2f\n",
            t, loc.updates_run(), err, yaw_err, est.position_stddev,
            est.yaw_concentration);
      }
      frame_idx += 2;
    }
  }
  return 0;
}
