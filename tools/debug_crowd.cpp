// Diagnostic harness (not installed): heavy-crowd and stale-map
// observation-model sweeps. Replays one generated-world scenario — N
// crossing pedestrians plus an optional corridor-pacing walker, optionally
// flying through a seeded MUTATION of the world while localizing against
// the pristine map — across a block of data seeds, once with the baseline
// two-term likelihood and once with the short-return mixture + novelty
// gating, printing per-seed convergence, ATE and injection activity side
// by side. This is the tool that tuned the heavy-crowd scenario family,
// the StaleMapStats staleness gates and their statistical bounds in
// tests/test_scenario_matrix.cpp.
//
// Usage: debug_crowd [kind] [world_seed] [plan] [crossers] [pace] [seeds]
//                    [particles] [z_short] [lambda] [margin]
//                    [stale_level] [mutation_seed0]
//   kind: 0 office, 1 warehouse, 2 loop corridor
//   stale_level: 0 pristine (default), 1 light, 2 heavy — seed s of the
//     sweep mutates the world with mutation_seed0 + s, so gate thresholds
//     marginalize over staleness draws the same way StaleMapStats does

#include <cstdio>
#include <cstdlib>

#include "core/localizer.hpp"
#include "eval/campaign.hpp"
#include "eval/metrics.hpp"
#include "sim/dynamic_obstacles.hpp"
#include "sim/sequence_generator.hpp"
#include "sim/worldgen.hpp"

using namespace tofmcl;

namespace {

struct ModelResult {
  eval::RunMetrics metrics;
  double final_err = 0.0;
  double max_inject = 0.0;
  std::size_t inject_events = 0;
  std::size_t gated_total = 0;
  std::size_t updates = 0;
  std::size_t armed = 0;
  double stddev_sum = 0.0;
};

ModelResult replay(const map::OccupancyGrid& grid, const sim::Sequence& seq,
                   const sim::SequenceGeneratorConfig& gen,
                   std::uint64_t mcl_seed, std::size_t particles,
                   double z_short, double lambda_short, bool gating,
                   double margin) {
  core::SerialExecutor exec;
  core::LocalizerConfig lc;
  lc.mcl.num_particles = particles;
  lc.mcl.seed = mcl_seed;
  lc.mcl.z_short = z_short;
  lc.mcl.lambda_short = lambda_short;
  lc.mcl.enable_novelty_gating = gating;
  lc.mcl.novelty_margin_m = margin;
  lc.sensors = {gen.front_tof, gen.rear_tof};
  core::Localizer loc(grid, lc, exec);
  loc.on_odometry(seq.odometry.front().pose);
  loc.start_at(seq.ground_truth.front().pose, 0.2, 0.2);

  ModelResult out;
  std::vector<eval::ErrorSample> trace;
  std::size_t frame_idx = 0;
  std::vector<sensor::TofFrame> group;
  for (const sim::StateSample& odom : seq.odometry) {
    loc.on_odometry(odom.pose);
    while (frame_idx < seq.frames.size() &&
           seq.frames[frame_idx].timestamp_s <= odom.t) {
      const double stamp = seq.frames[frame_idx].timestamp_s;
      group.clear();
      while (frame_idx < seq.frames.size() &&
             seq.frames[frame_idx].timestamp_s == stamp) {
        group.push_back(seq.frames[frame_idx]);
        ++frame_idx;
      }
      if (!loc.on_frames(group) || !loc.estimate().valid) continue;
      const Pose2 truth = sim::interpolate_pose(seq.ground_truth, stamp);
      const double pos_err =
          (loc.estimate().pose.position - truth.position).norm();
      trace.push_back({stamp, pos_err, 0.0});
      out.final_err = pos_err;
      out.gated_total += loc.workload().gated_beams;
      if (loc.workload().novelty_armed) ++out.armed;
      out.stddev_sum += loc.estimate().position_stddev;
      const double p = loc.injection_monitor().last_inject_p;
      if (p > 0.0) ++out.inject_events;
      if (p > out.max_inject) out.max_inject = p;
      ++out.updates;
    }
  }
  out.metrics = eval::evaluate_run(trace);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int kind_i = argc > 1 ? std::atoi(argv[1]) : 1;
  const std::uint64_t world_seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2;
  const std::size_t plan = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 0;
  const std::size_t crossers =
      argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 5;
  const bool pace = argc > 5 && std::atoi(argv[5]) != 0;
  const std::size_t n_seeds =
      argc > 6 ? static_cast<std::size_t>(std::atoi(argv[6])) : 5;
  const std::size_t particles =
      argc > 7 ? static_cast<std::size_t>(std::atoi(argv[7])) : 4096;
  const double z_short = argc > 8 ? std::atof(argv[8]) : 0.5;
  const double lambda_short = argc > 9 ? std::atof(argv[9]) : 1.0;
  const double margin = argc > 10 ? std::atof(argv[10]) : 0.5;
  const int stale_level = argc > 11 ? std::atoi(argv[11]) : 0;
  const std::uint64_t mutation_seed0 =
      argc > 12 ? std::strtoull(argv[12], nullptr, 10) : 500;

  sim::WorldGenConfig wc;
  wc.seed = world_seed;
  const auto kind = static_cast<sim::GeneratedWorldKind>(kind_i);
  sim::GeneratedWorld world = sim::generate_world(kind, wc);
  const map::OccupancyGrid grid =
      sim::rasterize_environment(world.env, 0.05, 0.01);
  std::printf("world %s seed=%llu plan=%s crossers=%zu pace=%d stale=%s\n",
              sim::to_string(kind),
              static_cast<unsigned long long>(world_seed),
              world.plans[plan].name.c_str(), crossers, pace ? 1 : 0,
              sim::to_string(static_cast<sim::MutationLevel>(stale_level)));

  for (std::size_t s = 0; s < n_seeds; ++s) {
    const std::uint64_t data_seed = 100 + s;
    sim::SequenceGeneratorConfig gen = sim::default_generator_config();
    if (crossers > 0) {
      gen.obstacles = sim::scatter_obstacles_seeded(world.plans, crossers,
                                                    1.0, data_seed);
    }
    if (pace) {
      gen.obstacles.push_back(sim::pace_obstacle(world.plans[plan], 1.2,
                                                 0.35));
    }
    // Stale sweep: fly/sense a per-seed mutation of the world; `grid`
    // (the localization map) stays pristine.
    const map::World* flight_world = &world.env.world;
    sim::EvaluationEnvironment stale_env;
    if (stale_level > 0) {
      sim::MutationConfig mc;
      mc.level = static_cast<sim::MutationLevel>(stale_level);
      sim::MutationSummary ms;
      stale_env = sim::mutate_world(world.env, world.plans, mc,
                                    mutation_seed0 + s, &ms);
      flight_world = &stale_env.world;
      std::printf(
          "  mutation seed %llu: +%zu clutter, %zu moved, %zu removed, "
          "%zu closed, %zu narrowed\n",
          static_cast<unsigned long long>(mutation_seed0 + s),
          ms.clutter_added, ms.boxes_moved, ms.boxes_removed,
          ms.doors_closed, ms.doors_narrowed);
    }
    Rng rng(data_seed);
    const sim::Sequence seq =
        sim::generate_sequence(*flight_world, world.plans[plan], gen, rng);

    const ModelResult base = replay(grid, seq, gen, 7 + s, particles, 0.0,
                                    lambda_short, false, margin);
    const ModelResult mix = replay(grid, seq, gen, 7 + s, particles,
                                   z_short, lambda_short, true, margin);
    std::printf(
        "seed %llu dur=%5.1fs | base: conv=%d ok=%d ate=%.3f max=%.3f "
        "fin=%.3f inj=%zu/%.3f | mix: conv=%d ok=%d ate=%.3f max=%.3f "
        "fin=%.3f inj=%zu/%.3f gated=%zu armed=%zu/%zu sd=%.2f\n",
        static_cast<unsigned long long>(data_seed), seq.duration_s,
        base.metrics.converged ? 1 : 0, base.metrics.success ? 1 : 0,
        base.metrics.ate_m, base.metrics.max_error_after_convergence_m,
        base.final_err, base.inject_events, base.max_inject,
        mix.metrics.converged ? 1 : 0, mix.metrics.success ? 1 : 0,
        mix.metrics.ate_m, mix.metrics.max_error_after_convergence_m,
        mix.final_err, mix.inject_events, mix.max_inject, mix.gated_total,
        mix.armed, mix.updates,
        mix.stddev_sum / static_cast<double>(std::max<std::size_t>(
                             mix.updates, 1)));
  }
  return 0;
}
