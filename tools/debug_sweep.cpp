// Diagnostic: compares the fixed-per-update noise mode (paper literal)
// with the distance-scaled mode across the Fig 6/7 sweep grid.

#include <cstdio>
#include <cstdlib>

#include "eval/experiment.hpp"

using namespace tofmcl;

int main(int argc, char** argv) {
  eval::SweepConfig cfg;
  cfg.sequences = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 6;
  cfg.seeds_per_sequence =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;
  const bool scaled = argc > 3 && std::atoi(argv[3]) != 0;
  cfg.particle_counts = {64, 256, 1024, 4096, 16384};
  cfg.threads = 2;
  if (scaled) {
    cfg.mcl.scale_noise_with_motion = true;
    cfg.mcl.sigma_odom_xy = 0.2;
    cfg.mcl.sigma_odom_yaw = 0.2;
  }
  std::printf("mode=%s\n", scaled ? "scaled(0.2)" : "fixed(0.1)");
  const auto result = eval::run_accuracy_sweep(cfg);
  for (const auto& run : result.runs) {
    if (!run.metrics.success && run.particles >= 4096) {
      std::printf("FAIL %-10s N=%zu seq=%zu seed=%llu conv=%d t=%.1f ate=%.2f\n",
                  eval::to_string(run.variant), run.particles, run.sequence,
                  static_cast<unsigned long long>(run.seed),
                  run.metrics.converged ? 1 : 0,
                  run.metrics.convergence_time_s, run.metrics.ate_m);
    }
  }
  for (const auto& cell : eval::summarize(cfg, result)) {
    std::printf("%-10s N=%6zu ATE=%.3f success=%5.1f%% conv_t=%5.1fs (runs=%zu)\n",
                eval::to_string(cell.variant), cell.particles,
                cell.mean_ate_m, 100.0 * cell.success_rate,
                cell.mean_convergence_s, cell.runs);
  }
  return 0;
}
