#pragma once
/// \file lexer.hpp
/// \brief Minimal C++ lexer for tofmcl_lint.
///
/// The lint rules (see rules.hpp) work on token streams, not ASTs: every
/// invariant they enforce — banned identifiers, guard construction, brace
/// regions around trace emitters — is visible at the lexical level, so a
/// ~200-line lexer keeps the tool dependency-free (no libclang) and fast
/// enough to run on every ctest invocation.
///
/// What it understands:
///  * line ('//') and block ('/* */') comments — stripped from the token
///    stream but collected separately with line numbers, because the
///    TOFMCL_LINT_ALLOW suppression syntax lives in comments;
///  * string literals, including raw strings (R"delim(...)delim"), char
///    literals, and common prefixes (u8, L, ...) — emitted as one String
///    token whose text is the literal CONTENTS (quotes stripped), so rules
///    can grep printf formats for "%a";
///  * identifiers/keywords (one Ident token each — 'z_rand' never matches
///    a ban on 'rand'), numbers, and punctuation ('::' and '->' are fused
///    into single tokens, everything else is one char per token);
///  * preprocessor lines — tokenized normally but flagged pp=true so
///    identifier bans can skip '#include <random>' and friends.

#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

namespace tofmcl::lint {

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind;
  std::string text;  ///< Identifier/number spelling, literal contents, or punct.
  int line = 0;
  bool pp = false;  ///< Token belongs to a preprocessor directive line.
};

struct Comment {
  std::string text;  ///< Contents without the // or /* */ markers.
  int line = 0;      ///< Line the comment starts on.
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

inline bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
inline bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Tokenizes `src`. Never throws on malformed input: an unterminated
/// literal or comment simply ends at EOF — lint rules degrade gracefully
/// on code that does not compile anyway.
inline LexedFile lex(const std::string& src) {
  LexedFile out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool in_pp = false;       // Inside a preprocessor directive.
  bool line_has_code = false;  // Any non-ws char seen on this line yet.

  auto newline = [&] {
    ++line;
    line_has_code = false;
    in_pp = false;  // Continuations handled below before we get here.
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (c == '\\' && i + 1 < n && src[i + 1] == '\n') {
      ++line;  // Line continuation: stay in pp mode, consume both chars.
      i += 2;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && !line_has_code) in_pp = true;
    line_has_code = true;

    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      out.comments.push_back({src.substr(i + 2, j - i - 2), line});
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      out.comments.push_back({src.substr(i + 2, j - i - 2), start_line});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }

    // Raw string literals: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n') delim += src[j++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t body = (j < n) ? j + 1 : n;
      std::size_t end = src.find(closer, body);
      if (end == std::string::npos) end = n;
      std::string contents = src.substr(body, end - body);
      out.tokens.push_back({TokKind::kString, contents, line, in_pp});
      for (char ch : src.substr(i, std::min(end + closer.size(), n) - i))
        if (ch == '\n') ++line;
      i = std::min(end + closer.size(), n);
      continue;
    }

    // String/char literals (with optional encoding prefix already consumed
    // as part of a preceding identifier — acceptable: "u8" etc. are rare
    // here and the literal itself still lexes correctly).
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string contents;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          contents += src[j];
          contents += src[j + 1];
          j += 2;
          continue;
        }
        if (src[j] == '\n') ++line;  // Unterminated; keep line count sane.
        contents += src[j++];
      }
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, contents, line,
           in_pp});
      i = (j < n) ? j + 1 : n;
      continue;
    }

    // Identifiers.
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, src.substr(i, j - i), line, in_pp});
      i = j;
      continue;
    }

    // Numbers (good enough: digits, dots, exponents, hex, suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i;
      while (j < n && (is_ident_char(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P'))))
        ++j;
      out.tokens.push_back({TokKind::kNumber, src.substr(i, j - i), line, in_pp});
      i = j;
      continue;
    }

    // Punctuation. '::' and '->' are fused so rules can distinguish a
    // scope operator from a lone ':' (range-for) and see member access
    // through pointers; everything else is one char per token.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line, in_pp});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", line, in_pp});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line, in_pp});
    ++i;
  }
  return out;
}

}  // namespace tofmcl::lint
