/// \file tofmcl_lint.cpp
/// \brief In-repo static analysis enforcing tofmcl's determinism,
/// concurrency and map invariants.
///
/// Usage:
///   tofmcl_lint --root <repo>  [--budget FILE] [--report FILE]
///   tofmcl_lint --self-test [--corpus DIR]
///   tofmcl_lint --list-rules
///
/// Tree mode lexes every .cpp/.hpp/.h under <repo>/{src,tests,bench,tools}
/// (minus this tool's corpus), runs the rule catalog (rules.hpp) and
/// applies the suppression syntax:
///
///   // TOFMCL_LINT_ALLOW(rule): reason        — this line or the next
///   // TOFMCL_LINT_ALLOW_FILE(rule): reason   — whole file
///
/// A suppression must name a real rule and carry a non-empty reason, and
/// must actually suppress something — stale or malformed suppressions are
/// themselves violations (rule 'lint-suppression'). The committed budget
/// file (lint_budget.txt: "<rule> <max-suppressions>" lines) pins the
/// number of suppression comments per rule: growth past the budget fails
/// the run, so new exceptions are a reviewed diff, never drive-by.
///
/// Self-test mode replays the corpus: every `<rule>__bad*.cpp` must
/// produce at least one <rule> finding, every `<rule>__good*.cpp` none,
/// and every registered rule must have both kinds of sample. Corpus files
/// choose their virtual path (rules scope by directory) via a
/// `// lint-path: src/core/x.cpp` directive and may name a companion
/// header with `// lint-sibling: file.hpp`.
///
/// Exit codes: 0 clean, 1 findings/budget/self-test failure, 2 usage/IO.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace tofmcl::lint {
namespace {

/// Meta-rule for the suppression machinery itself (unknown rule names,
/// missing reasons, stale suppressions). Not suppressible.
const char kMetaRule[] = "lint-suppression";

bool known_or_meta(const std::string& rule) {
  return rule == kMetaRule || is_known_rule(rule);
}

struct Suppression {
  std::string rule;
  std::string reason;
  int line = 0;
  bool file_level = false;
  bool used = false;
};

/// Parses TOFMCL_LINT_ALLOW[_FILE](rule): reason out of one comment.
/// Malformed markers (unparseable rule token) surface as violations so a
/// typo cannot silently disable nothing.
void parse_suppressions(const std::vector<Comment>& comments,
                        std::vector<Suppression>& sups,
                        std::vector<Violation>& meta) {
  for (const Comment& c : comments) {
    // The marker must be the first thing in the comment (trailing
    // comments start right after their '//', so they qualify). Mid-prose
    // mentions — docs describing the syntax — are not suppressions.
    std::size_t pos = 0;
    while (pos < c.text.size() &&
           std::isspace(static_cast<unsigned char>(c.text[pos])))
      ++pos;
    if (c.text.compare(pos, sizeof("TOFMCL_LINT_ALLOW") - 1,
                       "TOFMCL_LINT_ALLOW") != 0)
      continue;
    std::size_t p = pos + sizeof("TOFMCL_LINT_ALLOW") - 1;
    bool file_level = false;
    if (c.text.compare(p, 5, "_FILE") == 0) {
      file_level = true;
      p += 5;
    }
    if (p >= c.text.size() || c.text[p] != '(') {
      meta.push_back({kMetaRule, c.line,
                      "malformed suppression: expected "
                      "TOFMCL_LINT_ALLOW(rule): reason"});
      continue;
    }
    const std::size_t close = c.text.find(')', p);
    if (close == std::string::npos) {
      meta.push_back({kMetaRule, c.line, "malformed suppression: missing ')'"});
      continue;
    }
    Suppression s;
    s.rule = c.text.substr(p + 1, close - p - 1);
    s.line = c.line;
    s.file_level = file_level;
    std::size_t r = close + 1;
    if (r < c.text.size() && c.text[r] == ':') ++r;
    while (r < c.text.size() && std::isspace(static_cast<unsigned char>(c.text[r])))
      ++r;
    s.reason = c.text.substr(r);
    while (!s.reason.empty() &&
           std::isspace(static_cast<unsigned char>(s.reason.back())))
      s.reason.pop_back();
    if (!is_known_rule(s.rule)) {
      meta.push_back({kMetaRule, c.line,
                      "suppression names unknown rule '" + s.rule +
                          "' (see --list-rules)"});
      continue;
    }
    if (s.reason.empty()) {
      meta.push_back({kMetaRule, c.line,
                      "suppression of '" + s.rule +
                          "' carries no justification — append ': reason'"});
      continue;
    }
    sups.push_back(std::move(s));
  }
}

struct FileResult {
  std::vector<Violation> reported;              ///< Survived suppression.
  std::map<std::string, int> suppression_count; ///< Comments per rule.
  int suppressed_violations = 0;
};

/// Runs rules + suppression processing over one lexed file.
FileResult analyze(const FileCtx& ctx) {
  FileResult res;
  std::vector<Suppression> sups;
  std::vector<Violation> meta;
  parse_suppressions(ctx.lexed->comments, sups, meta);

  std::vector<Violation> raw = run_rules(ctx);
  for (Violation& v : raw) {
    bool suppressed = false;
    for (Suppression& s : sups) {
      if (s.rule != v.rule) continue;
      if (s.file_level || s.line == v.line || s.line + 1 == v.line) {
        s.used = true;
        suppressed = true;
        break;
      }
    }
    if (suppressed)
      ++res.suppressed_violations;
    else
      res.reported.push_back(std::move(v));
  }
  for (const Suppression& s : sups) {
    res.suppression_count[s.rule] += 1;
    if (!s.used) {
      meta.push_back({kMetaRule, s.line,
                      "stale suppression: no '" + s.rule +
                          "' violation on this " +
                          (s.file_level ? std::string("file") :
                                          std::string("line (or the next)")) +
                          " — delete it so the baseline stays tight"});
    }
  }
  res.reported.insert(res.reported.end(), meta.begin(), meta.end());
  std::sort(res.reported.begin(), res.reported.end(),
            [](const Violation& a, const Violation& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return res;
}

std::string read_file(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in.is_open()) {
    *ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

std::string normalize(const fs::path& rel) {
  std::string s = rel.generic_string();
  while (s.rfind("./", 0) == 0) s.erase(0, 2);
  return s;
}

// ---------------------------------------------------------------------------
// Tree mode
// ---------------------------------------------------------------------------

struct TreeOptions {
  fs::path root = ".";
  fs::path budget_file;
  fs::path report_file;
};

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

int run_tree(const TreeOptions& opt) {
  const std::vector<std::string> kScanDirs = {"src", "tests", "bench", "tools"};
  std::vector<fs::path> files;
  for (const std::string& dir : kScanDirs) {
    const fs::path base = opt.root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable_extension(entry.path()))
        continue;
      const std::string rel = normalize(fs::relative(entry.path(), opt.root));
      if (rel.find("tools/lint/corpus/") != std::string::npos) continue;
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::ostringstream log;
  std::map<std::string, int> suppression_totals;
  int total_violations = 0;
  int total_suppressed = 0;

  // Lex cache: sibling headers are both analyzed standalone and consulted
  // by their .cpp's rules; lex each file once.
  std::map<std::string, LexedFile> lex_cache;
  auto lexed_for = [&](const fs::path& p) -> const LexedFile* {
    const std::string key = p.string();
    auto it = lex_cache.find(key);
    if (it != lex_cache.end()) return &it->second;
    bool ok = false;
    const std::string text = read_file(p, &ok);
    if (!ok) return nullptr;
    return &lex_cache.emplace(key, lex(text)).first->second;
  };

  for (const fs::path& p : files) {
    const LexedFile* lf = lexed_for(p);
    if (!lf) {
      std::fprintf(stderr, "tofmcl_lint: cannot read %s\n", p.string().c_str());
      return 2;
    }
    FileCtx ctx;
    ctx.path = normalize(fs::relative(p, opt.root));
    ctx.lexed = lf;
    const LexedFile* sibling = nullptr;
    if (p.extension() == ".cpp") {
      fs::path hpp = p;
      hpp.replace_extension(".hpp");
      if (fs::exists(hpp)) sibling = lexed_for(hpp);
    }
    ctx.sibling = sibling;

    const FileResult res = analyze(ctx);
    for (const Violation& v : res.reported) {
      log << ctx.path << ":" << v.line << ": [" << v.rule << "] " << v.message
          << "\n";
      ++total_violations;
    }
    for (const auto& [rule, count] : res.suppression_count)
      suppression_totals[rule] += count;
    total_suppressed += res.suppressed_violations;
  }

  // Budget: committed per-rule suppression ceilings. Growth past the
  // budget is a failure even when every individual suppression is valid —
  // raising the ceiling is a reviewed one-line diff in lint_budget.txt.
  std::map<std::string, int> budget;
  bool budget_ok = true;
  if (!opt.budget_file.empty()) {
    std::ifstream in(opt.budget_file);
    if (!in.is_open()) {
      std::fprintf(stderr, "tofmcl_lint: cannot read budget file %s\n",
                   opt.budget_file.string().c_str());
      return 2;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ls(line);
      std::string rule;
      int count = 0;
      if (!(ls >> rule)) continue;  // Blank/comment line.
      if (!(ls >> count) || !is_known_rule(rule)) {
        std::fprintf(stderr,
                     "tofmcl_lint: bad budget entry at %s:%d: '%s'\n",
                     opt.budget_file.string().c_str(), lineno, rule.c_str());
        return 2;
      }
      budget[rule] = count;
    }
  }

  log << "\nsuppression budget (comments per rule, used/allowed):\n";
  std::set<std::string> all_rules;
  for (const auto& [rule, n] : suppression_totals) all_rules.insert(rule);
  for (const auto& [rule, n] : budget) all_rules.insert(rule);
  if (all_rules.empty()) log << "  (no suppressions in the tree)\n";
  for (const std::string& rule : all_rules) {
    const int used = suppression_totals.count(rule) ? suppression_totals[rule] : 0;
    const int allowed = budget.count(rule) ? budget[rule] : 0;
    log << "  " << rule << "  " << used << "/" << allowed;
    if (!opt.budget_file.empty() && used > allowed) {
      log << "  EXCEEDED — new suppressions need a lint_budget.txt bump "
             "with review";
      budget_ok = false;
    }
    log << "\n";
  }

  log << "\nscanned " << files.size() << " files; " << total_violations
      << " violation(s), " << total_suppressed
      << " suppressed by budgeted TOFMCL_LINT_ALLOW\n";
  log << "RESULT: "
      << (total_violations == 0 && budget_ok ? "CLEAN" : "FAIL") << "\n";

  std::fputs(log.str().c_str(), stdout);
  if (!opt.report_file.empty()) {
    std::ofstream out(opt.report_file);
    if (!out.is_open()) {
      std::fprintf(stderr, "tofmcl_lint: cannot write report %s\n",
                   opt.report_file.string().c_str());
      return 2;
    }
    out << log.str();
  }
  return (total_violations == 0 && budget_ok) ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Self-test mode
// ---------------------------------------------------------------------------

/// Reads a "// lint-<key>: value" directive from the corpus sample text.
std::string directive(const std::string& text, const std::string& key) {
  const std::string marker = "// lint-" + key + ":";
  const std::size_t pos = text.find(marker);
  if (pos == std::string::npos) return {};
  std::size_t b = pos + marker.size();
  while (b < text.size() && (text[b] == ' ' || text[b] == '\t')) ++b;
  std::size_t e = b;
  while (e < text.size() && text[e] != '\n' && text[e] != '\r') ++e;
  return text.substr(b, e - b);
}

int run_self_test(const fs::path& corpus) {
  if (!fs::exists(corpus)) {
    std::fprintf(stderr, "tofmcl_lint: corpus directory %s not found\n",
                 corpus.string().c_str());
    return 2;
  }
  std::vector<fs::path> cases;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (entry.path().extension() == ".cpp" &&
        (name.find("__bad") != std::string::npos ||
         name.find("__good") != std::string::npos))
      cases.push_back(entry.path());
  }
  std::sort(cases.begin(), cases.end());

  int failures = 0;
  std::map<std::string, int> bad_seen, good_seen;
  for (const fs::path& p : cases) {
    const std::string name = p.filename().string();
    const std::size_t sep = name.find("__");
    const std::string rule = name.substr(0, sep);
    const bool expect_bad = name.find("__bad") != std::string::npos;
    if (!known_or_meta(rule)) {
      std::printf("FAIL %s: corpus names unknown rule '%s'\n", name.c_str(),
                  rule.c_str());
      ++failures;
      continue;
    }
    bool ok = false;
    const std::string text = read_file(p, &ok);
    if (!ok) {
      std::printf("FAIL %s: unreadable\n", name.c_str());
      ++failures;
      continue;
    }
    const LexedFile lexed = lex(text);
    LexedFile sibling_lexed;
    FileCtx ctx;
    const std::string vpath = directive(text, "path");
    ctx.path = vpath.empty() ? "src/lint_corpus/" + name : vpath;
    ctx.lexed = &lexed;
    const std::string sib = directive(text, "sibling");
    if (!sib.empty()) {
      bool sok = false;
      const std::string stext = read_file(corpus / sib, &sok);
      if (!sok) {
        std::printf("FAIL %s: lint-sibling %s unreadable\n", name.c_str(),
                    sib.c_str());
        ++failures;
        continue;
      }
      sibling_lexed = lex(stext);
      ctx.sibling = &sibling_lexed;
    }

    const FileResult res = analyze(ctx);
    int hits = 0;
    for (const Violation& v : res.reported)
      if (v.rule == rule) ++hits;
    (expect_bad ? bad_seen : good_seen)[rule] += 1;
    const bool pass = expect_bad ? hits > 0 : hits == 0;
    std::printf("%s %s (%d '%s' finding%s)\n", pass ? "ok  " : "FAIL",
                name.c_str(), hits, rule.c_str(), hits == 1 ? "" : "s");
    if (!pass) {
      for (const Violation& v : res.reported)
        std::printf("     %s:%d: [%s] %s\n", ctx.path.c_str(), v.line,
                    v.rule.c_str(), v.message.c_str());
      ++failures;
    }
  }

  // Coverage: a rule without both samples is a rule nobody can trust.
  std::vector<std::string> rules_to_cover;
  for (const Rule& r : rule_catalog()) rules_to_cover.push_back(r.name);
  rules_to_cover.push_back(kMetaRule);
  for (const std::string& rule : rules_to_cover) {
    if (!bad_seen.count(rule)) {
      std::printf("FAIL coverage: rule '%s' has no __bad corpus sample\n",
                  rule.c_str());
      ++failures;
    }
    if (!good_seen.count(rule)) {
      std::printf("FAIL coverage: rule '%s' has no __good corpus sample\n",
                  rule.c_str());
      ++failures;
    }
  }

  std::printf("self-test: %zu cases, %d failure(s)\n", cases.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tofmcl::lint

int main(int argc, char** argv) {
  using namespace tofmcl::lint;
  TreeOptions opt;
  bool self_test = false;
  fs::path corpus;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tofmcl_lint: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opt.root = value();
    } else if (arg == "--budget") {
      opt.budget_file = value();
    } else if (arg == "--report") {
      opt.report_file = value();
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--corpus") {
      corpus = value();
    } else if (arg == "--list-rules") {
      for (const Rule& r : rule_catalog())
        std::printf("%-22s %s\n", r.name.c_str(), r.summary.c_str());
      std::printf("%-22s %s\n", kMetaRule,
                  "suppression hygiene (meta; not suppressible)");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: tofmcl_lint [--root DIR] [--budget FILE] [--report FILE]\n"
          "       tofmcl_lint --self-test [--corpus DIR]\n"
          "       tofmcl_lint --list-rules\n"
          "Suppress with // TOFMCL_LINT_ALLOW(rule): reason  (this or next\n"
          "line) or // TOFMCL_LINT_ALLOW_FILE(rule): reason  (whole file).\n");
      return 0;
    } else {
      std::fprintf(stderr, "tofmcl_lint: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (self_test) {
    if (corpus.empty()) corpus = opt.root / "tools" / "lint" / "corpus";
    return run_self_test(corpus);
  }
  return run_tree(opt);
}
