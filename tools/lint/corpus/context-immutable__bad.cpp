// lint-path: src/serve/session_tuner.cpp
// Corpus: non-const access to the shared ScoringContext outside its
// builder. The context is cached one-per-map and pointer-shared by every
// session on that map — a mutable reference, pointer or shared_ptr
// element lets one session rewrite scoring state under all the others.
#include <memory>

#include "core/scoring_context.hpp"

void retune(tofmcl::core::ScoringContext& ctx) {  // flagged: mutable ref
  ctx.set_beam_sigma(0.1);
}

std::shared_ptr<tofmcl::core::ScoringContext>  // flagged: mutable element
clone_context(const std::shared_ptr<const tofmcl::core::ScoringContext>&) {
  return std::make_shared<tofmcl::core::ScoringContext>();  // flagged
}
