// Corpus: trace emitters writing decimal floats. Decimal round-trips are
// locale/precision dependent — cross-process trace diffs (cmp in CI) go
// flaky. Both emitter conventions are covered: the TOFMCL_*_TRACE env
// hook and the *_trace function-name convention.
#include <cstdio>
#include <cstdlib>
#include <fstream>

void dump_on_hook(double err) {
  if (const char* path = std::getenv("TOFMCL_CORPUS_TRACE")) {  // flagged
    std::ofstream out(path);
    out << err << '\n';  // decimal: not reproducible byte-for-byte
  }
}

void write_error_trace(std::FILE* f, double err) {  // flagged
  std::fprintf(f, "%.17g\n", err);
}
