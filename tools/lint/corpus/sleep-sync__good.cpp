// lint-path: tests/test_sample.cpp
// Corpus: a condition variable with a deadline communicates the same
// intent race-free — it wakes as soon as the flag flips and the timeout
// is a failure bound, not a tuning knob.
#include <chrono>
#include <condition_variable>
#include <mutex>

bool wait_for_flag(std::mutex& m, std::condition_variable& cv, bool& flag) {
  std::unique_lock<std::mutex> lock(m);
  return cv.wait_for(lock, std::chrono::seconds(5), [&] { return flag; });
}
