// Corpus: the handler records the failure (any statement counts); the
// repo pattern is capturing into a std::exception_ptr for the caller.
#include <exception>

void may_throw();

void capture_failure(std::exception_ptr& first_error) {
  try {
    may_throw();
  } catch (...) {
    if (!first_error) first_error = std::current_exception();
  }
}
