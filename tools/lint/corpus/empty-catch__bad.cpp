// Corpus: an empty catch body swallows the exception with no record —
// a comment inside the braces does not count as handling.
void may_throw();

void swallow_everything() {
  try {
    may_throw();
  } catch (...) {  // flagged
    // "can't happen" — famous last words
  }
}
