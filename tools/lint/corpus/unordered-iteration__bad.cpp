// lint-path: src/core/sample_accumulator.cpp
// Corpus: range-iteration over an unordered container in src/core — the
// float accumulation order is implementation-defined, so serial/pooled
// traces stop being bit-identical.
#include <string>
#include <unordered_map>
#include <unordered_set>

double total_weight(const std::unordered_map<std::string, double>& weights,
                    std::unordered_set<int> active) {
  double sum = 0.0;
  for (const auto& [key, w] : weights) {  // flagged: unordered_map order
    sum += w;
  }
  for (int id : active) {                 // flagged: unordered_set order
    sum += static_cast<double>(id) * 1e-9;
  }
  return sum;
}
