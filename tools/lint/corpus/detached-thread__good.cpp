// Corpus: joining keeps the thread's lifetime inside the owner's scope.
// An identifier merely NAMED detach (no call through . or ->) is clean.
#include <thread>

void run_and_join(bool detach) {
  std::thread worker([] {});
  if (detach) worker.join();  // 'detach' here is a plain bool, not a call
  if (worker.joinable()) worker.join();
}
