// Corpus: the box joins solid_regions in the same function, so the
// rasterizer keeps its interior Unknown (zero-EDT sink defused) and only
// the outline becomes Occupied.
template <typename E, typename B>
void build_hall(E& env, const B& box) {
  env.world.add_rectangle(box);
  env.solid_regions.push_back(box);
}
