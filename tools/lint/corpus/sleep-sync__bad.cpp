// lint-path: tests/test_sample.cpp
// Corpus: sleeping until "the other thread has probably finished" is the
// canonical flaky test — it passes locally and times out on a loaded CI
// box.
#include <chrono>
#include <thread>

bool flag_set();

bool wait_for_flag() {
  std::this_thread::sleep_for(std::chrono::milliseconds(200));  // flagged
  return flag_set();
}
