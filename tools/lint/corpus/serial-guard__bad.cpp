// lint-path: src/core/localizer.cpp
// lint-sibling: localizer_contract.hpp
// Corpus: one mutating entry point constructs the guard, the other does
// not — the unguarded one silently races filter state when the owner's
// serialization is buggy, exactly the class of bug SerialGuard exists to
// make loud.
#include "common/serial_guard.hpp"

namespace tofmcl::core {

void Localizer::start_global() {
  SerialGuard::Scope serial(serial_guard_);
  step_filter();
}

void Localizer::on_odometry(const Pose2& pose) {  // flagged: no Scope
  (void)pose;
  step_filter();
}

}  // namespace tofmcl::core
