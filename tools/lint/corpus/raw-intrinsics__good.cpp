// lint-path: src/core/kernels/kernels_avx2.cpp
// Corpus: the same tokens are clean inside the kernel layer — that is
// the one directory allowed to speak SIMD.
#include <immintrin.h>

float sum8(const float* p) {
  const __m256 v = _mm256_loadu_ps(p);
  const __m128 lo = _mm256_castps256_ps128(v);
  float out[4];
  _mm_storeu_ps(out, lo);
  return out[0] + out[1] + out[2] + out[3];
}
