// Corpus: unseeded entropy sources anywhere in the tree break the
// bit-identical replay guarantee — every stochastic draw must come from
// the seeded tofmcl::Rng.
#include <cstdlib>
#include <random>

int noisy_choice(int n) {
  std::srand(42);                       // flagged: srand
  std::random_device entropy;           // flagged: random_device
  return (std::rand() + static_cast<int>(entropy())) % n;  // flagged: rand
}
