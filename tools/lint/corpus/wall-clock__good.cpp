// lint-path: bench/bench_sample.cpp
// Corpus: benchmarks are whitelisted timing code — measuring wall time is
// their purpose, so the same tokens are clean under bench/.
#include <chrono>

double measure_seconds() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
