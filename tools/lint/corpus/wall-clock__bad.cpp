// Corpus: wall-clock reads outside the whitelisted timing code. A clock
// feeding simulation or filter state makes replays non-reproducible.
#include <chrono>

double jitter_seed() {
  const auto now = std::chrono::steady_clock::now();   // flagged
  const auto wall = std::chrono::system_clock::now();  // flagged
  return std::chrono::duration<double>(now.time_since_epoch()).count() +
         std::chrono::duration<double>(wall.time_since_epoch()).count();
}
