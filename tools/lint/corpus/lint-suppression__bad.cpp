// Corpus: suppression hygiene. A suppression with no justification and a
// stale suppression (nothing on its line to suppress) are both findings —
// the budget only stays meaningful if every TOFMCL_LINT_ALLOW is live and
// explained.
#include <thread>

void run() {
  // TOFMCL_LINT_ALLOW(detached-thread)
  std::thread([] {}).detach();

  int x = 0;  // TOFMCL_LINT_ALLOW(empty-catch): there is no catch here
  (void)x;
}
