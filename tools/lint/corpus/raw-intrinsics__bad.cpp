// lint-path: src/core/particle_filter.cpp
// Corpus: raw SIMD in the filter core. Intrinsics outside the kernel
// layer fork the arithmetic away from the scalar determinism reference.
#include <immintrin.h>  // flagged (header)

float sum8(const float* p) {
  const __m256 v = _mm256_loadu_ps(p);              // flagged (type + call)
  const __m128 lo = _mm256_castps256_ps128(v);      // flagged
  float out[4];
  _mm_storeu_ps(out, lo);                           // flagged
  return out[0] + out[1] + out[2] + out[3];
}

float sum4_neon(const float* p) {
  float32x4_t v = vld1q_f32(p);                     // flagged (NEON)
  return vgetq_lane_f32(v, 0);                      // flagged
}
