// Corpus: the same two emitters formatting as hexfloats — byte-exact
// round-trips, so two processes' traces can be cmp'd in CI.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ios>

void dump_on_hook(double err) {
  if (const char* path = std::getenv("TOFMCL_CORPUS_TRACE")) {
    std::ofstream out(path);
    out << std::hexfloat << err << '\n';
  }
}

void write_error_trace(std::FILE* f, double err) {
  std::fprintf(f, "%a\n", err);
}
