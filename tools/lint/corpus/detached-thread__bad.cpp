// Corpus: a detached thread outlives scope, test teardown and — at exit —
// races static destruction. Both access spellings are covered.
#include <thread>

void fire_and_forget(std::thread* owned) {
  std::thread([] {}).detach();  // flagged
  owned->detach();              // flagged
}
