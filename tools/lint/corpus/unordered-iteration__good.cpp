// lint-path: src/core/sample_accumulator.cpp
// Corpus: keyed lookup into an unordered container is fine (no order
// dependence), and iteration happens over an ordered std::map — the
// accumulation order is the key order, reproducible everywhere.
#include <map>
#include <string>
#include <unordered_map>

double total_weight(const std::map<std::string, double>& weights,
                    const std::unordered_map<std::string, double>& bonus) {
  double sum = 0.0;
  for (const auto& [key, w] : weights) {
    const auto it = bonus.find(key);
    sum += w + (it != bonus.end() ? it->second : 0.0);
  }
  return sum;
}
