// lint-path: src/core/localizer.cpp
// lint-sibling: localizer_contract.hpp
// Corpus: every public mutating entry point opens a SerialGuard::Scope;
// const accessors and private helpers need none.
#include "common/serial_guard.hpp"

namespace tofmcl::core {

void Localizer::start_global() {
  SerialGuard::Scope serial(serial_guard_);
  step_filter();
}

void Localizer::on_odometry(const Pose2& pose) {
  SerialGuard::Scope serial(serial_guard_);
  (void)pose;
  step_filter();
}

const PoseEstimate& Localizer::estimate() const {
  static const PoseEstimate* e = nullptr;
  return *e;
}

void Localizer::step_filter() {}

}  // namespace tofmcl::core
