// Corpus: a live suppression with a justification — it sits on the line
// of the finding it suppresses (the line above also works), so it is
// used, budgeted and clean.
void may_throw();

void ignore_probe_failure() {
  try {
    may_throw();
    // TOFMCL_LINT_ALLOW(empty-catch): probe is best-effort; absence of
  } catch (...) {  // the optional device means the default path is correct
  }
}
