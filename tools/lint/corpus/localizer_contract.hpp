// Corpus support header (not a test case): the class contract the
// serial-guard samples are checked against. Public non-const methods are
// the externally-serialized mutating entry points; const accessors and
// private helpers are exempt.
#pragma once

#include "common/serial_guard.hpp"

struct Pose2;
struct PoseEstimate;

namespace tofmcl::core {

class Localizer {
 public:
  void start_global();
  void on_odometry(const Pose2& pose);
  const PoseEstimate& estimate() const;
  double last_correction_seconds() const { return last_correction_s_; }

 private:
  void step_filter();
  double last_correction_s_ = 0.0;
  SerialGuard serial_guard_;
};

}  // namespace tofmcl::core
