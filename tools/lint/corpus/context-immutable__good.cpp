// lint-path: src/serve/session_tuner.cpp
// Corpus: every path to the shared ScoringContext is const-qualified —
// sessions read beam geometry and LUTs through it but can never write.
// Tuning happens on a config copy BEFORE building, inside the builder.
// (The class itself is defined only in src/core/scoring_context.hpp,
// which is the one file the rule exempts.)
#include <memory>

#include "core/scoring_context.hpp"

double read_sigma(const tofmcl::core::ScoringContext& ctx) {
  return ctx.beam_sigma();
}

double read_shared(
    const std::shared_ptr<const tofmcl::core::ScoringContext>& ctx) {
  return ctx ? ctx->beam_sigma() : 0.0;
}
