// Corpus: an occupied rectangle added to an environment's world without
// registering it in solid_regions. Its rasterized interior fills with
// Occupied cells whose EDT is zero — every beam "explains" perfectly
// inside the blob, so particles sink into it and never leave (the
// loop-corridor lesson).
struct Aabb;
struct Env;

void add_storage_block(Env& env, const Aabb& box);

template <typename E, typename B>
void build_hall(E& env, const B& box) {
  env.world.add_rectangle(box);  // flagged: interior becomes a sink
}
