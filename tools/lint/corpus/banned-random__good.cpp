// Corpus: the compliant version draws from the seeded generator. Note
// that identifiers merely CONTAINING a banned name (z_rand, rand_idx)
// must not be flagged — the lexer matches whole identifiers.
#include "common/rng.hpp"

int seeded_choice(tofmcl::Rng& rng, int n, double z_rand) {
  const int rand_idx = static_cast<int>(rng.uniform_index(
      static_cast<std::uint64_t>(n)));
  return z_rand > 0.5 ? rand_idx : n - 1 - rand_idx;
}
