#include "rules.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace tofmcl::lint {
namespace {

using Toks = std::vector<Token>;

bool is_ident(const Toks& t, std::size_t i, const char* s) {
  return i < t.size() && t[i].kind == TokKind::kIdent && t[i].text == s;
}
bool is_punct(const Toks& t, std::size_t i, const char* s) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == s;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}
bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}
std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Index of the punct matching the opener at `open` ('(' / '{' / '['),
/// or t.size() when unbalanced (malformed input degrades to "no match").
std::size_t match_forward(const Toks& t, std::size_t open, const char* o,
                          const char* c) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_punct(t, i, o)) ++depth;
    else if (is_punct(t, i, c) && --depth == 0) return i;
  }
  return t.size();
}

/// Index of the '(' matching the ')' at `close`, scanning backwards.
std::size_t match_backward(const Toks& t, std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (is_punct(t, i, ")")) ++depth;
    else if (is_punct(t, i, "(") && --depth == 0) return i;
  }
  return t.size();
}

// ---------------------------------------------------------------------------
// Brace-block structure: every { ... } span, classified by what owns the
// opening brace. Rules use this to answer "which function contains token i"
// without an AST.
// ---------------------------------------------------------------------------

struct Block {
  std::size_t open = 0;
  std::size_t close = 0;
  enum Kind { kFunction, kControl, kOther } kind = kOther;
  std::size_t name_tok = static_cast<std::size_t>(-1);  ///< kFunction only.
};

bool is_qualifier(const Toks& t, std::size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent &&
         (t[i].text == "const" || t[i].text == "noexcept" ||
          t[i].text == "override" || t[i].text == "final" ||
          t[i].text == "mutable");
}

std::vector<Block> block_map(const Toks& t) {
  std::vector<Block> blocks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_punct(t, i, "{")) continue;
    Block b;
    b.open = i;
    b.close = match_forward(t, i, "{", "}");
    // Classify by the token(s) before the brace.
    std::size_t j = i;
    while (j > 0 && is_qualifier(t, j - 1)) --j;
    if (j > 0 && is_punct(t, j - 1, ")")) {
      const std::size_t paren = match_backward(t, j - 1);
      std::size_t k = paren;
      if (paren < t.size() && k > 0) {
        --k;
        if (is_ident(t, k, "if") || is_ident(t, k, "for") ||
            is_ident(t, k, "while") || is_ident(t, k, "switch") ||
            is_ident(t, k, "catch")) {
          b.kind = Block::kControl;
        } else {
          b.kind = Block::kFunction;
          if (k < t.size() && t[k].kind == TokKind::kIdent) b.name_tok = k;
        }
      }
    } else if (j > 0 && (is_ident(t, j - 1, "else") || is_ident(t, j - 1, "do") ||
                         is_ident(t, j - 1, "try"))) {
      b.kind = Block::kControl;
    }
    blocks.push_back(b);
  }
  return blocks;
}

/// Outermost function-kind block containing token index `idx` (the whole
/// enclosing function body even when `idx` sits inside a nested lambda),
/// or nullptr.
const Block* enclosing_function(const std::vector<Block>& blocks,
                                std::size_t idx, bool outermost) {
  const Block* best = nullptr;
  for (const Block& b : blocks) {
    if (b.kind != Block::kFunction || b.open >= idx || b.close <= idx) continue;
    if (!best) { best = &b; continue; }
    const bool wider = b.open < best->open;
    if (wider == outermost) best = &b;
  }
  return best;
}

bool span_has_ident(const Toks& t, std::size_t lo, std::size_t hi,
                    const char* s) {
  for (std::size_t i = lo; i < hi && i < t.size(); ++i)
    if (is_ident(t, i, s)) return true;
  return false;
}

// ---------------------------------------------------------------------------
// determinism / banned-random
// ---------------------------------------------------------------------------

std::vector<Violation> check_banned_random(const FileCtx& ctx) {
  static const std::set<std::string> kBanned = {
      "rand", "srand", "rand_r", "drand48", "random_device", "random_shuffle"};
  std::vector<Violation> out;
  for (const Token& tok : ctx.lexed->tokens) {
    if (tok.kind != TokKind::kIdent || tok.pp) continue;
    if (kBanned.count(tok.text) == 0) continue;
    out.push_back({"banned-random", tok.line,
                   "'" + tok.text +
                       "' is unseeded/non-deterministic; draw from the "
                       "seeded tofmcl::Rng (src/common/rng.hpp) instead"});
  }
  return out;
}

// ---------------------------------------------------------------------------
// determinism / wall-clock
// ---------------------------------------------------------------------------

std::vector<Violation> check_wall_clock(const FileCtx& ctx) {
  // Benchmarks and the GAP9 timing/power models exist to measure time.
  if (starts_with(ctx.path, "bench/") || starts_with(ctx.path, "src/platform/"))
    return {};
  static const std::set<std::string> kBanned = {
      "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday",
      "clock_gettime"};
  std::vector<Violation> out;
  for (const Token& tok : ctx.lexed->tokens) {
    if (tok.kind != TokKind::kIdent || tok.pp) continue;
    if (kBanned.count(tok.text) == 0) continue;
    out.push_back({"wall-clock", tok.line,
                   "'" + tok.text +
                       "' reads wall time outside the whitelisted timing "
                       "code (bench/, src/platform/); wall time feeding "
                       "simulation or filter state breaks replay "
                       "determinism — suppress only for pure latency "
                       "measurement"});
  }
  return out;
}

// ---------------------------------------------------------------------------
// determinism / unordered-iteration
// ---------------------------------------------------------------------------

void collect_unordered_decls(const Toks& t, std::set<std::string>& names) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i, "unordered_map") && !is_ident(t, i, "unordered_set") &&
        !is_ident(t, i, "unordered_multimap") &&
        !is_ident(t, i, "unordered_multiset"))
      continue;
    std::size_t j = i + 1;
    if (is_punct(t, j, "<")) {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (is_punct(t, j, "<")) ++depth;
        else if (is_punct(t, j, ">") && --depth == 0) { ++j; break; }
      }
    }
    while (j < t.size() &&
           (is_ident(t, j, "const") || is_punct(t, j, "&") ||
            is_punct(t, j, "*")))
      ++j;
    if (j < t.size() && t[j].kind == TokKind::kIdent) names.insert(t[j].text);
  }
}

std::vector<Violation> check_unordered_iteration(const FileCtx& ctx) {
  // Only where float accumulation order is the output: the filter core,
  // the campaign engine and the serving layer (their serial/batched/
  // pooled traces must stay bit-identical).
  if (!starts_with(ctx.path, "src/core") && !starts_with(ctx.path, "src/eval") &&
      !starts_with(ctx.path, "src/serve"))
    return {};
  std::set<std::string> names;
  collect_unordered_decls(ctx.lexed->tokens, names);
  if (ctx.sibling) collect_unordered_decls(ctx.sibling->tokens, names);
  if (names.empty()) return {};

  std::vector<Violation> out;
  const Toks& t = ctx.lexed->tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t, i, "for") || !is_punct(t, i + 1, "(")) continue;
    const std::size_t close = match_forward(t, i + 1, "(", ")");
    if (close >= t.size()) continue;
    // Range-for: a lone ':' at parenthesis depth 1 ("::" lexes fused, so
    // a scope operator can never masquerade as the range colon).
    std::size_t colon = t.size();
    int depth = 0;
    for (std::size_t k = i + 1; k < close; ++k) {
      if (is_punct(t, k, "(")) ++depth;
      else if (is_punct(t, k, ")")) --depth;
      else if (depth == 1 && is_punct(t, k, ":")) { colon = k; break; }
    }
    if (colon == t.size()) continue;
    for (std::size_t k = colon + 1; k < close; ++k) {
      if (t[k].kind == TokKind::kIdent && names.count(t[k].text)) {
        out.push_back(
            {"unordered-iteration", t[i].line,
             "range-for over unordered container '" + t[k].text +
                 "': iteration order is implementation-defined and float "
                 "accumulation order here is the output — use std::map/"
                 "std::vector or sort keys first"});
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// determinism / trace-hexfloat
// ---------------------------------------------------------------------------

bool is_trace_env_literal(const Token& tok) {
  if (tok.kind != TokKind::kString) return false;
  const std::string& s = tok.text;
  if (!starts_with(s, "TOFMCL_") || !ends_with(s, "_TRACE")) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
  });
}

bool span_formats_hexfloat(const Toks& t, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi && i < t.size(); ++i) {
    if (is_ident(t, i, "hexfloat")) return true;
    if (t[i].kind == TokKind::kString &&
        (t[i].text.find("%a") != std::string::npos ||
         t[i].text.find("%A") != std::string::npos))
      return true;
  }
  return false;
}

std::vector<Violation> check_trace_hexfloat(const FileCtx& ctx) {
  const Toks& t = ctx.lexed->tokens;
  const std::vector<Block> blocks = block_map(t);
  std::set<std::size_t> flagged_opens;  // Dedup multiple hooks per function.
  std::vector<Violation> out;

  auto require_hexfloat = [&](const Block* region, int line,
                              const std::string& what) {
    if (!region || flagged_opens.count(region->open)) return;
    if (span_formats_hexfloat(t, region->open + 1, region->close)) return;
    flagged_opens.insert(region->open);
    out.push_back({"trace-hexfloat", line,
                   what +
                       " must format floats as hexfloats (std::hexfloat or "
                       "a \"%a\" printf format): decimal float round-trips "
                       "make cross-process trace diffs flaky"});
  };

  // (a) Functions containing a TOFMCL_*_TRACE emitter hook.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_trace_env_literal(t[i])) continue;
    require_hexfloat(enclosing_function(blocks, i, /*outermost=*/true),
                     t[i].line,
                     "function with TOFMCL_" + std::string("*_TRACE hook"));
  }
  // (b) Functions named by the *_trace emitter convention.
  for (const Block& b : blocks) {
    if (b.kind != Block::kFunction || b.name_tok >= t.size()) continue;
    const std::string& name = t[b.name_tok].text;
    if (!ends_with(name, "_trace")) continue;
    require_hexfloat(&b, t[b.name_tok].line,
                     "trace emitter '" + name + "'");
  }
  return out;
}

// ---------------------------------------------------------------------------
// concurrency / serial-guard
// ---------------------------------------------------------------------------

/// Public non-const methods of `cls` declared in the header token stream.
/// These are the externally-serialized mutating entry points; each must
/// construct a SerialGuard::Scope in its definition.
std::set<std::string> mutating_public_methods(const Toks& h,
                                              const std::string& cls) {
  std::set<std::string> out;
  for (std::size_t i = 0; i + 1 < h.size(); ++i) {
    if (!is_ident(h, i, "class") && !is_ident(h, i, "struct")) continue;
    if (!(h[i + 1].kind == TokKind::kIdent && h[i + 1].text == cls)) continue;
    std::size_t open = i + 2;
    while (open < h.size() && !is_punct(h, open, "{") && !is_punct(h, open, ";"))
      ++open;
    if (!is_punct(h, open, "{")) continue;  // Forward declaration.
    const std::size_t close = match_forward(h, open, "{", "}");
    bool in_public = is_ident(h, i, "struct");
    bool decl_static = false;
    for (std::size_t k = open + 1; k < close && k < h.size(); ++k) {
      if (is_punct(h, k, "{")) {  // Inline body / nested type: skip whole.
        k = match_forward(h, k, "{", "}");
        decl_static = false;
        continue;
      }
      if (is_punct(h, k, ";")) { decl_static = false; continue; }
      if ((is_ident(h, k, "public") || is_ident(h, k, "private") ||
           is_ident(h, k, "protected")) &&
          is_punct(h, k + 1, ":")) {
        in_public = is_ident(h, k, "public");
        ++k;
        continue;
      }
      if (is_ident(h, k, "static")) decl_static = true;
      if (h[k].kind == TokKind::kIdent && is_punct(h, k + 1, "(") &&
          in_public && !decl_static && h[k].text != cls &&
          h[k].text != "operator" && !is_punct(h, k - 1, "~")) {
        const std::size_t endp = match_forward(h, k + 1, "(", ")");
        if (endp >= h.size()) break;
        bool is_const = false;
        std::size_t q = endp + 1;
        while (q < h.size() && !is_punct(h, q, ";") && !is_punct(h, q, "{")) {
          if (is_ident(h, q, "const")) is_const = true;
          ++q;
        }
        if (!is_const) out.insert(h[k].text);
        k = endp;  // Parameter lists cannot declare more methods.
        continue;
      }
    }
    break;  // First definition of the class wins.
  }
  return out;
}

std::vector<Violation> check_serial_guard(const FileCtx& ctx) {
  if (basename_of(ctx.path) != "localizer.cpp" ||
      !starts_with(ctx.path, "src/core"))
    return {};
  if (!ctx.sibling) return {};  // No header, no contract to read.
  const std::set<std::string> entry_points =
      mutating_public_methods(ctx.sibling->tokens, "Localizer");
  const Toks& t = ctx.lexed->tokens;
  std::vector<Violation> out;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (!is_ident(t, i, "Localizer") || !is_punct(t, i + 1, "::")) continue;
    if (t[i + 2].kind != TokKind::kIdent || !is_punct(t, i + 3, "(")) continue;
    if (entry_points.count(t[i + 2].text) == 0) continue;
    const std::size_t endp = match_forward(t, i + 3, "(", ")");
    if (endp >= t.size()) continue;
    std::size_t open = endp + 1;
    while (open < t.size() && !is_punct(t, open, "{") &&
           !is_punct(t, open, ";"))
      ++open;
    if (!is_punct(t, open, "{")) continue;  // Declaration, not definition.
    const std::size_t close = match_forward(t, open, "{", "}");
    bool guarded = false;
    for (std::size_t k = open + 1; k + 2 < close; ++k) {
      if (is_ident(t, k, "SerialGuard") && is_punct(t, k + 1, "::") &&
          is_ident(t, k + 2, "Scope")) {
        guarded = true;
        break;
      }
    }
    if (!guarded) {
      out.push_back({"serial-guard", t[i].line,
                     "mutating Localizer entry point '" + t[i + 2].text +
                         "' does not construct a SerialGuard::Scope: the "
                         "single-threaded-by-contract invariant must stay "
                         "asserted (concurrent entry throws instead of "
                         "silently racing filter state)"});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// concurrency / detached-thread
// ---------------------------------------------------------------------------

std::vector<Violation> check_detached_thread(const FileCtx& ctx) {
  const Toks& t = ctx.lexed->tokens;
  std::vector<Violation> out;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if ((is_punct(t, i, ".") || is_punct(t, i, "->")) &&
        is_ident(t, i + 1, "detach") && is_punct(t, i + 2, "(")) {
      out.push_back({"detached-thread", t[i + 1].line,
                     ".detach() orphans the thread past test/process "
                     "teardown and races static destruction; submit to "
                     "common::ThreadPool or join explicitly"});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// concurrency / empty-catch
// ---------------------------------------------------------------------------

std::vector<Violation> check_empty_catch(const FileCtx& ctx) {
  const Toks& t = ctx.lexed->tokens;
  std::vector<Violation> out;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t, i, "catch") || !is_punct(t, i + 1, "(")) continue;
    const std::size_t endp = match_forward(t, i + 1, "(", ")");
    if (endp + 2 >= t.size()) continue;
    if (is_punct(t, endp + 1, "{") && is_punct(t, endp + 2, "}")) {
      out.push_back({"empty-catch", t[i].line,
                     "empty catch body swallows the exception silently "
                     "(comments do not count as handling); record, rethrow "
                     "or suppress with a justification"});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// concurrency / sleep-sync
// ---------------------------------------------------------------------------

std::vector<Violation> check_sleep_sync(const FileCtx& ctx) {
  if (!starts_with(ctx.path, "tests/")) return {};
  static const std::set<std::string> kBanned = {"sleep_for", "sleep_until",
                                                "usleep", "nanosleep"};
  std::vector<Violation> out;
  for (const Token& tok : ctx.lexed->tokens) {
    if (tok.kind != TokKind::kIdent || tok.pp) continue;
    if (kBanned.count(tok.text) == 0) continue;
    out.push_back({"sleep-sync", tok.line,
                   "'" + tok.text +
                       "' in a test is sleep-as-synchronization — the "
                       "canonical flaky test; wait on a condition "
                       "variable, future or TaskGroup instead"});
  }
  return out;
}

// ---------------------------------------------------------------------------
// map invariants / solid-interior
// ---------------------------------------------------------------------------

std::vector<Violation> check_solid_interior(const FileCtx& ctx) {
  const std::string base = basename_of(ctx.path);
  if (base == "worldgen.cpp" || base == "dynamic_obstacles.cpp") return {};
  const Toks& t = ctx.lexed->tokens;
  std::vector<Block> blocks;  // Built lazily on the first call site.
  std::vector<Violation> out;
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (!is_punct(t, i, ".") || !is_ident(t, i + 1, "world")) continue;
    if (!is_punct(t, i + 2, ".") || !is_ident(t, i + 3, "add_rectangle"))
      continue;
    if (!is_punct(t, i + 4, "(")) continue;
    if (blocks.empty()) blocks = block_map(t);
    const Block* fn = enclosing_function(blocks, i, /*outermost=*/false);
    const std::size_t lo = fn ? fn->open + 1 : 0;
    const std::size_t hi = fn ? fn->close : t.size();
    if (span_has_ident(t, lo, hi, "solid_regions")) continue;
    out.push_back(
        {"solid-interior", t[i + 3].line,
         "add_rectangle on an environment's world without referencing "
         "solid_regions in the same function: a large Occupied blob whose "
         "interior is not registered becomes a zero-EDT particle sink "
         "(every beam scores perfectly inside it) — push the box into "
         "solid_regions or keep the interior Unknown"});
  }
  return out;
}

// ---------------------------------------------------------------------------
// serving invariants / context-immutable
// ---------------------------------------------------------------------------

std::vector<Violation> check_context_immutable(const FileCtx& ctx) {
  // The builder owns the only mutable window: the class definition and
  // the build_scoring_context factories live in scoring_context.{hpp,cpp}.
  const std::string base = basename_of(ctx.path);
  if (base == "scoring_context.hpp" || base == "scoring_context.cpp")
    return {};
  const Toks& t = ctx.lexed->tokens;
  std::vector<Violation> out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i, "ScoringContext") || t[i].pp) continue;
    // Walk back over namespace qualifiers (core::, tofmcl::core::, ...)
    // to the first token of the type name, then require a const there:
    // every way to reach the context outside its builder — reference,
    // pointer, shared_ptr element — must be const-qualified, or the
    // one-per-map sharing contract allows a session to mutate scoring
    // state under every other session on that map.
    std::size_t j = i;
    while (j >= 2 && is_punct(t, j - 1, "::") &&
           t[j - 2].kind == TokKind::kIdent && !is_ident(t, j - 2, "const"))
      j -= 2;
    if (j > 0 && is_ident(t, j - 1, "const")) continue;
    out.push_back(
        {"context-immutable", t[i].line,
         "non-const use of ScoringContext outside its builder "
         "(scoring_context.{hpp,cpp}): the context is shared by every "
         "session on the map, so all references, pointers and shared_ptr "
         "elements must be const-qualified — mutate a copy of the config "
         "before building instead"});
  }
  return out;
}

// ---------------------------------------------------------------------------
// layering / raw-intrinsics
// ---------------------------------------------------------------------------

/// NEON lane-type suffix: _f32 / _s16 / _u8 / _p64 at the end of a name.
bool neon_lane_suffix(const std::string& s) {
  const std::size_t us = s.find_last_of('_');
  if (us == std::string::npos || us + 2 >= s.size()) return false;
  const char k = s[us + 1];
  if (k != 'f' && k != 's' && k != 'u' && k != 'p') return false;
  for (std::size_t i = us + 2; i < s.size(); ++i)
    if (s[i] < '0' || s[i] > '9') return false;
  return true;
}

/// vld1q_f32 / vmulq_f32 / vcvt_high_f64_f32 / ... — a curated family
/// prefix keeps ordinary identifiers like `val_u32` out of the net.
bool is_neon_intrinsic(const std::string& s) {
  static const char* const kFamilies[] = {
      "vld",  "vst",  "vdup", "vmov", "vmul", "vadd",         "vsub",
      "vdiv", "vrnd", "vcvt", "vget", "vset", "vfma",         "vfms",
      "vmax", "vmin", "vabs", "vneg", "vbsl", "vceq",         "vcgt",
      "vclt", "vcge", "vcle", "vmla", "vmls", "vcombine",     "vzip",
      "vuzp", "vtrn", "vext", "vpadd", "vrev", "vreinterpret"};
  if (!neon_lane_suffix(s)) return false;
  for (const char* f : kFamilies)
    if (starts_with(s, f)) return true;
  return false;
}

/// float32x4_t / int16x8_t / uint8x16_t / poly8x8_t.
bool is_neon_vector_type(const std::string& s) {
  static const char* const kElems[] = {"float", "int", "uint", "poly"};
  if (!ends_with(s, "_t")) return false;
  for (const char* e : kElems) {
    if (!starts_with(s, e)) continue;
    std::size_t i = std::string(e).size();
    const std::size_t d0 = i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    if (i == d0 || i >= s.size() || s[i] != 'x') return false;
    const std::size_t d1 = ++i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    return i > d1 && s.compare(i, std::string::npos, "_t") == 0;
  }
  return false;
}

/// _mm_* / _mm256_* / _mm512_* calls and __m128/__m256d/__m512i types.
bool is_x86_intrinsic(const std::string& s) {
  if (starts_with(s, "_mm")) return true;
  return s.size() > 3 && starts_with(s, "__m") && s[3] >= '0' && s[3] <= '9';
}

std::vector<Violation> check_raw_intrinsics(const FileCtx& ctx) {
  // The kernel layer is the one place allowed to speak SIMD.
  if (starts_with(ctx.path, "src/core/kernels/")) return {};
  static const std::set<std::string> kSimdHeaders = {
      "immintrin", "x86intrin", "xmmintrin", "emmintrin", "pmmintrin",
      "smmintrin", "tmmintrin", "nmmintrin", "wmmintrin", "ammintrin",
      "avxintrin", "avx2intrin", "arm_neon", "arm_sve", "arm_fp16"};
  std::vector<Violation> out;
  for (const Token& tok : ctx.lexed->tokens) {
    if (tok.kind != TokKind::kIdent) continue;
    const bool header = tok.pp && kSimdHeaders.count(tok.text) > 0;
    const bool usage = !tok.pp && (is_x86_intrinsic(tok.text) ||
                                   is_neon_intrinsic(tok.text) ||
                                   is_neon_vector_type(tok.text));
    if (!header && !usage) continue;
    out.push_back(
        {"raw-intrinsics", tok.line,
         "'" + tok.text +
             "' is raw SIMD outside src/core/kernels/: intrinsics live "
             "behind the runtime-dispatched kernels::observation_sweep so "
             "the scalar reference stays the single definition of the "
             "arithmetic — add a kernel entry point (kernel_backend.hpp) "
             "instead of vectorizing in place"});
  }
  return out;
}

}  // namespace

const std::vector<Rule>& rule_catalog() {
  static const std::vector<Rule> kRules = {
      {"banned-random",
       "unseeded RNG/entropy sources break replay determinism",
       &check_banned_random},
      {"wall-clock",
       "wall-clock reads outside whitelisted timing code",
       &check_wall_clock},
      {"unordered-iteration",
       "range-for over unordered containers where accumulation order "
       "matters",
       &check_unordered_iteration},
      {"trace-hexfloat",
       "trace emitters must write floats as hexfloats",
       &check_trace_hexfloat},
      {"serial-guard",
       "mutating Localizer entry points must construct SerialGuard::Scope",
       &check_serial_guard},
      {"detached-thread", "detached threads outlive teardown",
       &check_detached_thread},
      {"empty-catch", "empty catch bodies swallow exceptions",
       &check_empty_catch},
      {"sleep-sync", "sleep-as-synchronization in tests",
       &check_sleep_sync},
      {"solid-interior",
       "occupied-rect fills must register solid_regions",
       &check_solid_interior},
      {"context-immutable",
       "ScoringContext must stay const outside its builder",
       &check_context_immutable},
      {"raw-intrinsics",
       "SIMD intrinsics are confined to src/core/kernels/",
       &check_raw_intrinsics},
  };
  return kRules;
}

bool is_known_rule(const std::string& name) {
  for (const Rule& r : rule_catalog())
    if (r.name == name) return true;
  return false;
}

std::vector<Violation> run_rules(const FileCtx& ctx) {
  std::vector<Violation> out;
  for (const Rule& r : rule_catalog()) {
    std::vector<Violation> v = r.check(ctx);
    out.insert(out.end(), v.begin(), v.end());
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

}  // namespace tofmcl::lint
