#pragma once
/// \file rules.hpp
/// \brief Rule registry for tofmcl_lint.
///
/// Each rule encodes one repo invariant as a named, individually
/// suppressible check over a file's token stream (see lexer.hpp). The
/// catalog — keep README.md "Static analysis" in sync:
///
///  determinism
///   * banned-random     — rand/srand/rand_r/drand48/std::random_device/
///                         random_shuffle anywhere: all stochastic code
///                         must draw from the seeded tofmcl::Rng
///                         (src/common/rng.hpp) or cross-process trace
///                         diffs stop being bit-identical.
///   * wall-clock        — system_clock/steady_clock/high_resolution_clock/
///                         gettimeofday/clock_gettime outside the
///                         whitelisted timing code (bench/, src/platform/):
///                         wall time feeding any simulation or filter
///                         decision breaks replay determinism.
///   * unordered-iteration — range-for over a std::unordered_map/set in
///                         src/core, src/eval, src/serve: iteration order
///                         is implementation-defined, and in these modules
///                         float accumulation order IS the output
///                         (serial/batched/pooled traces must stay
///                         bit-identical).
///   * trace-hexfloat    — any function named *_trace, or any function
///                         containing a TOFMCL_*_TRACE emitter hook, must
///                         format floats as hexfloats (std::hexfloat or a
///                         "%a" printf format): decimal round-trips are
///                         what made cross-process diffs flaky pre-PR 1.
///
///  concurrency
///   * serial-guard      — every public non-const (mutating) method of
///                         core::Localizer defined in localizer.cpp must
///                         construct a SerialGuard::Scope: the
///                         single-threaded-by-contract invariant (PR 6) is
///                         load-bearing for the serving layer.
///   * detached-thread   — .detach() on anything, repo-wide: a detached
///                         thread outlives the test/process teardown and
///                         races static destruction; use ThreadPool or
///                         join.
///   * empty-catch       — catch blocks with an empty body (comments do
///                         not count), repo-wide: swallowing exceptions
///                         silently is how the PR 2 ThreadPool bug hid.
///   * sleep-sync        — sleep_for/sleep_until/usleep/nanosleep in
///                         tests/: sleeping as a synchronization primitive
///                         is the canonical flaky test; use condition
///                         variables, futures or TaskGroup waits.
///
///  map invariants
///   * solid-interior    — <env>.world.add_rectangle(...) outside the
///                         worldgen.cpp / dynamic_obstacles.cpp whitelist
///                         must reference solid_regions in the same
///                         function: a large Occupied blob whose interior
///                         is not registered as a solid region becomes a
///                         zero-EDT particle sink (the loop-corridor
///                         lesson, ROADMAP standing invariant).
///
///  serving invariants
///   * context-immutable — any mention of ScoringContext outside its
///                         builder (src/core/scoring_context.{hpp,cpp})
///                         must be const-qualified: the context is shared
///                         one-per-map across sessions, so a non-const
///                         reference/pointer/shared_ptr element would let
///                         one session mutate scoring state under all the
///                         others.
///
///  layering
///   * raw-intrinsics    — SIMD headers (<immintrin.h>, <arm_neon.h>, …)
///                         and raw intrinsic usage (_mm*/__m256 types,
///                         vld1q_f32-style NEON calls and float32x4_t
///                         vector types) anywhere but src/core/kernels/:
///                         vector code is confined to the kernel layer
///                         behind the runtime-dispatched
///                         kernels::observation_sweep, so the scalar
///                         reference stays the single definition of the
///                         filter arithmetic (PR 9).

#include <string>
#include <vector>

#include "lexer.hpp"

namespace tofmcl::lint {

struct Violation {
  std::string rule;
  int line = 0;
  std::string message;
};

/// Everything a rule may look at. `path` is repo-relative with forward
/// slashes (e.g. "src/core/localizer.cpp") — rules scope themselves by
/// prefix. `sibling` is the lexed same-stem .hpp (member declarations,
/// class contracts) when one exists, else nullptr.
struct FileCtx {
  std::string path;
  const LexedFile* lexed = nullptr;
  const LexedFile* sibling = nullptr;
};

struct Rule {
  std::string name;
  std::string summary;
  std::vector<Violation> (*check)(const FileCtx&);
};

/// The registered rule catalog, in the order findings are reported.
const std::vector<Rule>& rule_catalog();

/// True if `name` names a registered rule (used to validate suppressions
/// and budget entries).
bool is_known_rule(const std::string& name);

/// Runs every rule over one file. Suppressions are NOT applied here —
/// the driver (tofmcl_lint.cpp) owns the TOFMCL_LINT_ALLOW machinery.
std::vector<Violation> run_rules(const FileCtx& ctx);

}  // namespace tofmcl::lint
