// Reproduces paper Fig 10: speedup of the 8-core cluster over a single
// core per MCL phase and for the full update, as a function of particle
// count, from the calibrated GAP9 timing model.
//
// Paper reference: total speedup improves with N up to ≈ 7×; resampling
// scales worst but exceeds 5× at high particle counts.

#include <cstdio>
#include <iostream>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "platform/gap9_timing.hpp"

using namespace tofmcl;
using namespace tofmcl::platform;

int main(int argc, char** argv) {
  const bench::BenchArgs args =
      bench::parse_args(argc, argv, "Fig 10 — 8-core speedup vs particles");

  const Gap9TimingModel model = calibrated_timing_model();
  constexpr std::size_t kCounts[] = {64, 256, 1024, 4096, 16384};

  std::printf("=== Fig 10 — speedup (8 cores vs 1), GAP9@400MHz ===\n\n");
  Table table({"particles", "observation", "motion", "resampling",
               "pose_comp", "total"});
  for (const std::size_t n : kCounts) {
    const Placement placement =
        n >= 4096 ? Placement::kL2 : Placement::kL1;
    auto row = table.row();
    row.cell(n);
    for (const Phase p : kAllPhases) {
      row.cell(model.phase_speedup(p, n, 8, placement), 2);
    }
    row.cell(model.total_speedup(n, 8, placement), 2);
    row.commit();
  }
  table.print(std::cout);

  std::printf(
      "\npaper: total speedup grows to ~7x at 16384 particles; resampling\n"
      "       scales worst yet reaches >5x at high N (L2 latency hiding).\n");

  // Scaling across core counts at the largest workload (extension view).
  std::printf("\nscaling at 16384 particles (L2):\n");
  Table cores_table({"cores", "update_ms", "speedup"});
  for (std::size_t cores = 1; cores <= 8; ++cores) {
    cores_table.row()
        .cell(cores)
        .cell(model.update_ns(16384, cores, Placement::kL2, 400.0) * 1e-6, 3)
        .cell(model.total_speedup(16384, cores, Placement::kL2), 2)
        .commit();
  }
  cores_table.print(std::cout);

  if (args.csv_dir) {
    table.write_csv(std::filesystem::path(*args.csv_dir) /
                    "fig10_speedup.csv");
  }
  return 0;
}
