// Reproduces paper Fig 6: absolute trajectory error (ATE) after
// convergence versus particle count, for the four configurations
// fp32 / fp32 1tof / fp32qm / fp16qm, aggregated over the standard flight
// sequences and noise seeds.
//
// Paper reference values: two-sensor variants hold ≈ 0.15 m ATE over a
// wide range of particle counts; the single-sensor ablation is worse.

#include <cstdio>
#include <iostream>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "eval/experiment.hpp"

using namespace tofmcl;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(
      argc, argv, "Fig 6 — ATE vs particle number");

  eval::SweepConfig cfg;
  cfg.sequences = args.sequences;
  cfg.seeds_per_sequence = args.seeds;
  cfg.threads = args.threads;
  cfg.batched_runs = args.batched_runs;

  std::fprintf(stderr,
               "fig6: running %zu sequences x %zu seeds x 4 variants x %zu "
               "particle counts (%s campaign runs)...\n",
               cfg.sequences, cfg.seeds_per_sequence,
               cfg.particle_counts.size(),
               cfg.batched_runs ? "batched" : "serial");
  const eval::SweepResult result = eval::run_accuracy_sweep(cfg);
  const auto cells = eval::summarize(cfg, result);

  std::printf("\n=== Fig 6 — ATE (m) vs particle number ===\n");
  std::printf("(mean position error after convergence; converged runs)\n\n");
  Table table({"particles", "fp32", "fp32_1tof", "fp32qm", "fp16qm"});
  for (const std::size_t n : cfg.particle_counts) {
    auto row = table.row();
    row.cell(n);
    for (const eval::Variant v : cfg.variants) {
      for (const auto& cell : cells) {
        if (cell.variant == v && cell.particles == n) {
          row.cell(cell.mean_ate_m, 3);
        }
      }
    }
    row.commit();
  }
  table.print(std::cout);
  std::printf(
      "\npaper: fp32/fp32qm/fp16qm ≈ 0.15 m and flat for N ≥ 256;\n"
      "       fp32 1tof visibly higher. Shape target, not absolute.\n");

  if (args.csv_dir) {
    table.write_csv(std::filesystem::path(*args.csv_dir) / "fig6_ate.csv");
    std::fprintf(stderr, "fig6: CSV written to %s/fig6_ate.csv\n",
                 args.csv_dir->c_str());
  }
  return 0;
}
