// Campaign-engine throughput bench: the ROADMAP's "heavy traffic" axis.
//
// Builds a matrix campaign (small maze × plans × precisions × sensing),
// prepares the shared read-only state (grids, EDTs, LUT, datasets) once,
// then executes the SAME battery twice:
//
//   serial  — one run at a time (the pre-campaign reference schedule)
//   batched — runs as ThreadPool tasks across the host cores
//
// and reports runs/sec plus observation-phase particle·beam ops/sec for
// both, the speedup, and verifies the two results are BIT-IDENTICAL (the
// campaign determinism guarantee; a mismatch exits nonzero, so this
// doubles as a regression gate in CI smoke mode).
//
// Expected: on an 8-core host a 32-run campaign batches at ≥ 3× the
// serial runs/sec (runs are independent; shared state is read-only).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "eval/campaign.hpp"

using namespace tofmcl;

namespace {

struct Args {
  std::size_t runs = 32;
  std::size_t threads = 8;
  std::size_t particles = 1024;
  bool pooled_chunks = false;
  /// Generated-worlds battery (office + warehouse + loop corridor, with a
  /// dynamic-obstacle sensing axis) instead of the maze matrix.
  bool worldgen = false;
  /// Heavy-crowd battery: warehouse tour with five crossing pedestrians
  /// and an observation-model axis (seed two-term likelihood vs
  /// short-return mixture + novelty gating).
  bool crowd = false;
  /// Stale-map battery: one warehouse at pristine/light/heavy staleness
  /// (the drone flies the mutated hall, the localizer keeps the pristine
  /// map) crossed with the observation-model axis.
  bool stale = false;
  /// Dump a hexfloat per-run trace for cross-process determinism diffs.
  const char* trace_path = nullptr;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0;
    };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (is("--help") || is("-h")) {
      std::printf(
          "bench_campaign_throughput — batched vs serial campaign execution\n"
          "  --runs N       campaign size (default 32)\n"
          "  --threads N    pool size for batched mode (default 8)\n"
          "  --particles N  particles per run (default 1024)\n"
          "  --pooled       also time batched + pooled filter chunks\n"
          "  --smoke        tiny sanity configuration (CI)\n"
          "  --worldgen     generated office/warehouse/loop battery with\n"
          "                 a dynamic-obstacle sensing axis\n"
          "  --crowd        heavy-crowd warehouse battery with an\n"
          "                 observation-model axis (baseline vs\n"
          "                 mixture + novelty gating)\n"
          "  --stale        stale-map warehouse battery: pristine vs\n"
          "                 light vs heavy map mutation x the\n"
          "                 observation-model axis (forces >= 6 runs)\n"
          "  --trace FILE   write a hexfloat per-run result trace (CI\n"
          "                 diffs two invocations for cross-process\n"
          "                 determinism)\n");
      std::exit(0);
    } else if (is("--runs")) {
      args.runs = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--threads")) {
      args.threads = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--particles")) {
      args.particles = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--pooled")) {
      args.pooled_chunks = true;
    } else if (is("--smoke")) {
      args.runs = 2;
      args.threads = 2;
      args.particles = 256;
    } else if (is("--worldgen")) {
      args.worldgen = true;
    } else if (is("--crowd")) {
      args.crowd = true;
    } else if (is("--stale")) {
      args.stale = true;
    } else if (is("--trace")) {
      args.trace_path = value();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (args.runs == 0 || args.threads == 0 || args.particles == 0) {
    std::fprintf(stderr, "runs/threads/particles must be positive\n");
    std::exit(2);
  }
  if (args.stale && args.runs < 6) {
    // The battery is 3 staleness levels x 2 observation models; anything
    // smaller would silently drop the stale cells (--smoke included).
    args.runs = 6;
  }
  return args;
}

std::uint64_t total_ops(const eval::CampaignResult& result) {
  std::uint64_t ops = 0;
  for (const auto& run : result.runs) ops += run.particle_beam_ops;
  return ops;
}

/// Bitwise comparison of two campaign results (the determinism gate).
bool identical(const eval::CampaignResult& a, const eval::CampaignResult& b) {
  if (a.runs.size() != b.runs.size()) return false;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const auto& ra = a.runs[i];
    const auto& rb = b.runs[i];
    if (ra.updates_run != rb.updates_run ||
        ra.particle_beam_ops != rb.particle_beam_ops ||
        ra.errors.size() != rb.errors.size() ||
        ra.metrics.converged != rb.metrics.converged ||
        ra.metrics.ate_m != rb.metrics.ate_m ||
        ra.final_pos_error_m != rb.final_pos_error_m) {
      return false;
    }
    for (std::size_t j = 0; j < ra.errors.size(); ++j) {
      if (ra.errors[j].t != rb.errors[j].t ||
          ra.errors[j].pos_error != rb.errors[j].pos_error ||
          ra.errors[j].yaw_error != rb.errors[j].yaw_error) {
        return false;
      }
    }
  }
  return true;
}

void report(const char* label, const eval::CampaignResult& result,
            std::size_t runs) {
  const double t = result.execute_seconds;
  std::printf("%-26s %8.2f s   %7.2f runs/s   %9.1f Mops/s\n", label, t,
              static_cast<double>(runs) / t,
              static_cast<double>(total_ops(result)) / t / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  // Default matrix: small maze over four plans × two quantized precisions
  // × two sensing modes; --worldgen swaps in the generated battery
  // (office tour + warehouse tour + loop shuttle, static vs two crossing
  // pedestrians). seeds_per_cell stretches the battery to --runs.
  eval::CampaignSpec spec;
  if (args.stale) {
    // One warehouse flown at three staleness levels — the localizer's map
    // stays pristine while the hall gets rearranged — with the paired
    // observation-model axis on top. CI diffs two hexfloat traces of this
    // battery, covering mutate_world itself cross-process.
    spec.worlds = {{eval::CampaignWorld::kWarehouse, 0, 2},
                   {eval::CampaignWorld::kWarehouse, 0, 2, 180.0, 1,
                    sim::MutationLevel::kLight, 500},
                   {eval::CampaignWorld::kWarehouse, 0, 2, 180.0, 1,
                    sim::MutationLevel::kHeavy, 500}};
    spec.inits = {{eval::InitSpec::Mode::kTracking, 0.2, 0.2, 2}};
    spec.precisions = {core::Precision::kFp32Qm};
    spec.observation = {{}, {0.5, 1.0, true, 0.5, 0.85}};
    spec.master_seed = 29;
  } else if (args.crowd) {
    // One warehouse aisle tour under a five-pedestrian crossing crowd,
    // replayed through both observation models (paired: the axis shares
    // data/filter seeds). CI diffs two hexfloat traces of this battery
    // for cross-process determinism of the heavy-crowd cell.
    spec.worlds = {{eval::CampaignWorld::kWarehouse, 0, 2}};
    spec.inits = {{eval::InitSpec::Mode::kTracking, 0.2, 0.2, 2}};
    spec.precisions = {core::Precision::kFp32Qm};
    spec.sensing = {{sensor::ZoneMode::k8x8, 15.0, 0.01, true, 5, 1.0}};
    spec.observation = {{}, {0.5, 1.0, true, 0.5, 0.85}};
    spec.master_seed = 23;
  } else if (args.worldgen) {
    spec.worlds = {{eval::CampaignWorld::kOffice, 0, 3},
                   {eval::CampaignWorld::kWarehouse, 0, 2},
                   {eval::CampaignWorld::kLoopCorridor, 2, 1}};
    spec.precisions = {core::Precision::kFp32Qm};
    spec.sensing = {{}, {sensor::ZoneMode::k8x8, 15.0, 0.01, true, 2, 1.2}};
  } else {
    spec.worlds = {{eval::CampaignWorld::kSmallMaze, 0},
                   {eval::CampaignWorld::kSmallMaze, 1},
                   {eval::CampaignWorld::kSmallMaze, 2},
                   {eval::CampaignWorld::kSmallMaze, 4}};
    spec.precisions = {core::Precision::kFp32Qm, core::Precision::kFp16Qm};
    spec.sensing = {{}, {sensor::ZoneMode::k4x4, 60.0, 0.01, true}};
  }
  spec.mcl.num_particles = args.particles;
  const std::size_t cell_runs =
      spec.worlds.size() * spec.precisions.size() * spec.sensing.size() *
      (spec.observation.empty() ? 1 : spec.observation.size());
  spec.seeds_per_cell = (args.runs + cell_runs - 1) / cell_runs;
  eval::Campaign campaign(std::move(spec));

  std::vector<eval::RunSpec> runs = campaign.runs();
  runs.resize(args.runs);  // stretch rounds up; trim to the exact size
  campaign.set_runs(std::move(runs));

  std::fprintf(stderr,
               "campaign: %zu runs x %zu particles, %zu threads "
               "(preparing shared maps + datasets...)\n",
               args.runs, args.particles, args.threads);

  // Warm the shared caches with the serial pass so both timed executions
  // see identical prepared state.
  eval::CampaignOptions serial_opt;
  serial_opt.batched = false;
  const eval::CampaignResult serial = campaign.run(serial_opt);
  std::fprintf(stderr, "prepare: %.2f s (amortized across all modes)\n",
               serial.prepare_seconds);

  eval::CampaignOptions batched_opt;
  batched_opt.batched = true;
  batched_opt.threads = args.threads;
  const eval::CampaignResult batched = campaign.run(batched_opt);

  std::printf("\n=== Campaign throughput — %zu runs, %zu particles ===\n\n",
              args.runs, args.particles);
  report("serial (1 run at a time)", serial, args.runs);
  report("batched", batched, args.runs);

  bool ok = identical(serial, batched);
  if (args.pooled_chunks) {
    eval::CampaignOptions pooled_opt = batched_opt;
    pooled_opt.pooled_filter_chunks = true;
    const eval::CampaignResult pooled = campaign.run(pooled_opt);
    report("batched + pooled chunks", pooled, args.runs);
    ok = ok && identical(serial, pooled);
  }

  const double speedup = serial.execute_seconds / batched.execute_seconds;
  std::printf("\nspeedup (batched / serial): %.2fx on %zu threads\n", speedup,
              args.threads);
  std::printf("determinism: serial and batched results %s\n",
              ok ? "bit-identical" : "DIFFER (BUG)");
  if (!ok) return 1;

  if (args.trace_path != nullptr) {
    // Hexfloat per-run trace: two invocations of the same battery in
    // different processes must produce byte-identical files (covers world
    // generation, tour planning, obstacle scatter, dataset generation and
    // the filter itself).
    std::ofstream trace(args.trace_path);
    if (!trace) {
      std::fprintf(stderr, "cannot open trace file %s\n", args.trace_path);
      return 1;
    }
    trace << std::hexfloat;
    for (const auto& run : serial.runs) {
      trace << run.spec.world_index << ' ' << run.spec.sensing_index << ' '
            << run.spec.observation_index << ' '
            << run.spec.data_seed << ' ' << run.spec.mcl_seed << ' '
            << run.updates_run << ' ' << run.particle_beam_ops << ' '
            << run.metrics.ate_m << ' ' << run.final_pos_error_m << '\n';
      for (const auto& e : run.errors) {
        trace << e.t << ' ' << e.pos_error << ' ' << e.yaw_error << '\n';
      }
    }
  }
  return 0;
}
