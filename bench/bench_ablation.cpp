// Ablation bench: quantifies the design choices DESIGN.md calls out,
// beyond the paper's own four variants.
//
//   A. Motion-noise policy  — distance-scaled σ_odom (library default) vs
//      the paper-literal fixed σ per motion update.
//   B. Recovery injection   — Augmented-MCL injection on vs off.
//   C. Beam extraction rows — both central rows (16 beams/sensor) vs one
//      row (8 beams/sensor).
//   D. Update gating        — paper gate (0.1 m / 0.1 rad) vs none.
//
// Each ablation reports success rate and ATE at 4096 particles (fp32qm)
// over the standard sequences.

#include <cstdio>
#include <iostream>

#include "bench_args.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "eval/experiment.hpp"

using namespace tofmcl;

namespace {

struct AblationResult {
  double success_rate = 0.0;
  double ate_m = 0.0;
  double conv_s = 0.0;
  std::size_t runs = 0;
};

AblationResult run_case(const eval::SweepConfig& base) {
  eval::SweepConfig cfg = base;
  cfg.variants = {eval::Variant::kFp32Qm};
  cfg.particle_counts = {4096};
  const eval::SweepResult result = eval::run_accuracy_sweep(cfg);
  const auto cells = eval::summarize(cfg, result);
  AblationResult out;
  out.success_rate = cells[0].success_rate;
  out.ate_m = cells[0].mean_ate_m;
  out.conv_s = cells[0].mean_convergence_s;
  out.runs = cells[0].runs;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(
      argc, argv, "Ablations — noise policy, injection, beams, gating");

  eval::SweepConfig base;
  base.sequences = args.sequences;
  base.seeds_per_sequence = args.seeds;
  base.threads = args.threads;
  base.batched_runs = args.batched_runs;

  Table table({"ablation", "success_%", "ATE_m", "conv_s", "runs"});
  const auto add = [&table](const char* name, const AblationResult& r) {
    table.row()
        .cell(name)
        .cell(100.0 * r.success_rate, 1)
        .cell(r.ate_m, 3)
        .cell(r.conv_s, 1)
        .cell(r.runs)
        .commit();
    std::fprintf(stderr, "ablation done: %s\n", name);
  };

  // Baseline: library defaults.
  add("baseline (defaults)", run_case(base));

  {  // A: paper-literal fixed noise per motion update.
    eval::SweepConfig cfg = base;
    cfg.mcl.scale_noise_with_motion = false;
    cfg.mcl.sigma_odom_xy = 0.1;
    cfg.mcl.sigma_odom_yaw = 0.1;
    add("fixed sigma_odom=0.1 per update", run_case(cfg));
  }
  {  // B: no recovery injection.
    eval::SweepConfig cfg = base;
    cfg.mcl.enable_injection = false;
    add("injection off", run_case(cfg));
  }
  {  // C: sharper observation model.
    eval::SweepConfig cfg = base;
    cfg.mcl.z_hit = 0.99;
    cfg.mcl.z_rand = 0.01;
    add("z_rand=0.01 (nearly pure Gaussian)", run_case(cfg));
  }
  {  // D: broader observation sigma (the paper's 2.0 read as meters).
    eval::SweepConfig cfg = base;
    cfg.mcl.sigma_obs = 2.0;
    add("sigma_obs=2.0 m (literal units)", run_case(cfg));
  }
  {  // E: no update gating (correct at every frame).
    eval::SweepConfig cfg = base;
    cfg.mcl.gate_dxy = 1e-9;
    cfg.mcl.gate_dtheta = 1e-9;
    add("no dxy/dtheta gating", run_case(cfg));
  }

  std::printf("\n=== Ablations (fp32qm, 4096 particles) ===\n\n");
  table.print(std::cout);
  std::printf(
      "\nreading: recovery injection is the load-bearing robustness\n"
      "mechanism (success drops by a third without it); sigma_obs read in\n"
      "meters (2.0) makes the likelihood too flat to localize at all; and\n"
      "removing the paper's dxy/dtheta gate degrades the ATE several-fold\n"
      "because corrections fire on zero-information ticks while noise\n"
      "accrues. The fixed-sigma (paper-literal) motion noise works at this\n"
      "particle count too — it trades hover stability for slightly faster\n"
      "convergence; see DESIGN.md section 5.\n");

  if (args.csv_dir) {
    table.write_csv(std::filesystem::path(*args.csv_dir) / "ablation.csv");
  }
  return 0;
}
