// Reproduces paper Fig 8: probability of having converged as a function
// of time, for 4096 particles, across the four configurations.
//
// Paper reference: the quantized variants converge fastest; the
// single-sensor variant is the slowest; all two-sensor curves approach 1
// within the sequence horizon.

#include <cstdio>
#include <iostream>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "eval/experiment.hpp"

using namespace tofmcl;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(
      argc, argv, "Fig 8 — convergence probability vs time (4096 particles)");

  eval::SweepConfig cfg;
  cfg.sequences = args.sequences;
  cfg.seeds_per_sequence = args.seeds;
  cfg.threads = args.threads;
  cfg.particle_counts = {4096};  // the paper's Fig 8 operating point

  std::fprintf(stderr,
               "fig8: running %zu sequences x %zu seeds x 4 variants at "
               "4096 particles...\n",
               cfg.sequences, cfg.seeds_per_sequence);
  const eval::SweepResult result = eval::run_accuracy_sweep(cfg);

  std::printf("\n=== Fig 8 — convergence probability vs time, 4096 particles ===\n\n");
  constexpr std::size_t kBins = 13;  // every 5 s up to 60 s
  Table table({"time_s", "fp32", "fp32_1tof", "fp32qm", "fp16qm"});
  std::vector<eval::ConvergenceCurve> curves;
  curves.reserve(cfg.variants.size());
  for (const eval::Variant v : cfg.variants) {
    curves.push_back(eval::cell_convergence_curve(result, v, 4096, kBins));
  }
  for (std::size_t b = 0; b < kBins; ++b) {
    auto row = table.row();
    row.cell(curves[0].time_s[b], 1);
    for (const auto& curve : curves) row.cell(curve.probability[b], 2);
    row.commit();
  }
  table.print(std::cout);

  // Summary: mean convergence time per variant.
  std::printf("\nmean time to convergence (converged runs):\n");
  const auto cells = eval::summarize(cfg, result);
  for (const auto& cell : cells) {
    std::printf("  %-10s %5.1f s\n", eval::to_string(cell.variant),
                cell.mean_convergence_s);
  }
  std::printf(
      "\npaper: quantized variants converge faster than fp32; 1tof is the\n"
      "       slowest. Shape target, not absolute.\n");

  if (args.csv_dir) {
    table.write_csv(std::filesystem::path(*args.csv_dir) /
                    "fig8_convergence.csv");
  }
  return 0;
}
