// Serving-latency bench: localization-as-a-service at four-digit session
// counts (the ROADMAP's "heavy traffic" north star, measured end to end).
//
// Generates campaign datasets (office + warehouse + loop corridor by
// default; the small maze in --smoke mode), exports them as replay
// sources, then opens N serve::SessionManager sessions sharing ONE
// immutable MapResources per world. Every session replays its source's
// frame stream through the bounded admission-controlled queue; the pump
// multiplexes all sessions over the thread pool with one task per busy
// session. Reported: p50/p99/p999 per-correction latency (per map and
// global), corrections/s, processed/dropped inputs — optionally written
// as BENCH_serving.json (the checked-in serving baseline artifact).
//
// --overload pushes each session's whole stream before a single pump, so
// drop-oldest admission control actually fires; the default paced mode
// pushes in windows smaller than the queue so nothing is lost.
//
// --trace dumps a hexfloat per-session correction trace; CI runs the
// bench twice and diffs the files, extending the cross-process
// determinism gates to the serving layer.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "eval/campaign.hpp"
#include "serve/session_manager.hpp"

using namespace tofmcl;

namespace {

struct Args {
  std::size_t sessions = 1024;
  std::size_t threads = 4;
  std::size_t shards = 1;      ///< Manager slot shards (1 = pre-shard path).
  std::size_t pump_batch = 16; ///< Busy sessions per pump task.
  std::size_t particles = 128;
  std::size_t min_particles = 128;  ///< Adaptive-mode shrink floor.
  std::size_t ticks = 40;        ///< Frame-batch inputs per session.
  std::size_t queue = 8;         ///< Session queue capacity.
  bool smoke = false;
  bool overload = false;
  bool adaptive = false;         ///< ESS/KLD adaptive particle counts.
  /// Idle deadline in pump generations; 0 disables the eviction tail.
  std::size_t evict_idle = 0;
  const char* json_path = nullptr;
  const char* trace_path = nullptr;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0;
    };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (is("--help") || is("-h")) {
      std::printf(
          "bench_serving_latency — multi-session serving latency/throughput\n"
          "  --sessions N   concurrent sessions (default 1024)\n"
          "  --threads N    serving pool size (default 4)\n"
          "  --shards N     manager slot shards (default 1; sharding is\n"
          "                 trace-invariant, it only removes contention)\n"
          "  --pump-batch N busy sessions drained per pump task, grouped\n"
          "                 per map for cache affinity (default 16)\n"
          "  --particles N  particles per session (default 128)\n"
          "  --ticks N      frame-batch inputs per session (default 40)\n"
          "  --queue N      per-session queue capacity (default 8)\n"
          "  --adaptive     KLD-adaptive particle counts (sessions shrink\n"
          "                 toward --min-particles once converged)\n"
          "  --min-particles N  adaptive shrink floor (default 128)\n"
          "  --evict-idle N after the paced replay, evict sessions idle\n"
          "                 for N pump generations (snapshot to the\n"
          "                 catalog store, SoA blocks back to the arena);\n"
          "                 0 = off\n"
          "  --overload     push whole streams before pumping (forces\n"
          "                 drop-oldest admission control to fire)\n"
          "  --smoke        small-maze CI configuration (256 sessions)\n"
          "  --json FILE    write the report as JSON (BENCH_serving.json)\n"
          "  --trace FILE   hexfloat per-session correction trace (CI\n"
          "                 diffs two invocations cross-process)\n");
      std::exit(0);
    } else if (is("--sessions")) {
      args.sessions = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--threads")) {
      args.threads = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--shards")) {
      args.shards = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--pump-batch")) {
      args.pump_batch = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--particles")) {
      args.particles = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--min-particles")) {
      args.min_particles = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--adaptive")) {
      args.adaptive = true;
    } else if (is("--evict-idle")) {
      args.evict_idle = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--ticks")) {
      args.ticks = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--queue")) {
      args.queue = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--overload")) {
      args.overload = true;
    } else if (is("--smoke")) {
      args.smoke = true;
      args.sessions = 256;
      args.threads = 2;
      args.particles = 128;
      args.ticks = 20;
    } else if (is("--json")) {
      args.json_path = value();
    } else if (is("--trace")) {
      args.trace_path = value();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (args.sessions == 0 || args.threads == 0 || args.particles == 0 ||
      args.ticks == 0 || args.queue == 0 || args.shards == 0 ||
      args.pump_batch == 0) {
    std::fprintf(stderr, "all sizes must be positive\n");
    std::exit(2);
  }
  return args;
}

/// One source's input stream: a SessionInput per frame-batch instant
/// (frames grouped by capture timestamp, odometry = the last sample at or
/// before the batch — equivalent to feeding every sample, since the
/// filter integrates odometry as a relative delta at correction time).
std::vector<serve::SessionInput> build_stream(const sim::Sequence& seq,
                                              std::size_t max_ticks) {
  std::vector<serve::SessionInput> stream;
  std::size_t frame_idx = 0;
  for (const sim::StateSample& odom : seq.odometry) {
    while (frame_idx < seq.frames.size() &&
           seq.frames[frame_idx].timestamp_s <= odom.t) {
      const double stamp = seq.frames[frame_idx].timestamp_s;
      serve::SessionInput input;
      input.t = stamp;
      input.odometry = odom.pose;
      while (frame_idx < seq.frames.size() &&
             seq.frames[frame_idx].timestamp_s == stamp) {
        input.frames.push_back(seq.frames[frame_idx]);
        ++frame_idx;
      }
      stream.push_back(std::move(input));
      if (stream.size() >= max_ticks) return stream;
    }
  }
  return stream;
}

void print_latency(const char* label, const serve::LatencySummary& s) {
  std::printf("%-14s n=%-8zu p50=%8.1f us  p99=%8.1f us  p999=%8.1f us  "
              "mean=%8.1f us  max=%8.1f us%s\n",
              label, s.count, s.p50 * 1e6, s.p99 * 1e6, s.p999 * 1e6,
              s.mean * 1e6, s.max * 1e6,
              s.low_sample ? "  [low-sample: tails clamped to max]" : "");
}

void json_latency(std::ofstream& os, const serve::LatencySummary& s) {
  os << "{\"count\": " << s.count << ", \"p50\": " << s.p50 * 1e6
     << ", \"p99\": " << s.p99 * 1e6 << ", \"p999\": " << s.p999 * 1e6
     << ", \"mean\": " << s.mean * 1e6 << ", \"max\": " << s.max * 1e6
     << ", \"low_sample\": " << (s.low_sample ? "true" : "false") << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  // Campaign battery whose datasets become the replay sources. Three
  // generated worlds in full mode (one map shared by a third of the
  // sessions each); the fast small maze in smoke mode. Two data seeds per
  // world so sessions on one map still replay distinct flights.
  eval::CampaignSpec spec;
  if (args.smoke) {
    spec.worlds = {{eval::CampaignWorld::kSmallMaze, 0},
                   {eval::CampaignWorld::kSmallMaze, 2}};
  } else {
    spec.worlds = {{eval::CampaignWorld::kOffice, 0, 3},
                   {eval::CampaignWorld::kWarehouse, 0, 2},
                   {eval::CampaignWorld::kLoopCorridor, 2, 1}};
  }
  spec.inits = {{eval::InitSpec::Mode::kTracking, 0.2, 0.2, 2}};
  spec.precisions = {core::Precision::kFp32Qm};
  spec.seeds_per_cell = 2;
  spec.mcl.num_particles = args.particles;
  spec.master_seed = 31;
  eval::Campaign campaign(std::move(spec));

  std::fprintf(stderr, "preparing replay sources (worlds + datasets)...\n");
  eval::CampaignOptions prep;
  prep.threads = args.threads;
  const std::vector<eval::ReplaySource> sources =
      campaign.export_replay_sources(prep);
  if (sources.empty()) {
    std::fprintf(stderr, "no replay sources\n");
    return 1;
  }

  // Per-source shared input streams (sessions copy per push).
  std::vector<std::vector<serve::SessionInput>> streams;
  streams.reserve(sources.size());
  std::size_t min_ticks = args.ticks;
  for (const eval::ReplaySource& src : sources) {
    streams.push_back(build_stream(src.legs.front(), args.ticks));
    min_ticks = std::min(min_ticks, streams.back().size());
  }
  if (min_ticks == 0) {
    std::fprintf(stderr, "a replay source produced no frame batches\n");
    return 1;
  }

  serve::ServeOptions serve_opts;
  serve_opts.threads = args.threads;
  serve_opts.shards = args.shards;
  serve_opts.pump_batch = args.pump_batch;
  serve::SessionManager mgr(serve_opts);
  for (const eval::ReplaySource& src : sources) {
    // Sources on one world share a map key (and the same resources
    // pointer); define each key once.
    if (!mgr.has_map(src.map_key)) mgr.define_map(src.map_key, src.maps);
  }

  std::fprintf(stderr, "opening %zu sessions over %zu sources...\n",
               args.sessions, sources.size());
  for (std::size_t id = 0; id < args.sessions; ++id) {
    const eval::ReplaySource& src = sources[id % sources.size()];
    serve::SessionOptions opts;
    opts.config.precision = core::Precision::kFp32Qm;
    opts.config.mcl = campaign.spec().mcl;
    opts.config.mcl.seed = eval::campaign_mix(campaign.spec().master_seed,
                                              0x5e55u + id);
    opts.config.mcl.adaptive_particles = args.adaptive;
    opts.config.mcl.min_particles = args.min_particles;
    opts.config.sensors = {src.front_tof, src.rear_tof};
    opts.queue_capacity = args.queue;
    opts.start = serve::StartPose{src.start_pose, 0.2, 0.2};
    mgr.open_session(src.map_key, opts);
  }

  // Serve loop. Paced mode pushes windows smaller than the queue and
  // pumps between windows (steady state, nothing dropped); overload mode
  // pushes each session's whole stream first, so only the last `queue`
  // inputs survive and the drop counters show the shed load.
  const std::size_t window =
      args.overload ? min_ticks : std::max<std::size_t>(1, args.queue / 2);
  std::size_t saturated = 0;
  std::size_t drop_signals = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t base = 0; base < min_ticks; base += window) {
    const std::size_t end = std::min(min_ticks, base + window);
    for (std::size_t id = 0; id < args.sessions; ++id) {
      const auto& stream = streams[id % sources.size()];
      for (std::size_t t = base; t < end; ++t) {
        switch (mgr.push(id, stream[t])) {
          case serve::Admission::kAccepted:
            break;
          case serve::Admission::kSaturated:
            ++saturated;
            break;
          case serve::Admission::kDroppedOldest:
            ++drop_signals;
            break;
        }
      }
    }
    mgr.pump();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (args.trace_path != nullptr) {
    // Hexfloat per-session correction trace: two invocations with the
    // same arguments must produce byte-identical files (covers dataset
    // generation, the shared-map build, admission control and the pooled
    // pump's per-session serialization). Dumped before the eviction tail
    // — an evicted session has no live trace to read.
    std::ofstream trace(args.trace_path);
    if (!trace) {
      std::fprintf(stderr, "cannot open trace file %s\n", args.trace_path);
      return 1;
    }
    trace << std::hexfloat;
    for (std::size_t id = 0; id < args.sessions; ++id) {
      const serve::Session& s = mgr.session(id);
      trace << id << ' ' << s.map_key() << ' ' << s.corrections() << ' '
            << s.dropped_inputs() << '\n';
      for (const serve::CorrectionRecord& r : s.trace()) {
        trace << r.t << ' ' << r.pose.position.x << ' ' << r.pose.position.y
              << ' ' << r.pose.yaw << '\n';
      }
    }
  }

  // Eviction tail: the replay is over, every session is idle. Let the
  // idle deadline lapse (empty pump generations), then sweep — each
  // evicted session serializes into the catalog's backing store and its
  // SoA blocks return to the per-map arena.
  if (args.evict_idle > 0) {
    for (std::size_t i = 0; i < args.evict_idle; ++i) mgr.pump();
    mgr.evict_idle(args.evict_idle);
  }

  const serve::ServeReport rep = mgr.report();
  std::printf("\n=== Serving latency — %zu sessions, %zu threads, "
              "%zu shards (batch %zu), %zu particles%s, %zu ticks%s ===\n\n",
              args.sessions, args.threads, args.shards, args.pump_batch,
              args.particles, args.adaptive ? " (adaptive)" : "", min_ticks,
              args.overload ? ", overload" : "");
  std::printf("wall %.2f s  (pump %.2f s)   corrections %zu   "
              "%.0f corrections/s\n",
              wall_s, rep.pump_seconds, rep.corrections,
              rep.corrections_per_second);
  std::printf("inputs: processed %zu, dropped %zu "
              "(backpressure signals: %zu saturated, %zu drop)\n",
              rep.processed_inputs, rep.dropped_inputs, saturated,
              drop_signals);

  // Per-idle-session particle memory at the end of the run — every
  // session is idle (queues drained), so the footprint an idle session
  // pins is live SoA blocks (both buffers at capacity) plus, for evicted
  // sessions, the snapshot blob parked in the catalog store. The fixed
  // baseline is what the same budget pins without adaptation or
  // eviction: 2 SoA buffers × 4 fp32 fields, always at full capacity.
  const std::size_t fixed_resident_bytes =
      args.sessions * 2 * args.particles * 4 * sizeof(float);
  const std::size_t idle_footprint_bytes =
      rep.resident_particle_bytes + rep.stashed_snapshot_bytes;
  const double per_session_bytes =
      static_cast<double>(idle_footprint_bytes) /
      static_cast<double>(args.sessions);
  const double reduction =
      idle_footprint_bytes > 0
          ? static_cast<double>(fixed_resident_bytes) /
                static_cast<double>(idle_footprint_bytes)
          : 0.0;
  std::printf("particles: %zu active (budget %zu/session)   "
              "%zu evicted sessions\n",
              rep.active_particles, args.particles, rep.evicted_sessions);
  std::printf("idle footprint: %.1f MiB resident + %.1f MiB stashed "
              "= %.0f B/session   %.1fx vs fixed\n\n",
              static_cast<double>(rep.resident_particle_bytes) / (1 << 20),
              static_cast<double>(rep.stashed_snapshot_bytes) / (1 << 20),
              per_session_bytes, reduction);

  print_latency("global", rep.latency);
  for (const serve::MapReport& m : rep.per_map) {
    print_latency(m.map.c_str(), m.latency);
  }

  if (rep.corrections == 0) {
    std::fprintf(stderr, "\nno corrections ran — bench is vacuous\n");
    return 1;
  }
  if (!args.overload && rep.dropped_inputs != 0) {
    std::fprintf(stderr,
                 "\npaced mode dropped %zu inputs (queue misconfigured?)\n",
                 rep.dropped_inputs);
    return 1;
  }

  if (args.json_path != nullptr) {
    std::ofstream js(args.json_path);
    if (!js) {
      std::fprintf(stderr, "cannot open %s\n", args.json_path);
      return 1;
    }
    js << "{\n"
       << "  \"bench\": \"serving_latency\",\n"
       << "  \"mode\": \"" << (args.smoke ? "smoke" : "full")
       << (args.overload ? "+overload" : "")
       << (args.adaptive ? "+adaptive" : "") << "\",\n"
       << "  \"sessions\": " << args.sessions << ",\n"
       << "  \"threads\": " << args.threads << ",\n"
       << "  \"shards\": " << args.shards << ",\n"
       << "  \"pump_batch\": " << args.pump_batch << ",\n"
       << "  \"particles\": " << args.particles << ",\n"
       << "  \"adaptive\": " << (args.adaptive ? "true" : "false") << ",\n"
       << "  \"min_particles\": " << args.min_particles << ",\n"
       << "  \"ticks\": " << min_ticks << ",\n"
       << "  \"queue_capacity\": " << args.queue << ",\n"
       << "  \"maps\": " << rep.per_map.size() << ",\n"
       << "  \"wall_seconds\": " << wall_s << ",\n"
       << "  \"pump_seconds\": " << rep.pump_seconds << ",\n"
       << "  \"corrections\": " << rep.corrections << ",\n"
       << "  \"corrections_per_second\": " << rep.corrections_per_second
       << ",\n"
       << "  \"processed_inputs\": " << rep.processed_inputs << ",\n"
       << "  \"dropped_inputs\": " << rep.dropped_inputs << ",\n"
       << "  \"active_particles\": " << rep.active_particles << ",\n"
       << "  \"live_sessions\": " << rep.live_sessions << ",\n"
       << "  \"evicted_sessions\": " << rep.evicted_sessions << ",\n"
       << "  \"resident_particle_bytes\": " << rep.resident_particle_bytes
       << ",\n"
       << "  \"stashed_snapshot_bytes\": " << rep.stashed_snapshot_bytes
       << ",\n"
       << "  \"fixed_resident_particle_bytes\": " << fixed_resident_bytes
       << ",\n"
       << "  \"idle_footprint_bytes_per_session\": " << per_session_bytes
       << ",\n"
       << "  \"idle_footprint_reduction_vs_fixed\": " << reduction << ",\n"
       << "  \"latency_us\": ";
    json_latency(js, rep.latency);
    js << ",\n  \"per_map\": [\n";
    for (std::size_t i = 0; i < rep.per_map.size(); ++i) {
      const serve::MapReport& m = rep.per_map[i];
      js << "    {\"map\": \"" << m.map << "\", \"sessions\": " << m.sessions
         << ", \"corrections\": " << m.corrections
         << ", \"dropped_inputs\": " << m.dropped_inputs
         << ", \"latency_us\": ";
      json_latency(js, m.latency);
      js << "}" << (i + 1 < rep.per_map.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
  }

  return 0;
}
