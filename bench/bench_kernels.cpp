// Google-benchmark microbenchmarks of the library's hot kernels on the
// host: EDT construction, raycasting, the four MCL phases per precision
// variant, beam extraction and fp16 conversion. These are supporting
// numbers (host CPU, not GAP9); the paper-reproduction timing lives in
// bench_table1/bench_fig10.

#include <benchmark/benchmark.h>

#include "core/particle_filter.hpp"
#include "map/rasterize.hpp"
#include "sensor/grid_raycaster.hpp"
#include "sim/maze.hpp"

namespace {

using namespace tofmcl;

const map::OccupancyGrid& evaluation_grid() {
  static const map::OccupancyGrid grid = [] {
    return sim::rasterize_environment(sim::evaluation_environment(), 0.05,
                                      0.01);
  }();
  return grid;
}

std::vector<sensor::Beam> synthetic_beams(std::size_t count) {
  std::vector<sensor::Beam> beams(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double az = -0.35 + 0.7 * static_cast<double>(i) /
                                  static_cast<double>(count);
    const double r = 0.8 + 0.05 * static_cast<double>(i % 7);
    beams[i].azimuth_body = az;
    beams[i].range_m = static_cast<float>(r);
    beams[i].endpoint_body = Vec2f{static_cast<float>(r * std::cos(az)),
                                   static_cast<float>(r * std::sin(az))};
  }
  return beams;
}

void BM_EdtBuild(benchmark::State& state) {
  const auto& grid = evaluation_grid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(map::edt_meters(grid, 1.5));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(grid.cell_count()));
}
BENCHMARK(BM_EdtBuild)->Unit(benchmark::kMillisecond);

void BM_WorldRaycast(benchmark::State& state) {
  const map::World world = sim::drone_maze();
  Rng rng(1);
  for (auto _ : state) {
    const Vec2 origin{rng.uniform(0.3, 3.7), rng.uniform(0.3, 3.7)};
    benchmark::DoNotOptimize(
        world.raycast(origin, rng.uniform(-kPi, kPi), 4.0));
  }
}
BENCHMARK(BM_WorldRaycast);

void BM_GridRaycast(benchmark::State& state) {
  const auto& grid = evaluation_grid();
  Rng rng(2);
  for (auto _ : state) {
    const Vec2 origin{rng.uniform(0.3, 3.7), rng.uniform(0.3, 3.7)};
    benchmark::DoNotOptimize(
        sensor::raycast_grid(grid, origin, rng.uniform(-kPi, kPi), 4.0));
  }
}
BENCHMARK(BM_GridRaycast);

template <typename Traits>
void phase_bench(benchmark::State& state, int phase) {
  const auto& grid = evaluation_grid();
  const typename Traits::Map dmap(grid, 1.5);
  core::MclConfig cfg;
  cfg.num_particles = static_cast<std::size_t>(state.range(0));
  core::SerialExecutor exec;
  core::ParticleFilter<Traits> pf(dmap, cfg, exec);
  pf.init_uniform(grid.free_cell_centers(), 0.025);
  const auto beams = synthetic_beams(16);
  const Pose2 delta{0.03, 0.0, 0.01};

  for (auto _ : state) {
    switch (phase) {
      case 0:
        pf.observation_update(beams);
        break;
      case 1:
        pf.motion_update(delta);
        break;
      case 2:
        pf.observation_update(beams);  // keep weights non-degenerate
        pf.resample();
        break;
      default:
        benchmark::DoNotOptimize(pf.compute_pose());
        break;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_ObservationFp32(benchmark::State& s) {
  phase_bench<core::Fp32Traits>(s, 0);
}
void BM_ObservationQm(benchmark::State& s) {
  phase_bench<core::Fp32QmTraits>(s, 0);
}
void BM_ObservationFp16(benchmark::State& s) {
  phase_bench<core::Fp16QmTraits>(s, 0);
}
void BM_Motion(benchmark::State& s) { phase_bench<core::Fp32Traits>(s, 1); }
void BM_ObservationPlusResample(benchmark::State& s) {
  phase_bench<core::Fp32Traits>(s, 2);
}
void BM_PoseCompute(benchmark::State& s) {
  phase_bench<core::Fp32Traits>(s, 3);
}
BENCHMARK(BM_ObservationFp32)->Arg(1024)->Arg(16384);
BENCHMARK(BM_ObservationQm)->Arg(1024)->Arg(16384);
BENCHMARK(BM_ObservationFp16)->Arg(1024)->Arg(16384);
BENCHMARK(BM_Motion)->Arg(1024)->Arg(16384);
BENCHMARK(BM_ObservationPlusResample)->Arg(1024)->Arg(16384);
BENCHMARK(BM_PoseCompute)->Arg(1024)->Arg(16384);

void BM_BeamExtraction(benchmark::State& state) {
  sensor::TofSensorConfig cfg;
  const sensor::MultizoneToF tof(cfg);
  const map::World maze = sim::drone_maze();
  const sensor::TofFrame frame =
      tof.measure_ideal(maze, {1.5, 0.6, 0.3}, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sensor::extract_beams(frame, cfg));
  }
}
BENCHMARK(BM_BeamExtraction);

void BM_HalfRoundTrip(benchmark::State& state) {
  float x = 0.123f;
  for (auto _ : state) {
    const Half h(x);
    x = static_cast<float>(h) + 1e-6f;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_HalfRoundTrip);

void BM_LikelihoodLutVsExp(benchmark::State& state) {
  // The quantized model's LUT path vs direct expf — the paper's speed
  // rationale for the quantized map.
  const auto& grid = evaluation_grid();
  const map::QuantizedDistanceMap qmap(grid, 1.5);
  const core::BeamModelParams params{0.1f, 0.9f, 0.1f};
  const core::LutObservationModel lut(qmap, params);
  const map::DistanceMap fmap(grid, 1.5);
  const core::DirectObservationModel direct(fmap, params);
  Rng rng(3);
  float acc = 0.0f;
  const bool use_lut = state.range(0) != 0;
  for (auto _ : state) {
    const float x = static_cast<float>(rng.uniform(0.0, 10.0));
    const float y = static_cast<float>(rng.uniform(0.0, 5.0));
    acc += use_lut ? lut.factor(x, y) : direct.factor(x, y);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_LikelihoodLutVsExp)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
