// Kernel-backend benchmark: observation-sweep throughput per KernelBackend
// (scalar reference vs the AVX2/NEON SIMD paths of src/core/kernels/) and
// per weight representation (fp32, fp32-compute/fp16-store, native fp16).
//
// Self-contained (no Google Benchmark): each variant times repeated
// observation_update() calls over the evaluation grid, resetting the
// particle cloud between iterations OUTSIDE the timed region so weight
// underflow (and denormal arithmetic) cannot skew the numbers. Iteration
// counts auto-calibrate to a minimum timed duration.
//
// The committed artifact is BENCH_kernels.json (--json). Threshold gates
// (exit code 1 on violation, so CI fails loudly instead of silently
// regressing):
//   * AVX2 plain-path throughput >= 2.0x scalar (when AVX2 is supported).
//   * Every SIMD variant >= 1.0x its scalar counterpart.
//
// The report ends with a projected GAP9 impact: the observation phase's
// calibrated per-particle L1 compute cost is divided by the measured
// host speedup (the L2-traffic term and the fixed fork-join costs are
// deliberately left untouched — vectorization buys arithmetic, not
// memory), then the full update latency and energy are re-evaluated with
// the platform timing/power models.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/particle_filter.hpp"
#include "map/rasterize.hpp"
#include "platform/gap9_power.hpp"
#include "platform/gap9_timing.hpp"
#include "sim/maze.hpp"

using namespace tofmcl;
namespace kernels = tofmcl::core::kernels;

namespace {

struct Args {
  std::size_t particles = 4096;
  std::size_t beams = 16;
  double min_seconds = 0.4;  ///< Timed duration floor per variant.
  bool smoke = false;
  const char* json_path = nullptr;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0;
    };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (is("--help") || is("-h")) {
      std::printf(
          "bench_kernels — observation-sweep throughput per kernel backend\n"
          "  --particles N   particles per filter (default 4096)\n"
          "  --beams N       beams per observation update (default 16)\n"
          "  --min-seconds S timed duration floor per variant (default 0.4)\n"
          "  --smoke         fast CI mode (fewer particles, shorter floor)\n"
          "  --json FILE     write the report as JSON (BENCH_kernels.json)\n"
          "  --help          this message\n");
      std::exit(0);
    } else if (is("--particles")) {
      args.particles = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--beams")) {
      args.beams = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--min-seconds")) {
      args.min_seconds = std::atof(value());
    } else if (is("--smoke")) {
      args.smoke = true;
      args.particles = 1024;
      args.min_seconds = 0.05;
    } else if (is("--json")) {
      args.json_path = value();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

const map::OccupancyGrid& evaluation_grid() {
  static const map::OccupancyGrid grid = [] {
    return sim::rasterize_environment(sim::evaluation_environment(), 0.05,
                                      0.01);
  }();
  return grid;
}

std::vector<sensor::Beam> synthetic_beams(std::size_t count) {
  std::vector<sensor::Beam> beams(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double az =
        -0.35 + 0.7 * static_cast<double>(i) / static_cast<double>(count);
    const double r = 0.8 + 0.05 * static_cast<double>(i % 7);
    beams[i].azimuth_body = az;
    beams[i].range_m = static_cast<float>(r);
    beams[i].endpoint_body = Vec2f{static_cast<float>(r * std::cos(az)),
                                   static_cast<float>(r * std::sin(az))};
  }
  return beams;
}

/// One measured configuration.
struct Entry {
  std::string variant;   ///< fp32qm / fp32qm_mixture / fp16qm.
  std::string weights;   ///< fp32 / fp16-store / fp16.
  std::string backend;   ///< scalar / avx2 / neon.
  double seconds = 0.0;
  std::size_t iterations = 0;
  double particles_beams_per_s = 0.0;
  double speedup_vs_scalar = 1.0;
};

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Times observation_update() on a fresh filter until `min_seconds` of
/// timed work accumulate. The cloud is re-initialized before every timed
/// call (outside the timer) so each update sees identical, well-scaled
/// weights.
template <typename Traits>
Entry run_variant(const Args& args, kernels::KernelBackend backend,
                  core::WeightPrecision wp, bool mixture) {
  const auto& grid = evaluation_grid();
  const typename Traits::Map dmap(grid, 1.5);
  core::MclConfig cfg;
  cfg.num_particles = args.particles;
  cfg.weight_precision = wp;
  if (mixture) {
    cfg.z_short = 0.4;
    cfg.lambda_short = 1.3;
  }
  core::SerialExecutor exec;
  core::ParticleFilter<Traits> pf(dmap, cfg, exec);
  pf.set_kernel_backend(backend);
  const auto beams = synthetic_beams(args.beams);
  const auto free_cells = grid.free_cell_centers();

  Entry e;
  e.backend = kernels::to_string(backend);
  // Calibrate the batch size on a short probe, then run timed batches
  // until the duration floor is met.
  std::size_t iters = 0;
  double timed = 0.0;
  while (timed < args.min_seconds || iters < 4) {
    pf.init_uniform(free_cells, 0.025);
    const double t0 = now_seconds();
    pf.observation_update(beams);
    timed += now_seconds() - t0;
    ++iters;
  }
  e.seconds = timed;
  e.iterations = iters;
  e.particles_beams_per_s = static_cast<double>(iters) *
                            static_cast<double>(args.particles) *
                            static_cast<double>(args.beams) / timed;
  return e;
}

void json_entry(std::ofstream& os, const Entry& e, bool last) {
  os << "    {\n"
     << "      \"variant\": \"" << e.variant << "\",\n"
     << "      \"weights\": \"" << e.weights << "\",\n"
     << "      \"backend\": \"" << e.backend << "\",\n"
     << "      \"seconds\": " << e.seconds << ",\n"
     << "      \"iterations\": " << e.iterations << ",\n"
     << "      \"particles_beams_per_s\": " << e.particles_beams_per_s
     << ",\n"
     << "      \"speedup_vs_scalar\": " << e.speedup_vs_scalar << "\n"
     << "    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  std::vector<kernels::KernelBackend> backends{
      kernels::KernelBackend::kScalar};
  for (const auto b :
       {kernels::KernelBackend::kAvx2, kernels::KernelBackend::kNeon}) {
    if (kernels::backend_supported(b)) backends.push_back(b);
  }

  // Variant sweep. The scalar entry of each variant is the reference its
  // SIMD rows are normalized against.
  struct Variant {
    const char* name;
    const char* weights;
    core::WeightPrecision wp;
    bool mixture;
    bool fp16_traits;
  };
  const Variant variants[] = {
      {"fp32qm", "fp32", core::WeightPrecision::kNative, false, false},
      {"fp32qm_mixture", "fp32", core::WeightPrecision::kNative, true, false},
      {"fp32qm", "fp16-store", core::WeightPrecision::kFp16, false, false},
      {"fp16qm", "fp16", core::WeightPrecision::kNative, false, true},
  };

  std::vector<Entry> entries;
  double avx2_plain_speedup = 0.0;
  bool gates_pass = true;
  std::vector<std::string> gate_failures;

  for (const Variant& v : variants) {
    double scalar_rate = 0.0;
    for (const auto backend : backends) {
      Entry e = v.fp16_traits
                    ? run_variant<core::Fp16QmTraits>(args, backend, v.wp,
                                                      v.mixture)
                    : run_variant<core::Fp32QmTraits>(args, backend, v.wp,
                                                      v.mixture);
      e.variant = v.name;
      e.weights = v.weights;
      if (backend == kernels::KernelBackend::kScalar) {
        scalar_rate = e.particles_beams_per_s;
      } else {
        e.speedup_vs_scalar = e.particles_beams_per_s / scalar_rate;
        if (std::strcmp(v.name, "fp32qm") == 0 &&
            std::strcmp(v.weights, "fp32") == 0 &&
            backend == kernels::KernelBackend::kAvx2) {
          avx2_plain_speedup = e.speedup_vs_scalar;
        }
        if (e.speedup_vs_scalar < 1.0) {
          gates_pass = false;
          gate_failures.push_back(std::string(v.name) + "/" + v.weights +
                                  "/" + e.backend + " slower than scalar");
        }
      }
      std::printf("%-16s %-10s %-7s %12.3e particles*beams/s  (%5.2fx)\n",
                  v.name, v.weights, e.backend.c_str(),
                  e.particles_beams_per_s, e.speedup_vs_scalar);
      entries.push_back(std::move(e));
    }
  }

  constexpr double kAvx2MinSpeedup = 2.0;
  const bool avx2_supported =
      kernels::backend_supported(kernels::KernelBackend::kAvx2);
  if (avx2_supported && avx2_plain_speedup < kAvx2MinSpeedup) {
    gates_pass = false;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "avx2 fp32qm speedup %.2fx below the %.1fx gate",
                  avx2_plain_speedup, kAvx2MinSpeedup);
    gate_failures.emplace_back(buf);
  }

  // --- GAP9 projection -------------------------------------------------
  // The measured best-backend speedup is applied to the observation
  // phase's per-particle L1 compute cost; everything else (fixed costs,
  // L2 traffic, the other three phases, the 40 us update constant) stays
  // calibrated. This mirrors what GAP9's own 8-lane fp16 SIMD would buy:
  // arithmetic throughput, not memory bandwidth.
  const platform::Gap9TimingModel baseline =
      platform::calibrated_timing_model();
  platform::Gap9TimingModel projected = baseline;
  const double obs_speedup = std::max(avx2_plain_speedup, 1.0);
  projected.observation.per_particle_l1 /= obs_speedup;
  const std::size_t gap9_particles = args.particles;
  const std::size_t bytes_per_particle = 16;  // fp16 particle layout.
  const platform::Placement placement = platform::placement_for(
      gap9_particles * bytes_per_particle, baseline.spec);
  const double freq = baseline.spec.max_frequency_mhz;
  const double base_update_us =
      baseline.update_ns(gap9_particles, 8, placement, freq) / 1e3;
  const double proj_update_us =
      projected.update_ns(gap9_particles, 8, placement, freq) / 1e3;
  const platform::Gap9PowerModel power;
  const double base_energy_uj =
      power.update_energy_uj(baseline, gap9_particles, 8, placement, freq);
  const double proj_energy_uj =
      power.update_energy_uj(projected, gap9_particles, 8, placement, freq);
  std::printf(
      "gap9 projection (%zu particles, 8 cores, %s, %.0f MHz):\n"
      "  update: %.1f us -> %.1f us   energy: %.2f uJ -> %.2f uJ\n",
      gap9_particles, placement == platform::Placement::kL1 ? "L1" : "L2",
      freq, base_update_us, proj_update_us, base_energy_uj, proj_energy_uj);

  for (const std::string& f : gate_failures) {
    std::fprintf(stderr, "GATE FAILED: %s\n", f.c_str());
  }
  if (gates_pass) std::printf("all gates passed\n");

  if (args.json_path != nullptr) {
    std::ofstream js(args.json_path);
    if (!js) {
      std::fprintf(stderr, "cannot open %s\n", args.json_path);
      return 2;
    }
    js << "{\n"
       << "  \"bench\": \"kernels\",\n"
       << "  \"smoke\": " << (args.smoke ? "true" : "false") << ",\n"
       << "  \"particles\": " << args.particles << ",\n"
       << "  \"beams\": " << args.beams << ",\n"
       << "  \"backends\": [";
    for (std::size_t i = 0; i < backends.size(); ++i) {
      js << (i ? ", " : "") << '"' << kernels::to_string(backends[i]) << '"';
    }
    js << "],\n  \"entries\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      json_entry(js, entries[i], i + 1 == entries.size());
    }
    js << "  ],\n"
       << "  \"gates\": {\n"
       << "    \"avx2_min_speedup\": " << kAvx2MinSpeedup << ",\n"
       << "    \"avx2_fp32qm_speedup\": " << avx2_plain_speedup << ",\n"
       << "    \"simd_not_slower_than_scalar\": true,\n"
       << "    \"pass\": " << (gates_pass ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"gap9_projection\": {\n"
       << "    \"particles\": " << gap9_particles << ",\n"
       << "    \"cores\": 8,\n"
       << "    \"placement\": \""
       << (placement == platform::Placement::kL1 ? "L1" : "L2") << "\",\n"
       << "    \"frequency_mhz\": " << freq << ",\n"
       << "    \"observation_compute_speedup\": " << obs_speedup << ",\n"
       << "    \"baseline_update_us\": " << base_update_us << ",\n"
       << "    \"projected_update_us\": " << proj_update_us << ",\n"
       << "    \"baseline_update_energy_uj\": " << base_energy_uj << ",\n"
       << "    \"projected_update_energy_uj\": " << proj_energy_uj << "\n"
       << "  }\n"
       << "}\n";
    std::printf("wrote %s\n", args.json_path);
  }
  return gates_pass ? 0 : 1;
}
