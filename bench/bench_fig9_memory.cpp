// Reproduces paper Fig 9: the trade-off between particle count and map
// size (0.05 m/cell) for L1 and L2 memory, comparing the full-precision
// representation (5 B/cell, 32 B/particle) against the quantized/FP16 one
// (2 B/cell, 16 B/particle).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "platform/memory_model.hpp"

using namespace tofmcl;
using platform::max_particles;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(
      argc, argv, "Fig 9 — particle count vs map size for L1/L2");

  const platform::Gap9Spec spec;
  constexpr double kRes = 0.05;

  std::printf("=== Fig 9 — max particles vs map size (0.05 m/cell) ===\n");
  std::printf("L1 = %zu kB, L2 = %zu kB\n\n", spec.l1_bytes / 1024,
              spec.l2_bytes / 1024);

  Table table({"map_m2", "fp32_L1", "fp16qm_L1", "fp32_L2", "fp16qm_L2"});
  // The paper's x-axis spans 2^1 .. 2^11 m².
  for (int e = 1; e <= 11; ++e) {
    const double area = std::pow(2.0, e);
    auto row = table.row();
    row.cell(area, 0);
    row.cell(max_particles(area, kRes, core::Precision::kFp32, spec.l1_bytes));
    row.cell(
        max_particles(area, kRes, core::Precision::kFp16Qm, spec.l1_bytes));
    row.cell(max_particles(area, kRes, core::Precision::kFp32, spec.l2_bytes));
    row.cell(
        max_particles(area, kRes, core::Precision::kFp16Qm, spec.l2_bytes));
    row.commit();
  }
  table.print(std::cout);

  // The paper's headline operating points.
  std::printf("\nreference points:\n");
  std::printf(
      "  evaluation map (31.2 m^2), fp32   in L1: %zu particles\n",
      max_particles(31.2, kRes, core::Precision::kFp32, spec.l1_bytes));
  std::printf(
      "  evaluation map (31.2 m^2), fp16qm in L1: %zu particles\n",
      max_particles(31.2, kRes, core::Precision::kFp16Qm, spec.l1_bytes));
  std::printf(
      "  evaluation map (31.2 m^2), fp32   in L2: %zu particles\n",
      max_particles(31.2, kRes, core::Precision::kFp32, spec.l2_bytes));
  std::printf(
      "\npaper: quantization + fp16 roughly doubles-to-quadruples capacity\n"
      "       at every map size; 16384 particles only fit in L2.\n");

  if (args.csv_dir) {
    table.write_csv(std::filesystem::path(*args.csv_dir) /
                    "fig9_memory.csv");
  }
  return 0;
}
