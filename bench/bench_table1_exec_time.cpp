// Reproduces paper Table I: execution time per particle (ns) of the four
// MCL phases on 1 and 8 GAP9 cores at 400 MHz, for particle counts
// 64..16384 (counts >= 4096 in L2), from the calibrated timing model.
// The published measurements are printed alongside for comparison.

#include <cstdio>
#include <iostream>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "platform/gap9_timing.hpp"

using namespace tofmcl;
using namespace tofmcl::platform;

namespace {

struct PaperRow {
  std::size_t n;
  double obs[2], mot[2], res[2], pose[2];  // {1 core, 8 cores}
};
constexpr PaperRow kPaper[] = {
    {64, {8531, 1412}, {2828, 500}, {313, 250}, {750, 234}},
    {256, {8484, 1313}, {2715, 391}, {191, 121}, {633, 117}},
    {1024, {8518, 1283}, {2689, 357}, {161, 84}, {604, 86}},
    {4096, {8649, 1294}, {3002, 390}, {558, 108}, {777, 101}},
    {16384, {8704, 1295}, {2985, 386}, {556, 104}, {775, 99}},
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(
      argc, argv, "Table I — per-particle phase times on GAP9");

  const Gap9TimingModel model = calibrated_timing_model();
  constexpr double kF = 400.0;

  std::printf(
      "=== Table I — execution time per particle, 1 core / 8 cores, ns, "
      "GAP9@400MHz ===\n"
      "(model vs the paper's published measurement)\n\n");

  Table table({"particles", "observation", "motion", "resampling",
               "pose_comp", "paper_obs", "paper_mot", "paper_res",
               "paper_pose"});
  for (const PaperRow& row : kPaper) {
    const Placement placement =
        row.n >= 4096 ? Placement::kL2 : Placement::kL1;
    const auto cell = [&](Phase p) {
      const double t1 =
          model.phase_ns_per_particle(p, row.n, 1, placement, kF);
      const double t8 =
          model.phase_ns_per_particle(p, row.n, 8, placement, kF);
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.0f/%.0f", t1, t8);
      return std::string(buf);
    };
    const auto paper = [&](const double v[2]) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.0f/%.0f", v[0], v[1]);
      return std::string(buf);
    };
    table.row()
        .cell(row.n)
        .cell(cell(Phase::kObservation))
        .cell(cell(Phase::kMotion))
        .cell(cell(Phase::kResampling))
        .cell(cell(Phase::kPoseComputation))
        .cell(paper(row.obs))
        .cell(paper(row.mot))
        .cell(paper(row.res))
        .cell(paper(row.pose))
        .commit();
  }
  table.print(std::cout);

  std::printf("\nfull update latency (8 cores, 400 MHz, incl. 40 us "
              "overhead):\n");
  for (const PaperRow& row : kPaper) {
    const Placement placement =
        row.n >= 4096 ? Placement::kL2 : Placement::kL1;
    std::printf("  N=%6zu: %7.3f ms%s\n", row.n,
                model.update_ns(row.n, 8, placement, kF) * 1e-6,
                placement == Placement::kL2 ? "  (particles in L2)" : "");
  }
  std::printf(
      "\npaper: 0.2–30 ms depending on particle count (Section IV-D);\n"
      "       Table II lists 1.901 ms at 1024 and 30.880 ms at 16384.\n");

  if (args.csv_dir) {
    table.write_csv(std::filesystem::path(*args.csv_dir) /
                    "table1_exec_time.csv");
  }
  return 0;
}
