// Reproduces paper Fig 7: localization success rate (%) versus particle
// count for fp32 / fp32 1tof / fp32qm / fp16qm.
//
// Paper reference: above 95 % success with sufficient particles for the
// two-sensor variants; significantly lower with a single ToF sensor.

#include <cstdio>
#include <iostream>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "eval/experiment.hpp"

using namespace tofmcl;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(
      argc, argv, "Fig 7 — success rate vs particle number");

  eval::SweepConfig cfg;
  cfg.sequences = args.sequences;
  cfg.seeds_per_sequence = args.seeds;
  cfg.threads = args.threads;
  cfg.batched_runs = args.batched_runs;

  std::fprintf(stderr,
               "fig7: running %zu sequences x %zu seeds x 4 variants x %zu "
               "particle counts (%s campaign runs)...\n",
               cfg.sequences, cfg.seeds_per_sequence,
               cfg.particle_counts.size(),
               cfg.batched_runs ? "batched" : "serial");
  const eval::SweepResult result = eval::run_accuracy_sweep(cfg);
  const auto cells = eval::summarize(cfg, result);

  std::printf("\n=== Fig 7 — success rate (%%) vs particle number ===\n");
  std::printf("(converged with ATE <= 1 m until sequence end)\n\n");
  Table table({"particles", "fp32", "fp32_1tof", "fp32qm", "fp16qm"});
  for (const std::size_t n : cfg.particle_counts) {
    auto row = table.row();
    row.cell(n);
    for (const eval::Variant v : cfg.variants) {
      for (const auto& cell : cells) {
        if (cell.variant == v && cell.particles == n) {
          row.cell(100.0 * cell.success_rate, 1);
        }
      }
    }
    row.commit();
  }
  table.print(std::cout);
  std::printf(
      "\npaper: two-sensor variants exceed 95%% with sufficient particles\n"
      "       and climb with N; fp32 1tof significantly lower.\n");

  if (args.csv_dir) {
    table.write_csv(std::filesystem::path(*args.csv_dir) /
                    "fig7_success_rate.csv");
  }
  return 0;
}
