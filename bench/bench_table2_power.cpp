// Reproduces paper Table II: average power consumption and execution time
// of the MCL update at the paper's four operating points, plus the system
// power budget of Section IV-E (sensing + processing below 7 % of the
// drone's total power).

#include <cstdio>
#include <iostream>

#include "bench_args.hpp"
#include "common/table.hpp"
#include "platform/gap9_power.hpp"

using namespace tofmcl;
using namespace tofmcl::platform;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(
      argc, argv, "Table II — power at the paper's operating points");

  const Gap9TimingModel timing = calibrated_timing_model();
  const Gap9PowerModel power;

  struct OperatingPoint {
    const char* label;
    double f_mhz;
    std::size_t particles;
    Placement placement;
    double paper_mw;
    double paper_ms;
  };
  const OperatingPoint points[] = {
      {"GAP9@400MHz/1,024 particles", 400.0, 1024, Placement::kL1, 61, 1.901},
      {"GAP9@12MHz/1,024 particles", 12.0, 1024, Placement::kL1, 13, 59.898},
      {"GAP9@400MHz/16,384 particles", 400.0, 16384, Placement::kL2, 61,
       30.880},
      {"GAP9@200MHz/16,384 particles", 200.0, 16384, Placement::kL2, 38,
       61.524},
  };

  std::printf("=== Table II — average power and execution time ===\n\n");
  Table table({"operating point", "power_mW", "exec_ms", "energy_uJ",
               "paper_mW", "paper_ms"});
  for (const OperatingPoint& op : points) {
    const double p = power.active_power_mw(op.f_mhz);
    const double t =
        timing.update_ns(op.particles, 8, op.placement, op.f_mhz) * 1e-6;
    table.row()
        .cell(op.label)
        .cell(p, 1)
        .cell(t, 3)
        .cell(power.update_energy_uj(timing, op.particles, 8, op.placement,
                                     op.f_mhz),
              1)
        .cell(op.paper_mw, 0)
        .cell(op.paper_ms, 3)
        .commit();
  }
  table.print(std::cout);

  // Minimum real-time frequencies (the paper picks 12 and 200 MHz as the
  // lowest points that stay under the 67 ms budget).
  std::printf("\nminimum real-time frequency (67 ms budget, 8 cores):\n");
  std::printf("  1,024 particles : %5.1f MHz (paper uses 12 MHz)\n",
              timing.min_realtime_frequency_mhz(1024, 8, Placement::kL1));
  std::printf("  16,384 particles: %5.1f MHz (paper uses 200 MHz)\n",
              timing.min_realtime_frequency_mhz(16384, 8, Placement::kL2));

  // System budget (Section IV-E).
  const SystemPowerBudget budget;
  std::printf("\nsystem power budget:\n");
  Table sys({"GAP9 point", "sensors_mW", "electronics_mW", "gap9_mW",
             "sensing+proc_mW", "share_of_drone"});
  for (const OperatingPoint& op : points) {
    const double gap9 = power.active_power_mw(op.f_mhz);
    char share[16];
    std::snprintf(share, sizeof share, "%.1f%%",
                  100.0 * budget.overhead_fraction(gap9));
    sys.row()
        .cell(op.label)
        .cell(budget.tof_sensor_mw * 2.0, 0)
        .cell(budget.electronics_mw, 0)
        .cell(gap9, 1)
        .cell(budget.sensing_processing_mw(gap9), 1)
        .cell(std::string(share))
        .commit();
  }
  sys.print(std::cout);
  std::printf(
      "\npaper: 640 + 280 + 61 = 981 mW ≈ 7%% of overall drone power;\n"
      "       3–7%% across operating points (claim iv).\n");

  if (args.csv_dir) {
    table.write_csv(std::filesystem::path(*args.csv_dir) /
                    "table2_power.csv");
  }
  return 0;
}
