#pragma once
/// \file bench_args.hpp
/// \brief Shared command-line handling for the paper-reproduction benches.
///
/// Every accuracy bench accepts:
///   --full            paper-scale sweep (6 sequences × 6 seeds)
///   --sequences N     number of standard flight plans (1..6)
///   --seeds N         noise seeds per sequence
///   --threads N       worker threads (0 = hardware concurrency)
///   --serial-runs     run-at-a-time reference schedule instead of the
///                     batched campaign engine (bit-identical results)
///   --csv DIR         also write the series as CSV into DIR
///   --help            usage

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

namespace tofmcl::bench {

struct BenchArgs {
  std::size_t sequences = 6;
  std::size_t seeds = 2;
  std::size_t threads = 0;
  bool batched_runs = true;
  std::optional<std::string> csv_dir;
};

inline void print_usage(const char* name, const char* description) {
  std::printf("%s — %s\n", name, description);
  std::printf(
      "options:\n"
      "  --full          paper-scale sweep (6 sequences x 6 seeds)\n"
      "  --sequences N   standard flight plans to use (1..6, default 6)\n"
      "  --seeds N       noise seeds per sequence (default 2)\n"
      "  --threads N     worker threads (default: hardware)\n"
      "  --serial-runs   one run at a time instead of batched campaign\n"
      "  --csv DIR       write result series as CSV into DIR\n"
      "  --help          this message\n");
}

inline BenchArgs parse_args(int argc, char** argv, const char* description) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0;
    };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (is("--help") || is("-h")) {
      print_usage(argv[0], description);
      std::exit(0);
    } else if (is("--full")) {
      args.sequences = 6;
      args.seeds = 6;
    } else if (is("--sequences")) {
      args.sequences = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--seeds")) {
      args.seeds = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--threads")) {
      args.threads = static_cast<std::size_t>(std::atoi(value()));
    } else if (is("--serial-runs")) {
      args.batched_runs = false;
    } else if (is("--csv")) {
      args.csv_dir = value();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      print_usage(argv[0], description);
      std::exit(2);
    }
  }
  return args;
}

}  // namespace tofmcl::bench
