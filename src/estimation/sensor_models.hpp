#pragma once
/// \file sensor_models.hpp
/// \brief Proprioceptive sensor models: gyroscope and optical flow.
///
/// The Crazyflie estimates its state from an IMU and the Flow-deck v2
/// (PMW3901 optical flow + VL53L1x downward 1D ToF). For localization the
/// relevant outputs are the body-frame velocity (flow, scaled by height)
/// and the yaw rate (gyro). Both drift-relevant error mechanisms are
/// modeled: white noise, constant-plus-random-walk gyro bias, and flow
/// scale error. These drive the EKF that produces the drifting odometry
/// MCL must correct — the harder the drift, the more the map correction
/// matters, so these parameters shape the whole evaluation.

#include "common/geometry.hpp"
#include "common/rng.hpp"

namespace tofmcl::estimation {

/// Z-axis gyroscope model (yaw rate sensing).
struct GyroConfig {
  double noise_stddev_rad_s = 0.005;      ///< White noise per sample.
  double initial_bias_rad_s = 0.01;       ///< σ of the constant bias draw.
  double bias_walk_rad_s2 = 0.0005;       ///< Bias random walk intensity.
};

class Gyro {
 public:
  Gyro(const GyroConfig& config, Rng& rng)
      : config_(config), bias_(rng.gaussian(0.0, config.initial_bias_rad_s)) {}

  /// Sample a measurement of the true yaw rate over a dt-long interval.
  double measure(double true_yaw_rate, double dt, Rng& rng) {
    bias_ += rng.gaussian(0.0, config_.bias_walk_rad_s2 * std::sqrt(dt));
    return true_yaw_rate + bias_ +
           rng.gaussian(0.0, config_.noise_stddev_rad_s);
  }

  double bias() const { return bias_; }

 private:
  GyroConfig config_;
  double bias_;
};

/// Optical-flow velocity sensing (PMW3901 + height from the 1D ToF).
struct FlowConfig {
  double noise_stddev_m_s = 0.02;  ///< White noise on each velocity axis.
  /// σ of the multiplicative scale error (height/focal miscalibration):
  /// measured = scale · true, scale ~ N(1, σ).
  double scale_error_stddev = 0.02;
  /// Probability a flow update is dropped (low-texture floor).
  double p_dropout = 0.02;
};

/// One flow measurement: body-frame velocity, or invalid on dropout.
struct FlowMeasurement {
  Vec2 velocity_body{};
  bool valid = false;
};

class FlowSensor {
 public:
  FlowSensor(const FlowConfig& config, Rng& rng)
      : config_(config),
        scale_(1.0 + rng.gaussian(0.0, config.scale_error_stddev)) {}

  FlowMeasurement measure(Vec2 true_velocity_body, Rng& rng) const {
    if (rng.bernoulli(config_.p_dropout)) return {};
    return {{scale_ * true_velocity_body.x +
                 rng.gaussian(0.0, config_.noise_stddev_m_s),
             scale_ * true_velocity_body.y +
                 rng.gaussian(0.0, config_.noise_stddev_m_s)},
            true};
  }

  double scale() const { return scale_; }

 private:
  FlowConfig config_;
  double scale_;
};

}  // namespace tofmcl::estimation
