#pragma once
/// \file ekf.hpp
/// \brief Crazyflie-style extended Kalman filter for on-board odometry.
///
/// Mirrors the estimator structure of the Crazyflie firmware at the level
/// that matters for localization: gyro-driven yaw propagation, body-frame
/// velocity states corrected by optical flow, and dead-reckoned position.
/// Without absolute measurements the position/yaw drift unboundedly — the
/// output is precisely the odometry input u_t that the paper's MCL corrects
/// against the map.
///
/// State: x = [px, py, θ, vbx, vby]ᵀ (world position, yaw, body velocity).

#include "common/geometry.hpp"
#include "common/matrix.hpp"

namespace tofmcl::estimation {

struct EkfConfig {
  /// Process noise densities (per √s).
  double sigma_vel = 0.25;      ///< Body velocity random walk (m/s/√s).
  double sigma_yaw = 0.01;      ///< Yaw process noise on top of gyro (rad/√s).
  double sigma_pos = 0.0;       ///< Extra position process noise (m/√s).
  /// Measurement noise of one flow velocity axis (m/s).
  double flow_noise = 0.03;
  /// Initial covariance diagonal.
  double init_pos_var = 1e-6;
  double init_yaw_var = 1e-6;
  double init_vel_var = 0.01;
};

class Ekf {
 public:
  static constexpr std::size_t kStateDim = 5;
  using StateVec = Vec<kStateDim>;
  using StateMat = Mat<kStateDim, kStateDim>;

  explicit Ekf(const EkfConfig& config = {}, const Pose2& initial_pose = {});

  /// Propagate with the gyro yaw-rate measurement over dt seconds.
  void predict(double gyro_yaw_rate, double dt);

  /// Fuse a body-frame velocity measurement from the optical flow.
  void update_flow(Vec2 velocity_body);

  /// Current pose estimate (the odometry output).
  Pose2 pose() const {
    return {state_(0, 0), state_(1, 0), state_(2, 0)};
  }
  Vec2 velocity_body() const { return {state_(3, 0), state_(4, 0)}; }
  const StateMat& covariance() const { return covariance_; }

 private:
  EkfConfig config_;
  StateVec state_{};
  StateMat covariance_{};
};

}  // namespace tofmcl::estimation
