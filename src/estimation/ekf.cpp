#include "estimation/ekf.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tofmcl::estimation {

Ekf::Ekf(const EkfConfig& config, const Pose2& initial_pose)
    : config_(config) {
  state_(0, 0) = initial_pose.x();
  state_(1, 0) = initial_pose.y();
  state_(2, 0) = initial_pose.yaw;
  covariance_ = StateMat::diagonal({config.init_pos_var, config.init_pos_var,
                                    config.init_yaw_var, config.init_vel_var,
                                    config.init_vel_var});
}

void Ekf::predict(double gyro_yaw_rate, double dt) {
  TOFMCL_EXPECTS(dt > 0.0, "prediction interval must be positive");
  const double theta = state_(2, 0);
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  const double vbx = state_(3, 0);
  const double vby = state_(4, 0);

  // Nonlinear state propagation.
  state_(0, 0) += (vbx * c - vby * s) * dt;
  state_(1, 0) += (vbx * s + vby * c) * dt;
  state_(2, 0) += gyro_yaw_rate * dt;

  // Jacobian of the propagation w.r.t. the state.
  StateMat F = StateMat::identity();
  F(0, 2) = (-vbx * s - vby * c) * dt;
  F(0, 3) = c * dt;
  F(0, 4) = -s * dt;
  F(1, 2) = (vbx * c - vby * s) * dt;
  F(1, 3) = s * dt;
  F(1, 4) = c * dt;

  // Process noise: velocity random walk, yaw noise (gyro white noise is
  // part of this), optional extra position noise.
  const double qp = config_.sigma_pos * config_.sigma_pos * dt;
  const double qy = config_.sigma_yaw * config_.sigma_yaw * dt;
  const double qv = config_.sigma_vel * config_.sigma_vel * dt;
  const StateMat Q = StateMat::diagonal({qp, qp, qy, qv, qv});

  covariance_ = F * covariance_ * F.transposed() + Q;
  covariance_.symmetrize();
}

void Ekf::update_flow(Vec2 velocity_body) {
  // Measurement: z = [vbx, vby]ᵀ = H x with H selecting states 3, 4.
  Mat<2, kStateDim> H;
  H(0, 3) = 1.0;
  H(1, 4) = 1.0;

  Mat<2, 2> R;
  R(0, 0) = config_.flow_noise * config_.flow_noise;
  R(1, 1) = config_.flow_noise * config_.flow_noise;

  Vec<2> innovation;
  innovation(0, 0) = velocity_body.x - state_(3, 0);
  innovation(1, 0) = velocity_body.y - state_(4, 0);

  const Mat<2, 2> S = H * covariance_ * H.transposed() + R;
  const Mat<kStateDim, 2> K = covariance_ * H.transposed() * inverse(S);

  state_ = state_ + K * innovation;
  const StateMat I = StateMat::identity();
  covariance_ = (I - K * H) * covariance_;
  covariance_.symmetrize();
}

}  // namespace tofmcl::estimation
