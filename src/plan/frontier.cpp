#include "plan/frontier.hpp"

#include <algorithm>
#include <queue>

namespace tofmcl::plan {

namespace {

bool is_frontier_cell(const map::OccupancyGrid& grid, map::CellIndex c) {
  if (!grid.in_bounds(c) || !grid.is_free(c)) return false;
  // 4-neighbourhood adjacency to Unknown.
  const map::CellIndex neighbours[] = {
      {c.x + 1, c.y}, {c.x - 1, c.y}, {c.x, c.y + 1}, {c.x, c.y - 1}};
  for (const map::CellIndex& n : neighbours) {
    if (grid.in_bounds(n) && grid.at(n) == map::CellState::kUnknown) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Frontier> find_frontiers(const map::OccupancyGrid& grid,
                                     std::size_t min_size) {
  const int w = grid.width();
  const int h = grid.height();
  std::vector<bool> frontier_mask(
      static_cast<std::size_t>(w) * static_cast<std::size_t>(h), false);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      frontier_mask[static_cast<std::size_t>(y * w + x)] =
          is_frontier_cell(grid, {x, y});
    }
  }

  // Cluster with 8-connected flood fill.
  std::vector<bool> visited(frontier_mask.size(), false);
  std::vector<Frontier> frontiers;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::size_t i = static_cast<std::size_t>(y * w + x);
      if (!frontier_mask[i] || visited[i]) continue;
      Frontier frontier;
      std::queue<map::CellIndex> queue;
      queue.push({x, y});
      visited[i] = true;
      while (!queue.empty()) {
        const map::CellIndex c = queue.front();
        queue.pop();
        frontier.cells.push_back(c);
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const map::CellIndex n{c.x + dx, c.y + dy};
            if (!grid.in_bounds(n)) continue;
            const std::size_t ni = static_cast<std::size_t>(n.y * w + n.x);
            if (frontier_mask[ni] && !visited[ni]) {
              visited[ni] = true;
              queue.push(n);
            }
          }
        }
      }
      if (frontier.cells.size() < min_size) continue;
      Vec2 sum{};
      for (const map::CellIndex& c : frontier.cells) {
        sum += grid.cell_center(c);
      }
      frontier.centroid = sum / static_cast<double>(frontier.cells.size());
      frontiers.push_back(std::move(frontier));
    }
  }
  std::sort(frontiers.begin(), frontiers.end(),
            [](const Frontier& a, const Frontier& b) {
              return a.size() > b.size();
            });
  return frontiers;
}

int select_frontier(const std::vector<Frontier>& frontiers, Vec2 from) {
  int best = -1;
  double best_score = -1.0;
  for (std::size_t i = 0; i < frontiers.size(); ++i) {
    const double distance = (frontiers[i].centroid - from).norm();
    const double score =
        static_cast<double>(frontiers[i].size()) / (distance + 1.0);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace tofmcl::plan
