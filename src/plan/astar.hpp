#pragma once
/// \file astar.hpp
/// \brief Grid path planning — the paper's stated future work.
///
/// "Future works will extend the proposed system to applications such as
/// path planning and exploration" (paper Section V). This module provides
/// that extension on the same occupancy-grid substrate the localizer
/// uses: an 8-connected A* with clearance-aware costs (reusing the EDT so
/// paths prefer corridor centers), plus line-of-sight path simplification
/// producing waypoints the flight controller can follow directly.

#include <optional>
#include <vector>

#include "common/geometry.hpp"
#include "map/distance_map.hpp"
#include "map/occupancy_grid.hpp"

namespace tofmcl::plan {

struct PlannerConfig {
  /// Cells closer than this to an obstacle are untraversable (the drone's
  /// radius plus margin), meters.
  double min_clearance_m = 0.15;
  /// Below this clearance a soft penalty is added so paths hug corridor
  /// centers instead of wall edges, meters.
  double comfort_clearance_m = 0.4;
  /// Weight of the soft clearance penalty (cost per meter traveled at
  /// zero clearance, fading linearly to zero at comfort clearance).
  double clearance_penalty = 2.0;
  /// Unknown cells are treated as obstacles when true (safe default).
  bool unknown_is_obstacle = true;
};

/// A planned path: grid-exact cells and simplified waypoints.
struct PlannedPath {
  std::vector<Vec2> cells;      ///< Center of every visited cell, in order.
  std::vector<Vec2> waypoints;  ///< Line-of-sight simplified corners.
  double length_m = 0.0;        ///< Length of the cell path.
};

/// A* from `start` to `goal` (world coordinates) over the grid, using the
/// distance map for clearance costs. Returns nullopt when no path exists
/// or an endpoint is untraversable.
std::optional<PlannedPath> plan_path(const map::OccupancyGrid& grid,
                                     const map::DistanceMap& distance,
                                     Vec2 start, Vec2 goal,
                                     const PlannerConfig& config = {});

/// True when the straight segment a→b stays traversable (used by the
/// simplifier; exposed for tests and reactive replanning).
bool line_of_sight(const map::OccupancyGrid& grid,
                   const map::DistanceMap& distance, Vec2 a, Vec2 b,
                   const PlannerConfig& config = {});

}  // namespace tofmcl::plan
