#pragma once
/// \file frontier.hpp
/// \brief Frontier detection for autonomous exploration (future work of
///        the paper, Section V).
///
/// A frontier cell is a Free cell adjacent to Unknown space — the places
/// an exploring drone should fly toward to grow its map. Frontiers are
/// clustered into connected regions and ranked by size and travel cost so
/// an exploration loop can pick the next goal.

#include <vector>

#include "common/geometry.hpp"
#include "map/occupancy_grid.hpp"

namespace tofmcl::plan {

/// One connected frontier region.
struct Frontier {
  std::vector<map::CellIndex> cells;
  Vec2 centroid{};
  std::size_t size() const { return cells.size(); }
};

/// All frontier regions of the grid, largest first. `min_size` suppresses
/// single-cell noise regions.
std::vector<Frontier> find_frontiers(const map::OccupancyGrid& grid,
                                     std::size_t min_size = 3);

/// Picks the frontier with the best size/distance trade-off from `from`:
/// score = size / (distance + 1). Returns index into `frontiers`, or -1
/// when empty.
int select_frontier(const std::vector<Frontier>& frontiers, Vec2 from);

}  // namespace tofmcl::plan
