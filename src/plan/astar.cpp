#include "plan/astar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace tofmcl::plan {

namespace {

struct Node {
  double f = 0.0;  // g + heuristic
  double g = 0.0;
  int index = -1;
};
struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const { return a.f > b.f; }
};

bool traversable(const map::OccupancyGrid& grid,
                 const map::DistanceMap& distance, map::CellIndex c,
                 const PlannerConfig& config) {
  if (!grid.in_bounds(c)) return false;
  const map::CellState state = grid.at(c);
  if (state == map::CellState::kOccupied) return false;
  if (state == map::CellState::kUnknown && config.unknown_is_obstacle) {
    return false;
  }
  return distance.distance_at(grid.cell_center(c)) >=
         static_cast<float>(config.min_clearance_m);
}

/// Soft penalty multiplier for moving through a cell with the given
/// clearance: 1 at comfort clearance and above, up to
/// 1 + clearance_penalty at zero clearance.
double clearance_cost(double clearance, const PlannerConfig& config) {
  if (clearance >= config.comfort_clearance_m) return 1.0;
  const double shortfall =
      1.0 - clearance / std::max(config.comfort_clearance_m, 1e-9);
  return 1.0 + config.clearance_penalty * shortfall;
}

}  // namespace

bool line_of_sight(const map::OccupancyGrid& grid,
                   const map::DistanceMap& distance, Vec2 a, Vec2 b,
                   const PlannerConfig& config) {
  const double length = (b - a).norm();
  const double step = grid.resolution() / 2.0;
  const int samples = std::max(1, static_cast<int>(std::ceil(length / step)));
  for (int i = 0; i <= samples; ++i) {
    const double t = static_cast<double>(i) / samples;
    const Vec2 p = a + (b - a) * t;
    if (!traversable(grid, distance, grid.world_to_cell(p), config)) {
      return false;
    }
  }
  return true;
}

std::optional<PlannedPath> plan_path(const map::OccupancyGrid& grid,
                                     const map::DistanceMap& distance,
                                     Vec2 start, Vec2 goal,
                                     const PlannerConfig& config) {
  TOFMCL_EXPECTS(config.min_clearance_m >= 0.0,
                 "clearance must be non-negative");
  const map::CellIndex start_cell = grid.world_to_cell(start);
  const map::CellIndex goal_cell = grid.world_to_cell(goal);
  if (!traversable(grid, distance, start_cell, config) ||
      !traversable(grid, distance, goal_cell, config)) {
    return std::nullopt;
  }

  const int w = grid.width();
  const int h = grid.height();
  const auto idx = [w](map::CellIndex c) { return c.y * w + c.x; };
  const double res = grid.resolution();

  std::vector<double> g_cost(static_cast<std::size_t>(w) *
                                 static_cast<std::size_t>(h),
                             std::numeric_limits<double>::infinity());
  std::vector<int> parent(g_cost.size(), -1);
  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;

  const auto heuristic = [&](map::CellIndex c) {
    // Octile distance in meters — admissible for 8-connected moves.
    const double dx = std::abs(c.x - goal_cell.x) * res;
    const double dy = std::abs(c.y - goal_cell.y) * res;
    return std::max(dx, dy) + (std::numbers::sqrt2 - 1.0) * std::min(dx, dy);
  };

  g_cost[static_cast<std::size_t>(idx(start_cell))] = 0.0;
  open.push({heuristic(start_cell), 0.0, idx(start_cell)});

  constexpr int kDx[] = {1, -1, 0, 0, 1, 1, -1, -1};
  constexpr int kDy[] = {0, 0, 1, -1, 1, -1, 1, -1};

  bool found = false;
  while (!open.empty()) {
    const Node node = open.top();
    open.pop();
    const map::CellIndex cur{node.index % w, node.index / w};
    if (node.g >
        g_cost[static_cast<std::size_t>(node.index)] + 1e-12) {
      continue;  // stale entry
    }
    if (cur == goal_cell) {
      found = true;
      break;
    }
    for (int k = 0; k < 8; ++k) {
      const map::CellIndex next{cur.x + kDx[k], cur.y + kDy[k]};
      if (!traversable(grid, distance, next, config)) continue;
      // No corner cutting: a diagonal move needs both orthogonal
      // neighbours free.
      if (kDx[k] != 0 && kDy[k] != 0) {
        if (!traversable(grid, distance, {cur.x + kDx[k], cur.y}, config) ||
            !traversable(grid, distance, {cur.x, cur.y + kDy[k]}, config)) {
          continue;
        }
      }
      const double move =
          (kDx[k] != 0 && kDy[k] != 0) ? res * std::numbers::sqrt2 : res;
      const double clearance = static_cast<double>(
          distance.distance_at(grid.cell_center(next)));
      const double g_next =
          node.g + move * clearance_cost(clearance, config);
      const std::size_t ni = static_cast<std::size_t>(idx(next));
      if (g_next < g_cost[ni]) {
        g_cost[ni] = g_next;
        parent[ni] = node.index;
        open.push({g_next + heuristic(next), g_next, idx(next)});
      }
    }
  }
  if (!found) return std::nullopt;

  PlannedPath path;
  // Reconstruct goal → start, then reverse.
  for (int i = idx(goal_cell); i != -1;
       i = parent[static_cast<std::size_t>(i)]) {
    path.cells.push_back(grid.cell_center({i % w, i / w}));
  }
  std::reverse(path.cells.begin(), path.cells.end());
  for (std::size_t i = 1; i < path.cells.size(); ++i) {
    path.length_m += (path.cells[i] - path.cells[i - 1]).norm();
  }

  // Line-of-sight simplification: greedily extend each segment as far as
  // it stays traversable.
  path.waypoints.push_back(path.cells.front());
  std::size_t anchor = 0;
  while (anchor + 1 < path.cells.size()) {
    std::size_t reach = anchor + 1;
    for (std::size_t j = path.cells.size() - 1; j > anchor; --j) {
      if (line_of_sight(grid, distance, path.cells[anchor], path.cells[j],
                        config)) {
        reach = j;
        break;
      }
    }
    path.waypoints.push_back(path.cells[reach]);
    anchor = reach;
  }
  return path;
}

}  // namespace tofmcl::plan
