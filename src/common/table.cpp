#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace tofmcl {

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  TOFMCL_EXPECTS(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  TOFMCL_EXPECTS(cells.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(std::string value) {
  cells_.push_back(std::move(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double value, int precision) {
  cells_.push_back(format_fixed(value, precision));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::size_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(long long value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

void Table::RowBuilder::commit() { table_.add_row(std::move(cells_)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

void Table::write_csv(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) throw IoError("cannot open CSV output file: " + path.string());
  write_csv(out);
  if (!out) throw IoError("failed writing CSV file: " + path.string());
}

}  // namespace tofmcl
