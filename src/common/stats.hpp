#pragma once
/// \file stats.hpp
/// \brief Streaming and batch statistics used by the evaluation harness.

#include <cstddef>
#include <vector>

namespace tofmcl {

/// Welford streaming mean/variance accumulator (numerically stable).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// Mean of the added samples; 0 when empty.
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set with linear interpolation between order
/// statistics. `q` in [0, 1]. The input is copied; the original order is
/// preserved. Returns 0 for empty input.
double percentile(std::vector<double> values, double q);

/// Median shorthand.
inline double median(std::vector<double> values) {
  return percentile(std::move(values), 0.5);
}

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin. Used for convergence-time distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Empirical CDF evaluated at the upper edge of bin i.
  double cdf_at_bin(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace tofmcl
