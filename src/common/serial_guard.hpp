#pragma once
/// \file serial_guard.hpp
/// \brief Asserted "externally serialized" concurrency contract.
///
/// Several mutable objects in this codebase — most importantly
/// core::Localizer with its dropped-frames accounting and injection-
/// monitor state — are single-threaded BY CONTRACT: the owner (the
/// serving layer's SessionManager, a campaign run task, an application
/// flight loop) serializes every call, but successive calls may land on
/// DIFFERENT threads (a session hops pool workers between pumps). A plain
/// mutex would silently turn caller bugs into blocking; what we want is
/// to make a violated contract loud.
///
/// SerialGuard does two things at a cost of one uncontended atomic
/// exchange per guarded call:
///
///  * detects concurrent entry and throws PreconditionError — the bug is
///    reported at the exact call that raced instead of corrupting
///    counters silently;
///  * establishes a happens-before edge between consecutive serialized
///    sections (release store on exit, acquire exchange on entry), so the
///    cross-thread call pattern is genuinely data-race-free for the
///    guarded state even if the caller's own hand-off were weaker than a
///    full synchronization — ThreadSanitizer agrees, not just the
///    contract comment (tests/test_serve.cpp runs the hopping pattern
///    under TSan in CI).

#include <atomic>

#include "common/error.hpp"

namespace tofmcl {

class SerialGuard {
 public:
  /// RAII section marker. Construct at the top of every guarded method.
  class Scope {
   public:
    explicit Scope(SerialGuard& guard) : guard_(guard) {
      TOFMCL_EXPECTS(
          !guard_.busy_.exchange(true, std::memory_order_acquire),
          "concurrent call to an externally-serialized object: the owner "
          "(serving layer / flight loop) must serialize all calls");
    }
    ~Scope() { guard_.busy_.store(false, std::memory_order_release); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SerialGuard& guard_;
  };

 private:
  std::atomic<bool> busy_{false};
};

}  // namespace tofmcl
