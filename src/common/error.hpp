#pragma once
/// \file error.hpp
/// \brief Error handling primitives shared by all tofmcl libraries.
///
/// Follows the C++ Core Guidelines: exceptions for errors that callers are
/// expected to handle (I/O, configuration), assertions for programming
/// errors (precondition violations).

#include <source_location>
#include <stdexcept>
#include <string>

namespace tofmcl {

/// Thrown when a configuration value is out of its documented domain
/// (e.g. negative map resolution, zero particles).
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown on malformed or unreadable external data (map files, datasets).
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void throw_precondition_failure(const char* expr, const char* msg,
                                             const std::source_location& loc);
}  // namespace detail

/// Check a precondition of a public API. Unlike `assert`, stays active in
/// release builds; violations indicate caller bugs and throw
/// `PreconditionError` with file/line context.
#define TOFMCL_EXPECTS(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::tofmcl::detail::throw_precondition_failure(                     \
          #expr, (msg), std::source_location::current());               \
    }                                                                   \
  } while (false)

/// Internal invariant check (library bug if it fires).
#define TOFMCL_ENSURES(expr, msg) TOFMCL_EXPECTS(expr, msg)

}  // namespace tofmcl
