#pragma once
/// \file thread_pool.hpp
/// \brief Small fixed-size thread pool with a blocking parallel_for.
///
/// Used by the evaluation harness to spread independent localization runs
/// across host cores, and by the ThreadPoolExecutor to emulate the GAP9
/// cluster's fork-join execution style on the host.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tofmcl {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately. Tasks must not throw — exceptions
  /// escaping a task terminate the program (fail-fast, per the pool's use
  /// for pure compute kernels). Wrap fallible work in the caller.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(i) for i in [0, count), partitioned into contiguous chunks and
  /// executed on the pool (the calling thread also participates). Blocks
  /// until all iterations complete.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Run fn(chunk_index, begin, end) over `chunks` contiguous ranges of
  /// [0, count), matching the static particle partitioning the paper uses
  /// on the GAP9 cluster. Blocks until done.
  void parallel_chunks(
      std::size_t count, std::size_t chunks,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Split [0, count) into `chunks` nearly-equal contiguous ranges; chunk i
/// gets [chunk_begin(count, chunks, i), chunk_begin(count, chunks, i+1)).
/// The first (count % chunks) chunks are one element larger — the same
/// static schedule the paper's cluster implementation uses.
constexpr std::size_t chunk_begin(std::size_t count, std::size_t chunks,
                                  std::size_t i) {
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  return i * base + (i < extra ? i : extra);
}

}  // namespace tofmcl
