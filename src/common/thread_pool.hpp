#pragma once
/// \file thread_pool.hpp
/// \brief Small fixed-size thread pool with blocking fork-join primitives.
///
/// Used by the evaluation harness to spread independent localization runs
/// across host cores, by the ThreadPoolExecutor to emulate the GAP9
/// cluster's fork-join execution style on the host, and by the serving
/// layer (src/serve) to multiplex live localizer sessions.
///
/// Three properties matter for the engines built on top:
///
///  * Exceptions do not kill the process. A throwing task is captured and
///    rethrown on the thread that observes completion: `parallel_chunks`
///    rethrows the first failure of its own chunks before returning,
///    `wait(TaskGroup&)` rethrows the first failure of the group, and
///    `wait_idle` rethrows the first failure of plainly `submit`ted tasks.
///    The worker keeps running and the in-flight accounting stays balanced
///    either way.
///
///  * `parallel_chunks` may be called from INSIDE a pool task (nested
///    fork-join). Chunk tasks live in a dedicated queue; while waiting
///    for its chunks the calling thread helps drain THAT queue (never the
///    general one), so run-level tasks and filter-level chunk tasks can
///    share one pool without deadlock, and a fine-grained chunk barrier
///    can never stall behind — or recurse into — a stolen long-running
///    general task.
///
///  * Waits are category-separated so nested waiting cannot self-deadlock.
///    General tasks and chunk tasks are accounted independently:
///    `wait_idle` tracks GENERAL tasks only and excludes tasks executing
///    on the caller's own stack, so a stolen task (or a chunk of a
///    `parallel_chunks` call) that itself blocks on `wait_idle()` no
///    longer hangs forever waiting for its own in-flight slot to clear —
///    the serving-workload shape that used to deadlock (see
///    test_thread_pool.cpp WaitIdleInsideChunkTaskDoesNotDeadlock).
///    For batch-scoped waits, `TaskGroup` is the safe primitive: the
///    waiter helps drain the queues, so a pool task may submit subtasks
///    and wait for just those even when every worker is busy.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tofmcl {

class ThreadPool {
 public:
  /// A batch of submitted tasks that can be waited on as a unit. Unlike
  /// `wait_idle`, waiting on a group is safe from INSIDE a pool task: the
  /// waiter helps execute queued work while the group drains, so one busy
  /// pool cannot deadlock on its own nested waits (and one slow session
  /// batch cannot starve an unrelated waiter — it only ever occupies its
  /// own tasks' workers). A group may be reused after wait() returns.
  class TaskGroup {
   public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

   private:
    friend class ThreadPool;
    std::size_t pending_ = 0;          ///< Queued + executing. Pool mutex.
    std::size_t queued_ = 0;           ///< Still in the queue. Pool mutex.
    std::exception_ptr first_error_;   ///< Guarded by the pool mutex.
  };

  /// Creates `num_threads` workers; 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately. If the task throws, the first
  /// such exception is captured and rethrown by the next wait_idle() call;
  /// the worker thread survives and later tasks still run.
  void submit(std::function<void()> task);

  /// Enqueue a task tracked by `group`; its completion is observed by
  /// wait(group), and a throw is captured into the group (rethrown by the
  /// next wait on it), not into the pool-wide error slot. The group must
  /// outlive the task.
  void submit(std::function<void()> task, TaskGroup& group);

  /// Block until every task submitted to `group` has finished. The waiter
  /// helps, but its helping is BOUNDED to the group's own tasks (plus
  /// chunk tasks, whose lifetime their parallel_chunks caller owns): it
  /// never steals an unrelated long-running general task, so a group wait
  /// can neither stall behind another group's slow session nor deadlock
  /// on a stolen task that depends on the waiter. Safe to call from
  /// inside a pool task. Rethrows the first exception captured from the
  /// group's tasks.
  void wait(TaskGroup& group);

  /// Block until every GENERAL submitted task has finished — except tasks
  /// currently executing on the calling thread's own stack, so a pool
  /// task calling wait_idle() waits for everyone else instead of
  /// deadlocking on itself. The waiter helps drain the queues. Chunk
  /// tasks are NOT tracked here; their completion is awaited by their own
  /// parallel_chunks caller. Rethrows the first exception captured from a
  /// plainly submitted task since the last wait_idle(). Two tasks that
  /// wait_idle() on each other still deadlock — use TaskGroup for
  /// batch-scoped waits.
  void wait_idle();

  /// Run fn(i) for i in [0, count), partitioned into contiguous chunks and
  /// executed on the pool (the calling thread also participates). Blocks
  /// until all iterations complete.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Run fn(chunk_index, begin, end) over `chunks` contiguous ranges of
  /// [0, count), matching the static particle partitioning the paper uses
  /// on the GAP9 cluster. Blocks until done; while blocked, the calling
  /// thread executes other queued chunk tasks (safe to call from inside a
  /// pool task). Rethrows the first exception thrown by any chunk, after
  /// all chunks have completed.
  void parallel_chunks(
      std::size_t count, std::size_t chunks,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  /// A general-queue entry; chunk tasks carry their completion state in
  /// their closure instead.
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;  ///< Null for plain submit().
  };

  void worker_loop();
  void enqueue_general(std::function<void()> task, TaskGroup* group);
  void enqueue_chunk(std::function<void()> task);
  /// Pops and runs one queued task — chunk tasks first; general tasks
  /// only when `chunk_only` is false. `lock` must hold mutex_ on entry
  /// and holds it again on return. Returns false if nothing was eligible.
  bool run_one(std::unique_lock<std::mutex>& lock, bool chunk_only);
  /// Bounded-helping variant for wait(group): runs one chunk task or one
  /// queued task BELONGING TO `group` (found by scan; the group's tasks
  /// cluster at the front in the serving pump pattern). Never touches
  /// unrelated general tasks.
  bool run_one_of_group(std::unique_lock<std::mutex>& lock, TaskGroup& group);
  /// Executes `task` outside the lock with general-task bookkeeping
  /// (own-stack marker, error routing, completion notify).
  void execute_general(std::unique_lock<std::mutex>& lock, Task task);
  /// General tasks currently executing on THIS thread's stack for THIS
  /// pool (nested helping can stack several).
  std::size_t own_stack_depth() const;

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;                         ///< General tasks.
  std::queue<std::function<void()>> chunk_queue_;  ///< parallel_chunks work.
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  /// In-flight GENERAL tasks (queued or executing). Chunk tasks are
  /// deliberately excluded: their lifetime is owned by the
  /// parallel_chunks call that spawned them, so wait_idle can never
  /// deadlock on a chunk that is itself waiting.
  std::size_t general_in_flight_ = 0;
  bool stop_ = false;
  /// First exception thrown by a plain submit() task (group and
  /// parallel_chunks failures are tracked per group / per call, not
  /// here). Guarded by mutex_.
  std::exception_ptr first_error_;
};

/// Split [0, count) into `chunks` nearly-equal contiguous ranges; chunk i
/// gets [chunk_begin(count, chunks, i), chunk_begin(count, chunks, i+1)).
/// The first (count % chunks) chunks are one element larger — the same
/// static schedule the paper's cluster implementation uses.
constexpr std::size_t chunk_begin(std::size_t count, std::size_t chunks,
                                  std::size_t i) {
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  return i * base + (i < extra ? i : extra);
}

}  // namespace tofmcl
