#pragma once
/// \file thread_pool.hpp
/// \brief Small fixed-size thread pool with a blocking parallel_for.
///
/// Used by the evaluation harness to spread independent localization runs
/// across host cores, and by the ThreadPoolExecutor to emulate the GAP9
/// cluster's fork-join execution style on the host.
///
/// Two properties matter for the campaign engine built on top:
///
///  * Exceptions do not kill the process. A throwing task is captured and
///    rethrown on the thread that observes completion: `parallel_chunks`
///    rethrows the first failure of its own chunks before returning, and
///    `wait_idle` rethrows the first failure of plainly `submit`ted tasks.
///    The worker keeps running and `in_flight_` stays balanced either way
///    (previously a throw escaped `worker_loop` → std::terminate, and a
///    hypothetical survivor would have deadlocked `wait_idle`).
///
///  * `parallel_chunks` may be called from INSIDE a pool task (nested
///    fork-join). Chunk tasks live in a dedicated queue; while waiting
///    for its chunks the calling thread helps drain THAT queue (never the
///    general one), so run-level tasks and filter-level chunk tasks can
///    share one pool without deadlock, and a fine-grained chunk barrier
///    can never stall behind — or recurse into — a stolen long-running
///    general task.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tofmcl {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately. If the task throws, the first
  /// such exception is captured and rethrown by the next wait_idle() call;
  /// the worker thread survives and later tasks still run.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Rethrows the first
  /// exception captured from a submitted task since the last wait_idle().
  void wait_idle();

  /// Run fn(i) for i in [0, count), partitioned into contiguous chunks and
  /// executed on the pool (the calling thread also participates). Blocks
  /// until all iterations complete.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Run fn(chunk_index, begin, end) over `chunks` contiguous ranges of
  /// [0, count), matching the static particle partitioning the paper uses
  /// on the GAP9 cluster. Blocks until done; while blocked, the calling
  /// thread executes other queued tasks (safe to call from inside a pool
  /// task). Rethrows the first exception thrown by any chunk, after all
  /// chunks have completed.
  void parallel_chunks(
      std::size_t count, std::size_t chunks,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();
  void enqueue(std::function<void()> task, bool chunk_task);
  /// Pops and runs one queued task — chunk tasks first; general tasks
  /// only when `chunk_only` is false. `lock` must hold mutex_ on entry
  /// and holds it again on return. Returns false if nothing was eligible.
  bool run_one(std::unique_lock<std::mutex>& lock, bool chunk_only);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;        ///< General tasks.
  std::queue<std::function<void()>> chunk_queue_;  ///< parallel_chunks work.
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  /// First exception thrown by a plain submit() task (parallel_chunks
  /// failures are tracked per call, not here). Guarded by mutex_.
  std::exception_ptr first_error_;
};

/// Split [0, count) into `chunks` nearly-equal contiguous ranges; chunk i
/// gets [chunk_begin(count, chunks, i), chunk_begin(count, chunks, i+1)).
/// The first (count % chunks) chunks are one element larger — the same
/// static schedule the paper's cluster implementation uses.
constexpr std::size_t chunk_begin(std::size_t count, std::size_t chunks,
                                  std::size_t i) {
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  return i * base + (i < extra ? i : extra);
}

}  // namespace tofmcl
