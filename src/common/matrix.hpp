#pragma once
/// \file matrix.hpp
/// \brief Small fixed-size dense matrices for the state estimator.
///
/// The Crazyflie-style EKF works on 5-state vectors and 5×5 covariances;
/// a compile-time-sized value type with no allocation keeps it simple and
/// fast. Only the operations the estimator needs are provided.

#include <array>
#include <cmath>
#include <cstddef>

#include "common/error.hpp"

namespace tofmcl {

/// Row-major R×C matrix of doubles.
template <std::size_t R, std::size_t C>
struct Mat {
  std::array<double, R * C> m{};

  static constexpr std::size_t rows() { return R; }
  static constexpr std::size_t cols() { return C; }

  constexpr double& operator()(std::size_t r, std::size_t c) {
    return m[r * C + c];
  }
  constexpr double operator()(std::size_t r, std::size_t c) const {
    return m[r * C + c];
  }

  static constexpr Mat zero() { return Mat{}; }

  static constexpr Mat identity()
    requires(R == C)
  {
    Mat out;
    for (std::size_t i = 0; i < R; ++i) out(i, i) = 1.0;
    return out;
  }

  /// Diagonal matrix from entries.
  static constexpr Mat diagonal(const std::array<double, R>& d)
    requires(R == C)
  {
    Mat out;
    for (std::size_t i = 0; i < R; ++i) out(i, i) = d[i];
    return out;
  }

  constexpr Mat operator+(const Mat& o) const {
    Mat out;
    for (std::size_t i = 0; i < R * C; ++i) out.m[i] = m[i] + o.m[i];
    return out;
  }
  constexpr Mat operator-(const Mat& o) const {
    Mat out;
    for (std::size_t i = 0; i < R * C; ++i) out.m[i] = m[i] - o.m[i];
    return out;
  }
  constexpr Mat operator*(double s) const {
    Mat out;
    for (std::size_t i = 0; i < R * C; ++i) out.m[i] = m[i] * s;
    return out;
  }

  template <std::size_t C2>
  constexpr Mat<R, C2> operator*(const Mat<C, C2>& o) const {
    Mat<R, C2> out;
    for (std::size_t r = 0; r < R; ++r) {
      for (std::size_t k = 0; k < C; ++k) {
        const double a = (*this)(r, k);
        if (a == 0.0) continue;
        for (std::size_t c = 0; c < C2; ++c) {
          out(r, c) += a * o(k, c);
        }
      }
    }
    return out;
  }

  constexpr Mat<C, R> transposed() const {
    Mat<C, R> out;
    for (std::size_t r = 0; r < R; ++r) {
      for (std::size_t c = 0; c < C; ++c) out(c, r) = (*this)(r, c);
    }
    return out;
  }

  /// Symmetrize in place (covariance hygiene after updates).
  constexpr void symmetrize()
    requires(R == C)
  {
    for (std::size_t r = 0; r < R; ++r) {
      for (std::size_t c = r + 1; c < C; ++c) {
        const double avg = ((*this)(r, c) + (*this)(c, r)) / 2.0;
        (*this)(r, c) = avg;
        (*this)(c, r) = avg;
      }
    }
  }

  constexpr bool operator==(const Mat&) const = default;
};

template <std::size_t R, std::size_t C>
constexpr Mat<R, C> operator*(double s, const Mat<R, C>& m) {
  return m * s;
}

/// Column vector alias.
template <std::size_t R>
using Vec = Mat<R, 1>;

/// Closed-form inverse of a 2×2 matrix; throws on (near-)singular input.
inline Mat<2, 2> inverse(const Mat<2, 2>& a) {
  const double det = a(0, 0) * a(1, 1) - a(0, 1) * a(1, 0);
  TOFMCL_EXPECTS(std::abs(det) > 1e-300, "singular 2x2 matrix");
  Mat<2, 2> out;
  out(0, 0) = a(1, 1) / det;
  out(0, 1) = -a(0, 1) / det;
  out(1, 0) = -a(1, 0) / det;
  out(1, 1) = a(0, 0) / det;
  return out;
}

/// Closed-form inverse of a 1×1 matrix.
inline Mat<1, 1> inverse(const Mat<1, 1>& a) {
  TOFMCL_EXPECTS(std::abs(a(0, 0)) > 1e-300, "singular 1x1 matrix");
  Mat<1, 1> out;
  out(0, 0) = 1.0 / a(0, 0);
  return out;
}

}  // namespace tofmcl
