#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tofmcl {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  TOFMCL_EXPECTS(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  TOFMCL_EXPECTS(hi > lo, "histogram range must be non-empty");
  TOFMCL_EXPECTS(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1L);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::cdf_at_bin(std::size_t i) const {
  TOFMCL_EXPECTS(i < counts_.size(), "bin index out of range");
  if (total_ == 0) return 0.0;
  std::size_t cum = 0;
  for (std::size_t k = 0; k <= i; ++k) cum += counts_[k];
  return static_cast<double>(cum) / static_cast<double>(total_);
}

}  // namespace tofmcl
