#pragma once
/// \file geometry.hpp
/// \brief 2D vectors, poses and rigid-body transforms.
///
/// The localization problem in the paper is planar: the nano-UAV flies at a
/// fixed height and localizes in a 2D occupancy grid, so the state is
/// (x, y, θ). Simulation and evaluation use double precision; the particle
/// filter stores its own reduced-precision state (see core/particle.hpp).

#include <cmath>
#include <ostream>

namespace tofmcl {

/// 2D vector over an arbitrary scalar type.
template <typename T>
struct Vec2T {
  T x{};
  T y{};

  constexpr Vec2T() = default;
  constexpr Vec2T(T x_, T y_) : x(x_), y(y_) {}

  constexpr Vec2T operator+(Vec2T o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2T operator-(Vec2T o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2T operator*(T s) const { return {x * s, y * s}; }
  constexpr Vec2T operator/(T s) const { return {x / s, y / s}; }
  constexpr Vec2T operator-() const { return {-x, -y}; }
  constexpr Vec2T& operator+=(Vec2T o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2T& operator-=(Vec2T o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2T& operator*=(T s) {
    x *= s;
    y *= s;
    return *this;
  }
  constexpr bool operator==(const Vec2T&) const = default;

  constexpr T dot(Vec2T o) const { return x * o.x + y * o.y; }
  /// 2D cross product (z-component of the 3D cross product).
  constexpr T cross(Vec2T o) const { return x * o.y - y * o.x; }
  constexpr T squared_norm() const { return x * x + y * y; }
  T norm() const { return std::sqrt(squared_norm()); }
  /// Returns the zero vector when called on a (near-)zero vector.
  Vec2T normalized() const {
    const T n = norm();
    return n > T(0) ? Vec2T{x / n, y / n} : Vec2T{};
  }
  /// Counter-clockwise rotation by `angle` radians.
  Vec2T rotated(T angle) const {
    const T c = std::cos(angle);
    const T s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
  }
};

template <typename T>
constexpr Vec2T<T> operator*(T s, Vec2T<T> v) {
  return v * s;
}

template <typename T>
std::ostream& operator<<(std::ostream& os, Vec2T<T> v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

using Vec2 = Vec2T<double>;
using Vec2f = Vec2T<float>;

/// Planar pose (x, y, yaw). Yaw is in radians; no wrapping is applied by the
/// arithmetic here — use angles.hpp helpers when comparing orientations.
template <typename T>
struct Pose2T {
  Vec2T<T> position{};
  T yaw{};

  constexpr Pose2T() = default;
  constexpr Pose2T(T x, T y, T yaw_) : position{x, y}, yaw(yaw_) {}
  constexpr Pose2T(Vec2T<T> p, T yaw_) : position(p), yaw(yaw_) {}

  constexpr T x() const { return position.x; }
  constexpr T y() const { return position.y; }
  constexpr bool operator==(const Pose2T&) const = default;

  /// Transform a point from this pose's body frame into the world frame.
  Vec2T<T> transform(Vec2T<T> body_point) const {
    return position + body_point.rotated(yaw);
  }

  /// Inverse transform: world point into this pose's body frame.
  Vec2T<T> inverse_transform(Vec2T<T> world_point) const {
    return (world_point - position).rotated(-yaw);
  }

  /// Pose composition: `this ⊕ delta`, with `delta` expressed in this
  /// pose's body frame (standard odometry accumulation).
  Pose2T compose(const Pose2T& delta) const {
    return {position + delta.position.rotated(yaw), yaw + delta.yaw};
  }

  /// Relative pose `this⁻¹ ⊕ other`: the motion that takes `this` to
  /// `other`, expressed in `this`'s body frame.
  Pose2T between(const Pose2T& other) const {
    return {(other.position - position).rotated(-yaw), other.yaw - yaw};
  }
};

template <typename T>
std::ostream& operator<<(std::ostream& os, const Pose2T<T>& p) {
  return os << "(" << p.position.x << ", " << p.position.y << "; " << p.yaw
            << ")";
}

using Pose2 = Pose2T<double>;
using Pose2f = Pose2T<float>;

/// Axis-aligned bounding box, used for map extents and sampling regions.
struct Aabb {
  Vec2 min{};
  Vec2 max{};

  constexpr double width() const { return max.x - min.x; }
  constexpr double height() const { return max.y - min.y; }
  constexpr double area() const { return width() * height(); }
  constexpr bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  /// Smallest box containing both this box and `p`.
  Aabb expanded(Vec2 p) const {
    return {{std::min(min.x, p.x), std::min(min.y, p.y)},
            {std::max(max.x, p.x), std::max(max.y, p.y)}};
  }
};

}  // namespace tofmcl
