#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace tofmcl {

namespace {

/// Pools whose GENERAL tasks are executing on this thread's stack, one
/// entry per nesting level (helping waits can stack several). Lets
/// wait_idle exclude the caller's own in-flight tasks without any
/// per-pool thread registry.
thread_local std::vector<const void*> t_executing_pools;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::own_stack_depth() const {
  return static_cast<std::size_t>(std::count(
      t_executing_pools.begin(), t_executing_pools.end(), this));
}

void ThreadPool::enqueue_general(std::function<void()> task,
                                 TaskGroup* group) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(Task{std::move(task), group});
    ++general_in_flight_;
    if (group != nullptr) {
      ++group->pending_;
      ++group->queued_;
    }
  }
  cv_task_.notify_one();
  // Helping waiters sleep on cv_idle_ and must wake to steal new work —
  // with every worker blocked inside a nested wait, they are the only
  // threads left that can run this task.
  cv_idle_.notify_all();
}

void ThreadPool::enqueue_chunk(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    chunk_queue_.push(std::move(task));
  }
  cv_task_.notify_one();
  cv_idle_.notify_all();
}

void ThreadPool::submit(std::function<void()> task) {
  TOFMCL_EXPECTS(static_cast<bool>(task), "cannot submit empty task");
  enqueue_general(std::move(task), nullptr);
}

void ThreadPool::submit(std::function<void()> task, TaskGroup& group) {
  TOFMCL_EXPECTS(static_cast<bool>(task), "cannot submit empty task");
  enqueue_general(std::move(task), &group);
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  // Tasks executing on THIS stack can never complete while we block here;
  // waiting for them would deadlock (the pre-serving bug: a stolen task
  // calling wait_idle hung on its own in-flight slot). Everyone else's
  // tasks either run elsewhere or sit in a queue where we can help.
  const std::size_t own = own_stack_depth();
  while (general_in_flight_ != own) {
    if (!run_one(lock, /*chunk_only=*/false)) {
      cv_idle_.wait(lock, [&] {
        return general_in_flight_ == own || !queue_.empty() ||
               !chunk_queue_.empty();
      });
    }
  }
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::wait(TaskGroup& group) {
  std::unique_lock lock(mutex_);
  while (group.pending_ != 0) {
    if (!run_one_of_group(lock, group)) {
      cv_idle_.wait(lock, [&] {
        return group.pending_ == 0 || group.queued_ != 0 ||
               !chunk_queue_.empty();
      });
    }
  }
  if (group.first_error_) {
    std::exception_ptr error = std::exchange(group.first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::execute_general(std::unique_lock<std::mutex>& lock,
                                 Task task) {
  lock.unlock();
  t_executing_pools.push_back(this);
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  t_executing_pools.pop_back();
  lock.lock();
  --general_in_flight_;
  if (task.group != nullptr) {
    --task.group->pending_;
    if (error && !task.group->first_error_) task.group->first_error_ = error;
  } else if (error && !first_error_) {
    first_error_ = error;
  }
  cv_idle_.notify_all();
}

bool ThreadPool::run_one(std::unique_lock<std::mutex>& lock,
                         bool chunk_only) {
  if (!chunk_queue_.empty()) {
    std::function<void()> task = std::move(chunk_queue_.front());
    chunk_queue_.pop();
    lock.unlock();
    // Chunk closures capture failures into their own call state; this
    // catch is defense in depth only.
    try {
      task();
    } catch (...) {
      lock.lock();
      if (!first_error_) first_error_ = std::current_exception();
      return true;
    }
    lock.lock();
    return true;
  }
  if (chunk_only || queue_.empty()) return false;
  Task task = std::move(queue_.front());
  queue_.pop_front();
  if (task.group != nullptr) --task.group->queued_;
  execute_general(lock, std::move(task));
  return true;
}

bool ThreadPool::run_one_of_group(std::unique_lock<std::mutex>& lock,
                                  TaskGroup& group) {
  // Chunk tasks first, like run_one: they are fine-grained and bounded,
  // and a stalled chunk barrier would stall this group's tasks too.
  if (!chunk_queue_.empty()) return run_one(lock, /*chunk_only=*/true);
  if (group.queued_ == 0) return false;
  const auto it =
      std::find_if(queue_.begin(), queue_.end(),
                   [&group](const Task& t) { return t.group == &group; });
  TOFMCL_ENSURES(it != queue_.end(), "group queued count out of sync");
  Task task = std::move(*it);
  queue_.erase(it);
  --group.queued_;
  execute_general(lock, std::move(task));
  return true;
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_task_.wait(lock, [this] {
      return stop_ || !chunk_queue_.empty() || !queue_.empty();
    });
    if (stop_ && chunk_queue_.empty() && queue_.empty()) return;
    run_one(lock, /*chunk_only=*/false);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_chunks(count, size() + 1,
                  [&fn](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) fn(i);
                  });
}

void ThreadPool::parallel_chunks(
    std::size_t count, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  chunks = std::clamp<std::size_t>(chunks, 1, count);

  // Per-call completion state. Chunk failures are captured here (not in
  // first_error_) so the exception surfaces on THIS caller, not on some
  // unrelated wait_idle().
  struct CallState {
    std::atomic<std::size_t> remaining{0};
    std::exception_ptr error;  // guarded by the pool mutex
  };
  auto state = std::make_shared<CallState>();
  state->remaining.store(chunks - 1, std::memory_order_relaxed);

  for (std::size_t c = 1; c < chunks; ++c) {
    enqueue_chunk([this, state, &fn, c, count, chunks] {
      try {
        fn(c, chunk_begin(count, chunks, c),
           chunk_begin(count, chunks, c + 1));
      } catch (...) {
        std::lock_guard lock(mutex_);
        if (!state->error) state->error = std::current_exception();
      }
      // Decrement under the pool mutex: the waiter below re-checks
      // `remaining` under the same mutex before sleeping, so the
      // final notify can never be lost.
      bool last = false;
      {
        std::lock_guard lock(mutex_);
        last = state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1;
      }
      if (last) cv_task_.notify_all();
    });
  }

  // The calling thread runs chunk 0 ...
  std::exception_ptr local_error;
  try {
    fn(0, chunk_begin(count, chunks, 0), chunk_begin(count, chunks, 1));
  } catch (...) {
    local_error = std::current_exception();
  }

  // ... then helps drain the CHUNK queue until its own chunks are done.
  // Helping (instead of plain blocking) is what makes nested fork-join
  // safe: a pool task may itself call parallel_chunks without
  // deadlocking even when every worker is busy — its chunks are either
  // running or in chunk_queue_, where the waiter can execute them
  // itself. General tasks are never stolen here: a chunk barrier must
  // not stall behind (or recurse into) an unrelated long-running task.
  std::unique_lock lock(mutex_);
  while (state->remaining.load(std::memory_order_acquire) != 0) {
    if (!run_one(lock, /*chunk_only=*/true)) {
      cv_task_.wait(lock, [&] {
        return state->remaining.load(std::memory_order_acquire) == 0 ||
               !chunk_queue_.empty();
      });
    }
  }
  std::exception_ptr error = local_error ? local_error : state->error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace tofmcl
