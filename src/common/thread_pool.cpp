#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"

namespace tofmcl {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  TOFMCL_EXPECTS(static_cast<bool>(task), "cannot submit empty task");
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_chunks(count, size() + 1,
                  [&fn](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) fn(i);
                  });
}

void ThreadPool::parallel_chunks(
    std::size_t count, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  chunks = std::clamp<std::size_t>(chunks, 1, count);
  // The calling thread runs chunk 0; the pool runs the rest. A dedicated
  // latch-style counter avoids interleaving with unrelated submitted work.
  std::atomic<std::size_t> remaining(chunks - 1);
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (std::size_t c = 1; c < chunks; ++c) {
    submit([&, c] {
      fn(c, chunk_begin(count, chunks, c), chunk_begin(count, chunks, c + 1));
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  fn(0, chunk_begin(count, chunks, 0), chunk_begin(count, chunks, 1));
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

}  // namespace tofmcl
