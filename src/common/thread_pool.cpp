#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace tofmcl {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task, bool chunk_task) {
  {
    std::lock_guard lock(mutex_);
    (chunk_task ? chunk_queue_ : queue_).push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::submit(std::function<void()> task) {
  TOFMCL_EXPECTS(static_cast<bool>(task), "cannot submit empty task");
  enqueue(std::move(task), /*chunk_task=*/false);
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool ThreadPool::run_one(std::unique_lock<std::mutex>& lock,
                         bool chunk_only) {
  std::queue<std::function<void()>>* queue = nullptr;
  if (!chunk_queue_.empty()) {
    queue = &chunk_queue_;
  } else if (!chunk_only && !queue_.empty()) {
    queue = &queue_;
  } else {
    return false;
  }
  std::function<void()> task = std::move(queue->front());
  queue->pop();
  lock.unlock();
  try {
    task();
  } catch (...) {
    lock.lock();
    if (!first_error_) first_error_ = std::current_exception();
    lock.unlock();
  }
  lock.lock();
  --in_flight_;
  if (in_flight_ == 0) cv_idle_.notify_all();
  return true;
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_task_.wait(lock, [this] {
      return stop_ || !chunk_queue_.empty() || !queue_.empty();
    });
    if (stop_ && chunk_queue_.empty() && queue_.empty()) return;
    run_one(lock, /*chunk_only=*/false);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_chunks(count, size() + 1,
                  [&fn](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) fn(i);
                  });
}

void ThreadPool::parallel_chunks(
    std::size_t count, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  chunks = std::clamp<std::size_t>(chunks, 1, count);

  // Per-call completion state. Chunk failures are captured here (not in
  // first_error_) so the exception surfaces on THIS caller, not on some
  // unrelated wait_idle().
  struct CallState {
    std::atomic<std::size_t> remaining{0};
    std::exception_ptr error;  // guarded by the pool mutex
  };
  auto state = std::make_shared<CallState>();
  state->remaining.store(chunks - 1, std::memory_order_relaxed);

  for (std::size_t c = 1; c < chunks; ++c) {
    enqueue(
        [this, state, &fn, c, count, chunks] {
          try {
            fn(c, chunk_begin(count, chunks, c),
               chunk_begin(count, chunks, c + 1));
          } catch (...) {
            std::lock_guard lock(mutex_);
            if (!state->error) state->error = std::current_exception();
          }
          // Decrement under the pool mutex: the waiter below re-checks
          // `remaining` under the same mutex before sleeping, so the
          // final notify can never be lost.
          bool last = false;
          {
            std::lock_guard lock(mutex_);
            last =
                state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1;
          }
          if (last) cv_task_.notify_all();
        },
        /*chunk_task=*/true);
  }

  // The calling thread runs chunk 0 ...
  std::exception_ptr local_error;
  try {
    fn(0, chunk_begin(count, chunks, 0), chunk_begin(count, chunks, 1));
  } catch (...) {
    local_error = std::current_exception();
  }

  // ... then helps drain the CHUNK queue until its own chunks are done.
  // Helping (instead of plain blocking) is what makes nested fork-join
  // safe: a pool task may itself call parallel_chunks without
  // deadlocking even when every worker is busy — its chunks are either
  // running or in chunk_queue_, where the waiter can execute them
  // itself. General tasks are never stolen here: a chunk barrier must
  // not stall behind (or recurse into) an unrelated long-running task.
  std::unique_lock lock(mutex_);
  while (state->remaining.load(std::memory_order_acquire) != 0) {
    if (!run_one(lock, /*chunk_only=*/true)) {
      cv_task_.wait(lock, [&] {
        return state->remaining.load(std::memory_order_acquire) == 0 ||
               !chunk_queue_.empty();
      });
    }
  }
  std::exception_ptr error = local_error ? local_error : state->error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace tofmcl
