#pragma once
/// \file table.hpp
/// \brief CSV and aligned-console table output for benches and examples.
///
/// The benchmark harness prints the same rows/series the paper reports;
/// this small writer keeps that code free of formatting noise and can
/// mirror everything to a CSV file for plotting.

#include <filesystem>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

namespace tofmcl {

/// Accumulates rows of strings and renders them either as an aligned
/// fixed-width console table or as CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a full row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: start a row builder.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& cell(std::string value);
    RowBuilder& cell(double value, int precision = 3);
    RowBuilder& cell(std::size_t value);
    RowBuilder& cell(long long value);
    /// Commits the row; throws if the cell count mismatches the header.
    void commit();

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return header_.size(); }

  /// Render as an aligned console table with a separator under the header.
  void print(std::ostream& os) const;

  /// Write as RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted, quotes doubled).
  void write_csv(std::ostream& os) const;
  /// Write CSV to a file; creates parent directories. Throws IoError on
  /// failure.
  void write_csv(const std::filesystem::path& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (no trailing-zero trimming, so
/// table columns stay aligned).
std::string format_fixed(double value, int precision);

}  // namespace tofmcl
