#include "common/error.hpp"

namespace tofmcl::detail {

[[noreturn]] void throw_precondition_failure(const char* expr, const char* msg,
                                             const std::source_location& loc) {
  std::string what = "precondition failed: ";
  what += expr;
  what += " — ";
  what += msg;
  what += " (";
  what += loc.file_name();
  what += ":";
  what += std::to_string(loc.line());
  what += ")";
  throw PreconditionError(what);
}

}  // namespace tofmcl::detail
