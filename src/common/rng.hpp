#pragma once
/// \file rng.hpp
/// \brief Deterministic, seedable random number generation.
///
/// All stochastic components (motion noise, sensor noise, resampling,
/// particle initialization) draw from this generator so that every
/// experiment in the paper-reproduction suite is reproducible from a single
/// seed. The engine is xoshiro256++ (small state, excellent statistical
/// quality, trivially portable), seeded through SplitMix64 as recommended by
/// its authors.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace tofmcl {

/// SplitMix64: used to expand a single 64-bit seed into engine state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ engine. Satisfies the essentials of
/// std::uniform_random_bit_generator so it can be used with <random>
/// distributions, though tofmcl uses its own distribution helpers for exact
/// cross-platform reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit constexpr Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  constexpr std::uint64_t operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Marsaglia polar method (cached second deviate).
  double gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * factor;
    has_cached_ = true;
    return u * factor;
  }

  /// Normal with the given mean and standard deviation (σ ≥ 0).
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Returns true with probability p (clamped to [0, 1]).
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child generator; used to give each sequence,
  /// seed-repetition and worker its own stream.
  constexpr Rng fork() { return Rng(next()); }

  /// Full generator state for snapshot/restore. The cached Gaussian
  /// deviate is part of the state: dropping it would desynchronize every
  /// stream restored mid-pair from its straight-through twin.
  struct Snapshot {
    std::array<std::uint64_t, 4> state{};
    double cached = 0.0;
    bool has_cached = false;
  };

  constexpr Snapshot snapshot() const { return {state_, cached_, has_cached_}; }

  constexpr void restore(const Snapshot& s) {
    state_ = s.state;
    cached_ = s.cached;
    has_cached_ = s.has_cached;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace tofmcl
