#pragma once
/// \file angles.hpp
/// \brief Angle arithmetic on the circle group.
///
/// Yaw estimation requires care: averaging particle orientations
/// arithmetically fails across the ±π seam, so pose computation uses the
/// circular (vector) mean, and convergence checks use the wrapped
/// difference.

#include <cmath>
#include <numbers>
#include <span>

namespace tofmcl {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

constexpr double deg_to_rad(double deg) { return deg * kPi / 180.0; }
constexpr double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

/// Wrap an angle to (-π, π].
inline double wrap_pi(double angle) {
  angle = std::remainder(angle, kTwoPi);
  // std::remainder yields [-π, π]; map the open end -π to +π.
  if (angle <= -kPi) angle += kTwoPi;
  return angle;
}

/// Wrap an angle to [0, 2π).
inline double wrap_two_pi(double angle) {
  angle = std::fmod(angle, kTwoPi);
  if (angle < 0.0) angle += kTwoPi;
  return angle;
}

/// Signed smallest difference a − b on the circle, in (-π, π].
inline double angle_diff(double a, double b) { return wrap_pi(a - b); }

/// Absolute angular distance between two headings, in [0, π].
inline double angle_dist(double a, double b) {
  return std::abs(angle_diff(a, b));
}

/// Weighted circular mean of headings. Returns 0 for empty input or when
/// the resultant vector (nearly) vanishes — antipodal mass has no
/// well-defined mean, so the standard degenerate-case convention applies.
/// The degeneracy test is relative to the total weight, which absorbs
/// floating-point residue from exactly-cancelling configurations.
inline double circular_mean(std::span<const double> angles,
                            std::span<const double> weights) {
  double sx = 0.0;
  double sy = 0.0;
  double total = 0.0;
  const std::size_t n = std::min(angles.size(), weights.size());
  for (std::size_t i = 0; i < n; ++i) {
    sx += weights[i] * std::cos(angles[i]);
    sy += weights[i] * std::sin(angles[i]);
    total += std::abs(weights[i]);
  }
  if (sx * sx + sy * sy <= 1e-24 * total * total) return 0.0;
  return std::atan2(sy, sx);
}

/// Unweighted circular mean.
inline double circular_mean(std::span<const double> angles) {
  double sx = 0.0;
  double sy = 0.0;
  for (const double a : angles) {
    sx += std::cos(a);
    sy += std::sin(a);
  }
  const auto total = static_cast<double>(angles.size());
  if (sx * sx + sy * sy <= 1e-24 * total * total) return 0.0;
  return std::atan2(sy, sx);
}

/// Linear interpolation on the circle along the shorter arc.
/// t = 0 returns a (wrapped), t = 1 returns b (wrapped).
inline double slerp_angle(double a, double b, double t) {
  return wrap_pi(a + t * angle_diff(b, a));
}

}  // namespace tofmcl
