#include "serve/session.hpp"

#include <utility>

#include "map/snapshot_io.hpp"

namespace tofmcl::serve {

namespace {

constexpr std::uint32_t kSessionMagic = 0x53455353u;  // "SESS"
constexpr std::uint16_t kSessionVersion = 1;

core::SessionKnobs knobs_of(const SessionOptions& opts) {
  core::SessionKnobs knobs;
  knobs.seed = opts.config.mcl.seed;
  knobs.num_particles = opts.config.mcl.num_particles;
  return knobs;
}

}  // namespace

Session::Session(Unstarted, std::size_t id, std::string map_key,
                 std::shared_ptr<const core::ScoringContext> ctx,
                 const SessionOptions& opts)
    : id_(id),
      map_key_(std::move(map_key)),
      localizer_(std::move(ctx), knobs_of(opts), executor_),
      capacity_(opts.queue_capacity) {
  TOFMCL_EXPECTS(capacity_ >= 1, "session queue capacity must be >= 1");
}

Session::Session(std::size_t id, std::string map_key,
                 std::shared_ptr<const core::ScoringContext> ctx,
                 const SessionOptions& opts)
    : Session(Unstarted{}, id, std::move(map_key), std::move(ctx), opts) {
  if (opts.start) {
    localizer_.start_at(opts.start->pose, opts.start->sigma_xy,
                        opts.start->sigma_yaw);
  } else {
    localizer_.start_global();
  }
  refresh_footprint();
}

Session::Session(std::size_t id, std::string map_key,
                 std::shared_ptr<const core::ScoringContext> ctx,
                 const SessionOptions& opts, std::span<const std::byte> blob)
    : Session(Unstarted{}, id, std::move(map_key), std::move(ctx), opts) {
  map::SnapshotReader reader(blob);
  if (reader.u32() != kSessionMagic) {
    throw IoError("session snapshot: bad magic");
  }
  const std::uint16_t version = reader.u16();
  if (version != kSessionVersion) {
    throw IoError("session snapshot: version " + std::to_string(version) +
                  " != supported " + std::to_string(kSessionVersion));
  }
  corrections_ = reader.u64();
  processed_inputs_ = reader.u64();
  dropped_inputs_ = reader.u64();
  const std::uint64_t latency_count = reader.u64();
  for (std::uint64_t i = 0; i < latency_count; ++i) {
    latency_.record(reader.f64());
  }
  const std::uint64_t trace_count = reader.u64();
  trace_.reserve(trace_count);
  for (std::uint64_t i = 0; i < trace_count; ++i) {
    CorrectionRecord rec;
    rec.t = reader.f64();
    rec.pose.position.x = reader.f64();
    rec.pose.position.y = reader.f64();
    rec.pose.yaw = reader.f64();
    trace_.push_back(rec);
  }
  localizer_.load_snapshot(reader);
  if (!reader.exhausted()) {
    throw IoError("session snapshot: trailing bytes");
  }
  refresh_footprint();
}

void Session::refresh_footprint() {
  active_particles_.store(localizer_.active_particles(),
                          std::memory_order_relaxed);
  resident_bytes_.store(localizer_.resident_particle_bytes(),
                        std::memory_order_relaxed);
}

std::vector<std::byte> Session::snapshot() const {
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    TOFMCL_EXPECTS(queue_.empty(),
                   "cannot snapshot a session with pending inputs "
                   "(pump first)");
    dropped = dropped_inputs_;
  }
  map::SnapshotWriter writer;
  writer.u32(kSessionMagic);
  writer.u16(kSessionVersion);
  writer.u64(corrections_);
  writer.u64(processed_inputs_);
  writer.u64(dropped);
  writer.u64(latency_.count());
  for (const double v : latency_.samples()) writer.f64(v);
  writer.u64(trace_.size());
  for (const CorrectionRecord& rec : trace_) {
    writer.f64(rec.t);
    writer.f64(rec.pose.position.x);
    writer.f64(rec.pose.position.y);
    writer.f64(rec.pose.yaw);
  }
  localizer_.save_snapshot(writer);
  return writer.take();
}

Admission Session::push(SessionInput input) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (queue_.size() >= capacity_) {
    queue_.pop_front();
    ++dropped_inputs_;
    queue_.push_back(std::move(input));
    return Admission::kDroppedOldest;
  }
  queue_.push_back(std::move(input));
  return queue_.size() * 2 >= capacity_ ? Admission::kSaturated
                                        : Admission::kAccepted;
}

bool Session::has_pending() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return !queue_.empty();
}

std::size_t Session::process_pending() {
  // Take the whole backlog in one swap so producers are blocked for a
  // pointer exchange, not for the filter work.
  std::deque<SessionInput> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    batch.swap(queue_);
  }
  std::size_t corrected_now = 0;
  std::size_t processed_now = 0;
  // New latency samples land in a local scratch and merge under the stats
  // guard once per batch, so a concurrent report() never observes the
  // recorder mid-append and the hot loop takes no lock per correction.
  std::vector<double> latencies;
  for (SessionInput& input : batch) {
    localizer_.on_odometry(input.odometry);
    if (!input.frames.empty()) {
      if (localizer_.on_frames(input.frames)) {
        ++corrected_now;
        latencies.push_back(localizer_.last_correction_seconds());
        trace_.push_back({input.t, localizer_.estimate().pose});
      }
    }
    ++processed_now;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (const double s : latencies) latency_.record(s);
  }
  processed_inputs_.fetch_add(processed_now, std::memory_order_relaxed);
  corrections_.fetch_add(corrected_now, std::memory_order_relaxed);
  refresh_footprint();
  return corrected_now;
}

}  // namespace tofmcl::serve
