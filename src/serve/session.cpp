#include "serve/session.hpp"

#include <utility>

namespace tofmcl::serve {

Session::Session(std::size_t id, std::string map_key,
                 std::shared_ptr<const core::MapResources> maps,
                 const SessionOptions& opts)
    : id_(id),
      map_key_(std::move(map_key)),
      localizer_(std::move(maps), opts.config, executor_),
      capacity_(opts.queue_capacity) {
  TOFMCL_EXPECTS(capacity_ >= 1, "session queue capacity must be >= 1");
  if (opts.start) {
    localizer_.start_at(opts.start->pose, opts.start->sigma_xy,
                        opts.start->sigma_yaw);
  } else {
    localizer_.start_global();
  }
}

Admission Session::push(SessionInput input) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (queue_.size() >= capacity_) {
    queue_.pop_front();
    ++dropped_inputs_;
    queue_.push_back(std::move(input));
    return Admission::kDroppedOldest;
  }
  queue_.push_back(std::move(input));
  return queue_.size() * 2 >= capacity_ ? Admission::kSaturated
                                        : Admission::kAccepted;
}

bool Session::has_pending() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return !queue_.empty();
}

std::size_t Session::process_pending() {
  // Take the whole backlog in one swap so producers are blocked for a
  // pointer exchange, not for the filter work.
  std::deque<SessionInput> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    batch.swap(queue_);
  }
  std::size_t corrected_now = 0;
  for (SessionInput& input : batch) {
    localizer_.on_odometry(input.odometry);
    if (!input.frames.empty()) {
      if (localizer_.on_frames(input.frames)) {
        ++corrected_now;
        latency_.record(localizer_.last_correction_seconds());
        trace_.push_back({input.t, localizer_.estimate().pose});
      }
    }
    ++processed_inputs_;
  }
  corrections_ += corrected_now;
  return corrected_now;
}

}  // namespace tofmcl::serve
