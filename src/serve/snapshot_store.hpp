#pragma once
/// \file snapshot_store.hpp
/// \brief Pluggable backing store for evicted-session snapshot blobs.
///
/// When the SessionManager evicts an idle session it serializes the full
/// session state (counters, latency samples, trace, FilterState) into a
/// versioned blob and parks it here until traffic returns. The store is
/// plain keyed bytes — it knows nothing about the blob format, which is
/// already versioned and bit-exact (serve::Session's 'SESS' wrapper
/// around the Localizer's 'TOFM' snapshot).
///
/// The seam exists so the blobs can outlive one manager instance:
/// several SessionManagers sharing one store can hand evicted sessions
/// to each other (rebalancing — manager A evicts into the store, manager
/// B takes the blob and restores it bit-identically), and the
/// file-backed implementation persists blobs across process restarts,
/// the substrate for cross-process rebalancing.
///
/// Implementations must be thread-safe: pushes restoring evicted
/// sessions call take() from any producer thread while evictions put()
/// from the sweep thread.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

namespace tofmcl::serve {

class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  /// Parks `blob` under `id`, replacing any previous blob for the id.
  virtual void put(std::uint64_t id, std::vector<std::byte> blob) = 0;

  /// Removes and returns the blob parked under `id`, or nullopt when the
  /// id has no parked blob.
  virtual std::optional<std::vector<std::byte>> take(std::uint64_t id) = 0;

  /// Number of parked blobs.
  virtual std::size_t count() const = 0;

  /// Total parked payload bytes (the idle-footprint metric reports use).
  virtual std::size_t bytes() const = 0;
};

/// The default store: blobs held in a mutex-guarded map. Exactly the
/// semantics the MapCatalog's built-in stash used to provide.
class InMemorySnapshotStore final : public SnapshotStore {
 public:
  void put(std::uint64_t id, std::vector<std::byte> blob) override;
  std::optional<std::vector<std::byte>> take(std::uint64_t id) override;
  std::size_t count() const override;
  std::size_t bytes() const override;

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::vector<std::byte>> blobs_;
  std::size_t bytes_ = 0;
};

/// One file per parked blob ("<id>.snap" under `dir`), so parked
/// sessions survive the process and a second process (or a later run)
/// can pick them up: the constructor scans the directory and adopts
/// every existing blob file into its index. Blob contents are written
/// and read back byte-for-byte — a file round-trip is bitwise equal to
/// the in-memory store's (tests/test_serve.cpp gates on this).
class FileSnapshotStore final : public SnapshotStore {
 public:
  /// Creates `dir` when missing and indexes any "*.snap" files already
  /// present. Throws common::IoError when the directory cannot be
  /// created.
  explicit FileSnapshotStore(std::filesystem::path dir);

  void put(std::uint64_t id, std::vector<std::byte> blob) override;
  std::optional<std::vector<std::byte>> take(std::uint64_t id) override;
  std::size_t count() const override;
  std::size_t bytes() const override;

  const std::filesystem::path& directory() const { return dir_; }

 private:
  std::filesystem::path path_of(std::uint64_t id) const;

  std::filesystem::path dir_;
  mutable std::mutex mutex_;
  /// id -> payload size; the index spares take()/bytes() a disk stat.
  std::map<std::uint64_t, std::size_t> sizes_;
  std::size_t bytes_ = 0;
};

}  // namespace tofmcl::serve
