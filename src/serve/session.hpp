#pragma once
/// \file session.hpp
/// \brief One live localization session: a Localizer behind a bounded
/// admission-controlled frame queue.
///
/// The serving split: producers (radio links, replay threads) call
/// `push()` from any thread — it only touches the queue under its own
/// mutex. The SessionManager's pump calls `process_pending()` with
/// exactly one invocation in flight per session (the pool's TaskGroup
/// guarantees it), which drains the queue into the Localizer. The
/// Localizer itself stays single-threaded-by-contract; the session IS
/// the serialization the contract demands, and the Localizer's
/// SerialGuard asserts it.
///
/// Admission control is drop-oldest: a full queue evicts its oldest
/// input to admit the new one (a live localizer wants the freshest
/// sensor data — re-localizing from recent frames beats replaying stale
/// ones), counts the eviction, and reports backpressure to the caller:
/// `kSaturated` when the queue crosses half capacity ("slow down"),
/// `kDroppedOldest` when data was actually lost ("you are too slow").

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/localizer.hpp"
#include "serve/latency.hpp"

namespace tofmcl::serve {

/// One timestamped input tick: the odometry estimate plus the ToF frames
/// captured at that instant (frames may be empty for odometry-only ticks).
struct SessionInput {
  double t = 0.0;
  Pose2 odometry{};
  std::vector<sensor::TofFrame> frames;
};

/// Backpressure signal returned by push().
enum class Admission {
  kAccepted,       ///< Queued with room to spare.
  kSaturated,      ///< Queued, but the queue is at least half full.
  kDroppedOldest,  ///< Queued by evicting the oldest pending input.
};

/// One correction's output, in arrival order (the determinism trace).
struct CorrectionRecord {
  double t = 0.0;
  Pose2 pose{};
};

/// Initial pose hypothesis; absent means global localization.
struct StartPose {
  Pose2 pose{};
  double sigma_xy = 0.1;
  double sigma_yaw = 0.05;
};

struct SessionOptions {
  core::LocalizerConfig config;
  std::size_t queue_capacity = 8;
  std::optional<StartPose> start;
};

class Session {
 public:
  /// Starts the localizer (tracking from `opts.start`, else global) on the
  /// shared per-map ScoringContext; the session contributes only its
  /// SessionKnobs (seed and particle budget from `opts.config.mcl`).
  Session(std::size_t id, std::string map_key,
          std::shared_ptr<const core::ScoringContext> ctx,
          const SessionOptions& opts);

  /// Restores a previously snapshotted session instead of starting fresh:
  /// counters, latency samples, the correction trace and the full filter
  /// state come from `blob` (written by snapshot()), so the session
  /// resumes bit-identically where it left off. Throws common::IoError on
  /// a malformed/mis-versioned blob, PreconditionError when the blob was
  /// taken under different knobs than `opts` carries.
  Session(std::size_t id, std::string map_key,
          std::shared_ptr<const core::ScoringContext> ctx,
          const SessionOptions& opts, std::span<const std::byte> blob);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Serializes everything session-local — counters, latency samples,
  /// correction trace, and the Localizer snapshot (odometry anchors +
  /// FilterState) — as a versioned binary blob. Precondition: no pending
  /// inputs (snapshot between pumps, after the queue drained); asserted.
  std::vector<std::byte> snapshot() const;

  std::size_t id() const { return id_; }
  const std::string& map_key() const { return map_key_; }

  /// Thread-safe enqueue with drop-oldest admission control.
  Admission push(SessionInput input);

  /// True when inputs are queued. Racy by nature (a producer may push
  /// right after); the pump uses it only to skip idle sessions.
  bool has_pending() const;

  /// Drains the queue through the localizer. NOT thread-safe with itself
  /// — the SessionManager runs at most one invocation per session at a
  /// time (concurrent pushes are fine). Returns corrections run.
  std::size_t process_pending();

  // --- accounting ---------------------------------------------------------
  // The counters and the latency merge are safe to read WHILE a pump task
  // is running process_pending() (SessionManager::report() does exactly
  // that): counters are relaxed atomics written only by the serialized
  // pump task, and the latency recorder is guarded by its own mutex.
  std::size_t corrections() const {
    return corrections_.load(std::memory_order_relaxed);
  }
  std::size_t processed_inputs() const {
    return processed_inputs_.load(std::memory_order_relaxed);
  }
  std::size_t dropped_inputs() const {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return dropped_inputs_;
  }
  /// Active particle count / resident SoA bytes as of the last completed
  /// correction batch — cached so report() never reads the localizer's
  /// filter state while a pump task mutates it.
  std::size_t active_particles() const {
    return active_particles_.load(std::memory_order_relaxed);
  }
  std::size_t resident_particle_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  /// Merges every latency sample recorded so far into `out`, snapshotted
  /// under the recorder's guard — the report()-during-pump-safe read.
  void merge_latency_into(LatencyRecorder& out) const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out.merge(latency_);
  }
  /// Raw recorder/trace access for between-pump readers only (tests,
  /// trace dumps, snapshot): a pump task appends to both without the
  /// stats guard held for the whole batch.
  const LatencyRecorder& latency() const { return latency_; }
  const std::vector<CorrectionRecord>& trace() const { return trace_; }
  const core::Localizer& localizer() const { return localizer_; }

 private:
  /// Tag-dispatched common ctor: builds the localizer on the context but
  /// leaves it unstarted (the public ctors then start or restore it).
  struct Unstarted {};
  Session(Unstarted, std::size_t id, std::string map_key,
          std::shared_ptr<const core::ScoringContext> ctx,
          const SessionOptions& opts);

  std::size_t id_;
  std::string map_key_;
  /// Per-filter chunk execution stays serial: the serving layer extracts
  /// parallelism ACROSS sessions, not within one.
  core::SerialExecutor executor_;
  core::Localizer localizer_;
  std::size_t capacity_;

  /// Re-caches active_particles_/resident_bytes_ from the localizer;
  /// called at start/restore and after each correction batch.
  void refresh_footprint();

  mutable std::mutex queue_mutex_;
  std::deque<SessionInput> queue_;
  std::size_t dropped_inputs_ = 0;  ///< Guarded by queue_mutex_.

  // Written only by process_pending (externally serialized); atomics so
  // report() may read them while a pump task is mid-batch.
  std::atomic<std::size_t> corrections_{0};
  std::atomic<std::size_t> processed_inputs_{0};
  std::atomic<std::size_t> active_particles_{0};
  std::atomic<std::size_t> resident_bytes_{0};
  /// Guards latency_ appends/merges (report() merges mid-pump).
  mutable std::mutex stats_mutex_;
  LatencyRecorder latency_;
  std::vector<CorrectionRecord> trace_;
};

}  // namespace tofmcl::serve
