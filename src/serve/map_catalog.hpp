#pragma once
/// \file map_catalog.hpp
/// \brief Keyed once-map of shared per-map localization resources.
///
/// Building core::MapResources (EDT + quantized EDT + likelihood LUT) is
/// the expensive per-map step — hundreds of milliseconds for a large
/// world. When two sessions request the same map concurrently, exactly
/// one build must run and both must receive the SAME immutable object
/// (pointer identity matters: the whole point of MapResources is that N
/// sessions share one copy). The naive check-then-build under a mutex
/// either serializes unrelated builds behind one global lock or, when the
/// lock is dropped around the build, races into duplicate construction.
///
/// MapCatalog resolves this with a keyed once-map: the map holds a
/// shared_future per key, the winner of the insert runs the builder
/// OUTSIDE the lock (concurrent builds of DIFFERENT maps proceed in
/// parallel), and everyone else blocks on the future. A failed build
/// erases its entry so a later request can retry instead of caching the
/// exception forever; callers already waiting on the failed future get
/// the exception rethrown.
///
/// The same once-map pattern builds shared core::ScoringContext objects,
/// keyed by (map key, scoring fingerprint): every session whose config
/// differs only in SessionKnobs shares one context — one arena, one
/// resolved config — on top of the shared resources.
///
/// (Evicted-session snapshot blobs used to be stashed here too; they now
/// live behind the pluggable serve::SnapshotStore seam so blobs can be
/// shared between manager instances and persisted to disk.)

#include <cstddef>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/localizer.hpp"

namespace tofmcl::serve {

class MapCatalog {
 public:
  using Resources = std::shared_ptr<const core::MapResources>;
  using Builder = std::function<Resources()>;
  using Context = std::shared_ptr<const core::ScoringContext>;
  using ContextBuilder = std::function<Context()>;

  /// Returns the resources for `key`, invoking `build` exactly once per
  /// key across all concurrent callers (the winner builds, the rest wait
  /// on its future). Rethrows the builder's exception to every caller of
  /// the failed attempt, then forgets the entry so the next request
  /// retries.
  Resources get_or_build(const std::string& key, const Builder& build);

  /// Same once-build contract for shared scoring contexts. Key by
  /// map key + core::scoring_fingerprint(config) so sessions differing
  /// only in SessionKnobs land on one context.
  Context get_or_build_context(const std::string& key,
                               const ContextBuilder& build);

  /// Number of successfully built (or in-flight) resource entries.
  std::size_t size() const;
  /// Number of successfully built (or in-flight) context entries.
  std::size_t context_count() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_future<Resources>> built_;
  std::map<std::string, std::shared_future<Context>> contexts_;
};

}  // namespace tofmcl::serve
