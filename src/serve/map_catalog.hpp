#pragma once
/// \file map_catalog.hpp
/// \brief Keyed once-map of shared per-map localization resources.
///
/// Building core::MapResources (EDT + quantized EDT + likelihood LUT) is
/// the expensive per-map step — hundreds of milliseconds for a large
/// world. When two sessions request the same map concurrently, exactly
/// one build must run and both must receive the SAME immutable object
/// (pointer identity matters: the whole point of MapResources is that N
/// sessions share one copy). The naive check-then-build under a mutex
/// either serializes unrelated builds behind one global lock or, when the
/// lock is dropped around the build, races into duplicate construction.
///
/// MapCatalog resolves this with a keyed once-map: the map holds a
/// shared_future per key, the winner of the insert runs the builder
/// OUTSIDE the lock (concurrent builds of DIFFERENT maps proceed in
/// parallel), and everyone else blocks on the future. A failed build
/// erases its entry so a later request can retry instead of caching the
/// exception forever; callers already waiting on the failed future get
/// the exception rethrown.

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/localizer.hpp"

namespace tofmcl::serve {

class MapCatalog {
 public:
  using Resources = std::shared_ptr<const core::MapResources>;
  using Builder = std::function<Resources()>;

  /// Returns the resources for `key`, invoking `build` exactly once per
  /// key across all concurrent callers (the winner builds, the rest wait
  /// on its future). Rethrows the builder's exception to every caller of
  /// the failed attempt, then forgets the entry so the next request
  /// retries.
  Resources get_or_build(const std::string& key, const Builder& build);

  /// Number of successfully built (or in-flight) entries.
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_future<Resources>> built_;
};

}  // namespace tofmcl::serve
