#pragma once
/// \file map_catalog.hpp
/// \brief Keyed once-map of shared per-map localization resources.
///
/// Building core::MapResources (EDT + quantized EDT + likelihood LUT) is
/// the expensive per-map step — hundreds of milliseconds for a large
/// world. When two sessions request the same map concurrently, exactly
/// one build must run and both must receive the SAME immutable object
/// (pointer identity matters: the whole point of MapResources is that N
/// sessions share one copy). The naive check-then-build under a mutex
/// either serializes unrelated builds behind one global lock or, when the
/// lock is dropped around the build, races into duplicate construction.
///
/// MapCatalog resolves this with a keyed once-map: the map holds a
/// shared_future per key, the winner of the insert runs the builder
/// OUTSIDE the lock (concurrent builds of DIFFERENT maps proceed in
/// parallel), and everyone else blocks on the future. A failed build
/// erases its entry so a later request can retry instead of caching the
/// exception forever; callers already waiting on the failed future get
/// the exception rethrown.
///
/// The same once-map pattern builds shared core::ScoringContext objects,
/// keyed by (map key, scoring fingerprint): every session whose config
/// differs only in SessionKnobs shares one context — one arena, one
/// resolved config — on top of the shared resources.
///
/// The catalog is also the serving layer's snapshot BACKING STORE:
/// evicted sessions park their serialized FilterState blobs here (keyed
/// by session id) until a later push restores them. The store is plain
/// keyed bytes — it knows nothing about the blob format.

#include <cstddef>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/localizer.hpp"

namespace tofmcl::serve {

class MapCatalog {
 public:
  using Resources = std::shared_ptr<const core::MapResources>;
  using Builder = std::function<Resources()>;
  using Context = std::shared_ptr<const core::ScoringContext>;
  using ContextBuilder = std::function<Context()>;

  /// Returns the resources for `key`, invoking `build` exactly once per
  /// key across all concurrent callers (the winner builds, the rest wait
  /// on its future). Rethrows the builder's exception to every caller of
  /// the failed attempt, then forgets the entry so the next request
  /// retries.
  Resources get_or_build(const std::string& key, const Builder& build);

  /// Same once-build contract for shared scoring contexts. Key by
  /// map key + core::scoring_fingerprint(config) so sessions differing
  /// only in SessionKnobs land on one context.
  Context get_or_build_context(const std::string& key,
                               const ContextBuilder& build);

  /// Number of successfully built (or in-flight) resource entries.
  std::size_t size() const;
  /// Number of successfully built (or in-flight) context entries.
  std::size_t context_count() const;

  /// Parks an evicted session's snapshot blob under its session id
  /// (replacing any previous blob for that id).
  void stash_snapshot(std::size_t session_id, std::vector<std::byte> blob);
  /// Removes and returns the blob stashed for `session_id`, or nullopt.
  std::optional<std::vector<std::byte>> take_snapshot(std::size_t session_id);
  /// Number of parked snapshots / their total payload bytes.
  std::size_t stashed_snapshots() const;
  std::size_t stashed_snapshot_bytes() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_future<Resources>> built_;
  std::map<std::string, std::shared_future<Context>> contexts_;
  std::map<std::size_t, std::vector<std::byte>> snapshots_;
  std::size_t snapshot_bytes_ = 0;
};

}  // namespace tofmcl::serve
