#pragma once
/// \file latency.hpp
/// \brief Per-correction latency accounting for the serving layer.
///
/// Each session records the wall-clock duration of every correction into
/// its own recorder (no cross-session contention on the hot path); the
/// SessionManager merges recorders per map and globally when a report is
/// requested. Percentiles are computed exactly from the raw samples —
/// bench runs are bounded (ticks × sessions), so the sample vectors stay
/// small enough that a lossy sketch is not worth its determinism caveats.

#include <cstddef>
#include <vector>

namespace tofmcl::serve {

/// Order statistics of a merged latency sample set, seconds.
struct LatencySummary {
  std::size_t count = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double mean = 0.0;
  double max = 0.0;
  /// True when the sample set was too small to resolve a reported tail
  /// quantile (p99 needs ≥100 samples, p999 ≥1000). The unresolvable
  /// quantiles are clamped to max instead of interpolating between the
  /// top two order statistics — interpolation there UNDER-reports the
  /// tail, which is the one direction a latency report must not err.
  bool low_sample = false;
};

class LatencyRecorder {
 public:
  void record(double seconds) { samples_.push_back(seconds); }
  void merge(const LatencyRecorder& other);
  std::size_t count() const { return samples_.size(); }
  const std::vector<double>& samples() const { return samples_; }

  /// p50/p99/p999/mean/max of everything recorded so far.
  LatencySummary summarize() const;

 private:
  std::vector<double> samples_;
};

}  // namespace tofmcl::serve
