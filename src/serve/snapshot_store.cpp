#include "serve/snapshot_store.hpp"

#include <fstream>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace tofmcl::serve {

// ---------------------------------------------------------------------------
// InMemorySnapshotStore
// ---------------------------------------------------------------------------

void InMemorySnapshotStore::put(std::uint64_t id, std::vector<std::byte> blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = blobs_[id];
  bytes_ -= slot.size();
  slot = std::move(blob);
  bytes_ += slot.size();
}

std::optional<std::vector<std::byte>> InMemorySnapshotStore::take(
    std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blobs_.find(id);
  if (it == blobs_.end()) return std::nullopt;
  std::vector<std::byte> blob = std::move(it->second);
  bytes_ -= blob.size();
  blobs_.erase(it);
  return blob;
}

std::size_t InMemorySnapshotStore::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.size();
}

std::size_t InMemorySnapshotStore::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

// ---------------------------------------------------------------------------
// FileSnapshotStore
// ---------------------------------------------------------------------------

FileSnapshotStore::FileSnapshotStore(std::filesystem::path dir)
    : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw IoError("snapshot store: cannot create directory " + dir_.string());
  }
  // Adopt blobs a previous process (or manager) parked here: the index is
  // rebuilt from the files themselves, so a restart resumes where the
  // last run's evictions left off.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".snap") {
      continue;
    }
    std::uint64_t id = 0;
    try {
      id = std::stoull(entry.path().stem().string());
    } catch (const std::exception&) {
      continue;  // Foreign file; not ours to index.
    }
    const std::size_t size = static_cast<std::size_t>(entry.file_size());
    sizes_[id] = size;
    bytes_ += size;
  }
}

std::filesystem::path FileSnapshotStore::path_of(std::uint64_t id) const {
  return dir_ / (std::to_string(id) + ".snap");
}

void FileSnapshotStore::put(std::uint64_t id, std::vector<std::byte> blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::filesystem::path path = path_of(id);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) throw IoError("snapshot store: cannot open " + path.string());
    os.write(reinterpret_cast<const char*>(blob.data()),
             static_cast<std::streamsize>(blob.size()));
    if (!os) throw IoError("snapshot store: short write to " + path.string());
  }
  auto& size = sizes_[id];
  bytes_ -= size;
  size = blob.size();
  bytes_ += size;
}

std::optional<std::vector<std::byte>> FileSnapshotStore::take(
    std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sizes_.find(id);
  if (it == sizes_.end()) return std::nullopt;
  const std::filesystem::path path = path_of(id);
  std::vector<std::byte> blob(it->second);
  {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw IoError("snapshot store: cannot open " + path.string());
    is.read(reinterpret_cast<char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
    if (static_cast<std::size_t>(is.gcount()) != blob.size()) {
      throw IoError("snapshot store: short read from " + path.string());
    }
  }
  bytes_ -= it->second;
  sizes_.erase(it);
  std::error_code ec;
  std::filesystem::remove(path, ec);  // Best effort; the index is gone.
  return blob;
}

std::size_t FileSnapshotStore::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sizes_.size();
}

std::size_t FileSnapshotStore::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

}  // namespace tofmcl::serve
