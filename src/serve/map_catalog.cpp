#include "serve/map_catalog.hpp"

#include <utility>

namespace tofmcl::serve {

namespace {

/// The keyed once-map shared by resources and contexts: the winner of the
/// insert builds OUTSIDE the lock, everyone else waits on its future, and
/// a failed build erases its own entry so a later request retries.
template <typename T>
T get_or_build_once(std::mutex& mutex,
                    std::map<std::string, std::shared_future<T>>& built,
                    const std::string& key,
                    const std::function<T()>& build) {
  std::promise<T> promise;
  std::shared_future<T> future;
  bool winner = false;
  {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = built.find(key);
    if (it != built.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      built.emplace(key, future);
      winner = true;
    }
  }
  if (!winner) return future.get();

  // Build outside the lock so different keys construct concurrently.
  try {
    promise.set_value(build());
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(mutex);
      // Forget the failed attempt so the next request retries. Only erase
      // our own future: a retry may already have replaced the entry.
      const auto it = built.find(key);
      if (it != built.end()) built.erase(it);
    }
    future.get();  // Rethrows for this caller too.
  }
  return future.get();
}

}  // namespace

MapCatalog::Resources MapCatalog::get_or_build(const std::string& key,
                                               const Builder& build) {
  return get_or_build_once(mutex_, built_, key, build);
}

MapCatalog::Context MapCatalog::get_or_build_context(
    const std::string& key, const ContextBuilder& build) {
  return get_or_build_once(mutex_, contexts_, key, build);
}

std::size_t MapCatalog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return built_.size();
}

std::size_t MapCatalog::context_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return contexts_.size();
}

}  // namespace tofmcl::serve
