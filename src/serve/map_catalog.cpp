#include "serve/map_catalog.hpp"

#include <utility>

namespace tofmcl::serve {

MapCatalog::Resources MapCatalog::get_or_build(const std::string& key,
                                               const Builder& build) {
  std::promise<Resources> promise;
  std::shared_future<Resources> future;
  bool winner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = built_.find(key);
    if (it != built_.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      built_.emplace(key, future);
      winner = true;
    }
  }
  if (!winner) return future.get();

  // Build outside the lock so different maps construct concurrently.
  try {
    promise.set_value(build());
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Forget the failed attempt so the next request retries. Only erase
      // our own future: a retry may already have replaced the entry.
      const auto it = built_.find(key);
      if (it != built_.end()) built_.erase(it);
    }
    future.get();  // Rethrows for this caller too.
  }
  return future.get();
}

std::size_t MapCatalog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return built_.size();
}

}  // namespace tofmcl::serve
