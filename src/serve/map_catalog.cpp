#include "serve/map_catalog.hpp"

#include <utility>

namespace tofmcl::serve {

namespace {

/// The keyed once-map shared by resources and contexts: the winner of the
/// insert builds OUTSIDE the lock, everyone else waits on its future, and
/// a failed build erases its own entry so a later request retries.
template <typename T>
T get_or_build_once(std::mutex& mutex,
                    std::map<std::string, std::shared_future<T>>& built,
                    const std::string& key,
                    const std::function<T()>& build) {
  std::promise<T> promise;
  std::shared_future<T> future;
  bool winner = false;
  {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = built.find(key);
    if (it != built.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      built.emplace(key, future);
      winner = true;
    }
  }
  if (!winner) return future.get();

  // Build outside the lock so different keys construct concurrently.
  try {
    promise.set_value(build());
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(mutex);
      // Forget the failed attempt so the next request retries. Only erase
      // our own future: a retry may already have replaced the entry.
      const auto it = built.find(key);
      if (it != built.end()) built.erase(it);
    }
    future.get();  // Rethrows for this caller too.
  }
  return future.get();
}

}  // namespace

MapCatalog::Resources MapCatalog::get_or_build(const std::string& key,
                                               const Builder& build) {
  return get_or_build_once(mutex_, built_, key, build);
}

MapCatalog::Context MapCatalog::get_or_build_context(
    const std::string& key, const ContextBuilder& build) {
  return get_or_build_once(mutex_, contexts_, key, build);
}

std::size_t MapCatalog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return built_.size();
}

std::size_t MapCatalog::context_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return contexts_.size();
}

void MapCatalog::stash_snapshot(std::size_t session_id,
                                std::vector<std::byte> blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = snapshots_[session_id];
  snapshot_bytes_ -= slot.size();
  slot = std::move(blob);
  snapshot_bytes_ += slot.size();
}

std::optional<std::vector<std::byte>> MapCatalog::take_snapshot(
    std::size_t session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = snapshots_.find(session_id);
  if (it == snapshots_.end()) return std::nullopt;
  std::vector<std::byte> blob = std::move(it->second);
  snapshot_bytes_ -= blob.size();
  snapshots_.erase(it);
  return blob;
}

std::size_t MapCatalog::stashed_snapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshots_.size();
}

std::size_t MapCatalog::stashed_snapshot_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_bytes_;
}

}  // namespace tofmcl::serve
