#include "serve/session_manager.hpp"
// TOFMCL_LINT_ALLOW_FILE(wall-clock): pump() measures its own wall time
// for the throughput report; correction traces never read the clock, and
// eviction idleness is counted in pump generations, not seconds.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <utility>

namespace tofmcl::serve {

SessionManager::SessionManager(ServeOptions opts) : opts_(opts) {
  if (opts_.threads > 0) pool_ = std::make_unique<ThreadPool>(opts_.threads);
}

void SessionManager::define_map(const std::string& key,
                                map::OccupancyGrid grid,
                                const core::MclConfig& mcl,
                                std::vector<core::Precision> precisions) {
  TOFMCL_EXPECTS(!precisions.empty(),
                 "a map definition needs at least one precision");
  std::lock_guard<std::mutex> lock(mutex_);
  TOFMCL_EXPECTS(definitions_.find(key) == definitions_.end(),
                 "map key already defined");
  definitions_.emplace(key, MapDefinition{std::move(grid), mcl,
                                          std::move(precisions), nullptr});
}

void SessionManager::define_map(const std::string& key,
                                MapCatalog::Resources maps) {
  TOFMCL_EXPECTS(maps != nullptr, "prebuilt map resources must be non-null");
  std::lock_guard<std::mutex> lock(mutex_);
  TOFMCL_EXPECTS(definitions_.find(key) == definitions_.end(),
                 "map key already defined");
  definitions_.emplace(
      key, MapDefinition{std::nullopt, {}, {}, std::move(maps)});
}

bool SessionManager::has_map(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return definitions_.find(key) != definitions_.end();
}

std::size_t SessionManager::open_session(const std::string& map_key,
                                         const SessionOptions& opts) {
  const MapDefinition* def = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = definitions_.find(map_key);
    TOFMCL_EXPECTS(it != definitions_.end(), "unknown map key");
    // Definitions are insert-only, so the pointer stays valid outside
    // the lock while the (possibly slow) resource build runs.
    def = &it->second;
  }
  auto maps = catalog_.get_or_build(map_key, [def] {
    if (def->prebuilt) return def->prebuilt;
    return core::build_map_resources(
        *def->grid, def->mcl,
        std::span<const core::Precision>(def->precisions));
  });
  // One ScoringContext per (map, scoring fingerprint): sessions that
  // differ only in SessionKnobs (seed, particle budget — excluded from
  // the fingerprint) share it, and with it the per-map particle arena.
  const std::string ctx_key =
      map_key + '\x1f' + core::scoring_fingerprint(opts.config);
  auto ctx = catalog_.get_or_build_context(ctx_key, [&maps, &opts] {
    return core::build_scoring_context(maps, opts.config);
  });
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t id = slots_.size();
  Slot slot;
  slot.live = std::make_unique<Session>(id, map_key, ctx, opts);
  slot.map_key = map_key;
  slot.ctx = std::move(ctx);
  slot.opts = opts;
  slots_.push_back(std::move(slot));
  return id;
}

Admission SessionManager::push(std::size_t session_id, SessionInput input) {
  Session* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TOFMCL_EXPECTS(session_id < slots_.size(), "unknown session id");
    Slot& slot = slots_[session_id];
    // Transparent restore: an evicted session comes back from its blob
    // the moment traffic returns. (Construction under the lock is the
    // exception to push() being cheap; it only happens on the first push
    // after an eviction.)
    if (!slot.live) restore_locked(slot, session_id);
    session = slot.live.get();
  }
  return session->push(std::move(input));
}

std::vector<SessionManager::PumpItem> SessionManager::snapshot_live() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PumpItem> out;
  out.reserve(slots_.size());
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    if (slots_[id].live) out.push_back({slots_[id].live.get(), id});
  }
  return out;
}

std::size_t SessionManager::pump() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<PumpItem> items = snapshot_live();
  std::vector<char> busy(items.size(), 0);
  std::size_t corrected = 0;
  if (!pool_) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (!items[i].session->has_pending()) continue;
      busy[i] = 1;
      corrected += items[i].session->process_pending();
    }
  } else {
    ThreadPool::TaskGroup group;
    std::atomic<std::size_t> total{0};
    for (std::size_t i = 0; i < items.size(); ++i) {
      Session* s = items[i].session;
      if (!s->has_pending()) continue;
      busy[i] = 1;
      // One task per busy session: the group wait below is the only
      // serialization a session needs — at most one process_pending per
      // session is ever in flight.
      pool_->submit([s, &total] { total += s->process_pending(); }, group);
    }
    pool_->wait(group);
    corrected = total.load();
  }
  {
    // Advance idle streaks: a pump generation is the eviction clock.
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < items.size(); ++i) {
      Slot& slot = slots_[items[i].id];
      // A slot restored mid-pump swapped Session objects; its fresh
      // counter is already 0 and the stale pointer must not touch it.
      if (slot.live.get() != items[i].session) continue;
      if (busy[i]) {
        slot.idle_pumps = 0;
      } else {
        ++slot.idle_pumps;
      }
    }
  }
  pump_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return corrected;
}

void SessionManager::evict_locked(Slot& slot, std::size_t id) {
  // Retain the stats report() needs while the Session object is gone;
  // the blob carries the same numbers for the eventual restore.
  slot.retained_corrections = slot.live->corrections();
  slot.retained_processed = slot.live->processed_inputs();
  slot.retained_dropped = slot.live->dropped_inputs();
  slot.retained_latency = slot.live->latency();
  catalog_.stash_snapshot(id, slot.live->snapshot());
  // Destroying the Session releases its SoA blocks into the arena pool.
  slot.live.reset();
}

void SessionManager::restore_locked(Slot& slot, std::size_t id) {
  auto blob = catalog_.take_snapshot(id);
  TOFMCL_EXPECTS(blob.has_value(), "evicted session has no stashed snapshot");
  slot.live = std::make_unique<Session>(id, slot.map_key, slot.ctx, slot.opts,
                                        std::span<const std::byte>(*blob));
  slot.idle_pumps = 0;
  // The restored Session carries its counters again.
  slot.retained_corrections = 0;
  slot.retained_processed = 0;
  slot.retained_dropped = 0;
  slot.retained_latency = LatencyRecorder{};
}

std::vector<std::byte> SessionManager::snapshot_session(
    std::size_t session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  TOFMCL_EXPECTS(session_id < slots_.size(), "unknown session id");
  TOFMCL_EXPECTS(slots_[session_id].live != nullptr,
                 "cannot snapshot an evicted session");
  return slots_[session_id].live->snapshot();
}

void SessionManager::restore_session(std::size_t session_id,
                                     std::span<const std::byte> blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  TOFMCL_EXPECTS(session_id < slots_.size(), "unknown session id");
  Slot& slot = slots_[session_id];
  if (slot.live) {
    TOFMCL_EXPECTS(!slot.live->has_pending(),
                   "cannot restore over pending inputs (pump first)");
  }
  // An explicit restore supersedes whatever eviction stashed.
  catalog_.take_snapshot(session_id);
  slot.live = std::make_unique<Session>(session_id, slot.map_key, slot.ctx,
                                        slot.opts, blob);
  slot.idle_pumps = 0;
  slot.retained_corrections = 0;
  slot.retained_processed = 0;
  slot.retained_dropped = 0;
  slot.retained_latency = LatencyRecorder{};
}

void SessionManager::evict_session(std::size_t session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  TOFMCL_EXPECTS(session_id < slots_.size(), "unknown session id");
  Slot& slot = slots_[session_id];
  TOFMCL_EXPECTS(slot.live != nullptr, "session already evicted");
  evict_locked(slot, session_id);
}

std::size_t SessionManager::evict_idle(std::size_t min_idle_pumps) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t evicted = 0;
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    Slot& slot = slots_[id];
    if (!slot.live) continue;
    if (slot.idle_pumps < min_idle_pumps) continue;
    if (slot.live->has_pending()) continue;
    evict_locked(slot, id);
    ++evicted;
  }
  return evicted;
}

std::size_t SessionManager::num_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

std::size_t SessionManager::live_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0;
  for (const Slot& slot : slots_) live += slot.live != nullptr;
  return live;
}

std::size_t SessionManager::evicted_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t evicted = 0;
  for (const Slot& slot : slots_) evicted += slot.live == nullptr;
  return evicted;
}

bool SessionManager::session_live(std::size_t session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  TOFMCL_EXPECTS(session_id < slots_.size(), "unknown session id");
  return slots_[session_id].live != nullptr;
}

const Session& SessionManager::session(std::size_t session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  TOFMCL_EXPECTS(session_id < slots_.size(), "unknown session id");
  TOFMCL_EXPECTS(slots_[session_id].live != nullptr,
                 "session is evicted (push to restore it)");
  return *slots_[session_id].live;
}

ServeReport SessionManager::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServeReport rep;
  rep.sessions = slots_.size();
  rep.pump_seconds = pump_seconds_;

  std::map<std::string, MapReport> by_map;
  std::map<std::string, LatencyRecorder> by_map_latency;
  LatencyRecorder global;
  std::set<const core::ParticleArena*> arenas;
  for (const Slot& slot : slots_) {
    MapReport& m = by_map[slot.map_key];
    m.map = slot.map_key;
    ++m.sessions;
    std::size_t corrections = 0, processed = 0, dropped = 0;
    const LatencyRecorder* latency = nullptr;
    if (slot.live) {
      ++rep.live_sessions;
      corrections = slot.live->corrections();
      processed = slot.live->processed_inputs();
      dropped = slot.live->dropped_inputs();
      latency = &slot.live->latency();
      rep.active_particles += slot.live->localizer().active_particles();
      rep.resident_particle_bytes +=
          slot.live->localizer().resident_particle_bytes();
    } else {
      ++rep.evicted_sessions;
      corrections = slot.retained_corrections;
      processed = slot.retained_processed;
      dropped = slot.retained_dropped;
      latency = &slot.retained_latency;
    }
    m.corrections += corrections;
    m.processed_inputs += processed;
    m.dropped_inputs += dropped;
    rep.corrections += corrections;
    rep.processed_inputs += processed;
    rep.dropped_inputs += dropped;
    global.merge(*latency);
    by_map_latency[slot.map_key].merge(*latency);
    if (slot.ctx) arenas.insert(slot.ctx->arena().get());
  }
  rep.latency = global.summarize();
  rep.stashed_snapshot_bytes = catalog_.stashed_snapshot_bytes();
  for (const core::ParticleArena* arena : arenas) {
    if (arena != nullptr) rep.arena_pooled_bytes += arena->stats().pooled_bytes;
  }
  if (rep.pump_seconds > 0.0) {
    rep.corrections_per_second =
        static_cast<double>(rep.corrections) / rep.pump_seconds;
  }
  for (auto& [key, m] : by_map) {
    m.latency = by_map_latency[key].summarize();
    rep.per_map.push_back(std::move(m));
  }
  return rep;
}

}  // namespace tofmcl::serve
