#include "serve/session_manager.hpp"
// TOFMCL_LINT_ALLOW_FILE(wall-clock): pump() measures its own wall time
// for the throughput report; correction traces never read the clock, and
// eviction idleness is counted in pump generations, not seconds.

#include <algorithm>
#include <chrono>
#include <set>
#include <string_view>
#include <utility>

namespace tofmcl::serve {

SessionManager::SessionManager(ServeOptions opts) : opts_(std::move(opts)) {
  TOFMCL_EXPECTS(opts_.shards >= 1, "need at least one shard");
  TOFMCL_EXPECTS(opts_.pump_batch >= 1, "pump batch must be >= 1");
  if (opts_.threads > 0) pool_ = std::make_unique<ThreadPool>(opts_.threads);
  store_ = opts_.store ? opts_.store
                       : std::make_shared<InMemorySnapshotStore>();
  shards_.reserve(opts_.shards);
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SessionManager::Shard& SessionManager::shard_of(std::size_t session_id) const {
  return *shards_[session_id % shards_.size()];
}

SessionManager::Slot& SessionManager::slot_locked(
    Shard& shard, std::size_t session_id) const {
  TOFMCL_EXPECTS(session_id < next_id_.load(std::memory_order_acquire),
                 "unknown session id");
  const std::size_t index = session_id / shards_.size();
  TOFMCL_EXPECTS(index < shard.slots.size() &&
                     shard.slots[index] != nullptr,
                 "session is still opening");
  return *shard.slots[index];
}

void SessionManager::define_map(const std::string& key,
                                map::OccupancyGrid grid,
                                const core::MclConfig& mcl,
                                std::vector<core::Precision> precisions) {
  TOFMCL_EXPECTS(!precisions.empty(),
                 "a map definition needs at least one precision");
  std::lock_guard<std::mutex> lock(defs_mutex_);
  TOFMCL_EXPECTS(definitions_.find(key) == definitions_.end(),
                 "map key already defined");
  definitions_.emplace(key, MapDefinition{std::move(grid), mcl,
                                          std::move(precisions), nullptr});
}

void SessionManager::define_map(const std::string& key,
                                MapCatalog::Resources maps) {
  TOFMCL_EXPECTS(maps != nullptr, "prebuilt map resources must be non-null");
  std::lock_guard<std::mutex> lock(defs_mutex_);
  TOFMCL_EXPECTS(definitions_.find(key) == definitions_.end(),
                 "map key already defined");
  definitions_.emplace(
      key, MapDefinition{std::nullopt, {}, {}, std::move(maps)});
}

bool SessionManager::has_map(const std::string& key) const {
  std::lock_guard<std::mutex> lock(defs_mutex_);
  return definitions_.find(key) != definitions_.end();
}

std::size_t SessionManager::open_session(const std::string& map_key,
                                         const SessionOptions& opts) {
  const MapDefinition* def = nullptr;
  {
    std::lock_guard<std::mutex> lock(defs_mutex_);
    const auto it = definitions_.find(map_key);
    TOFMCL_EXPECTS(it != definitions_.end(), "unknown map key");
    // Definitions are insert-only, so the pointer stays valid outside
    // the lock while the (possibly slow) resource build runs.
    def = &it->second;
  }
  auto maps = catalog_.get_or_build(map_key, [def] {
    if (def->prebuilt) return def->prebuilt;
    return core::build_map_resources(
        *def->grid, def->mcl,
        std::span<const core::Precision>(def->precisions));
  });
  // One ScoringContext per (map, scoring fingerprint): sessions that
  // differ only in SessionKnobs (seed, particle budget — excluded from
  // the fingerprint) share it, and with it the per-map particle arena.
  const std::string ctx_key =
      map_key + '\x1f' + core::scoring_fingerprint(opts.config);
  auto ctx = catalog_.get_or_build_context(ctx_key, [&maps, &opts] {
    return core::build_scoring_context(maps, opts.config);
  });
  // Dense id assignment round-robins sessions across shards; only the
  // owning shard is locked to place the slot, so opens on different
  // shards never contend.
  const std::size_t id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  auto slot = std::make_unique<Slot>();
  slot->live = std::make_unique<Session>(id, map_key, ctx, opts);
  slot->map_key = map_key;
  slot->ctx = std::move(ctx);
  slot->opts = opts;
  Shard& shard = shard_of(id);
  const std::size_t index = id / shards_.size();
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (index >= shard.slots.size()) shard.slots.resize(index + 1);
  shard.slots[index] = std::move(slot);
  return id;
}

Admission SessionManager::push(std::size_t session_id, SessionInput input) {
  Shard& shard = shard_of(session_id);
  // The enqueue runs under the SHARD lock (not a global one): it is a
  // bounded-deque operation, and holding the lock closes the race where
  // an evictor destroys the Session between lookup and enqueue. Pushes
  // on other shards proceed concurrently.
  std::lock_guard<std::mutex> lock(shard.mutex);
  Slot& slot = slot_locked(shard, session_id);
  // Transparent restore: an evicted session comes back from its blob
  // the moment traffic returns. (Construction under the lock is the
  // exception to push() being cheap; it only happens on the first push
  // after an eviction.)
  if (!slot.live) restore_locked(slot, session_id);
  return slot.live->push(std::move(input));
}

std::size_t SessionManager::pump() {
  const auto t0 = std::chrono::steady_clock::now();

  // Pinning pass, per shard: observe every live slot once under the
  // shard lock; a slot with pending work is marked pinned so a
  // concurrent evict_idle() can neither destroy nor snapshot a Session
  // whose task is (or is about to be) in flight. Idle slots are only
  // remembered for the idle-clock epilogue — their Session pointer is
  // never dereferenced, because an evictor may legitimately destroy
  // them mid-pump.
  std::vector<std::vector<Observed>> plan(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto& observed = plan[s];
    observed.reserve(shard.slots.size());
    for (std::size_t index = 0; index < shard.slots.size(); ++index) {
      Slot* slot = shard.slots[index].get();
      if (slot == nullptr || !slot->live) continue;
      const bool busy = slot->live->has_pending();
      if (busy) slot->pinned = true;
      observed.push_back({slot->live.get(), index, busy});
    }
  }

  std::atomic<std::size_t> total{0};
  if (!pool_) {
    for (const auto& observed : plan) {
      for (const Observed& o : observed) {
        if (o.busy) total += o.session->process_pending();
      }
    }
  } else {
    ThreadPool::TaskGroup group;
    for (const auto& observed : plan) {
      // Map-affine batching: a shard's busy sessions are grouped by map
      // key and drained `pump_batch` at a time by one task, so a worker
      // run stays inside one map's EDT/LUT working set instead of
      // hopping maps per session (and 100k sessions submit thousands of
      // tasks, not 100k).
      std::map<std::string_view, std::vector<Session*>> by_map;
      for (const Observed& o : observed) {
        if (o.busy) by_map[o.session->map_key()].push_back(o.session);
      }
      for (auto& [key, sessions] : by_map) {
        for (std::size_t base = 0; base < sessions.size();
             base += opts_.pump_batch) {
          const std::size_t end =
              std::min(sessions.size(), base + opts_.pump_batch);
          std::vector<Session*> batch(sessions.begin() + base,
                                      sessions.begin() + end);
          pool_->submit(
              [batch = std::move(batch), &total] {
                std::size_t n = 0;
                for (Session* session : batch) {
                  n += session->process_pending();
                }
                total += n;
              },
              group);
        }
      }
    }
    pool_->wait(group);
  }

  // Epilogue, per shard: unpin, advance the idle clock.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Observed& o : plan[s]) {
      Slot* slot = shard.slots[o.index].get();
      if (o.busy) {
        // Pinned slots cannot have been evicted or swapped mid-pump.
        slot->pinned = false;
        slot->idle_pumps = 0;
      } else {
        // An idle slot may have been evicted (live == null) or evicted
        // AND restored (fresh Session, counter already 0) mid-pump; the
        // stale pointer must not touch it.
        if (slot->live.get() != o.session) continue;
        ++slot->idle_pumps;
      }
    }
  }

  add_pump_seconds(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());
  return total.load();
}

void SessionManager::add_pump_seconds(double dt) {
  // No atomic<double>::fetch_add before C++20 libstdc++ grew it
  // everywhere we build; a CAS loop on an uncontended counter is free.
  double cur = pump_seconds_.load(std::memory_order_relaxed);
  while (!pump_seconds_.compare_exchange_weak(cur, cur + dt,
                                              std::memory_order_relaxed)) {
  }
}

void SessionManager::evict_locked(Slot& slot, std::size_t id) {
  // Retain the stats report() needs while the Session object is gone;
  // the blob carries the same numbers for the eventual restore.
  slot.retained_corrections = slot.live->corrections();
  slot.retained_processed = slot.live->processed_inputs();
  slot.retained_dropped = slot.live->dropped_inputs();
  slot.retained_latency = slot.live->latency();
  store_->put(id, slot.live->snapshot());
  // Destroying the Session releases its SoA blocks into the arena pool.
  slot.live.reset();
}

void SessionManager::restore_locked(Slot& slot, std::size_t id) {
  auto blob = store_->take(id);
  TOFMCL_EXPECTS(blob.has_value(), "evicted session has no stashed snapshot");
  slot.live = std::make_unique<Session>(id, slot.map_key, slot.ctx, slot.opts,
                                        std::span<const std::byte>(*blob));
  slot.idle_pumps = 0;
  // The restored Session carries its counters again.
  slot.retained_corrections = 0;
  slot.retained_processed = 0;
  slot.retained_dropped = 0;
  slot.retained_latency = LatencyRecorder{};
}

std::vector<std::byte> SessionManager::snapshot_session(
    std::size_t session_id) const {
  Shard& shard = shard_of(session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Slot& slot = slot_locked(shard, session_id);
  TOFMCL_EXPECTS(slot.live != nullptr, "cannot snapshot an evicted session");
  TOFMCL_EXPECTS(!slot.pinned,
                 "cannot snapshot a session while its pump task is in flight");
  return slot.live->snapshot();
}

void SessionManager::restore_session(std::size_t session_id,
                                     std::span<const std::byte> blob) {
  Shard& shard = shard_of(session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Slot& slot = slot_locked(shard, session_id);
  TOFMCL_EXPECTS(!slot.pinned,
                 "cannot restore a session while its pump task is in flight");
  if (slot.live) {
    TOFMCL_EXPECTS(!slot.live->has_pending(),
                   "cannot restore over pending inputs (pump first)");
  }
  // An explicit restore supersedes whatever eviction stashed.
  store_->take(session_id);
  slot.live = std::make_unique<Session>(session_id, slot.map_key, slot.ctx,
                                        slot.opts, blob);
  slot.idle_pumps = 0;
  slot.retained_corrections = 0;
  slot.retained_processed = 0;
  slot.retained_dropped = 0;
  slot.retained_latency = LatencyRecorder{};
}

void SessionManager::evict_session(std::size_t session_id) {
  Shard& shard = shard_of(session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Slot& slot = slot_locked(shard, session_id);
  TOFMCL_EXPECTS(slot.live != nullptr, "session already evicted");
  TOFMCL_EXPECTS(!slot.pinned,
                 "cannot evict a session while its pump task is in flight");
  evict_locked(slot, session_id);
}

std::size_t SessionManager::evict_idle(std::size_t min_idle_pumps) {
  std::size_t evicted = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::size_t index = 0; index < shard.slots.size(); ++index) {
      Slot* slot = shard.slots[index].get();
      if (slot == nullptr || !slot->live) continue;
      // A pinned slot has (or may have) a pump task in flight — evicting
      // it would destroy the Session under the task's feet. Skip; the
      // slot stays eligible for the next sweep.
      if (slot->pinned) continue;
      if (slot->idle_pumps < min_idle_pumps) continue;
      if (slot->live->has_pending()) continue;
      evict_locked(*slot, index * shards_.size() + s);
      ++evicted;
    }
  }
  return evicted;
}

std::size_t SessionManager::num_sessions() const {
  return next_id_.load(std::memory_order_acquire);
}

std::size_t SessionManager::live_sessions() const {
  std::size_t live = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& slot : shard->slots) {
      live += slot != nullptr && slot->live != nullptr;
    }
  }
  return live;
}

std::size_t SessionManager::evicted_sessions() const {
  std::size_t evicted = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& slot : shard->slots) {
      evicted += slot != nullptr && slot->live == nullptr;
    }
  }
  return evicted;
}

bool SessionManager::session_live(std::size_t session_id) const {
  Shard& shard = shard_of(session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return slot_locked(shard, session_id).live != nullptr;
}

const Session& SessionManager::session(std::size_t session_id) const {
  Shard& shard = shard_of(session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Slot& slot = slot_locked(shard, session_id);
  TOFMCL_EXPECTS(slot.live != nullptr,
                 "session is evicted (push to restore it)");
  return *slot.live;
}

ServeReport SessionManager::report() const {
  ServeReport rep;
  rep.pump_seconds = pump_seconds_.load(std::memory_order_relaxed);

  std::map<std::string, MapReport> by_map;
  std::map<std::string, LatencyRecorder> by_map_latency;
  LatencyRecorder global;
  std::set<const core::ParticleArena*> arenas;
  // Shards are scanned one at a time under their own locks: a report
  // never stalls pushes on every shard at once, and it is safe while a
  // pump is in flight — live-session stats come from the Session's
  // atomics and guarded latency merge, never from the localizer's
  // mutable filter state.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    ShardReport sh;
    sh.shard = s;
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& slot_ptr : shard.slots) {
      if (slot_ptr == nullptr) continue;
      const Slot& slot = *slot_ptr;
      ++sh.sessions;
      MapReport& m = by_map[slot.map_key];
      m.map = slot.map_key;
      ++m.sessions;
      std::size_t corrections = 0, processed = 0, dropped = 0;
      LatencyRecorder& map_latency = by_map_latency[slot.map_key];
      if (slot.live) {
        ++sh.live_sessions;
        corrections = slot.live->corrections();
        processed = slot.live->processed_inputs();
        dropped = slot.live->dropped_inputs();
        slot.live->merge_latency_into(global);
        slot.live->merge_latency_into(map_latency);
        rep.active_particles += slot.live->active_particles();
        rep.resident_particle_bytes += slot.live->resident_particle_bytes();
      } else {
        ++sh.evicted_sessions;
        corrections = slot.retained_corrections;
        processed = slot.retained_processed;
        dropped = slot.retained_dropped;
        global.merge(slot.retained_latency);
        map_latency.merge(slot.retained_latency);
      }
      m.corrections += corrections;
      m.processed_inputs += processed;
      m.dropped_inputs += dropped;
      rep.corrections += corrections;
      rep.processed_inputs += processed;
      rep.dropped_inputs += dropped;
      if (slot.ctx) arenas.insert(slot.ctx->arena().get());
    }
    rep.sessions += sh.sessions;
    rep.live_sessions += sh.live_sessions;
    rep.evicted_sessions += sh.evicted_sessions;
    rep.per_shard.push_back(sh);
  }
  rep.latency = global.summarize();
  rep.stashed_snapshot_bytes = store_->bytes();
  for (const core::ParticleArena* arena : arenas) {
    if (arena != nullptr) rep.arena_pooled_bytes += arena->stats().pooled_bytes;
  }
  if (rep.pump_seconds > 0.0) {
    rep.corrections_per_second =
        static_cast<double>(rep.corrections) / rep.pump_seconds;
  }
  for (auto& [key, m] : by_map) {
    m.latency = by_map_latency[key].summarize();
    rep.per_map.push_back(std::move(m));
  }
  return rep;
}

}  // namespace tofmcl::serve
