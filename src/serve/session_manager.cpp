#include "serve/session_manager.hpp"
// TOFMCL_LINT_ALLOW_FILE(wall-clock): pump() measures its own wall time
// for the throughput report; correction traces never read the clock.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

namespace tofmcl::serve {

SessionManager::SessionManager(ServeOptions opts) : opts_(opts) {
  if (opts_.threads > 0) pool_ = std::make_unique<ThreadPool>(opts_.threads);
}

void SessionManager::define_map(const std::string& key,
                                map::OccupancyGrid grid,
                                const core::MclConfig& mcl,
                                std::vector<core::Precision> precisions) {
  TOFMCL_EXPECTS(!precisions.empty(),
                 "a map definition needs at least one precision");
  std::lock_guard<std::mutex> lock(mutex_);
  TOFMCL_EXPECTS(definitions_.find(key) == definitions_.end(),
                 "map key already defined");
  definitions_.emplace(key, MapDefinition{std::move(grid), mcl,
                                          std::move(precisions), nullptr});
}

void SessionManager::define_map(const std::string& key,
                                MapCatalog::Resources maps) {
  TOFMCL_EXPECTS(maps != nullptr, "prebuilt map resources must be non-null");
  std::lock_guard<std::mutex> lock(mutex_);
  TOFMCL_EXPECTS(definitions_.find(key) == definitions_.end(),
                 "map key already defined");
  definitions_.emplace(
      key, MapDefinition{std::nullopt, {}, {}, std::move(maps)});
}

bool SessionManager::has_map(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return definitions_.find(key) != definitions_.end();
}

std::size_t SessionManager::open_session(const std::string& map_key,
                                         const SessionOptions& opts) {
  const MapDefinition* def = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = definitions_.find(map_key);
    TOFMCL_EXPECTS(it != definitions_.end(), "unknown map key");
    // Definitions are insert-only, so the pointer stays valid outside
    // the lock while the (possibly slow) resource build runs.
    def = &it->second;
  }
  auto maps = catalog_.get_or_build(map_key, [def] {
    if (def->prebuilt) return def->prebuilt;
    return core::build_map_resources(
        *def->grid, def->mcl,
        std::span<const core::Precision>(def->precisions));
  });
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t id = sessions_.size();
  sessions_.push_back(
      std::make_unique<Session>(id, map_key, std::move(maps), opts));
  return id;
}

Admission SessionManager::push(std::size_t session_id, SessionInput input) {
  Session* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TOFMCL_EXPECTS(session_id < sessions_.size(), "unknown session id");
    session = sessions_[session_id].get();
  }
  return session->push(std::move(input));
}

std::vector<Session*> SessionManager::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Session*> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(s.get());
  return out;
}

std::size_t SessionManager::pump() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<Session*> sessions = snapshot();
  std::size_t corrected = 0;
  if (!pool_) {
    for (Session* s : sessions) {
      if (s->has_pending()) corrected += s->process_pending();
    }
  } else {
    ThreadPool::TaskGroup group;
    std::atomic<std::size_t> total{0};
    for (Session* s : sessions) {
      if (!s->has_pending()) continue;
      // One task per busy session: the group wait below is the only
      // serialization a session needs — at most one process_pending per
      // session is ever in flight.
      pool_->submit([s, &total] { total += s->process_pending(); }, group);
    }
    pool_->wait(group);
    corrected = total.load();
  }
  pump_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return corrected;
}

std::size_t SessionManager::num_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

const Session& SessionManager::session(std::size_t session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  TOFMCL_EXPECTS(session_id < sessions_.size(), "unknown session id");
  return *sessions_[session_id];
}

ServeReport SessionManager::report() const {
  const std::vector<Session*> sessions = snapshot();
  ServeReport rep;
  rep.sessions = sessions.size();
  rep.pump_seconds = pump_seconds_;

  std::map<std::string, MapReport> by_map;
  LatencyRecorder global;
  for (const Session* s : sessions) {
    MapReport& m = by_map[s->map_key()];
    m.map = s->map_key();
    ++m.sessions;
    m.corrections += s->corrections();
    m.processed_inputs += s->processed_inputs();
    m.dropped_inputs += s->dropped_inputs();
    rep.corrections += s->corrections();
    rep.processed_inputs += s->processed_inputs();
    rep.dropped_inputs += s->dropped_inputs();
    global.merge(s->latency());
  }
  rep.latency = global.summarize();
  if (rep.pump_seconds > 0.0) {
    rep.corrections_per_second =
        static_cast<double>(rep.corrections) / rep.pump_seconds;
  }
  // Second pass for per-map percentiles (merge latencies per key).
  for (auto& [key, m] : by_map) {
    LatencyRecorder merged;
    for (const Session* s : sessions) {
      if (s->map_key() == key) merged.merge(s->latency());
    }
    m.latency = merged.summarize();
    rep.per_map.push_back(std::move(m));
  }
  return rep;
}

}  // namespace tofmcl::serve
