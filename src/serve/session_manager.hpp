#pragma once
/// \file session_manager.hpp
/// \brief Localization-as-a-service: N live sessions over one thread pool.
///
/// The SessionManager is the serving layer's front door:
///
///   serve::SessionManager mgr({.threads = 8});
///   mgr.define_map("office", grid, mcl, {Precision::kFp32Qm});
///   const auto id = mgr.open_session("office", opts);
///   mgr.push(id, {t, odom, frames});   // any thread, backpressure out
///   mgr.pump();                        // drains every session's backlog
///   const auto report = mgr.report();  // p50/p99/p999, corrections/s
///
/// Maps are defined once and built lazily through the MapCatalog on the
/// first session that needs them — concurrent opens of the same map get
/// the SAME immutable core::MapResources (one EDT/LUT in memory however
/// many thousand sessions share the map). On top of the resources the
/// catalog caches one core::ScoringContext per (map, scoring fingerprint):
/// sessions differing only in SessionKnobs (seed, particle budget) share
/// one context and lease their SoA particle blocks from its arena. Each
/// pump submits at most one task per session with pending work into a
/// ThreadPool::TaskGroup, so a session's inputs are processed strictly in
/// arrival order by exactly one thread at a time — the serialization the
/// Localizer's contract demands — while distinct sessions run
/// concurrently.
///
/// Eviction: a session idle for at least `min_idle_pumps` pump
/// generations (idleness is counted in pumps, never wall clock) can be
/// evicted — its full state is serialized into the catalog's snapshot
/// backing store and the Session object (and its arena blocks) is
/// destroyed. The id stays valid: the next push() transparently restores
/// the session from its blob and resumes bit-identically. evict_idle /
/// evict_session / snapshot_session / restore_session must be called
/// between pumps (same contract as report()).
///
/// Determinism: a session's correction trace depends only on its own
/// input order (per-session RNG, SerialExecutor chunking), never on
/// scheduling, so serial and pooled pumps produce bit-identical traces
/// (tests/test_serve.cpp gates on this) — and an evict/restore cycle
/// inserted between pumps leaves the trace byte-identical too.

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "map/occupancy_grid.hpp"
#include "serve/map_catalog.hpp"
#include "serve/session.hpp"

namespace tofmcl::serve {

struct ServeOptions {
  /// Worker threads for the pooled pump; 0 pumps serially on the caller.
  std::size_t threads = 0;
};

/// Per-map slice of a ServeReport.
struct MapReport {
  std::string map;
  std::size_t sessions = 0;
  std::size_t corrections = 0;
  std::size_t processed_inputs = 0;
  std::size_t dropped_inputs = 0;
  LatencySummary latency;  ///< Per-correction wall latency, seconds.
};

struct ServeReport {
  std::size_t sessions = 0;  ///< All opened sessions (live + evicted).
  std::size_t live_sessions = 0;
  std::size_t evicted_sessions = 0;
  std::size_t corrections = 0;
  std::size_t processed_inputs = 0;
  std::size_t dropped_inputs = 0;
  LatencySummary latency;
  /// Σ active particle counts over live sessions (shrinks under
  /// MclConfig::adaptive_particles once sessions converge).
  std::size_t active_particles = 0;
  /// Σ bytes the live sessions' SoA blocks pin right now (both buffers at
  /// allocated capacity) — the per-idle-session resident-memory metric.
  std::size_t resident_particle_bytes = 0;
  /// Bytes parked in the catalog's snapshot store for evicted sessions.
  std::size_t stashed_snapshot_bytes = 0;
  /// Σ pooled (free-list) bytes across the distinct per-map arenas.
  std::size_t arena_pooled_bytes = 0;
  /// Cumulative wall time spent inside pump() calls.
  double pump_seconds = 0.0;
  /// corrections / pump_seconds — the serving throughput figure.
  double corrections_per_second = 0.0;
  std::vector<MapReport> per_map;  ///< Sorted by map key.
};

class SessionManager {
 public:
  explicit SessionManager(ServeOptions opts);

  /// Registers a map under `key`. The expensive resources (EDT, LUT) are
  /// NOT built here — the first open_session on the key builds them, once,
  /// however many sessions race for it. `mcl` supplies rmax and the
  /// beam-model parameters baked into the shared LUT; `precisions` selects
  /// which distance representations to build.
  void define_map(const std::string& key, map::OccupancyGrid grid,
                  const core::MclConfig& mcl,
                  std::vector<core::Precision> precisions);

  /// Registers already-built resources under `key` (e.g. exported from an
  /// eval::Campaign, which did the expensive build once). Sessions on the
  /// key share exactly this object.
  void define_map(const std::string& key, MapCatalog::Resources maps);

  /// True when `key` is already defined. Callers replaying several
  /// sources that share one world use this to define each key once
  /// instead of catching the duplicate-define PreconditionError.
  bool has_map(const std::string& key) const;

  /// Opens a session on a defined map and returns its id. Thread-safe;
  /// concurrent opens of one map share a single resource build and a
  /// single scoring context (keyed by map + scoring fingerprint).
  std::size_t open_session(const std::string& map_key,
                           const SessionOptions& opts);

  /// Enqueue an input tick for a session. Thread-safe; returns the
  /// admission/backpressure signal. Pushing to an evicted session
  /// transparently restores it from its stashed snapshot first.
  Admission push(std::size_t session_id, SessionInput input);

  /// Processes every session's backlog — serially in session-id order
  /// when threads == 0, else one pool task per busy session. Not
  /// reentrant; one pump at a time. Advances every live session's idle
  /// counter (0 when it had work this pump). Returns corrections run.
  std::size_t pump();

  /// Serializes a live session's full state (counters, latency, trace,
  /// filter) and returns the blob; the session keeps running. Call
  /// between pumps, after its queue drained.
  std::vector<std::byte> snapshot_session(std::size_t session_id) const;

  /// Replaces a session's state with `blob` (from snapshot_session or an
  /// external store), whether the session is currently live or evicted.
  /// Any blob stashed for the id is discarded. Call between pumps.
  void restore_session(std::size_t session_id,
                       std::span<const std::byte> blob);

  /// Evicts one live session: snapshot → catalog backing store, then the
  /// Session (and its arena blocks) is destroyed. Precondition: no
  /// pending inputs. Call between pumps.
  void evict_session(std::size_t session_id);

  /// Evicts every live session whose queue is empty and whose idle streak
  /// is at least `min_idle_pumps` pump generations. Returns the number
  /// evicted. Call between pumps.
  std::size_t evict_idle(std::size_t min_idle_pumps);

  std::size_t num_sessions() const;
  std::size_t live_sessions() const;
  std::size_t evicted_sessions() const;
  /// True when the session currently has a live Session object.
  bool session_live(std::size_t session_id) const;
  double pump_seconds() const { return pump_seconds_; }
  /// Read-only session access (tests, trace dumps). The session must be
  /// live. Call between pumps.
  const Session& session(std::size_t session_id) const;

  /// Aggregates per-map and global latency/throughput over ALL sessions —
  /// evicted sessions contribute the stats retained at eviction time.
  /// Call between pumps (the pump thread writes the stats this reads).
  ServeReport report() const;

 private:
  struct MapDefinition {
    /// Grid-based definition (built lazily, once, via the catalog)...
    std::optional<map::OccupancyGrid> grid;
    core::MclConfig mcl;
    std::vector<core::Precision> precisions;
    /// ...or prebuilt resources handed in directly (non-null wins).
    MapCatalog::Resources prebuilt;
  };

  /// One session id's slot for the whole manager lifetime. `live` is null
  /// while the session is evicted; the retained_* fields then carry its
  /// stats so report() stays complete.
  struct Slot {
    std::unique_ptr<Session> live;
    std::string map_key;
    MapCatalog::Context ctx;
    SessionOptions opts;
    std::size_t idle_pumps = 0;  ///< Pumps since the session last had work.
    std::size_t retained_corrections = 0;
    std::size_t retained_processed = 0;
    std::size_t retained_dropped = 0;
    LatencyRecorder retained_latency;
  };

  struct PumpItem {
    Session* session;
    std::size_t id;
  };

  std::vector<PumpItem> snapshot_live() const;
  /// Evicts `slot` (must be live, empty queue); caller holds mutex_.
  void evict_locked(Slot& slot, std::size_t id);
  /// Restores `slot` from the catalog's stash; caller holds mutex_.
  void restore_locked(Slot& slot, std::size_t id);

  ServeOptions opts_;
  std::unique_ptr<ThreadPool> pool_;  ///< Null when threads == 0.
  MapCatalog catalog_;

  mutable std::mutex mutex_;  ///< Guards definitions_ and slots_.
  std::map<std::string, MapDefinition> definitions_;
  std::vector<Slot> slots_;

  double pump_seconds_ = 0.0;  ///< Written by pump() only.
};

}  // namespace tofmcl::serve
