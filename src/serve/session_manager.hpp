#pragma once
/// \file session_manager.hpp
/// \brief Localization-as-a-service: N live sessions over one thread pool.
///
/// The SessionManager is the serving layer's front door:
///
///   serve::SessionManager mgr({.threads = 8});
///   mgr.define_map("office", grid, mcl, {Precision::kFp32Qm});
///   const auto id = mgr.open_session("office", opts);
///   mgr.push(id, {t, odom, frames});   // any thread, backpressure out
///   mgr.pump();                        // drains every session's backlog
///   const auto report = mgr.report();  // p50/p99/p999, corrections/s
///
/// Maps are defined once and built lazily through the MapCatalog on the
/// first session that needs them — concurrent opens of the same map get
/// the SAME immutable core::MapResources (one EDT/LUT in memory however
/// many thousand sessions share the map). Each pump submits at most one
/// task per session with pending work into a ThreadPool::TaskGroup, so a
/// session's inputs are processed strictly in arrival order by exactly
/// one thread at a time — the serialization the Localizer's contract
/// demands — while distinct sessions run concurrently.
///
/// Determinism: a session's correction trace depends only on its own
/// input order (per-session RNG, SerialExecutor chunking), never on
/// scheduling, so serial and pooled pumps produce bit-identical traces
/// (tests/test_serve.cpp gates on this).

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "map/occupancy_grid.hpp"
#include "serve/map_catalog.hpp"
#include "serve/session.hpp"

namespace tofmcl::serve {

struct ServeOptions {
  /// Worker threads for the pooled pump; 0 pumps serially on the caller.
  std::size_t threads = 0;
};

/// Per-map slice of a ServeReport.
struct MapReport {
  std::string map;
  std::size_t sessions = 0;
  std::size_t corrections = 0;
  std::size_t processed_inputs = 0;
  std::size_t dropped_inputs = 0;
  LatencySummary latency;  ///< Per-correction wall latency, seconds.
};

struct ServeReport {
  std::size_t sessions = 0;
  std::size_t corrections = 0;
  std::size_t processed_inputs = 0;
  std::size_t dropped_inputs = 0;
  LatencySummary latency;
  /// Cumulative wall time spent inside pump() calls.
  double pump_seconds = 0.0;
  /// corrections / pump_seconds — the serving throughput figure.
  double corrections_per_second = 0.0;
  std::vector<MapReport> per_map;  ///< Sorted by map key.
};

class SessionManager {
 public:
  explicit SessionManager(ServeOptions opts);

  /// Registers a map under `key`. The expensive resources (EDT, LUT) are
  /// NOT built here — the first open_session on the key builds them, once,
  /// however many sessions race for it. `mcl` supplies rmax and the
  /// beam-model parameters baked into the shared LUT; `precisions` selects
  /// which distance representations to build.
  void define_map(const std::string& key, map::OccupancyGrid grid,
                  const core::MclConfig& mcl,
                  std::vector<core::Precision> precisions);

  /// Registers already-built resources under `key` (e.g. exported from an
  /// eval::Campaign, which did the expensive build once). Sessions on the
  /// key share exactly this object.
  void define_map(const std::string& key, MapCatalog::Resources maps);

  /// True when `key` is already defined. Callers replaying several
  /// sources that share one world use this to define each key once
  /// instead of catching the duplicate-define PreconditionError.
  bool has_map(const std::string& key) const;

  /// Opens a session on a defined map and returns its id. Thread-safe;
  /// concurrent opens of one map share a single resource build.
  std::size_t open_session(const std::string& map_key,
                           const SessionOptions& opts);

  /// Enqueue an input tick for a session. Thread-safe; returns the
  /// admission/backpressure signal.
  Admission push(std::size_t session_id, SessionInput input);

  /// Processes every session's backlog — serially in session-id order
  /// when threads == 0, else one pool task per busy session. Not
  /// reentrant; one pump at a time. Returns corrections run.
  std::size_t pump();

  std::size_t num_sessions() const;
  double pump_seconds() const { return pump_seconds_; }
  /// Read-only session access (tests, trace dumps). Call between pumps.
  const Session& session(std::size_t session_id) const;

  /// Aggregates per-map and global latency/throughput. Call between
  /// pumps (the pump thread writes the stats this reads).
  ServeReport report() const;

 private:
  struct MapDefinition {
    /// Grid-based definition (built lazily, once, via the catalog)...
    std::optional<map::OccupancyGrid> grid;
    core::MclConfig mcl;
    std::vector<core::Precision> precisions;
    /// ...or prebuilt resources handed in directly (non-null wins).
    MapCatalog::Resources prebuilt;
  };

  std::vector<Session*> snapshot() const;

  ServeOptions opts_;
  std::unique_ptr<ThreadPool> pool_;  ///< Null when threads == 0.
  MapCatalog catalog_;

  mutable std::mutex mutex_;  ///< Guards definitions_ and sessions_.
  std::map<std::string, MapDefinition> definitions_;
  std::vector<std::unique_ptr<Session>> sessions_;

  double pump_seconds_ = 0.0;  ///< Written by pump() only.
};

}  // namespace tofmcl::serve
