#pragma once
/// \file session_manager.hpp
/// \brief Localization-as-a-service: N live sessions over one thread pool.
///
/// The SessionManager is the serving layer's front door:
///
///   serve::SessionManager mgr({.threads = 8, .shards = 8});
///   mgr.define_map("office", grid, mcl, {Precision::kFp32Qm});
///   const auto id = mgr.open_session("office", opts);
///   mgr.push(id, {t, odom, frames});   // any thread, backpressure out
///   mgr.pump();                        // drains every session's backlog
///   const auto report = mgr.report();  // p50/p99/p999, corrections/s
///
/// Maps are defined once and built lazily through the MapCatalog on the
/// first session that needs them — concurrent opens of the same map get
/// the SAME immutable core::MapResources (one EDT/LUT in memory however
/// many thousand sessions share the map). On top of the resources the
/// catalog caches one core::ScoringContext per (map, scoring fingerprint):
/// sessions differing only in SessionKnobs (seed, particle budget) share
/// one context and lease their SoA particle blocks from its arena.
///
/// SHARDING: slot state is split into `shards` independent shards —
/// session id `i` lives in shard `i % shards` (ids are dense; the slot
/// index within the shard is `i / shards`, so sequentially opened
/// sessions round-robin across shards). Each shard owns its own mutex,
/// slot vector, and idle clock: a push() on one shard never contends
/// with a pump epilogue or report() scan on another. Sharding is
/// invisible to the data plane — a session's correction trace depends
/// only on its own input order, so shards=1 and shards=N produce
/// bit-identical traces (tests gate on this) and the pre-shard
/// determinism contract carries over unchanged.
///
/// PUMP BATCHING: instead of one pool task per busy session (task-queue
/// pressure at 100k sessions), each pump groups a shard's busy sessions
/// by map key and submits one task per `pump_batch` sessions of one map
/// — per-map affinity keeps a worker run inside one map's EDT/LUT while
/// it drains its batch. A busy slot is PINNED under its shard lock for
/// the duration of the pump, so a concurrent evict_idle() can never
/// destroy a Session whose process_pending() task is still in flight
/// (the evict-during-pump use-after-free this layer used to have).
///
/// Eviction: a session idle for at least `min_idle_pumps` pump
/// generations (idleness is counted in pumps, never wall clock) can be
/// evicted — its full state is serialized into the SnapshotStore and the
/// Session object (and its arena blocks) is destroyed. The id stays
/// valid: the next push() transparently restores the session from its
/// blob and resumes bit-identically. The store is pluggable
/// (ServeOptions::store): two managers sharing one store can rebalance
/// evicted sessions between themselves, and the file-backed store
/// persists blobs across processes.
///
/// Determinism: a session's correction trace depends only on its own
/// input order (per-session RNG, SerialExecutor chunking), never on
/// scheduling, so serial and pooled pumps — and any shard count or batch
/// size — produce bit-identical traces (tests/test_serve.cpp gates on
/// this), and an evict/restore cycle inserted between (or during) pumps
/// leaves the trace byte-identical too.

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "map/occupancy_grid.hpp"
#include "serve/map_catalog.hpp"
#include "serve/session.hpp"
#include "serve/snapshot_store.hpp"

namespace tofmcl::serve {

struct ServeOptions {
  /// Worker threads for the pooled pump; 0 pumps serially on the caller.
  std::size_t threads = 0;
  /// Independent slot shards (each with its own mutex, slot vector and
  /// idle clock); session id i lives in shard i % shards. Sharding never
  /// changes a session's trace — it only removes control-plane
  /// contention at high session counts.
  std::size_t shards = 1;
  /// Busy sessions drained per pump task (grouped per map within a
  /// shard, so one worker run stays inside one map's EDT/LUT).
  std::size_t pump_batch = 16;
  /// Backing store for evicted-session snapshot blobs. Null builds a
  /// private InMemorySnapshotStore; pass a shared store to rebalance
  /// evicted sessions across managers, or a FileSnapshotStore to persist
  /// them across processes.
  std::shared_ptr<SnapshotStore> store;
};

/// Per-map slice of a ServeReport.
struct MapReport {
  std::string map;
  std::size_t sessions = 0;
  std::size_t corrections = 0;
  std::size_t processed_inputs = 0;
  std::size_t dropped_inputs = 0;
  LatencySummary latency;  ///< Per-correction wall latency, seconds.
};

/// Per-shard slice of a ServeReport (occupancy + eviction accounting).
struct ShardReport {
  std::size_t shard = 0;
  std::size_t sessions = 0;  ///< Slots owned by this shard.
  std::size_t live_sessions = 0;
  std::size_t evicted_sessions = 0;
};

struct ServeReport {
  std::size_t sessions = 0;  ///< All opened sessions (live + evicted).
  std::size_t live_sessions = 0;
  std::size_t evicted_sessions = 0;
  std::size_t corrections = 0;
  std::size_t processed_inputs = 0;
  std::size_t dropped_inputs = 0;
  LatencySummary latency;
  /// Σ active particle counts over live sessions (shrinks under
  /// MclConfig::adaptive_particles once sessions converge).
  std::size_t active_particles = 0;
  /// Σ bytes the live sessions' SoA blocks pin right now (both buffers at
  /// allocated capacity) — the per-idle-session resident-memory metric.
  std::size_t resident_particle_bytes = 0;
  /// Bytes parked in the snapshot store for evicted sessions.
  std::size_t stashed_snapshot_bytes = 0;
  /// Σ pooled (free-list) bytes across the distinct per-map arenas.
  std::size_t arena_pooled_bytes = 0;
  /// Cumulative wall time spent inside pump() calls.
  double pump_seconds = 0.0;
  /// corrections / pump_seconds — the serving throughput figure.
  double corrections_per_second = 0.0;
  std::vector<MapReport> per_map;      ///< Sorted by map key.
  std::vector<ShardReport> per_shard;  ///< One entry per shard, in order.
};

class SessionManager {
 public:
  explicit SessionManager(ServeOptions opts);

  /// Registers a map under `key`. The expensive resources (EDT, LUT) are
  /// NOT built here — the first open_session on the key builds them, once,
  /// however many sessions race for it. `mcl` supplies rmax and the
  /// beam-model parameters baked into the shared LUT; `precisions` selects
  /// which distance representations to build.
  void define_map(const std::string& key, map::OccupancyGrid grid,
                  const core::MclConfig& mcl,
                  std::vector<core::Precision> precisions);

  /// Registers already-built resources under `key` (e.g. exported from an
  /// eval::Campaign, which did the expensive build once). Sessions on the
  /// key share exactly this object.
  void define_map(const std::string& key, MapCatalog::Resources maps);

  /// True when `key` is already defined. Callers replaying several
  /// sources that share one world use this to define each key once
  /// instead of catching the duplicate-define PreconditionError.
  bool has_map(const std::string& key) const;

  /// Opens a session on a defined map and returns its id. Thread-safe;
  /// concurrent opens of one map share a single resource build and a
  /// single scoring context (keyed by map + scoring fingerprint). Ids are
  /// dense and round-robin across shards.
  std::size_t open_session(const std::string& map_key,
                           const SessionOptions& opts);

  /// Enqueue an input tick for a session. Thread-safe; returns the
  /// admission/backpressure signal. Pushing to an evicted session
  /// transparently restores it from its stashed snapshot first. Only the
  /// session's own shard is locked — pushes on other shards proceed
  /// concurrently.
  Admission push(std::size_t session_id, SessionInput input);

  /// Processes every session's backlog — serially in shard-major order
  /// when threads == 0, else one pool task per map-affine batch of
  /// `pump_batch` busy sessions. Not reentrant; one pump at a time
  /// (pushes, evictions and reports may run concurrently with it).
  /// Advances every live session's idle counter (0 when it had work this
  /// pump). Returns corrections run.
  std::size_t pump();

  /// Serializes a live session's full state (counters, latency, trace,
  /// filter) and returns the blob; the session keeps running. Call
  /// between pumps, after its queue drained.
  std::vector<std::byte> snapshot_session(std::size_t session_id) const;

  /// Replaces a session's state with `blob` (from snapshot_session or an
  /// external store), whether the session is currently live or evicted.
  /// Any blob stashed for the id is discarded. Call between pumps.
  void restore_session(std::size_t session_id,
                       std::span<const std::byte> blob);

  /// Evicts one live session: snapshot → snapshot store, then the
  /// Session (and its arena blocks) is destroyed. Preconditions: no
  /// pending inputs, no pump task in flight for it. Call between pumps.
  void evict_session(std::size_t session_id);

  /// Evicts every live session whose queue is empty and whose idle streak
  /// is at least `min_idle_pumps` pump generations. Safe to call while a
  /// pump is in flight: sessions with a running (or scheduled) pump task
  /// are pinned and skipped. Returns the number evicted.
  std::size_t evict_idle(std::size_t min_idle_pumps);

  std::size_t num_sessions() const;
  std::size_t live_sessions() const;
  std::size_t evicted_sessions() const;
  std::size_t shard_count() const { return shards_.size(); }
  /// True when the session currently has a live Session object.
  bool session_live(std::size_t session_id) const;
  double pump_seconds() const {
    return pump_seconds_.load(std::memory_order_relaxed);
  }
  /// The snapshot store evictions park blobs in (the one from
  /// ServeOptions, or the default in-memory store).
  const std::shared_ptr<SnapshotStore>& store() const { return store_; }
  /// Read-only session access (tests, trace dumps). The session must be
  /// live. Call between pumps.
  const Session& session(std::size_t session_id) const;

  /// Aggregates per-map, per-shard and global latency/throughput over ALL
  /// sessions — evicted sessions contribute the stats retained at
  /// eviction time. Safe to call while a pump is in flight: counters are
  /// atomics and latency recorders are merged under their guards.
  ServeReport report() const;

 private:
  struct MapDefinition {
    /// Grid-based definition (built lazily, once, via the catalog)...
    std::optional<map::OccupancyGrid> grid;
    core::MclConfig mcl;
    std::vector<core::Precision> precisions;
    /// ...or prebuilt resources handed in directly (non-null wins).
    MapCatalog::Resources prebuilt;
  };

  /// One session id's slot for the whole manager lifetime. `live` is null
  /// while the session is evicted; the retained_* fields then carry its
  /// stats so report() stays complete. All fields are guarded by the
  /// owning shard's mutex.
  struct Slot {
    std::unique_ptr<Session> live;
    std::string map_key;
    MapCatalog::Context ctx;
    SessionOptions opts;
    /// True while a pump has (or may have) a process_pending() task in
    /// flight for this slot: eviction must skip pinned slots — destroying
    /// the Session under a running task is a use-after-free.
    bool pinned = false;
    std::size_t idle_pumps = 0;  ///< Pumps since the session last had work.
    std::size_t retained_corrections = 0;
    std::size_t retained_processed = 0;
    std::size_t retained_dropped = 0;
    LatencyRecorder retained_latency;
  };

  /// One shard: an independent mutex + slot vector + idle clock. Slots
  /// are held by pointer so Slot addresses stay stable across growth.
  struct Shard {
    mutable std::mutex mutex;
    /// Index = session id / shard count. A briefly-null entry means an
    /// open_session on a lower id in this shard is still in flight.
    std::vector<std::unique_ptr<Slot>> slots;
  };

  /// One live slot's observation from the pump's pinning pass.
  struct Observed {
    Session* session;
    std::size_t index;  ///< Slot index within the shard.
    bool busy;          ///< Had pending work (and was pinned) at observe.
  };

  Shard& shard_of(std::size_t session_id) const;
  /// Slot lookup; the caller must hold `shard.mutex`.
  Slot& slot_locked(Shard& shard, std::size_t session_id) const;
  /// Evicts `slot` (must be live, unpinned, empty queue); caller holds
  /// the shard mutex.
  void evict_locked(Slot& slot, std::size_t id);
  /// Restores `slot` from the snapshot store; caller holds the shard
  /// mutex.
  void restore_locked(Slot& slot, std::size_t id);
  void add_pump_seconds(double dt);

  ServeOptions opts_;
  std::unique_ptr<ThreadPool> pool_;  ///< Null when threads == 0.
  MapCatalog catalog_;
  std::shared_ptr<SnapshotStore> store_;

  mutable std::mutex defs_mutex_;  ///< Guards definitions_ (insert-only).
  std::map<std::string, MapDefinition> definitions_;

  std::vector<std::unique_ptr<Shard>> shards_;  ///< Fixed at construction.
  std::atomic<std::size_t> next_id_{0};

  std::atomic<double> pump_seconds_{0.0};  ///< Advanced by pump() only.
};

}  // namespace tofmcl::serve
