#include "serve/latency.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace tofmcl::serve {

void LatencyRecorder::merge(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

LatencySummary LatencyRecorder::summarize() const {
  LatencySummary s;
  s.count = samples_.size();
  if (samples_.empty()) return s;
  s.p50 = percentile(samples_, 0.50);
  s.p99 = percentile(samples_, 0.99);
  s.p999 = percentile(samples_, 0.999);
  double sum = 0.0;
  for (const double v : samples_) sum += v;
  s.mean = sum / static_cast<double>(samples_.size());
  s.max = *std::max_element(samples_.begin(), samples_.end());
  return s;
}

}  // namespace tofmcl::serve
