#include "serve/latency.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace tofmcl::serve {

void LatencyRecorder::merge(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

LatencySummary LatencyRecorder::summarize() const {
  LatencySummary s;
  s.count = samples_.size();
  if (samples_.empty()) return s;
  double sum = 0.0;
  for (const double v : samples_) sum += v;
  s.mean = sum / static_cast<double>(samples_.size());
  s.max = *std::max_element(samples_.begin(), samples_.end());
  // A tail quantile q is only resolved when at least one sample lies
  // beyond it, i.e. count·(1−q) ≥ 1; below that, clamp to max and flag.
  const auto resolved = [&](double q) {
    return static_cast<double>(samples_.size()) * (1.0 - q) >= 1.0;
  };
  s.p50 = percentile(samples_, 0.50);
  if (resolved(0.99)) {
    s.p99 = percentile(samples_, 0.99);
  } else {
    s.p99 = s.max;
    s.low_sample = true;
  }
  if (resolved(0.999)) {
    s.p999 = percentile(samples_, 0.999);
  } else {
    s.p999 = s.max;
    s.low_sample = true;
  }
  return s;
}

}  // namespace tofmcl::serve
