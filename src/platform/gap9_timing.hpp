#pragma once
/// \file gap9_timing.hpp
/// \brief Analytical execution-time model of MCL on GAP9 (Table I, Fig 10).
///
/// We do not have the physical SoC, so per the substitution policy the
/// timing substrate is an analytical machine model:
///
///     t_phase(N, cores, placement) =
///         F0 + F8·[cores > 1]                      (phase-fixed cycles)
///       + N · ( A·contention(cores)/cores          (compute per particle)
///             + B·[L2] / mem_parallel(cores) )     (L2 access per particle)
///
/// where A is the single-core per-particle cycle cost in L1, B the extra
/// cycles per particle when the buffers live in L2, `contention` models
/// L1-bank conflicts of the 8-worker cluster, and `mem_parallel` the
/// latency hiding that multiple cores get on L2 (the reason resampling
/// speeds up *more* at large N in the paper's Table I). A fixed ~40 µs
/// per update covers sensor preprocessing and transfers, "independent of
/// the numbers of particles and multicore usage" (Section IV-D).
///
/// The constants are calibrated against the published Table I; the
/// derivation of every number is spelled out in gap9_calibration.hpp, and
/// tests assert the model reproduces the paper within tolerance.

#include <cstddef>

#include "platform/gap9_spec.hpp"

namespace tofmcl::platform {

/// The four MCL phases of the paper's Table I.
enum class Phase {
  kObservation,
  kMotion,
  kResampling,
  kPoseComputation,
};
constexpr const char* to_string(Phase p) {
  switch (p) {
    case Phase::kObservation:
      return "observation";
    case Phase::kMotion:
      return "motion";
    case Phase::kResampling:
      return "resampling";
    case Phase::kPoseComputation:
      return "pose_comp";
  }
  return "unknown";
}
inline constexpr Phase kAllPhases[] = {Phase::kObservation, Phase::kMotion,
                                       Phase::kResampling,
                                       Phase::kPoseComputation};

/// Calibrated cost parameters of one phase (cycles).
struct PhaseCosts {
  double per_particle_l1 = 0.0;   ///< A: cycles/particle, L1, one core.
  double per_particle_l2 = 0.0;   ///< B: extra cycles/particle in L2.
  double fixed = 0.0;             ///< F0: per-invocation cycles.
  double fixed_parallel = 0.0;    ///< F8: extra fork–join cycles (8 cores).
  double contention = 1.0;        ///< Multi-core compute inefficiency.
  double mem_parallelism = 1.0;   ///< L2 latency hiding across 8 cores.
};

/// Full model: per-phase parameters + the per-update constant.
struct Gap9TimingModel {
  Gap9Spec spec;
  PhaseCosts observation;
  PhaseCosts motion;
  PhaseCosts resampling;
  PhaseCosts pose;
  /// Sensor preprocessing/transfer cycles added once per update cycle
  /// (≈ 40 µs at 400 MHz).
  double update_overhead_cycles = 16000.0;

  const PhaseCosts& costs(Phase p) const;

  /// Cycles for one phase over N particles on `cores` cluster cores.
  double phase_cycles(Phase p, std::size_t particles, std::size_t cores,
                      Placement placement) const;
  /// Nanoseconds at the given cluster frequency.
  double phase_ns(Phase p, std::size_t particles, std::size_t cores,
                  Placement placement, double frequency_mhz) const;
  /// Per-particle nanoseconds — the unit Table I reports.
  double phase_ns_per_particle(Phase p, std::size_t particles,
                               std::size_t cores, Placement placement,
                               double frequency_mhz) const;

  /// One full update cycle (all four phases + fixed overhead), ns.
  double update_ns(std::size_t particles, std::size_t cores,
                   Placement placement, double frequency_mhz) const;

  /// Speedup of `cores` vs one core for a phase (Fig 10).
  double phase_speedup(Phase p, std::size_t particles, std::size_t cores,
                       Placement placement) const;
  /// Total-update speedup including the constant overhead (Fig 10, total).
  double total_speedup(std::size_t particles, std::size_t cores,
                       Placement placement) const;

  /// Smallest cluster frequency (MHz) that still meets the real-time
  /// budget for the given workload (Table II's low-power operating point).
  double min_realtime_frequency_mhz(std::size_t particles, std::size_t cores,
                                    Placement placement) const;
};

/// The model calibrated against the paper's Table I (16 beams, 8×8 mode,
/// two sensors). See gap9_calibration.hpp.
Gap9TimingModel calibrated_timing_model();

}  // namespace tofmcl::platform
