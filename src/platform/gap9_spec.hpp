#pragma once
/// \file gap9_spec.hpp
/// \brief Architectural constants of the GAP9 SoC (paper Section III-B).
///
/// GAP9 is a RISC-V PULP-family SoC: a fabric controller plus a compute
/// cluster of 9 cores (1 orchestrator + 8 workers), 128 kB of shared L1,
/// 1.5 MB of interleaved L2 and 2 MB of flash, with adjustable frequency
/// and voltage domains up to 400 MHz.

#include <cstddef>

namespace tofmcl::platform {

struct Gap9Spec {
  std::size_t worker_cores = 8;       ///< Cluster workers (9th orchestrates).
  std::size_t l1_bytes = 128 * 1024;  ///< Shared cluster L1.
  std::size_t l2_bytes = 1536 * 1024; ///< Interleaved L2.
  std::size_t flash_bytes = 2 * 1024 * 1024;
  double max_frequency_mhz = 400.0;
  /// Real-time budget: the ToF sensor delivers 8×8 frames at 15 Hz, so a
  /// full update must finish within 1/15 s (paper Section IV-E uses 67 ms).
  double realtime_budget_ms = 66.7;
};

/// Which memory level holds the particle buffers. The paper stores up to
/// 1024 particles (fp32, double-buffered: 32 kB) in L1 and moves larger
/// sets to L2 (footnote of Tables I/II).
enum class Placement {
  kL1,
  kL2,
};

/// Placement the paper uses for a given particle-buffer size.
constexpr Placement placement_for(std::size_t particle_buffer_bytes,
                                  const Gap9Spec& spec = {}) {
  // Leave headroom in L1 for the working set of the runtime (stacks,
  // beam table, LUT): particles get at most half of L1.
  return particle_buffer_bytes <= spec.l1_bytes / 2 ? Placement::kL1
                                                    : Placement::kL2;
}

}  // namespace tofmcl::platform
