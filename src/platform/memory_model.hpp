#pragma once
/// \file memory_model.hpp
/// \brief Particle-count vs map-size capacity model (paper Fig 9).
///
/// The two memory consumers of on-board MCL are the map — occupancy byte
/// plus distance value per cell — and the double-buffered particle array.
/// Fig 9 plots, for L1 (128 kB) and L2 (1.5 MB), how many particles fit
/// alongside a map of a given area at 0.05 m resolution, for the
/// full-precision (5 B/cell, 32 B/particle) and quantized/FP16 (2 B/cell,
/// 16 B/particle) representations.

#include <cstddef>

#include "core/mcl_config.hpp"
#include "platform/gap9_spec.hpp"

namespace tofmcl::platform {

/// Per-cell and per-particle footprint of a precision variant.
struct MemoryFootprint {
  std::size_t bytes_per_cell = 0;
  std::size_t bytes_per_particle = 0;  ///< Including the double buffer.
};
MemoryFootprint footprint_of(core::Precision precision);

/// Map bytes for an area (m²) at a resolution (m/cell).
std::size_t map_bytes(double area_m2, double resolution_m,
                      core::Precision precision);

/// Particle bytes (double-buffered) for a count.
std::size_t particle_bytes(std::size_t particles, core::Precision precision);

/// Largest particle count that fits a memory of `budget_bytes` together
/// with a map of `area_m2`; 0 when the map alone exceeds the budget.
std::size_t max_particles(double area_m2, double resolution_m,
                          core::Precision precision,
                          std::size_t budget_bytes);

/// Largest map area (m²) that fits together with a particle count.
double max_map_area_m2(std::size_t particles, double resolution_m,
                       core::Precision precision, std::size_t budget_bytes);

}  // namespace tofmcl::platform
