#include "platform/gap9_timing.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "platform/gap9_calibration.hpp"

namespace tofmcl::platform {

const PhaseCosts& Gap9TimingModel::costs(Phase p) const {
  switch (p) {
    case Phase::kObservation:
      return observation;
    case Phase::kMotion:
      return motion;
    case Phase::kResampling:
      return resampling;
    case Phase::kPoseComputation:
      return pose;
  }
  throw PreconditionError("unknown phase");
}

double Gap9TimingModel::phase_cycles(Phase p, std::size_t particles,
                                     std::size_t cores,
                                     Placement placement) const {
  TOFMCL_EXPECTS(particles > 0, "need at least one particle");
  TOFMCL_EXPECTS(cores >= 1 && cores <= spec.worker_cores,
                 "core count outside the cluster");
  const PhaseCosts& c = costs(p);
  const double n = static_cast<double>(particles);
  const double k = static_cast<double>(cores);

  double fixed = c.fixed;
  double per_particle = c.per_particle_l1;
  if (cores > 1) {
    fixed += c.fixed_parallel;
    // Contention interpolates from none (1 core) to the calibrated value
    // (full cluster) with the number of active cores.
    const double contention =
        1.0 + (c.contention - 1.0) * (k - 1.0) /
                  (static_cast<double>(spec.worker_cores) - 1.0);
    per_particle = c.per_particle_l1 * contention / k;
  }
  if (placement == Placement::kL2) {
    const double mem_par = cores > 1 ? c.mem_parallelism : 1.0;
    per_particle += c.per_particle_l2 / mem_par;
  }
  return fixed + n * per_particle;
}

double Gap9TimingModel::phase_ns(Phase p, std::size_t particles,
                                 std::size_t cores, Placement placement,
                                 double frequency_mhz) const {
  TOFMCL_EXPECTS(frequency_mhz > 0.0, "frequency must be positive");
  const double cycles = phase_cycles(p, particles, cores, placement);
  return cycles * 1000.0 / frequency_mhz;
}

double Gap9TimingModel::phase_ns_per_particle(Phase p, std::size_t particles,
                                              std::size_t cores,
                                              Placement placement,
                                              double frequency_mhz) const {
  return phase_ns(p, particles, cores, placement, frequency_mhz) /
         static_cast<double>(particles);
}

double Gap9TimingModel::update_ns(std::size_t particles, std::size_t cores,
                                  Placement placement,
                                  double frequency_mhz) const {
  double cycles = update_overhead_cycles;
  for (const Phase p : kAllPhases) {
    cycles += phase_cycles(p, particles, cores, placement);
  }
  return cycles * 1000.0 / frequency_mhz;
}

double Gap9TimingModel::phase_speedup(Phase p, std::size_t particles,
                                      std::size_t cores,
                                      Placement placement) const {
  return phase_cycles(p, particles, 1, placement) /
         phase_cycles(p, particles, cores, placement);
}

double Gap9TimingModel::total_speedup(std::size_t particles,
                                      std::size_t cores,
                                      Placement placement) const {
  double serial = update_overhead_cycles;
  double parallel = update_overhead_cycles;
  for (const Phase p : kAllPhases) {
    serial += phase_cycles(p, particles, 1, placement);
    parallel += phase_cycles(p, particles, cores, placement);
  }
  return serial / parallel;
}

double Gap9TimingModel::min_realtime_frequency_mhz(
    std::size_t particles, std::size_t cores, Placement placement) const {
  double cycles = update_overhead_cycles;
  for (const Phase p : kAllPhases) {
    cycles += phase_cycles(p, particles, cores, placement);
  }
  // cycles / f ≤ budget  →  f ≥ cycles / budget.
  const double budget_us = spec.realtime_budget_ms * 1000.0;
  return cycles / budget_us;  // cycles per µs == MHz
}

Gap9TimingModel calibrated_timing_model() {
  namespace cal = calibration;
  Gap9TimingModel m;
  m.observation = {cal::kObsPerParticleL1,  cal::kObsPerParticleL2,
                   cal::kObsFixed,          cal::kObsFixedParallel,
                   cal::kObsContention,     cal::kObsMemParallelism};
  m.motion = {cal::kMotPerParticleL1,  cal::kMotPerParticleL2,
              cal::kMotFixed,          cal::kMotFixedParallel,
              cal::kMotContention,     cal::kMotMemParallelism};
  m.resampling = {cal::kResPerParticleL1,  cal::kResPerParticleL2,
                  cal::kResFixed,          cal::kResFixedParallel,
                  cal::kResContention,     cal::kResMemParallelism};
  m.pose = {cal::kPosePerParticleL1,  cal::kPosePerParticleL2,
            cal::kPoseFixed,          cal::kPoseFixedParallel,
            cal::kPoseContention,     cal::kPoseMemParallelism};
  m.update_overhead_cycles = cal::kUpdateOverheadCycles;
  return m;
}

}  // namespace tofmcl::platform
