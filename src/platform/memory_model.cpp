#include "platform/memory_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tofmcl::platform {

MemoryFootprint footprint_of(core::Precision precision) {
  switch (precision) {
    case core::Precision::kFp32:
      // 1 B occupancy + 4 B float EDT; 16 B particle × double buffer.
      return {5, 32};
    case core::Precision::kFp32Qm:
      // Quantized map with fp32 particles.
      return {2, 32};
    case core::Precision::kFp16Qm:
      // Quantized map with fp16 particles (8 B × double buffer).
      return {2, 16};
  }
  throw ConfigError("unknown precision variant");
}

std::size_t map_bytes(double area_m2, double resolution_m,
                      core::Precision precision) {
  TOFMCL_EXPECTS(area_m2 >= 0.0, "area must be non-negative");
  TOFMCL_EXPECTS(resolution_m > 0.0, "resolution must be positive");
  const double cells = area_m2 / (resolution_m * resolution_m);
  return static_cast<std::size_t>(std::ceil(cells)) *
         footprint_of(precision).bytes_per_cell;
}

std::size_t particle_bytes(std::size_t particles,
                           core::Precision precision) {
  return particles * footprint_of(precision).bytes_per_particle;
}

std::size_t max_particles(double area_m2, double resolution_m,
                          core::Precision precision,
                          std::size_t budget_bytes) {
  const std::size_t map = map_bytes(area_m2, resolution_m, precision);
  if (map >= budget_bytes) return 0;
  return (budget_bytes - map) / footprint_of(precision).bytes_per_particle;
}

double max_map_area_m2(std::size_t particles, double resolution_m,
                       core::Precision precision,
                       std::size_t budget_bytes) {
  const std::size_t pbytes = particle_bytes(particles, precision);
  if (pbytes >= budget_bytes) return 0.0;
  const double cells =
      static_cast<double>(budget_bytes - pbytes) /
      static_cast<double>(footprint_of(precision).bytes_per_cell);
  return cells * resolution_m * resolution_m;
}

}  // namespace tofmcl::platform
