#pragma once
/// \file gap9_calibration.hpp
/// \brief Calibration of the GAP9 timing model against the paper's Table I.
///
/// Table I reports per-particle execution times (ns, 400 MHz → 0.4
/// cycles/ns) for 1 and 8 cores at N ∈ {64, 256, 1024, 4096, 16384}, with
/// N ≥ 4096 held in L2. Each parameter below is derived from those
/// numbers:
///
/// *Per-particle L1 cost (A)*: the large-N single-core asymptote in L1,
///   e.g. observation 8518 ns → 3407 cycles at N = 1024.
/// *L2 surcharge (B)*: the single-core step from N=1024 (L1) to N=4096
///   (L2), e.g. observation (8649−8518) ns → 52 cycles.
/// *Fixed cycles (F0)*: the rise of the single-core per-particle time at
///   N = 64 over the asymptote, e.g. motion (2828−2689) ns × 64 → ≈3560
///   cycles of per-invocation setup.
/// *Fork–join cost (F8)*: the same construction on the 8-core column,
///   e.g. observation (1412−1283) ns × 64 → ≈3300 extra cycles.
/// *Contention (c8)*: deviation of the 8-core asymptote from a perfect
///   8×, e.g. observation 8518/1283 = 6.64× → c8 = 8/6.64 ≈ 1.205. The
///   shared-L1 banking conflicts of the cluster make this phase-dependent.
/// *Memory parallelism (m8)*: how much of the L2 surcharge the 8 cores
///   hide by overlapping misses. Resampling is the extreme case the paper
///   highlights: 556 ns/particle on one core in L2 but only ~104 ns on 8
///   cores (5.3×) versus a 1.9× speedup in L1 — concurrent L2 accesses
///   pipeline, serial ones pay full latency.
///
/// The per-update constant (≈ 40 µs → 16000 cycles) is stated directly in
/// Section IV-D. Tests (test_gap9_timing.cpp) assert the reconstructed
/// Table I matches the published one within tolerance.

#include "platform/gap9_timing.hpp"

namespace tofmcl::platform::calibration {

inline constexpr double kCyclesPerNs400MHz = 0.4;

/// Observation: 16-beam end-point model per particle.
inline constexpr double kObsPerParticleL1 = 3407.0;   // 8518 ns
inline constexpr double kObsPerParticleL2 = 52.0;     // +131 ns
inline constexpr double kObsFixed = 330.0;
inline constexpr double kObsFixedParallel = 2970.0;
inline constexpr double kObsContention = 1.205;
inline constexpr double kObsMemParallelism = 12.0;

/// Motion: three Gaussian draws + pose composition per particle.
inline constexpr double kMotPerParticleL1 = 1076.0;   // 2689 ns
inline constexpr double kMotPerParticleL2 = 125.0;    // +313 ns
inline constexpr double kMotFixed = 3560.0;
inline constexpr double kMotFixedParallel = 100.0;
inline constexpr double kMotContention = 1.062;
inline constexpr double kMotMemParallelism = 10.0;

/// Resampling: systematic wheel walk + 16..32 B particle copy.
inline constexpr double kResPerParticleL1 = 64.4;     // 161 ns
inline constexpr double kResPerParticleL2 = 158.0;    // +395 ns
inline constexpr double kResFixed = 3890.0;
inline constexpr double kResFixedParallel = 372.0;
inline constexpr double kResContention = 4.15;        // L1-bank bound copy
inline constexpr double kResMemParallelism = 20.0;

/// Pose computation: weighted sums reduction.
inline constexpr double kPosePerParticleL1 = 241.6;   // 604 ns
inline constexpr double kPosePerParticleL2 = 69.0;    // +173 ns
inline constexpr double kPoseFixed = 3740.0;
inline constexpr double kPoseFixedParallel = 50.0;
inline constexpr double kPoseContention = 1.139;
inline constexpr double kPoseMemParallelism = 11.5;

/// Sensor preprocessing + transfer per update (Section IV-D: ≈ 40 µs).
inline constexpr double kUpdateOverheadCycles = 16000.0;

}  // namespace tofmcl::platform::calibration
