#pragma once
/// \file gap9_power.hpp
/// \brief DVFS power model of GAP9 and the system power budget (Table II,
///        Section IV-E).
///
/// Active power follows the standard CMOS decomposition
///     P(f) = V(f)² · (P_leak + c_dyn · f)
/// with the effective voltage interpolated between calibrated DVFS anchor
/// points. The anchors are fitted so the model reproduces the paper's
/// measured operating points: 61 mW @ 400 MHz, 38 mW @ 200 MHz and
/// 13 mW @ 12 MHz. (The 12 MHz effective voltage comes out below GAP9's
/// nominal supply range — at that point parts of the SoC are clock/power
/// gated, which the single effective-voltage knob absorbs.)
///
/// The system budget mirrors Section IV-E: each VL53L5CX draws 320 mW,
/// the remaining Crazyflie electronics 280 mW, and sensing + processing
/// together stay below 7 % of the drone's total power.

#include <cstddef>
#include <vector>

#include "platform/gap9_timing.hpp"

namespace tofmcl::platform {

/// One DVFS anchor: frequency and fitted effective voltage.
struct DvfsPoint {
  double frequency_mhz = 0.0;
  double voltage = 0.0;
};

class Gap9PowerModel {
 public:
  /// Calibrated model (see file comment).
  Gap9PowerModel();

  /// Effective voltage at a cluster frequency (piecewise linear between
  /// anchors, clamped at the ends).
  double voltage_at(double frequency_mhz) const;

  /// Average active power (mW) while executing MCL at a frequency.
  double active_power_mw(double frequency_mhz) const;

  /// Energy (µJ) of one localization update.
  double update_energy_uj(const Gap9TimingModel& timing,
                          std::size_t particles, std::size_t cores,
                          Placement placement, double frequency_mhz) const;

 private:
  std::vector<DvfsPoint> anchors_;
  double leakage_mw_per_v2_;   ///< P_leak / V².
  double dynamic_mw_per_v2_mhz_;  ///< c_dyn.
};

/// Power budget of the complete platform (Section IV-E).
struct SystemPowerBudget {
  double tof_sensor_mw = 320.0;     ///< Per VL53L5CX.
  std::size_t tof_sensors = 2;
  double electronics_mw = 280.0;    ///< Crazyflie minus motors.
  /// Motor/hover power chosen so that the paper's 981 mW of sensing +
  /// processing lands at ≈ 7 % of the total (Section IV-E).
  double hover_mw = 13000.0;

  /// Total sensing + processing draw for a given GAP9 power.
  double sensing_processing_mw(double gap9_mw) const {
    return static_cast<double>(tof_sensors) * tof_sensor_mw +
           electronics_mw + gap9_mw;
  }
  /// Whole-drone power.
  double total_mw(double gap9_mw) const {
    return hover_mw + sensing_processing_mw(gap9_mw);
  }
  /// Fraction of the drone's power spent on sensing + processing.
  double overhead_fraction(double gap9_mw) const {
    return sensing_processing_mw(gap9_mw) / total_mw(gap9_mw);
  }
};

}  // namespace tofmcl::platform
