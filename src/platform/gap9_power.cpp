#include "platform/gap9_power.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tofmcl::platform {

namespace {
// Fit of P = V² (L0 + C f) to the published 400/200 MHz points:
//   0.64 (L0 + 400 C) = 61 mW,  0.49 (L0 + 200 C) = 38 mW
// → C = 0.0888 mW/(V² MHz), L0 = 59.8 mW/V². The 12 MHz anchor voltage
// then follows from 13 mW = V² (L0 + 12 C) → V ≈ 0.46.
constexpr double kLeakageMwPerV2 = 59.8;
constexpr double kDynamicMwPerV2Mhz = 0.0888;
}  // namespace

Gap9PowerModel::Gap9PowerModel()
    : anchors_{{12.0, 0.46}, {200.0, 0.70}, {400.0, 0.80}},
      leakage_mw_per_v2_(kLeakageMwPerV2),
      dynamic_mw_per_v2_mhz_(kDynamicMwPerV2Mhz) {}

double Gap9PowerModel::voltage_at(double frequency_mhz) const {
  TOFMCL_EXPECTS(frequency_mhz > 0.0, "frequency must be positive");
  if (frequency_mhz <= anchors_.front().frequency_mhz) {
    return anchors_.front().voltage;
  }
  if (frequency_mhz >= anchors_.back().frequency_mhz) {
    return anchors_.back().voltage;
  }
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    if (frequency_mhz <= anchors_[i].frequency_mhz) {
      const DvfsPoint& lo = anchors_[i - 1];
      const DvfsPoint& hi = anchors_[i];
      const double alpha = (frequency_mhz - lo.frequency_mhz) /
                           (hi.frequency_mhz - lo.frequency_mhz);
      return lo.voltage + alpha * (hi.voltage - lo.voltage);
    }
  }
  return anchors_.back().voltage;
}

double Gap9PowerModel::active_power_mw(double frequency_mhz) const {
  const double v = voltage_at(frequency_mhz);
  return v * v * (leakage_mw_per_v2_ + dynamic_mw_per_v2_mhz_ * frequency_mhz);
}

double Gap9PowerModel::update_energy_uj(const Gap9TimingModel& timing,
                                        std::size_t particles,
                                        std::size_t cores,
                                        Placement placement,
                                        double frequency_mhz) const {
  const double t_ms =
      timing.update_ns(particles, cores, placement, frequency_mhz) * 1e-6;
  return active_power_mw(frequency_mhz) * t_ms;  // mW · ms = µJ
}

}  // namespace tofmcl::platform
