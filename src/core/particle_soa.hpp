#pragma once
/// \file particle_soa.hpp
/// \brief Structure-of-arrays particle storage for the MCL hot path.
///
/// The filter's four phases stream over every particle touching one or two
/// of its four fields at a time. Array-of-structures storage
/// (x,y,yaw,w | x,y,yaw,w | …) makes those streams strided, which defeats
/// auto-vectorization of the motion/observation kernels; keeping each
/// field in its own contiguous array gives the compiler unit-stride loads
/// and lets the observation loop vectorize across particles — the same
/// layout argument the GAP9 port makes for its L1 tiles.
///
/// Total memory is unchanged: four arrays of N Scalars is exactly
/// N · sizeof(Particle<Scalar>) bytes, so the Fig 9 accounting in
/// particle.hpp still holds.
///
/// The old AoS API survives as a THIN VIEW: ParticleSpan hands out
/// reference proxies with `.x/.y/.yaw/.weight` members that alias the
/// arrays, so existing call sites (`for (const auto& p : pf.particles())`,
/// `pf.mutable_particles()[i].weight = …`) keep working unmodified.

#include <cstddef>
#include <vector>

#include "core/particle.hpp"

namespace tofmcl::core {

/// Particle storage: one contiguous array per field.
template <typename Scalar>
struct ParticleSoA {
  std::vector<Scalar> x;
  std::vector<Scalar> y;
  std::vector<Scalar> yaw;
  std::vector<Scalar> weight;

  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    yaw.resize(n);
    weight.resize(n);
  }

  /// Pre-sizes the backing arrays (arena size classes) without changing
  /// size(); later resizes within the reservation never reallocate.
  void reserve(std::size_t n) {
    x.reserve(n);
    y.reserve(n);
    yaw.reserve(n);
    weight.reserve(n);
  }

  std::size_t size() const { return x.size(); }
  std::size_t capacity() const { return x.capacity(); }

  /// Copies one particle (all four fields) from `other[src]` to
  /// `(*this)[dst]` — the resampling "draw" in SoA form.
  void copy_from(const ParticleSoA& other, std::size_t dst, std::size_t src) {
    x[dst] = other.x[src];
    y[dst] = other.y[src];
    yaw[dst] = other.yaw[src];
    weight[dst] = other.weight[src];
  }

  void swap(ParticleSoA& other) noexcept {
    x.swap(other.x);
    y.swap(other.y);
    yaw.swap(other.yaw);
    weight.swap(other.weight);
  }
};

/// Mutable reference proxy: four references aliasing one SoA slot, shaped
/// like Particle<Scalar>.
template <typename Scalar>
struct ParticleRef {
  Scalar& x;
  Scalar& y;
  Scalar& yaw;
  Scalar& weight;

  ParticleRef& operator=(const Particle<Scalar>& p) {
    x = p.x;
    y = p.y;
    yaw = p.yaw;
    weight = p.weight;
    return *this;
  }
  operator Particle<Scalar>() const { return {x, y, yaw, weight}; }
};

/// Read-only reference proxy.
template <typename Scalar>
struct ParticleCRef {
  const Scalar& x;
  const Scalar& y;
  const Scalar& yaw;
  const Scalar& weight;

  operator Particle<Scalar>() const { return {x, y, yaw, weight}; }
};

/// AoS-style view over a ParticleSoA: indexing and iteration yield
/// reference proxies. Supports the subset of std::span<Particle> the
/// call sites actually use (size, operator[], range-for).
template <typename Scalar, bool Const>
class ParticleSpan {
  using Storage =
      std::conditional_t<Const, const ParticleSoA<Scalar>, ParticleSoA<Scalar>>;
  using Ref = std::conditional_t<Const, ParticleCRef<Scalar>, ParticleRef<Scalar>>;

 public:
  explicit ParticleSpan(Storage& soa) : soa_(&soa) {}

  std::size_t size() const { return soa_->size(); }

  Ref operator[](std::size_t i) const {
    return Ref{soa_->x[i], soa_->y[i], soa_->yaw[i], soa_->weight[i]};
  }

  class iterator {
   public:
    iterator(Storage* soa, std::size_t i) : soa_(soa), i_(i) {}
    Ref operator*() const {
      return Ref{soa_->x[i_], soa_->y[i_], soa_->yaw[i_], soa_->weight[i_]};
    }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const iterator& other) const { return i_ != other.i_; }
    bool operator==(const iterator& other) const { return i_ == other.i_; }

   private:
    Storage* soa_;
    std::size_t i_;
  };

  iterator begin() const { return iterator(soa_, 0); }
  iterator end() const { return iterator(soa_, soa_->size()); }

 private:
  Storage* soa_;
};

}  // namespace tofmcl::core
