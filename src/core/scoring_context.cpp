#include "core/scoring_context.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace tofmcl::core {

std::shared_ptr<const MapResources> build_map_resources(
    const map::OccupancyGrid& grid, const MclConfig& mcl,
    std::span<const Precision> precisions) {
  TOFMCL_EXPECTS(!precisions.empty(), "need at least one precision");
  auto res = std::make_shared<MapResources>();
  res->free_cells = grid.free_cell_centers();
  res->cell_jitter = grid.resolution() / 2.0;
  res->rmax = mcl.rmax;
  const bool need_float =
      std::find(precisions.begin(), precisions.end(), Precision::kFp32) !=
      precisions.end();
  const bool need_quantized =
      std::find_if(precisions.begin(), precisions.end(), [](Precision p) {
        return p == Precision::kFp32Qm || p == Precision::kFp16Qm;
      }) != precisions.end();
  if (need_float) res->float_map.emplace(grid, mcl.rmax);
  if (need_quantized) {
    res->quantized_map.emplace(grid, mcl.rmax);
    res->lut_params = beam_model_params(mcl);
    res->lut.emplace(res->quantized_map->step(), res->lut_params);
  }
  return res;
}

std::vector<sensor::TofSensorConfig> default_sensor_deck() {
  sensor::TofSensorConfig front;
  front.sensor_id = 0;
  front.mount = Pose2{0.02, 0.0, 0.0};
  sensor::TofSensorConfig rear;
  rear.sensor_id = 1;
  rear.mount = Pose2{-0.02, 0.0, kPi};
  return {front, rear};
}

std::shared_ptr<const ScoringContext> build_scoring_context(
    std::shared_ptr<const MapResources> maps, LocalizerConfig config) {
  TOFMCL_EXPECTS(maps != nullptr, "scoring context needs map resources");
  if (config.sensors.empty()) config.sensors = default_sensor_deck();
  return std::make_shared<const ScoringContext>(
      std::move(maps), std::move(config), std::make_shared<ParticleArena>());
}

std::shared_ptr<const ScoringContext> build_scoring_context(
    const map::OccupancyGrid& grid, LocalizerConfig config) {
  auto maps = build_map_resources(
      grid, config.mcl, std::span<const Precision>(&config.precision, 1));
  return build_scoring_context(std::move(maps), std::move(config));
}

namespace {

/// Exact double rendering for the fingerprint (hexfloat — the repo's
/// trace convention, so equal fingerprints mean bit-equal parameters).
void append(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a|", v);
  out += buf;
}

void append(std::string& out, std::size_t v) {
  out += std::to_string(v);
  out += '|';
}

void append(std::string& out, bool v) { out += v ? "1|" : "0|"; }

void append(std::string& out, int v) {
  out += std::to_string(v);
  out += '|';
}

}  // namespace

std::string scoring_fingerprint(const LocalizerConfig& config) {
  std::string out;
  out.reserve(512);
  const MclConfig& m = config.mcl;
  out += "mcl:";
  append(out, m.sigma_odom_xy);
  append(out, m.sigma_odom_yaw);
  append(out, m.scale_noise_with_motion);
  append(out, m.sigma_obs);
  append(out, m.z_hit);
  append(out, m.z_rand);
  append(out, m.z_short);
  append(out, m.lambda_short);
  append(out, m.enable_novelty_gating);
  append(out, m.novelty_margin_m);
  append(out, m.novelty_max_blind_updates);
  append(out, m.novelty_min_concentration);
  append(out, m.rmax);
  append(out, m.gate_dxy);
  append(out, m.gate_dtheta);
  append(out, m.resample_ess_fraction);
  append(out, m.enable_injection);
  append(out, m.injection_alpha_slow);
  append(out, m.injection_alpha_fast);
  append(out, m.injection_max_fraction);
  append(out, m.adaptive_particles);
  append(out, m.min_particles);
  append(out, m.kld_epsilon);
  append(out, m.kld_z);
  append(out, m.kld_bin_xy);
  append(out, m.kld_bin_yaw);
  append(out, m.chunks);
  append(out, static_cast<std::size_t>(m.weight_precision));
  out += "prec:";
  out += to_string(config.precision);
  out += "|extract:";
  for (const int row : config.extraction.rows) append(out, row);
  out += ';';
  append(out, config.extraction.min_range_m);
  append(out, config.extraction.max_range_m);
  out += "sensors:";
  for (const sensor::TofSensorConfig& s : config.sensors) {
    append(out, s.sensor_id);
    append(out, static_cast<std::size_t>(s.mode));
    append(out, s.mount.x());
    append(out, s.mount.y());
    append(out, s.mount.yaw);
    append(out, s.fov_rad);
    append(out, s.max_range_m);
    append(out, s.min_range_m);
    append(out, s.sigma_base_m);
    append(out, s.sigma_proportional);
    append(out, s.p_interference);
    append(out, s.grazing_limit_rad);
    append(out, s.p_grazing_dropout);
    append(out, s.flight_height_m);
    append(out, s.wall_height_m);
    out += ';';
  }
  return out;
}

}  // namespace tofmcl::core
