#pragma once
/// \file scoring_context.hpp
/// \brief The immutable, shareable half of the Localizer split.
///
/// Everything a correction READS but never writes — distance maps,
/// likelihood LUT, free-space support, beam geometry, the resolved
/// configuration, and the particle arena the map's sessions allocate from
/// — is bundled into one ScoringContext, built once per (map, scoring
/// parameters) and pointer-shared by every session localizing on that
/// map. The mutable counterpart is FilterState (filter_state.hpp): a few
/// kilobytes per session instead of the megabytes the context holds.
///
/// Immutability is a checked invariant, not a convention: ScoringContext
/// exposes only const member functions, and the `context-immutable` lint
/// rule rejects any non-const member (or mutable field) added outside the
/// builder — a context is shared across threads without locks precisely
/// because nothing can write to it after build_scoring_context returns.
///
/// Sessions differ from each other only in SessionKnobs (seed, particle
/// budget) — the two fields deliberately EXCLUDED from
/// scoring_fingerprint(), so the serving layer can key its context cache
/// on (map, fingerprint) and share one context across thousands of
/// sessions that differ only in those knobs.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/geometry.hpp"
#include "core/likelihood.hpp"
#include "core/mcl_config.hpp"
#include "core/particle_arena.hpp"
#include "map/distance_map.hpp"
#include "map/occupancy_grid.hpp"
#include "sensor/beam_model.hpp"
#include "sensor/tof_sensor.hpp"

namespace tofmcl::core {

struct LocalizerConfig {
  MclConfig mcl;
  Precision precision = Precision::kFp32;
  /// Zone→beam extraction settings shared by all sensors.
  sensor::BeamExtractionConfig extraction;
  /// Mounted sensors; frames are matched by sensor_id. Defaults to the
  /// paper's deck (front id 0, rear id 1) when left empty.
  std::vector<sensor::TofSensorConfig> sensors;
};

/// Read-only per-map state shared by every localizer on that map: the
/// free-space support, the distance field(s) and the likelihood LUT. Built
/// once per (grid, MCL parameters) and handed out as shared_ptr-to-const;
/// campaign batches reuse it across all concurrent runs.
struct MapResources {
  std::vector<Vec2> free_cells;
  double cell_jitter = 0.0;
  double rmax = 0.0;
  std::optional<map::DistanceMap> float_map;
  std::optional<map::QuantizedDistanceMap> quantized_map;
  /// Prebuilt LUT for the quantized maps; only valid for filters whose
  /// beam-model parameters equal lut_params.
  std::optional<LikelihoodLut> lut;
  BeamModelParams lut_params{};
};

/// Builds the resources needed by `precisions` from one occupancy grid:
/// the float EDT iff kFp32 is requested, the quantized EDT (plus LUT) iff
/// a *qm precision is requested. `mcl` supplies rmax and the beam-model
/// parameters baked into the LUT.
std::shared_ptr<const MapResources> build_map_resources(
    const map::OccupancyGrid& grid, const MclConfig& mcl,
    std::span<const Precision> precisions);

/// The paper's sensor deck: a forward-facing (id 0) and a backward-facing
/// (id 1) VL53L5CX.
std::vector<sensor::TofSensorConfig> default_sensor_deck();

/// Immutable per-map scoring state: map resources + resolved configuration
/// + the arena sessions lease particle blocks from. Built by
/// build_scoring_context, shared as shared_ptr-to-const, never mutated —
/// see the file comment and the `context-immutable` lint rule.
class ScoringContext {
 public:
  ScoringContext(std::shared_ptr<const MapResources> maps,
                 LocalizerConfig config, std::shared_ptr<ParticleArena> arena)
      : maps_(std::move(maps)),
        config_(std::move(config)),
        arena_(std::move(arena)) {}

  const MapResources& maps() const { return *maps_; }
  const std::shared_ptr<const MapResources>& map_resources() const {
    return maps_;
  }
  /// Resolved configuration (sensors defaulted, ready for any session).
  const LocalizerConfig& config() const { return config_; }
  /// The per-map particle arena. The arena itself is internally
  /// synchronized; handing out a non-const pool from a const context is
  /// the same distinction a const std::shared_ptr makes.
  const std::shared_ptr<ParticleArena>& arena() const { return arena_; }

 private:
  std::shared_ptr<const MapResources> maps_;
  LocalizerConfig config_;
  std::shared_ptr<ParticleArena> arena_;
};

/// The per-session degrees of freedom: everything else a session runs
/// with comes from its shared ScoringContext.
struct SessionKnobs {
  std::uint64_t seed = 1;
  /// Particle budget override (≤ the context's num_particles makes the
  /// arena classes line up; any positive count is accepted).
  std::optional<std::size_t> num_particles;
};

/// Builds a context from prebuilt map resources. Resolves the config
/// (empty sensors → default deck) and creates the map's particle arena.
std::shared_ptr<const ScoringContext> build_scoring_context(
    std::shared_ptr<const MapResources> maps, LocalizerConfig config);

/// Convenience: builds the map resources for config.precision first.
std::shared_ptr<const ScoringContext> build_scoring_context(
    const map::OccupancyGrid& grid, LocalizerConfig config);

/// Deterministic key of every scoring-relevant configuration field —
/// all of LocalizerConfig EXCEPT the SessionKnobs fields (mcl.seed,
/// mcl.num_particles). Two configs with equal fingerprints can share one
/// ScoringContext; doubles are rendered as hexfloats so the key is exact.
std::string scoring_fingerprint(const LocalizerConfig& config);

}  // namespace tofmcl::core
