#include "core/localizer.hpp"
// TOFMCL_LINT_ALLOW_FILE(wall-clock): correction-latency self-timing only;
// steady_clock never feeds the filter state, so traces stay deterministic.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

namespace tofmcl::core {

const char* to_string(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kFp32Qm:
      return "fp32qm";
    case Precision::kFp16Qm:
      return "fp16qm";
  }
  return "unknown";
}

namespace {

/// LUT-reuse test: the table covers the map-distance part of the mixture
/// only (hit + rand), so z_short / lambda_short are deliberately NOT
/// compared — one shared table serves every short-return setting riding on
/// the same (sigma_obs, z_hit, z_rand), e.g. a campaign's observation-
/// model robustness axis.
bool params_equal(const BeamModelParams& a, const BeamModelParams& b) {
  return a.sigma_obs == b.sigma_obs && a.z_hit == b.z_hit &&
         a.z_rand == b.z_rand;
}

/// Builds a quantized-map filter, reusing the shared LUT when it was
/// built for this run's beam-model parameters and falling back to a
/// per-filter table otherwise.
template <typename Traits, typename Variant>
Variant make_qm_filter(const MapResources& maps, const LocalizerConfig& config,
                       Executor& executor,
                       std::shared_ptr<ParticleArena> arena) {
  TOFMCL_EXPECTS(maps.quantized_map.has_value(),
                 "shared map resources lack the quantized EDT");
  if (maps.lut.has_value() &&
      params_equal(maps.lut_params, beam_model_params(config.mcl))) {
    return Variant(std::in_place_type<ParticleFilter<Traits>>,
                   *maps.quantized_map, config.mcl, executor,
                   LutObservationModel(*maps.quantized_map, *maps.lut),
                   std::move(arena));
  }
  return Variant(std::in_place_type<ParticleFilter<Traits>>,
                 *maps.quantized_map, config.mcl, executor, std::move(arena));
}

/// Context config + session knobs → the per-session LocalizerConfig.
LocalizerConfig session_config(const ScoringContext& ctx,
                               const SessionKnobs& knobs) {
  LocalizerConfig config = ctx.config();
  config.mcl.seed = knobs.seed;
  if (knobs.num_particles) config.mcl.num_particles = *knobs.num_particles;
  return config;
}

}  // namespace

Localizer::FilterVariant Localizer::make_filter(
    const MapResources& maps, const LocalizerConfig& config,
    Executor& executor, std::shared_ptr<ParticleArena> arena) {
  switch (config.precision) {
    case Precision::kFp32:
      TOFMCL_EXPECTS(maps.float_map.has_value(),
                     "shared map resources lack the float EDT");
      return FilterVariant(std::in_place_type<ParticleFilter<Fp32Traits>>,
                           *maps.float_map, config.mcl, executor,
                           std::move(arena));
    case Precision::kFp32Qm:
      return make_qm_filter<Fp32QmTraits, FilterVariant>(maps, config,
                                                         executor,
                                                         std::move(arena));
    case Precision::kFp16Qm:
      return make_qm_filter<Fp16QmTraits, FilterVariant>(maps, config,
                                                         executor,
                                                         std::move(arena));
  }
  throw ConfigError("unknown precision variant");
}

Localizer::Localizer(const map::OccupancyGrid& grid,
                     const LocalizerConfig& config, Executor& executor)
    : Localizer(build_map_resources(grid, config.mcl,
                                    std::span<const Precision>(
                                        &config.precision, 1)),
                config, executor) {}

Localizer::Localizer(std::shared_ptr<const MapResources> maps,
                     const LocalizerConfig& config, Executor& executor)
    : config_(config),
      maps_(std::move(maps)),
      filter_(make_filter(*maps_, config_, executor)) {
  TOFMCL_EXPECTS(!maps_->free_cells.empty(),
                 "map has no free cells to localize in");
  TOFMCL_EXPECTS(maps_->rmax == config_.mcl.rmax,
                 "shared map resources built with a different rmax");
  if (config_.sensors.empty()) config_.sensors = default_sensor_deck();
}

Localizer::Localizer(std::shared_ptr<const ScoringContext> ctx,
                     const SessionKnobs& knobs, Executor& executor)
    : config_(session_config(*ctx, knobs)),
      maps_(ctx->map_resources()),
      filter_(make_filter(*maps_, config_, executor, ctx->arena())),
      ctx_(std::move(ctx)) {
  TOFMCL_EXPECTS(!maps_->free_cells.empty(),
                 "map has no free cells to localize in");
  // build_scoring_context resolved the sensors; guard against a context
  // assembled by hand with an empty deck.
  if (config_.sensors.empty()) config_.sensors = default_sensor_deck();
}

void Localizer::start_global() {
  SerialGuard::Scope serial(serial_guard_);
  std::visit(
      [&](auto& pf) {
        pf.init_uniform(maps_->free_cells, maps_->cell_jitter);
      },
      filter_);
  last_motion_odom_ = current_odom_;
  gate_odom_ = current_odom_;
  updates_run_ = 0;
}

void Localizer::start_at(const Pose2& pose, double sigma_xy,
                         double sigma_yaw) {
  SerialGuard::Scope serial(serial_guard_);
  std::visit(
      [&](auto& pf) {
        pf.init_gaussian(pose, sigma_xy, sigma_yaw);
        // Recovery injection works in tracking mode too: a kidnapped or
        // lost tracker can re-seed hypotheses across the free space.
        pf.set_injection_support(maps_->free_cells, maps_->cell_jitter);
      },
      filter_);
  last_motion_odom_ = current_odom_;
  gate_odom_ = current_odom_;
  updates_run_ = 0;
}

void Localizer::on_odometry(const Pose2& odometry_pose) {
  SerialGuard::Scope serial(serial_guard_);
  current_odom_ = odometry_pose;
  if (!last_motion_odom_) last_motion_odom_ = odometry_pose;
  if (!gate_odom_) gate_odom_ = odometry_pose;
}

bool Localizer::gate_passed(const Pose2& delta) const {
  return delta.position.norm() >= config_.mcl.gate_dxy ||
         std::abs(delta.yaw) >= config_.mcl.gate_dtheta;
}

bool Localizer::on_frames(std::span<const sensor::TofFrame> frames) {
  SerialGuard::Scope serial(serial_guard_);
  if (!current_odom_ || !last_motion_odom_) return false;
  const auto t0 = std::chrono::steady_clock::now();

  std::size_t usable = 0;
  std::vector<sensor::Beam> beams;
  for (const sensor::TofFrame& frame : frames) {
    const auto it = std::find_if(
        config_.sensors.begin(), config_.sensors.end(),
        [&](const sensor::TofSensorConfig& s) {
          return s.sensor_id == frame.sensor_id;
        });
    // Malformed frames are dropped, not fatal: an unconfigured sensor id,
    // a mode differing from the configured sensor, or a zone payload that
    // does not match the advertised mode. The rest of the batch (and the
    // flight loop) continues.
    const auto zones_expected =
        static_cast<std::size_t>(frame.side()) *
        static_cast<std::size_t>(frame.side());
    if (it == config_.sensors.end() || frame.mode != it->mode ||
        frame.zones.size() != zones_expected) {
      ++dropped_frames_;
      continue;
    }
    ++usable;
    const auto frame_beams =
        sensor::extract_beams(frame, *it, config_.extraction);
    beams.insert(beams.end(), frame_beams.begin(), frame_beams.end());
  }

  // A batch whose every frame was malformed must not consume the
  // correction gate: sample the motion model (odometry accrued) but keep
  // the gate armed so the next VALID frame still gets its correction. A
  // usable frame with zero extractable beams still steps the full filter
  // — that is real (if uninformative) sensor data, unchanged semantics.
  if (!frames.empty() && usable == 0) {
    step_motion_only();
    return false;
  }
  const bool corrected = step_filter(beams);
  if (corrected) record_correction_time(t0);
  return corrected;
}

bool Localizer::on_beams(std::span<const sensor::Beam> beams) {
  SerialGuard::Scope serial(serial_guard_);
  if (!current_odom_ || !last_motion_odom_) return false;
  const auto t0 = std::chrono::steady_clock::now();
  const bool corrected = step_filter(beams);
  if (corrected) record_correction_time(t0);
  return corrected;
}

void Localizer::record_correction_time(
    std::chrono::steady_clock::time_point t0) {
  last_correction_s_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  total_correction_s_ += last_correction_s_;
}

void Localizer::step_motion_only() {
  const Pose2 motion_delta = last_motion_odom_->between(*current_odom_);
  last_motion_odom_ = current_odom_;
  std::visit([&](auto& pf) { pf.motion_update(motion_delta); }, filter_);
}

bool Localizer::step_filter(std::span<const sensor::Beam> beams) {
  // Motion phase on every tick: sample the proposal with the odometry
  // accrued since the last motion update. The σ_odom noise injected here
  // at the frame rate is what maintains particle diversity.
  const Pose2 motion_delta = last_motion_odom_->between(*current_odom_);
  last_motion_odom_ = current_odom_;

  // Correction phases only after enough motion (paper's dxy/dθ gate). The
  // gate depends on odometry alone, so it is decided first: a gated-out
  // tick runs the lone motion phase, a correction runs the fused
  // motion+observation pass (one sweep over the particle state).
  const Pose2 gate_delta = gate_odom_->between(*current_odom_);
  if (!gate_passed(gate_delta)) {
    std::visit([&](auto& pf) { pf.motion_update(motion_delta); }, filter_);
    return false;
  }
  std::visit(
      [&](auto& pf) {
        pf.motion_observation_update(motion_delta, beams);
        pf.resample();
        pf.compute_pose();
        // KLD adaptation of the active count; no-op in fixed-count mode.
        pf.adapt_particle_count();
      },
      filter_);
  gate_odom_ = current_odom_;
  ++updates_run_;
  return true;
}

const PoseEstimate& Localizer::estimate() const {
  return std::visit(
      [](const auto& pf) -> const PoseEstimate& { return pf.estimate(); },
      filter_);
}

const UpdateWorkload& Localizer::workload() const {
  return std::visit(
      [](const auto& pf) -> const UpdateWorkload& { return pf.workload(); },
      filter_);
}

const InjectionMonitor& Localizer::injection_monitor() const {
  return std::visit(
      [](const auto& pf) -> const InjectionMonitor& {
        return pf.injection_monitor();
      },
      filter_);
}

std::size_t Localizer::map_bytes() const {
  switch (config_.precision) {
    case Precision::kFp32:
      return static_cast<std::size_t>(maps_->float_map->width()) *
             static_cast<std::size_t>(maps_->float_map->height()) *
             map::DistanceMap::bytes_per_cell();
    case Precision::kFp32Qm:
    case Precision::kFp16Qm:
      return static_cast<std::size_t>(maps_->quantized_map->width()) *
             static_cast<std::size_t>(maps_->quantized_map->height()) *
             map::QuantizedDistanceMap::bytes_per_cell();
  }
  return 0;
}

std::size_t Localizer::particle_bytes() const {
  switch (config_.precision) {
    case Precision::kFp32:
    case Precision::kFp32Qm:
      return particle_buffer_bytes<float>(config_.mcl.num_particles);
    case Precision::kFp16Qm:
      return particle_buffer_bytes<Half>(config_.mcl.num_particles);
  }
  return 0;
}

std::size_t Localizer::active_particles() const {
  return std::visit([](const auto& pf) { return pf.size(); }, filter_);
}

std::size_t Localizer::resident_particle_bytes() const {
  return std::visit([](const auto& pf) { return pf.resident_bytes(); },
                    filter_);
}

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x544F464Du;  // "TOFM"
constexpr std::uint16_t kSnapshotVersion = 1;

}  // namespace

void Localizer::save_snapshot(map::SnapshotWriter& writer) const {
  writer.u32(kSnapshotMagic);
  writer.u16(kSnapshotVersion);
  writer.u8(static_cast<std::uint8_t>(config_.precision));
  writer.u64(config_.mcl.num_particles);
  writer.u64(config_.mcl.chunks);
  writer.u64(config_.mcl.seed);
  std::uint8_t flags = 0;
  if (current_odom_) flags |= 1u;
  if (last_motion_odom_) flags |= 2u;
  if (gate_odom_) flags |= 4u;
  writer.u8(flags);
  const auto write_pose = [&](const std::optional<Pose2>& pose) {
    if (!pose) return;
    writer.f64(pose->x());
    writer.f64(pose->y());
    writer.f64(pose->yaw);
  };
  write_pose(current_odom_);
  write_pose(last_motion_odom_);
  write_pose(gate_odom_);
  writer.u64(updates_run_);
  writer.u64(dropped_frames_);
  writer.f64(last_correction_s_);
  writer.f64(total_correction_s_);
  std::visit([&](const auto& pf) { pf.save_state(writer); }, filter_);
}

void Localizer::load_snapshot(map::SnapshotReader& reader) {
  SerialGuard::Scope serial(serial_guard_);
  if (reader.u32() != kSnapshotMagic) {
    throw IoError("not a localizer snapshot (bad magic)");
  }
  const std::uint16_t version = reader.u16();
  if (version != kSnapshotVersion) {
    throw IoError("unsupported localizer snapshot version " +
                  std::to_string(version) + " (this build reads version " +
                  std::to_string(kSnapshotVersion) + ")");
  }
  TOFMCL_EXPECTS(reader.u8() == static_cast<std::uint8_t>(config_.precision),
                 "snapshot precision does not match this localizer");
  TOFMCL_EXPECTS(reader.u64() == config_.mcl.num_particles,
                 "snapshot particle budget does not match this localizer");
  TOFMCL_EXPECTS(reader.u64() == config_.mcl.chunks,
                 "snapshot chunk count does not match this localizer");
  TOFMCL_EXPECTS(reader.u64() == config_.mcl.seed,
                 "snapshot seed does not match this localizer");
  const std::uint8_t flags = reader.u8();
  const auto read_pose = [&]() {
    const double x = reader.f64();
    const double y = reader.f64();
    const double yaw = reader.f64();
    return Pose2{x, y, yaw};
  };
  current_odom_.reset();
  last_motion_odom_.reset();
  gate_odom_.reset();
  if (flags & 1u) current_odom_ = read_pose();
  if (flags & 2u) last_motion_odom_ = read_pose();
  if (flags & 4u) gate_odom_ = read_pose();
  updates_run_ = static_cast<std::size_t>(reader.u64());
  dropped_frames_ = static_cast<std::size_t>(reader.u64());
  last_correction_s_ = reader.f64();
  total_correction_s_ = reader.f64();
  std::visit(
      [&](auto& pf) {
        pf.load_state(reader);
        // The injection support is map data, not session state: re-arm it
        // from the shared resources exactly as both start paths do.
        pf.set_injection_support(maps_->free_cells, maps_->cell_jitter);
      },
      filter_);
}

}  // namespace tofmcl::core
