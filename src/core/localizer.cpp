#include "core/localizer.hpp"

#include <algorithm>
#include <cmath>

namespace tofmcl::core {

const char* to_string(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kFp32Qm:
      return "fp32qm";
    case Precision::kFp16Qm:
      return "fp16qm";
  }
  return "unknown";
}

namespace {

std::vector<sensor::TofSensorConfig> default_sensors() {
  sensor::TofSensorConfig front;
  front.sensor_id = 0;
  front.mount = Pose2{0.02, 0.0, 0.0};
  sensor::TofSensorConfig rear;
  rear.sensor_id = 1;
  rear.mount = Pose2{-0.02, 0.0, kPi};
  return {front, rear};
}

}  // namespace

Localizer::FilterVariant Localizer::make_filter(
    const map::OccupancyGrid& grid, const LocalizerConfig& config,
    Executor& executor, std::optional<map::DistanceMap>& float_map,
    std::optional<map::QuantizedDistanceMap>& quantized_map) {
  switch (config.precision) {
    case Precision::kFp32:
      float_map.emplace(grid, config.mcl.rmax);
      return FilterVariant(std::in_place_type<ParticleFilter<Fp32Traits>>,
                           *float_map, config.mcl, executor);
    case Precision::kFp32Qm:
      quantized_map.emplace(grid, config.mcl.rmax);
      return FilterVariant(std::in_place_type<ParticleFilter<Fp32QmTraits>>,
                           *quantized_map, config.mcl, executor);
    case Precision::kFp16Qm:
      quantized_map.emplace(grid, config.mcl.rmax);
      return FilterVariant(std::in_place_type<ParticleFilter<Fp16QmTraits>>,
                           *quantized_map, config.mcl, executor);
  }
  throw ConfigError("unknown precision variant");
}

Localizer::Localizer(const map::OccupancyGrid& grid,
                     const LocalizerConfig& config, Executor& executor)
    : config_(config),
      free_cells_(grid.free_cell_centers()),
      cell_jitter_(grid.resolution() / 2.0),
      filter_(make_filter(grid, config_, executor, float_map_,
                          quantized_map_)) {
  TOFMCL_EXPECTS(!free_cells_.empty(),
                 "map has no free cells to localize in");
  if (config_.sensors.empty()) config_.sensors = default_sensors();
}

void Localizer::start_global() {
  std::visit([&](auto& pf) { pf.init_uniform(free_cells_, cell_jitter_); },
             filter_);
  last_motion_odom_ = current_odom_;
  gate_odom_ = current_odom_;
  updates_run_ = 0;
}

void Localizer::start_at(const Pose2& pose, double sigma_xy,
                         double sigma_yaw) {
  std::visit(
      [&](auto& pf) {
        pf.init_gaussian(pose, sigma_xy, sigma_yaw);
        // Recovery injection works in tracking mode too: a kidnapped or
        // lost tracker can re-seed hypotheses across the free space.
        pf.set_injection_support(free_cells_, cell_jitter_);
      },
      filter_);
  last_motion_odom_ = current_odom_;
  gate_odom_ = current_odom_;
  updates_run_ = 0;
}

void Localizer::on_odometry(const Pose2& odometry_pose) {
  current_odom_ = odometry_pose;
  if (!last_motion_odom_) last_motion_odom_ = odometry_pose;
  if (!gate_odom_) gate_odom_ = odometry_pose;
}

bool Localizer::gate_passed(const Pose2& delta) const {
  return delta.position.norm() >= config_.mcl.gate_dxy ||
         std::abs(delta.yaw) >= config_.mcl.gate_dtheta;
}

bool Localizer::on_frames(std::span<const sensor::TofFrame> frames) {
  if (!current_odom_ || !last_motion_odom_) return false;

  std::vector<sensor::Beam> beams;
  for (const sensor::TofFrame& frame : frames) {
    const auto it = std::find_if(
        config_.sensors.begin(), config_.sensors.end(),
        [&](const sensor::TofSensorConfig& s) {
          return s.sensor_id == frame.sensor_id;
        });
    TOFMCL_EXPECTS(it != config_.sensors.end(),
                   "frame from an unconfigured sensor_id");
    const auto frame_beams =
        sensor::extract_beams(frame, *it, config_.extraction);
    beams.insert(beams.end(), frame_beams.begin(), frame_beams.end());
  }

  return step_filter(beams);
}

bool Localizer::on_beams(std::span<const sensor::Beam> beams) {
  if (!current_odom_ || !last_motion_odom_) return false;
  return step_filter(beams);
}

bool Localizer::step_filter(std::span<const sensor::Beam> beams) {
  // Motion phase on every tick: sample the proposal with the odometry
  // accrued since the last motion update. The σ_odom noise injected here
  // at the frame rate is what maintains particle diversity.
  const Pose2 motion_delta = last_motion_odom_->between(*current_odom_);
  std::visit([&](auto& pf) { pf.motion_update(motion_delta); }, filter_);
  last_motion_odom_ = current_odom_;

  // Correction phases only after enough motion (paper's dxy/dθ gate).
  const Pose2 gate_delta = gate_odom_->between(*current_odom_);
  if (!gate_passed(gate_delta)) return false;
  std::visit(
      [&](auto& pf) {
        pf.observation_update(beams);
        pf.resample();
        pf.compute_pose();
      },
      filter_);
  gate_odom_ = current_odom_;
  ++updates_run_;
  return true;
}

const PoseEstimate& Localizer::estimate() const {
  return std::visit(
      [](const auto& pf) -> const PoseEstimate& { return pf.estimate(); },
      filter_);
}

std::size_t Localizer::map_bytes() const {
  if (float_map_) {
    return static_cast<std::size_t>(float_map_->width()) *
           static_cast<std::size_t>(float_map_->height()) *
           map::DistanceMap::bytes_per_cell();
  }
  return static_cast<std::size_t>(quantized_map_->width()) *
         static_cast<std::size_t>(quantized_map_->height()) *
         map::QuantizedDistanceMap::bytes_per_cell();
}

std::size_t Localizer::particle_bytes() const {
  switch (config_.precision) {
    case Precision::kFp32:
    case Precision::kFp32Qm:
      return particle_buffer_bytes<float>(config_.mcl.num_particles);
    case Precision::kFp16Qm:
      return particle_buffer_bytes<Half>(config_.mcl.num_particles);
  }
  return 0;
}

}  // namespace tofmcl::core
