#pragma once
/// \file particle.hpp
/// \brief Particle storage in the precision the configuration dictates.
///
/// Each particle is four numbers — x, y, yaw, weight (paper Section
/// III-C2). With 32-bit floats that is 16 B/particle; with the fp16
/// representation 8 B/particle. Because resampling writes into a second
/// buffer (double buffering), the live memory is twice that: 32 B vs 16 B
/// per particle — exactly the accounting behind Fig 9.

#include <cstddef>

#include "fp16/half.hpp"

namespace tofmcl::core {

/// One particle. Scalar is float (fp32 configs) or Half (fp16qm).
template <typename Scalar>
struct Particle {
  Scalar x{};
  Scalar y{};
  Scalar yaw{};
  Scalar weight{};
};

static_assert(sizeof(Particle<float>) == 16,
              "fp32 particle must be 16 bytes (paper Section III-C2)");
static_assert(sizeof(Particle<Half>) == 8,
              "fp16 particle must be 8 bytes (paper Section III-C2)");

/// Live bytes for N particles including the resampling double buffer.
template <typename Scalar>
constexpr std::size_t particle_buffer_bytes(std::size_t n) {
  return 2 * n * sizeof(Particle<Scalar>);
}

}  // namespace tofmcl::core
