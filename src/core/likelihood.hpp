#pragma once
/// \file likelihood.hpp
/// \brief Beam end-point observation likelihoods (paper Eq. 1).
///
/// p(z|x, m) ∝ z_hit · exp(−EDT(ẑ)² / (2 σ_obs²)) + z_rand, where ẑ is the
/// measured beam end point transformed by the particle pose and EDT is the
/// truncated distance field. The Gaussian normalizer 1/√(2πσ²) is constant
/// across particles and cancels in weight normalization, so it is omitted.
///
/// The additive z_rand floor comes from the beam end-point model of the
/// paper's reference [20] (Thrun et al., Probabilistic Robotics): it
/// accounts for unexplained measurements — interference, dynamic objects,
/// map error — and is what keeps a correct hypothesis alive when a few
/// beams are outliers. Without it a single bad beam can annihilate the
/// true mode.
///
/// Two evaluation paths exist, matching the paper's map representations:
///  * direct: float distance → expf (fp32 map)
///  * LUT: 8-bit quantized distance code → 256-entry table (quantized map).
///    The table folds dequantization AND the exponential into one load,
///    which is both the memory win and a speed win on the target.

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "map/distance_map.hpp"

namespace tofmcl::core {

/// Mixture parameters of the beam end-point likelihood.
struct BeamModelParams {
  float sigma_obs = 0.1f;  ///< Gaussian width (meters).
  float z_hit = 0.9f;      ///< Weight of the Gaussian hit component.
  float z_rand = 0.1f;     ///< Uniform floor for unexplained returns.
};

/// Likelihood factor for a metric distance-to-obstacle (meters).
inline float beam_likelihood(float distance, const BeamModelParams& params) {
  const float inv_two_sigma_sq =
      1.0f / (2.0f * params.sigma_obs * params.sigma_obs);
  return params.z_hit * std::exp(-distance * distance * inv_two_sigma_sq) +
         params.z_rand;
}

/// Precomputed per-code likelihoods for a quantized distance map.
///
/// Each entry is evaluated at the map's reconstruction value for that code
/// (QuantizedDistanceMap::reconstruct — the bin center under its
/// round-to-nearest rule), so `lut[code]` equals `beam_likelihood` of the
/// distance the map actually reports for that code, bit for bit. The
/// quantization rule lives in ONE place; the table cannot drift to a bin
/// edge if the map's rounding ever changes.
class LikelihoodLut {
 public:
  /// `step` is the meters-per-code of the quantized map.
  LikelihoodLut(float step, const BeamModelParams& params) {
    TOFMCL_EXPECTS(step > 0.0f, "quantization step must be positive");
    TOFMCL_EXPECTS(params.sigma_obs > 0.0f, "sigma_obs must be positive");
    for (std::size_t code = 0; code < table_.size(); ++code) {
      const float d = map::QuantizedDistanceMap::reconstruct(
          static_cast<std::uint8_t>(code), step);
      table_[code] = beam_likelihood(d, params);
    }
  }

  float operator[](std::uint8_t code) const { return table_[code]; }

 private:
  std::array<float, 256> table_{};
};

/// Observation-model policy for the full-precision map.
class DirectObservationModel {
 public:
  DirectObservationModel(const map::DistanceMap& map,
                         const BeamModelParams& params)
      : map_(&map), params_(params) {
    TOFMCL_EXPECTS(params.sigma_obs > 0.0f, "sigma_obs must be positive");
  }

  /// Likelihood factor of one transformed beam end point (world frame).
  float factor(float world_x, float world_y) const {
    const float d = map_->distance_at({world_x, world_y});
    return beam_likelihood(d, params_);
  }

 private:
  const map::DistanceMap* map_;
  BeamModelParams params_;
};

/// Observation-model policy for the quantized map: one table lookup per
/// beam, no transcendentals in the hot loop.
class LutObservationModel {
 public:
  LutObservationModel(const map::QuantizedDistanceMap& map,
                      const BeamModelParams& params)
      : map_(&map), lut_(map.step(), params) {}

  /// Shares a prebuilt table (copied — 1 KB) so evaluation campaigns pay
  /// the 256 transcendental evaluations once per map, not once per run.
  LutObservationModel(const map::QuantizedDistanceMap& map,
                      const LikelihoodLut& lut)
      : map_(&map), lut_(lut) {}

  float factor(float world_x, float world_y) const {
    return lut_[map_->code_at({world_x, world_y})];
  }

 private:
  const map::QuantizedDistanceMap* map_;
  LikelihoodLut lut_;
};

}  // namespace tofmcl::core
