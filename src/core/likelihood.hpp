#pragma once
/// \file likelihood.hpp
/// \brief Beam end-point observation likelihoods (paper Eq. 1).
///
/// p(z|x, m) ∝ z_hit · exp(−EDT(ẑ)² / (2 σ_obs²)) + z_rand, where ẑ is the
/// measured beam end point transformed by the particle pose and EDT is the
/// truncated distance field. The Gaussian normalizer 1/√(2πσ²) is constant
/// across particles and cancels in weight normalization, so it is omitted.
///
/// The additive z_rand floor comes from the beam end-point model of the
/// paper's reference [20] (Thrun et al., Probabilistic Robotics): it
/// accounts for unexplained measurements — interference, dynamic objects,
/// map error — and is what keeps a correct hypothesis alive when a few
/// beams are outliers. Without it a single bad beam can annihilate the
/// true mode.
///
/// The full mixture adds the classic SHORT-RETURN outlier component of the
/// beam model (Probabilistic Robotics §6.3; the regime stressed by
/// depth-based dynamic-obstacle work, Müller et al., arXiv:2208.12624):
///
///   p(z|x, m) ∝ z_hit · exp(−EDT(ẑ)²/2σ²) + z_rand + z_short · exp(−λ·z)
///
/// where z is the MEASURED range. Un-mapped occluders (people, carts)
/// produce returns in front of the expected surface, and they are more
/// probable the closer they are — an exponential decay over the measured
/// range. Because the component depends on the measurement only, it is a
/// per-beam constant across particles: one add outside the per-particle
/// table/exp path, so the LUT below keeps covering the map-distance part
/// unchanged. With z_short = 0 the mixture is bit-identical to Eq. 1.
///
/// Two evaluation paths exist, matching the paper's map representations:
///  * direct: float distance → expf (fp32 map)
///  * LUT: 8-bit quantized distance code → 256-entry table (quantized map).
///    The table folds dequantization AND the exponential into one load,
///    which is both the memory win and a speed win on the target.

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "core/mcl_config.hpp"
#include "map/distance_map.hpp"

namespace tofmcl::core {

/// Mixture parameters of the beam end-point likelihood.
struct BeamModelParams {
  float sigma_obs = 0.1f;  ///< Gaussian width (meters).
  float z_hit = 0.9f;      ///< Weight of the Gaussian hit component.
  float z_rand = 0.1f;     ///< Uniform floor for unexplained returns.
  /// Weight of the short-return outlier component (un-mapped occluders in
  /// front of the expected surface). 0 disables it — bit-identical to the
  /// two-term model of Eq. 1.
  float z_short = 0.0f;
  /// Decay rate (1/m) of the short component over the measured range.
  float lambda_short = 1.0f;
};

/// The beam-model slice of an MclConfig — the ONE conversion every filter,
/// localizer and LUT build goes through, so a new mixture field cannot be
/// plumbed into some sites and silently defaulted in others.
inline BeamModelParams beam_model_params(const MclConfig& mcl) {
  return BeamModelParams{static_cast<float>(mcl.sigma_obs),
                         static_cast<float>(mcl.z_hit),
                         static_cast<float>(mcl.z_rand),
                         static_cast<float>(mcl.z_short),
                         static_cast<float>(mcl.lambda_short)};
}

/// Map-distance part of the mixture: the per-particle factor for a metric
/// distance-to-obstacle (meters) at the transformed beam end point.
inline float beam_likelihood(float distance, const BeamModelParams& params) {
  const float inv_two_sigma_sq =
      1.0f / (2.0f * params.sigma_obs * params.sigma_obs);
  return params.z_hit * std::exp(-distance * distance * inv_two_sigma_sq) +
         params.z_rand;
}

/// Short-return component: z_short · exp(−λ·z) of the MEASURED range z.
/// Constant across particles for one beam — it raises the floor of short
/// returns (likely occluders) without touching the map-distance part.
inline float short_return_floor(float range, const BeamModelParams& params) {
  if (params.z_short <= 0.0f) return 0.0f;
  return params.z_short * std::exp(-params.lambda_short * range);
}

/// The full three-component mixture for one (map distance, measured range)
/// pair. Equals beam_likelihood(distance) bit for bit when z_short == 0.
inline float beam_mixture_likelihood(float distance, float range,
                                     const BeamModelParams& params) {
  return beam_likelihood(distance, params) +
         short_return_floor(range, params);
}

/// Precomputed per-code likelihoods for a quantized distance map.
///
/// Each entry is evaluated at the map's reconstruction value for that code
/// (QuantizedDistanceMap::reconstruct — the bin center under its
/// round-to-nearest rule), so `lut[code]` equals `beam_likelihood` of the
/// distance the map actually reports for that code, bit for bit. The
/// quantization rule lives in ONE place; the table cannot drift to a bin
/// edge if the map's rounding ever changes.
///
/// The table covers the MAP-DISTANCE part of the mixture only (hit + rand)
/// — the short-return component depends on the measured range, not the map
/// code, and is added per beam outside the table. One LikelihoodLut
/// therefore serves every z_short/lambda_short setting that shares its
/// (sigma_obs, z_hit, z_rand).
class LikelihoodLut {
 public:
  /// `step` is the meters-per-code of the quantized map.
  LikelihoodLut(float step, const BeamModelParams& params) {
    TOFMCL_EXPECTS(step > 0.0f, "quantization step must be positive");
    TOFMCL_EXPECTS(params.sigma_obs > 0.0f, "sigma_obs must be positive");
    TOFMCL_EXPECTS(params.z_short >= 0.0f, "z_short must be non-negative");
    TOFMCL_EXPECTS(params.lambda_short > 0.0f,
                   "lambda_short must be positive");
    for (std::size_t code = 0; code < table_.size(); ++code) {
      const float d = map::QuantizedDistanceMap::reconstruct(
          static_cast<std::uint8_t>(code), step);
      table_[code] = beam_likelihood(d, params);
    }
  }

  float operator[](std::uint8_t code) const { return table_[code]; }

  /// Raw 256-entry table, for the SIMD observation kernels
  /// (src/core/kernels/) which gather per-lane instead of calling
  /// operator[].
  const float* data() const { return table_.data(); }

 private:
  std::array<float, 256> table_{};
};

/// Observation-model policy for the full-precision map.
class DirectObservationModel {
 public:
  DirectObservationModel(const map::DistanceMap& map,
                         const BeamModelParams& params)
      : map_(&map), params_(params) {
    TOFMCL_EXPECTS(params.sigma_obs > 0.0f, "sigma_obs must be positive");
  }

  /// Likelihood factor of one transformed beam end point (world frame).
  float factor(float world_x, float world_y) const {
    const float d = map_->distance_at({world_x, world_y});
    return beam_likelihood(d, params_);
  }

 private:
  const map::DistanceMap* map_;
  BeamModelParams params_;
};

/// Observation-model policy for the quantized map: one table lookup per
/// beam, no transcendentals in the hot loop.
class LutObservationModel {
 public:
  LutObservationModel(const map::QuantizedDistanceMap& map,
                      const BeamModelParams& params)
      : map_(&map), lut_(map.step(), params) {}

  /// Shares a prebuilt table (copied — 1 KB) so evaluation campaigns pay
  /// the 256 transcendental evaluations once per map, not once per run.
  LutObservationModel(const map::QuantizedDistanceMap& map,
                      const LikelihoodLut& lut)
      : map_(&map), lut_(lut) {}

  float factor(float world_x, float world_y) const {
    return lut_[map_->code_at({world_x, world_y})];
  }

  /// Backing map / table, for the SIMD observation kernels
  /// (src/core/kernels/) which need the raw code array and LUT storage.
  const map::QuantizedDistanceMap& map() const { return *map_; }
  const LikelihoodLut& lut() const { return lut_; }

 private:
  const map::QuantizedDistanceMap* map_;
  LikelihoodLut lut_;
};

}  // namespace tofmcl::core
