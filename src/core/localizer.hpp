#pragma once
// TOFMCL_LINT_ALLOW_FILE(wall-clock): steady_clock appears only in the
// latency-accounting API (record_correction_time); it never feeds state.
/// \file localizer.hpp
/// \brief Runtime facade over the templated particle filter.
///
/// Owns (or shares) the distance-map representation matching the selected
/// precision, converts multizone ToF frames to beams, applies the paper's
/// asynchronous update gating (dxy / dθ, Section III-C2) and dispatches to
/// the right ParticleFilter instantiation. This is the class an
/// application integrates:
///
///     core::Localizer loc(grid, config, executor);
///     loc.start_global();
///     loc.on_odometry(ekf_pose);          // whenever odometry ticks
///     loc.on_frames(frames_at_same_t);    // whenever ToF frames arrive
///     const auto est = loc.estimate();
///
/// Evaluation campaigns that run MANY localizers over one map build the
/// expensive read-only state once with build_map_resources() and hand the
/// same MapResources to every run:
///
///     auto maps = core::build_map_resources(grid, cfg.mcl, precisions);
///     core::Localizer a(maps, cfg_run_a, exec), b(maps, cfg_run_b, exec);
///
/// Concurrency contract: a Localizer is single-threaded BY CONTRACT — the
/// owner serializes every mutating call (on_odometry / on_frames /
/// on_beams / start_*), though successive calls may land on different
/// threads (the serving layer's sessions hop pool workers between pumps).
/// The contract is ASSERTED: concurrent entry throws PreconditionError
/// via SerialGuard instead of silently racing the dropped-frames counter
/// or the injection-monitor state, and the guard's acquire/release pair
/// makes the serialized cross-thread pattern data-race-free.

#include <chrono>
#include <memory>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "common/serial_guard.hpp"
#include "core/particle_filter.hpp"
#include "core/scoring_context.hpp"
#include "map/occupancy_grid.hpp"
#include "map/snapshot_io.hpp"
#include "sensor/beam_model.hpp"
#include "sensor/tof_sensor.hpp"

namespace tofmcl::core {

class Localizer {
 public:
  /// Builds the distance representation for `config.precision` from the
  /// occupancy grid. The grid itself is not retained.
  Localizer(const map::OccupancyGrid& grid, const LocalizerConfig& config,
            Executor& executor);

  /// Shares prebuilt map resources (see build_map_resources). The
  /// resources must contain the representation `config.precision` needs
  /// and must have been built with the same rmax.
  Localizer(std::shared_ptr<const MapResources> maps,
            const LocalizerConfig& config, Executor& executor);

  /// Serving-layer constructor: the shared per-map ScoringContext supplies
  /// maps, resolved configuration and the particle arena; the knobs supply
  /// the only per-session degrees of freedom (seed, particle budget). The
  /// filter's SoA blocks are leased from the context's arena.
  Localizer(std::shared_ptr<const ScoringContext> ctx,
            const SessionKnobs& knobs, Executor& executor);

  /// Global localization: uniform over the grid's free cells.
  void start_global();
  /// Pose tracking: Gaussian cloud around a known map pose.
  void start_at(const Pose2& pose, double sigma_xy, double sigma_yaw);

  /// Feed the latest odometry-frame pose estimate (absolute in the
  /// odometry frame; only relative motion is used).
  void on_odometry(const Pose2& odometry_pose);

  /// Feed all ToF frames captured at one measurement instant. The motion
  /// model is sampled on every call (the paper's asynchronous scheme:
  /// "the motion model is sampled when odometry is available"), while the
  /// observation + resampling + pose phases run only once the drone has
  /// moved dxy or rotated dθ since the last correction. Returns true when
  /// the correction ran.
  ///
  /// Malformed frames — an unconfigured sensor_id, a zone-mode mismatch
  /// with the configured sensor, or a zone count inconsistent with the
  /// mode — are skipped and counted in dropped_frames() instead of
  /// aborting the flight loop: one corrupt radio packet must not ground
  /// the drone.
  bool on_frames(std::span<const sensor::TofFrame> frames);

  /// Convenience for pre-extracted beams (used by benches/tests).
  bool on_beams(std::span<const sensor::Beam> beams);

  const PoseEstimate& estimate() const;
  Precision precision() const { return config_.precision; }
  const MclConfig& mcl_config() const { return config_.mcl; }
  std::size_t num_particles() const { return config_.mcl.num_particles; }
  /// Number of update cycles that actually ran (passed the gate).
  std::size_t updates_run() const { return updates_run_; }
  /// Frames rejected by on_frames() since construction.
  std::size_t dropped_frames() const { return dropped_frames_; }
  /// Wall-clock seconds of the most recent correction (the full
  /// on_frames/on_beams pass that ran it: beam extraction + fused
  /// motion+observation + resample + pose). 0 before the first
  /// correction. The serving layer samples this after every correction
  /// to build its per-session latency distribution.
  double last_correction_seconds() const { return last_correction_s_; }
  /// Σ last_correction_seconds over all corrections (service-time
  /// accounting: corrections/s = updates_run / total_correction_seconds
  /// of busy time).
  double total_correction_seconds() const { return total_correction_s_; }
  /// Workload of the most recent correction (particles × beams, plus the
  /// novelty-gated beam count).
  const UpdateWorkload& workload() const;
  /// Augmented-MCL monitor state of the active filter (diagnostics and
  /// injection-storm regression tests).
  const InjectionMonitor& injection_monitor() const;

  /// Map memory of the active representation, bytes (Fig 9 accounting).
  std::size_t map_bytes() const;
  /// Particle memory including the double buffer at the CONFIGURED budget,
  /// bytes (Fig 9 accounting — independent of adaptive shrinkage).
  std::size_t particle_bytes() const;
  /// Active particle count right now (== num_particles unless
  /// MclConfig::adaptive_particles shrank/grew the set).
  std::size_t active_particles() const;
  /// Bytes the particle storage actually pins right now — both SoA blocks
  /// at their allocated capacity. The serving layer's per-session resident
  /// memory metric.
  std::size_t resident_particle_bytes() const;

  /// The shared context this localizer was built on; null for the
  /// non-context constructors (which own their resources privately).
  const std::shared_ptr<const ScoringContext>& context() const {
    return ctx_;
  }

  /// Serializes the full mutable session state — odometry anchors,
  /// counters, and the filter's FilterState — as a versioned little-endian
  /// binary blob (raw IEEE bits, so restore resumes bit-identically).
  /// Shared state (maps, LUT, config) is NOT serialized: a snapshot is
  /// restored into a Localizer built from the same configuration.
  void save_snapshot(map::SnapshotWriter& writer) const;
  /// Restores what save_snapshot wrote. Throws common::IoError on a bad
  /// magic/version or truncated blob, PreconditionError when the snapshot
  /// was taken under a different precision/budget/chunks/seed than this
  /// localizer's.
  void load_snapshot(map::SnapshotReader& reader);

 private:
  using FilterVariant =
      std::variant<ParticleFilter<Fp32Traits>, ParticleFilter<Fp32QmTraits>,
                   ParticleFilter<Fp16QmTraits>>;

  /// Returns the filter instantiation matching config.precision, built on
  /// the shared map resources (and their prebuilt LUT when applicable).
  /// With an arena, the filter leases its particle blocks from it.
  static FilterVariant make_filter(const MapResources& maps,
                                   const LocalizerConfig& config,
                                   Executor& executor,
                                   std::shared_ptr<ParticleArena> arena = nullptr);

  bool gate_passed(const Pose2& delta) const;
  /// Correction-timing hook: stamps last/total correction wall time from
  /// the t0 taken at the top of the on_frames/on_beams call that ran it.
  void record_correction_time(std::chrono::steady_clock::time_point t0);
  /// Motion phase only, without touching the correction gate (used when a
  /// frame batch carried no usable frames).
  void step_motion_only();
  /// Runs the motion phase for odometry accrued since the last motion
  /// update, then the gated correction phases (motion and observation
  /// fused into one particle pass when the gate opens). Returns true if
  /// the correction ran.
  bool step_filter(std::span<const sensor::Beam> beams);

  LocalizerConfig config_;
  std::shared_ptr<const MapResources> maps_;
  FilterVariant filter_;
  /// Pins the shared context (arena, config) for context-built localizers.
  std::shared_ptr<const ScoringContext> ctx_;

  std::optional<Pose2> current_odom_;
  std::optional<Pose2> last_motion_odom_;  ///< Odometry at last motion update.
  std::optional<Pose2> gate_odom_;         ///< Odometry at last correction.
  std::size_t updates_run_ = 0;
  std::size_t dropped_frames_ = 0;
  double last_correction_s_ = 0.0;
  double total_correction_s_ = 0.0;
  /// Asserts the single-threaded-by-contract usage (see file comment).
  SerialGuard serial_guard_;
};

}  // namespace tofmcl::core
