#include "core/executor.hpp"

#include <algorithm>

namespace tofmcl::core {

void SerialExecutor::for_chunks(std::size_t count, std::size_t chunks,
                                const ChunkFn& fn) {
  if (count == 0) return;
  chunks = std::clamp<std::size_t>(chunks, 1, count);
  for (std::size_t c = 0; c < chunks; ++c) {
    fn(c, chunk_begin(count, chunks, c), chunk_begin(count, chunks, c + 1));
  }
}

void ThreadPoolExecutor::for_chunks(std::size_t count, std::size_t chunks,
                                    const ChunkFn& fn) {
  if (count == 0) return;
  pool_.parallel_chunks(count, std::clamp<std::size_t>(chunks, 1, count), fn);
}

}  // namespace tofmcl::core
