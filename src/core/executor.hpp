#pragma once
/// \file executor.hpp
/// \brief Work-distribution abstraction mirroring the GAP9 cluster.
///
/// The paper distributes particles statically over the 8 worker cores of
/// the GAP9 cluster (Fig 4). The filter expresses every phase as
/// "run f(chunk, begin, end) over N particles split into `chunks` ranges";
/// executors decide how chunks map onto actual compute:
///   * SerialExecutor     — runs chunks one after another (1-core model;
///                          also the reference for bit-exactness tests)
///   * ThreadPoolExecutor — runs chunks on host threads (true parallelism)
///
/// Because the *logical* chunking is fixed by configuration, all executors
/// produce bit-identical filter states; only wall-clock changes. The GAP9
/// timing model (platform/) consumes the recorded phase workloads.

#include <cstddef>
#include <functional>

#include "common/thread_pool.hpp"

namespace tofmcl::core {

/// f(chunk_index, begin, end) over a contiguous index range.
using ChunkFn = std::function<void(std::size_t, std::size_t, std::size_t)>;

class Executor {
 public:
  virtual ~Executor() = default;

  /// Partition [0, count) into `chunks` contiguous ranges and run fn on
  /// each. Implementations must complete all chunks before returning and
  /// must not run the same chunk twice.
  virtual void for_chunks(std::size_t count, std::size_t chunks,
                          const ChunkFn& fn) = 0;

  /// Human-readable backend name for logs/benches.
  virtual const char* name() const = 0;
};

/// Executes chunks sequentially on the calling thread.
class SerialExecutor final : public Executor {
 public:
  void for_chunks(std::size_t count, std::size_t chunks,
                  const ChunkFn& fn) override;
  const char* name() const override { return "serial"; }
};

/// Executes chunks on a shared thread pool (the pool may have fewer
/// threads than chunks; chunks queue).
class ThreadPoolExecutor final : public Executor {
 public:
  explicit ThreadPoolExecutor(ThreadPool& pool) : pool_(pool) {}
  void for_chunks(std::size_t count, std::size_t chunks,
                  const ChunkFn& fn) override;
  const char* name() const override { return "thread-pool"; }

 private:
  ThreadPool& pool_;
};

}  // namespace tofmcl::core
