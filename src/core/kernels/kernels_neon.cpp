/// \file kernels_neon.cpp
/// \brief NEON observation sweep (4 particles per block, aarch64).
///
/// Port of ParticleFilter::observation_step{,_mixture} with the same
/// structure and constraints as kernels_avx2.cpp: scalar-association
/// endpoint transform (explicitly no FMA intrinsics), per-lane libm trig,
/// double-precision cell indexing with a real divide and floor
/// (vrndmq_f64), scalar per-lane code/LUT fetches. fp16 particle fields
/// and the fp16 weight rounding go through the software tofmcl::Half
/// conversions — bit-identical to the scalar reference by definition.
///
/// Note: aarch64 compilers commonly contract the scalar reference's
/// mul/add chains into fused ops at -O2, in which case this kernel (which
/// does not fuse) can differ from the scalar path in the last ulp of an
/// endpoint coordinate. That is exactly why SIMD backends are gated by
/// the tolerance-based equivalence tests instead of byte equality — see
/// kernel_backend.hpp.
///
/// This is the ONLY translation unit (with kernels_avx2.cpp) allowed to
/// use vendor intrinsics — enforced by the `raw-intrinsics` lint rule.

#if defined(TOFMCL_KERNELS_NEON)

#include <arm_neon.h>

#include <cmath>
#include <cstdint>

#include "core/kernels/observation_kernel.hpp"

namespace tofmcl::core::kernels {

namespace {

constexpr std::size_t kLanes = 4;

struct F32Io {
  static float32x4_t load(const float* p) { return vld1q_f32(p); }
  static void store(float* p, float32x4_t v) { vst1q_f32(p, v); }
  static constexpr bool kFp32Storage = true;
};

/// fp16 fields via the software Half conversions (exact widen, RNE
/// narrow) — no dependence on __fp16 semantics of the build.
struct F16Io {
  static float32x4_t load(const Half* p) {
    float lanes[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) {
      lanes[l] = half_bits_to_float(p[l].bits());
    }
    return vld1q_f32(lanes);
  }
  static void store(Half* p, float32x4_t v) {
    float lanes[kLanes];
    vst1q_f32(lanes, v);
    for (std::size_t l = 0; l < kLanes; ++l) {
      p[l] = Half::from_bits(float_to_half_bits(lanes[l]));
    }
  }
  static constexpr bool kFp32Storage = false;
};

/// Floors ((e − origin) / resolution) for 4 float endpoints in double —
/// QuantizedDistanceMap::code_at's arithmetic, two lanes at a time.
inline void floor_cells(float32x4_t e, float64x2_t origin,
                        float64x2_t resolution, double out[kLanes]) {
  const float64x2_t lo = vcvt_f64_f32(vget_low_f32(e));
  const float64x2_t hi = vcvt_high_f64_f32(e);
  vst1q_f64(out, vrndmq_f64(vdivq_f64(vsubq_f64(lo, origin), resolution)));
  vst1q_f64(out + 2,
            vrndmq_f64(vdivq_f64(vsubq_f64(hi, origin), resolution)));
}

template <typename Io, typename Spans>
std::size_t sweep(const LutMapView& m, const BeamSweepView& bv,
                  const Spans& p, std::size_t begin, std::size_t end,
                  bool fp16_weights) {
  const std::size_t blocks = (end - begin) / kLanes;
  const float64x2_t origin_x = vdupq_n_f64(m.origin_x);
  const float64x2_t origin_y = vdupq_n_f64(m.origin_y);
  const float64x2_t resolution = vdupq_n_f64(m.resolution);
  const float32x4_t per_beam_scale = vdupq_n_f32(bv.per_beam_scale);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::size_t i0 = begin + blk * kLanes;
    const float32x4_t x = Io::load(p.x + i0);
    const float32x4_t y = Io::load(p.y + i0);
    float yaw[kLanes];
    vst1q_f32(yaw, Io::load(p.yaw + i0));
    float cl[kLanes];
    float sl[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) {
      cl[l] = std::cos(yaw[l]);
      sl[l] = std::sin(yaw[l]);
    }
    const float32x4_t c = vld1q_f32(cl);
    const float32x4_t s = vld1q_f32(sl);
    float32x4_t w = Io::load(p.weight + i0);

    for (std::size_t b = 0; b < bv.count; ++b) {
      if (bv.aux != nullptr && bv.aux[b].gated) continue;
      const float32x4_t bx = vdupq_n_f32(bv.beams[b].endpoint_body.x);
      const float32x4_t by = vdupq_n_f32(bv.beams[b].endpoint_body.y);
      // ex = (x + c·bx) − s·by ; ey = (y + s·bx) + c·by — the reference
      // association, no FMA.
      const float32x4_t ex =
          vsubq_f32(vaddq_f32(x, vmulq_f32(c, bx)), vmulq_f32(s, by));
      const float32x4_t ey =
          vaddq_f32(vaddq_f32(y, vmulq_f32(s, bx)), vmulq_f32(c, by));

      double fx[kLanes];
      double fy[kLanes];
      floor_cells(ex, origin_x, resolution, fx);
      floor_cells(ey, origin_y, resolution, fy);

      float factor[kLanes];
      for (std::size_t l = 0; l < kLanes; ++l) {
        const int cx = static_cast<int>(fx[l]);
        const int cy = static_cast<int>(fy[l]);
        const std::uint8_t code =
            (cx < 0 || cx >= m.width || cy < 0 || cy >= m.height)
                ? std::uint8_t{255}
                : m.codes[static_cast<std::size_t>(cy) *
                              static_cast<std::size_t>(m.width) +
                          static_cast<std::size_t>(cx)];
        factor[l] = m.lut[code];
      }
      float32x4_t f = vld1q_f32(factor);
      if (bv.aux != nullptr) {
        f = vmulq_f32(vaddq_f32(f, vdupq_n_f32(bv.aux[b].floor)),
                      vdupq_n_f32(bv.aux[b].scale));
      } else {
        f = vmulq_f32(f, per_beam_scale);
      }
      w = vmulq_f32(w, f);
    }

    if (Io::kFp32Storage && fp16_weights) {
      // MclConfig::weight_precision == kFp16: round each fp32 weight
      // through binary16 with the software Half conversions — the exact
      // operation the scalar path applies.
      float wl[kLanes];
      vst1q_f32(wl, w);
      for (std::size_t l = 0; l < kLanes; ++l) {
        wl[l] = half_bits_to_float(float_to_half_bits(wl[l]));
      }
      w = vld1q_f32(wl);
    }
    Io::store(p.weight + i0, w);
  }
  return blocks * kLanes;
}

}  // namespace

std::size_t observation_sweep_neon(const LutMapView& map,
                                   const BeamSweepView& beams,
                                   const SweepSpansF32& particles,
                                   std::size_t begin, std::size_t end,
                                   bool fp16_weights) {
  return sweep<F32Io>(map, beams, particles, begin, end, fp16_weights);
}

std::size_t observation_sweep_neon(const LutMapView& map,
                                   const BeamSweepView& beams,
                                   const SweepSpansF16& particles,
                                   std::size_t begin, std::size_t end,
                                   bool fp16_weights) {
  return sweep<F16Io>(map, beams, particles, begin, end, fp16_weights);
}

}  // namespace tofmcl::core::kernels

#endif  // defined(TOFMCL_KERNELS_NEON)
