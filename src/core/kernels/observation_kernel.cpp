#include "core/kernels/observation_kernel.hpp"

namespace tofmcl::core::kernels {

namespace {

template <typename Spans>
std::size_t dispatch(KernelBackend backend, const LutMapView& map,
                     const BeamSweepView& beams, const Spans& particles,
                     std::size_t begin, std::size_t end, bool fp16_weights) {
  switch (backend) {
    case KernelBackend::kAvx2:
#if defined(TOFMCL_KERNELS_AVX2)
      return observation_sweep_avx2(map, beams, particles, begin, end,
                                    fp16_weights);
#else
      break;
#endif
    case KernelBackend::kNeon:
#if defined(TOFMCL_KERNELS_NEON)
      return observation_sweep_neon(map, beams, particles, begin, end,
                                    fp16_weights);
#else
      break;
#endif
    case KernelBackend::kScalar:
      break;
  }
  return 0;  // caller falls back to the scalar reference kernel
}

}  // namespace

std::size_t observation_sweep(KernelBackend backend, const LutMapView& map,
                              const BeamSweepView& beams,
                              const SweepSpansF32& particles,
                              std::size_t begin, std::size_t end,
                              bool fp16_weights) {
  return dispatch(backend, map, beams, particles, begin, end, fp16_weights);
}

std::size_t observation_sweep(KernelBackend backend, const LutMapView& map,
                              const BeamSweepView& beams,
                              const SweepSpansF16& particles,
                              std::size_t begin, std::size_t end,
                              bool fp16_weights) {
  return dispatch(backend, map, beams, particles, begin, end, fp16_weights);
}

}  // namespace tofmcl::core::kernels
