#pragma once
/// \file kernel_backend.hpp
/// \brief Runtime-dispatched SIMD backend selection for the hot kernels.
///
/// The scalar code in particle_filter.hpp is the determinism reference —
/// it is what every committed trace (TOFMCL_SCENARIO_TRACE /
/// TOFMCL_SERVE_TRACE) was produced with and stays byte-for-byte
/// unchanged. The SIMD backends in this directory are hand-written ports
/// of the same arithmetic:
///
///  * kAvx2 — 8-wide AVX2 + F16C. Written to match the scalar kernel
///    operation for operation (same float association, no FMA
///    contraction, cell-index math in the map's double precision, scalar
///    libm trig per lane), so on x86 builds it is bit-identical to the
///    reference in practice; the equivalence tests still gate it by weight
///    ULP delta + pose ATE rather than assuming it.
///  * kNeon — 4-wide NEON port of the same structure (aarch64 builds).
///
/// Backends are compiled in per architecture (TOFMCL_KERNELS_AVX2 /
/// TOFMCL_KERNELS_NEON, set by src/core/CMakeLists.txt), probed at
/// runtime, and selectable via the TOFMCL_KERNEL environment variable
/// (`scalar`, `avx2`, `neon`). Unknown or unsupported requests fall back
/// to scalar — the safe reference. Without an override the best supported
/// backend is used.
///
/// The backend is deliberately NOT part of MclConfig / the scoring
/// fingerprint: it changes how fast the sweep runs, not (within the gated
/// tolerance) what it computes, and serving shares ScoringContexts across
/// sessions that may pick different backends in tests.

namespace tofmcl::core::kernels {

enum class KernelBackend {
  kScalar,  ///< The reference loops in particle_filter.hpp.
  kAvx2,    ///< 8-wide AVX2 + F16C (x86-64).
  kNeon,    ///< 4-wide NEON (aarch64).
};

const char* to_string(KernelBackend backend);

/// True if the backend's translation unit was compiled into this build.
bool backend_compiled(KernelBackend backend);

/// True if the backend is compiled in AND the running CPU supports it.
bool backend_supported(KernelBackend backend);

/// Best supported backend on this machine (kScalar when nothing else is).
KernelBackend best_supported_backend();

/// Process-wide default: TOFMCL_KERNEL env override when set (invalid or
/// unsupported values resolve to kScalar), else best_supported_backend().
/// Resolved once on first use.
KernelBackend default_backend();

}  // namespace tofmcl::core::kernels
