/// \file kernels_avx2.cpp
/// \brief AVX2 + F16C observation sweep (8 particles per block).
///
/// A lane-for-lane port of ParticleFilter::observation_step{,_mixture}
/// (the scalar determinism reference). Every arithmetic choice here
/// exists to reproduce the reference bit for bit on builds that do not
/// contract FMAs:
///
///  * The endpoint transform keeps the scalar association
///    ((x + c·bx) − s·by, (y + s·bx) + c·by) as separate mul/add/sub —
///    deliberately NO fused-multiply-add.
///  * cos/sin are evaluated per lane with the same scalar libm calls the
///    reference makes; there is no vector polynomial that would round
///    differently.
///  * Cell indexing reproduces QuantizedDistanceMap::code_at exactly:
///    widen the float endpoint to double, subtract the origin, DIVIDE by
///    the resolution (no reciprocal-multiply), floor, truncate — all in
///    IEEE double, all exact matches of the scalar ops.
///  * LUT/code fetches are scalar per lane: the codes are bytes (no
///    useful gather) and scalar loads cannot read out of bounds past the
///    table the way a masked gather could be miscoded to.
///  * fp16 stores use F16C with round-to-nearest-even, which converts
///    bit-identically to the software tofmcl::Half path (pinned by
///    tests/test_half.cpp against an exhaustive oracle).
///
/// This is the ONLY translation unit (with kernels_neon.cpp) allowed to
/// use vendor intrinsics — enforced by the `raw-intrinsics` lint rule.

#if defined(TOFMCL_KERNELS_AVX2)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "core/kernels/observation_kernel.hpp"

namespace tofmcl::core::kernels {

namespace {

constexpr std::size_t kLanes = 8;

/// fp32 particle fields: plain unaligned vector loads/stores.
struct F32Io {
  static __m256 load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, __m256 v) { _mm256_storeu_ps(p, v); }
  static constexpr bool kFp32Storage = true;
};

/// fp16 particle fields: F16C widen on load, RNE narrow on store — both
/// bit-identical to the software Half conversions.
struct F16Io {
  static __m256 load(const Half* p) {
    return _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static void store(Half* p, __m256 v) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(p),
        _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  }
  static constexpr bool kFp32Storage = false;
};

/// Floors ((e − origin) / resolution) for 8 float endpoints, in double —
/// QuantizedDistanceMap::code_at's arithmetic, four lanes at a time.
inline void floor_cells(__m256 e, __m256d origin, __m256d resolution,
                        double out[kLanes]) {
  const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(e));
  const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(e, 1));
  _mm256_storeu_pd(
      out, _mm256_floor_pd(_mm256_div_pd(_mm256_sub_pd(lo, origin),
                                         resolution)));
  _mm256_storeu_pd(
      out + 4, _mm256_floor_pd(_mm256_div_pd(_mm256_sub_pd(hi, origin),
                                             resolution)));
}

template <typename Io, typename Spans>
std::size_t sweep(const LutMapView& m, const BeamSweepView& bv,
                  const Spans& p, std::size_t begin, std::size_t end,
                  bool fp16_weights) {
  const std::size_t blocks = (end - begin) / kLanes;
  const __m256d origin_x = _mm256_set1_pd(m.origin_x);
  const __m256d origin_y = _mm256_set1_pd(m.origin_y);
  const __m256d resolution = _mm256_set1_pd(m.resolution);
  const __m256 per_beam_scale = _mm256_set1_ps(bv.per_beam_scale);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::size_t i0 = begin + blk * kLanes;
    const __m256 x = Io::load(p.x + i0);
    const __m256 y = Io::load(p.y + i0);
    alignas(32) float yaw[kLanes];
    _mm256_store_ps(yaw, Io::load(p.yaw + i0));
    alignas(32) float cl[kLanes];
    alignas(32) float sl[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) {
      cl[l] = std::cos(yaw[l]);
      sl[l] = std::sin(yaw[l]);
    }
    const __m256 c = _mm256_load_ps(cl);
    const __m256 s = _mm256_load_ps(sl);
    __m256 w = Io::load(p.weight + i0);

    for (std::size_t b = 0; b < bv.count; ++b) {
      if (bv.aux != nullptr && bv.aux[b].gated) continue;
      const __m256 bx = _mm256_set1_ps(bv.beams[b].endpoint_body.x);
      const __m256 by = _mm256_set1_ps(bv.beams[b].endpoint_body.y);
      // ex = (x + c·bx) − s·by ; ey = (y + s·bx) + c·by — the reference
      // association, no FMA.
      const __m256 ex = _mm256_sub_ps(
          _mm256_add_ps(x, _mm256_mul_ps(c, bx)), _mm256_mul_ps(s, by));
      const __m256 ey = _mm256_add_ps(
          _mm256_add_ps(y, _mm256_mul_ps(s, bx)), _mm256_mul_ps(c, by));

      alignas(32) double fx[kLanes];
      alignas(32) double fy[kLanes];
      floor_cells(ex, origin_x, resolution, fx);
      floor_cells(ey, origin_y, resolution, fy);

      alignas(32) float factor[kLanes];
      for (std::size_t l = 0; l < kLanes; ++l) {
        const int cx = static_cast<int>(fx[l]);
        const int cy = static_cast<int>(fy[l]);
        const std::uint8_t code =
            (cx < 0 || cx >= m.width || cy < 0 || cy >= m.height)
                ? std::uint8_t{255}
                : m.codes[static_cast<std::size_t>(cy) *
                              static_cast<std::size_t>(m.width) +
                          static_cast<std::size_t>(cx)];
        factor[l] = m.lut[code];
      }
      __m256 f = _mm256_load_ps(factor);
      if (bv.aux != nullptr) {
        f = _mm256_mul_ps(_mm256_add_ps(f, _mm256_set1_ps(bv.aux[b].floor)),
                          _mm256_set1_ps(bv.aux[b].scale));
      } else {
        f = _mm256_mul_ps(f, per_beam_scale);
      }
      w = _mm256_mul_ps(w, f);
    }

    if (Io::kFp32Storage && fp16_weights) {
      // MclConfig::weight_precision == kFp16: round the fp32 weight
      // through binary16 (RNE), identical to the software Half
      // round-trip the scalar path applies.
      w = _mm256_cvtph_ps(
          _mm256_cvtps_ph(w, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
    }
    Io::store(p.weight + i0, w);
  }
  return blocks * kLanes;
}

}  // namespace

std::size_t observation_sweep_avx2(const LutMapView& map,
                                   const BeamSweepView& beams,
                                   const SweepSpansF32& particles,
                                   std::size_t begin, std::size_t end,
                                   bool fp16_weights) {
  return sweep<F32Io>(map, beams, particles, begin, end, fp16_weights);
}

std::size_t observation_sweep_avx2(const LutMapView& map,
                                   const BeamSweepView& beams,
                                   const SweepSpansF16& particles,
                                   std::size_t begin, std::size_t end,
                                   bool fp16_weights) {
  return sweep<F16Io>(map, beams, particles, begin, end, fp16_weights);
}

}  // namespace tofmcl::core::kernels

#endif  // defined(TOFMCL_KERNELS_AVX2)
