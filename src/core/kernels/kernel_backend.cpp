#include "core/kernels/kernel_backend.hpp"

#include <cstdlib>
#include <cstring>

namespace tofmcl::core::kernels {

const char* to_string(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kNeon:
      return "neon";
  }
  return "unknown";
}

bool backend_compiled(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return true;
    case KernelBackend::kAvx2:
#if defined(TOFMCL_KERNELS_AVX2)
      return true;
#else
      return false;
#endif
    case KernelBackend::kNeon:
#if defined(TOFMCL_KERNELS_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool backend_supported(KernelBackend backend) {
  if (!backend_compiled(backend)) return false;
  if (backend == KernelBackend::kAvx2) {
    // The AVX2 kernel also uses F16C for the fp16 weight path; require
    // both so one probe covers every entry point.
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
#else
    return false;
#endif
  }
  // NEON is baseline on aarch64 — compiled in implies supported.
  return true;
}

KernelBackend best_supported_backend() {
  if (backend_supported(KernelBackend::kAvx2)) return KernelBackend::kAvx2;
  if (backend_supported(KernelBackend::kNeon)) return KernelBackend::kNeon;
  return KernelBackend::kScalar;
}

KernelBackend default_backend() {
  static const KernelBackend resolved = [] {
    if (const char* env = std::getenv("TOFMCL_KERNEL")) {
      if (std::strcmp(env, "avx2") == 0 &&
          backend_supported(KernelBackend::kAvx2)) {
        return KernelBackend::kAvx2;
      }
      if (std::strcmp(env, "neon") == 0 &&
          backend_supported(KernelBackend::kNeon)) {
        return KernelBackend::kNeon;
      }
      // "scalar", anything unknown, or an unsupported request: the
      // reference path is always safe.
      return KernelBackend::kScalar;
    }
    return best_supported_backend();
  }();
  return resolved;
}

}  // namespace tofmcl::core::kernels
