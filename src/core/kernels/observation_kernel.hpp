#pragma once
/// \file observation_kernel.hpp
/// \brief SIMD entry points for the observation sweep.
///
/// The ParticleFilter's observation sweep (particle_filter.hpp,
/// observation_step{,_mixture}) is the hot loop of the whole system:
/// particles × beams endpoint transforms + quantized-map lookups + weight
/// products. This header is the seam between the header-template filter
/// and the backend translation units: plain-old-data views of everything
/// the sweep reads (no templates, no intrinsics), plus one dispatch
/// function per particle-scalar layout.
///
/// Contract with the caller (ParticleFilter::observation_sweep):
///  * observation_sweep() processes a PREFIX of [begin, end) — whole
///    vector blocks only — and returns how many particles it handled
///    (0 when the backend is scalar/unavailable). The caller runs the
///    scalar reference kernel over the remainder, so the tail arithmetic
///    is the reference arithmetic by construction, never a re-coded copy.
///  * Only the LUT observation model is vectorized: its factor is a pure
///    table gather. The DirectObservationModel (float EDT + expf) stays
///    on the scalar path — the caller never dispatches it here.
///  * Backends replicate the scalar kernel's exact float association
///    (see particle_filter.hpp transform_endpoint) and the quantized
///    map's double-precision cell indexing (map/distance_map.hpp
///    code_at), so equivalence holds to bit level wherever the build does
///    not contract FMAs; the tests gate on weight ULP + pose ATE.

#include <cstddef>
#include <cstdint>

#include "core/filter_state.hpp"
#include "core/kernels/kernel_backend.hpp"
#include "fp16/half.hpp"
#include "sensor/beam_model.hpp"

namespace tofmcl::core::kernels {

/// Quantized map + likelihood table, flattened for the kernels. Geometry
/// stays in double — the cell-index arithmetic of
/// QuantizedDistanceMap::code_at is double-precision and the kernels must
/// reproduce it exactly. Out-of-bounds cells read code 255 (the map's
/// sentinel), which the 256-entry LUT maps like any other code.
struct LutMapView {
  const std::uint8_t* codes = nullptr;
  int width = 0;
  int height = 0;
  double origin_x = 0.0;
  double origin_y = 0.0;
  double resolution = 0.0;
  const float* lut = nullptr;  ///< 256 entries.
};

/// Per-update beam state. `aux` is null on the legacy (non-mixture) path,
/// where every beam multiplies by factor * per_beam_scale; non-null
/// selects the mixture path ((factor + aux.floor) * aux.scale, gated
/// beams skipped) with one entry per beam.
struct BeamSweepView {
  const sensor::Beam* beams = nullptr;
  const BeamAux* aux = nullptr;
  std::size_t count = 0;
  float per_beam_scale = 1.0f;
};

/// SoA particle field pointers, fp32 layout (Fp32QmTraits).
struct SweepSpansF32 {
  const float* x = nullptr;
  const float* y = nullptr;
  const float* yaw = nullptr;
  float* weight = nullptr;
};

/// SoA particle field pointers, fp16 layout (Fp16QmTraits).
struct SweepSpansF16 {
  const Half* x = nullptr;
  const Half* y = nullptr;
  const Half* yaw = nullptr;
  Half* weight = nullptr;
};

/// Runs the backend's observation sweep over a whole-block prefix of
/// [begin, end); returns the number of particles processed (a multiple of
/// the backend's lane width; 0 if the backend has no kernel in this
/// build). `fp16_weights` additionally rounds each final weight through
/// binary16 before the fp32 store (MclConfig::weight_precision::kFp16).
std::size_t observation_sweep(KernelBackend backend, const LutMapView& map,
                              const BeamSweepView& beams,
                              const SweepSpansF32& particles,
                              std::size_t begin, std::size_t end,
                              bool fp16_weights);
std::size_t observation_sweep(KernelBackend backend, const LutMapView& map,
                              const BeamSweepView& beams,
                              const SweepSpansF16& particles,
                              std::size_t begin, std::size_t end,
                              bool fp16_weights);

/// Backend entry points (defined in kernels_<backend>.cpp when compiled
/// in — call through observation_sweep(), which guards availability).
std::size_t observation_sweep_avx2(const LutMapView& map,
                                   const BeamSweepView& beams,
                                   const SweepSpansF32& particles,
                                   std::size_t begin, std::size_t end,
                                   bool fp16_weights);
std::size_t observation_sweep_avx2(const LutMapView& map,
                                   const BeamSweepView& beams,
                                   const SweepSpansF16& particles,
                                   std::size_t begin, std::size_t end,
                                   bool fp16_weights);
std::size_t observation_sweep_neon(const LutMapView& map,
                                   const BeamSweepView& beams,
                                   const SweepSpansF32& particles,
                                   std::size_t begin, std::size_t end,
                                   bool fp16_weights);
std::size_t observation_sweep_neon(const LutMapView& map,
                                   const BeamSweepView& beams,
                                   const SweepSpansF16& particles,
                                   std::size_t begin, std::size_t end,
                                   bool fp16_weights);

}  // namespace tofmcl::core::kernels
