#pragma once
/// \file mcl_config.hpp
/// \brief Configuration of the Monte Carlo localization filter.
///
/// Defaults are the paper's evaluation parameters (Section IV-A):
/// σ_odom = (0.1 m, 0.1 m, 0.1 rad), σ_obs = 2.0, rmax = 1.5 m,
/// dxy = 0.1 m, dθ = 0.1 rad, map resolution 0.05 m.

#include <cstddef>
#include <cstdint>

namespace tofmcl::core {

/// Numeric/map representation variants evaluated in the paper (Fig 6/7).
enum class Precision : std::uint8_t {
  kFp32,    ///< float particles + float EDT (5 B/cell, 32 B/particle).
  kFp32Qm,  ///< float particles + 8-bit quantized EDT (2 B/cell).
  kFp16Qm,  ///< fp16 particles + 8-bit quantized EDT (16 B/particle).
};

const char* to_string(Precision p);

/// Storage precision of the particle WEIGHT array across the observation
/// sweep (orthogonal to Precision, which fixes the particle/map scalars).
enum class WeightPrecision : std::uint8_t {
  /// Weights stored in the trait's native scalar, untouched — the
  /// bit-identical determinism reference.
  kNative,
  /// Weights rounded through IEEE binary16 after every observation step:
  /// compute-in-fp32 / store-in-fp16, the GAP9 trick that halves weight
  /// memory traffic without touching the particle scalars. No-op for
  /// fp16qm (weights are already halfs).
  kFp16,
};

struct MclConfig {
  std::size_t num_particles = 4096;

  /// Odometry noise σ_odom: standard deviation of the Gaussian sampled on
  /// top of the measured motion delta, in the body frame (x, y in meters,
  /// yaw in radians). With motion-scaled noise (default) this is the
  /// diffusion accrued per gate interval (dxy of travel / dθ of rotation).
  double sigma_odom_xy = 0.2;
  double sigma_odom_yaw = 0.2;

  /// When true (default), the per-update noise is scaled by
  /// √(motion/gate) so diffusion accrues per distance traveled instead of
  /// per update — rate-independent, and a hovering drone does not
  /// diffuse. False applies σ_odom verbatim at every motion update, the
  /// literal reading of the paper's σ_odom = (0.1, 0.1, 0.1); it behaves
  /// similarly at cruise speed but inflates the cloud whenever the drone
  /// slows down (compare with bench_ablation).
  bool scale_noise_with_motion = true;

  /// Observation model σ_obs of Eq. 1. The paper reports σ_obs = 2.0; with
  /// the EDT expressed in 0.05 m cells that is 0.1 m, which is the sharp
  /// regime required for the reported 0.15 m ATE (a 2.0 m Gaussian is too
  /// flat to counteract σ_odom diffusion — verified experimentally).
  double sigma_obs = 0.1;

  /// Mixture weights of the beam end-point model (paper reference [20]):
  /// likelihood = z_hit·exp(−d²/2σ²) + z_rand + z_short·exp(−λ·z). The
  /// z_rand floor absorbs unexplained beams (interference, map error,
  /// dynamics).
  double z_hit = 0.9;
  double z_rand = 0.1;

  /// Weight of the short-return outlier component: un-mapped occluders
  /// (people, carts) return in front of the expected surface, more likely
  /// the closer they are — an exponential decay over the MEASURED range z.
  /// The default 0 reproduces the two-term paper model bit for bit. Enable
  /// (≈ 0.3–0.6) for dynamic-obstacle regimes: a short return's mismatch
  /// penalty is softened instead of being paid at the flat z_rand floor.
  double z_short = 0.0;
  /// Decay rate λ (1/m) of the short component.
  double lambda_short = 1.0;

  /// Per-beam novelty gating (floor-plan localization under dynamics,
  /// Zimmerman et al., arXiv:2310.12536): once the filter tracks
  /// confidently, beams whose measured range is SHORTER than any mapped
  /// surface along the beam from the estimated pose (by more than the
  /// margin) are un-mapped occluders; they are excluded from the weight
  /// product and therefore from the Augmented-MCL likelihood monitor, so
  /// a standing crowd or a pedestrian pacing the drone cannot trigger an
  /// injection storm. Gating arms only while the estimate is valid and
  /// concentrated — a global-localization cloud has no trustworthy
  /// expected ranges to gate against.
  bool enable_novelty_gating = false;
  /// A beam is gated when no mapped surface lies within measured range +
  /// margin along the ray. The margin absorbs estimate error, sensor noise
  /// and map error.
  double novelty_margin_m = 0.5;
  /// Fail-safe against total-occlusion deadlock: an update whose EVERY
  /// beam gates carries no evidence, so the monitor cannot dive and the
  /// (possibly stale) estimate stays concentrated — which would keep the
  /// gate armed forever, masking a kidnapping toward NEARER surfaces
  /// (every beam shorter than the stale expectation). After this many
  /// consecutive fully-gated corrections the gate stands down for the
  /// update, letting the raw evidence reach the weights and the monitor:
  /// a transient total occlusion costs a few floored corrections, a real
  /// teleport collapses w_fast and triggers recovery injection.
  std::size_t novelty_max_blind_updates = 5;
  /// Arming criterion: yaw_concentration of the estimate must reach this.
  /// The yaw resultant length is deliberately used instead of
  /// position_stddev: recovery injection keeps a few percent of uniform
  /// redraws in the cloud at all times, which inflates the position
  /// variance far above any useful threshold (a 5 % uniform tail over a
  /// 9 m map adds ≈ 0.6 m of stddev) while shaving only that few percent
  /// off the resultant — concentration separates "tracking with a
  /// recovery tail" from "dispersed" where stddev cannot.
  double novelty_min_concentration = 0.85;

  /// EDT truncation radius (must match the distance map's rmax).
  double rmax = 1.5;

  /// Update gating: a motion+observation update runs only after the
  /// odometry reports at least this much motion since the last update
  /// (paper: dxy = 0.1 m, dθ = 0.1 rad). Both the motion and the
  /// observation step share this gate — their rates are configured equal
  /// (Section III-C2).
  double gate_dxy = 0.1;
  double gate_dtheta = 0.1;

  /// Adaptive resampling: resample only when the effective sample size
  /// ESS = (Σw)²/Σw² falls below this fraction of N. The paper resamples
  /// on every update (1.0); lower values preserve diversity between
  /// informative updates at the cost of weight bookkeeping — provided as
  /// an extension (see bench_ablation).
  double resample_ess_fraction = 1.0;

  /// Augmented-MCL recovery (Probabilistic Robotics §8.3, the same
  /// foundation the paper cites for its observation model): during
  /// resampling a fraction of particles is replaced by uniform draws from
  /// the map's free space when the short-term average likelihood w_fast
  /// falls below the long-term average w_slow — the signature of a filter
  /// locked onto a wrong mode. This is what lets the estimate leave a
  /// wrong maze (paper Fig 1) instead of staying committed forever.
  bool enable_injection = true;
  double injection_alpha_slow = 0.05;  ///< Long-term likelihood decay.
  double injection_alpha_fast = 0.5;   ///< Short-term likelihood decay.
  double injection_max_fraction = 0.05;  ///< Cap on the injected share.

  /// Adaptive particle counts (KLD-sampling, Fox 2001): after each real
  /// resampling draw the filter re-sizes its particle set to the KLD bound
  /// for the currently occupied (x, y, yaw) bins — a converged tracker
  /// shrinks to hundreds of particles, and a recovery injection (kidnap
  /// signature) snaps the budget straight back to num_particles. Counts
  /// move in arena size classes (powers of two) between min_particles and
  /// num_particles; shrinking is limited to one class per correction.
  /// Default OFF: fixed-count mode is the bit-identical determinism
  /// reference (num_particles everywhere, exactly the pre-adaptive
  /// arithmetic).
  bool adaptive_particles = false;
  /// Floor of the adaptive budget. Also the count a single-bin (fully
  /// converged) cloud settles at.
  std::size_t min_particles = 128;
  /// KLD bound: P(K(p̂‖p) ≤ ε) ≥ quantile(kld_z). ε = 0.05 and
  /// z = 2.326 (99 %) are the values from Fox's evaluation.
  double kld_epsilon = 0.05;
  double kld_z = 2.326;
  /// Histogram bin sizes defining "occupied bins" k for the bound.
  double kld_bin_xy = 0.5;
  double kld_bin_yaw = 3.14159265358979323846 / 6.0;

  /// Weight-array storage precision during the observation sweep (see
  /// WeightPrecision). Scoring-relevant: fingerprinted.
  WeightPrecision weight_precision = WeightPrecision::kNative;

  /// Master seed for all stochastic parts of the filter.
  std::uint64_t seed = 1;

  /// Logical chunk count for work distribution, mirroring the 8 worker
  /// cores of the GAP9 cluster. Results are bit-identical for a fixed
  /// chunk count regardless of how many host threads execute the chunks.
  std::size_t chunks = 8;
};

}  // namespace tofmcl::core
