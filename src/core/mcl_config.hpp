#pragma once
/// \file mcl_config.hpp
/// \brief Configuration of the Monte Carlo localization filter.
///
/// Defaults are the paper's evaluation parameters (Section IV-A):
/// σ_odom = (0.1 m, 0.1 m, 0.1 rad), σ_obs = 2.0, rmax = 1.5 m,
/// dxy = 0.1 m, dθ = 0.1 rad, map resolution 0.05 m.

#include <cstddef>
#include <cstdint>

namespace tofmcl::core {

/// Numeric/map representation variants evaluated in the paper (Fig 6/7).
enum class Precision : std::uint8_t {
  kFp32,    ///< float particles + float EDT (5 B/cell, 32 B/particle).
  kFp32Qm,  ///< float particles + 8-bit quantized EDT (2 B/cell).
  kFp16Qm,  ///< fp16 particles + 8-bit quantized EDT (16 B/particle).
};

const char* to_string(Precision p);

struct MclConfig {
  std::size_t num_particles = 4096;

  /// Odometry noise σ_odom: standard deviation of the Gaussian sampled on
  /// top of the measured motion delta, in the body frame (x, y in meters,
  /// yaw in radians). With motion-scaled noise (default) this is the
  /// diffusion accrued per gate interval (dxy of travel / dθ of rotation).
  double sigma_odom_xy = 0.2;
  double sigma_odom_yaw = 0.2;

  /// When true (default), the per-update noise is scaled by
  /// √(motion/gate) so diffusion accrues per distance traveled instead of
  /// per update — rate-independent, and a hovering drone does not
  /// diffuse. False applies σ_odom verbatim at every motion update, the
  /// literal reading of the paper's σ_odom = (0.1, 0.1, 0.1); it behaves
  /// similarly at cruise speed but inflates the cloud whenever the drone
  /// slows down (compare with bench_ablation).
  bool scale_noise_with_motion = true;

  /// Observation model σ_obs of Eq. 1. The paper reports σ_obs = 2.0; with
  /// the EDT expressed in 0.05 m cells that is 0.1 m, which is the sharp
  /// regime required for the reported 0.15 m ATE (a 2.0 m Gaussian is too
  /// flat to counteract σ_odom diffusion — verified experimentally).
  double sigma_obs = 0.1;

  /// Mixture weights of the beam end-point model (paper reference [20]):
  /// likelihood = z_hit·exp(−d²/2σ²) + z_rand. The floor absorbs
  /// unexplained beams (interference, map error, dynamics).
  double z_hit = 0.9;
  double z_rand = 0.1;

  /// EDT truncation radius (must match the distance map's rmax).
  double rmax = 1.5;

  /// Update gating: a motion+observation update runs only after the
  /// odometry reports at least this much motion since the last update
  /// (paper: dxy = 0.1 m, dθ = 0.1 rad). Both the motion and the
  /// observation step share this gate — their rates are configured equal
  /// (Section III-C2).
  double gate_dxy = 0.1;
  double gate_dtheta = 0.1;

  /// Adaptive resampling: resample only when the effective sample size
  /// ESS = (Σw)²/Σw² falls below this fraction of N. The paper resamples
  /// on every update (1.0); lower values preserve diversity between
  /// informative updates at the cost of weight bookkeeping — provided as
  /// an extension (see bench_ablation).
  double resample_ess_fraction = 1.0;

  /// Augmented-MCL recovery (Probabilistic Robotics §8.3, the same
  /// foundation the paper cites for its observation model): during
  /// resampling a fraction of particles is replaced by uniform draws from
  /// the map's free space when the short-term average likelihood w_fast
  /// falls below the long-term average w_slow — the signature of a filter
  /// locked onto a wrong mode. This is what lets the estimate leave a
  /// wrong maze (paper Fig 1) instead of staying committed forever.
  bool enable_injection = true;
  double injection_alpha_slow = 0.05;  ///< Long-term likelihood decay.
  double injection_alpha_fast = 0.5;   ///< Short-term likelihood decay.
  double injection_max_fraction = 0.05;  ///< Cap on the injected share.

  /// Master seed for all stochastic parts of the filter.
  std::uint64_t seed = 1;

  /// Logical chunk count for work distribution, mirroring the 8 worker
  /// cores of the GAP9 cluster. Results are bit-identical for a fixed
  /// chunk count regardless of how many host threads execute the chunks.
  std::size_t chunks = 8;
};

}  // namespace tofmcl::core
