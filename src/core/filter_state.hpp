#pragma once
/// \file filter_state.hpp
/// \brief The compact, relocatable half of the Localizer split.
///
/// A particle filter is two very different kinds of state glued together:
///
///   * the SCORING CONTEXT — distance maps, likelihood LUT, beam geometry,
///     resolved configuration. Megabytes, read-only after construction,
///     identical for every session localizing on the same map. One copy,
///     pointer-shared (see scoring_context.hpp).
///   * the FILTER STATE — the particle cloud, its double buffer, the
///     per-chunk RNG streams, the pose estimate and the Augmented-MCL
///     recovery monitor. Kilobytes, mutated every correction, unique per
///     session.
///
/// This header defines the second half as a plain aggregate that owns no
/// map data and references nothing: it can be moved, pooled (the particle
/// blocks come from a per-map ParticleArena) and serialized byte-for-byte
/// (ParticleFilter::save_state / load_state), which is what makes session
/// eviction and snapshot/restore possible in the serving layer.
///
/// The observation structs (PoseEstimate, UpdateWorkload, InjectionMonitor,
/// BeamAux) live here rather than in particle_filter.hpp because they ARE
/// filter state — the filter template only operates on them.

#include <array>
#include <cstddef>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "core/particle_soa.hpp"

namespace tofmcl::core {

/// Upper bound on the logical chunk count (work distribution and RNG
/// streams); the prefix-sum scratch is statically sized by it.
inline constexpr std::size_t kMaxChunks = 64;

/// Filter output: the weighted-average pose plus dispersion measures used
/// for convergence monitoring.
struct PoseEstimate {
  Pose2 pose{};
  /// √(weighted variance of position), meters — small once converged.
  double position_stddev = 0.0;
  /// Length of the mean yaw resultant in [0, 1]; 1 = all particles agree.
  double yaw_concentration = 0.0;
  bool valid = false;
};

/// Workload of the most recent update cycle (consumed by the GAP9 timing
/// model and the benches).
struct UpdateWorkload {
  std::size_t particles = 0;
  std::size_t beams = 0;
  /// Beams the novelty gate excluded from the weight product (and with it
  /// the Augmented-MCL monitor) this update. Always 0 with gating off.
  std::size_t gated_beams = 0;
  /// Whether the novelty gate was armed for this update (estimate valid
  /// and tight enough) — diagnostics for tuning the arming criterion.
  bool novelty_armed = false;
};

/// State of the Augmented-MCL likelihood monitor (Probabilistic Robotics
/// §8.3), exposed for diagnostics and regression tests. Averages are of
/// the per-beam-normalized observation likelihood, so they are comparable
/// across beam counts and stay finite for arbitrarily many beams.
struct InjectionMonitor {
  double w_slow = 0.0;         ///< Long-term average likelihood.
  double w_fast = 0.0;         ///< Short-term average likelihood.
  double last_inject_p = 0.0;  ///< Injection fraction of the last resample.
};

/// Per-beam state of the mixture/gating path, computed once per update.
struct BeamAux {
  float floor = 0.0f;  ///< Short-return floor added to every factor.
  float scale = 1.0f;  ///< 1 / (z_hit + z_rand + floor).
  bool gated = false;  ///< Excluded from the weight product.
};

/// Everything a running filter mutates, in one relocatable aggregate.
///
/// Serialization contract (ParticleFilter::save_state): `particles`,
/// `rngs` + `resample_rng`, `estimate`, `monitor` and `blind_streak` are
/// the persistent state; everything else is scratch that the next update
/// fully rewrites (`back_buffer` is repartitioned by every resample,
/// `beam_aux`/chunk sums are per-update) or bookkeeping of the storage
/// itself (`block_capacity`) and is deliberately NOT serialized.
template <typename Scalar>
struct FilterState {
  ParticleSoA<Scalar> particles;
  ParticleSoA<Scalar> back_buffer;
  /// Arena size class both blocks were acquired with; 0 when the blocks
  /// are plain heap vectors (no arena).
  std::size_t block_capacity = 0;

  std::vector<Rng> rngs;    ///< One stream per chunk.
  Rng resample_rng{0};      ///< Spins the systematic wheel.

  PoseEstimate estimate;
  UpdateWorkload workload;
  InjectionMonitor monitor;
  /// Consecutive corrections in which the gate excluded EVERY beam.
  std::size_t blind_streak = 0;

  /// Scratch: per-beam mixture/gating state of the current update.
  std::vector<BeamAux> beam_aux;
  /// Scratch: per-chunk weight sums of the current resample.
  std::vector<double> chunk_sums;
  std::vector<double> chunk_sq_sums;
  std::array<double, kMaxChunks> chunk_prefix{};
  /// Scratch: packed occupancy-bin keys of the KLD adaptation pass.
  std::vector<std::int64_t> kld_keys;
};

}  // namespace tofmcl::core
