#pragma once
/// \file particle_arena.hpp
/// \brief Pooled allocator for SoA particle blocks, power-of-two classes.
///
/// The serving layer runs thousands of concurrent filters whose particle
/// budgets breathe: adaptive sessions shrink to hundreds of particles once
/// converged and grow back on recovery injection, and evicted sessions
/// release their storage entirely. Allocating each FilterState's SoA
/// buffers straight from the heap makes every resize a malloc/free pair
/// and leaves 10k idle sessions each pinning a max-size allocation.
///
/// The arena fixes both: particle blocks are acquired from per-map pools
/// in power-of-two size classes (a shrink returns the big block for some
/// other session's growth spurt; an acquire reuses a pooled block instead
/// of touching the allocator), and its statistics make resident particle
/// memory measurable per map — leased bytes are what live sessions pin,
/// pooled bytes are reusable slack shared by ALL sessions on the map.
///
/// Thread safety: acquire/release/stats are mutex-guarded — sessions on
/// one map resize concurrently from pump workers. The arena hands out
/// plain ParticleSoA values; only the block's CAPACITY is arena-managed
/// (callers resize within it freely), so the filter hot path never sees
/// the lock.

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "core/particle_soa.hpp"
#include "fp16/half.hpp"

namespace tofmcl::core {

class ParticleArena {
 public:
  /// Smallest block handed out; tiny requests share one class so the
  /// free lists stay short.
  static constexpr std::size_t kMinBlockParticles = 64;

  /// Power-of-two size class that fits `n` particles (≥ kMinBlockParticles).
  static std::size_t size_class(std::size_t n) {
    std::size_t c = kMinBlockParticles;
    while (c < n) c <<= 1;
    return c;
  }

  /// Bytes of one SoA block of `capacity` particles of `Scalar` (the four
  /// field arrays).
  template <typename Scalar>
  static constexpr std::size_t block_bytes(std::size_t capacity) {
    return capacity * 4 * sizeof(Scalar);
  }

  /// Hands out a block sized to the `n`-particle size class (resized to
  /// exactly n), reusing a pooled block of that class when one exists.
  /// `capacity_out` receives the class so the caller can hand it back to
  /// release().
  template <typename Scalar>
  ParticleSoA<Scalar> acquire(std::size_t n, std::size_t& capacity_out) {
    const std::size_t cap = size_class(n);
    capacity_out = cap;
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Entry<Scalar>>& pool = free_list<Scalar>();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (pool[i].capacity != cap) continue;
      ParticleSoA<Scalar> block = std::move(pool[i].block);
      pool[i] = std::move(pool.back());
      pool.pop_back();
      pooled_bytes_ -= block_bytes<Scalar>(cap);
      leased_bytes_ += block_bytes<Scalar>(cap);
      ++leased_blocks_;
      ++reuses_;
      block.resize(n);
      return block;
    }
    ParticleSoA<Scalar> block;
    block.reserve(cap);
    block.resize(n);
    leased_bytes_ += block_bytes<Scalar>(cap);
    ++leased_blocks_;
    ++fresh_allocations_;
    return block;
  }

  /// Returns a block to the pool. `capacity` must be the size class the
  /// block was acquired with.
  template <typename Scalar>
  void release(ParticleSoA<Scalar>&& block, std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    leased_bytes_ -= block_bytes<Scalar>(capacity);
    --leased_blocks_;
    pooled_bytes_ += block_bytes<Scalar>(capacity);
    free_list<Scalar>().push_back({capacity, std::move(block)});
  }

  struct Stats {
    std::size_t leased_blocks = 0;  ///< Blocks currently held by filters.
    std::size_t leased_bytes = 0;   ///< Resident particle memory they pin.
    std::size_t pooled_bytes = 0;   ///< Reusable slack parked in the arena.
    std::size_t fresh_allocations = 0;  ///< acquire() calls that hit the heap.
    std::size_t reuses = 0;             ///< acquire() calls served from pool.
  };

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {leased_blocks_, leased_bytes_, pooled_bytes_, fresh_allocations_,
            reuses_};
  }

 private:
  template <typename Scalar>
  struct Entry {
    std::size_t capacity = 0;
    ParticleSoA<Scalar> block;
  };

  template <typename Scalar>
  std::vector<Entry<Scalar>>& free_list() {
    if constexpr (std::is_same_v<Scalar, Half>) {
      return free_f16_;
    } else {
      static_assert(std::is_same_v<Scalar, float>,
                    "arena pools float and Half particle blocks");
      return free_f32_;
    }
  }

  mutable std::mutex mutex_;
  std::vector<Entry<float>> free_f32_;
  std::vector<Entry<Half>> free_f16_;
  std::size_t leased_blocks_ = 0;
  std::size_t leased_bytes_ = 0;
  std::size_t pooled_bytes_ = 0;
  std::size_t fresh_allocations_ = 0;
  std::size_t reuses_ = 0;
};

}  // namespace tofmcl::core
