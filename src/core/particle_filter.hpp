#pragma once
/// \file particle_filter.hpp
/// \brief Monte Carlo localization with the paper's four parallel phases.
///
/// The filter estimates the planar pose (x, y, θ) of the nano-UAV on an
/// occupancy-grid map from sparse multizone-ToF beams and drifting
/// odometry (paper Section III-C). Its update cycle has four phases, each
/// parallelized by statically chunking the particle array — the exact
/// scheme used on the 8 GAP9 worker cores:
///
///   1. motion update       — sample p(x_t | x_{t-1}, u_t), Gaussian noise
///                            σ_odom on the body-frame odometry delta
///   2. observation update  — beam end-point model (Eq. 1) against the
///                            truncated EDT (direct exp or 8-bit LUT)
///   3. resampling          — systematic wheel; per-chunk partial weight
///                            sums let every chunk draw its own arrows
///                            (Fig 4), bit-identical to the serial wheel
///   4. pose computation    — weighted mean, circular mean for yaw
///
/// Particles live in structure-of-arrays storage (particle_soa.hpp) so the
/// per-particle kernels stream unit-stride over each field and vectorize;
/// phases 1 and 2 are additionally available fused into one pass
/// (motion_observation_update) so a correction touches the particle state
/// once instead of twice. Both the fusion and the SoA layout are pure
/// re-orderings of memory traffic: every particle still sees the exact
/// arithmetic (and per-chunk RNG stream) of the phase-by-phase path, so
/// results are bit-identical to it.
///
/// The observation sweep additionally dispatches to hand-written SIMD
/// backends (src/core/kernels/: AVX2, NEON) for the LUT observation
/// model. The scalar loops below remain the determinism reference — the
/// SIMD kernels handle whole vector blocks and the scalar kernel always
/// covers the tail, so there is exactly one definition of the reference
/// arithmetic. Backend selection: kernels::default_backend() (compile
/// detection + runtime probe + TOFMCL_KERNEL env override), overridable
/// per filter with set_kernel_backend().
///
/// Given a fixed chunk count, results are bit-identical on every executor;
/// threads only change wall-clock. Per-chunk RNG streams make the whole
/// filter reproducible from MclConfig::seed.
///
/// Everything the filter MUTATES lives in one relocatable aggregate,
/// FilterState (filter_state.hpp); the filter object itself adds only
/// pointers to shared read-only context (map, observation model, executor,
/// optional ParticleArena). That split is what the serving layer's
/// snapshot/restore (save_state / load_state) and session eviction build
/// on. With MclConfig::adaptive_particles the active count follows the
/// KLD-sampling bound within arena size classes; the default fixed-count
/// mode never calls the adaptation path and is bit-identical to the
/// pre-split filter.
///
/// Template parameter `Traits` selects the paper's design points:
/// Fp32Traits, Fp32QmTraits, Fp16QmTraits (Section III-C2).

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"
#include "core/filter_state.hpp"
#include "core/kernels/observation_kernel.hpp"
#include "core/likelihood.hpp"
#include "core/mcl_config.hpp"
#include "core/particle.hpp"
#include "core/particle_arena.hpp"
#include "core/particle_soa.hpp"
#include "fp16/half.hpp"
#include "map/distance_map.hpp"
#include "map/snapshot_io.hpp"
#include "sensor/beam_model.hpp"

namespace tofmcl::core {

/// fp32: float particles, float EDT.
struct Fp32Traits {
  using Scalar = float;
  using Map = map::DistanceMap;
  using ObservationModel = DirectObservationModel;
  static constexpr Precision kPrecision = Precision::kFp32;
};

/// fp32qm: float particles, 8-bit quantized EDT with likelihood LUT.
struct Fp32QmTraits {
  using Scalar = float;
  using Map = map::QuantizedDistanceMap;
  using ObservationModel = LutObservationModel;
  static constexpr Precision kPrecision = Precision::kFp32Qm;
};

/// fp16qm: fp16 particles, 8-bit quantized EDT with likelihood LUT.
struct Fp16QmTraits {
  using Scalar = Half;
  using Map = map::QuantizedDistanceMap;
  using ObservationModel = LutObservationModel;
  static constexpr Precision kPrecision = Precision::kFp16Qm;
};

template <typename Traits>
class ParticleFilter {
 public:
  using Scalar = typename Traits::Scalar;
  using Map = typename Traits::Map;
  using ParticleT = Particle<Scalar>;
  using ObservationModel = typename Traits::ObservationModel;

  /// The map must outlive the filter.
  ParticleFilter(const Map& map, const MclConfig& config, Executor& executor,
                 std::shared_ptr<ParticleArena> arena = nullptr)
      : ParticleFilter(map, config, executor,
                       ObservationModel(map, beam_model_params(config)),
                       std::move(arena)) {}

  /// Variant taking a prebuilt observation model (e.g. a shared likelihood
  /// LUT from a campaign's per-map resources). The model must reference
  /// the same `map`. With an arena, both particle blocks are leased from
  /// it (and returned on destruction) instead of heap-allocated.
  ParticleFilter(const Map& map, const MclConfig& config, Executor& executor,
                 ObservationModel observation_model,
                 std::shared_ptr<ParticleArena> arena = nullptr)
      : map_(&map),
        config_(config),
        executor_(&executor),
        observation_model_(std::move(observation_model)),
        arena_(std::move(arena)) {
    TOFMCL_EXPECTS(config.num_particles > 0, "need at least one particle");
    TOFMCL_EXPECTS(config.chunks > 0 && config.chunks <= kMaxChunks,
                   "chunk count must be in [1, 64]");
    TOFMCL_EXPECTS(config.sigma_obs > 0.0, "sigma_obs must be positive");
    TOFMCL_EXPECTS(config.z_hit + config.z_rand > 0.0,
                   "z_hit + z_rand must be positive");
    TOFMCL_EXPECTS(config.z_short >= 0.0, "z_short must be non-negative");
    TOFMCL_EXPECTS(config.lambda_short > 0.0,
                   "lambda_short must be positive");
    // Folding the per-beam normalizer into the observation kernel keeps
    // weights of well-matched particles near 1 regardless of beam count
    // (see observation_update). Exactly 1.0 when z_hit + z_rand == 1.
    per_beam_scale_ =
        static_cast<float>(1.0 / (config_.z_hit + config_.z_rand));
    mixture_params_ = beam_model_params(config_);
    if (arena_) {
      st_.particles = arena_->template acquire<Scalar>(config_.num_particles,
                                                       st_.block_capacity);
      std::size_t back_capacity = 0;
      st_.back_buffer =
          arena_->template acquire<Scalar>(config_.num_particles,
                                           back_capacity);
    } else {
      st_.particles.resize(config_.num_particles);
      st_.back_buffer.resize(config_.num_particles);
    }
    st_.chunk_sums.resize(config_.chunks);
    st_.chunk_sq_sums.resize(config_.chunks);
    Rng master(config_.seed);
    st_.rngs.reserve(config_.chunks);
    for (std::size_t c = 0; c < config_.chunks; ++c) {
      st_.rngs.push_back(master.fork());
    }
    st_.resample_rng = master.fork();
  }

  ~ParticleFilter() { release_blocks(); }

  ParticleFilter(ParticleFilter&&) noexcept = default;
  ParticleFilter& operator=(ParticleFilter&& other) noexcept {
    if (this != &other) {
      release_blocks();
      map_ = other.map_;
      config_ = other.config_;
      executor_ = other.executor_;
      observation_model_ = std::move(other.observation_model_);
      per_beam_scale_ = other.per_beam_scale_;
      mixture_params_ = other.mixture_params_;
      st_ = std::move(other.st_);
      last_resample_drew_ = other.last_resample_drew_;
      support_ = other.support_;
      support_jitter_ = other.support_jitter_;
      backend_ = other.backend_;
      arena_ = std::move(other.arena_);
    }
    return *this;
  }

  const MclConfig& config() const { return config_; }
  const Map& map() const { return *map_; }
  /// Active SIMD backend of the observation sweep (see kernel_backend.hpp;
  /// defaults to kernels::default_backend()). Only the LUT observation
  /// model has SIMD kernels — Fp32Traits (direct expf model) always runs
  /// the scalar reference regardless of this setting.
  kernels::KernelBackend kernel_backend() const { return backend_; }
  /// Overrides the backend (equivalence tests, benchmarks). An
  /// unavailable backend silently runs the scalar reference — the
  /// dispatch layer returns 0 particles handled.
  void set_kernel_backend(kernels::KernelBackend backend) {
    backend_ = backend;
  }
  /// AoS-style read view over the SoA storage (see particle_soa.hpp).
  ParticleSpan<Scalar, true> particles() const {
    return ParticleSpan<Scalar, true>(st_.particles);
  }
  /// Advanced: direct particle access for custom initialization or
  /// injection schemes (e.g. kidnapped-robot recovery). The filter makes
  /// no assumption about weights beyond being non-negative and finite.
  ParticleSpan<Scalar, false> mutable_particles() {
    return ParticleSpan<Scalar, false>(st_.particles);
  }
  /// Raw field arrays, for kernels and benches that want the SoA layout.
  const ParticleSoA<Scalar>& soa() const { return st_.particles; }
  /// Active particle count. Equal to config().num_particles unless
  /// adaptive counts shrank/grew the set.
  std::size_t size() const { return st_.particles.size(); }
  /// Bytes the particle storage actually pins right now (both blocks at
  /// their allocated capacity — the serving layer's per-session resident
  /// memory). Fixed-count mode: equals particle_buffer_bytes rounded up
  /// to the arena size class.
  std::size_t resident_bytes() const {
    return (st_.particles.capacity() + st_.back_buffer.capacity()) *
           4 * sizeof(Scalar);
  }

  /// Global localization init: particles drawn uniformly over the support
  /// points (free cell centers), jittered by ±jitter on each axis, yaw
  /// uniform in (-π, π]. The support is retained for Augmented-MCL
  /// recovery injection — the caller keeps it alive (it is the map's
  /// free-cell table, shared by every filter on the map, not copied).
  void init_uniform(std::span<const Vec2> support, double jitter) {
    TOFMCL_EXPECTS(!support.empty(), "uniform init needs support points");
    set_injection_support(support, jitter);
    executor_->for_chunks(
        st_.particles.size(), config_.chunks,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Rng& rng = st_.rngs[chunk];
          for (std::size_t i = begin; i < end; ++i) {
            const Vec2 center = support[rng.uniform_index(support.size())];
            store(st_.particles, i, center.x + rng.uniform(-jitter, jitter),
                  center.y + rng.uniform(-jitter, jitter),
                  rng.uniform(-kPi, kPi), 1.0);
          }
        });
    st_.estimate.valid = false;
  }

  /// Provides (or replaces) the free-space support used by recovery
  /// injection. Tracking-initialized filters have no support until this
  /// is called, which disables injection. The filter keeps a VIEW: the
  /// support must outlive it (map resources do; they are what every call
  /// site passes).
  void set_injection_support(std::span<const Vec2> support, double jitter) {
    support_ = support;
    support_jitter_ = jitter;
  }

  /// Tracking init: Gaussian cloud around a known pose.
  void init_gaussian(const Pose2& mean, double sigma_xy, double sigma_yaw) {
    executor_->for_chunks(
        st_.particles.size(), config_.chunks,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Rng& rng = st_.rngs[chunk];
          for (std::size_t i = begin; i < end; ++i) {
            store(st_.particles, i, rng.gaussian(mean.x(), sigma_xy),
                  rng.gaussian(mean.y(), sigma_xy),
                  wrap_pi(rng.gaussian(mean.yaw, sigma_yaw)), 1.0);
          }
        });
    st_.estimate.valid = false;
  }

  /// Phase 1 — motion update. `delta` is the odometry motion since the
  /// last motion update, expressed in the drone body frame.
  ///
  /// σ_odom is interpreted per gate interval (dxy of translation / dθ of
  /// rotation — the paper's update quantum): the noise applied to one
  /// delta is scaled by √(motion/gate) so diffusion accumulates at the
  /// configured rate per distance traveled regardless of how often the
  /// motion model is sampled, and a hovering drone does not diffuse.
  void motion_update(const Pose2& delta) {
    const MotionParams mp = motion_params(delta);
    executor_->for_chunks(
        st_.particles.size(), config_.chunks,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Rng& rng = st_.rngs[chunk];
          for (std::size_t i = begin; i < end; ++i) {
            motion_step(i, mp, rng);
          }
        });
  }

  /// Phase 2 — observation update: multiply each particle's weight by the
  /// per-beam-normalized end-point likelihood of every (valid) beam.
  ///
  /// Each factor is scaled by 1/(z_hit + z_rand + short_b) — its maximum —
  /// before multiplying, which is the log-space normalization
  /// exp(Σ log f_b − Σ log f_max,b) folded into the product one beam at a
  /// time. A perfectly matched particle keeps weight ≈ 1 for ANY beam
  /// count, where the unnormalized product (max Π f_max,b) underflows fp32
  /// storage once B is large and f_max < 1 — e.g. 128 beams from two 8×8
  /// sensors — silently zeroing every weight and with it the Augmented-MCL
  /// recovery monitor. When z_hit + z_rand == 1 (the defaults) the scale
  /// is exactly 1.0f and the arithmetic is unchanged bit for bit.
  ///
  /// With the short-return component or novelty gating enabled, per-beam
  /// state (short floor, normalizer, gate verdict) is computed ONCE here —
  /// a pure function of the beams, the previous pose estimate and the map
  /// — then applied uniformly across particles; gated beams are skipped
  /// entirely. With z_short == 0 and gating off this path is the exact
  /// pre-mixture kernel, bit for bit.
  void observation_update(std::span<const sensor::Beam> beams) {
    st_.workload.particles = st_.particles.size();
    st_.workload.beams = beams.size();
    st_.workload.gated_beams = 0;
    st_.workload.novelty_armed = false;
    if (beams.empty()) return;
    const bool mixture = prepare_beams(beams);
    executor_->for_chunks(
        st_.particles.size(), config_.chunks,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          observation_sweep(begin, end, beams, mixture);
        });
  }

  /// Phases 1+2 fused: one pass over the particle state per correction.
  /// Bit-identical to motion_update(delta) followed by
  /// observation_update(beams) — the observation consumes no randomness
  /// and the per-beam mixture/gating state is computed before the sweep
  /// from the SAME inputs (previous estimate, map, beams), so fusing
  /// preserves each chunk's RNG stream, and every particle's arithmetic is
  /// untouched; only the traversal order over (particle, phase) changes.
  /// Within a chunk the motion steps run before the observation sweep
  /// (also a pure traversal re-ordering: the observation reads only what
  /// motion wrote and consumes no randomness), which is what lets the
  /// observation half dispatch to the SIMD backends.
  void motion_observation_update(const Pose2& delta,
                                 std::span<const sensor::Beam> beams) {
    const MotionParams mp = motion_params(delta);
    st_.workload.particles = st_.particles.size();
    st_.workload.beams = beams.size();
    st_.workload.gated_beams = 0;
    st_.workload.novelty_armed = false;
    const bool mixture = beams.empty() ? false : prepare_beams(beams);
    executor_->for_chunks(
        st_.particles.size(), config_.chunks,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Rng& rng = st_.rngs[chunk];
          for (std::size_t i = begin; i < end; ++i) {
            motion_step(i, mp, rng);
          }
          if (!beams.empty()) observation_sweep(begin, end, beams, mixture);
        });
  }

  /// Phase 3 — systematic resampling on the wheel (Fig 4). Per-chunk
  /// partial weight sums assign each chunk its own contiguous range of
  /// arrows; the outcome is identical to a serial systematic resampler
  /// fed the same partial-sum prefix.
  void resample() {
    const std::size_t n = st_.particles.size();
    const std::size_t chunks =
        std::clamp<std::size_t>(config_.chunks, 1, n);
    st_.monitor.last_inject_p = 0.0;
    last_resample_drew_ = false;

    // Step 1 (parallel): per-chunk weight sums — these are the partial
    // sums the paper stores during weight normalization. The squared sums
    // ride along for the effective-sample-size test.
    executor_->for_chunks(
        n, chunks, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          double sum = 0.0;
          double sum_sq = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            const double w = static_cast<double>(static_cast<float>(
                st_.particles.weight[i]));
            sum += w;
            sum_sq += w * w;
          }
          st_.chunk_sums[chunk] = sum;
          st_.chunk_sq_sums[chunk] = sum_sq;
        });

    // Step 2 (serial, O(chunks)): prefix offsets and total mass.
    double total = 0.0;
    double total_sq = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) {
      st_.chunk_prefix[c] = total;
      total += st_.chunk_sums[c];
      total_sq += st_.chunk_sq_sums[c];
    }
    if (!(total > 0.0) || !std::isfinite(total)) {
      // Degenerate weights (all zero/NaN): keep the particle set, reset
      // weights — the next observation re-weights from scratch.
      std::fill(st_.particles.weight.begin(), st_.particles.weight.end(),
                Scalar(1.0f));
      return;
    }

    // Adaptive resampling (extension): skip the draw while the effective
    // sample size is healthy. Weights persist across updates; they are
    // rescaled to mean 1 so repeated multiplication cannot underflow
    // (which matters doubly for fp16 storage).
    if (config_.resample_ess_fraction < 1.0 && total_sq > 0.0) {
      const double ess = total * total / total_sq;
      if (ess >= config_.resample_ess_fraction * static_cast<double>(n)) {
        const float scale =
            static_cast<float>(static_cast<double>(n) / total);
        executor_->for_chunks(
            n, chunks,
            [&](std::size_t, std::size_t begin, std::size_t end) {
              for (std::size_t i = begin; i < end; ++i) {
                st_.particles.weight[i] = Scalar(
                    static_cast<float>(st_.particles.weight[i]) * scale);
              }
            });
        return;
      }
    }

    // Augmented-MCL likelihood monitoring: compare the short- and
    // long-term averages of the per-particle likelihood (weights are 1
    // after each resample, so total/n is the mean observation
    // likelihood). The observation kernel already normalized every factor
    // by its per-beam maximum, so total/n is directly comparable across
    // beam counts — no pow(per_beam_max, beams) divisor, whose underflow
    // for large beam counts used to turn w_avg into inf/NaN and silently
    // disable (or saturate) recovery injection.
    // Gated beams contribute nothing to the weights, so an update whose
    // every beam was gated carries no observation information — the
    // monitor must not mistake it for evidence (in either direction).
    double inject_p = 0.0;
    if (config_.enable_injection && !support_.empty() &&
        st_.workload.beams > st_.workload.gated_beams) {
      const double w_avg = total / static_cast<double>(n);
      if (st_.monitor.w_slow <= 0.0) {
        st_.monitor.w_slow = w_avg;
        st_.monitor.w_fast = w_avg;
      } else {
        st_.monitor.w_slow +=
            config_.injection_alpha_slow * (w_avg - st_.monitor.w_slow);
        st_.monitor.w_fast +=
            config_.injection_alpha_fast * (w_avg - st_.monitor.w_fast);
      }
      if (st_.monitor.w_slow > 0.0) {
        inject_p = std::clamp(1.0 - st_.monitor.w_fast / st_.monitor.w_slow,
                              0.0, config_.injection_max_fraction);
      }
      st_.monitor.last_inject_p = inject_p;
    }

    // One random number spins the wheel; arrows sit at u0 + i·step.
    const double step = total / static_cast<double>(n);
    const double u0 = st_.resample_rng.uniform() * step;

    // Arrow index ranges per chunk, derived from the prefix sums with one
    // consistent rule so they partition [0, n) exactly.
    const auto arrow_begin = [&](std::size_t c) -> std::size_t {
      if (c == 0) return 0;
      if (c >= chunks) return n;
      const double q = (st_.chunk_prefix[c] - u0) / step;
      const auto idx = static_cast<long long>(std::ceil(q));
      return static_cast<std::size_t>(
          std::clamp<long long>(idx, 0, static_cast<long long>(n)));
    };

    // Step 3 (parallel): each chunk draws the new particles whose arrows
    // fall inside its weight span, writing into the double buffer. A
    // recovery fraction of slots receives uniform redraws instead.
    executor_->for_chunks(
        n, chunks, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Rng& rng = st_.rngs[chunk];
          std::size_t arrow = arrow_begin(chunk);
          const std::size_t arrow_end = arrow_begin(chunk + 1);
          std::size_t src = begin;
          double cum = st_.chunk_prefix[chunk] +
                       static_cast<double>(static_cast<float>(
                           st_.particles.weight[src]));
          for (; arrow < arrow_end; ++arrow) {
            const double u = u0 + static_cast<double>(arrow) * step;
            while (u >= cum && src + 1 < end) {
              ++src;
              cum += static_cast<double>(static_cast<float>(
                  st_.particles.weight[src]));
            }
            if (inject_p > 0.0 && rng.bernoulli(inject_p)) {
              const Vec2 center =
                  support_[rng.uniform_index(support_.size())];
              store(st_.back_buffer, arrow,
                    center.x + rng.uniform(-support_jitter_, support_jitter_),
                    center.y + rng.uniform(-support_jitter_, support_jitter_),
                    rng.uniform(-kPi, kPi), 1.0);
            } else {
              st_.back_buffer.copy_from(st_.particles, arrow, src);
              st_.back_buffer.weight[arrow] = Scalar(1.0f);
            }
          }
        });
    st_.particles.swap(st_.back_buffer);
    last_resample_drew_ = true;
  }

  /// Phase 4 — pose computation: weighted average over all particles
  /// (circular mean for yaw), plus dispersion for convergence monitoring.
  PoseEstimate compute_pose() {
    const std::size_t n = st_.particles.size();
    const std::size_t chunks =
        std::clamp<std::size_t>(config_.chunks, 1, n);
    struct Accum {
      double w = 0.0, wx = 0.0, wy = 0.0, wc = 0.0, ws = 0.0, wxx = 0.0;
    };
    std::vector<Accum> acc(chunks);
    executor_->for_chunks(
        n, chunks, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Accum a;
          for (std::size_t i = begin; i < end; ++i) {
            const double w = static_cast<double>(static_cast<float>(
                st_.particles.weight[i]));
            const double x = static_cast<double>(static_cast<float>(
                st_.particles.x[i]));
            const double y = static_cast<double>(static_cast<float>(
                st_.particles.y[i]));
            const double yaw =
                static_cast<double>(static_cast<float>(st_.particles.yaw[i]));
            a.w += w;
            a.wx += w * x;
            a.wy += w * y;
            a.wc += w * std::cos(yaw);
            a.ws += w * std::sin(yaw);
            a.wxx += w * (x * x + y * y);
          }
          acc[chunk] = a;
        });
    Accum total;
    for (const Accum& a : acc) {
      total.w += a.w;
      total.wx += a.wx;
      total.wy += a.wy;
      total.wc += a.wc;
      total.ws += a.ws;
      total.wxx += a.wxx;
    }
    PoseEstimate est;
    if (!(total.w > 0.0) || !std::isfinite(total.w)) {
      est.valid = false;
      st_.estimate = est;
      return est;
    }
    const double mx = total.wx / total.w;
    const double my = total.wy / total.w;
    est.pose = Pose2{mx, my, std::atan2(total.ws, total.wc)};
    const double second = total.wxx / total.w - (mx * mx + my * my);
    est.position_stddev = std::sqrt(std::max(0.0, second));
    est.yaw_concentration =
        std::sqrt(total.wc * total.wc + total.ws * total.ws) / total.w;
    est.valid = true;
    st_.estimate = est;
    return est;
  }

  /// One full update cycle in the paper's order (phases 1+2 fused).
  PoseEstimate update(const Pose2& delta, std::span<const sensor::Beam> beams) {
    motion_observation_update(delta, beams);
    resample();
    return compute_pose();
  }

  /// KLD-sampling adaptation (MclConfig::adaptive_particles): after a
  /// correction whose resample actually drew (weights are uniformly 1,
  /// so the set can be re-sized without re-weighting), shrink or grow the
  /// active count toward the KLD bound for the occupied (x, y, yaw) bins.
  /// A recovery injection snaps straight back to the full budget — a
  /// kidnapped filter must not fight with a shrunken set. Counts move in
  /// arena size classes; shrinking at most one class per correction
  /// (hysteresis), growing instantly. No-op in fixed-count mode.
  void adapt_particle_count() {
    if (!config_.adaptive_particles || !last_resample_drew_) return;
    const std::size_t n = st_.particles.size();
    const std::size_t floor_n =
        std::min(config_.min_particles, config_.num_particles);
    std::size_t target = st_.monitor.last_inject_p > 0.0
                             ? config_.num_particles
                             : kld_target();
    target = std::clamp(target, floor_n, config_.num_particles);
    target = std::min(ParticleArena::size_class(target),
                      config_.num_particles);
    if (target < n) target = std::max(target, n / 2);
    if (target != n) set_active_count(target);
  }

  /// Serializes the persistent filter state (active particles, RNG
  /// streams, estimate, recovery monitor) — see the FilterState doc for
  /// the persistent/scratch split. Binary, little-endian, raw IEEE bits:
  /// load_state() resumes bit-identically.
  void save_state(map::SnapshotWriter& w) const {
    w.u64(st_.particles.size());
    w.u8(static_cast<std::uint8_t>(sizeof(Scalar)));
    w.u32(static_cast<std::uint32_t>(st_.rngs.size()));
    for (const Rng& rng : st_.rngs) write_rng(w, rng);
    write_rng(w, st_.resample_rng);
    w.f64(st_.estimate.pose.x());
    w.f64(st_.estimate.pose.y());
    w.f64(st_.estimate.pose.yaw);
    w.f64(st_.estimate.position_stddev);
    w.f64(st_.estimate.yaw_concentration);
    w.boolean(st_.estimate.valid);
    w.f64(st_.monitor.w_slow);
    w.f64(st_.monitor.w_fast);
    w.f64(st_.monitor.last_inject_p);
    w.u64(st_.blind_streak);
    write_array(w, st_.particles.x);
    write_array(w, st_.particles.y);
    write_array(w, st_.particles.yaw);
    write_weights(w, st_.particles.weight);
  }

  /// Restores what save_state() wrote, re-sizing the particle storage to
  /// the snapshotted active count. The injection support is NOT part of
  /// the blob (it is map data) — the owner re-arms it, exactly as both
  /// start paths do.
  void load_state(map::SnapshotReader& r) {
    const std::size_t n = static_cast<std::size_t>(r.u64());
    TOFMCL_EXPECTS(n > 0 && n <= config_.num_particles,
                   "snapshot particle count outside [1, num_particles]");
    TOFMCL_EXPECTS(r.u8() == sizeof(Scalar),
                   "snapshot scalar width does not match this precision");
    TOFMCL_EXPECTS(r.u32() == st_.rngs.size(),
                   "snapshot RNG stream count does not match chunks");
    for (Rng& rng : st_.rngs) rng = read_rng(r);
    st_.resample_rng = read_rng(r);
    const double px = r.f64();
    const double py = r.f64();
    const double pyaw = r.f64();
    st_.estimate.pose = Pose2{px, py, pyaw};
    st_.estimate.position_stddev = r.f64();
    st_.estimate.yaw_concentration = r.f64();
    st_.estimate.valid = r.boolean();
    st_.monitor.w_slow = r.f64();
    st_.monitor.w_fast = r.f64();
    st_.monitor.last_inject_p = r.f64();
    st_.blind_streak = static_cast<std::size_t>(r.u64());
    resize_storage(n);
    read_array(r, st_.particles.x);
    read_array(r, st_.particles.y);
    read_array(r, st_.particles.yaw);
    read_weights(r, st_.particles.weight);
    st_.workload = UpdateWorkload{};
    last_resample_drew_ = false;
  }

  /// Most recent pose estimate (invalid before the first compute_pose()).
  const PoseEstimate& estimate() const { return st_.estimate; }
  /// Workload of the most recent observation update.
  const UpdateWorkload& workload() const { return st_.workload; }
  /// Augmented-MCL monitor state (diagnostics / regression tests).
  const InjectionMonitor& injection_monitor() const { return st_.monitor; }

 private:
  /// Per-update motion constants, hoisted out of the particle loop. All
  /// kept in double: the Gaussian mean/σ feed Rng::gaussian in double
  /// precision exactly as the phase-by-phase path always did.
  struct MotionParams {
    double dx0, dy0, dyaw0;
    double sxy, syaw;
  };

  MotionParams motion_params(const Pose2& delta) const {
    double noise_scale = 1.0;
    if (config_.scale_noise_with_motion) {
      const double gate_fraction =
          delta.position.norm() / config_.gate_dxy +
          std::abs(delta.yaw) / config_.gate_dtheta;
      noise_scale = std::sqrt(std::min(gate_fraction, 4.0));
    }
    return MotionParams{delta.x(), delta.y(), delta.yaw,
                        config_.sigma_odom_xy * noise_scale,
                        config_.sigma_odom_yaw * noise_scale};
  }

  /// Motion kernel body for one particle (3 Gaussian draws from the
  /// chunk's RNG, body-frame delta rotated into the world frame).
  inline void motion_step(std::size_t i, const MotionParams& mp, Rng& rng) {
    const float dx = static_cast<float>(rng.gaussian(mp.dx0, mp.sxy));
    const float dy = static_cast<float>(rng.gaussian(mp.dy0, mp.sxy));
    const float dyaw = static_cast<float>(rng.gaussian(mp.dyaw0, mp.syaw));
    const float yaw = static_cast<float>(st_.particles.yaw[i]);
    const float c = std::cos(yaw);
    const float s = std::sin(yaw);
    st_.particles.x[i] =
        Scalar(static_cast<float>(st_.particles.x[i]) + c * dx - s * dy);
    st_.particles.y[i] =
        Scalar(static_cast<float>(st_.particles.y[i]) + s * dx + c * dy);
    st_.particles.yaw[i] = Scalar(wrap_pi_f(yaw + dyaw));
  }

  /// Computes the per-beam mixture state and novelty-gate verdicts.
  /// Returns true when the extended kernel must run; false selects the
  /// exact legacy kernel (z_short == 0 and gating disabled — the per-beam
  /// state is then the constant per_beam_scale_, so skipping it keeps the
  /// default configuration bit-identical to the pre-mixture model).
  ///
  /// Pure function of (beams, config, previous estimate, map): both the
  /// phased and the fused sweep call it before touching any particle, so
  /// they classify identically and stay bit-identical to each other.
  bool prepare_beams(std::span<const sensor::Beam> beams) {
    // Concentration, not position_stddev: the recovery tail of injected
    // uniform particles inflates the position variance by construction
    // (see MclConfig::novelty_min_concentration).
    const bool want_gate =
        config_.enable_novelty_gating && st_.estimate.valid &&
        st_.estimate.yaw_concentration >= config_.novelty_min_concentration;
    st_.workload.novelty_armed = want_gate;
    if (!want_gate) st_.blind_streak = 0;
    if (config_.z_short <= 0.0 && !want_gate) return false;

    // Blind-streak fail-safe (MclConfig::novelty_max_blind_updates): too
    // many consecutive fully-gated corrections means the gate is starving
    // the filter of evidence — stand down for this update so a kidnapping
    // toward nearer surfaces cannot hide behind its own gating.
    const bool stand_down =
        want_gate && st_.blind_streak >= config_.novelty_max_blind_updates;

    st_.beam_aux.resize(beams.size());
    const double est_yaw = st_.estimate.pose.yaw;
    const double gc = std::cos(est_yaw);
    const double gs = std::sin(est_yaw);
    for (std::size_t b = 0; b < beams.size(); ++b) {
      const sensor::Beam& beam = beams[b];
      BeamAux aux;
      aux.floor = short_return_floor(beam.range_m, mixture_params_);
      aux.scale = static_cast<float>(
          1.0 / (config_.z_hit + config_.z_rand +
                 static_cast<double>(aux.floor)));
      if (want_gate && !stand_down) {
        // Ray from the sensor position under the ESTIMATED pose along the
        // beam direction. The body-frame origin is recovered from the
        // precomputed end point (it already includes the mount offset).
        const double ca = std::cos(beam.azimuth_body);
        const double sa = std::sin(beam.azimuth_body);
        const double range = static_cast<double>(beam.range_m);
        const double ox_b = static_cast<double>(beam.endpoint_body.x) -
                            range * ca;
        const double oy_b = static_cast<double>(beam.endpoint_body.y) -
                            range * sa;
        const Vec2 origin{
            st_.estimate.pose.x() + gc * ox_b - gs * oy_b,
            st_.estimate.pose.y() + gs * ox_b + gc * oy_b};
        const Vec2 dir{gc * ca - gs * sa, gs * ca + gc * sa};
        if (!map_surface_within(origin, dir,
                                range + config_.novelty_margin_m)) {
          // The map expects free space well past the measured range: the
          // return bounced off something the map does not know.
          aux.gated = true;
          ++st_.workload.gated_beams;
        }
      }
      st_.beam_aux[b] = aux;
    }
    if (want_gate && !beams.empty() &&
        st_.workload.gated_beams == beams.size()) {
      ++st_.blind_streak;
    } else {
      st_.blind_streak = 0;
    }
    return true;
  }

  /// Sphere-traces the truncated EDT from `origin` along unit `dir`:
  /// true iff a mapped surface (distance ≤ one cell) lies within `limit`
  /// meters. The truncation at rmax only caps the step length, never the
  /// verdict. O(limit / resolution) worst case, run once per beam per
  /// correction — not in the per-particle hot path.
  bool map_surface_within(Vec2 origin, Vec2 dir, double limit) const {
    const double eps = map_->resolution();
    double t = 0.0;
    while (t <= limit) {
      const float d = map_->distance_at(
          {origin.x + t * dir.x, origin.y + t * dir.y});
      if (static_cast<double>(d) <= eps) return true;
      t += std::max(static_cast<double>(d), eps);
    }
    return false;
  }

  /// The per-particle preamble both observation kernels share: pose
  /// loads, the yaw trig pair, and the running weight. One definition —
  /// extracted so the plain and mixture kernels (and through them the
  /// SIMD ports, which replicate this arithmetic lane-wise) cannot drift
  /// apart.
  struct SweepPreamble {
    float x, y, c, s, w;
  };

  inline SweepPreamble sweep_preamble(std::size_t i) const {
    const float yaw = static_cast<float>(st_.particles.yaw[i]);
    return SweepPreamble{static_cast<float>(st_.particles.x[i]),
                         static_cast<float>(st_.particles.y[i]),
                         std::cos(yaw), std::sin(yaw),
                         static_cast<float>(st_.particles.weight[i])};
  }

  /// Body-frame beam end point under the preamble's pose — exactly
  /// ((x + c·bx) − s·by, (y + s·bx) + c·by). The association is the
  /// determinism contract: the SIMD ports replicate it mul/add/sub for
  /// mul/add/sub (no FMA), so keep it verbatim.
  static inline std::pair<float, float> transform_endpoint(
      const SweepPreamble& p, const Vec2f& b) {
    return {p.x + p.c * b.x - p.s * b.y, p.y + p.s * b.x + p.c * b.y};
  }

  /// Observation kernel body for one particle: transform each beam end
  /// point by the particle pose and fold the normalized factor into the
  /// weight. Consumes no randomness.
  inline void observation_step(std::size_t i,
                               std::span<const sensor::Beam> beams) {
    SweepPreamble p = sweep_preamble(i);
    for (const sensor::Beam& beam : beams) {
      const auto [ex, ey] = transform_endpoint(p, beam.endpoint_body);
      p.w *= observation_model_.factor(ex, ey) * per_beam_scale_;
    }
    st_.particles.weight[i] = Scalar(p.w);
  }

  /// Mixture/gating variant: the map-distance factor gains the beam's
  /// short-return floor, the normalizer is per beam, and gated beams are
  /// skipped. Identical memory traffic otherwise — still one pass, still
  /// no randomness.
  inline void observation_step_mixture(std::size_t i,
                                       std::span<const sensor::Beam> beams) {
    SweepPreamble p = sweep_preamble(i);
    for (std::size_t b = 0; b < beams.size(); ++b) {
      const BeamAux& aux = st_.beam_aux[b];
      if (aux.gated) continue;
      const auto [ex, ey] = transform_endpoint(p, beams[b].endpoint_body);
      p.w *= (observation_model_.factor(ex, ey) + aux.floor) * aux.scale;
    }
    st_.particles.weight[i] = Scalar(p.w);
  }

  /// Observation sweep over [begin, end) of one chunk: a non-scalar
  /// backend handles whole vector blocks (LUT model only — the direct
  /// expf model has no SIMD kernel), and the scalar reference kernel
  /// covers the remainder. In scalar mode this IS the reference loop,
  /// untouched.
  inline void observation_sweep(std::size_t begin, std::size_t end,
                                std::span<const sensor::Beam> beams,
                                bool mixture) {
    if constexpr (std::is_same_v<ObservationModel, LutObservationModel>) {
      if (backend_ != kernels::KernelBackend::kScalar) {
        const kernels::BeamSweepView beam_view{
            beams.data(), mixture ? st_.beam_aux.data() : nullptr,
            beams.size(), per_beam_scale_};
        begin += kernels::observation_sweep(backend_, lut_map_view(),
                                            beam_view, sweep_spans(), begin,
                                            end, fp16_weights());
      }
    }
    for (std::size_t i = begin; i < end; ++i) {
      if (mixture) {
        observation_step_mixture(i, beams);
      } else {
        observation_step(i, beams);
      }
      round_weight_fp16(i);
    }
  }

  /// Flattened map + LUT view for the SIMD kernels. Only instantiated for
  /// the LUT observation model (guarded by if constexpr above).
  kernels::LutMapView lut_map_view() const {
    const map::QuantizedDistanceMap& qm = observation_model_.map();
    return kernels::LutMapView{qm.codes().data(), qm.width(),  qm.height(),
                               qm.origin().x,     qm.origin().y,
                               qm.resolution(),   observation_model_.lut().data()};
  }

  auto sweep_spans() {
    if constexpr (std::is_same_v<Scalar, Half>) {
      return kernels::SweepSpansF16{st_.particles.x.data(),
                                    st_.particles.y.data(),
                                    st_.particles.yaw.data(),
                                    st_.particles.weight.data()};
    } else {
      return kernels::SweepSpansF32{st_.particles.x.data(),
                                    st_.particles.y.data(),
                                    st_.particles.yaw.data(),
                                    st_.particles.weight.data()};
    }
  }

  /// True when fp32-stored weights must round through binary16
  /// (MclConfig::weight_precision). fp16 particle storage already rounds
  /// by construction.
  bool fp16_weights() const {
    if constexpr (std::is_same_v<Scalar, float>) {
      return config_.weight_precision == WeightPrecision::kFp16;
    } else {
      return false;
    }
  }

  /// Opt-in fp16 weight storage (MclConfig::weight_precision::kFp16):
  /// round the freshly written weight through binary16 after the
  /// observation step — compute-in-fp32, store-in-fp16. No-op at the
  /// default kNative; the reference arithmetic is untouched.
  inline void round_weight_fp16(std::size_t i) {
    if constexpr (std::is_same_v<Scalar, float>) {
      if (config_.weight_precision == WeightPrecision::kFp16) {
        st_.particles.weight[i] =
            half_bits_to_float(float_to_half_bits(st_.particles.weight[i]));
      }
    }
  }

  /// KLD-sampling bound (Fox 2001): number of particles so the sampled
  /// approximation stays within ε of the true posterior with confidence
  /// quantile z, given k occupied histogram bins. Bin keys are packed
  /// into one integer and sorted — no unordered containers, so the count
  /// (and with it the whole adaptive trajectory) is deterministic.
  std::size_t kld_target() {
    std::vector<std::int64_t>& keys = st_.kld_keys;
    keys.clear();
    const std::size_t n = st_.particles.size();
    keys.reserve(n);
    const double inv_xy = 1.0 / config_.kld_bin_xy;
    const double inv_yaw = 1.0 / config_.kld_bin_yaw;
    for (std::size_t i = 0; i < n; ++i) {
      const auto ix = static_cast<std::int64_t>(std::floor(
          static_cast<double>(static_cast<float>(st_.particles.x[i])) *
          inv_xy));
      const auto iy = static_cast<std::int64_t>(std::floor(
          static_cast<double>(static_cast<float>(st_.particles.y[i])) *
          inv_xy));
      const auto iyaw = static_cast<std::int64_t>(std::floor(
          static_cast<double>(static_cast<float>(st_.particles.yaw[i])) *
          inv_yaw));
      keys.push_back(((ix & 0xFFFFF) << 40) | ((iy & 0xFFFFF) << 20) |
                     (iyaw & 0xFFFFF));
    }
    std::sort(keys.begin(), keys.end());
    const auto k = static_cast<std::size_t>(
        std::unique(keys.begin(), keys.end()) - keys.begin());
    if (k <= 1) return config_.min_particles;
    const double kd = static_cast<double>(k - 1);
    const double a = 2.0 / (9.0 * kd);
    const double base = 1.0 - a + std::sqrt(a) * config_.kld_z;
    const double bound =
        kd / (2.0 * config_.kld_epsilon) * base * base * base;
    return static_cast<std::size_t>(std::ceil(bound));
  }

  /// Re-sizes the active set to `target`, preserving the represented
  /// distribution: shrinking keeps an even stride subsample of the (all
  /// weight-1) set, growing tiles the existing particles. Storage moves
  /// between arena size classes when needed.
  void set_active_count(std::size_t target) {
    const std::size_t old_n = st_.particles.size();
    if (target == old_n || old_n == 0) return;
    if (arena_ &&
        ParticleArena::size_class(target) != st_.block_capacity) {
      std::size_t cap = 0;
      ParticleSoA<Scalar> fresh =
          arena_->template acquire<Scalar>(target, cap);
      for (std::size_t i = 0; i < target; ++i) {
        fresh.copy_from(st_.particles, i, spread_index(i, target, old_n));
      }
      arena_->release(std::move(st_.particles), st_.block_capacity);
      st_.particles = std::move(fresh);
      std::size_t back_capacity = 0;
      ParticleSoA<Scalar> fresh_back =
          arena_->template acquire<Scalar>(target, back_capacity);
      arena_->release(std::move(st_.back_buffer), st_.block_capacity);
      st_.back_buffer = std::move(fresh_back);
      st_.block_capacity = cap;
    } else if (target < old_n) {
      for (std::size_t i = 0; i < target; ++i) {
        const std::size_t src = spread_index(i, target, old_n);
        if (src != i) st_.particles.copy_from(st_.particles, i, src);
      }
      st_.particles.resize(target);
      st_.back_buffer.resize(target);
    } else {
      st_.particles.resize(target);
      st_.back_buffer.resize(target);
      for (std::size_t i = old_n; i < target; ++i) {
        st_.particles.copy_from(st_.particles, i, i % old_n);
      }
    }
    // The resample that preceded adaptation left every weight at 1;
    // subsampling/tiling preserves that, re-asserted for the new slots.
    std::fill(st_.particles.weight.begin(), st_.particles.weight.end(),
              Scalar(1.0f));
  }

  /// Source index for re-sizing: shrink = even stride over the old set
  /// (src ≥ dst, so in-place forward copies are safe), grow = tile.
  static std::size_t spread_index(std::size_t i, std::size_t new_n,
                                  std::size_t old_n) {
    if (new_n >= old_n) return i < old_n ? i : i % old_n;
    return i * old_n / new_n;
  }

  /// Raw storage re-size without content adaptation (restore path: the
  /// caller overwrites every particle right after).
  void resize_storage(std::size_t n) {
    if (arena_) {
      const std::size_t cls = ParticleArena::size_class(n);
      if (cls != st_.block_capacity) {
        arena_->release(std::move(st_.particles), st_.block_capacity);
        arena_->release(std::move(st_.back_buffer), st_.block_capacity);
        st_.particles = arena_->template acquire<Scalar>(n, st_.block_capacity);
        std::size_t back_capacity = 0;
        st_.back_buffer = arena_->template acquire<Scalar>(n, back_capacity);
        return;
      }
    }
    st_.particles.resize(n);
    st_.back_buffer.resize(n);
  }

  void release_blocks() {
    if (arena_ && st_.block_capacity > 0) {
      arena_->release(std::move(st_.particles), st_.block_capacity);
      arena_->release(std::move(st_.back_buffer), st_.block_capacity);
      st_.block_capacity = 0;
    }
    arena_.reset();
  }

  static void write_rng(map::SnapshotWriter& w, const Rng& rng) {
    const Rng::Snapshot s = rng.snapshot();
    for (const std::uint64_t word : s.state) w.u64(word);
    w.f64(s.cached);
    w.boolean(s.has_cached);
  }

  static Rng read_rng(map::SnapshotReader& r) {
    Rng::Snapshot s;
    for (std::uint64_t& word : s.state) word = r.u64();
    s.cached = r.f64();
    s.has_cached = r.boolean();
    Rng rng(0);
    rng.restore(s);
    return rng;
  }

  static void write_scalar(map::SnapshotWriter& w, Scalar v) {
    if constexpr (std::is_same_v<Scalar, Half>) {
      w.u16(v.bits());
    } else {
      w.f32(v);
    }
  }

  static Scalar read_scalar(map::SnapshotReader& r) {
    if constexpr (std::is_same_v<Scalar, Half>) {
      return Half::from_bits(r.u16());
    } else {
      return Scalar(r.f32());
    }
  }

  static auto scalar_bits(Scalar v) {
    if constexpr (std::is_same_v<Scalar, Half>) {
      return v.bits();
    } else {
      return std::bit_cast<std::uint32_t>(v);
    }
  }

  static void write_array(map::SnapshotWriter& w,
                          const std::vector<Scalar>& values) {
    for (const Scalar v : values) write_scalar(w, v);
  }

  static void read_array(map::SnapshotReader& r, std::vector<Scalar>& values) {
    for (Scalar& v : values) v = read_scalar(r);
  }

  /// Weights spend nearly all their life uniform — every resample that
  /// draws rewrites them to exactly Scalar(1), and sessions snapshot
  /// between corrections — so the blob stores a constant run as a flag
  /// plus one value instead of n copies. Bit-exact in both encodings
  /// (the comparison is on the scalar's bit pattern, not its value).
  static void write_weights(map::SnapshotWriter& w,
                            const std::vector<Scalar>& values) {
    const bool constant =
        std::all_of(values.begin(), values.end(), [&](Scalar v) {
          return scalar_bits(v) == scalar_bits(values.front());
        });
    w.u8(constant ? 1 : 0);
    if (constant) {
      write_scalar(w, values.front());
    } else {
      write_array(w, values);
    }
  }

  static void read_weights(map::SnapshotReader& r,
                           std::vector<Scalar>& values) {
    const std::uint8_t flag = r.u8();
    TOFMCL_EXPECTS(flag <= 1, "snapshot weight encoding flag must be 0 or 1");
    if (flag == 1) {
      std::fill(values.begin(), values.end(), read_scalar(r));
    } else {
      read_array(r, values);
    }
  }

  static float wrap_pi_f(float angle) {
    return static_cast<float>(wrap_pi(static_cast<double>(angle)));
  }

  static void store(ParticleSoA<Scalar>& soa, std::size_t i, double x,
                    double y, double yaw, double w) {
    soa.x[i] = Scalar(static_cast<float>(x));
    soa.y[i] = Scalar(static_cast<float>(y));
    soa.yaw[i] = Scalar(static_cast<float>(yaw));
    soa.weight[i] = Scalar(static_cast<float>(w));
  }

  const Map* map_;
  MclConfig config_;
  Executor* executor_;
  ObservationModel observation_model_;
  float per_beam_scale_ = 1.0f;
  BeamModelParams mixture_params_{};
  /// Everything the update cycle mutates (see filter_state.hpp).
  FilterState<Scalar> st_;
  /// Whether the last resample() ran the systematic draw (weights are
  /// uniformly 1 afterwards) — precondition of adapt_particle_count().
  bool last_resample_drew_ = false;
  /// SIMD backend of the observation sweep (kernel_backend.hpp).
  kernels::KernelBackend backend_ = kernels::default_backend();
  /// View of the map's free-cell table (owned by MapResources).
  std::span<const Vec2> support_;
  double support_jitter_ = 0.0;
  std::shared_ptr<ParticleArena> arena_;
};

}  // namespace tofmcl::core
